// High-memory-footprint scenario (Section III-E, movement trigger 5).
//
// cam4's 10.8 GB footprint exceeds the 10 GB off-chip DRAM. Pure cache
// designs hide the HBM from the OS and must page; POM/hybrid designs make
// it OS-visible. Bumblebee additionally batch-flushes cHBM in whole
// remapping sets when it observes addresses beyond the off-chip capacity,
// keeping allocation off the eviction critical path.
//
// This example compares page faults, IPC and the batch-flush behaviour.
#include <iostream>

#include "bumblebee/controller.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

int main(int argc, char** argv) {
  const u64 instructions =
      argc > 1 ? std::stoull(argv[1])
               : sim::env_u64("BB_INSTRUCTIONS", 30'000'000);

  sim::SystemConfig cfg;
  cfg.paging.fault_penalty = ns_to_ticks(500);
  sim::System system(cfg);

  const auto& cam4 = trace::WorkloadProfile::by_name("cam4");
  std::cout << "Workload cam4: footprint " << cam4.footprint_gb
            << " GB vs 10 GB off-chip DRAM + 1 GB HBM\n\n";

  TextTable table({"design", "OS-visible", "page faults", "IPC",
                   "HBM serve"});
  const auto base = system.run("DRAM-only", cam4, instructions);
  for (const std::string d :
       {"DRAM-only", "Banshee", "Chameleon", "Hybrid2", "Bumblebee"}) {
    const auto r = system.run(d, cam4, instructions);
    const u64 visible =
        system.last_controller()->paging().config().visible_bytes;
    table.add_row({r.design, fmt_bytes(static_cast<double>(visible)),
                   std::to_string(r.page_faults), fmt_double(r.ipc, 2),
                   fmt_percent(r.hbm_serve_rate)});
  }
  table.print(std::cout);

  // Show the trigger-5 machinery explicitly.
  const auto bb_run = system.run("Bumblebee", cam4, instructions);
  (void)bb_run;
  const auto* ctl = dynamic_cast<bumblebee::BumblebeeController*>(
      system.last_controller());
  std::cout << "\nBumblebee high-footprint actions: "
            << ctl->bb_stats().batch_flushes << " set flushes, "
            << ctl->bb_stats().set_swaps << " full-set swaps, "
            << ctl->bb_stats().zombie_evictions << " zombie evictions\n";
  std::cout << "(baseline DRAM-only IPC: " << fmt_double(base.ipc, 2)
            << ")\n";
  return 0;
}
