// Trace tooling: generate, inspect, save and replay miss traces.
//
//   ./trace_tools --workload=mcf --misses=100000 --out=mcf.bbtrace
//   ./trace_tools --in=mcf.bbtrace --replay --design=Bumblebee
//
// Demonstrates the persistence API (save_trace / load_trace) and replaying
// a canned trace through a controller — how one would plug in real traces
// (e.g. converted SPEC SimPoint miss logs) instead of the synthetic
// profiles.
#include <iostream>

#include "baselines/factory.h"
#include "common/cli.h"
#include "common/flags.h"
#include "common/table.h"
#include "trace/trace_file.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  if (flags.has("in")) {
    bool ok = false;
    auto records = trace::load_trace(flags.get_string("in", ""), &ok);
    if (!ok) {
      std::cerr << "failed to load trace\n";
      return cli::kExitIo;
    }
    const auto s = trace::measure_stream(records);
    std::cout << "Loaded " << records.size() << " records: MPKI "
              << fmt_double(1000.0 / s.mean_inst_gap, 1) << ", writes "
              << fmt_percent(s.write_fraction) << ", 4K pages touched "
              << s.unique_pages_4k << "\n";

    if (flags.has("replay")) {
      mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
      mem::DramDevice dram(mem::DramTimingParams::ddr4_3200_10gb());
      auto design = baselines::make_design(
          flags.get_string("design", "Bumblebee"), hbm, dram);
      trace::TraceReplayer rep(std::move(records));
      Tick now = 0;
      const u64 n = flags.get_u64("misses", rep.size());
      for (u64 i = 0; i < n; ++i) {
        const auto rec = rep.next();
        now += rec.inst_gap * 280;  // ~1 IPC pacing
        design->access(rec.addr, rec.type, now);
      }
      const auto& st = design->stats();
      std::cout << "Replayed " << st.requests << " requests on "
                << design->name() << ": HBM serve "
                << fmt_percent(st.hbm_serve_rate()) << ", mean latency "
                << fmt_double(st.mean_latency_ns(), 1) << " ns\n";
    }
    return 0;
  }

  const std::string workload = flags.get_string("workload", "mcf");
  const u64 misses = flags.get_u64("misses", 100'000);
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name(workload),
                            flags.get_u64("seed", 42));
  const auto records = gen.take(misses);

  const std::string out = flags.get_string("out", "");
  if (!out.empty()) {
    if (!trace::save_trace(out, records)) {
      std::cerr << "failed to write " << out << "\n";
      return cli::kExitIo;
    }
    std::cout << "Wrote " << records.size() << " records to " << out << "\n";
  } else {
    const auto s = trace::measure_stream(records);
    std::cout << workload << ": MPKI "
              << fmt_double(1000.0 / s.mean_inst_gap, 1)
              << ", 64K-page block use " << fmt_percent(s.page64k_block_use)
              << ", top-1% share " << fmt_percent(s.top1pct_share) << "\n";
  }
  return 0;
}

}  // namespace

// cli_main maps the TraceReplayer empty-trace rejection (and any other
// invalid_argument) to exit 2 per the shared CLI contract.
int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "trace_tools", run);
}
