// Quickstart: simulate one workload on Bumblebee and the DRAM-only
// baseline, and print the headline metrics.
//
//   ./quickstart [workload] [instructions]
//
// Workload names follow Table II of the paper (default: mcf).
#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/system.h"

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "mcf";
  const bb::u64 instructions =
      argc > 2 ? std::stoull(argv[2])
               : bb::sim::env_u64("BB_INSTRUCTIONS", 20'000'000);

  const auto& workload = bb::trace::WorkloadProfile::by_name(workload_name);
  std::cout << "Workload " << workload.name << ": MPKI " << workload.mpki
            << ", footprint " << workload.footprint_gb << " GB, spatial "
            << workload.spatial << ", temporal " << workload.temporal
            << "\n\n";

  bb::sim::System system;
  bb::TextTable table({"design", "IPC", "speedup", "HBM traffic",
                       "DRAM traffic", "energy (mJ)", "HBM serve", "MAL"});

  const auto base = system.run("DRAM-only", workload, instructions);
  for (const std::string design :
       {"DRAM-only", "Bumblebee", "Hybrid2", "C-Only", "M-Only"}) {
    const auto r = system.run(design, workload, instructions);
    table.add_row({r.design, bb::fmt_double(r.ipc, 3),
                   bb::fmt_double(r.ipc / base.ipc, 2) + "x",
                   bb::fmt_bytes(static_cast<double>(r.hbm_bytes)),
                   bb::fmt_bytes(static_cast<double>(r.dram_bytes)),
                   bb::fmt_double(r.energy_mj, 2),
                   bb::fmt_percent(r.hbm_serve_rate),
                   bb::fmt_percent(r.mal_fraction)});
  }
  table.print(std::cout);
  return 0;
}
