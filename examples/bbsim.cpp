// General-purpose simulation driver: run any (design x workload) matrix
// from the command line and emit a table or CSV.
//
//   ./bbsim --designs=DRAM-only,Bumblebee,Hybrid2 --workloads=mcf,wrf
//   ./bbsim --designs=all --workloads=all --misses=50000 --csv
//   ./bbsim --designs=DRAM-only,Bumblebee --workloads=mcf
//           --epoch-csv=epochs.csv --event-trace=run.json
//           --trace-format=chrome
//   ./bbsim --designs=Bumblebee --mix=mixed-locality4,mcf+lbm --csv
//   ./bbsim --designs=Bumblebee --workloads=mcf --fault-profile=mixed
//           --fault-rate=1e-4 --fault-seed=1 --csv
//   ./bbsim --designs=Bumblebee --workloads=mcf --instructions=2000000
//           --capture-trace=mcf.bbtrace
//   ./bbsim --designs=all --replay-trace=mcf.bbtrace --csv
//
// Three distinct trace flags: --event-trace (JSONL/Chrome *event* trace of
// remap/swap/warmup events; --trace is its deprecated alias),
// --capture-trace (record the run's binary miss stream), and
// --replay-trace (drive designs from a recorded binary miss stream in
// bounded memory).
//
// Design names follow the factory (README); "all" expands to
// baselines::comparison_designs() — the Figure 8 set plus the
// PoM/SILC-FM/MemPod extensions. --mix switches to multi-programmed
// co-runs: each comma-separated entry is a preset name (--list-mixes) or
// '+'-joined workload names, one per core.
//
// Exit codes: 0 success, 2 usage error (unknown name / bad flag value),
// 3 I/O error (unopenable output or journal file), 4 internal error,
// 130 interrupted (SIGINT; the checkpoint journal, if any, is flushed).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "baselines/factory.h"
#include "common/cli.h"
#include "common/flags.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "common/table.h"
#include "fault/fault.h"
#include "mem/request_queue.h"
#include "sim/experiment.h"
#include "trace/stream.h"

using namespace bb;

namespace {

constexpr int kExitUsage = cli::kExitUsage;
constexpr int kExitIo = cli::kExitIo;
constexpr int kExitInterrupted = cli::kExitInterrupted;

// SIGINT requests cooperative cancellation: the matrix stops claiming new
// cells, running cells finish and journal, and main exits with 130.
volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

/// Commits a rendered artifact via temp+rename, naming the owning flag in
/// any I/O error so the user knows which output path to fix.
void commit_artifact(const char* flag, const std::string& path,
                     const std::string& content) {
  try {
    snap::write_file_atomic(path, content);
  } catch (const std::ios_base::failure& e) {
    throw std::ios_base::failure(std::string("--") + flag + ": " + e.what());
  }
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(const Flags& flags) {
  if (flags.has("help")) {
    std::cout <<
        "usage: bbsim [--designs=a,b,...] [--workloads=x,y,...]\n"
        "              [--misses=N] [--warmup=PCT] [--cores=N]\n"
        "              [--csv[=FILE]]  (results CSV; FILE written\n"
        "               atomically, default stdout)\n"
        "              [--json[=FILE]]  (full per-run results incl.\n"
        "               percentiles; FILE written atomically)\n"
        "              [--profile]  (host-side profiling: phase breakdown,\n"
        "               requests/sec, peak RSS on stderr; --json gains a\n"
        "               separate \"host\" section. Simulated results are\n"
        "               byte-identical with or without it)\n"
        "              [--jobs=N]  (N worker threads; default: all)\n"
        "              [--epoch-csv=FILE]  (epoch time-series CSV)\n"
        "              [--epoch-requests=N]  (epoch every N requests;\n"
        "               default 5000 when --epoch-csv is given)\n"
        "              [--epoch-ticks=N]  (also close epochs every N ticks)\n"
        "              [--event-trace=FILE]  (structured event trace of\n"
        "               remap/swap/warmup events; --trace is a deprecated\n"
        "               alias for this flag)\n"
        "              [--trace-format=jsonl|chrome]  (default jsonl)\n"
        "              [--capture-trace=FILE]  (record the run's binary\n"
        "               miss stream — exactly one design and one workload\n"
        "               or mix; replayable with --replay-trace)\n"
        "              [--capture-codec=varint|raw|zlib]  (chunk codec for\n"
        "               --capture-trace; default varint)\n"
        "              [--chunk-records=N]  (records per capture chunk and\n"
        "               per v1 replay read slice; default 4096)\n"
        "              [--replay-trace=FILE]  (replay a recorded binary\n"
        "               miss stream through every design in bounded\n"
        "               memory; workload column = trace file name;\n"
        "               --instructions defaults to one full pass)\n"
        "              [--replay-mode=stream|memory]  (default stream;\n"
        "               memory loads the whole trace — the reference\n"
        "               path, byte-identical results)\n"
        "              [--resume=FILE]  (checkpoint journal: finished cells\n"
        "               are restored from FILE, new cells appended to it;\n"
        "               works for plain and --mix matrices)\n"
        "              [--snapshot-dir=DIR]  (crash tolerance: per-cell\n"
        "               mid-run state snapshots live in DIR)\n"
        "              [--snapshot-interval=N]  (commit a snapshot every N\n"
        "               trace records; requires --snapshot-dir)\n"
        "              [--restore]  (resume cells from their snapshot\n"
        "               files; the resumed run's outputs are byte-identical\n"
        "               to an uninterrupted one. Requires --snapshot-dir)\n"
        "              [--cell-timeout=S]  (watchdog: soft per-cell deadline\n"
        "               in seconds; a cell past it is interrupted, retried\n"
        "               from its snapshot --cell-retries times (default 1),\n"
        "               then committed as a timed_out placeholder row)\n"
        "              [--mix=SPEC,...]  (multi-programmed co-runs: each\n"
        "               SPEC is a preset name or w1+w2+... per-core list)\n"
        "              [--instructions=N]  (fixed budget: per cell, or per\n"
        "               core with --mix; overrides --misses)\n"
        "              [--fault-profile=P]  (fault injection; P one of\n"
        "               none|transient|stuck-rows|dead-bank|mixed)\n"
        "              [--fault-rate=R]  (per-access fault probability,\n"
        "               default 1e-4; implies --fault-profile=mixed)\n"
        "              [--fault-seed=N]  (extra fault-model seed salt)\n"
        "              [--queue-depth=N]  (FR-FCFS request queues on both\n"
        "               devices, N entries per channel; 0 disables)\n"
        "              [--write-watermarks=HI:LO]  (write-drain hysteresis\n"
        "               thresholds, LO < HI <= depth; implies queues on)\n"
        "               env BB_QUEUE=on|off overrides both flags\n"
        "              [--list-workloads] [--list-mixes]\n"
        "exit codes: 0 ok, 2 usage, 3 I/O, 4 internal, 130 interrupted\n";
    std::cout << "designs:";
    for (const auto& name : baselines::all_design_names()) {
      std::cout << ' ' << name;
    }
    std::cout << " | all\nworkloads: Table II names | all\n";
    return 0;
  }
  if (flags.has("list-workloads")) {
    for (const auto& name : trace::workload_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flags.has("list-mixes")) {
    for (const auto& m : sim::MixSpec::presets()) {
      std::cout << m.name << ":";
      for (const auto& w : m.workloads) std::cout << ' ' << w;
      std::cout << "\n";
    }
    return 0;
  }

  std::vector<std::string> designs =
      split_csv(flags.get_string("designs", "DRAM-only,Bumblebee"));
  if (designs.size() == 1 && designs[0] == "all") {
    designs = baselines::comparison_designs();
  }
  try {
    baselines::require_design_names(designs);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bbsim: " << e.what() << "\n";
    return kExitUsage;
  }

  std::vector<trace::WorkloadProfile> workloads;
  const std::string wl = flags.get_string("workloads", "mcf");
  if (wl == "all") {
    workloads = trace::WorkloadProfile::spec2017();
  } else {
    const std::vector<std::string> names = split_csv(wl);
    try {
      trace::require_workload_names(names);
    } catch (const std::invalid_argument& e) {
      std::cerr << "bbsim: " << e.what() << "\n";
      return kExitUsage;
    }
    for (const auto& name : names) {
      workloads.push_back(trace::WorkloadProfile::by_name(name));
    }
  }

  std::vector<sim::MixSpec> mixes;
  const std::string mix_arg = flags.get_string("mix", "");
  if (!mix_arg.empty()) {
    try {
      for (const auto& spec : split_csv(mix_arg)) {
        mixes.push_back(sim::MixSpec::parse(spec));
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << "bbsim: " << e.what() << "\n";
      return kExitUsage;
    }
  }

  sim::SystemConfig cfg;
  cfg.warmup_ratio = flags.get_double("warmup", 100.0) / 100.0;
  cfg.core.cores = static_cast<u32>(flags.get_u64("cores", cfg.core.cores));
  cfg.seed = flags.get_u64("seed", cfg.seed);

  // Fault injection (opt-in; any of the three flags enables it). A bare
  // --fault-rate or --fault-seed implies the "mixed" profile.
  if (flags.has("fault-profile") || flags.has("fault-rate") ||
      flags.has("fault-seed")) {
    try {
      cfg.fault = fault::FaultConfig::profile(
          flags.get_string("fault-profile", "mixed"),
          flags.get_double("fault-rate", 1e-4),
          flags.get_u64("fault-seed", 0));
    } catch (const std::invalid_argument& e) {
      std::cerr << "bbsim: " << e.what() << "\n";
      return kExitUsage;
    }
  }

  // Request-queue layer (opt-in). --queue-depth=0 keeps it off; the
  // BB_QUEUE environment variable is the last word either way — "off" is
  // the hard kill switch that reproduces the unqueued legacy timing
  // bit-for-bit, "on" enables the FR-FCFS preset even with no flags.
  mem::QueueConfig qcfg = mem::QueueConfig::fr_fcfs();
  bool queue_on = false;
  if (flags.has("queue-depth")) {
    const u64 depth = flags.get_u64("queue-depth", qcfg.queue_depth);
    queue_on = depth > 0;
    if (queue_on) {
      qcfg.queue_depth = static_cast<u32>(depth);
      // Keep the default 3/4 : 1/4 hysteresis shape at any depth.
      qcfg.write_high_watermark =
          std::max<u32>(1, qcfg.queue_depth * 3 / 4);
      qcfg.write_low_watermark = qcfg.queue_depth / 4;
    }
  }
  if (flags.has("write-watermarks")) {
    if (flags.has("queue-depth") && !queue_on) {
      std::cerr << "bbsim: --write-watermarks conflicts with "
                   "--queue-depth=0\n";
      return kExitUsage;
    }
    const std::string wm = flags.get_string("write-watermarks", "");
    unsigned hi = 0, lo = 0;
    char extra = 0;
    if (std::sscanf(wm.c_str(), "%u:%u%c", &hi, &lo, &extra) != 2) {
      std::cerr << "bbsim: --write-watermarks expects HI:LO, got: " << wm
                << "\n";
      return kExitUsage;
    }
    if (!(lo < hi && hi <= qcfg.queue_depth)) {
      std::cerr << "bbsim: --write-watermarks requires LO < HI <= queue "
                   "depth ("
                << qcfg.queue_depth << ")\n";
      return kExitUsage;
    }
    qcfg.write_high_watermark = hi;
    qcfg.write_low_watermark = lo;
    queue_on = true;
  }
  if (const char* env = std::getenv("BB_QUEUE")) {
    const std::string v = env;
    if (v == "off" || v == "0") {
      queue_on = false;
    } else if (v == "on" || v == "1") {
      queue_on = true;
    } else if (!v.empty()) {
      std::cerr << "bbsim: BB_QUEUE must be on or off, got: " << v << "\n";
      return kExitUsage;
    }
  }
  if (queue_on) {
    cfg.hbm.queue = qcfg;
    cfg.dram.queue = qcfg;
  }

  // Observability (opt-in; off = zero overhead beyond a pointer test).
  const std::string epoch_csv = flags.get_string("epoch-csv", "");
  // --trace was renamed --event-trace when the binary miss-stream flags
  // (--capture-trace / --replay-trace) arrived; the old spelling remains
  // a deprecated alias.
  std::string trace_file = flags.get_string("event-trace", "");
  if (trace_file.empty() && flags.has("trace")) {
    trace_file = flags.get_string("trace", "");
    std::cerr << "bbsim: warning: --trace is deprecated, use "
                 "--event-trace\n";
  }
  const std::string trace_format = flags.get_string("trace-format", "jsonl");
  if (trace_format != "jsonl" && trace_format != "chrome") {
    std::cerr << "bbsim: unknown --trace-format: " << trace_format << "\n";
    return kExitUsage;
  }
  cfg.obs.trace = !trace_file.empty();
  if (!epoch_csv.empty() || flags.has("epoch-requests") ||
      flags.has("epoch-ticks")) {
    cfg.obs.epoch.every_requests = flags.get_u64("epoch-requests", 5'000);
    cfg.obs.epoch.every_ticks = flags.get_u64("epoch-ticks", 0);
  }

  // Binary miss-stream capture and replay (src/trace/stream.h).
  const std::string capture_path = flags.get_string("capture-trace", "");
  const std::string replay_path = flags.get_string("replay-trace", "");
  const std::string replay_mode = flags.get_string("replay-mode", "stream");
  const u64 chunk_records = flags.get_u64("chunk-records", 4096);
  if (replay_mode != "stream" && replay_mode != "memory") {
    std::cerr << "bbsim: --replay-mode must be stream or memory, got: "
              << replay_mode << "\n";
    return kExitUsage;
  }
  if (chunk_records == 0 || chunk_records > (u64{1} << 24)) {
    std::cerr << "bbsim: --chunk-records must be in [1, 2^24]\n";
    return kExitUsage;
  }
  if (!replay_path.empty()) {
    if (!capture_path.empty()) {
      std::cerr << "bbsim: --replay-trace conflicts with --capture-trace\n";
      return kExitUsage;
    }
    if (!mixes.empty()) {
      std::cerr << "bbsim: --replay-trace conflicts with --mix (captured "
                   "traces already merge all cores into one stream)\n";
      return kExitUsage;
    }
    if (flags.has("workloads")) {
      std::cerr << "bbsim: --replay-trace conflicts with --workloads (the "
                   "trace file is the workload)\n";
      return kExitUsage;
    }
  }
  trace::TraceCaptureSink capture;
  if (!capture_path.empty()) {
    // One sink records one run; a multi-cell matrix would interleave
    // unrelated streams (and race under --jobs).
    const std::size_t cells = designs.size() *
                              (mixes.empty() ? workloads.size() : mixes.size());
    if (cells != 1) {
      std::cerr << "bbsim: --capture-trace records exactly one run; use one "
                   "design and one workload (or one mix)\n";
      return kExitUsage;
    }
    trace::TraceWriterOptions wopts;
    wopts.codec = trace::parse_codec(
        flags.get_string("capture-codec", "varint"));
    wopts.chunk_records = static_cast<u32>(chunk_records);
    capture.open(capture_path, wopts);
    cfg.capture = &capture;
  }

  // Crash tolerance: mid-run snapshots, restore, and the cell watchdog.
  const std::string snapshot_dir = flags.get_string("snapshot-dir", "");
  const u64 snapshot_interval = flags.get_u64("snapshot-interval", 0);
  const bool restore = flags.has("restore");
  const double cell_timeout = flags.get_double("cell-timeout", 0.0);
  if (snapshot_interval > 0 && snapshot_dir.empty()) {
    std::cerr << "bbsim: --snapshot-interval requires --snapshot-dir\n";
    return kExitUsage;
  }
  if (restore && snapshot_dir.empty()) {
    std::cerr << "bbsim: --restore requires --snapshot-dir\n";
    return kExitUsage;
  }
  if (!snapshot_dir.empty() && snapshot_interval == 0 && !restore) {
    std::cerr << "bbsim: --snapshot-dir needs --snapshot-interval and/or "
                 "--restore\n";
    return kExitUsage;
  }
  if (!capture_path.empty() &&
      (!snapshot_dir.empty() || cell_timeout > 0)) {
    // A capture sink appends the whole miss stream in one pass; a resumed
    // or interrupted-and-retried run would duplicate records in it.
    std::cerr << "bbsim: --capture-trace conflicts with --snapshot-dir / "
                 "--cell-timeout\n";
    return kExitUsage;
  }
  cfg.snapshot.dir = snapshot_dir;
  cfg.snapshot.interval_records = snapshot_interval;
  cfg.snapshot.restore = restore;
  if (cfg.snapshot.configured()) {
    std::error_code ec;
    std::filesystem::create_directories(snapshot_dir, ec);
    if (ec) {
      std::cerr << "bbsim: cannot create --snapshot-dir: " << snapshot_dir
                << ": " << ec.message() << "\n";
      return kExitIo;
    }
  }

  sim::ExperimentRunner runner(cfg);
  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.target_misses = flags.get_u64("misses", 100'000);
  opts.instructions = flags.get_u64("instructions", 0);
  opts.cell_timeout_s = cell_timeout;
  opts.cell_retries = static_cast<u32>(flags.get_u64("cell-retries", 1));

  // Checkpoint/resume: restore finished cells from the journal, append
  // newly finished cells to it (crash-safe: one line per cell; a torn
  // final line from a killed run is skipped on load). A journal that
  // yields nothing but malformed lines is quarantined — renamed aside and
  // replaced with a fresh one — rather than silently re-simulating on top
  // of a file that will keep confusing every future resume.
  const std::string resume_file = flags.get_string("resume", "");
  sim::ResultJournal journal;
  std::ofstream journal_out;
  if (!resume_file.empty()) {
    std::vector<std::string> kept_lines;
    if (std::ifstream in{resume_file}) {
      const auto loaded = journal.load_stats(in, &kept_lines);
      in.close();
      if (loaded.restored == 0 && loaded.malformed > 0) {
        // quarantine_name never reuses an occupied .corrupt path, so a
        // journal quarantined by an earlier resume is not overwritten.
        const std::string quarantined = sim::quarantine_name(resume_file);
        if (std::rename(resume_file.c_str(), quarantined.c_str()) != 0) {
          std::cerr << "bbsim: cannot quarantine unparseable --resume file: "
                    << resume_file << "\n";
          return kExitIo;
        }
        std::cerr << "bbsim: warning: --resume file " << resume_file
                  << " had no parseable entries; moved to " << quarantined
                  << ", starting a fresh journal\n";
      } else {
        if (loaded.malformed > 0) {
          std::cerr << "bbsim: warning: skipped " << loaded.malformed
                    << " malformed journal line(s) in " << resume_file
                    << " (torn tail from an interrupted run?)\n";
          // Cleanse the torn tail before appending: atomically rewrite the
          // journal with only its well-formed lines, so the file a resumed
          // run leaves behind is byte-identical to an uninterrupted one.
          std::string cleansed;
          for (const auto& kept : kept_lines) {
            cleansed += kept;
            cleansed += '\n';
          }
          commit_artifact("resume", resume_file, cleansed);
        }
        if (loaded.restored > 0) {
          std::cerr << "resume: " << loaded.restored << " entries from "
                    << resume_file << "\n";
        }
      }
    }
    journal_out.open(resume_file, std::ios::app);
    if (!journal_out) {
      std::cerr << "bbsim: cannot open --resume file: " << resume_file
                << "\n";
      return kExitIo;
    }
    opts.resume = &journal;
  }

  const bool mix_mode = !mixes.empty();
  opts.on_result = [&journal_out, mix_mode](const sim::RunResult& r) {
    std::cerr << r.design << "/" << r.workload << " done\n";
    // Mix cells journal through on_mix_result (the aggregate is embedded
    // in the mix line); journaling it here too would double-book the cell.
    if (!mix_mode && journal_out.is_open()) {
      journal_out << sim::ResultJournal::line(r) << "\n" << std::flush;
    }
  };
  if (mix_mode) {
    opts.on_alone = [&journal_out](const std::string& design,
                                   const std::string& workload, double ipc) {
      if (journal_out.is_open()) {
        journal_out << sim::ResultJournal::alone_line(design, workload, ipc)
                    << "\n"
                    << std::flush;
      }
    };
    opts.on_mix_result = [&journal_out](const sim::MixResult& r) {
      if (journal_out.is_open()) {
        journal_out << sim::ResultJournal::mix_line(r) << "\n" << std::flush;
      }
    };
  }

  std::signal(SIGINT, on_sigint);
  opts.cancel = [] { return g_interrupted != 0; };

  // Host-side profiling (strictly observational: simulated outputs are
  // byte-identical with or without it; the golden-run test pins that).
  const bool profile = flags.has("profile");
  if (profile) {
    prof::reset();
    prof::enable(true);
  }
  const prof::Stopwatch run_clock;

  if (!replay_path.empty()) {
    sim::ExperimentRunner::ReplayMatrixOptions ropts;
    ropts.path = replay_path;
    // Result rows are labelled with the file name (sans directories), the
    // closest thing a trace has to a workload name.
    const std::size_t slash = replay_path.find_last_of('/');
    ropts.label = slash == std::string::npos ? replay_path
                                             : replay_path.substr(slash + 1);
    ropts.streaming = replay_mode == "stream";
    ropts.v1_chunk_records = static_cast<u32>(chunk_records);
    if (opts.instructions == 0) {
      // Default budget: exactly one pass over the trace. trace_info also
      // validates the file, so a bad path fails before any simulation.
      opts.instructions =
          trace::trace_info(replay_path,
                            trace::TraceReaderOptions{ropts.v1_chunk_records})
              .inst_gap_total;
      if (opts.instructions == 0) {
        std::cerr << "bbsim: trace " << replay_path
                  << " has zero instruction span; pass --instructions\n";
        return kExitUsage;
      }
    }
    runner.run_replay_matrix(designs, ropts, opts);
    // Point the summary-table loop at the replay pseudo-workload.
    trace::WorkloadProfile pseudo;
    pseudo.name = ropts.label;
    workloads = {pseudo};
  } else if (mix_mode) {
    runner.run_mix_matrix(designs, mixes, opts);
  } else {
    runner.run_matrix(designs, workloads, opts);
  }

  if (cfg.capture != nullptr) {
    if (!capture.close()) {
      std::cerr << "bbsim: error writing --capture-trace file: "
                << capture_path << "\n";
      return kExitIo;
    }
    std::cerr << "bbsim: captured " << capture.records() << " records to "
              << capture_path << "\n";
  }

  if (g_interrupted) {
    if (journal_out.is_open()) {
      journal_out.flush();
      journal_out.close();
      std::cerr << "bbsim: interrupted; journal flushed to " << resume_file
                << "; rerun with --resume=" << resume_file
                << " to continue\n";
    } else {
      std::cerr << "bbsim: interrupted; partial results discarded (use "
                   "--resume=FILE to make runs restartable)\n";
    }
    return kExitInterrupted;
  }

  // File artifacts are rendered in memory and committed with a
  // write-temp-then-rename, so a crash mid-write never leaves a torn file
  // (snap::write_file_atomic throws SnapshotError -> exit 3 on failure).
  if (!epoch_csv.empty()) {
    std::ostringstream out;
    runner.write_epoch_csv(out);
    commit_artifact("epoch-csv", epoch_csv, out.str());
  }
  if (!trace_file.empty()) {
    std::ostringstream out;
    runner.write_trace(out, trace_format == "chrome"
                                ? sim::ExperimentRunner::TraceFormat::kChrome
                                : sim::ExperimentRunner::TraceFormat::kJsonl);
    commit_artifact("event-trace", trace_file, out.str());
  }

  // The host report is assembled after the epoch/trace writes so their io
  // time is included; the stderr summary keeps stdout clean for results.
  prof::HostReport host;
  if (profile) {
    u64 requests = 0;
    if (mix_mode) {
      for (const auto& r : runner.mix_results()) requests += r.aggregate.misses;
    } else {
      for (const auto& r : runner.results()) requests += r.misses;
    }
    host = prof::make_host_report(run_clock.seconds(), requests);
    std::fprintf(stderr,
                 "[prof] wall %.3fs, %llu requests, %.0f req/s, "
                 "peak RSS %.1f MiB\n",
                 host.wall_seconds,
                 static_cast<unsigned long long>(host.requests),
                 host.requests_per_sec,
                 static_cast<double>(host.peak_rss_bytes) / (1024.0 * 1024.0));
    const double total_s =
        static_cast<double>(host.phases.total_ns()) * 1e-9;
    std::fprintf(stderr, "[prof] phases:");
    for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
      const double s = static_cast<double>(host.phases.ns[i]) * 1e-9;
      std::fprintf(stderr, " %s %.3fs (%.0f%%)",
                   prof::to_string(static_cast<prof::Phase>(i)), s,
                   total_s > 0 ? 100.0 * s / total_s : 0.0);
    }
    std::fprintf(stderr, "\n[prof] workers: %zu active\n",
                 host.worker_busy_ns_by_thread.size());
  }

  if (flags.has("csv")) {
    const std::string csv_file = flags.get_string("csv", "");
    std::ostringstream buf;
    std::ostream& os = csv_file.empty() ? static_cast<std::ostream&>(std::cout)
                                        : buf;
    if (mix_mode) {
      runner.write_mix_csv(os);
    } else {
      runner.write_csv(os);
    }
    if (!csv_file.empty()) commit_artifact("csv", csv_file, buf.str());
    return 0;
  }
  if (flags.has("json")) {
    const std::string json_file = flags.get_string("json", "");
    std::ostringstream buf;
    std::ostream& os = json_file.empty()
                           ? static_cast<std::ostream&>(std::cout)
                           : buf;
    if (mix_mode) {
      if (profile) {
        runner.write_mix_json(os, host);
      } else {
        runner.write_mix_json(os);
      }
    } else {
      if (profile) {
        runner.write_json(os, host);
      } else {
        runner.write_json(os);
      }
    }
    if (!json_file.empty()) commit_artifact("json", json_file, buf.str());
    return 0;
  }

  if (mix_mode) {
    TextTable table({"mix", "design", "core", "workload", "IPC", "alone",
                     "speedup", "HBM serve", "WS", "hmean", "max SD"});
    for (const auto& r : runner.mix_results()) {
      for (const auto& c : r.cores) {
        table.add_row({r.mix, r.design, std::to_string(c.perf.core),
                       c.perf.workload, fmt_double(c.perf.ipc, 2),
                       fmt_double(c.alone_ipc, 2),
                       fmt_double(c.speedup, 2) + "x",
                       fmt_percent(c.perf.hbm_serve_rate),
                       fmt_double(r.weighted_speedup, 2),
                       fmt_double(r.hmean_speedup, 2),
                       fmt_double(r.max_slowdown, 2)});
      }
    }
    table.print(std::cout);
    return 0;
  }

  TextTable table({"workload", "design", "IPC", "speedup", "HBM serve",
                   "HBM traffic", "DRAM traffic", "energy (mJ)"});
  for (const auto& w : workloads) {
    double base_ipc = 0;
    for (const auto& r : runner.results()) {
      if (r.workload == w.name && r.design == "DRAM-only") base_ipc = r.ipc;
    }
    for (const auto& r : runner.results()) {
      if (r.workload != w.name) continue;
      table.add_row(
          {r.workload, r.design, fmt_double(r.ipc, 2),
           base_ipc > 0 ? fmt_double(r.ipc / base_ipc, 2) + "x" : "-",
           fmt_percent(r.hbm_serve_rate),
           fmt_bytes(static_cast<double>(r.hbm_bytes)),
           fmt_bytes(static_cast<double>(r.dram_bytes)),
           fmt_double(r.energy_mj, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "bbsim", run);
}
