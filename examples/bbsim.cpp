// General-purpose simulation driver: run any (design x workload) matrix
// from the command line and emit a table or CSV.
//
//   ./bbsim --designs=DRAM-only,Bumblebee,Hybrid2 --workloads=mcf,wrf
//   ./bbsim --designs=all --workloads=all --misses=50000 --csv
//   ./bbsim --designs=DRAM-only,Bumblebee --workloads=mcf \
//           --epoch-csv=epochs.csv --trace=run.json --trace-format=chrome
//   ./bbsim --designs=Bumblebee --mix=mixed-locality4,mcf+lbm --csv
//
// Design names follow the factory (README); "all" expands to
// baselines::comparison_designs() — the Figure 8 set plus the
// PoM/SILC-FM/MemPod extensions. --mix switches to multi-programmed
// co-runs: each comma-separated entry is a preset name (--list-mixes) or
// '+'-joined workload names, one per core.
#include <fstream>
#include <iostream>
#include <sstream>

#include "baselines/factory.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout <<
        "usage: bbsim [--designs=a,b,...] [--workloads=x,y,...]\n"
        "              [--misses=N] [--warmup=PCT] [--cores=N] [--csv]\n"
        "              [--json]  (full per-run results incl. percentiles)\n"
        "              [--jobs=N]  (N worker threads; default: all)\n"
        "              [--epoch-csv=FILE]  (epoch time-series CSV)\n"
        "              [--epoch-requests=N]  (epoch every N requests;\n"
        "               default 5000 when --epoch-csv is given)\n"
        "              [--epoch-ticks=N]  (also close epochs every N ticks)\n"
        "              [--trace=FILE]  (structured event trace)\n"
        "              [--trace-format=jsonl|chrome]  (default jsonl)\n"
        "              [--resume=FILE]  (checkpoint journal: finished cells\n"
        "               are restored from FILE, new cells appended to it;\n"
        "               not supported with --mix)\n"
        "              [--mix=SPEC,...]  (multi-programmed co-runs: each\n"
        "               SPEC is a preset name or w1+w2+... per-core list)\n"
        "              [--instructions=N]  (fixed budget: per cell, or per\n"
        "               core with --mix; overrides --misses)\n"
        "              [--list-workloads] [--list-mixes]\n";
    std::cout << "designs:";
    for (const auto& name : baselines::all_design_names()) {
      std::cout << ' ' << name;
    }
    std::cout << " | all\nworkloads: Table II names | all\n";
    return 0;
  }
  if (flags.has("list-workloads")) {
    for (const auto& name : trace::workload_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flags.has("list-mixes")) {
    for (const auto& m : sim::MixSpec::presets()) {
      std::cout << m.name << ":";
      for (const auto& w : m.workloads) std::cout << ' ' << w;
      std::cout << "\n";
    }
    return 0;
  }

  std::vector<std::string> designs =
      split_csv(flags.get_string("designs", "DRAM-only,Bumblebee"));
  if (designs.size() == 1 && designs[0] == "all") {
    designs = baselines::comparison_designs();
  }
  try {
    baselines::require_design_names(designs);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bbsim: " << e.what() << "\n";
    return 1;
  }

  std::vector<trace::WorkloadProfile> workloads;
  const std::string wl = flags.get_string("workloads", "mcf");
  if (wl == "all") {
    workloads = trace::WorkloadProfile::spec2017();
  } else {
    const std::vector<std::string> names = split_csv(wl);
    try {
      trace::require_workload_names(names);
    } catch (const std::invalid_argument& e) {
      std::cerr << "bbsim: " << e.what() << "\n";
      return 1;
    }
    for (const auto& name : names) {
      workloads.push_back(trace::WorkloadProfile::by_name(name));
    }
  }

  std::vector<sim::MixSpec> mixes;
  const std::string mix_arg = flags.get_string("mix", "");
  if (!mix_arg.empty()) {
    try {
      for (const auto& spec : split_csv(mix_arg)) {
        mixes.push_back(sim::MixSpec::parse(spec));
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << "bbsim: " << e.what() << "\n";
      return 1;
    }
  }

  sim::SystemConfig cfg;
  cfg.warmup_ratio = flags.get_double("warmup", 100.0) / 100.0;
  cfg.core.cores = static_cast<u32>(flags.get_u64("cores", cfg.core.cores));
  cfg.seed = flags.get_u64("seed", cfg.seed);

  // Observability (opt-in; off = zero overhead beyond a pointer test).
  const std::string epoch_csv = flags.get_string("epoch-csv", "");
  const std::string trace_file = flags.get_string("trace", "");
  const std::string trace_format = flags.get_string("trace-format", "jsonl");
  if (trace_format != "jsonl" && trace_format != "chrome") {
    std::cerr << "bbsim: unknown --trace-format: " << trace_format << "\n";
    return 1;
  }
  cfg.obs.trace = !trace_file.empty();
  if (!epoch_csv.empty() || flags.has("epoch-requests") ||
      flags.has("epoch-ticks")) {
    cfg.obs.epoch.every_requests = flags.get_u64("epoch-requests", 5'000);
    cfg.obs.epoch.every_ticks = flags.get_u64("epoch-ticks", 0);
  }

  sim::ExperimentRunner runner(cfg);
  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.target_misses = flags.get_u64("misses", 100'000);
  opts.instructions = flags.get_u64("instructions", 0);

  // Checkpoint/resume: restore finished cells from the journal, append
  // newly finished cells to it (crash-safe: one line per cell, malformed
  // trailing lines are skipped on load).
  const std::string resume_file = flags.get_string("resume", "");
  if (!mixes.empty() && !resume_file.empty()) {
    std::cerr << "bbsim: --resume is not supported with --mix (alone-run "
                 "baselines are not journaled)\n";
    return 1;
  }
  sim::ResultJournal journal;
  std::ofstream journal_out;
  if (!resume_file.empty()) {
    if (std::ifstream in{resume_file}) {
      const std::size_t n = journal.load(in);
      if (n) std::cerr << "resume: " << n << " cells from " << resume_file
                       << "\n";
    }
    journal_out.open(resume_file, std::ios::app);
    if (!journal_out) {
      std::cerr << "bbsim: cannot open --resume file: " << resume_file
                << "\n";
      return 1;
    }
    opts.resume = &journal;
  }
  opts.on_result = [&journal_out](const sim::RunResult& r) {
    std::cerr << r.design << "/" << r.workload << " done\n";
    if (journal_out.is_open()) {
      journal_out << sim::ResultJournal::line(r) << "\n" << std::flush;
    }
  };
  if (!mixes.empty()) {
    runner.run_mix_matrix(designs, mixes, opts);
  } else {
    runner.run_matrix(designs, workloads, opts);
  }

  if (!epoch_csv.empty()) {
    std::ofstream out(epoch_csv);
    if (!out) {
      std::cerr << "bbsim: cannot open --epoch-csv file: " << epoch_csv
                << "\n";
      return 1;
    }
    runner.write_epoch_csv(out);
  }
  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    if (!out) {
      std::cerr << "bbsim: cannot open --trace file: " << trace_file << "\n";
      return 1;
    }
    runner.write_trace(out, trace_format == "chrome"
                                ? sim::ExperimentRunner::TraceFormat::kChrome
                                : sim::ExperimentRunner::TraceFormat::kJsonl);
  }

  if (flags.has("csv")) {
    if (!mixes.empty()) {
      runner.write_mix_csv(std::cout);
    } else {
      runner.write_csv(std::cout);
    }
    return 0;
  }
  if (flags.has("json")) {
    if (!mixes.empty()) {
      runner.write_mix_json(std::cout);
    } else {
      runner.write_json(std::cout);
    }
    return 0;
  }

  if (!mixes.empty()) {
    TextTable table({"mix", "design", "core", "workload", "IPC", "alone",
                     "speedup", "HBM serve", "WS", "hmean", "max SD"});
    for (const auto& r : runner.mix_results()) {
      for (const auto& c : r.cores) {
        table.add_row({r.mix, r.design, std::to_string(c.perf.core),
                       c.perf.workload, fmt_double(c.perf.ipc, 2),
                       fmt_double(c.alone_ipc, 2),
                       fmt_double(c.speedup, 2) + "x",
                       fmt_percent(c.perf.hbm_serve_rate),
                       fmt_double(r.weighted_speedup, 2),
                       fmt_double(r.hmean_speedup, 2),
                       fmt_double(r.max_slowdown, 2)});
      }
    }
    table.print(std::cout);
    return 0;
  }

  TextTable table({"workload", "design", "IPC", "speedup", "HBM serve",
                   "HBM traffic", "DRAM traffic", "energy (mJ)"});
  for (const auto& w : workloads) {
    double base_ipc = 0;
    for (const auto& r : runner.results()) {
      if (r.workload == w.name && r.design == "DRAM-only") base_ipc = r.ipc;
    }
    for (const auto& r : runner.results()) {
      if (r.workload != w.name) continue;
      table.add_row(
          {r.workload, r.design, fmt_double(r.ipc, 2),
           base_ipc > 0 ? fmt_double(r.ipc / base_ipc, 2) + "x" : "-",
           fmt_percent(r.hbm_serve_rate),
           fmt_bytes(static_cast<double>(r.hbm_bytes)),
           fmt_bytes(static_cast<double>(r.dram_bytes)),
           fmt_double(r.energy_mj, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
