// General-purpose simulation driver: run any (design x workload) matrix
// from the command line and emit a table or CSV.
//
//   ./bb_sim --designs=DRAM-only,Bumblebee,Hybrid2 --workloads=mcf,wrf \
//            --misses=100000 --warmup=200 --csv
//   ./bb_sim --designs=all --workloads=all --misses=50000
//
// Design names follow the factory (README); "all" expands to the Figure 8
// set plus the PoM/MemPod extensions.
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout <<
        "usage: bbsim [--designs=a,b,...] [--workloads=x,y,...]\n"
        "              [--misses=N] [--warmup=PCT] [--cores=N] [--csv]\n"
        "              [--json]  (full per-run results incl. per-class bytes)\n"
        "              [--jobs=N]  (N worker threads; default: all)\n"
        "designs: DRAM-only Banshee AC UC Chameleon Hybrid2 Bumblebee\n"
        "         C-Only M-Only 25%-C 50%-C No-Multi Meta-H Alloc-D\n"
        "         Alloc-H No-HMF PoM SILC-FM MemPod | all\n"
        "workloads: Table II names | all\n";
    return 0;
  }

  std::vector<std::string> designs =
      split_csv(flags.get_string("designs", "DRAM-only,Bumblebee"));
  if (designs.size() == 1 && designs[0] == "all") {
    designs = {"DRAM-only", "Banshee",  "AC",     "UC",     "Chameleon",
               "Hybrid2",   "PoM",      "SILC-FM", "MemPod", "Bumblebee"};
  }

  std::vector<trace::WorkloadProfile> workloads;
  const std::string wl = flags.get_string("workloads", "mcf");
  if (wl == "all") {
    workloads = trace::WorkloadProfile::spec2017();
  } else {
    for (const auto& name : split_csv(wl)) {
      workloads.push_back(trace::WorkloadProfile::by_name(name));
    }
  }

  sim::SystemConfig cfg;
  cfg.warmup_ratio = flags.get_double("warmup", 100.0) / 100.0;
  cfg.core.cores = static_cast<u32>(flags.get_u64("cores", cfg.core.cores));
  cfg.seed = flags.get_u64("seed", cfg.seed);

  sim::ExperimentRunner runner(cfg);
  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.target_misses = flags.get_u64("misses", 100'000);
  opts.on_result = [](const sim::RunResult& r) {
    std::cerr << r.design << "/" << r.workload << " done\n";
  };
  runner.run_matrix(designs, workloads, opts);

  if (flags.has("csv")) {
    runner.write_csv(std::cout);
    return 0;
  }
  if (flags.has("json")) {
    runner.write_json(std::cout);
    return 0;
  }

  TextTable table({"workload", "design", "IPC", "speedup", "HBM serve",
                   "HBM traffic", "DRAM traffic", "energy (mJ)"});
  for (const auto& w : workloads) {
    double base_ipc = 0;
    for (const auto& r : runner.results()) {
      if (r.workload == w.name && r.design == "DRAM-only") base_ipc = r.ipc;
    }
    for (const auto& r : runner.results()) {
      if (r.workload != w.name) continue;
      table.add_row(
          {r.workload, r.design, fmt_double(r.ipc, 2),
           base_ipc > 0 ? fmt_double(r.ipc / base_ipc, 2) + "x" : "-",
           fmt_percent(r.hbm_serve_rate),
           fmt_bytes(static_cast<double>(r.hbm_bytes)),
           fmt_bytes(static_cast<double>(r.dram_bytes)),
           fmt_double(r.energy_mj, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
