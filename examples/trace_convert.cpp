// trace_convert: ingest foreign text traces into the native v2 binary
// format, and inspect / validate existing binary traces.
//
//   ./trace_convert --in=packets.txt --format=gem5 --out=packets.bbtrace
//   ./trace_convert --in=dram.trace --format=ramulator --out=dram.bbtrace
//   ./trace_convert --in=misses.csv --format=csv --out=misses.bbtrace
//   ./trace_convert --info=misses.bbtrace
//   ./trace_convert --verify=misses.bbtrace
//
// Formats and per-line grammars are documented in src/trace/convert.h;
// the v2 binary layout in src/trace/stream.h. Exit codes follow the
// shared CLI contract: 2 for malformed input (parse errors name the
// 1-based line), 3 for I/O failures.
#include <iostream>

#include "common/cli.h"
#include "common/flags.h"
#include "trace/convert.h"
#include "trace/stream.h"

using namespace bb;

namespace {

void print_info(const trace::TraceInfo& info, const std::string& path) {
  std::cout << path << ": v" << info.version << " "
            << trace::codec_name(info.codec) << ", " << info.records
            << " records, " << info.inst_gap_total << " instructions/pass, "
            << info.chunks << " chunks, " << info.file_bytes << " bytes"
            << " (max chunk: " << info.max_chunk_records << " records, "
            << info.max_chunk_payload << " B payload)\n";
}

int run(const Flags& flags) {
  if (flags.has("help")) {
    std::cout <<
        "usage: trace_convert --in=FILE --format=gem5|ramulator|csv\n"
        "                     --out=FILE  (v2 binary trace)\n"
        "                     [--codec=varint|raw|zlib]  (default varint)\n"
        "                     [--chunk-records=N]  (default 4096)\n"
        "                     [--ticks-per-inst=T]  (gem5 tick scaling;\n"
        "                      default 1000 = 1 GHz core at 1 IPC over\n"
        "                      1 ps ticks)\n"
        "                     [--gap=N]  (ramulator DRAM-trace inst gap;\n"
        "                      default 1)\n"
        "                     [--no-align]  (keep raw addresses instead of\n"
        "                      64 B line alignment)\n"
        "       trace_convert --info=FILE    (structural walk, no decode)\n"
        "       trace_convert --verify=FILE  (decode every chunk, check\n"
        "                      all checksums and counts)\n"
        "exit codes: 0 ok, 2 malformed input, 3 I/O error\n";
    return 0;
  }

  const u64 chunk_records = flags.get_u64("chunk-records", 4096);
  if (chunk_records == 0 || chunk_records > (u64{1} << 24)) {
    std::cerr << "trace_convert: --chunk-records must be in [1, 2^24]\n";
    return cli::kExitUsage;
  }
  const trace::TraceReaderOptions reader_opts{
      static_cast<u32>(chunk_records)};

  if (flags.has("info")) {
    const std::string path = flags.get_string("info", "");
    print_info(trace::trace_info(path, reader_opts), path);
    return 0;
  }
  if (flags.has("verify")) {
    const std::string path = flags.get_string("verify", "");
    const auto info = trace::validate_trace(path, reader_opts);
    print_info(info, path);
    std::cout << "ok: all chunk checksums, the stream checksum and the "
                 "record count verified\n";
    return 0;
  }

  const std::string in = flags.get_string("in", "");
  const std::string out = flags.get_string("out", "");
  if (in.empty() || out.empty()) {
    std::cerr << "trace_convert: --in and --out are required "
                 "(see --help)\n";
    return cli::kExitUsage;
  }

  trace::ConvertOptions opts;
  opts.format = trace::parse_format(flags.get_string("format", "csv"));
  opts.ticks_per_inst = flags.get_double("ticks-per-inst", 1000.0);
  opts.default_gap = flags.get_u64("gap", 1);
  opts.align_lines = !flags.has("no-align");
  if (opts.ticks_per_inst <= 0) {
    std::cerr << "trace_convert: --ticks-per-inst must be positive\n";
    return cli::kExitUsage;
  }

  trace::TraceWriterOptions writer;
  writer.codec = trace::parse_codec(flags.get_string("codec", "varint"));
  writer.chunk_records = static_cast<u32>(chunk_records);

  const auto stats = trace::convert_file(in, out, opts, writer);
  std::cout << "converted " << stats.lines << " "
            << trace::format_name(opts.format) << " lines to "
            << stats.records << " records (" << stats.reads << " reads, "
            << stats.writes << " writes): " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "trace_convert", run);
}
