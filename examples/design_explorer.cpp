// Design-space exploration through the public API: sweep Bumblebee's block
// and page size for one workload and report performance, metadata budget
// and over-fetch — the Figure 6 / Section IV-B methodology on a single
// benchmark, as a library user would run it.
//
//   ./design_explorer [workload] [instructions] [--jobs N] [--baseline D]
//
// --jobs N spreads the nine configurations over N worker threads
// (default: all hardware threads). --baseline picks the normalization
// design (factory name, default DRAM-only).
#include <iostream>
#include <string>

#include "baselines/factory.h"
#include "bumblebee/config.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto& pos = flags.positional();
  const std::string workload_name = !pos.empty() ? pos[0] : "cactuBSSN";
  const u64 instructions =
      pos.size() > 1 ? std::stoull(pos[1])
                     : sim::env_u64("BB_INSTRUCTIONS", 30'000'000);
  const std::string baseline = flags.get_string("baseline", "DRAM-only");
  try {
    baselines::require_design_names({baseline});
  } catch (const std::invalid_argument& e) {
    std::cerr << "design_explorer: " << e.what() << "\n";
    return 1;
  }

  const auto& w = trace::WorkloadProfile::by_name(workload_name);

  std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>> configs;
  for (const u64 block_kb : {1, 2, 4}) {
    for (const u64 page_kb : {64, 96, 128}) {
      bumblebee::BumblebeeConfig cfg;
      cfg.block_bytes = block_kb * KiB;
      cfg.page_bytes = page_kb * KiB;
      configs.emplace_back(std::to_string(block_kb) + " KiB / " +
                               std::to_string(page_kb) + " KiB",
                           cfg);
    }
  }

  sim::ExperimentRunner runner;
  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.instructions = instructions;
  runner.run_matrix({baseline}, {w}, opts);
  runner.run_bumblebee_matrix(configs, {w}, opts);

  const double base_ipc = runner.results().front().ipc;
  std::cout << "Design space for " << w.name << " (normalized to "
            << baseline << " " << fmt_double(base_ipc, 2) << " IPC)\n\n";
  TextTable table({"block", "page", "normalized IPC", "HBM serve",
                   "over-fetch", "metadata"});
  for (const auto& [label, cfg] : configs) {
    const auto r = runner.for_design(label).front();
    const auto geo = bumblebee::Geometry::make(cfg, 1 * GiB, 10 * GiB);
    const auto budget = bumblebee::metadata_budget(cfg, geo);
    const auto slash = label.find(" / ");
    table.add_row({label.substr(0, slash), label.substr(slash + 3),
                   fmt_double(r.ipc / base_ipc, 2),
                   fmt_percent(r.hbm_serve_rate),
                   fmt_percent(r.overfetch),
                   fmt_bytes(static_cast<double>(budget.total()))});
  }
  table.print(std::cout);
  return 0;
}
