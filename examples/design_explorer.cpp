// Design-space exploration through the public API: sweep Bumblebee's block
// and page size for one workload and report performance, metadata budget
// and over-fetch — the Figure 6 / Section IV-B methodology on a single
// benchmark, as a library user would run it.
#include <iostream>
#include <string>

#include "bumblebee/config.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "cactuBSSN";
  const u64 instructions =
      argc > 2 ? std::stoull(argv[2])
               : sim::env_u64("BB_INSTRUCTIONS", 30'000'000);

  const auto& w = trace::WorkloadProfile::by_name(workload_name);
  sim::System system;
  const auto base = system.run("DRAM-only", w, instructions);

  std::cout << "Design space for " << w.name << " (normalized to DRAM-only "
            << fmt_double(base.ipc, 2) << " IPC)\n\n";
  TextTable table({"block", "page", "normalized IPC", "HBM serve",
                   "over-fetch", "metadata"});
  for (const u64 block_kb : {1, 2, 4}) {
    for (const u64 page_kb : {64, 96, 128}) {
      bumblebee::BumblebeeConfig cfg;
      cfg.block_bytes = block_kb * KiB;
      cfg.page_bytes = page_kb * KiB;
      const auto r = system.run_bumblebee(cfg, w, instructions);
      const auto geo = bumblebee::Geometry::make(cfg, 1 * GiB, 10 * GiB);
      const auto budget = bumblebee::metadata_budget(cfg, geo);
      table.add_row({std::to_string(block_kb) + " KiB",
                     std::to_string(page_kb) + " KiB",
                     fmt_double(r.ipc / base.ipc, 2),
                     fmt_percent(r.hbm_serve_rate),
                     fmt_percent(r.overfetch),
                     fmt_bytes(static_cast<double>(budget.total()))});
    }
  }
  table.print(std::cout);
  return 0;
}
