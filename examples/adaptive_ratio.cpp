// The headline Bumblebee feature: the cHBM : mHBM ratio adapts in real
// time as the workload's locality changes — no reboot, no reconfiguration.
//
// This scenario runs three phases through ONE controller instance:
//   phase 1: mcf-like   (strong spatial + strong temporal)
//   phase 2: wrf-like   (weak spatial + strong temporal)
//   phase 3: xz-like    (strong spatial + weak temporal)
// and samples the HBM frame population (cHBM / mHBM / free) over time.
// Expect the mHBM share to dominate in phases 1 and 3 and the cHBM share
// to grow in phase 2 — Section II-B's motivation, live.
#include <iostream>

#include "bumblebee/controller.h"
#include "common/table.h"
#include "sim/system.h"
#include "trace/generator.h"

using namespace bb;

int main(int argc, char** argv) {
  const u64 per_phase =
      argc > 1 ? std::stoull(argv[1])
               : sim::env_u64("BB_PHASE_MISSES", 400'000);

  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  mem::DramDevice dram(mem::DramTimingParams::ddr4_3200_10gb());
  bumblebee::BumblebeeController ctl(bumblebee::BumblebeeConfig::baseline(),
                                     hbm, dram);

  TextTable table({"phase", "progress", "cHBM frames", "mHBM frames",
                   "free", "cHBM share of used"});

  Tick now = 0;
  const char* phases[] = {"mcf", "wrf", "xz"};
  for (const char* phase : phases) {
    trace::TraceGenerator gen(trace::WorkloadProfile::by_name(phase), 17);
    for (u64 i = 0; i < per_phase; ++i) {
      const auto rec = gen.next();
      now += rec.inst_gap * 70;  // ~4 IPC pacing at 3.6 GHz
      ctl.access(rec.addr, rec.type, now);
      if ((i + 1) % (per_phase / 4) == 0) {
        const auto r = ctl.ratio();
        const u64 used = r.chbm_frames + r.mhbm_frames;
        table.add_row(
            {phase, fmt_percent(static_cast<double>(i + 1) /
                                static_cast<double>(per_phase), 0),
             std::to_string(r.chbm_frames), std::to_string(r.mhbm_frames),
             std::to_string(r.free_frames),
             used ? fmt_percent(static_cast<double>(r.chbm_frames) /
                                static_cast<double>(used))
                  : "-"});
      }
    }
  }

  std::cout << "Adaptive cHBM:mHBM ratio across workload phases\n";
  table.print(std::cout);

  const auto& b = ctl.bb_stats();
  std::cout << "\nmode switches: " << b.cache_to_mem_switches
            << " cHBM->mHBM, " << b.mem_to_cache_buffers
            << " mHBM->cHBM (buffered evictions); " << b.page_migrations
            << " page migrations, " << b.block_fetches << " block fetches\n";
  return 0;
}
