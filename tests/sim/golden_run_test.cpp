// Golden-run regression test.
//
// Runs a tiny fixed-seed (design x workload) matrix and pins an FNV-1a
// hash of the full write_csv + write_json output. Any change to simulation
// behavior — intended or not — flips the hash, so mechanical refactors
// (warning hardening, clang-tidy cleanups, lint-driven container changes)
// can be proven behavior-preserving by this test alone.
//
// If the hash changes because of an *intended* behavioral change, rerun
// the test: the failure message prints the new hash to pin. Update the
// constant in the same commit as the behavioral change and say why.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/experiment.h"

namespace bb::sim {
namespace {

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms.
u64 fnv1a(const std::string& s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

TEST(GoldenRun, FixedSeedMatrixHashIsPinned) {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  cfg.seed = 42;

  RunMatrixOptions opts;
  opts.jobs = 1;
  // Fixed budget: keeps the run fast and independent of the
  // default_instructions_for heuristic (and its BB_SIM_SCALE env override).
  opts.instructions = 150'000;

  ExperimentRunner ex(cfg);
  ex.run_matrix({"DRAM-only", "Bumblebee", "Banshee"},
                {trace::WorkloadProfile::by_name("mcf"),
                 trace::WorkloadProfile::by_name("lbm")},
                opts);
  ASSERT_EQ(ex.results().size(), 6u);

  std::ostringstream csv, json;
  ex.write_csv(csv);
  ex.write_json(json);
  const u64 hash = fnv1a(csv.str() + json.str());

  // Re-pinned in PR 3: write_csv/write_json gained latency percentile
  // columns (latency_p50/p90/p99/p999_ns). Simulation behavior itself is
  // unchanged — every pre-existing column was verified byte-identical
  // against the prior pin before updating.
  const u64 kGoldenHash = 0x8926c109d41097d0ULL;
  EXPECT_EQ(hash, kGoldenHash)
      << "golden-run output changed; new hash: 0x" << std::hex << hash
      << "\nIf this change is intended, update kGoldenHash and justify the "
         "behavioral change in the commit.";
}

}  // namespace
}  // namespace bb::sim
