// In-process kill-and-resume coverage for the crash-tolerance layer: an
// interrupted run resumed from its snapshot must reproduce the
// uninterrupted run's results exactly, corrupt snapshots must fail closed,
// designs without snapshot support must be rejected up front, and the
// matrix watchdog must degrade exhausted cells to timed_out placeholder
// rows. The process-level SIGKILL variants live in
// tools/check_crash_recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/snapshot.h"
#include "sim/core_model.h"
#include "sim/experiment.h"
#include "sim/system.h"

namespace bb::sim {
namespace {

SystemConfig fast_config() {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 64 * MiB;
  cfg.dram.capacity_bytes = 640 * MiB;
  cfg.core.cores = 2;
  cfg.warmup_ratio = 0.5;
  return cfg;
}

SystemConfig snapshot_config(const char* subdir) {
  SystemConfig cfg = fast_config();
  cfg.snapshot.dir = std::string(::testing::TempDir()) + "/" + subdir;
  cfg.snapshot.interval_records = 256;
  // bbsim creates the directory for its users; in-process callers own it.
  std::filesystem::create_directories(cfg.snapshot.dir);
  return cfg;
}

/// The snapshot file System uses for a plain run cell (kind "run",
/// non-alphanumerics in the design/workload mapped to '_').
std::string snap_path(const SystemConfig& cfg, std::string design,
                      const std::string& workload) {
  for (char& c : design) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return cfg.snapshot.dir + "/run__" + design + "__" + workload + ".bbsnap";
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.hbm_bytes, b.hbm_bytes);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_EQ(a.page_faults, b.page_faults);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.energy_mj, b.energy_mj);
  EXPECT_DOUBLE_EQ(a.hbm_serve_rate, b.hbm_serve_rate);
  EXPECT_DOUBLE_EQ(a.mean_latency_ns, b.mean_latency_ns);
  EXPECT_DOUBLE_EQ(a.latency_p99_ns, b.latency_p99_ns);
  EXPECT_DOUBLE_EQ(a.latency_p999_ns, b.latency_p999_ns);
}

/// Interrupts the run at the `stop_at`-th record-boundary poll (a snapshot
/// is committed at the same boundary, just before the poll), then resumes
/// from that snapshot and requires results identical to an uninterrupted
/// run of the same cell.
void kill_and_resume(const char* design, const char* subdir) {
  const auto& w = trace::WorkloadProfile::by_name("mcf");
  constexpr u64 kInstructions = 400'000;

  SystemConfig cfg = snapshot_config(subdir);
  System reference(fast_config());
  const RunResult want = reference.run(design, w, kInstructions);

  System sys(cfg);
  int polls = 0;
  sys.set_interrupt([&polls] { return ++polls >= 3; });
  EXPECT_THROW(sys.run(design, w, kInstructions), RunInterrupted);
  EXPECT_TRUE(snap::file_exists(snap_path(cfg, design, "mcf")));

  sys.set_interrupt({});
  sys.allow_restore_once();
  const RunResult got = sys.run(design, w, kInstructions);
  expect_identical(want, got);
  // A finished cell leaves no snapshot behind.
  EXPECT_FALSE(snap::file_exists(snap_path(cfg, design, "mcf")));
}

TEST(SystemSnapshot, KillAndResumeDramOnlyIsExact) {
  kill_and_resume("DRAM-only", "snap_dramonly");
}

TEST(SystemSnapshot, KillAndResumeBumblebeeIsExact) {
  kill_and_resume("Bumblebee", "snap_bumblebee");
}

TEST(SystemSnapshot, UninterruptedRunWithSnapshotsMatchesPlainRun) {
  const auto& w = trace::WorkloadProfile::by_name("mcf");
  System plain(fast_config());
  const RunResult want = plain.run("Bumblebee", w, 300'000);
  System snapped(snapshot_config("snap_clean"));
  const RunResult got = snapped.run("Bumblebee", w, 300'000);
  expect_identical(want, got);
}

TEST(SystemSnapshot, UnsupportedDesignIsUsageError) {
  // Full-size devices: Hybrid2's geometry assumes production capacities
  // (its construction predates the snapshot-support check).
  SystemConfig cfg;
  cfg.snapshot.dir =
      std::string(::testing::TempDir()) + "/snap_unsupported";
  cfg.snapshot.interval_records = 256;
  std::filesystem::create_directories(cfg.snapshot.dir);
  System sys(cfg);
  EXPECT_THROW(
      sys.run("Hybrid2", trace::WorkloadProfile::by_name("mcf"), 100'000),
      std::invalid_argument);
}

TEST(SystemSnapshot, CorruptSnapshotFailsClosed) {
  const auto& w = trace::WorkloadProfile::by_name("mcf");
  SystemConfig cfg = snapshot_config("snap_corrupt");
  System sys(cfg);
  int polls = 0;
  sys.set_interrupt([&polls] { return ++polls >= 2; });
  EXPECT_THROW(sys.run("DRAM-only", w, 400'000), RunInterrupted);

  const std::string path = snap_path(cfg, "DRAM-only", "mcf");
  ASSERT_TRUE(snap::file_exists(path));
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  sys.set_interrupt({});
  sys.allow_restore_once();
  EXPECT_THROW(sys.run("DRAM-only", w, 400'000), snap::SnapshotError);
  std::remove(path.c_str());
}

TEST(Watchdog, ExhaustedCellCommitsTimedOutPlaceholder) {
  ExperimentRunner runner(snapshot_config("snap_watchdog"));
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 400'000;
  opts.cell_timeout_s = 1e-9;  // trips at the first record-boundary poll
  opts.cell_retries = 1;
  runner.run_matrix({"DRAM-only", "Bumblebee"},
                    {trace::WorkloadProfile::by_name("mcf")}, opts);
  ASSERT_EQ(runner.results().size(), 2u);
  for (const RunResult& r : runner.results()) {
    EXPECT_TRUE(r.timed_out);
    EXPECT_EQ(r.workload, "mcf");
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_DOUBLE_EQ(r.ipc, 0.0);
  }
  std::ostringstream csv;
  runner.write_csv(csv);
  EXPECT_NE(csv.str().find("timed_out"), std::string::npos);
}

TEST(Watchdog, GenerousDeadlineLeavesResultsUntouched) {
  const auto& w = trace::WorkloadProfile::by_name("mcf");
  System plain(fast_config());
  const RunResult want = plain.run("Bumblebee", w, 300'000);

  ExperimentRunner runner(snapshot_config("snap_nodeadline"));
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 300'000;
  opts.cell_timeout_s = 3600.0;
  runner.run_matrix({"Bumblebee"}, {w}, opts);
  ASSERT_EQ(runner.results().size(), 1u);
  EXPECT_FALSE(runner.results()[0].timed_out);
  expect_identical(want, runner.results()[0]);
  // No timed-out cell -> the placeholder column stays out of the schema.
  std::ostringstream csv;
  runner.write_csv(csv);
  EXPECT_EQ(csv.str().find("timed_out"), std::string::npos);
}

TEST(Journal, TimedOutRowsAreRetriedOnResume) {
  RunResult r;
  r.design = "Bumblebee";
  r.workload = "mcf";
  r.timed_out = true;
  ResultJournal journal;
  std::stringstream stream(ResultJournal::line(r) + "\n");
  EXPECT_EQ(journal.load(stream), 1u);
  // A timed-out placeholder never satisfies a resume lookup: the resumed
  // sweep re-runs the cell instead of propagating the zero row.
  EXPECT_EQ(journal.find("Bumblebee", "mcf"), nullptr);
}

TEST(Journal, LoadStatsCollectsWellFormedLines) {
  RunResult a;
  a.design = "A";
  a.workload = "mcf";
  a.ipc = 1.5;
  RunResult b;
  b.design = "B";
  b.workload = "mcf";
  b.ipc = 2.5;
  const std::string la = ResultJournal::line(a);
  const std::string lb = ResultJournal::line(b);
  std::stringstream stream(la + "\n" + lb + "\n" + lb.substr(0, 17));
  ResultJournal journal;
  std::vector<std::string> kept;
  const auto stats = journal.load_stats(stream, &kept);
  EXPECT_EQ(stats.restored, 2u);
  EXPECT_EQ(stats.malformed, 1u);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], la);
  EXPECT_EQ(kept[1], lb);
}

TEST(Quarantine, NamesNeverCollide) {
  const std::string base =
      std::string(::testing::TempDir()) + "/journal.jsonl";
  EXPECT_EQ(quarantine_name(base), base + ".corrupt");
  std::ofstream(base + ".corrupt") << "x";
  EXPECT_EQ(quarantine_name(base), base + ".corrupt.1");
  std::ofstream(base + ".corrupt.1") << "x";
  EXPECT_EQ(quarantine_name(base), base + ".corrupt.2");
  std::remove((base + ".corrupt").c_str());
  std::remove((base + ".corrupt.1").c_str());
}

}  // namespace
}  // namespace bb::sim
