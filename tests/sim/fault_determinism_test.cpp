// Fault-injection determinism: the same seed + fault config must produce
// byte-identical CSV / JSON / epoch / trace output regardless of --jobs,
// different fault seeds must actually perturb the run, and the reliability
// columns appear exactly when fault injection is configured.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/experiment.h"

namespace bb::sim {
namespace {

SystemConfig fault_cfg(u64 fault_seed) {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  cfg.seed = 42;
  cfg.fault = fault::FaultConfig::profile("mixed", 1e-3, fault_seed);
  cfg.obs.trace = true;
  cfg.obs.epoch.every_requests = 2'000;
  return cfg;
}

struct Outputs {
  std::string csv, json, epoch, trace;
};

Outputs run_matrix_outputs(const SystemConfig& cfg, unsigned jobs) {
  RunMatrixOptions opts;
  opts.jobs = jobs;
  opts.instructions = 120'000;
  ExperimentRunner ex(cfg);
  ex.run_matrix({"DRAM-only", "Bumblebee"},
                {trace::WorkloadProfile::by_name("mcf"),
                 trace::WorkloadProfile::by_name("lbm")},
                opts);
  Outputs out;
  std::ostringstream csv, json, epoch, trace;
  ex.write_csv(csv);
  ex.write_json(json);
  ex.write_epoch_csv(epoch);
  ex.write_trace(trace, ExperimentRunner::TraceFormat::kJsonl);
  out.csv = csv.str();
  out.json = json.str();
  out.epoch = epoch.str();
  out.trace = trace.str();
  return out;
}

TEST(FaultDeterminismTest, OutputsAreByteIdenticalAcrossJobs) {
  const Outputs serial = run_matrix_outputs(fault_cfg(1), 1);
  const Outputs parallel = run_matrix_outputs(fault_cfg(1), 4);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.json, parallel.json);
  EXPECT_EQ(serial.epoch, parallel.epoch);
  EXPECT_EQ(serial.trace, parallel.trace);
  // The run actually injected faults (otherwise this test proves nothing).
  EXPECT_NE(serial.trace.find("fault_injected"), std::string::npos);
  EXPECT_NE(serial.csv.find("ce_count"), std::string::npos);
}

TEST(FaultDeterminismTest, DifferentFaultSeedsPerturbTheRun) {
  const Outputs a = run_matrix_outputs(fault_cfg(1), 1);
  const Outputs b = run_matrix_outputs(fault_cfg(2), 1);
  EXPECT_NE(a.csv, b.csv);
}

TEST(FaultDeterminismTest, FaultColumnsAppearOnlyWhenEnabled) {
  SystemConfig clean;
  clean.hbm.capacity_bytes = 32 * MiB;
  clean.dram.capacity_bytes = 320 * MiB;
  clean.core.cores = 1;
  clean.warmup_ratio = 0.0;
  clean.seed = 42;
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 60'000;

  ExperimentRunner off(clean);
  off.run_matrix({"DRAM-only"}, {trace::WorkloadProfile::by_name("mcf")},
                 opts);
  std::ostringstream off_csv, off_json;
  off.write_csv(off_csv);
  off.write_json(off_json);
  EXPECT_EQ(off_csv.str().find("ce_count"), std::string::npos);
  EXPECT_EQ(off_json.str().find("ce_count"), std::string::npos);

  SystemConfig faulty = clean;
  faulty.fault = fault::FaultConfig::profile("transient", 1e-3);
  ExperimentRunner on(faulty);
  on.run_matrix({"DRAM-only"}, {trace::WorkloadProfile::by_name("mcf")},
                opts);
  std::ostringstream on_csv, on_json;
  on.write_csv(on_csv);
  on.write_json(on_json);
  EXPECT_NE(on_csv.str().find("ce_count"), std::string::npos);
  EXPECT_NE(on_json.str().find("due_data_loss"), std::string::npos);
  EXPECT_NE(on_csv.str().find("degraded_sets"), std::string::npos);
}

// The epoch time-series carries the degradation probes when faults are on.
TEST(FaultDeterminismTest, EpochSeriesCarriesReliabilityProbes) {
  const Outputs out = run_matrix_outputs(fault_cfg(1), 1);
  EXPECT_NE(out.epoch.find("due_unrecovered"), std::string::npos);
  EXPECT_NE(out.epoch.find("retired_frames"), std::string::npos);
  EXPECT_NE(out.epoch.find("degraded_sets"), std::string::npos);
  EXPECT_NE(out.epoch.find("hbm_ce_count"), std::string::npos);
}

}  // namespace
}  // namespace bb::sim
