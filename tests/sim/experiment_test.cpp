#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bb::sim {
namespace {

RunResult fake(const char* design, const char* workload, double ipc) {
  RunResult r;
  r.design = design;
  r.workload = workload;
  r.ipc = ipc;
  r.instructions = 1000;
  r.misses = 10;
  return r;
}

TEST(Experiment, ForDesignFilters) {
  ExperimentRunner ex;
  ex.add(fake("A", "mcf", 1.0));
  ex.add(fake("B", "mcf", 2.0));
  ex.add(fake("A", "xz", 3.0));
  const auto a = ex.for_design("A");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].workload, "mcf");
  EXPECT_EQ(a[1].workload, "xz");
}

TEST(Experiment, NormalizedAgainstBaseline) {
  ExperimentRunner ex;
  ex.add(fake("base", "mcf", 1.0));
  ex.add(fake("base", "xz", 2.0));
  ex.add(fake("A", "mcf", 3.0));
  ex.add(fake("A", "xz", 5.0));
  const auto n = ex.normalized("A", "base", metric_ipc);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_DOUBLE_EQ(n[0].second, 3.0);
  EXPECT_DOUBLE_EQ(n[1].second, 2.5);
}

TEST(Experiment, NormalizedSkipsMissingBaseline) {
  ExperimentRunner ex;
  ex.add(fake("base", "mcf", 1.0));
  ex.add(fake("A", "mcf", 2.0));
  ex.add(fake("A", "xz", 9.0));  // no baseline row for xz
  EXPECT_EQ(ex.normalized("A", "base", metric_ipc).size(), 1u);
}

TEST(Experiment, CsvHasHeaderAndRows) {
  ExperimentRunner ex;
  ex.add(fake("A", "mcf", 1.25));
  std::ostringstream os;
  ex.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("design,workload"), std::string::npos);
  EXPECT_NE(out.find("A,mcf"), std::string::npos);
  EXPECT_NE(out.find("1.2500"), std::string::npos);
}

TEST(Experiment, JsonExportsFullRunResult) {
  ExperimentRunner ex;
  RunResult r = fake("A \"quoted\"", "mcf", 1.25);
  r.hbm_class_bytes[static_cast<std::size_t>(mem::TrafficClass::kDemand)] =
      640;
  r.hbm_class_bytes[static_cast<std::size_t>(mem::TrafficClass::kFill)] = 128;
  r.dram_class_bytes[
      static_cast<std::size_t>(mem::TrafficClass::kWriteback)] = 256;
  ex.add(r);
  ex.add(fake("B", "xz", 2.0));

  std::ostringstream os;
  ex.write_json(os);
  const std::string out = os.str();

  // Array of one object per run, escaped strings, exact double round-trip.
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"design\":\"A \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"workload\":\"mcf\""), std::string::npos);
  EXPECT_NE(out.find("\"ipc\":1.25"), std::string::npos);
  EXPECT_NE(out.find("\"design\":\"B\""), std::string::npos);
  // The per-class split the CSV flattens must be present, keyed by class.
  EXPECT_NE(out.find("\"hbm_class_bytes\":{\"demand\":640,\"fill\":128,"),
            std::string::npos);
  EXPECT_NE(out.find("\"writeback\":256"), std::string::npos);
}

TEST(Experiment, JsonEmptyRunnerIsEmptyArray) {
  ExperimentRunner ex;
  std::ostringstream os;
  ex.write_json(os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

// The JSON export must obey the same serial/parallel byte-identity
// contract as the CSV.
TEST(Experiment, JsonDeterministicAcrossJobs) {
  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee"};
  const std::vector<trace::WorkloadProfile> workloads = {
      trace::WorkloadProfile::by_name("mcf")};

  RunMatrixOptions opts;
  opts.instructions = 100'000;

  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;

  ExperimentRunner serial(cfg);
  opts.jobs = 1;
  serial.run_matrix(designs, workloads, opts);
  ExperimentRunner parallel(cfg);
  opts.jobs = 4;
  parallel.run_matrix(designs, workloads, opts);

  std::ostringstream a, b;
  serial.write_json(a);
  parallel.write_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Experiment, RunMatrixEndToEnd) {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  ExperimentRunner ex(cfg);
  int callbacks = 0;
  ex.run_matrix({"DRAM-only", "Bumblebee"},
                {trace::WorkloadProfile::by_name("mcf")},
                /*target_misses=*/500,
                [&](const RunResult&) { ++callbacks; },
                /*min_instructions=*/100'000, /*max_instructions=*/200'000);
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(ex.results().size(), 2u);
  const auto n = ex.normalized("Bumblebee", "DRAM-only", metric_ipc);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_GT(n[0].second, 0.0);
}

SystemConfig small_config() {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.design, b.design);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.hbm_bytes, b.hbm_bytes);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.hbm_serve_rate, b.hbm_serve_rate);
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns);
  EXPECT_EQ(a.mal_fraction, b.mal_fraction);
  EXPECT_EQ(a.overfetch, b.overfetch);
  EXPECT_EQ(a.page_faults, b.page_faults);
  EXPECT_EQ(a.metadata_sram_bytes, b.metadata_sram_bytes);
  EXPECT_EQ(a.hbm_class_bytes, b.hbm_class_bytes);
  EXPECT_EQ(a.dram_class_bytes, b.dram_class_bytes);
}

// Serial (jobs=1) and parallel (jobs=4) executions of the same matrix must
// produce identical RunResult vectors — same values, same matrix order —
// and therefore byte-identical CSV. This is the determinism contract the
// parallel runner commits to (indexed slots, not completion order).
TEST(Experiment, ParallelMatrixMatchesSerialByteForByte) {
  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee"};
  const std::vector<trace::WorkloadProfile> workloads = {
      trace::WorkloadProfile::by_name("mcf"),
      trace::WorkloadProfile::by_name("lbm")};

  RunMatrixOptions opts;
  opts.target_misses = 500;
  opts.min_instructions = 100'000;
  opts.max_instructions = 200'000;

  ExperimentRunner serial(small_config());
  opts.jobs = 1;
  serial.run_matrix(designs, workloads, opts);

  ExperimentRunner parallel(small_config());
  opts.jobs = 4;
  parallel.run_matrix(designs, workloads, opts);

  ASSERT_EQ(serial.results().size(), designs.size() * workloads.size());
  ASSERT_EQ(parallel.results().size(), serial.results().size());
  for (std::size_t i = 0; i < serial.results().size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(serial.results()[i], parallel.results()[i]);
  }

  std::ostringstream serial_csv, parallel_csv;
  serial.write_csv(serial_csv);
  parallel.write_csv(parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(Experiment, ParallelOnResultFiresInMatrixOrder) {
  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee"};
  const std::vector<trace::WorkloadProfile> workloads = {
      trace::WorkloadProfile::by_name("mcf"),
      trace::WorkloadProfile::by_name("lbm")};

  RunMatrixOptions opts;
  opts.jobs = 4;
  opts.target_misses = 500;
  opts.min_instructions = 100'000;
  opts.max_instructions = 200'000;
  std::vector<std::string> seen;
  opts.on_result = [&](const RunResult& r) {
    seen.push_back(r.design + "/" + r.workload);
  };

  ExperimentRunner ex(small_config());
  ex.run_matrix(designs, workloads, opts);

  const std::vector<std::string> expected = {
      "DRAM-only/mcf", "Bumblebee/mcf", "DRAM-only/lbm", "Bumblebee/lbm"};
  EXPECT_EQ(seen, expected);
}

// A mix matrix journaled through on_alone / on_mix_result must restore
// completely: the resumed run re-simulates nothing, fires no callbacks, and
// reproduces every export byte-for-byte.
TEST(Experiment, MixMatrixResumesFromJournal) {
  SystemConfig cfg = small_config();
  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee"};
  const std::vector<MixSpec> mixes = {MixSpec::parse("mcf+lbm")};

  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 100'000;

  std::ostringstream journal_os;
  RunMatrixOptions first_opts = opts;
  first_opts.on_alone = [&](const std::string& d, const std::string& w,
                            double ipc) {
    journal_os << ResultJournal::alone_line(d, w, ipc) << "\n";
  };
  first_opts.on_mix_result = [&](const MixResult& r) {
    journal_os << ResultJournal::mix_line(r) << "\n";
  };
  ExperimentRunner first(cfg);
  first.run_mix_matrix(designs, mixes, first_opts);
  ASSERT_EQ(first.mix_results().size(), 2u);
  ASSERT_EQ(first.alone_ipc().size(), 4u);  // 2 designs x 2 workloads

  ResultJournal journal;
  std::istringstream journal_is(journal_os.str());
  const auto stats = journal.load_stats(journal_is);
  EXPECT_EQ(stats.restored, 6u);  // 4 alone baselines + 2 mix cells
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_NE(journal.find_alone("Bumblebee", "mcf"), nullptr);
  ASSERT_NE(journal.find_mix("Bumblebee", "mcf+lbm"), nullptr);
  EXPECT_EQ(journal.find_alone("Bumblebee", "nonesuch"), nullptr);
  EXPECT_EQ(journal.find_mix("nonesuch", "mcf+lbm"), nullptr);

  RunMatrixOptions resume_opts = opts;
  resume_opts.jobs = 4;
  resume_opts.resume = &journal;
  std::size_t fresh = 0;
  resume_opts.on_alone = [&](const std::string&, const std::string&,
                             double) { ++fresh; };
  resume_opts.on_mix_result = [&](const MixResult&) { ++fresh; };
  resume_opts.on_result = [&](const RunResult&) { ++fresh; };
  ExperimentRunner second(cfg);
  second.run_mix_matrix(designs, mixes, resume_opts);
  EXPECT_EQ(fresh, 0u);  // everything restored, nothing re-simulated

  std::ostringstream a_csv, b_csv, a_mix, b_mix;
  first.write_csv(a_csv);
  second.write_csv(b_csv);
  first.write_mix_json(a_mix);
  second.write_mix_json(b_mix);
  EXPECT_EQ(a_csv.str(), b_csv.str());
  EXPECT_EQ(a_mix.str(), b_mix.str());
}

// A journal holding only the alone baselines (interrupt landed between the
// two phases) must skip phase 1 and re-simulate only the co-run cells.
TEST(Experiment, MixMatrixResumesPartialAloneJournal) {
  SystemConfig cfg = small_config();
  const std::vector<std::string> designs = {"DRAM-only"};
  const std::vector<MixSpec> mixes = {MixSpec::parse("mcf+lbm")};

  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 100'000;

  std::ostringstream journal_os;
  RunMatrixOptions first_opts = opts;
  first_opts.on_alone = [&](const std::string& d, const std::string& w,
                            double ipc) {
    journal_os << ResultJournal::alone_line(d, w, ipc) << "\n";
  };
  ExperimentRunner first(cfg);
  first.run_mix_matrix(designs, mixes, first_opts);

  ResultJournal journal;
  std::istringstream journal_is(journal_os.str());
  EXPECT_EQ(journal.load_stats(journal_is).restored, 2u);

  RunMatrixOptions resume_opts = opts;
  resume_opts.resume = &journal;
  std::size_t alone_reruns = 0, mix_runs = 0;
  resume_opts.on_alone = [&](const std::string&, const std::string&,
                             double) { ++alone_reruns; };
  resume_opts.on_mix_result = [&](const MixResult&) { ++mix_runs; };
  ExperimentRunner second(cfg);
  second.run_mix_matrix(designs, mixes, resume_opts);
  EXPECT_EQ(alone_reruns, 0u);
  EXPECT_EQ(mix_runs, 1u);
  // The restored baselines fed the fresh co-run scoring.
  ASSERT_EQ(second.mix_results().size(), 1u);
  for (const auto& c : second.mix_results()[0].cores) {
    EXPECT_GT(c.alone_ipc, 0.0);
  }
}

// load_stats must count damage instead of crashing (or silently accepting):
// garbage lines, torn writes, schema-less objects, and unknown kinds are
// all malformed; valid lines around them still restore.
TEST(Experiment, JournalLoadStatsCountsMalformedLines) {
  std::string journal_text;
  journal_text += ResultJournal::line(fake("A", "mcf", 1.5)) + "\n";
  journal_text += "not json at all\n";
  journal_text += "{\"design\":\"torn";  // torn tail, no newline termination
  journal_text += "\n";
  journal_text += ResultJournal::alone_line("A", "xz", 2.0) + "\n";
  journal_text += "{\"kind\":\"martian\",\"design\":\"A\"}\n";
  journal_text += "{\"kind\":\"mix\",\"design\":\"A\"}\n";  // missing scores
  journal_text += "[1,2,3]\n";   // not an object
  journal_text += "\n";          // blank lines are ignored, not malformed
  journal_text += "{\"kind\":\"alone\",\"design\":\"\",\"workload\":\"\"}\n";

  ResultJournal journal;
  std::istringstream is(journal_text);
  const auto stats = journal.load_stats(is);
  EXPECT_EQ(stats.restored, 2u);
  EXPECT_EQ(stats.malformed, 6u);
  EXPECT_NE(journal.find("A", "mcf"), nullptr);
  ASSERT_NE(journal.find_alone("A", "xz"), nullptr);
  EXPECT_DOUBLE_EQ(*journal.find_alone("A", "xz"), 2.0);
}

// Last-line-wins: a journal that records the same cell twice (rerun after a
// partial resume) restores the later value.
TEST(Experiment, JournalLastLineWins) {
  std::string journal_text;
  journal_text += ResultJournal::alone_line("A", "mcf", 1.0) + "\n";
  journal_text += ResultJournal::alone_line("A", "mcf", 3.0) + "\n";
  ResultJournal journal;
  std::istringstream is(journal_text);
  EXPECT_EQ(journal.load_stats(is).restored, 2u);
  ASSERT_NE(journal.find_alone("A", "mcf"), nullptr);
  EXPECT_DOUBLE_EQ(*journal.find_alone("A", "mcf"), 3.0);
}

TEST(Experiment, BumblebeeMatrixLabelsResults) {
  bumblebee::BumblebeeConfig a;  // defaults
  bumblebee::BumblebeeConfig b;
  b.block_bytes = 4 * KiB;

  RunMatrixOptions opts;
  opts.jobs = 2;
  opts.instructions = 100'000;

  ExperimentRunner ex(small_config());
  ex.run_bumblebee_matrix({{"cfg-a", a}, {"cfg-b", b}},
                          {trace::WorkloadProfile::by_name("mcf")}, opts);
  ASSERT_EQ(ex.results().size(), 2u);
  EXPECT_EQ(ex.results()[0].design, "cfg-a");
  EXPECT_EQ(ex.results()[1].design, "cfg-b");
  EXPECT_EQ(ex.for_design("cfg-b").size(), 1u);
}

}  // namespace
}  // namespace bb::sim
