#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bb::sim {
namespace {

RunResult fake(const char* design, const char* workload, double ipc) {
  RunResult r;
  r.design = design;
  r.workload = workload;
  r.ipc = ipc;
  r.instructions = 1000;
  r.misses = 10;
  return r;
}

TEST(Experiment, ForDesignFilters) {
  ExperimentRunner ex;
  ex.add(fake("A", "mcf", 1.0));
  ex.add(fake("B", "mcf", 2.0));
  ex.add(fake("A", "xz", 3.0));
  const auto a = ex.for_design("A");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].workload, "mcf");
  EXPECT_EQ(a[1].workload, "xz");
}

TEST(Experiment, NormalizedAgainstBaseline) {
  ExperimentRunner ex;
  ex.add(fake("base", "mcf", 1.0));
  ex.add(fake("base", "xz", 2.0));
  ex.add(fake("A", "mcf", 3.0));
  ex.add(fake("A", "xz", 5.0));
  const auto n = ex.normalized("A", "base", metric_ipc);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_DOUBLE_EQ(n[0].second, 3.0);
  EXPECT_DOUBLE_EQ(n[1].second, 2.5);
}

TEST(Experiment, NormalizedSkipsMissingBaseline) {
  ExperimentRunner ex;
  ex.add(fake("base", "mcf", 1.0));
  ex.add(fake("A", "mcf", 2.0));
  ex.add(fake("A", "xz", 9.0));  // no baseline row for xz
  EXPECT_EQ(ex.normalized("A", "base", metric_ipc).size(), 1u);
}

TEST(Experiment, CsvHasHeaderAndRows) {
  ExperimentRunner ex;
  ex.add(fake("A", "mcf", 1.25));
  std::ostringstream os;
  ex.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("design,workload"), std::string::npos);
  EXPECT_NE(out.find("A,mcf"), std::string::npos);
  EXPECT_NE(out.find("1.2500"), std::string::npos);
}

TEST(Experiment, RunMatrixEndToEnd) {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  ExperimentRunner ex(cfg);
  int callbacks = 0;
  ex.run_matrix({"DRAM-only", "Bumblebee"},
                {trace::WorkloadProfile::by_name("mcf")},
                /*target_misses=*/500,
                [&](const RunResult&) { ++callbacks; },
                /*min_instructions=*/100'000, /*max_instructions=*/200'000);
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(ex.results().size(), 2u);
  const auto n = ex.normalized("Bumblebee", "DRAM-only", metric_ipc);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_GT(n[0].second, 0.0);
}

}  // namespace
}  // namespace bb::sim
