// Trace-replay acceptance tests: the streaming (bounded-memory) path must
// be byte-identical to the in-memory reference path, the capture sink must
// round-trip a synthetic run, and replay matrices must be --jobs
// independent like every other matrix.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "sim/experiment.h"
#include "trace/stream.h"
#include "trace/trace_file.h"
#include "trace/workload.h"

namespace bb::sim {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

struct TempTrace {
  explicit TempTrace(const char* name) : path(tmp_path(name)) {}
  ~TempTrace() { std::remove(path.c_str()); }
  std::string path;
};

// A v2 trace whose record count is 16x the reader's chunk size, so the
// streaming path demonstrably replays more data than it ever buffers
// (ISSUE acceptance asks for >= 4x).
void write_big_trace(const std::string& path, std::size_t records,
                     u32 chunk_records) {
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name("mcf"), 99);
  trace::TraceWriterOptions w;
  w.chunk_records = chunk_records;
  ASSERT_TRUE(trace::save_trace_v2(path, gen.take(records), w));
}

TEST(Replay, StreamingIsByteIdenticalToInMemory) {
  TempTrace t("accept.bbtrace");
  write_big_trace(t.path, 4096, 256);
  const auto info = trace::trace_info(t.path);
  ASSERT_GE(info.records / info.max_chunk_records, 4u);

  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee"};
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = info.inst_gap_total;

  ExperimentRunner::ReplayMatrixOptions ropts;
  ropts.path = t.path;
  ropts.label = "accept";

  ExperimentRunner streaming;
  ropts.streaming = true;
  streaming.run_replay_matrix(designs, ropts, opts);

  ExperimentRunner memory;
  ropts.streaming = false;
  memory.run_replay_matrix(designs, ropts, opts);

  std::ostringstream csv_s, csv_m, json_s, json_m;
  streaming.write_csv(csv_s);
  memory.write_csv(csv_m);
  streaming.write_json(json_s);
  memory.write_json(json_m);
  EXPECT_EQ(csv_s.str(), csv_m.str());
  EXPECT_EQ(json_s.str(), json_m.str());
  ASSERT_EQ(streaming.results().size(), 2u);
  EXPECT_EQ(streaming.results()[0].workload, "accept");
  EXPECT_GT(streaming.results()[0].misses, 0u);
}

TEST(Replay, JobsDoNotChangeReplayResults) {
  TempTrace t("jobs.bbtrace");
  write_big_trace(t.path, 2048, 256);
  const auto info = trace::trace_info(t.path);

  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee",
                                            "Hybrid2"};
  ExperimentRunner::ReplayMatrixOptions ropts;
  ropts.path = t.path;
  ropts.label = "jobs";

  std::string csv_by_jobs[2];
  for (int i = 0; i < 2; ++i) {
    RunMatrixOptions opts;
    opts.jobs = i == 0 ? 1u : 4u;
    opts.instructions = info.inst_gap_total;
    ExperimentRunner runner;
    runner.run_replay_matrix(designs, ropts, opts);
    std::ostringstream os;
    runner.write_csv(os);
    csv_by_jobs[i] = os.str();
  }
  EXPECT_EQ(csv_by_jobs[0], csv_by_jobs[1]);
}

TEST(Replay, CaptureRoundTripsASyntheticRun) {
  TempTrace t("capture.bbtrace");
  trace::TraceCaptureSink sink;
  sink.open(t.path);

  SystemConfig cfg;
  cfg.warmup_ratio = 0.0;  // capture exactly the measured stream
  cfg.capture = &sink;
  ExperimentRunner capture_runner(cfg);
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 500'000;
  capture_runner.run_matrix(
      {"Bumblebee"}, {trace::WorkloadProfile::by_name("mcf")}, opts);
  ASSERT_TRUE(sink.close());
  ASSERT_EQ(capture_runner.results().size(), 1u);
  const u64 captured = sink.records();
  EXPECT_EQ(captured, capture_runner.results()[0].misses);

  // Replaying the capture for one full pass re-issues exactly the
  // captured requests: same record count, same byte volume.
  const auto info = trace::trace_info(t.path);
  EXPECT_EQ(info.records, captured);
  SystemConfig replay_cfg;
  replay_cfg.warmup_ratio = 0.0;
  ExperimentRunner replay_runner(replay_cfg);
  RunMatrixOptions replay_opts;
  replay_opts.jobs = 1;
  replay_opts.instructions = info.inst_gap_total;
  ExperimentRunner::ReplayMatrixOptions ropts;
  ropts.path = t.path;
  replay_runner.run_replay_matrix({"Bumblebee"}, ropts, replay_opts);
  ASSERT_EQ(replay_runner.results().size(), 1u);
  EXPECT_EQ(replay_runner.results()[0].misses, captured);
}

TEST(Replay, RequiresExplicitBudget) {
  TempTrace t("nobudget.bbtrace");
  write_big_trace(t.path, 256, 64);
  ExperimentRunner runner;
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 0;
  ExperimentRunner::ReplayMatrixOptions ropts;
  ropts.path = t.path;
  EXPECT_THROW(runner.run_replay_matrix({"Bumblebee"}, ropts, opts),
               std::invalid_argument);
}

TEST(Replay, BadTraceFailsBeforeAnySimulation) {
  ExperimentRunner runner;
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 1000;
  ExperimentRunner::ReplayMatrixOptions ropts;
  ropts.path = tmp_path("never-written.bbtrace");
  EXPECT_THROW(runner.run_replay_matrix({"Bumblebee"}, ropts, opts),
               std::ios_base::failure);
  EXPECT_TRUE(runner.results().empty());
}

}  // namespace
}  // namespace bb::sim
