// Observability layer: epoch time-series / trace artifacts are attached
// per run, serialized in matrix order, and byte-identical across --jobs
// values; the checkpoint journal restores finished cells on resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/experiment.h"

namespace bb::sim {
namespace {

SystemConfig obs_config() {
  SystemConfig cfg;
  cfg.warmup_ratio = 0.5;
  cfg.obs.epoch.every_requests = 500;
  cfg.obs.trace = true;
  return cfg;
}

RunMatrixOptions small_opts(unsigned jobs) {
  RunMatrixOptions opts;
  opts.jobs = jobs;
  opts.instructions = 1'000'000;
  return opts;
}

const std::vector<std::string> kDesigns = {"DRAM-only", "Bumblebee"};

std::vector<trace::WorkloadProfile> two_workloads() {
  return {trace::WorkloadProfile::by_name("mcf"),
          trace::WorkloadProfile::by_name("xz")};
}

u64 count_events(const RunResult& r, const std::string& name) {
  if (!r.artifacts) return 0;
  u64 n = 0;
  for (const auto& ev : r.artifacts->events) {
    if (ev.name == name) ++n;
  }
  return n;
}

TEST(Observability, OutputsByteIdenticalAcrossJobs) {
  ExperimentRunner serial(obs_config());
  serial.run_matrix(kDesigns, two_workloads(), small_opts(1));
  ExperimentRunner parallel(obs_config());
  parallel.run_matrix(kDesigns, two_workloads(), small_opts(4));

  const auto render = [](const ExperimentRunner& r) {
    std::ostringstream csv, json, epoch, jsonl, chrome;
    r.write_csv(csv);
    r.write_json(json);
    r.write_epoch_csv(epoch);
    r.write_trace(jsonl, ExperimentRunner::TraceFormat::kJsonl);
    r.write_trace(chrome, ExperimentRunner::TraceFormat::kChrome);
    return std::vector<std::string>{csv.str(), json.str(), epoch.str(),
                                    jsonl.str(), chrome.str()};
  };
  const auto a = render(serial);
  const auto b = render(parallel);
  EXPECT_EQ(a[0], b[0]);  // results CSV
  EXPECT_EQ(a[1], b[1]);  // results JSON
  EXPECT_EQ(a[2], b[2]);  // epoch CSV
  EXPECT_EQ(a[3], b[3]);  // JSONL trace
  EXPECT_EQ(a[4], b[4]);  // Chrome trace

  // The epoch CSV actually carries time-series rows.
  EXPECT_NE(a[2].find("hbm_serve_rate"), std::string::npos);
  EXPECT_GT(std::count(a[2].begin(), a[2].end(), '\n'), 10);
}

TEST(Observability, BumblebeeEmitsRemapTransitionsAndWarmupEnd) {
  ExperimentRunner runner(obs_config());
  runner.run_matrix(kDesigns, {trace::WorkloadProfile::by_name("mcf")},
                    small_opts(1));
  ASSERT_EQ(runner.results().size(), 2u);
  for (const auto& r : runner.results()) {
    ASSERT_TRUE(r.artifacts) << r.design;
    EXPECT_EQ(count_events(r, "warmup_end"), 1u) << r.design;
    if (r.design == "Bumblebee") {
      EXPECT_GT(count_events(r, "remap_ratio_transition"), 0u);
    }
  }
}

TEST(Observability, EpochZeroStartsAtWarmupEndTick) {
  ExperimentRunner runner(obs_config());
  runner.run_matrix({"Bumblebee"}, {trace::WorkloadProfile::by_name("mcf")},
                    small_opts(1));
  const RunResult& r = runner.results().front();
  ASSERT_TRUE(r.artifacts);
  ASSERT_FALSE(r.artifacts->epochs.empty());

  Tick warmup_end = 0;
  bool found = false;
  for (const auto& ev : r.artifacts->events) {
    if (ev.name == "warmup_end") {
      warmup_end = ev.tick;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_GT(warmup_end, 0u);
  EXPECT_EQ(r.artifacts->epochs.front().start_tick, warmup_end);
  // Epochs tile the measured phase: each starts where the previous ended.
  for (std::size_t i = 1; i < r.artifacts->epochs.size(); ++i) {
    EXPECT_EQ(r.artifacts->epochs[i].start_tick,
              r.artifacts->epochs[i - 1].end_tick);
  }
}

TEST(Observability, PercentilesOrderedAndExported) {
  ExperimentRunner runner(obs_config());
  runner.run_matrix({"Bumblebee"}, {trace::WorkloadProfile::by_name("mcf")},
                    small_opts(1));
  const RunResult& r = runner.results().front();
  EXPECT_GT(r.latency_p50_ns, 0.0);
  EXPECT_LE(r.latency_p50_ns, r.latency_p90_ns);
  EXPECT_LE(r.latency_p90_ns, r.latency_p99_ns);
  EXPECT_LE(r.latency_p99_ns, r.latency_p999_ns);

  std::ostringstream json, csv;
  runner.write_json(json);
  runner.write_csv(csv);
  EXPECT_NE(json.str().find("\"latency_p50_ns\":"), std::string::npos);
  EXPECT_NE(json.str().find("\"latency_p999_ns\":"), std::string::npos);
  EXPECT_NE(csv.str().find("latency_p99_ns"), std::string::npos);
}

TEST(Observability, ArtifactsAbsentWhenDisabled) {
  ExperimentRunner runner;  // default config: observability off
  RunMatrixOptions opts = small_opts(1);
  runner.run_matrix({"DRAM-only"}, {trace::WorkloadProfile::by_name("mcf")},
                    opts);
  EXPECT_EQ(runner.results().front().artifacts, nullptr);

  std::ostringstream epoch, trace;
  runner.write_epoch_csv(epoch);
  runner.write_trace(trace, ExperimentRunner::TraceFormat::kJsonl);
  // Header-only CSV, empty trace.
  const std::string epoch_csv = epoch.str();
  EXPECT_EQ(std::count(epoch_csv.begin(), epoch_csv.end(), '\n'), 1);
  EXPECT_TRUE(trace.str().empty());
}

TEST(ResultJournal, RestoresFinishedCellsOnResume) {
  SystemConfig cfg;  // no observability: journal covers scalar results
  std::ostringstream journal_os;
  ExperimentRunner first(cfg);
  RunMatrixOptions opts = small_opts(1);
  opts.on_result = [&journal_os](const RunResult& r) {
    journal_os << ResultJournal::line(r) << "\n";
  };
  first.run_matrix(kDesigns, two_workloads(), opts);
  ASSERT_EQ(first.results().size(), 4u);

  ResultJournal journal;
  std::istringstream journal_is(journal_os.str());
  EXPECT_EQ(journal.load(journal_is), 4u);
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_NE(journal.find("Bumblebee", "mcf"), nullptr);
  EXPECT_EQ(journal.find("Bumblebee", "nonesuch"), nullptr);

  // Resume the same matrix: every cell restores, nothing re-simulates,
  // on_result is not re-fired, and the exports match the original run.
  ExperimentRunner second(cfg);
  RunMatrixOptions resume_opts = small_opts(4);
  resume_opts.resume = &journal;
  std::size_t on_result_calls = 0;
  resume_opts.on_result = [&on_result_calls](const RunResult&) {
    ++on_result_calls;
  };
  second.run_matrix(kDesigns, two_workloads(), resume_opts);
  EXPECT_EQ(on_result_calls, 0u);

  std::ostringstream a, b;
  first.write_json(a);
  second.write_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ResultJournal, PartialJournalRerunsOnlyMissingCells) {
  SystemConfig cfg;
  ExperimentRunner first(cfg);
  std::ostringstream journal_os;
  RunMatrixOptions opts = small_opts(1);
  opts.on_result = [&journal_os](const RunResult& r) {
    // Simulate an interrupted sweep: only DRAM-only cells were journaled
    // (plus one truncated line the loader must skip).
    if (r.design == "DRAM-only") {
      journal_os << ResultJournal::line(r) << "\n";
    }
  };
  first.run_matrix(kDesigns, two_workloads(), opts);
  journal_os << "{\"design\":\"Bumble";  // torn final write

  ResultJournal journal;
  std::istringstream journal_is(journal_os.str());
  EXPECT_EQ(journal.load(journal_is), 2u);

  ExperimentRunner second(cfg);
  RunMatrixOptions resume_opts = small_opts(1);
  resume_opts.resume = &journal;
  std::vector<std::string> rerun;
  resume_opts.on_result = [&rerun](const RunResult& r) {
    rerun.push_back(r.design + "/" + r.workload);
  };
  second.run_matrix(kDesigns, two_workloads(), resume_opts);
  EXPECT_EQ(rerun,
            (std::vector<std::string>{"Bumblebee/mcf", "Bumblebee/xz"}));

  std::ostringstream a, b;
  first.write_csv(a);
  second.write_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace bb::sim
