// Request-queue determinism and output-schema coverage.
//
// With the queue layer enabled, runs must stay byte-identical across
// --jobs values (CSV, JSON, epoch series and event trace), the queue stat
// columns must appear in every output — and only then. A queued golden
// hash pins the scheduler's behavior the same way golden_run_test.cpp pins
// the legacy path; the legacy pin itself is untouched by this PR, which is
// the machine-checked proof that BB_QUEUE=off reproduces the old timing
// bit-for-bit.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/experiment.h"

namespace bb::sim {
namespace {

u64 fnv1a(const std::string& s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

SystemConfig queued_cfg() {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  cfg.seed = 42;
  cfg.hbm.queue = mem::QueueConfig::fr_fcfs();
  cfg.dram.queue = mem::QueueConfig::fr_fcfs();
  return cfg;
}

struct Outputs {
  std::string csv, json, epoch, trace;
};

Outputs run_matrix_outputs(const SystemConfig& cfg, unsigned jobs) {
  RunMatrixOptions opts;
  opts.jobs = jobs;
  opts.instructions = 120'000;
  ExperimentRunner ex(cfg);
  ex.run_matrix({"DRAM-only", "Bumblebee"},
                {trace::WorkloadProfile::by_name("mcf"),
                 trace::WorkloadProfile::by_name("lbm")},
                opts);
  Outputs out;
  std::ostringstream csv, json, epoch, trace;
  ex.write_csv(csv);
  ex.write_json(json);
  ex.write_epoch_csv(epoch);
  ex.write_trace(trace, ExperimentRunner::TraceFormat::kJsonl);
  out.csv = csv.str();
  out.json = json.str();
  out.epoch = epoch.str();
  out.trace = trace.str();
  return out;
}

TEST(QueueDeterminismTest, OutputsAreByteIdenticalAcrossJobs) {
  SystemConfig cfg = queued_cfg();
  cfg.obs.trace = true;
  cfg.obs.epoch.every_requests = 2'000;
  const Outputs serial = run_matrix_outputs(cfg, 1);
  const Outputs parallel = run_matrix_outputs(cfg, 4);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.json, parallel.json);
  EXPECT_EQ(serial.epoch, parallel.epoch);
  EXPECT_EQ(serial.trace, parallel.trace);
}

TEST(QueueDeterminismTest, QueueColumnsAppearExactlyWhenConfigured) {
  SystemConfig on = queued_cfg();
  on.obs.epoch.every_requests = 2'000;
  const Outputs queued = run_matrix_outputs(on, 1);
  for (const char* col : {"queueing_latency_avg", "read_queue_latency_avg",
                          "req_queue_length_avg", "write_drain_count"}) {
    EXPECT_NE(queued.csv.find(col), std::string::npos) << col;
    EXPECT_NE(queued.json.find(col), std::string::npos) << col;
    // Per-device epoch probes carry the hbm_/dram_ prefix.
    EXPECT_NE(queued.epoch.find(std::string("hbm_") + col),
              std::string::npos)
        << col;
    EXPECT_NE(queued.epoch.find(std::string("dram_") + col),
              std::string::npos)
        << col;
  }

  SystemConfig off = queued_cfg();
  off.hbm.queue = mem::QueueConfig::off();
  off.dram.queue = mem::QueueConfig::off();
  off.obs.epoch.every_requests = 2'000;
  const Outputs legacy = run_matrix_outputs(off, 1);
  EXPECT_EQ(legacy.csv.find("queueing_latency_avg"), std::string::npos);
  EXPECT_EQ(legacy.json.find("queueing_latency_avg"), std::string::npos);
  EXPECT_EQ(legacy.epoch.find("queueing_latency_avg"), std::string::npos);
}

TEST(QueueDeterminismTest, QueueStatsAreLive) {
  // The scheduler actually sees traffic: a queued matrix reports nonzero
  // queue occupancy and at least some scheduling activity in the JSON.
  const Outputs out = run_matrix_outputs(queued_cfg(), 1);
  EXPECT_EQ(out.json.find("\"req_queue_length_avg\":0,"), std::string::npos)
      << "queue length average is identically zero — scheduler not wired?";
}

TEST(QueueDeterminismTest, QueuedGoldenHashIsPinned) {
  // Same matrix shape as golden_run_test.cpp, with the queue layer (and
  // its timing fixes) enabled on both devices. Pins the queued path so
  // scheduler refactors are provably behavior-preserving.
  SystemConfig cfg = queued_cfg();
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.instructions = 150'000;
  ExperimentRunner ex(cfg);
  ex.run_matrix({"DRAM-only", "Bumblebee", "Banshee"},
                {trace::WorkloadProfile::by_name("mcf"),
                 trace::WorkloadProfile::by_name("lbm")},
                opts);
  ASSERT_EQ(ex.results().size(), 6u);
  std::ostringstream csv, json;
  ex.write_csv(csv);
  ex.write_json(json);
  const u64 hash = fnv1a(csv.str() + json.str());
  // Pinned with the queue layer's introduction (PR 6): FR-FCFS preset on
  // both devices, timing fixes on.
  const u64 kQueuedGoldenHash = 0xcb8f2e5aac4d8f84ULL;
  EXPECT_EQ(hash, kQueuedGoldenHash)
      << "queued golden output changed; new hash: 0x" << std::hex << hash
      << "\nIf this change is intended, update kQueuedGoldenHash and "
         "justify the behavioral change in the commit.";
}

}  // namespace
}  // namespace bb::sim
