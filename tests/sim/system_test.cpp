#include "sim/system.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace bb::sim {
namespace {

SystemConfig fast_config() {
  SystemConfig cfg;
  // Scaled-down devices keep the end-to-end tests quick.
  cfg.hbm.capacity_bytes = 64 * MiB;
  cfg.dram.capacity_bytes = 640 * MiB;
  cfg.core.cores = 2;
  cfg.warmup_ratio = 0.5;
  return cfg;
}

TEST(System, RunProducesSaneMetrics) {
  System sys(fast_config());
  const auto& w = trace::WorkloadProfile::by_name("mcf");
  const auto r = sys.run("Bumblebee", w, 2'000'000);
  EXPECT_EQ(r.design, "Bumblebee");
  EXPECT_EQ(r.workload, "mcf");
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.misses, 0u);
  EXPECT_GT(r.hbm_bytes + r.dram_bytes, 0u);
  EXPECT_GT(r.energy_mj, 0.0);
  EXPECT_GE(r.hbm_serve_rate, 0.0);
  EXPECT_LE(r.hbm_serve_rate, 1.0);
  EXPECT_GT(r.metadata_sram_bytes, 0u);
}

TEST(System, DramOnlyHasNoHbmTraffic) {
  System sys(fast_config());
  const auto r =
      sys.run("DRAM-only", trace::WorkloadProfile::by_name("mcf"), 1'000'000);
  EXPECT_EQ(r.hbm_bytes, 0u);
  EXPECT_GT(r.dram_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.hbm_serve_rate, 0.0);
}

TEST(System, DeterministicResults) {
  System sys(fast_config());
  const auto& w = trace::WorkloadProfile::by_name("xalancbmk");
  const auto a = sys.run("Bumblebee", w, 1'000'000);
  const auto b = sys.run("Bumblebee", w, 1'000'000);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.hbm_bytes, b.hbm_bytes);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

TEST(System, BumblebeeBeatsDramOnlyOnHotWorkload) {
  // Full-size devices: mcf's 0.2 GB footprint fits entirely in the 1 GB
  // HBM, the paper's clearest-win scenario.
  System sys;
  const auto& w = trace::WorkloadProfile::by_name("mcf");
  const auto base = sys.run("DRAM-only", w, 10'000'000);
  const auto bb = sys.run("Bumblebee", w, 10'000'000);
  EXPECT_GT(bb.hbm_serve_rate, 0.5);
  EXPECT_GT(bb.ipc, base.ipc);
}

TEST(System, RunBumblebeeCustomConfig) {
  System sys(fast_config());
  bumblebee::BumblebeeConfig cfg;
  cfg.block_bytes = 4 * KiB;
  cfg.page_bytes = 128 * KiB;
  const auto r = sys.run_bumblebee(
      cfg, trace::WorkloadProfile::by_name("mcf"), 1'000'000);
  EXPECT_GT(r.ipc, 0.0);
}

TEST(System, TrafficClassSplitSumsToTotal) {
  System sys(fast_config());
  const auto r =
      sys.run("Bumblebee", trace::WorkloadProfile::by_name("mcf"), 1'000'000);
  u64 hbm_sum = 0, dram_sum = 0;
  for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
    hbm_sum += r.hbm_class_bytes[c];
    dram_sum += r.dram_class_bytes[c];
  }
  EXPECT_EQ(hbm_sum, r.hbm_bytes);
  EXPECT_EQ(dram_sum, r.dram_bytes);
}

TEST(GroupByMpki, ComputesPerGroupGeomeans) {
  std::vector<RunResult> base, res;
  for (const char* name : {"roms", "mcf", "leela"}) {
    RunResult b;
    b.workload = name;
    b.ipc = 1.0;
    base.push_back(b);
    RunResult r;
    r.workload = name;
    r.ipc = 2.0;
    res.push_back(r);
  }
  const auto g = group_by_mpki(res, base, metric_ipc);
  EXPECT_DOUBLE_EQ(g.high, 2.0);    // roms
  EXPECT_DOUBLE_EQ(g.medium, 2.0);  // mcf
  EXPECT_DOUBLE_EQ(g.low, 2.0);     // leela
  EXPECT_DOUBLE_EQ(g.all, 2.0);
}

TEST(GroupByMpki, MissingBaselineRowSkipped) {
  std::vector<RunResult> base, res;
  RunResult b;
  b.workload = "mcf";
  b.ipc = 1.0;
  base.push_back(b);
  RunResult r1;
  r1.workload = "mcf";
  r1.ipc = 3.0;
  RunResult r2;
  r2.workload = "roms";  // no baseline row
  r2.ipc = 10.0;
  res = {r1, r2};
  const auto g = group_by_mpki(res, base, metric_ipc);
  EXPECT_DOUBLE_EQ(g.all, 3.0);
  EXPECT_DOUBLE_EQ(g.high, 0.0);
}

TEST(EnvU64, ParsesAndFallsBack) {
  ::setenv("BB_TEST_ENV_U64", "123", 1);
  EXPECT_EQ(env_u64("BB_TEST_ENV_U64", 7), 123u);
  ::setenv("BB_TEST_ENV_U64", "garbage", 1);
  EXPECT_EQ(env_u64("BB_TEST_ENV_U64", 7), 7u);
  ::unsetenv("BB_TEST_ENV_U64");
  EXPECT_EQ(env_u64("BB_TEST_ENV_U64", 7), 7u);
}

TEST(DefaultInstructions, ScalesWithMpki) {
  ::unsetenv("BB_SIM_SCALE");
  const auto& roms = trace::WorkloadProfile::by_name("roms");  // high MPKI
  const auto& xz = trace::WorkloadProfile::by_name("xz");      // low MPKI
  EXPECT_LT(default_instructions_for(roms), default_instructions_for(xz));
  // Bounds respected.
  EXPECT_GE(default_instructions_for(roms), 20'000'000u);
  EXPECT_LE(default_instructions_for(xz), 400'000'000u);
}

TEST(DefaultInstructions, EnvScaleApplies) {
  ::setenv("BB_SIM_SCALE", "10", 1);
  const auto& w = trace::WorkloadProfile::by_name("roms");
  EXPECT_EQ(default_instructions_for(w), 2'000'000u);
  ::unsetenv("BB_SIM_SCALE");
}

}  // namespace
}  // namespace bb::sim
