#include "sim/core_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hmm/controller.h"

namespace bb::sim {
namespace {

/// Memory with a constant latency: isolates the core timing model.
class FixedLatencyController : public hmm::HybridMemoryController {
 public:
  FixedLatencyController(mem::DramDevice& hbm, mem::DramDevice& dram,
                         Tick latency)
      : HybridMemoryController("fixed", hbm, dram,
                               hmm::PagingConfig{.enabled = false}),
        latency_(latency) {}

  u64 metadata_sram_bytes() const override { return 0; }

 protected:
  hmm::HmmResult service(Addr, AccessType, Tick now) override {
    hmm::HmmResult r;
    r.complete = now + latency_;
    return r;
  }

 private:
  Tick latency_;
};

class CoreModelTest : public ::testing::Test {
 protected:
  CoreModelTest()
      : hbm_(mem::DramTimingParams::hbm2_1gb()),
        dram_(mem::DramTimingParams::ddr4_3200_10gb()) {}

  mem::DramDevice hbm_;
  mem::DramDevice dram_;
};

TEST_F(CoreModelTest, ZeroLatencyMemoryGivesBaseIpc) {
  CoreParams p;
  p.cores = 1;
  p.hierarchy_latency = 0;
  CoreModel core(p);
  FixedLatencyController mem(hbm_, dram_, 0);
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name("mcf"), 1);
  const auto r = core.run(gen, 1'000'000, mem);
  // IPC approaches 1/base_cpi = 4.
  EXPECT_NEAR(r.ipc(p.freq_ghz), 1.0 / p.base_cpi, 0.2);
}

TEST_F(CoreModelTest, SlowerMemoryLowersIpc) {
  CoreParams p;
  p.cores = 1;
  CoreModel core(p);
  FixedLatencyController fast(hbm_, dram_, ns_to_ticks(20));
  FixedLatencyController slow(hbm_, dram_, ns_to_ticks(200));
  trace::TraceGenerator g1(trace::WorkloadProfile::by_name("mcf"), 1);
  trace::TraceGenerator g2(trace::WorkloadProfile::by_name("mcf"), 1);
  const auto rf = core.run(g1, 500'000, fast);
  const auto rs = core.run(g2, 500'000, slow);
  EXPECT_GT(rf.ipc(p.freq_ghz), rs.ipc(p.freq_ghz) * 1.5);
}

TEST_F(CoreModelTest, IsolatedMissExposesFullLatency) {
  // With MPKI ~0.1 (gaps of ~10000 instructions > ROB window), each miss
  // must stall the core for its full memory latency.
  CoreParams p;
  p.cores = 1;
  p.hierarchy_latency = 0;
  CoreModel core(p);
  const Tick lat = ns_to_ticks(1000);
  FixedLatencyController mem(hbm_, dram_, lat);
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name("leela"), 1);
  const auto r = core.run(gen, 2'000'000, mem);
  // Elapsed >= compute time + misses * latency (almost no overlap).
  const Tick compute = static_cast<Tick>(2'000'000 * p.base_cpi /
                                         p.freq_ghz * 1000);
  EXPECT_GT(r.elapsed, compute + r.misses * lat * 9 / 10);
}

TEST_F(CoreModelTest, BurstyMissesOverlapUpToMlp) {
  // Dense misses (every instruction... high MPKI): with MLP 8 the stall
  // per miss is ~latency/8 once the pipeline fills.
  CoreParams p;
  p.cores = 1;
  p.hierarchy_latency = 0;
  p.rob_window = 10000;
  p.mlp = 8;
  CoreModel core(p);
  const Tick lat = ns_to_ticks(800);
  FixedLatencyController mem(hbm_, dram_, lat);
  trace::TraceGenerator gen(trace::WorkloadProfile::by_name("roms"), 1);
  const auto r = core.run(gen, 1'000'000, mem);
  // With overlap, elapsed must be far below misses * latency.
  EXPECT_LT(r.elapsed, r.misses * lat / 4);
}

TEST_F(CoreModelTest, MultiCoreAggregatesInstructions) {
  CoreParams p;
  p.cores = 4;
  CoreModel core(p);
  FixedLatencyController mem(hbm_, dram_, ns_to_ticks(50));
  const auto r = core.run(trace::WorkloadProfile::by_name("mcf"), 7,
                          1'000'000, mem);
  EXPECT_GE(r.instructions, 1'000'000u);
  EXPECT_GT(r.misses, 0u);
  // Aggregate IPC of 4 cores can exceed a single core's ceiling.
  EXPECT_GT(r.ipc(p.freq_ghz), 1.0 / p.base_cpi);
}

TEST_F(CoreModelTest, WarmupResetsMeasurement) {
  CoreParams p;
  p.cores = 2;
  CoreModel core(p);
  FixedLatencyController mem(hbm_, dram_, ns_to_ticks(50));
  const auto r = core.run(trace::WorkloadProfile::by_name("mcf"), 7,
                          500'000, mem, /*warmup_instructions=*/500'000);
  // Measured window covers ~500k instructions, not 1M.
  EXPECT_LT(r.instructions, 600'000u);
  // Stats were reset at the warmup boundary.
  EXPECT_EQ(mem.stats().requests, r.misses);
}

TEST_F(CoreModelTest, IpcIsAggregateInstructionsOverElapsedCycles) {
  // Pins the documented definition: aggregate IPC = total instructions
  // across all cores / elapsed cycles of the slowest core.
  CoreParams p;
  p.cores = 2;
  CoreModel core(p);
  FixedLatencyController mem(hbm_, dram_, ns_to_ticks(50));
  const auto r = core.run(trace::WorkloadProfile::by_name("mcf"), 7,
                          1'000'000, mem);
  ASSERT_GT(r.elapsed, 0u);
  const double cycles = ticks_to_s(r.elapsed) * p.freq_ghz * 1e9;
  EXPECT_DOUBLE_EQ(r.ipc(p.freq_ghz),
                   static_cast<double>(r.instructions) / cycles);

  // The per-core breakdown partitions the totals; the slowest core's
  // finish time is the aggregate elapsed.
  ASSERT_EQ(r.per_core.size(), 2u);
  u64 inst = 0, misses = 0;
  Tick slowest = 0;
  for (const auto& c : r.per_core) {
    inst += c.instructions;
    misses += c.misses;
    slowest = std::max(slowest, c.elapsed);
  }
  EXPECT_EQ(inst, r.instructions);
  EXPECT_EQ(misses, r.misses);
  EXPECT_EQ(slowest, r.elapsed);
}

TEST_F(CoreModelTest, HeterogeneousLanesKeepPerCoreCharacter) {
  CoreParams p;
  p.cores = 2;
  CoreModel core(p);
  FixedLatencyController mem(hbm_, dram_, ns_to_ticks(50));
  const std::vector<CoreLane> lanes = {
      {trace::WorkloadProfile::by_name("mcf"), 1, 0},
      {trace::WorkloadProfile::by_name("leela"), 2, 8 * GiB},
  };
  const auto r = core.run_lanes(lanes, 1'000'000, mem);
  ASSERT_EQ(r.per_core.size(), 2u);
  // mcf (MPKI 16.1) must miss orders of magnitude more often than leela
  // (MPKI 0.1) — the lanes really run different profiles.
  EXPECT_GT(r.per_core[0].misses, r.per_core[1].misses * 10);
  EXPECT_GT(r.per_core[1].instructions, 0u);
}

TEST_F(CoreModelTest, DeterministicAcrossRuns) {
  CoreParams p;
  CoreModel core(p);
  FixedLatencyController m1(hbm_, dram_, ns_to_ticks(80));
  const auto r1 = core.run(trace::WorkloadProfile::by_name("wrf"), 3,
                           300'000, m1);
  FixedLatencyController m2(hbm_, dram_, ns_to_ticks(80));
  const auto r2 = core.run(trace::WorkloadProfile::by_name("wrf"), 3,
                           300'000, m2);
  EXPECT_EQ(r1.elapsed, r2.elapsed);
  EXPECT_EQ(r1.misses, r2.misses);
  EXPECT_EQ(r1.instructions, r2.instructions);
}

}  // namespace
}  // namespace bb::sim
