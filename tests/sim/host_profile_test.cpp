// Host-observability integration tests.
//
// Pins the three properties the bb::prof layer promises: (1) the "host"
// JSON section exists only in the profiled write_json overload, never in
// the plain (golden-hashed) writers; (2) with profiling ENABLED, simulated
// outputs stay byte-identical between --jobs=1 and --jobs=4 — the profiler
// observes, it never perturbs; (3) the checked-in BENCH_throughput.json
// trajectory file round-trips through the repo's own json_parse with the
// schema bench/throughput promises.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/prof.h"
#include "sim/experiment.h"

namespace bb::sim {
namespace {

SystemConfig tiny_config() {
  SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  cfg.seed = 42;
  return cfg;
}

RunMatrixOptions tiny_opts(unsigned jobs) {
  RunMatrixOptions opts;
  opts.jobs = jobs;
  opts.instructions = 60'000;
  return opts;
}

void run_tiny_matrix(ExperimentRunner& ex, unsigned jobs) {
  ex.run_matrix({"DRAM-only", "Bumblebee"},
                {trace::WorkloadProfile::by_name("mcf"),
                 trace::WorkloadProfile::by_name("lbm")},
                tiny_opts(jobs));
}

class HostProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::enable(false);
    prof::reset();
  }
  void TearDown() override {
    prof::enable(false);
    prof::reset();
  }
};

TEST_F(HostProfileTest, PlainWriteJsonHasNoHostSection) {
  prof::enable(true);
  ExperimentRunner ex(tiny_config());
  run_tiny_matrix(ex, 1);

  std::ostringstream json;
  ex.write_json(json);
  // The plain writer is a JSON *array* with no host key — even while
  // profiling is enabled. This is what keeps the golden hash pinned.
  EXPECT_EQ(json.str().front(), '[');
  EXPECT_EQ(json.str().find("\"host\""), std::string::npos);

  std::ostringstream csv;
  ex.write_csv(csv);
  EXPECT_EQ(csv.str().find("host"), std::string::npos);
}

TEST_F(HostProfileTest, ProfiledWriteJsonWrapsRunsAndHost) {
  prof::enable(true);
  ExperimentRunner ex(tiny_config());
  run_tiny_matrix(ex, 1);

  std::ostringstream plain, profiled;
  ex.write_json(plain);
  const prof::HostReport host = prof::make_host_report(1.5, 1000);
  ex.write_json(profiled, host);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(profiled.str(), doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  const JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->type, JsonValue::Type::kArray);
  EXPECT_EQ(runs->array.size(), 4u);
  const JsonValue* host_v = doc.find("host");
  ASSERT_NE(host_v, nullptr);
  EXPECT_EQ(host_v->get_number("schema_version"), 1.0);
  EXPECT_EQ(host_v->get_number("wall_seconds"), 1.5);

  // The embedded runs payload is byte-identical to the plain writer's.
  EXPECT_NE(profiled.str().find(plain.str()), std::string::npos);
}

TEST_F(HostProfileTest, ProfilingEnabledKeepsJobsByteIdentity) {
  prof::enable(true);

  ExperimentRunner serial(tiny_config());
  run_tiny_matrix(serial, 1);
  ExperimentRunner parallel(tiny_config());
  run_tiny_matrix(parallel, 4);

  std::ostringstream csv1, csv4, json1, json4;
  serial.write_csv(csv1);
  parallel.write_csv(csv4);
  serial.write_json(json1);
  parallel.write_json(json4);
  EXPECT_EQ(csv1.str(), csv4.str())
      << "profiling must not perturb simulated CSV output across --jobs";
  EXPECT_EQ(json1.str(), json4.str())
      << "profiling must not perturb simulated JSON output across --jobs";
  // And the profiler did actually observe the runs.
  EXPECT_GT(prof::aggregate().total_ns(), 0u);
}

TEST_F(HostProfileTest, CheckedInBenchTrajectoryRoundTrips) {
  // Locate the repo-root trajectory file relative to this source file, so
  // the test is independent of the ctest working directory.
  std::string path = __FILE__;
  const std::string suffix = "tests/sim/host_profile_test.cpp";
  ASSERT_GE(path.size(), suffix.size());
  path.replace(path.size() - suffix.size(), suffix.size(),
               "BENCH_throughput.json");

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing checked-in trajectory file: " << path;
  std::stringstream buf;
  buf << in.rdbuf();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(buf.str(), doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get_string("schema"), "bb-bench-throughput");
  EXPECT_EQ(doc.get_number("schema_version"), 1.0);
  EXPECT_FALSE(doc.get_string("git_rev").empty());
  const JsonValue* cells = doc.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->type, JsonValue::Type::kArray);
  EXPECT_GE(cells->array.size(), 3u);
  for (const JsonValue& cell : cells->array) {
    EXPECT_FALSE(cell.get_string("design").empty());
    EXPECT_FALSE(cell.get_string("workload").empty());
    EXPECT_GT(cell.get_number("requests"), 0.0);
    EXPECT_GT(cell.get_number("requests_per_sec"), 0.0);
    const JsonValue* phases = cell.find("phases");
    ASSERT_NE(phases, nullptr);
    for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
      EXPECT_NE(phases->find(prof::to_string(static_cast<prof::Phase>(i))),
                nullptr);
    }
  }
}

}  // namespace
}  // namespace bb::sim
