// Multi-programmed mix subsystem: spec parsing, lane layout, per-core
// attribution invariants, speedup/fairness accounting, equivalence of
// homogeneous mixes with single-profile runs, and --jobs independence of
// every mix output.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "sim/experiment.h"

namespace bb::sim {
namespace {

SystemConfig mix_config() {
  SystemConfig cfg;
  cfg.warmup_ratio = 0.5;
  return cfg;
}

RunMatrixOptions mix_opts(unsigned jobs) {
  RunMatrixOptions opts;
  opts.jobs = jobs;
  opts.instructions = 150'000;  // per-core budget
  return opts;
}

TEST(MixSpec, ParsesPlusJoinedWorkloadNames) {
  const MixSpec m = MixSpec::parse("mcf+lbm+xz");
  EXPECT_EQ(m.name, "mcf+lbm+xz");
  EXPECT_EQ(m.workloads,
            (std::vector<std::string>{"mcf", "lbm", "xz"}));
  EXPECT_EQ(m.cores(), 3u);
  EXPECT_FALSE(m.homogeneous());
  EXPECT_TRUE(MixSpec::parse("mcf+mcf").homogeneous());
}

TEST(MixSpec, ParsesPresetsByName) {
  for (const auto& preset : MixSpec::presets()) {
    const MixSpec m = MixSpec::parse(preset.name);
    EXPECT_EQ(m.workloads, preset.workloads);
    // Presets resolve to real Table II profiles.
    EXPECT_EQ(m.resolve().size(), m.workloads.size());
  }
  EXPECT_EQ(mix_names().size(), MixSpec::presets().size());
}

TEST(MixSpec, RejectsUnknownWorkloadsListingValidNames) {
  try {
    MixSpec::parse("mcf+nonesuch");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload: nonesuch"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("mcf"), std::string::npos) << msg;
  }
  EXPECT_THROW(MixSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(MixSpec::parse("mcf++lbm"), std::invalid_argument);
  EXPECT_THROW(MixSpec::parse("mcf+"), std::invalid_argument);
}

TEST(MixSpec, HeterogeneousLanesGetDisjointAlignedBases) {
  const MixSpec m = MixSpec::parse("mixed-locality4");
  const auto lanes = m.lanes(/*seed=*/42);
  ASSERT_EQ(lanes.size(), 4u);
  std::vector<std::pair<Addr, Addr>> spans;  // [base, base + footprint)
  for (const auto& lane : lanes) {
    EXPECT_EQ(lane.base % (64 * KiB), 0u);
    spans.emplace_back(lane.base,
                       lane.base + lane.profile.footprint_bytes());
  }
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].first, spans[i - 1].second)
        << "lane footprints overlap";
  }
  // Seeds are distinct and follow the homogeneous derivation.
  std::set<u64> seeds;
  for (std::size_t c = 0; c < lanes.size(); ++c) {
    EXPECT_EQ(lanes[c].seed, 42 + 0x1000003ULL * c);
    seeds.insert(lanes[c].seed);
  }
  EXPECT_EQ(seeds.size(), lanes.size());

  // Homogeneous mixes share one address space (base 0 everywhere).
  for (const auto& lane : MixSpec::parse("mcf+mcf").lanes(42)) {
    EXPECT_EQ(lane.base, 0u);
  }
}

TEST(MixSpec, TotalFootprintSumsPerCoreFootprints) {
  const MixSpec m = MixSpec::parse("mcf+lbm");
  const u64 expected =
      trace::WorkloadProfile::by_name("mcf").footprint_bytes() +
      trace::WorkloadProfile::by_name("lbm").footprint_bytes();
  EXPECT_EQ(m.total_footprint_bytes(), expected);
}

TEST(Mix, HomogeneousMixReproducesSingleProfileRun) {
  // A homogeneous mix must replay the exact streams of the existing
  // multi-core single-profile run: same seeds, shared address base, same
  // total budget — so every exported scalar matches bit-for-bit.
  SystemConfig cfg = mix_config();
  cfg.core.cores = 2;

  System single(cfg);
  RunResult a = single.run(
      "Bumblebee", trace::WorkloadProfile::by_name("mcf"), 300'000);

  System mixed(cfg);
  const MixSpec m = MixSpec::parse("mcf+mcf");
  RunResult b = mixed.run_mix("Bumblebee", m.lanes(cfg.seed), m.name,
                              /*per_core_instructions=*/150'000);
  ASSERT_NE(b.core_perf, nullptr);
  b.workload = a.workload;  // only the label differs by construction
  EXPECT_EQ(ResultJournal::line(a), ResultJournal::line(b));
}

TEST(Mix, PerCoreStatsSumToAggregate) {
  SystemConfig cfg = mix_config();
  System system(cfg);
  const MixSpec m = MixSpec::parse("mixed-locality4");
  const RunResult r =
      system.run_mix("Bumblebee", m.lanes(cfg.seed), m.name, 100'000);
  ASSERT_NE(r.core_perf, nullptr);
  ASSERT_EQ(r.core_perf->size(), 4u);

  u64 inst = 0, misses = 0, hbm_bytes = 0, dram_bytes = 0;
  for (const auto& c : *r.core_perf) {
    inst += c.instructions;
    misses += c.misses;
    hbm_bytes += c.hbm_bytes;
    dram_bytes += c.dram_bytes;
    EXPECT_GE(c.hbm_serve_rate, 0.0);
    EXPECT_LE(c.hbm_serve_rate, 1.0);
    EXPECT_LE(c.latency_p50_ns, c.latency_p99_ns);
  }
  EXPECT_EQ(inst, r.instructions);
  EXPECT_EQ(misses, r.misses);
  // Device bytes are attributed by causation; the end-of-run drain has no
  // causing core, so per-core sums are bounded by (not equal to) totals.
  EXPECT_LE(hbm_bytes, r.hbm_bytes);
  EXPECT_LE(dram_bytes, r.dram_bytes);
  EXPECT_GT(hbm_bytes, 0u);
}

TEST(Mix, MatrixScoresAgainstAloneBaselines) {
  ExperimentRunner runner(mix_config());
  runner.run_mix_matrix({"DRAM-only", "Bumblebee"},
                        {MixSpec::parse("cachecap2")}, mix_opts(1));
  ASSERT_EQ(runner.mix_results().size(), 2u);
  // Aggregates also land in results(), labelled by mix name.
  ASSERT_EQ(runner.results().size(), 2u);
  EXPECT_EQ(runner.results()[0].workload, "cachecap2");

  for (const auto& r : runner.mix_results()) {
    ASSERT_EQ(r.cores.size(), 2u);
    double ws = 0, inv = 0, max_sd = 0;
    for (const auto& c : r.cores) {
      // Each core's baseline comes from the cached alone-run map.
      const auto it = runner.alone_ipc().find({r.design, c.perf.workload});
      ASSERT_NE(it, runner.alone_ipc().end());
      EXPECT_DOUBLE_EQ(c.alone_ipc, it->second);
      ASSERT_GT(c.alone_ipc, 0.0);
      EXPECT_DOUBLE_EQ(c.speedup, c.perf.ipc / c.alone_ipc);
      ws += c.speedup;
      inv += 1.0 / c.speedup;
      max_sd = std::max(max_sd, 1.0 / c.speedup);
    }
    EXPECT_DOUBLE_EQ(r.weighted_speedup, ws);
    EXPECT_DOUBLE_EQ(r.hmean_speedup, 2.0 / inv);
    EXPECT_DOUBLE_EQ(r.max_slowdown, max_sd);
    // Sharing the memory system cannot speed a core up in aggregate.
    EXPECT_LT(r.weighted_speedup, 2.0 + 1e-9);
  }
}

// Fuzz-style negative coverage: arbitrary byte soup handed to MixSpec::parse
// must either produce a spec or throw invalid_argument — never crash. Covers
// embedded '+', NUL-ish control bytes, and non-UTF8 (0x80..0xFF) input.
TEST(MixSpecFuzz, ParseNeverCrashesOnGarbage) {
  SplitMix64 rng(0x313D5u);
  u32 parsed = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string spec;
    const u64 len = rng.next() % 32;
    for (u64 i = 0; i < len; ++i) {
      // Bias towards '+' and letters so separators get exercised, but keep
      // raw high bytes in the mix.
      const u64 pick = rng.next();
      if (pick % 4 == 0) {
        spec.push_back('+');
      } else if (pick % 4 == 1) {
        spec.push_back(static_cast<char>('a' + (pick >> 8) % 26));
      } else {
        spec.push_back(static_cast<char>(pick & 0xFF));
      }
    }
    try {
      const MixSpec m = MixSpec::parse(spec);
      (void)m.cores();
      ++parsed;
    } catch (const std::invalid_argument&) {
      // the overwhelmingly common outcome
    }
  }
  // Sanity: the fuzz loop must not have been short-circuited somehow.
  EXPECT_LT(parsed, 2000u);
}

TEST(Mix, OutputsByteIdenticalAcrossJobs) {
  SystemConfig cfg = mix_config();
  cfg.obs.epoch.every_requests = 500;
  cfg.obs.trace = true;
  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee"};
  const std::vector<MixSpec> mixes = {MixSpec::parse("cachecap2"),
                                      MixSpec::parse("mcf+xz")};

  ExperimentRunner serial(cfg);
  serial.run_mix_matrix(designs, mixes, mix_opts(1));
  ExperimentRunner parallel(cfg);
  parallel.run_mix_matrix(designs, mixes, mix_opts(4));

  const auto render = [](const ExperimentRunner& r) {
    std::ostringstream csv, json, mix_csv, mix_json, epoch, jsonl, chrome;
    r.write_csv(csv);
    r.write_json(json);
    r.write_mix_csv(mix_csv);
    r.write_mix_json(mix_json);
    r.write_epoch_csv(epoch);
    r.write_trace(jsonl, ExperimentRunner::TraceFormat::kJsonl);
    r.write_trace(chrome, ExperimentRunner::TraceFormat::kChrome);
    return std::vector<std::string>{csv.str(),  json.str(),
                                    mix_csv.str(), mix_json.str(),
                                    epoch.str(), jsonl.str(), chrome.str()};
  };
  const auto a = render(serial);
  const auto b = render(parallel);
  EXPECT_EQ(a[0], b[0]);  // aggregate CSV
  EXPECT_EQ(a[1], b[1]);  // aggregate JSON
  EXPECT_EQ(a[2], b[2]);  // per-core mix CSV
  EXPECT_EQ(a[3], b[3]);  // mix JSON
  EXPECT_EQ(a[4], b[4]);  // epoch CSV
  EXPECT_EQ(a[5], b[5]);  // JSONL trace
  EXPECT_EQ(a[6], b[6]);  // Chrome trace

  // The mix outputs really carry the co-run study: per-core rows, speedup
  // columns and per-core epoch metrics.
  EXPECT_NE(a[2].find("weighted_speedup"), std::string::npos);
  EXPECT_NE(a[3].find("\"alone_ipc\":"), std::string::npos);
  EXPECT_NE(a[4].find("core0_requests"), std::string::npos);
  EXPECT_NE(a[4].find("core1_hbm_serve_rate"), std::string::npos);
}

}  // namespace
}  // namespace bb::sim
