#include "hmm/controller.h"

#include <gtest/gtest.h>

#include <vector>

namespace bb::hmm {
namespace {

class Fixture : public ::testing::Test {
 protected:
  Fixture()
      : hbm_(mem::DramTimingParams::hbm2_1gb()),
        dram_(mem::DramTimingParams::ddr4_3200_10gb()) {}

  mem::DramDevice hbm_;
  mem::DramDevice dram_;
};

TEST_F(Fixture, DramOnlyServesFromDram) {
  DramOnlyController c(hbm_, dram_, PagingConfig{});
  const auto r = c.access(0x12340, AccessType::kRead, 1000);
  EXPECT_FALSE(r.served_by_hbm);
  EXPECT_GT(r.complete, 1000u);
  EXPECT_EQ(hbm_.stats().total_bytes(), 0u);
  EXPECT_GT(dram_.stats().total_bytes(), 0u);
}

TEST_F(Fixture, DramOnlyWrapsBeyondCapacity) {
  DramOnlyController c(hbm_, dram_, PagingConfig{});
  const auto r = c.access(dram_.capacity() + 64, AccessType::kRead, 0);
  EXPECT_EQ(r.phys_addr, 64u);
}

TEST_F(Fixture, StatsAccounting) {
  DramOnlyController c(hbm_, dram_, PagingConfig{});
  c.access(0, AccessType::kRead, 0);
  c.access(64, AccessType::kWrite, 1000);
  const auto& s = c.stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.hbm_served, 0u);
  EXPECT_GT(s.total_latency, 0u);
}

TEST_F(Fixture, ResetStatsClears) {
  DramOnlyController c(hbm_, dram_, PagingConfig{});
  c.access(0, AccessType::kRead, 0);
  c.reset_stats();
  EXPECT_EQ(c.stats().requests, 0u);
  EXPECT_EQ(c.stats().total_latency, 0u);
}

TEST_F(Fixture, DramOnlyVisibleCapacityIsDramOnly) {
  PagingConfig paging;
  paging.visible_bytes = 99 * GiB;  // should be overridden
  DramOnlyController c(hbm_, dram_, paging);
  EXPECT_EQ(c.paging().config().visible_bytes, dram_.capacity());
}

// Expose the protected helpers for the movement tests.
class MovableController : public HybridMemoryController {
 public:
  MovableController(mem::DramDevice& hbm, mem::DramDevice& dram)
      : HybridMemoryController("test", hbm, dram, PagingConfig{}) {}

  u64 metadata_sram_bytes() const override { return 0; }

  Tick do_move(Addr src, Addr dst, u64 bytes, Tick now) {
    return move_data(dram(), src, hbm(), dst, bytes, now,
                     mem::TrafficClass::kMigration);
  }
  Tick do_swap(Addr a, Addr b, u64 bytes, Tick now) {
    return swap_data(hbm(), a, dram(), b, bytes, now,
                     mem::TrafficClass::kMigration);
  }

 protected:
  HmmResult service(Addr, AccessType, Tick now) override {
    HmmResult r;
    r.complete = now;
    return r;
  }
};

TEST_F(Fixture, MoveDataGeneratesTrafficBothSides) {
  MovableController c(hbm_, dram_);
  const Tick done = c.do_move(0, 0, 64 * KiB, 1000);
  EXPECT_GT(done, 1000u);
  const int mig = static_cast<int>(mem::TrafficClass::kMigration);
  EXPECT_EQ(dram_.stats().read_bytes[mig], 64 * KiB);
  EXPECT_EQ(hbm_.stats().write_bytes[mig], 64 * KiB);
}

TEST_F(Fixture, MoveHookObservesCopies) {
  MovableController c(hbm_, dram_);
  std::vector<MoveEvent> events;
  c.set_movement_hook([&](const MoveEvent& e) { events.push_back(e); });
  c.do_move(4096, 8192, 2048, 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].src_hbm);
  EXPECT_TRUE(events[0].dst_hbm);
  EXPECT_EQ(events[0].src_addr, 4096u);
  EXPECT_EQ(events[0].dst_addr, 8192u);
  EXPECT_EQ(events[0].bytes, 2048u);
  EXPECT_FALSE(events[0].is_swap);
}

TEST_F(Fixture, SwapDataReadsAndWritesBothSides) {
  MovableController c(hbm_, dram_);
  std::vector<MoveEvent> events;
  c.set_movement_hook([&](const MoveEvent& e) { events.push_back(e); });
  c.do_swap(0, 0, 2048, 0);
  const int mig = static_cast<int>(mem::TrafficClass::kMigration);
  EXPECT_EQ(hbm_.stats().read_bytes[mig], 2048u);
  EXPECT_EQ(hbm_.stats().write_bytes[mig], 2048u);
  EXPECT_EQ(dram_.stats().read_bytes[mig], 2048u);
  EXPECT_EQ(dram_.stats().write_bytes[mig], 2048u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].is_swap);
}

TEST_F(Fixture, FaultPenaltyDelaysService) {
  // DramOnlyController forces its own visible capacity, so use a test
  // controller that honors the given paging config.
  class TinyVisibleController : public HybridMemoryController {
   public:
    TinyVisibleController(mem::DramDevice& hbm, mem::DramDevice& dram,
                          const PagingConfig& paging)
        : HybridMemoryController("tiny", hbm, dram, paging) {}
    u64 metadata_sram_bytes() const override { return 0; }

   protected:
    HmmResult service(Addr, AccessType, Tick now) override {
      HmmResult r;
      r.complete = now + ns_to_ticks(10);
      return r;
    }
  };

  PagingConfig paging;
  paging.visible_bytes = 2 * 4 * KiB;  // two OS pages
  paging.fault_penalty = ns_to_ticks(500);
  TinyVisibleController c(hbm_, dram_, paging);
  c.access(0 * 4 * KiB, AccessType::kRead, 0);
  c.access(1 * 4 * KiB, AccessType::kRead, 0);
  const auto r = c.access(2 * 4 * KiB, AccessType::kRead, 0);
  EXPECT_EQ(r.fault_penalty, ns_to_ticks(500));
  EXPECT_GT(r.complete, ns_to_ticks(500));
}

TEST(HmmStats, DerivedMetrics) {
  HmmStats s;
  EXPECT_DOUBLE_EQ(s.hbm_serve_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.overfetch_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.mal_fraction(), 0.0);
  s.requests = 10;
  s.hbm_served = 4;
  s.blocks_fetched = 100;
  s.fetched_blocks_used = 87;
  s.total_latency = 1000;
  s.total_metadata_latency = 150;
  EXPECT_DOUBLE_EQ(s.hbm_serve_rate(), 0.4);
  EXPECT_NEAR(s.overfetch_fraction(), 0.13, 1e-12);
  EXPECT_DOUBLE_EQ(s.mal_fraction(), 0.15);
}

}  // namespace
}  // namespace bb::hmm
