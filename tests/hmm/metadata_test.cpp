#include "hmm/metadata.h"

#include <gtest/gtest.h>

#include "mem/dram_device.h"

namespace bb::hmm {
namespace {

TEST(Metadata, SramFixedLatency) {
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kSram;
  cfg.sram_latency = ns_to_ticks(2.0);
  MetadataModel m(cfg, nullptr);
  EXPECT_EQ(m.lookup(0, 0), ns_to_ticks(2.0));
  EXPECT_EQ(m.lookup(12345, 999), ns_to_ticks(2.0));
  EXPECT_EQ(m.stats().lookups, 2u);
  EXPECT_EQ(m.stats().sram_hits, 2u);
  EXPECT_EQ(m.stats().hbm_accesses, 0u);
}

TEST(Metadata, SramUpdateIsFree) {
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kSram;
  MetadataModel m(cfg, nullptr);
  m.update(1, 0);
  EXPECT_EQ(m.stats().hbm_accesses, 0u);
}

TEST(Metadata, HbmPlacementConsumesBandwidth) {
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kHbm;
  MetadataModel m(cfg, &hbm);
  const Tick lat = m.lookup(7, 1000);
  EXPECT_GT(lat, 0u);
  EXPECT_EQ(m.stats().hbm_accesses, 1u);
  const u64 meta_bytes =
      hbm.stats()
          .read_bytes[static_cast<int>(mem::TrafficClass::kMetadata)];
  EXPECT_GT(meta_bytes, 0u);
}

TEST(Metadata, HbmUpdateWritesToDevice) {
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kHbm;
  MetadataModel m(cfg, &hbm);
  m.update(3, 500);
  EXPECT_GT(
      hbm.stats()
          .write_bytes[static_cast<int>(mem::TrafficClass::kMetadata)],
      0u);
}

TEST(Metadata, CachedPlacementHitsAreCheap) {
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kSramCachedHbm;
  cfg.cache_bytes = 64 * KiB;
  cfg.sram_latency = ns_to_ticks(2.0);
  MetadataModel m(cfg, &hbm);
  const Tick miss = m.lookup(0, 0);
  const Tick hit = m.lookup(0, ns_to_ticks(1000));
  EXPECT_GT(miss, hit);
  EXPECT_EQ(hit, ns_to_ticks(2.0));
  EXPECT_EQ(m.stats().hbm_accesses, 1u);
}

TEST(Metadata, CachedPlacementThrashesOnLargeKeySpace) {
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kSramCachedHbm;
  cfg.cache_bytes = 4 * KiB;  // tiny cache
  cfg.entry_bytes = 64;       // one entry per cache line
  MetadataModel m(cfg, &hbm);
  // Key space 16x the cache: most lookups go to HBM.
  Tick now = 0;
  for (u64 k = 0; k < 1024; ++k) {
    now += ns_to_ticks(50);
    m.lookup(k, now);
  }
  EXPECT_GT(m.stats().hbm_accesses, 900u);
}

TEST(Metadata, MeanLatencyTracksTotal) {
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kSram;
  cfg.sram_latency = 100;
  MetadataModel m(cfg, nullptr);
  m.lookup(0, 0);
  m.lookup(1, 0);
  EXPECT_EQ(m.stats().mean_latency(), 100u);
  EXPECT_EQ(m.stats().total_latency, 200u);
}

TEST(Metadata, ResetStatsClearsCountersKeepsCache) {
  // Regression for the warmup-reset path: reset_stats() must clear the
  // lookup/latency counters (including the SRAM metadata cache's hit
  // stats) while the warmed cache contents survive (bb_analyze stats-reset
  // rule).
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  MetadataConfig cfg;
  cfg.placement = MetadataPlacement::kSramCachedHbm;
  MetadataModel m(cfg, &hbm);
  m.lookup(7, 1000);  // miss fills the SRAM metadata cache
  m.lookup(7, 2000);  // hit
  EXPECT_EQ(m.stats().lookups, 2u);
  EXPECT_EQ(m.stats().sram_hits, 1u);
  m.reset_stats();
  EXPECT_EQ(m.stats().lookups, 0u);
  EXPECT_EQ(m.stats().sram_hits, 0u);
  EXPECT_EQ(m.stats().hbm_accesses, 0u);
  EXPECT_EQ(m.stats().total_latency, 0u);
  // Cache contents survived the reset: the same key still hits in SRAM.
  m.lookup(7, 3000);
  EXPECT_EQ(m.stats().sram_hits, 1u);
  EXPECT_EQ(m.stats().hbm_accesses, 0u);
}

}  // namespace
}  // namespace bb::hmm
