#include "hmm/paging.h"

#include <gtest/gtest.h>

namespace bb::hmm {
namespace {

PagingConfig tiny(u64 pages) {
  PagingConfig cfg;
  cfg.visible_bytes = pages * cfg.os_page_bytes;
  cfg.fault_penalty = ns_to_ticks(100);
  return cfg;
}

TEST(Paging, ColdFaultsAreFree) {
  PagingModel p(tiny(4));
  for (u64 i = 0; i < 4; ++i) {
    EXPECT_EQ(p.touch(i * 4 * KiB), 0u);
  }
  EXPECT_EQ(p.stats().first_touches, 4u);
  EXPECT_EQ(p.stats().faults, 0u);
}

TEST(Paging, ResidentPagesDontFault) {
  PagingModel p(tiny(4));
  p.touch(0);
  p.touch(1);  // same 4 KiB page
  p.touch(4095);
  EXPECT_EQ(p.stats().first_touches, 1u);
  EXPECT_EQ(p.stats().faults, 0u);
}

TEST(Paging, CapacityFaultCharged) {
  PagingModel p(tiny(2));
  p.touch(0 * 4 * KiB);
  p.touch(1 * 4 * KiB);
  const Tick penalty = p.touch(2 * 4 * KiB);
  EXPECT_EQ(penalty, ns_to_ticks(100));
  EXPECT_EQ(p.stats().faults, 1u);
}

TEST(Paging, SequentialOverCapacityThrashes) {
  // Cycling 3 pages through a 2-page residency faults on every touch of a
  // non-resident page (the classic clock/LRU worst case).
  PagingModel p(tiny(2));
  p.touch(0 * 4 * KiB);
  p.touch(1 * 4 * KiB);
  p.touch(2 * 4 * KiB);
  const u64 before = p.stats().faults;
  p.touch(0 * 4 * KiB);
  p.touch(1 * 4 * KiB);
  p.touch(2 * 4 * KiB);
  EXPECT_EQ(p.stats().faults, before + 3);
}

TEST(Paging, ClockGivesSecondChanceToReferencedPages) {
  PagingModel p(tiny(3));
  const Addr A = 0, B = 4 * KiB, C = 8 * KiB, D = 12 * KiB, E = 16 * KiB;
  p.touch(A);
  p.touch(B);
  p.touch(C);
  p.touch(D);  // fault: reference bits cleared, one of A/B/C evicted
  p.touch(B);  // re-reference B
  p.touch(E);  // fault: B's reference bit protects it
  EXPECT_EQ(p.touch(B), 0u) << "recently referenced page must survive";
}

TEST(Paging, DisabledNeverFaults) {
  PagingConfig cfg;
  cfg.enabled = false;
  cfg.visible_bytes = 0;
  PagingModel p(cfg);
  for (u64 i = 0; i < 100; ++i) {
    EXPECT_EQ(p.touch(i * 4 * KiB), 0u);
  }
  EXPECT_EQ(p.stats().faults, 0u);
}

TEST(Paging, HighVisibilityAbsorbsLargeFootprint) {
  // A design with 11 GB visible should fault less than one with 10 GB on
  // an 10.5 GB working set.
  PagingConfig big = tiny(0);
  big.visible_bytes = 11 * GiB;
  PagingConfig small = tiny(0);
  small.visible_bytes = 10 * GiB;
  PagingModel pb(big), ps(small);
  // Touch 10.5 GiB worth of 4 KiB pages twice: the 11 GiB-visible design
  // absorbs the working set; the 10 GiB one faults on the second round.
  const u64 pages = (10 * GiB + 512 * MiB) / (4 * KiB);
  for (int round = 0; round < 2; ++round) {
    for (u64 i = 0; i < pages; ++i) {
      pb.touch(i * 4 * KiB);
      ps.touch(i * 4 * KiB);
    }
  }
  EXPECT_EQ(pb.stats().faults, 0u);
  EXPECT_GT(ps.stats().faults, 0u);
}

TEST(Paging, ResetStatsClearsCountersKeepsResidency) {
  // Regression for the warmup-reset path: reset_stats() must clear the
  // fault/first-touch counters without touching the resident set or the
  // clock hand (bb_analyze stats-reset rule).
  PagingModel p(tiny(2));
  p.touch(0 * 4 * KiB);
  p.touch(1 * 4 * KiB);
  p.touch(2 * 4 * KiB);  // capacity fault evicts one resident page
  EXPECT_EQ(p.stats().first_touches, 2u);
  EXPECT_EQ(p.stats().faults, 1u);
  p.reset_stats();
  EXPECT_EQ(p.stats().first_touches, 0u);
  EXPECT_EQ(p.stats().faults, 0u);
  // The resident set survived: re-touching the just-admitted page is free
  // and is neither a fault nor a first touch.
  EXPECT_EQ(p.touch(2 * 4 * KiB), 0u);
  EXPECT_EQ(p.stats().faults, 0u);
  EXPECT_EQ(p.stats().first_touches, 0u);
}

}  // namespace
}  // namespace bb::hmm
