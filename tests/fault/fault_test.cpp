// Fault model unit tests: profile/spec parsing (including fuzz-style
// negative cases), deterministic classification, population statistics,
// row-retirement lifecycle, and DramDevice ECC integration.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "mem/dram_device.h"

namespace bb::fault {
namespace {

TEST(FaultConfigTest, NoneProfileDisablesEverything) {
  const FaultConfig cfg = FaultConfig::profile("none", 0.5);
  EXPECT_FALSE(cfg.enabled());
  EXPECT_FALSE(cfg.hbm.any());
  EXPECT_FALSE(cfg.dram.any());
}

TEST(FaultConfigTest, NamedProfilesSetTheirPopulation) {
  const FaultConfig t = FaultConfig::profile("transient", 1e-3);
  EXPECT_DOUBLE_EQ(t.hbm.transient_per_access, 1e-3);
  EXPECT_DOUBLE_EQ(t.dram.transient_per_access, 1e-3);
  EXPECT_TRUE(t.enabled());

  const FaultConfig s = FaultConfig::profile("stuck-rows", 0.25);
  EXPECT_DOUBLE_EQ(s.hbm.stuck_row_fraction, 0.25);
  EXPECT_DOUBLE_EQ(s.hbm.transient_per_access, 0.0);

  const FaultConfig b = FaultConfig::profile("dead-bank", 0.5);
  EXPECT_DOUBLE_EQ(b.dram.dead_bank_fraction, 0.5);

  const FaultConfig m = FaultConfig::profile("mixed", 1e-4, 7);
  EXPECT_DOUBLE_EQ(m.hbm.transient_per_access, 1e-4);
  EXPECT_DOUBLE_EQ(m.hbm.stuck_row_fraction, 1e-3);
  EXPECT_DOUBLE_EQ(m.hbm.dead_bank_fraction, 1e-2);
  EXPECT_EQ(m.seed, 7u);
}

TEST(FaultConfigTest, ProfileRejectsBadInput) {
  EXPECT_THROW(FaultConfig::profile("nosuch", 1e-4), std::invalid_argument);
  EXPECT_THROW(FaultConfig::profile("mixed", -0.1), std::invalid_argument);
  EXPECT_THROW(FaultConfig::profile("mixed", 1.5), std::invalid_argument);
  EXPECT_THROW(
      FaultConfig::profile("mixed",
                           std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

TEST(FaultConfigTest, ParseSpecRoundTrips) {
  const FaultConfig a = FaultConfig::parse("mixed:1e-4:7");
  EXPECT_DOUBLE_EQ(a.hbm.transient_per_access, 1e-4);
  EXPECT_EQ(a.seed, 7u);

  const FaultConfig b = FaultConfig::parse("transient");
  EXPECT_DOUBLE_EQ(b.hbm.transient_per_access, 1e-4);  // default rate
  EXPECT_EQ(b.seed, 0u);

  const FaultConfig c = FaultConfig::parse("stuck-rows:0.5");
  EXPECT_DOUBLE_EQ(c.hbm.stuck_row_fraction, 0.5);
}

TEST(FaultConfigTest, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"", ":", "bogus", "mixed:abc", "mixed:1e-4:xyz", "mixed:1e-4:7:9",
        "mixed:1e999", "mixed:-1", "mixed:2.0", "mixed:1e-4:-3",
        "transient:", "transient:0.1:"}) {
    EXPECT_THROW(FaultConfig::parse(bad), std::invalid_argument)
        << "spec: \"" << bad << '"';
  }
}

// Fuzz-style: random byte soup (including non-UTF8 and embedded colons)
// must either parse or throw invalid_argument — never crash or hang.
TEST(FaultConfigFuzzTest, ParseNeverCrashesOnGarbage) {
  SplitMix64 rng(0xFA017u);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string spec;
    const u64 len = rng.next() % 24;
    for (u64 i = 0; i < len; ++i) {
      spec.push_back(static_cast<char>(rng.next() & 0xFF));
    }
    try {
      const FaultConfig cfg = FaultConfig::parse(spec);
      (void)cfg.enabled();
    } catch (const std::invalid_argument&) {
      // expected for nearly every input
    }
  }
}

FaultConfig transient_cfg(double rate, double due_fraction = 0.05) {
  FaultConfig cfg = FaultConfig::profile("transient", rate);
  cfg.due_fraction = due_fraction;
  return cfg;
}

TEST(FaultModelTest, SameSeedSameClassification) {
  const FaultConfig cfg = FaultConfig::profile("mixed", 0.05, 3);
  DeviceFaultState a(cfg, /*is_hbm=*/true, /*run_seed=*/42);
  DeviceFaultState b(cfg, /*is_hbm=*/true, /*run_seed=*/42);
  for (u32 ch = 0; ch < 4; ++ch) {
    for (u32 bank = 0; bank < 8; ++bank) {
      for (u32 row = 0; row < 16; ++row) {
        const Tick t = static_cast<Tick>(row) * 1000;
        const FaultEvent ea = a.classify(ch, bank, row, t);
        const FaultEvent eb = b.classify(ch, bank, row, t);
        EXPECT_EQ(ea.outcome, eb.outcome);
        EXPECT_EQ(ea.kind, eb.kind);
      }
    }
  }
  EXPECT_EQ(a.retired_rows(), b.retired_rows());
}

TEST(FaultModelTest, DifferentSeedsDiffer) {
  const FaultConfig cfg = transient_cfg(0.5);
  DeviceFaultState a(cfg, true, 1);
  DeviceFaultState b(cfg, true, 2);
  u32 differ = 0;
  for (u32 row = 0; row < 256; ++row) {
    const FaultEvent ea = a.classify(0, 0, row, row);
    const FaultEvent eb = b.classify(0, 0, row, row);
    differ += (ea.outcome != eb.outcome);
  }
  EXPECT_GT(differ, 0u);
}

TEST(FaultModelTest, HbmAndDramStreamsAreIndependent) {
  FaultConfig cfg = FaultConfig::profile("transient", 0.5);
  DeviceFaultState hbm(cfg, true, 42);
  DeviceFaultState dram(cfg, false, 42);
  u32 differ = 0;
  for (u32 row = 0; row < 256; ++row) {
    differ += (hbm.classify(0, 0, row, row).outcome !=
               dram.classify(0, 0, row, row).outcome);
  }
  EXPECT_GT(differ, 0u);
}

TEST(FaultModelTest, TransientRateWithinStatisticalBounds) {
  const double rate = 0.1;
  DeviceFaultState st(transient_cfg(rate), true, 7);
  const u32 n = 20000;
  u32 faults = 0;
  for (u32 i = 0; i < n; ++i) {
    // Distinct ticks: each access is an independent Bernoulli draw.
    const FaultEvent e = st.classify(0, 0, i % 64, i);
    faults += (e.outcome != EccOutcome::kClean);
  }
  const double observed = static_cast<double>(faults) / n;
  EXPECT_NEAR(observed, rate, 0.02);
}

TEST(FaultModelTest, TransientDueFractionSplitsCeAndUe) {
  DeviceFaultState st(transient_cfg(0.5, /*due_fraction=*/0.2), true, 9);
  u32 ce = 0, ue = 0;
  for (u32 i = 0; i < 20000; ++i) {
    const FaultEvent e = st.classify(0, 0, i % 64, i);
    ce += (e.outcome == EccOutcome::kCorrected);
    ue += (e.outcome == EccOutcome::kUncorrectable);
  }
  ASSERT_GT(ce, 0u);
  ASSERT_GT(ue, 0u);
  const double due_share = static_cast<double>(ue) / (ce + ue);
  EXPECT_NEAR(due_share, 0.2, 0.03);
}

TEST(FaultModelTest, StuckRowRetiresAfterThresholdThenServesClean) {
  FaultConfig cfg = FaultConfig::profile("stuck-rows", 1.0);
  cfg.retire_row_after_ces = 4;
  DeviceFaultState st(cfg, true, 42);
  for (u32 i = 0; i < 4; ++i) {
    const FaultEvent e = st.classify(1, 2, 3, i);
    EXPECT_EQ(e.outcome, EccOutcome::kCorrected);
    EXPECT_EQ(e.kind, FaultKind::kStuckRow);
    EXPECT_EQ(e.row_retired, i == 3);  // 4th CE crosses the threshold
  }
  EXPECT_EQ(st.retired_rows(), 1u);
  // The spare row serves clean from now on.
  for (u32 i = 4; i < 8; ++i) {
    EXPECT_EQ(st.classify(1, 2, 3, i).outcome, EccOutcome::kClean);
  }
  EXPECT_EQ(st.retired_rows(), 1u);
  // Other rows are independently stuck.
  EXPECT_EQ(st.classify(1, 2, 4, 0).outcome, EccOutcome::kCorrected);
}

TEST(FaultModelTest, DeadBankIsAlwaysUncorrectable) {
  const FaultConfig cfg = FaultConfig::profile("dead-bank", 1.0);
  DeviceFaultState st(cfg, true, 42);
  for (u32 i = 0; i < 32; ++i) {
    const FaultEvent e = st.classify(i % 4, i % 8, i, i * 10);
    EXPECT_EQ(e.outcome, EccOutcome::kUncorrectable);
    EXPECT_EQ(e.kind, FaultKind::kDeadBank);
  }
}

TEST(FaultDeviceTest, AttachedDeviceCountsCesAndAddsLatency) {
  FaultConfig cfg = FaultConfig::profile("stuck-rows", 1.0);
  cfg.due_fraction = 0.0;
  cfg.retire_row_after_ces = 1000000;  // keep every access a CE
  DeviceFaultState faults(cfg, true, 42);

  mem::DramDevice clean(mem::DramTimingParams::hbm2_1gb());
  mem::DramDevice faulty(mem::DramTimingParams::hbm2_1gb());
  faulty.attach_faults(&faults, "hbm");

  const auto rc = clean.access(0, 64, AccessType::kRead, 0);
  const auto rf = faulty.access(0, 64, AccessType::kRead, 0);
  EXPECT_EQ(rc.ecc, EccOutcome::kClean);
  EXPECT_EQ(rf.ecc, EccOutcome::kCorrected);
  EXPECT_EQ(rf.complete, rc.complete + cfg.ce_latency);
  EXPECT_EQ(faulty.stats().ce_count, 1u);
  EXPECT_EQ(faulty.stats().ue_count, 0u);
  EXPECT_EQ(clean.stats().ce_count, 0u);
}

TEST(FaultDeviceTest, DeadBanksRaiseUeCounters) {
  FaultConfig cfg = FaultConfig::profile("dead-bank", 1.0);
  DeviceFaultState faults(cfg, false, 42);
  mem::DramDevice dev(mem::DramTimingParams::ddr4_3200_10gb());
  dev.attach_faults(&faults, "dram");
  for (u64 i = 0; i < 8; ++i) {
    EXPECT_EQ(dev.access(i * 64, 64, AccessType::kRead, 0).ecc,
              EccOutcome::kUncorrectable);
  }
  EXPECT_EQ(dev.stats().ue_count, 8u);
}

}  // namespace
}  // namespace bb::fault
