#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace bb::snap {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Snapshot, RoundTripsEveryType) {
  const std::string path = tmp_path("roundtrip.bbsnap");
  Writer w;
  w.put_u8(7);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x123456789ABCDEF0ULL);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_str("bumblebee");
  w.put_str("");
  w.commit(path);

  Reader r(path);
  EXPECT_EQ(r.get_u8(), 7u);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_str(), "bumblebee");
  EXPECT_EQ(r.get_str(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, CommitIsAtomic) {
  const std::string path = tmp_path("atomic.bbsnap");
  Writer w;
  w.put_u64(1);
  w.commit(path);
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Recommitting over an existing file replaces it whole.
  Writer w2;
  w2.put_u64(2);
  w2.commit(path);
  Reader r(path);
  EXPECT_EQ(r.get_u64(), 2u);
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, TagMismatchThrows) {
  const std::string path = tmp_path("tagmismatch.bbsnap");
  Writer w;
  w.put_u64(99);
  w.commit(path);
  Reader r(path);
  EXPECT_THROW(r.get_u32(), SnapshotError);
}

TEST(Snapshot, ReadPastEndThrows) {
  const std::string path = tmp_path("pastend.bbsnap");
  Writer w;
  w.put_u8(1);
  w.commit(path);
  Reader r(path);
  EXPECT_EQ(r.get_u8(), 1u);
  EXPECT_THROW(r.get_u8(), SnapshotError);
}

TEST(Snapshot, PayloadCorruptionFailsClosed) {
  const std::string path = tmp_path("corrupt.bbsnap");
  Writer w;
  for (u64 i = 0; i < 16; ++i) w.put_u64(i);
  w.commit(path);
  std::string blob = read_file(path);
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  write_raw(path, blob);
  EXPECT_THROW(Reader r(path), SnapshotError);
}

TEST(Snapshot, MagicMismatchFailsClosed) {
  const std::string path = tmp_path("badmagic.bbsnap");
  Writer w;
  w.put_u64(1);
  w.commit(path);
  std::string blob = read_file(path);
  blob[0] = 'X';
  write_raw(path, blob);
  EXPECT_THROW(Reader r(path), SnapshotError);
}

TEST(Snapshot, VersionMismatchFailsClosed) {
  const std::string path = tmp_path("badversion.bbsnap");
  Writer w;
  w.put_u64(1);
  w.commit(path);
  std::string blob = read_file(path);
  // u32 version lives right after the 8-byte magic.
  blob[8] = static_cast<char>(kFormatVersion + 1);
  write_raw(path, blob);
  EXPECT_THROW(Reader r(path), SnapshotError);
}

TEST(Snapshot, TruncationFailsClosed) {
  const std::string path = tmp_path("truncated.bbsnap");
  Writer w;
  for (u64 i = 0; i < 16; ++i) w.put_u64(i);
  w.commit(path);
  const std::string blob = read_file(path);
  write_raw(path, blob.substr(0, blob.size() - 5));
  EXPECT_THROW(Reader r(path), SnapshotError);
}

TEST(Snapshot, MissingFileThrows) {
  EXPECT_THROW(Reader r(tmp_path("does-not-exist.bbsnap")), SnapshotError);
}

TEST(Snapshot, WriteFileAtomicWritesAndCleansUp) {
  const std::string path = tmp_path("artifact.csv");
  write_file_atomic(path, "a,b\n1,2\n");
  EXPECT_EQ(read_file(path), "a,b\n1,2\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Overwrite is whole-file, never an append.
  write_file_atomic(path, "x\n");
  EXPECT_EQ(read_file(path), "x\n");
}

TEST(Snapshot, WriteFileAtomicUnwritablePathThrows) {
  EXPECT_THROW(
      write_file_atomic("/nonexistent-dir/sub/out.csv", "x"),
      std::ios_base::failure);
}

TEST(Snapshot, FileExistsProbe) {
  const std::string path = tmp_path("exists.probe");
  EXPECT_FALSE(file_exists(path));
  write_raw(path, "x");
  EXPECT_TRUE(file_exists(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bb::snap
