#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace bb {
namespace {

TEST(JsonParse, ObjectWithScalars) {
  JsonValue v;
  ASSERT_TRUE(json_parse(
      R"({"s":"hi","n":2.5,"i":-3,"t":true,"f":false,"z":null})", v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("s"), "hi");
  EXPECT_DOUBLE_EQ(v.get_number("n"), 2.5);
  EXPECT_DOUBLE_EQ(v.get_number("i"), -3.0);
  ASSERT_NE(v.find("t"), nullptr);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_FALSE(v.find("f")->boolean);
  EXPECT_TRUE(v.find("z")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.get_string("missing", "fb"), "fb");
  EXPECT_DOUBLE_EQ(v.get_number("s", 9.0), 9.0);  // type mismatch: fallback
}

TEST(JsonParse, NestedArraysAndObjects) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"a":[1,2,{"b":[3]}],"o":{"k":"v"}})", v));
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[2].find("b")->array[0].number, 3.0);
  EXPECT_EQ(v.find("o")->get_string("k"), "v");
}

TEST(JsonParse, StringEscapes) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"s":"a\"b\\c\nA"})", v));
  EXPECT_EQ(v.get_string("s"), "a\"b\\c\nA");
}

TEST(JsonParse, RoundTripsJsonDouble) {
  const double val = 130.92317960000001;
  JsonValue v;
  ASSERT_TRUE(json_parse("{\"x\":" + json_double(val) + "}", v));
  EXPECT_DOUBLE_EQ(v.get_number("x"), val);
}

TEST(JsonParse, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("", v, &err));
  EXPECT_FALSE(json_parse("{", v));
  EXPECT_FALSE(json_parse(R"({"a":})", v));
  EXPECT_FALSE(json_parse(R"({"a":1,})", v));
  EXPECT_FALSE(json_parse("[1,2", v));
  EXPECT_FALSE(json_parse("\"unterminated", v));
  EXPECT_FALSE(json_parse("nul", v));
}

TEST(JsonParse, RejectsTrailingGarbage) {
  JsonValue v;
  EXPECT_FALSE(json_parse("{} trailing", v));
  EXPECT_FALSE(json_parse("1 2", v));
}

TEST(JsonParse, AcceptsSurroundingWhitespace) {
  JsonValue v;
  ASSERT_TRUE(json_parse("  { \"a\" : 1 }  ", v));
  EXPECT_DOUBLE_EQ(v.get_number("a"), 1.0);
}

// Every proper prefix of a valid document must be rejected (journal files
// end in torn lines exactly like these after a crash or SIGINT).
TEST(JsonParseFuzz, RejectsEveryTruncation) {
  const std::string doc =
      R"({"design":"Bumblebee","cores":[{"ipc":1.5},{"ipc":0.25}],)"
      R"("ok":true,"note":"a\"b\\c"})";
  JsonValue probe;
  ASSERT_TRUE(json_parse(doc, probe));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    JsonValue v;
    EXPECT_FALSE(json_parse(doc.substr(0, len), v)) << "prefix len " << len;
  }
}

// Random byte mutations of a valid document — including bytes that are not
// valid UTF-8 (0x80..0xFF) — must parse or fail cleanly, never crash.
TEST(JsonParseFuzz, MutatedDocumentsNeverCrash) {
  const std::string doc =
      R"({"k":[1,2.5,-3e2,true,false,null,"s"],"o":{"n":{"m":[[]]}}})";
  SplitMix64 rng(0x1505);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string mutated = doc;
    const u64 edits = 1 + rng.next() % 4;
    for (u64 e = 0; e < edits; ++e) {
      mutated[rng.next() % mutated.size()] =
          static_cast<char>(rng.next() & 0xFF);
    }
    JsonValue v;
    std::string err;
    (void)json_parse(mutated, v, &err);  // outcome is free; crashing is not
  }
}

// Pure byte soup, not derived from any valid document.
TEST(JsonParseFuzz, GarbageInputNeverCrashes) {
  SplitMix64 rng(0xBADF00D);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string garbage;
    const u64 len = rng.next() % 64;
    for (u64 i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.next() & 0xFF));
    }
    JsonValue v;
    (void)json_parse(garbage, v);
  }
}

TEST(JsonParseFuzz, DeeplyNestedInputFailsInsteadOfOverflowing) {
  // Past the parser's depth cap (64) the answer must be a clean failure,
  // not a stack overflow.
  const std::string deep_array(1000, '[');
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse(deep_array, v, &err));
  EXPECT_FALSE(json_parse(deep_array + std::string(1000, ']'), v, &err));

  std::string deep_object;
  for (int i = 0; i < 200; ++i) deep_object += "{\"a\":";
  EXPECT_FALSE(json_parse(deep_object, v));

  // At depth well under the cap, nesting still parses.
  std::string ok = std::string(32, '[') + "1" + std::string(32, ']');
  EXPECT_TRUE(json_parse(ok, v));
}

TEST(JsonParseFuzz, NonUtf8BytesInsideStringsDoNotCrash) {
  std::string doc = "{\"s\":\"";
  doc.push_back(static_cast<char>(0xFF));
  doc.push_back(static_cast<char>(0xC3));
  doc.push_back(static_cast<char>(0x28));  // invalid 2-byte sequence
  doc += "\"}";
  JsonValue v;
  (void)json_parse(doc, v);  // accept or reject; must not crash
}

}  // namespace
}  // namespace bb
