#include "common/json.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(JsonParse, ObjectWithScalars) {
  JsonValue v;
  ASSERT_TRUE(json_parse(
      R"({"s":"hi","n":2.5,"i":-3,"t":true,"f":false,"z":null})", v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("s"), "hi");
  EXPECT_DOUBLE_EQ(v.get_number("n"), 2.5);
  EXPECT_DOUBLE_EQ(v.get_number("i"), -3.0);
  ASSERT_NE(v.find("t"), nullptr);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_FALSE(v.find("f")->boolean);
  EXPECT_TRUE(v.find("z")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.get_string("missing", "fb"), "fb");
  EXPECT_DOUBLE_EQ(v.get_number("s", 9.0), 9.0);  // type mismatch: fallback
}

TEST(JsonParse, NestedArraysAndObjects) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"a":[1,2,{"b":[3]}],"o":{"k":"v"}})", v));
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[2].find("b")->array[0].number, 3.0);
  EXPECT_EQ(v.find("o")->get_string("k"), "v");
}

TEST(JsonParse, StringEscapes) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"s":"a\"b\\c\nA"})", v));
  EXPECT_EQ(v.get_string("s"), "a\"b\\c\nA");
}

TEST(JsonParse, RoundTripsJsonDouble) {
  const double val = 130.92317960000001;
  JsonValue v;
  ASSERT_TRUE(json_parse("{\"x\":" + json_double(val) + "}", v));
  EXPECT_DOUBLE_EQ(v.get_number("x"), val);
}

TEST(JsonParse, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("", v, &err));
  EXPECT_FALSE(json_parse("{", v));
  EXPECT_FALSE(json_parse(R"({"a":})", v));
  EXPECT_FALSE(json_parse(R"({"a":1,})", v));
  EXPECT_FALSE(json_parse("[1,2", v));
  EXPECT_FALSE(json_parse("\"unterminated", v));
  EXPECT_FALSE(json_parse("nul", v));
}

TEST(JsonParse, RejectsTrailingGarbage) {
  JsonValue v;
  EXPECT_FALSE(json_parse("{} trailing", v));
  EXPECT_FALSE(json_parse("1 2", v));
}

TEST(JsonParse, AcceptsSurroundingWhitespace) {
  JsonValue v;
  ASSERT_TRUE(json_parse("  { \"a\" : 1 }  ", v));
  EXPECT_DOUBLE_EQ(v.get_number("a"), 1.0);
}

}  // namespace
}  // namespace bb
