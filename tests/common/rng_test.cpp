#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bb {
namespace {

TEST(SplitMix, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const u64 a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(1);
  for (u64 bound : {u64{1}, u64{2}, u64{17}, u64{1000000}}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GapMeanMatches) {
  Rng rng(3);
  for (double mean : {2.0, 10.0, 62.1, 1000.0}) {
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.next_gap(mean));
    EXPECT_NEAR(sum / n / mean, 1.0, 0.05) << "mean " << mean;
  }
}

TEST(Rng, GapAlwaysPositive) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(rng.next_gap(0.5), 1u);
    ASSERT_GE(rng.next_gap(1.0), 1u);
  }
}

TEST(Zipf, SampleInRange) {
  Rng rng(6);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(zipf.sample(rng), 100u);
  }
}

TEST(Zipf, SkewConcentratesMass) {
  Rng rng(8);
  ZipfSampler zipf(1000, 1.2);
  std::vector<int> counts(1000, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(zipf.sample(rng))];
  // Rank 0 must dominate rank 10 which must dominate rank 100.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // The head holds a large share under s = 1.2.
  int head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(static_cast<double>(head) / n, 0.25);
}

TEST(Zipf, UniformWhenSZero) {
  Rng rng(10);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(zipf.sample(rng))];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Zipf, SingleElement) {
  Rng rng(11);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, ZeroElementsClamped) {
  ZipfSampler zipf(0, 1.0);
  EXPECT_EQ(zipf.n(), 1u);
}

class RngSeedTest : public ::testing::TestWithParam<u64> {};

TEST_P(RngSeedTest, ReseedReproduces) {
  Rng a(GetParam());
  std::vector<u64> first;
  for (int i = 0; i < 64; ++i) first.push_back(a.next_u64());
  a.reseed(GetParam());
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0, 1, 42, 0xdeadbeef,
                                           ~u64{0}));

}  // namespace
}  // namespace bb
