#include "common/bitvector.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(BitVector, EmptyByDefault) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
}

TEST(BitVector, SetAndTest) {
  BitVector v(100);
  EXPECT_FALSE(v.test(0));
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVector, Unset) {
  BitVector v(10);
  v.set(5);
  EXPECT_TRUE(v.test(5));
  v.set(5, false);
  EXPECT_FALSE(v.test(5));
  EXPECT_TRUE(v.none());
}

TEST(BitVector, SetAllRespectsSize) {
  for (std::size_t n : {1u, 31u, 32u, 63u, 64u, 65u, 127u, 128u}) {
    BitVector v(n);
    v.set_all();
    EXPECT_EQ(v.popcount(), n) << "size " << n;
    EXPECT_TRUE(v.all());
    v.clear_all();
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.all());
  }
}

TEST(BitVector, AllOnEmptyIsTrue) {
  BitVector v(0);
  EXPECT_TRUE(v.all());  // vacuous truth
  EXPECT_TRUE(v.none());
}

TEST(BitVector, Equality) {
  BitVector a(48), b(48), c(47);
  a.set(3);
  b.set(3);
  EXPECT_TRUE(a == b);
  b.set(4);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(BitVector, ResizeClears) {
  BitVector v(10);
  v.set_all();
  v.resize(20);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.size(), 20u);
}

class BitVectorSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorSizeTest, PopcountMatchesLoop) {
  const std::size_t n = GetParam();
  BitVector v(n);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    v.set(i);
    ++expected;
  }
  EXPECT_EQ(v.popcount(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeTest,
                         ::testing::Values(1, 2, 31, 32, 33, 48, 63, 64, 65,
                                           96, 127, 128, 1000));

}  // namespace
}  // namespace bb
