#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace bb {
namespace {

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i, unsigned worker) {
    EXPECT_LT(worker, pool.size());
    ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForWorkerIdsIndexPrivateState) {
  // Worker ids must be usable as indexes into per-worker scratch state:
  // two concurrent body calls never share an id.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> in_use(3);
  std::atomic<bool> collision{false};
  pool.parallel_for(200, [&](std::size_t, unsigned worker) {
    if (in_use[worker].fetch_add(1) != 0) collision = true;
    in_use[worker].fetch_sub(1);
  });
  EXPECT_FALSE(collision.load());
}

TEST(ThreadPool, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t, unsigned) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    ++count;
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, unsigned) {
                          ++ran;
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t, unsigned) { throw std::logic_error(""); }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace bb
