#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bb {
namespace {

TEST(Counter, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(5);
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, Empty) {
  ScalarStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ScalarStat, Summary) {
  ScalarStat s;
  s.sample(1.0);
  s.sample(3.0);
  s.sample(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(ScalarStat, NegativeValues) {
  ScalarStat s;
  s.sample(-5.0);
  s.sample(5.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h({5, 10, 15, 20});
  h.sample(0);     // -> bucket 0
  h.sample(4.99);  // -> bucket 0
  h.sample(5);     // -> bucket 1 (upper bound exclusive below)
  h.sample(9.99);  // -> bucket 1
  h.sample(19.99); // -> bucket 3
  h.sample(20);    // -> overflow
  h.sample(1000);  // -> overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, Fractions) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);  // empty histogram
  h.sample(0.5, 3);
  h.sample(2.0, 1);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, Reset) {
  Histogram h({1.0});
  h.sample(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h({10.0, 20.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  Histogram none;
  none.sample(5.0);
  EXPECT_DOUBLE_EQ(none.quantile(0.5), 0.0);  // no finite bounds
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  // All mass in bucket [0, 10): linear interpolation across the bucket.
  Histogram h({10.0});
  h.sample(5.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileExactBucketBoundary) {
  // 10 samples per bucket over [0,10), [10,20), [20,30).
  Histogram h({10.0, 20.0, 30.0});
  h.sample(5.0, 10);
  h.sample(15.0, 10);
  h.sample(25.0, 10);
  // target lands (up to rounding) on a bucket edge.
  EXPECT_NEAR(h.quantile(1.0 / 3.0), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 27.0);
}

TEST(Histogram, QuantileWeightedSamples) {
  Histogram h({10.0, 20.0});
  h.sample(5.0, 1);
  h.sample(15.0, 99);
  // p50 target = 50 of 100; 49 into the second bucket's 99 samples.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0 + 10.0 * 49.0 / 99.0);
}

TEST(Histogram, QuantileOverflowClampsToLastBound) {
  Histogram h({10.0});
  h.sample(100.0, 4);  // all mass in the overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 10.0);
}

TEST(Histogram, QuantileClampsQ) {
  Histogram h({10.0});
  h.sample(5.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 10.0);
}

TEST(Geomean, Basics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, NonPositiveGivesZero) {
  EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, -2.0}), 0.0);
}

TEST(StatGroup, NamedCounters) {
  StatGroup g;
  g.counter("a").inc(2);
  g.counter("b").inc();
  EXPECT_EQ(g.counter("a").value(), 2u);
  EXPECT_EQ(g.counters().size(), 2u);
  g.reset();
  EXPECT_EQ(g.counter("a").value(), 0u);
}

}  // namespace
}  // namespace bb
