#include "common/types.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4097));
  EXPECT_TRUE(is_pow2(u64{1} << 63));
}

TEST(Types, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_floor((u64{1} << 40) + 5), 40u);
}

TEST(Types, BitsFor) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 0u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(88), 7u);   // the paper's m + n = 88 -> 7-bit PLE
  EXPECT_EQ(bits_for(128), 7u);
  EXPECT_EQ(bits_for(129), 8u);
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 8), 0u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
  EXPECT_EQ(ceil_div(8, 8), 1u);
  EXPECT_EQ(ceil_div(9, 8), 2u);
}

TEST(Types, TickConversions) {
  EXPECT_EQ(ns_to_ticks(1.0), 1000u);
  EXPECT_EQ(ns_to_ticks(0.625), 625u);
  EXPECT_DOUBLE_EQ(ticks_to_ns(1500), 1.5);
  EXPECT_DOUBLE_EQ(ticks_to_s(1'000'000'000'000ULL), 1.0);
}

TEST(Types, Units) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(Types, AccessTypeToString) {
  EXPECT_STREQ(to_string(AccessType::kRead), "read");
  EXPECT_STREQ(to_string(AccessType::kWrite), "write");
}

}  // namespace
}  // namespace bb
