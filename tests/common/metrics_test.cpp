#include "common/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bb {
namespace {

TEST(MetricRegistry, NamesInRegistrationOrder) {
  MetricRegistry reg;
  reg.add_counter("c", [] { return 0.0; });
  reg.add_gauge("g", [] { return 0.0; });
  reg.add_ratio("r", [] { return 0.0; }, [] { return 0.0; });
  ASSERT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"c", "g", "r"}));
  EXPECT_EQ(reg.kind(0), MetricKind::kCounter);
  EXPECT_EQ(reg.kind(1), MetricKind::kGauge);
  EXPECT_EQ(reg.kind(2), MetricKind::kRatio);
}

TEST(EpochSampler, RequestDrivenEpochsReportDeltas) {
  double counter = 1.0;  // non-zero before construction: baselined away
  MetricRegistry reg;
  reg.add_counter("c", [&counter] { return counter; });
  EpochConfig cfg;
  cfg.every_requests = 2;
  EpochSampler s(cfg, std::move(reg));

  counter = 2.0;
  s.on_request(100);
  counter = 4.0;
  s.on_request(200);  // closes epoch 0
  counter = 5.0;
  s.on_request(300);
  s.finish();  // closes the final partial epoch

  ASSERT_EQ(s.rows().size(), 2u);
  const EpochRow& e0 = s.rows()[0];
  EXPECT_EQ(e0.epoch, 0u);
  EXPECT_EQ(e0.start_tick, 0u);
  EXPECT_EQ(e0.end_tick, 200u);
  EXPECT_EQ(e0.requests, 2u);
  ASSERT_EQ(e0.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e0.values[0], 3.0);  // 4 - 1 (construction baseline)

  const EpochRow& e1 = s.rows()[1];
  EXPECT_EQ(e1.epoch, 1u);
  EXPECT_EQ(e1.start_tick, 200u);
  EXPECT_EQ(e1.end_tick, 300u);
  EXPECT_EQ(e1.requests, 1u);
  EXPECT_DOUBLE_EQ(e1.values[0], 1.0);  // 5 - 4
}

TEST(EpochSampler, GaugeReportsEndOfEpochValue) {
  double gauge = 10.0;
  MetricRegistry reg;
  reg.add_gauge("g", [&gauge] { return gauge; });
  EpochConfig cfg;
  cfg.every_requests = 1;
  EpochSampler s(cfg, std::move(reg));

  gauge = 42.0;
  s.on_request(10);
  gauge = 7.0;
  s.on_request(20);
  ASSERT_EQ(s.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(s.rows()[0].values[0], 42.0);
  EXPECT_DOUBLE_EQ(s.rows()[1].values[0], 7.0);
}

TEST(EpochSampler, RatioUsesEpochDeltas) {
  double num = 100.0, den = 1000.0;  // cumulative history: baselined away
  MetricRegistry reg;
  reg.add_ratio("r", [&num] { return num; }, [&den] { return den; });
  EpochConfig cfg;
  cfg.every_requests = 1;
  EpochSampler s(cfg, std::move(reg));

  num = 103.0;
  den = 1004.0;
  s.on_request(10);  // delta 3/4
  s.on_request(20);  // denominator did not advance: 0, not NaN
  ASSERT_EQ(s.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(s.rows()[0].values[0], 0.75);
  EXPECT_DOUBLE_EQ(s.rows()[1].values[0], 0.0);
}

TEST(EpochSampler, TickDrivenEpochs) {
  MetricRegistry reg;
  EpochConfig cfg;
  cfg.every_ticks = 100;
  EpochSampler s(cfg, std::move(reg));

  s.on_request(10);
  s.on_request(50);
  s.on_request(120);  // crosses start(0) + 100
  s.finish();         // nothing pending
  ASSERT_EQ(s.rows().size(), 1u);
  EXPECT_EQ(s.rows()[0].end_tick, 120u);
  EXPECT_EQ(s.rows()[0].requests, 3u);
}

TEST(EpochSampler, RestartDiscardsWarmupAndRebaselines) {
  double counter = 0.0;
  MetricRegistry reg;
  reg.add_counter("c", [&counter] { return counter; });
  EpochConfig cfg;
  cfg.every_requests = 1;
  EpochSampler s(cfg, std::move(reg));

  counter = 5.0;
  s.on_request(50);  // warmup-phase row
  ASSERT_EQ(s.rows().size(), 1u);

  s.restart(1000);  // warmup boundary: stats reset at tick 1000
  EXPECT_TRUE(s.rows().empty());

  counter = 7.0;
  s.on_request(1100);
  ASSERT_EQ(s.rows().size(), 1u);
  const EpochRow& e0 = s.rows()[0];
  // Epoch 0 of the measured phase starts exactly at the reset tick.
  EXPECT_EQ(e0.epoch, 0u);
  EXPECT_EQ(e0.start_tick, 1000u);
  EXPECT_DOUBLE_EQ(e0.values[0], 2.0);  // re-baselined: 7 - 5
}

TEST(EpochSampler, FinishWithoutRequestsAddsNoRow) {
  MetricRegistry reg;
  EpochConfig cfg;
  cfg.every_requests = 4;
  EpochSampler s(cfg, std::move(reg));
  s.finish();
  EXPECT_TRUE(s.rows().empty());
}

TEST(EpochConfig, EnabledWhenEitherCadenceSet) {
  EpochConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.every_requests = 1;
  EXPECT_TRUE(cfg.enabled());
  cfg = EpochConfig{};
  cfg.every_ticks = 1;
  EXPECT_TRUE(cfg.enabled());
}

TEST(EpochCsv, UnionColumnsLeaveMissingCellsEmpty) {
  std::ostringstream os;
  const std::vector<std::string> union_cols = {"a", "b"};
  write_epoch_csv_header(os, {"design", "workload"}, union_cols);

  EpochRow row;
  row.epoch = 0;
  row.start_tick = 0;
  row.end_tick = 10;
  row.requests = 2;
  row.values = {1.5};  // this run only provides column "b"
  write_epoch_csv_rows(os, {"D", "W"}, {"b"}, union_cols, {row});

  EXPECT_EQ(os.str(),
            "design,workload,epoch,start_tick,end_tick,requests,a,b\n"
            "D,W,0,0,10,2,,1.5\n");
}

}  // namespace
}  // namespace bb
