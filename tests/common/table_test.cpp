#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bb {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsTolerated) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, CsvQuotesCommas) {
  TextTable t({"x"});
  t.add_row({"a,b"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
}

TEST(TextTable, CsvQuotesEmbeddedQuotesRfc4180) {
  TextTable t({"x"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  // Embedded quotes force quoting and are doubled.
  EXPECT_EQ(os.str(), "x\n\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, CsvQuotesLineBreaks) {
  TextTable t({"x", "y"});
  t.add_row({"two\nlines", "cr\rcell"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n\"two\nlines\",\"cr\rcell\"\n");
}

TEST(TextTable, CsvQuotedCommaCellWithQuotes) {
  TextTable t({"x"});
  t.add_row({"a,\"b\",c"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x\n\"a,\"\"b\"\",c\"\n");
}

TEST(TextTable, CsvPlainCells) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Format, Double) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(1024), "1.00 KiB");
  EXPECT_EQ(fmt_bytes(1536), "1.50 KiB");
  EXPECT_EQ(fmt_bytes(334.0 * 1024), "334.0 KiB");
  EXPECT_EQ(fmt_bytes(1024.0 * 1024), "1.00 MiB");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.133), "13.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.0), "0.0%");
}

}  // namespace
}  // namespace bb
