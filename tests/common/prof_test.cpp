// bb::prof unit tests: phase accounting, exclusive self-time under
// nesting, the disabled path, merge, Stopwatch, peak RSS, and the
// HostReport JSON round-tripping through the repo's own parser.
#include "common/prof.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/json.h"

namespace bb::prof {
namespace {

// The profiler is process-global; each test starts from a clean slate.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enable(false);
    reset();
  }
  void TearDown() override {
    enable(false);
    reset();
  }
};

void spin_ns(u64 ns) {
  const u64 start = monotonic_ns();
  while (monotonic_ns() - start < ns) {
  }
}

TEST_F(ProfTest, DisabledScopedPhaseRecordsNothing) {
  {
    ScopedPhase p(Phase::kTraceGen);
    spin_ns(100'000);
  }
  const PhaseTotals t = aggregate();
  EXPECT_EQ(t.total_ns(), 0u);
  for (std::size_t i = 0; i < kPhaseCount; ++i) EXPECT_EQ(t.calls[i], 0u);
}

TEST_F(ProfTest, EnabledScopedPhaseAccumulatesTimeAndCalls) {
  enable(true);
  {
    ScopedPhase p(Phase::kHmmAccess);
    spin_ns(200'000);
  }
  const PhaseTotals t = aggregate();
  const auto idx = static_cast<std::size_t>(Phase::kHmmAccess);
  EXPECT_EQ(t.calls[idx], 1u);
  EXPECT_GE(t.ns[idx], 200'000u);
  EXPECT_EQ(t.calls[static_cast<std::size_t>(Phase::kTraceGen)], 0u);
}

TEST_F(ProfTest, NestedPhaseGetsExclusiveSelfTime) {
  enable(true);
  {
    ScopedPhase outer(Phase::kHmmAccess);
    spin_ns(150'000);
    {
      ScopedPhase inner(Phase::kDeviceTiming);
      spin_ns(400'000);
    }
    spin_ns(150'000);
  }
  const PhaseTotals t = aggregate();
  const u64 outer_ns = t.ns[static_cast<std::size_t>(Phase::kHmmAccess)];
  const u64 inner_ns = t.ns[static_cast<std::size_t>(Phase::kDeviceTiming)];
  // The inner phase's time must not be double-counted into the outer one:
  // outer self-time is ~300us, inner ~400us.
  EXPECT_GE(inner_ns, 400'000u);
  EXPECT_GE(outer_ns, 300'000u);
  EXPECT_LT(outer_ns, inner_ns);
}

TEST_F(ProfTest, ResetClearsTotals) {
  enable(true);
  {
    ScopedPhase p(Phase::kIo);
    spin_ns(50'000);
  }
  ASSERT_GT(aggregate().total_ns(), 0u);
  reset();
  EXPECT_EQ(aggregate().total_ns(), 0u);
}

TEST_F(ProfTest, AggregateMergesWorkerThreads) {
  enable(true);
  std::thread t1([] {
    ScopedPhase p(Phase::kTraceGen);
    spin_ns(100'000);
  });
  std::thread t2([] {
    ScopedPhase p(Phase::kTraceGen);
    spin_ns(100'000);
  });
  t1.join();
  t2.join();
  const PhaseTotals t = aggregate();
  EXPECT_EQ(t.calls[static_cast<std::size_t>(Phase::kTraceGen)], 2u);
  EXPECT_EQ(worker_busy_ns().size(), 2u);
  // Descending order.
  const auto busy = worker_busy_ns();
  for (std::size_t i = 1; i < busy.size(); ++i) {
    EXPECT_GE(busy[i - 1], busy[i]);
  }
}

TEST_F(ProfTest, PhaseTotalsMerge) {
  PhaseTotals a, b;
  a.ns[0] = 5;
  a.calls[0] = 1;
  b.ns[0] = 7;
  b.calls[0] = 2;
  b.ns[3] = 11;
  b.calls[3] = 1;
  a.merge(b);
  EXPECT_EQ(a.ns[0], 12u);
  EXPECT_EQ(a.calls[0], 3u);
  EXPECT_EQ(a.ns[3], 11u);
  EXPECT_EQ(a.total_ns(), 23u);
}

TEST_F(ProfTest, StopwatchMeasuresElapsedTime) {
  Stopwatch sw;
  spin_ns(1'000'000);
  const double s = sw.seconds();
  EXPECT_GE(s, 0.001);
  EXPECT_LT(s, 10.0);
  sw.restart();
  EXPECT_LT(sw.seconds(), s);
}

TEST_F(ProfTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(peak_rss_bytes(), 0u);
#else
  SUCCEED();
#endif
}

TEST_F(ProfTest, PhaseNamesAreStableSnakeCase) {
  EXPECT_STREQ(to_string(Phase::kTraceGen), "trace_gen");
  EXPECT_STREQ(to_string(Phase::kHmmAccess), "hmm_access");
  EXPECT_STREQ(to_string(Phase::kDeviceTiming), "device_timing");
  EXPECT_STREQ(to_string(Phase::kStatsCommit), "stats_commit");
  EXPECT_STREQ(to_string(Phase::kIo), "io");
}

TEST_F(ProfTest, HostReportJsonParsesAndCarriesEveryKey) {
  enable(true);
  {
    ScopedPhase p(Phase::kTraceGen);
    spin_ns(100'000);
  }
  const HostReport r = make_host_report(/*wall_seconds=*/2.0,
                                        /*requests=*/1'000'000);
  EXPECT_DOUBLE_EQ(r.requests_per_sec, 500'000.0);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(host_report_to_json(r), doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get_number("schema_version"), 1.0);
  EXPECT_EQ(doc.get_number("wall_seconds"), 2.0);
  EXPECT_EQ(doc.get_number("requests"), 1'000'000.0);
  EXPECT_EQ(doc.get_number("requests_per_sec"), 500'000.0);
  const JsonValue* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const JsonValue* p = phases->find(to_string(static_cast<Phase>(i)));
    ASSERT_NE(p, nullptr) << to_string(static_cast<Phase>(i));
    EXPECT_NE(p->find("seconds"), nullptr);
    EXPECT_NE(p->find("calls"), nullptr);
  }
  const JsonValue* workers = doc.find("worker_busy_seconds");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->type, JsonValue::Type::kArray);
  EXPECT_EQ(workers->array.size(), r.worker_busy_ns_by_thread.size());
}

TEST_F(ProfTest, MakeHostReportZeroWallClockYieldsZeroRate) {
  const HostReport r = make_host_report(0.0, 123);
  EXPECT_DOUBLE_EQ(r.requests_per_sec, 0.0);
}

}  // namespace
}  // namespace bb::prof
