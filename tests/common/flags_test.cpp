#include "common/flags.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  const auto f = make_flags({"--instructions=123", "--workload=mcf"});
  EXPECT_EQ(f.get_u64("instructions", 0), 123u);
  EXPECT_EQ(f.get_string("workload", ""), "mcf");
}

TEST(Flags, SpaceSyntax) {
  const auto f = make_flags({"--workload", "xz", "--scale", "2.5"});
  EXPECT_EQ(f.get_string("workload", ""), "xz");
  EXPECT_DOUBLE_EQ(f.get_double("scale", 0), 2.5);
}

TEST(Flags, BareSwitch) {
  const auto f = make_flags({"--verbose", "--n=1"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("quiet"));
  EXPECT_EQ(f.get_u64("n", 0), 1u);
}

TEST(Flags, BareSwitchBeforeAnotherFlag) {
  const auto f = make_flags({"--fast", "--workload=mcf"});
  EXPECT_TRUE(f.has("fast"));
  EXPECT_EQ(f.get_string("fast", "x"), "");
  EXPECT_EQ(f.get_string("workload", ""), "mcf");
}

TEST(Flags, Positional) {
  const auto f = make_flags({"alpha", "--k=1", "beta"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Flags, FallbacksOnMissingOrUnparsable) {
  const auto f = make_flags({"--n=notanumber"});
  EXPECT_EQ(f.get_u64("n", 42), 42u);
  EXPECT_EQ(f.get_u64("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(f.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(f.get_string("absent", "dflt"), "dflt");
}

TEST(Flags, EmptyArgv) {
  const auto f = make_flags({});
  EXPECT_TRUE(f.positional().empty());
  EXPECT_FALSE(f.has("anything"));
}

}  // namespace
}  // namespace bb
