#include "cache/cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace bb::cache {
namespace {

CacheParams small_cache() {
  CacheParams p;
  p.size_bytes = 4 * KiB;
  p.ways = 2;
  p.line_bytes = 64;
  p.policy = PolicyKind::kLru;
  return p;
}

TEST(Cache, MissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x100, AccessType::kRead).hit);
  EXPECT_TRUE(c.access(0x100, AccessType::kRead).hit);
  EXPECT_TRUE(c.access(0x13f, AccessType::kRead).hit);  // same line
  EXPECT_FALSE(c.access(0x140, AccessType::kRead).hit); // next line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, EvictionReportsVictim) {
  auto p = small_cache();
  p.size_bytes = 2 * 64;  // 1 set, 2 ways
  p.ways = 2;
  Cache c(p);
  c.access(0 * 64, AccessType::kRead);
  c.access(1 * 64, AccessType::kRead);
  const auto r = c.access(2 * 64, AccessType::kRead);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_addr, 0u);  // LRU victim was line 0
  EXPECT_FALSE(r.evicted_dirty);
}

TEST(Cache, DirtyEvictionWritesBack) {
  auto p = small_cache();
  p.size_bytes = 2 * 64;
  Cache c(p);
  c.access(0, AccessType::kWrite);
  c.access(64, AccessType::kRead);
  const auto r = c.access(128, AccessType::kRead);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksDirty) {
  auto p = small_cache();
  p.size_bytes = 2 * 64;
  Cache c(p);
  c.access(0, AccessType::kRead);
  c.access(0, AccessType::kWrite);  // hit, dirties the line
  c.access(64, AccessType::kRead);
  const auto r = c.access(128, AccessType::kRead);
  EXPECT_TRUE(r.evicted_dirty);
}

TEST(Cache, ContainsIsNonMutating) {
  Cache c(small_cache());
  EXPECT_FALSE(c.contains(0));
  const auto before = c.stats().accesses();
  c.contains(0);
  EXPECT_EQ(c.stats().accesses(), before);
  c.access(0, AccessType::kRead);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(63));
  EXPECT_FALSE(c.contains(64));
}

TEST(Cache, InvalidateReturnsDirtiness) {
  Cache c(small_cache());
  c.access(0, AccessType::kWrite);
  c.access(64, AccessType::kRead);
  EXPECT_TRUE(c.invalidate(0));
  EXPECT_FALSE(c.invalidate(64));
  EXPECT_FALSE(c.invalidate(128));  // absent
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, EvictionHookObservesAccessCount) {
  auto p = small_cache();
  p.size_bytes = 2 * 64;
  Cache c(p);
  std::vector<EvictionInfo> evs;
  c.set_eviction_hook([&](const EvictionInfo& e) { evs.push_back(e); });
  c.access(0, AccessType::kRead);   // install (1 access)
  c.access(0, AccessType::kRead);   // hit (2)
  c.access(0, AccessType::kRead);   // hit (3)
  c.access(64, AccessType::kRead);
  c.access(128, AccessType::kRead); // evicts line 0
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].line_addr, 0u);
  EXPECT_EQ(evs[0].access_count, 3u);
}

TEST(Cache, FlushEmitsAllValidLines) {
  Cache c(small_cache());
  int evictions = 0;
  c.set_eviction_hook([&](const EvictionInfo&) { ++evictions; });
  c.access(0, AccessType::kRead);
  c.access(4096, AccessType::kWrite);
  c.flush();
  EXPECT_EQ(evictions, 2);
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, LargeLineGranularity) {
  CacheParams p;
  p.size_bytes = 1 * MiB;
  p.ways = 16;
  p.line_bytes = 64 * KiB;
  Cache c(p);
  c.access(0, AccessType::kRead);
  EXPECT_TRUE(c.contains(64 * KiB - 1));
  EXPECT_FALSE(c.contains(64 * KiB));
}

TEST(Cache, HitRateMath) {
  Cache c(small_cache());
  c.access(0, AccessType::kRead);
  c.access(0, AccessType::kRead);
  c.access(0, AccessType::kRead);
  c.access(0, AccessType::kRead);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.75);
}

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<u64, u32, u64>> {};

TEST_P(CacheGeometryTest, FillsWholeCapacityBeforeEvicting) {
  const auto [size, ways, line] = GetParam();
  CacheParams p;
  p.size_bytes = size;
  p.ways = ways;
  p.line_bytes = line;
  Cache c(p);
  const u64 lines = size / line;
  for (u64 i = 0; i < lines; ++i) {
    const auto r = c.access(i * line, AccessType::kRead);
    ASSERT_FALSE(r.hit);
    ASSERT_FALSE(r.evicted) << "premature eviction at line " << i;
  }
  // One more distinct line must evict.
  EXPECT_TRUE(c.access(lines * line, AccessType::kRead).evicted);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(u64{4 * KiB}, 2u, u64{64}),
                      std::make_tuple(u64{64 * KiB}, 4u, u64{64}),
                      std::make_tuple(u64{256 * KiB}, 8u, u64{64}),
                      std::make_tuple(u64{1 * MiB}, 16u, u64{4 * KiB}),
                      std::make_tuple(u64{8 * MiB}, 16u, u64{64})));

}  // namespace
}  // namespace bb::cache
