// Property-style sweeps over the replacement policies: structural
// invariants for every (policy, geometry) pair and qualitative orderings
// on characteristic access patterns.
#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/rng.h"

namespace bb::cache {
namespace {

using Geometry = std::tuple<PolicyKind, u64 /*size*/, u32 /*ways*/>;

class PolicyPropertyTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(PolicyPropertyTest, StatsAlwaysConsistent) {
  const auto [policy, size, ways] = GetParam();
  CacheParams p;
  p.size_bytes = size;
  p.ways = ways;
  p.policy = policy;
  Cache c(p);
  Rng rng(99);
  u64 evictions_seen = 0;
  c.set_eviction_hook([&](const EvictionInfo&) { ++evictions_seen; });
  for (int i = 0; i < 20000; ++i) {
    c.access(rng.next_below(4 * size) & ~Addr{63},
             rng.next_bool(0.3) ? AccessType::kWrite : AccessType::kRead);
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.hits + s.misses, 20000u);
  EXPECT_EQ(s.evictions, evictions_seen);
  EXPECT_LE(s.writebacks, s.evictions);
  // Misses at least fill the cache once before any eviction can happen.
  EXPECT_GE(s.misses, s.evictions);
}

TEST_P(PolicyPropertyTest, WorkingSetWithinCapacityConverges) {
  const auto [policy, size, ways] = GetParam();
  CacheParams p;
  p.size_bytes = size;
  p.ways = ways;
  p.policy = policy;
  Cache c(p);
  // A working set of half the cache, accessed round-robin: after the cold
  // pass, everything must hit (no policy should thrash a fitting set).
  const u64 lines = size / p.line_bytes / 2;
  for (u64 i = 0; i < lines; ++i) c.access(i * 64, AccessType::kRead);
  c.reset_stats();
  for (int round = 0; round < 4; ++round) {
    for (u64 i = 0; i < lines; ++i) c.access(i * 64, AccessType::kRead);
  }
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 1.0)
      << to_string(policy) << " size " << size << " ways " << ways;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyPropertyTest,
    ::testing::Combine(::testing::Values(PolicyKind::kLru, PolicyKind::kSrrip,
                                         PolicyKind::kBrrip,
                                         PolicyKind::kDrrip,
                                         PolicyKind::kRandom),
                       ::testing::Values(u64{16 * KiB}, u64{256 * KiB}),
                       ::testing::Values(2u, 8u, 16u)));

TEST(PolicyQuality, RripResistsScansBetterThanLru) {
  // Classic RRIP result: a hot set plus a one-shot scan. SRRIP keeps more
  // of the hot set resident than LRU.
  auto run = [](PolicyKind kind) {
    CacheParams p;
    p.size_bytes = 64 * KiB;
    p.ways = 16;
    p.policy = kind;
    Cache c(p);
    Rng rng(5);
    const u64 hot_lines = 512;  // half the cache
    // Warm the hot set.
    for (u64 i = 0; i < hot_lines; ++i) c.access(i * 64, AccessType::kRead);
    u64 hot_hits = 0, hot_accesses = 0;
    for (int round = 0; round < 50; ++round) {
      // Interleave hot reuse with a long scan of cold lines.
      for (int k = 0; k < 256; ++k) {
        const Addr hot = rng.next_below(hot_lines) * 64;
        hot_hits += c.access(hot, AccessType::kRead).hit;
        ++hot_accesses;
        const Addr cold =
            (1 * MiB) + (static_cast<Addr>(round) * 256 + k) * 64;
        c.access(cold, AccessType::kRead);
      }
    }
    return static_cast<double>(hot_hits) /
           static_cast<double>(hot_accesses);
  };
  const double lru = run(PolicyKind::kLru);
  const double srrip = run(PolicyKind::kSrrip);
  EXPECT_GT(srrip, lru);
}

TEST(PolicyQuality, DrripTracksTheBetterLeader) {
  // DRRIP must not be much worse than SRRIP on the scan-resistance
  // pattern (it should follow the SRRIP leader there).
  auto run = [](PolicyKind kind) {
    CacheParams p;
    p.size_bytes = 256 * KiB;
    p.ways = 16;
    p.policy = kind;
    Cache c(p);
    Rng rng(7);
    u64 hits = 0;
    const u64 hot_lines = 2048;
    for (int i = 0; i < 60000; ++i) {
      if (rng.next_bool(0.7)) {
        hits += c.access(rng.next_below(hot_lines) * 64,
                         AccessType::kRead).hit;
      } else {
        c.access(4 * MiB + rng.next_below(1 << 20) * 64, AccessType::kRead);
      }
    }
    return hits;
  };
  const u64 srrip = run(PolicyKind::kSrrip);
  const u64 drrip = run(PolicyKind::kDrrip);
  EXPECT_GT(static_cast<double>(drrip),
            0.85 * static_cast<double>(srrip));
}

}  // namespace
}  // namespace bb::cache
