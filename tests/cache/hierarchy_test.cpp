#include "cache/hierarchy.h"

#include <gtest/gtest.h>

namespace bb::cache {
namespace {

TEST(Hierarchy, TableIGeometry) {
  Hierarchy h;
  EXPECT_EQ(h.l1().params().size_bytes, 64 * KiB);
  EXPECT_EQ(h.l1().params().ways, 4u);
  EXPECT_EQ(h.l1().params().policy, PolicyKind::kLru);
  EXPECT_EQ(h.l2().params().size_bytes, 256 * KiB);
  EXPECT_EQ(h.l2().params().ways, 8u);
  EXPECT_EQ(h.l2().params().policy, PolicyKind::kSrrip);
  EXPECT_EQ(h.l3().params().size_bytes, 8 * MiB);
  EXPECT_EQ(h.l3().params().ways, 16u);
  EXPECT_EQ(h.l3().params().policy, PolicyKind::kDrrip);
}

TEST(Hierarchy, FirstAccessMissesEverywhere) {
  Hierarchy h;
  const auto r = h.access(0x1000, AccessType::kRead);
  EXPECT_TRUE(r.llc_miss);
  EXPECT_EQ(r.hit_level, 0);
  EXPECT_EQ(r.latency, h.l1().params().hit_latency +
                           h.l2().params().hit_latency +
                           h.l3().params().hit_latency);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  Hierarchy h;
  h.access(0x1000, AccessType::kRead);
  const auto r = h.access(0x1000, AccessType::kRead);
  EXPECT_FALSE(r.llc_miss);
  EXPECT_EQ(r.hit_level, 1);
  EXPECT_EQ(r.latency, h.l1().params().hit_latency);
}

TEST(Hierarchy, L1EvictionLeavesL2Copy) {
  Hierarchy h;
  // Touch enough distinct lines mapping to one L1 set to evict from L1 but
  // stay within L2.
  const u64 l1_sets = h.l1().params().num_sets();
  for (u64 i = 0; i < 8; ++i) {
    h.access(i * l1_sets * 64, AccessType::kRead);
  }
  // Line 0 is out of L1 now (4-way), but should hit L2.
  const auto r = h.access(0, AccessType::kRead);
  EXPECT_EQ(r.hit_level, 2);
}

TEST(Hierarchy, MpkiCountsL3Misses) {
  Hierarchy h;
  for (u64 i = 0; i < 100; ++i) {
    h.access(i * 64, AccessType::kRead);  // 100 cold misses
  }
  for (u64 i = 0; i < 100; ++i) {
    h.access(i * 64, AccessType::kRead);  // 100 L1 hits
  }
  EXPECT_DOUBLE_EQ(h.mpki(100'000), 1.0);
}

TEST(Hierarchy, ResetStats) {
  Hierarchy h;
  h.access(0, AccessType::kRead);
  h.reset_stats();
  EXPECT_EQ(h.l1().stats().accesses(), 0u);
  EXPECT_EQ(h.l3().stats().misses, 0u);
}

TEST(Hierarchy, WritebackToMemoryOnDirtyL3Eviction) {
  HierarchyParams hp;
  // Shrink L3 drastically so evictions are easy to force.
  hp.l3.size_bytes = 2 * 64;
  hp.l3.ways = 2;
  hp.l2.size_bytes = 2 * 64;
  hp.l2.ways = 2;
  hp.l1.size_bytes = 2 * 64;
  hp.l1.ways = 2;
  Hierarchy h(hp);
  h.access(0, AccessType::kWrite);
  bool saw_writeback = false;
  for (u64 i = 1; i < 32 && !saw_writeback; ++i) {
    const auto r = h.access(i * 64, AccessType::kRead);
    saw_writeback = r.writeback_to_memory;
  }
  EXPECT_TRUE(saw_writeback);
}

}  // namespace
}  // namespace bb::cache
