#include "cache/replacement.h"

#include <gtest/gtest.h>

#include <set>

namespace bb::cache {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.init(1, 4);
  for (u32 w = 0; w < 4; ++w) lru.on_fill(0, w);
  // Touch 0, 1, 3 -> victim must be 2.
  lru.on_hit(0, 0);
  lru.on_hit(0, 1);
  lru.on_hit(0, 3);
  EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Lru, FillCountsAsUse) {
  LruPolicy lru;
  lru.init(1, 2);
  lru.on_fill(0, 0);
  lru.on_fill(0, 1);
  EXPECT_EQ(lru.victim(0), 0u);
}

TEST(Lru, SetsAreIndependent) {
  LruPolicy lru;
  lru.init(2, 2);
  lru.on_fill(0, 0);
  lru.on_fill(1, 1);
  lru.on_fill(0, 1);
  lru.on_fill(1, 0);
  EXPECT_EQ(lru.victim(0), 0u);
  EXPECT_EQ(lru.victim(1), 1u);
}

TEST(Srrip, HitPromotesToNearRrpv) {
  RripPolicy p(/*bimodal=*/false, 1);
  p.init(1, 4);
  for (u32 w = 0; w < 4; ++w) p.on_fill(0, w);
  p.on_hit(0, 2);  // way 2 becomes RRPV 0
  // Victim search ages everyone; way 2 must be the last chosen.
  const u32 v1 = p.victim(0);
  EXPECT_NE(v1, 2u);
}

TEST(Srrip, VictimIsDeterministicFromState) {
  RripPolicy a(false, 1), b(false, 1);
  a.init(4, 4);
  b.init(4, 4);
  for (u32 w = 0; w < 4; ++w) {
    a.on_fill(1, w);
    b.on_fill(1, w);
  }
  EXPECT_EQ(a.victim(1), b.victim(1));
}

TEST(Brrip, MostInsertionsAreDistant) {
  RripPolicy p(/*bimodal=*/true, 7);
  p.init(1, 16);
  // Fill all ways; distant (RRPV=3) insertions are immediate victims.
  int immediate = 0;
  for (u32 w = 0; w < 16; ++w) {
    p.on_fill(0, w);
  }
  // Count ways at max RRPV by asking for victims repeatedly without hits:
  // the first victim found without aging indicates RRPV==3 entries exist.
  std::set<u32> victims;
  for (int i = 0; i < 16; ++i) {
    const u32 v = p.victim(0);
    victims.insert(v);
    p.on_hit(0, v);  // retire it from victim candidacy
    ++immediate;
  }
  EXPECT_EQ(victims.size(), 16u);
}

TEST(Drrip, AdaptsViaSetDueling) {
  DrripPolicy p(3);
  p.init(64, 4);
  // Just exercise fills/hits/victims across leader and follower sets; the
  // policy must never return an out-of-range way.
  for (u32 s = 0; s < 64; ++s) {
    for (u32 w = 0; w < 4; ++w) p.on_fill(s, w);
    const u32 v = p.victim(s);
    EXPECT_LT(v, 4u);
    p.on_hit(s, v);
  }
}

TEST(Random, VictimInRange) {
  RandomPolicy p(5);
  p.init(8, 8);
  std::set<u32> seen;
  for (int i = 0; i < 256; ++i) {
    const u32 v = p.victim(0);
    ASSERT_LT(v, 8u);
    seen.insert(v);
  }
  // Uniform randomness should touch most ways.
  EXPECT_GE(seen.size(), 6u);
}

class FactoryTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(FactoryTest, CreatesWorkingPolicy) {
  auto p = make_policy(GetParam(), 11);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), GetParam());
  p->init(8, 4);
  for (u32 w = 0; w < 4; ++w) p->on_fill(2, w);
  p->on_hit(2, 1);
  EXPECT_LT(p->victim(2), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FactoryTest,
                         ::testing::Values(PolicyKind::kLru,
                                           PolicyKind::kSrrip,
                                           PolicyKind::kBrrip,
                                           PolicyKind::kDrrip,
                                           PolicyKind::kRandom));

TEST(PolicyNames, ToString) {
  EXPECT_STREQ(to_string(PolicyKind::kLru), "LRU");
  EXPECT_STREQ(to_string(PolicyKind::kSrrip), "SRRIP");
  EXPECT_STREQ(to_string(PolicyKind::kBrrip), "BRRIP");
  EXPECT_STREQ(to_string(PolicyKind::kDrrip), "DRRIP");
  EXPECT_STREQ(to_string(PolicyKind::kRandom), "Random");
}

}  // namespace
}  // namespace bb::cache
