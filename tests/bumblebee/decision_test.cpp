// Focused tests of the Section III-E decision lattice: spatial summary,
// SL sign, Rh, the hotness threshold T, and the movement each combination
// must (or must not) trigger.
#include <gtest/gtest.h>

#include "bumblebee/controller.h"
#include "bumblebee/set_state.h"

namespace bb::bumblebee {
namespace {

Geometry tiny_geometry() {
  BumblebeeConfig cfg;
  Geometry g;
  g.page_bytes = cfg.page_bytes;
  g.block_bytes = cfg.block_bytes;
  g.blocks_per_page = cfg.blocks_per_page();
  g.sets = 1;
  g.m = 16;
  g.n = 4;
  return g;
}

TEST(SpatialSummary, CountsModes) {
  const Geometry g = tiny_geometry();
  SetState st(g, 8, 4095);
  // Frame 0: cHBM. Frame 1: mHBM dense. Frame 2: mHBM sparse. Frame 3 free.
  st.ble[0].mode = Ble::Mode::kCache;
  st.ble[1].mode = Ble::Mode::kMem;
  for (u32 b = 0; b < 20; ++b) st.ble[1].valid.set(b);  // 20/32 accessed
  st.ble[2].mode = Ble::Mode::kMem;
  st.ble[2].valid.set(0);  // 1/32 accessed
  const auto s = spatial_summary(st, g.blocks_per_page);
  EXPECT_EQ(s.nc, 1u);
  EXPECT_EQ(s.na, 1u);
  EXPECT_EQ(s.nn, 1u);
  EXPECT_EQ(s.sl(), -1);
}

TEST(SpatialSummary, HalfAccessedCountsAsDense) {
  const Geometry g = tiny_geometry();
  SetState st(g, 8, 4095);
  st.ble[0].mode = Ble::Mode::kMem;
  for (u32 b = 0; b < 16; ++b) st.ble[0].valid.set(b);  // exactly half
  const auto s = spatial_summary(st, g.blocks_per_page);
  EXPECT_EQ(s.na, 1u);
  EXPECT_EQ(s.nn, 0u);
}

TEST(SpatialSummary, EmptySetIsAllZero) {
  const Geometry g = tiny_geometry();
  SetState st(g, 8, 4095);
  const auto s = spatial_summary(st, g.blocks_per_page);
  EXPECT_EQ(s.nc + s.na + s.nn, 0u);
  EXPECT_EQ(s.sl(), 0);
}

TEST(SetState, FreeFrameSearch) {
  const Geometry g = tiny_geometry();
  SetState st(g, 8, 4095);
  EXPECT_EQ(st.free_hbm_frame(), 0u);
  st.ble[0].mode = Ble::Mode::kCache;
  st.ble[1].mode = Ble::Mode::kMem;
  EXPECT_EQ(st.free_hbm_frame(), 2u);
  EXPECT_EQ(st.free_hbm_frames(), 2u);
  EXPECT_FALSE(st.rh_high());
  st.ble[2].mode = Ble::Mode::kMem;
  st.ble[3].mode = Ble::Mode::kCache;
  EXPECT_EQ(st.free_hbm_frame(), kNoPage);
  EXPECT_TRUE(st.rh_high());
  EXPECT_DOUBLE_EQ(st.rh(), 1.0);
}

TEST(SetState, CacheFrameLookup) {
  const Geometry g = tiny_geometry();
  SetState st(g, 8, 4095);
  st.ble[2].mode = Ble::Mode::kCache;
  st.ble[2].ple = 7;
  EXPECT_EQ(st.cache_frame_of(7), 2u);
  EXPECT_EQ(st.cache_frame_of(8), kNoPage);
  // mHBM frames are not cache copies.
  st.ble[1].mode = Ble::Mode::kMem;
  st.ble[1].ple = 9;
  EXPECT_EQ(st.cache_frame_of(9), kNoPage);
}

TEST(SetState, FreeDramFramePrefersOwnSlot) {
  const Geometry g = tiny_geometry();
  SetState st(g, 8, 4095);
  EXPECT_EQ(st.free_dram_frame(g.m, 5), 5u);
  st.occup[5] = true;
  EXPECT_EQ(st.free_dram_frame(g.m, 5), 0u);
  for (u32 f = 0; f < g.m; ++f) st.occup[f] = true;
  EXPECT_EQ(st.free_dram_frame(g.m, 5), kNoPage);
}

// Behavioural lattice through a real controller on one remapping set.
class DecisionFixture : public ::testing::Test {
 protected:
  DecisionFixture()
      : hbm_([] {
          auto p = mem::DramTimingParams::hbm2_1gb();
          p.capacity_bytes = 16 * MiB;  // 32 sets
          return p;
        }()),
        dram_([] {
          auto p = mem::DramTimingParams::ddr4_3200_10gb();
          p.capacity_bytes = 160 * MiB;
          return p;
        }()) {}

  static constexpr u64 kSetStride = 32 * 64 * KiB;  // stays in set 0

  void touch(BumblebeeController& c, u64 page, u64 block, int times) {
    for (int i = 0; i < times; ++i) {
      now_ += 50000;
      c.access(page * kSetStride + block * 2048, AccessType::kRead, now_);
    }
  }

  mem::DramDevice hbm_;
  mem::DramDevice dram_;
  Tick now_ = 0;
};

TEST_F(DecisionFixture, SingleTouchCachesOneBlockOnly) {
  BumblebeeController c(BumblebeeConfig::baseline(), hbm_, dram_);
  touch(c, 0, 0, 1);
  // React-fast caching: one 2 KB block fetched, no 64 KB page movement.
  EXPECT_EQ(c.bb_stats().page_migrations, 0u);
  EXPECT_EQ(c.bb_stats().block_fetches, 1u);
  EXPECT_EQ(c.ratio().mhbm_frames, 0u);
}

TEST_F(DecisionFixture, BlockAccumulationSwitchesToMem) {
  BumblebeeController c(BumblebeeConfig::baseline(), hbm_, dram_);
  // Touch most blocks of one page: once "most blocks are cached" the
  // frame must switch cHBM -> mHBM, fetching only the missing blocks.
  for (u64 b = 0; b < 20; ++b) touch(c, 0, b, 1);
  EXPECT_GE(c.bb_stats().cache_to_mem_switches, 1u);
  EXPECT_EQ(c.ratio().mhbm_frames, 1u);
  EXPECT_TRUE(c.locate(0).in_hbm);
  EXPECT_TRUE(c.check_invariants());
}

TEST_F(DecisionFixture, PromotionFollowsSpatialEvidenceAndSelfLimits) {
  BumblebeeController c(BumblebeeConfig::baseline(), hbm_, dram_);
  // Allocate pages 2 and 3 early with single touches: they land in DRAM
  // (nothing hot in HBM yet) and each caches one block (Nc = 2).
  touch(c, 2, 0, 1);
  touch(c, 3, 0, 1);
  // Build spatial evidence: three pages accumulate most blocks and end up
  // mHBM with dense access ratios (Na = 3) -> SL = 3 - 0 - 2 = +1.
  for (u64 p : {0ull, 1ull, 4ull}) {
    for (u64 b = 0; b < 20; ++b) touch(c, p, b, 1);
  }
  ASSERT_GE(c.ratio().mhbm_frames, 3u);
  const auto before = c.ratio();

  // Page 2 re-accessed under SL > 0: rule (1) promotes its cached copy to
  // mHBM (fetching only the missing blocks). Promotion converts Nc to Nn,
  // leaving SL unchanged, so page 3 promotes as well.
  touch(c, 2, 0, 2);
  const auto after = c.ratio();
  EXPECT_EQ(after.mhbm_frames, before.mhbm_frames + 1)
      << "re-accessed cached page must be promoted under SL > 0";
  touch(c, 3, 0, 2);
  ASSERT_EQ(c.ratio().mhbm_frames, after.mhbm_frames + 1);

  // Fresh cold pages get cached (Nc grows) and flip SL negative:
  // SL = Na(3) - Nn(2) - Nc(2) = -1 -> promotion stops.
  touch(c, 5, 0, 1);
  touch(c, 6, 0, 1);
  const u64 mhbm = c.ratio().mhbm_frames;
  touch(c, 5, 0, 2);  // re-accesses, but SL < 0 now
  EXPECT_EQ(c.ratio().mhbm_frames, mhbm);
  EXPECT_GT(c.ratio().chbm_frames, 0u);
  EXPECT_TRUE(c.check_invariants());
}

TEST_F(DecisionFixture, ColdChallengerBlockedAtHighRh) {
  BumblebeeController c(BumblebeeConfig::baseline(), hbm_, dram_);
  // Make all 8 frames hot mHBM pages.
  for (u64 p = 0; p < 8; ++p) touch(c, p, 0, 4);
  const auto before = c.ratio();
  ASSERT_EQ(before.free_frames + before.chbm_frames + before.mhbm_frames,
            32u * 8u);
  // A page touched once (h = 1 <= T) must not displace anything.
  touch(c, 9, 0, 1);
  EXPECT_EQ(c.bb_stats().chbm_evictions + c.bb_stats().mhbm_evictions, 0u);
  EXPECT_FALSE(c.locate(9 * kSetStride).in_hbm);
}

TEST_F(DecisionFixture, HotChallengerDisplacesColdestAtHighRh) {
  BumblebeeController c(BumblebeeConfig::baseline(), hbm_, dram_);
  for (u64 p = 0; p < 8; ++p) touch(c, p, 0, 3);
  // Challenger hotter than T (= 3): needs > 3 touches.
  touch(c, 9, 0, 8);
  EXPECT_GT(c.bb_stats().chbm_evictions + c.bb_stats().mhbm_evictions +
                c.bb_stats().mem_to_cache_buffers,
            0u);
  EXPECT_TRUE(c.check_invariants());
}

}  // namespace
}  // namespace bb::bumblebee
