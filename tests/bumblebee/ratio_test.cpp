// The headline claim as a test: the cHBM : mHBM ratio tracks the
// workload's locality signature — dense streams end mHBM-dominant, sparse
// hot sets end cHBM-dominant, and the ratio moves when the workload
// changes (Section II-B's motivation for runtime adjustability).
#include <gtest/gtest.h>

#include "bumblebee/controller.h"
#include "common/rng.h"
#include "trace/generator.h"

namespace bb::bumblebee {
namespace {

mem::DramTimingParams small_hbm() {
  auto p = mem::DramTimingParams::hbm2_1gb();
  p.capacity_bytes = 16 * MiB;
  return p;
}
mem::DramTimingParams small_dram() {
  auto p = mem::DramTimingParams::ddr4_3200_10gb();
  p.capacity_bytes = 160 * MiB;
  return p;
}

/// Drives `n` misses of a dense sequential sweep over `bytes`.
void drive_dense(BumblebeeController& c, Tick& now, u64 bytes, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (Addr a = 0; a < bytes; a += 64) {
      now += 20000;
      c.access(a, AccessType::kRead, now);
    }
  }
}

/// Drives misses over sparse hot spots: one 2 KB block per 64 KB page.
void drive_sparse(BumblebeeController& c, Tick& now, u64 pages, u64 n) {
  Rng rng(4);
  for (u64 i = 0; i < n; ++i) {
    now += 20000;
    const u64 page = rng.next_below(pages);
    const u64 line = rng.next_below(32);  // within the page's first 2 KB
    c.access(page * 64 * KiB + line * 64, AccessType::kRead, now);
  }
}

TEST(AdaptiveRatio, DenseStreamsEndMemDominant) {
  mem::DramDevice hbm(small_hbm()), dram(small_dram());
  BumblebeeController c(BumblebeeConfig::baseline(), hbm, dram);
  Tick now = 0;
  drive_dense(c, now, 8 * MiB, 2);
  const auto r = c.ratio();
  EXPECT_GT(r.mhbm_frames, r.chbm_frames)
      << "dense spatial locality must favor mHBM";
}

TEST(AdaptiveRatio, SparseHotSetsEndCacheDominant) {
  mem::DramDevice hbm(small_hbm()), dram(small_dram());
  BumblebeeController c(BumblebeeConfig::baseline(), hbm, dram);
  Tick now = 0;
  drive_sparse(c, now, /*pages=*/512, /*n=*/40000);
  const auto r = c.ratio();
  EXPECT_GT(r.chbm_frames, r.mhbm_frames)
      << "sparse hot blocks must favor cHBM";
}

TEST(AdaptiveRatio, RatioMovesAcrossPhases) {
  mem::DramDevice hbm(small_hbm()), dram(small_dram());
  BumblebeeController c(BumblebeeConfig::baseline(), hbm, dram);
  Tick now = 0;
  drive_dense(c, now, 8 * MiB, 1);
  const auto dense = c.ratio();
  ASSERT_GT(dense.mhbm_frames, 0u);
  const double dense_share =
      static_cast<double>(dense.chbm_frames) /
      static_cast<double>(dense.chbm_frames + dense.mhbm_frames + 1);

  // Phase change: sparse hot blocks in a different address range.
  Rng rng(8);
  for (int i = 0; i < 60000; ++i) {
    now += 20000;
    const u64 page = 200 + rng.next_below(800);
    c.access(page * 64 * KiB + rng.next_below(32) * 64, AccessType::kRead,
             now);
  }
  const auto sparse = c.ratio();
  const double sparse_share =
      static_cast<double>(sparse.chbm_frames) /
      static_cast<double>(sparse.chbm_frames + sparse.mhbm_frames + 1);
  EXPECT_GT(sparse_share, dense_share)
      << "the cHBM share must grow when the workload turns sparse";
  EXPECT_TRUE(c.check_invariants());
}

TEST(AdaptiveRatio, FixedPartitionsDoNotAdapt) {
  mem::DramDevice hbm(small_hbm()), dram(small_dram());
  BumblebeeController c(BumblebeeConfig::fixed_chbm(0.5), hbm, dram);
  Tick now = 0;
  drive_dense(c, now, 8 * MiB, 2);
  const auto r = c.ratio();
  // Half the frames are reserved for caching: the mHBM population can
  // never exceed the mem-role frames (4 of 8 per set).
  EXPECT_LE(r.mhbm_frames, 16u * MiB / (64 * KiB) / 2);
}

}  // namespace
}  // namespace bb::bumblebee
