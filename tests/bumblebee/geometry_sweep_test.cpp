// Structural sweep over the Figure 6 design space: every (block, page)
// configuration must keep the controller's invariants and functional
// correctness under randomized load — the design-space bench assumes this.
#include <gtest/gtest.h>

#include <unordered_map>

#include "bumblebee/controller.h"
#include "common/rng.h"

namespace bb::bumblebee {
namespace {

using Combo = std::tuple<u64, u64>;  // block KiB, page KiB

class GeometrySweepTest : public ::testing::TestWithParam<Combo> {};

TEST_P(GeometrySweepTest, InvariantsAndIntegrityHold) {
  const auto [block_kb, page_kb] = GetParam();
  auto hp = mem::DramTimingParams::hbm2_1gb();
  hp.capacity_bytes = 24 * MiB;
  auto dp = mem::DramTimingParams::ddr4_3200_10gb();
  dp.capacity_bytes = 240 * MiB;
  mem::DramDevice hbm(hp), dram(dp);

  BumblebeeConfig cfg;
  cfg.block_bytes = block_kb * KiB;
  cfg.page_bytes = page_kb * KiB;
  BumblebeeController c(cfg, hbm, dram,
                        hmm::PagingConfig{.enabled = false});

  EXPECT_EQ(c.geometry().blocks_per_page,
            page_kb / block_kb);

  // Functional shadow (as in integrity_test, condensed).
  std::unordered_map<u64, u64> hbm_shadow, dram_shadow, expected;
  c.set_movement_hook([&](const hmm::MoveEvent& e) {
    for (u64 i = 0; i < (e.bytes + 63) / 64; ++i) {
      auto& src = e.src_hbm ? hbm_shadow : dram_shadow;
      auto& dst = e.dst_hbm ? hbm_shadow : dram_shadow;
      const u64 sk = e.src_addr / 64 + i, dk = e.dst_addr / 64 + i;
      if (e.is_swap) {
        std::swap(src[sk], dst[dk]);
      } else {
        dst[dk] = src.count(sk) ? src[sk] : 0;
      }
    }
  });

  Rng rng(block_kb * 131 + page_kb);
  Tick now = 0;
  u64 token = 0;
  for (int i = 0; i < 15000; ++i) {
    now += 30000;
    const Addr a = rng.next_below(32 * MiB / 64) * 64;
    const bool write = rng.next_bool(0.4);
    const auto r =
        c.access(a, write ? AccessType::kWrite : AccessType::kRead, now);
    if (write) {
      ++token;
      expected[a / 64] = token;
      (r.served_by_hbm ? hbm_shadow : dram_shadow)[r.phys_addr / 64] = token;
      const auto loc = c.locate(a);
      (loc.in_hbm ? hbm_shadow : dram_shadow)[loc.phys / 64] = token;
    } else if (const auto it = expected.find(a / 64);
               it != expected.end()) {
      const auto loc = c.locate(a);
      const auto& m = loc.in_hbm ? hbm_shadow : dram_shadow;
      const auto v = m.find(loc.phys / 64);
      ASSERT_TRUE(v != m.end() && v->second == it->second)
          << block_kb << "-" << page_kb << " at iteration " << i;
    }
  }
  EXPECT_TRUE(c.check_invariants());
  EXPECT_EQ(c.bb_stats().os_swap_outs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Fig6Space, GeometrySweepTest,
    ::testing::Values(Combo{1, 64}, Combo{1, 96}, Combo{1, 128},
                      Combo{2, 64}, Combo{2, 96}, Combo{2, 128},
                      Combo{4, 64}, Combo{4, 96}, Combo{4, 128},
                      // beyond Figure 6: stress small/large extremes
                      Combo{2, 32}, Combo{8, 128}));

}  // namespace
}  // namespace bb::bumblebee
