// Functional correctness: read-your-writes through arbitrary interleavings
// of caching, migration, mode switches, buffering, swaps and flushes.
//
// The simulator moves no real bytes, so we maintain a shadow of both
// devices at 64 B granularity, driven by the controller's movement hook
// (every physical copy/swap the data-movement engine performs). After
// every write we stamp a unique token at the locations that physically
// received the data; every later read of that logical line must find the
// token at the line's current authoritative location (BumblebeeController::
// locate). Any bookkeeping bug in the PRT / BLE / eviction / switch logic
// surfaces as a token mismatch.
#include <gtest/gtest.h>

#include <unordered_map>

#include "bumblebee/controller.h"
#include "common/rng.h"

namespace bb::bumblebee {
namespace {

class Shadow {
 public:
  void apply(const hmm::MoveEvent& e) {
    const u64 lines = (e.bytes + 63) / 64;
    for (u64 i = 0; i < lines; ++i) {
      auto& src = e.src_hbm ? hbm_ : dram_;
      auto& dst = e.dst_hbm ? hbm_ : dram_;
      const u64 sk = e.src_addr / 64 + i;
      const u64 dk = e.dst_addr / 64 + i;
      if (e.is_swap) {
        std::swap(src[sk], dst[dk]);
      } else {
        dst[dk] = src.count(sk) ? src[sk] : 0;
      }
    }
  }

  void stamp(bool in_hbm, Addr phys, u64 token) {
    (in_hbm ? hbm_ : dram_)[phys / 64] = token;
  }

  u64 value(bool in_hbm, Addr phys) const {
    const auto& m = in_hbm ? hbm_ : dram_;
    const auto it = m.find(phys / 64);
    return it == m.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<u64, u64> hbm_;
  std::unordered_map<u64, u64> dram_;
};

class IntegrityTest : public ::testing::TestWithParam<u64> {};

TEST_P(IntegrityTest, ReadYourWritesUnderRandomizedLoad) {
  auto hp = mem::DramTimingParams::hbm2_1gb();
  hp.capacity_bytes = 16 * MiB;
  auto dp = mem::DramTimingParams::ddr4_3200_10gb();
  dp.capacity_bytes = 160 * MiB;
  mem::DramDevice hbm(hp), dram(dp);
  BumblebeeController c(BumblebeeConfig::baseline(), hbm, dram,
                        hmm::PagingConfig{.enabled = false});

  Shadow shadow;
  c.set_movement_hook([&](const hmm::MoveEvent& e) { shadow.apply(e); });

  std::unordered_map<u64, u64> expected;  // logical 64 B line -> token
  Rng rng(GetParam());
  Tick now = 0;
  u64 token = 0;
  u64 checked = 0;

  // Footprint well within visible memory so no OS swap-outs occur.
  const u64 footprint = 64 * MiB;
  for (int i = 0; i < 40000; ++i) {
    now += rng.next_below(50000) + 1000;
    // Mix of hot (small range) and cold addresses to exercise movement.
    const Addr a = (rng.next_bool(0.6)
                        ? rng.next_below(2 * MiB / 64)
                        : rng.next_below(footprint / 64)) *
                   64;
    const bool write = rng.next_bool(0.4);
    const auto r =
        c.access(a, write ? AccessType::kWrite : AccessType::kRead, now);

    if (write) {
      ++token;
      expected[a / 64] = token;
      // The demand write landed at r.phys_addr; any movement within the
      // same call relocated the line to its current location as well.
      shadow.stamp(r.served_by_hbm, r.phys_addr, token);
      const auto loc = c.locate(a);
      ASSERT_TRUE(loc.allocated);
      shadow.stamp(loc.in_hbm, loc.phys, token);
    } else {
      const auto it = expected.find(a / 64);
      if (it != expected.end()) {
        const auto loc = c.locate(a);
        ASSERT_TRUE(loc.allocated);
        ASSERT_EQ(shadow.value(loc.in_hbm, loc.phys), it->second)
            << "stale data for line " << a << " at iteration " << i;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 1000u) << "test must actually exercise re-reads";
  EXPECT_EQ(c.bb_stats().os_swap_outs, 0u);
  EXPECT_TRUE(c.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

// The same shadow check for each ablation variant: mode-switch and
// movement bookkeeping must stay functionally correct in every mode.
class VariantIntegrityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(VariantIntegrityTest, ReadYourWrites) {
  auto hp = mem::DramTimingParams::hbm2_1gb();
  hp.capacity_bytes = 16 * MiB;
  auto dp = mem::DramTimingParams::ddr4_3200_10gb();
  dp.capacity_bytes = 160 * MiB;
  mem::DramDevice hbm(hp), dram(dp);

  BumblebeeConfig cfg = BumblebeeConfig::baseline();
  const std::string name = GetParam();
  if (name == "C-Only") cfg = BumblebeeConfig::c_only();
  if (name == "M-Only") cfg = BumblebeeConfig::m_only();
  if (name == "25%-C") cfg = BumblebeeConfig::fixed_chbm(0.25);
  if (name == "50%-C") cfg = BumblebeeConfig::fixed_chbm(0.5);
  if (name == "No-Multi") cfg = BumblebeeConfig::no_multi();
  if (name == "Alloc-H") cfg = BumblebeeConfig::alloc_h();
  if (name == "No-HMF") cfg = BumblebeeConfig::no_hmf();

  BumblebeeController c(cfg, hbm, dram, hmm::PagingConfig{.enabled = false});
  Shadow shadow;
  c.set_movement_hook([&](const hmm::MoveEvent& e) { shadow.apply(e); });

  std::unordered_map<u64, u64> expected;
  Rng rng(99);
  Tick now = 0;
  u64 token = 0;
  for (int i = 0; i < 20000; ++i) {
    now += 30000;
    const Addr a = rng.next_below(32 * MiB / 64) * 64;
    const bool write = rng.next_bool(0.4);
    const auto r =
        c.access(a, write ? AccessType::kWrite : AccessType::kRead, now);
    if (write) {
      ++token;
      expected[a / 64] = token;
      shadow.stamp(r.served_by_hbm, r.phys_addr, token);
      const auto loc = c.locate(a);
      shadow.stamp(loc.in_hbm, loc.phys, token);
    } else if (const auto it = expected.find(a / 64);
               it != expected.end()) {
      const auto loc = c.locate(a);
      ASSERT_EQ(shadow.value(loc.in_hbm, loc.phys), it->second)
          << name << " iteration " << i;
    }
  }
  EXPECT_TRUE(c.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantIntegrityTest,
                         ::testing::Values("Bumblebee", "C-Only", "M-Only",
                                           "25%-C", "50%-C", "No-Multi",
                                           "Alloc-H", "No-HMF"));

}  // namespace
}  // namespace bb::bumblebee
