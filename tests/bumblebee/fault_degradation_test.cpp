// Graceful degradation under uncorrectable errors: Bumblebee must retire
// faulty HBM frames (flushing dirty data through the normal eviction
// path), degrade sets past the retirement threshold, keep every PRT <->
// BLE <-> hot-table invariant intact, and complete the run serving from
// off-chip DRAM.
#include <gtest/gtest.h>

#include "bumblebee/controller.h"
#include "sim/system.h"

namespace bb::bumblebee {
namespace {

sim::SystemConfig small_cfg() {
  sim::SystemConfig cfg;
  cfg.hbm.capacity_bytes = 32 * MiB;
  cfg.dram.capacity_bytes = 320 * MiB;
  cfg.core.cores = 1;
  cfg.warmup_ratio = 0.0;
  cfg.seed = 42;
  return cfg;
}

TEST(FaultDegradationTest, BumblebeeSurvivesDeadBanksAndRetiresFrames) {
  sim::SystemConfig cfg = small_cfg();
  // A quarter of all banks dead: plenty of UEs in both devices, so the
  // retirement and refetch machinery is exercised hard.
  cfg.fault = fault::FaultConfig::profile("dead-bank", 0.25, 1);

  sim::System system(cfg);
  const sim::RunResult r = system.run(
      "Bumblebee", trace::WorkloadProfile::by_name("mcf"), 300'000);

  // The run completed and the reliability counters surfaced.
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.ue_count, 0u);
  EXPECT_GT(r.due_retries, 0u);
  EXPECT_GT(r.due_unrecovered, 0u);
  EXPECT_GE(r.retired_frames, 1u);
  // retired_frames/degraded_sets mirror the controller's posture.
  auto* bb = dynamic_cast<BumblebeeController*>(system.last_controller());
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(r.retired_frames, bb->bb_stats().frame_retirements);
  EXPECT_EQ(r.degraded_sets, bb->bb_stats().sets_degraded);
  // Every retirement re-verified the set; the final state must also pass
  // the full structural sweep.
  EXPECT_TRUE(bb->check_invariants());
}

TEST(FaultDegradationTest, DegradedSetsDisableCaching) {
  sim::SystemConfig cfg = small_cfg();
  cfg.fault = fault::FaultConfig::profile("dead-bank", 0.5, 2);

  sim::System system(cfg);
  const sim::RunResult r = system.run(
      "Bumblebee", trace::WorkloadProfile::by_name("lbm"), 300'000);

  auto* bb = dynamic_cast<BumblebeeController*>(system.last_controller());
  ASSERT_NE(bb, nullptr);
  EXPECT_TRUE(bb->check_invariants());
  // With half the banks dead some set must have crossed the threshold.
  EXPECT_GT(r.degraded_sets, 0u);
  EXPECT_GE(r.retired_frames,
            r.degraded_sets * bb->config().degrade_after_retired_frames);
  const hmm::FaultPosture posture = bb->fault_posture();
  EXPECT_EQ(posture.retired_frames, r.retired_frames);
  EXPECT_EQ(posture.degraded_sets, r.degraded_sets);
}

TEST(FaultDegradationTest, CleanChbmDuesRefetchFromOffChipCopy) {
  sim::SystemConfig cfg = small_cfg();
  // Transient-heavy profile with a large DUE share: cHBM blocks hit DUEs
  // while their off-chip home stays mostly readable. Retries are disabled
  // because tick-keyed transients almost always clear on redraw — with the
  // default budget an unrecovered transient needs three consecutive DUE
  // draws (~(rate*due_fraction)^3), which this run would never see.
  cfg.fault = fault::FaultConfig::profile("transient", 0.01, 3);
  cfg.fault.due_fraction = 0.5;
  cfg.fault.max_due_retries = 0;

  sim::System system(cfg);
  const sim::RunResult r = system.run(
      "Bumblebee", trace::WorkloadProfile::by_name("mcf"), 300'000);

  auto* bb = dynamic_cast<BumblebeeController*>(system.last_controller());
  ASSERT_NE(bb, nullptr);
  EXPECT_TRUE(bb->check_invariants());
  EXPECT_GT(r.ue_count, 0u);
  // Recovery beats loss when a clean copy exists: some DUEs re-fetched.
  EXPECT_GT(bb->bb_stats().due_refetches, 0u);
}

TEST(FaultDegradationTest, FaultFreeRunHasZeroReliabilityCounters) {
  sim::System system(small_cfg());
  const sim::RunResult r = system.run(
      "Bumblebee", trace::WorkloadProfile::by_name("mcf"), 150'000);
  EXPECT_EQ(r.ce_count, 0u);
  EXPECT_EQ(r.ue_count, 0u);
  EXPECT_EQ(r.due_retries, 0u);
  EXPECT_EQ(r.due_data_loss, 0u);
  EXPECT_EQ(r.retired_rows, 0u);
  EXPECT_EQ(r.retired_frames, 0u);
  EXPECT_EQ(r.degraded_sets, 0u);
}

TEST(FaultDegradationTest, FaultPostureSurvivesStatReset) {
  // fault_posture() is derived from per-set structural state (retired
  // frames, degraded flags), not from the resettable event counters — so a
  // warmup-boundary reset_stats() must zero bstats_ without erasing the
  // degradation posture.
  sim::SystemConfig cfg = small_cfg();
  cfg.fault = fault::FaultConfig::profile("dead-bank", 0.25, 1);

  sim::System system(cfg);
  system.run("Bumblebee", trace::WorkloadProfile::by_name("mcf"), 300'000);
  auto* bb = dynamic_cast<BumblebeeController*>(system.last_controller());
  ASSERT_NE(bb, nullptr);
  const hmm::FaultPosture before = bb->fault_posture();
  ASSERT_GE(before.retired_frames, 1u);

  bb->reset_stats();
  EXPECT_EQ(bb->bb_stats().frame_retirements, 0u);
  EXPECT_EQ(bb->bb_stats().sets_degraded, 0u);
  const hmm::FaultPosture after = bb->fault_posture();
  EXPECT_EQ(after.retired_frames, before.retired_frames);
  EXPECT_EQ(after.degraded_sets, before.degraded_sets);
  EXPECT_TRUE(bb->check_invariants());
}

}  // namespace
}  // namespace bb::bumblebee
