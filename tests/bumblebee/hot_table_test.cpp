#include "bumblebee/hot_table.h"

#include <gtest/gtest.h>

namespace bb::bumblebee {
namespace {

TEST(HotTable, DramTouchInsertsAndCounts) {
  HotTable hot(8, 8, 4095);
  EXPECT_EQ(hot.touch_dram(5), 1u);
  EXPECT_EQ(hot.touch_dram(5), 2u);
  EXPECT_EQ(hot.hotness(5), 2u);
  EXPECT_EQ(hot.hotness(6), 0u);
}

TEST(HotTable, DramQueueDropsLru) {
  HotTable hot(8, 3, 4095);
  hot.touch_dram(1);
  hot.touch_dram(2);
  hot.touch_dram(3);
  hot.touch_dram(4);  // drops page 1
  EXPECT_EQ(hot.hotness(1), 0u);
  EXPECT_EQ(hot.hotness(2), 1u);
  EXPECT_EQ(hot.dram_size(), 3u);
}

TEST(HotTable, DramTouchRefreshesLruPosition) {
  HotTable hot(8, 3, 4095);
  hot.touch_dram(1);
  hot.touch_dram(2);
  hot.touch_dram(3);
  hot.touch_dram(1);  // page 1 now MRU
  hot.touch_dram(4);  // drops page 2, not page 1
  EXPECT_GT(hot.hotness(1), 0u);
  EXPECT_EQ(hot.hotness(2), 0u);
}

TEST(HotTable, CounterCarriedFromDramToHbm) {
  HotTable hot(8, 8, 4095);
  hot.touch_dram(7);
  hot.touch_dram(7);
  hot.move_dram_to_hbm(7);
  EXPECT_EQ(hot.hbm_size(), 1u);
  EXPECT_EQ(hot.dram_size(), 0u);
  EXPECT_EQ(hot.hotness(7), 2u);
  EXPECT_EQ(hot.touch_hbm(7), 3u);
}

TEST(HotTable, EvictionPushesBackToDramQueue) {
  HotTable hot(8, 8, 4095);
  hot.touch_dram(9);
  hot.move_dram_to_hbm(9);
  hot.touch_hbm(9);
  hot.move_hbm_to_dram(9);
  EXPECT_EQ(hot.hbm_size(), 0u);
  EXPECT_EQ(hot.dram_size(), 1u);
  EXPECT_EQ(hot.hotness(9), 2u);  // counter kept across the move
}

TEST(HotTable, MinHbmCounterIsT) {
  HotTable hot(8, 8, 4095);
  EXPECT_EQ(hot.min_hbm_counter(), 0u);  // empty queue
  for (u32 p : {1, 2, 3}) {
    hot.touch_dram(p);
    hot.move_dram_to_hbm(p);
  }
  hot.touch_hbm(2);
  hot.touch_hbm(2);
  hot.touch_hbm(3);
  // counters: 1 -> 1, 2 -> 3, 3 -> 2.
  EXPECT_EQ(hot.min_hbm_counter(), 1u);
}

TEST(HotTable, LruHbmIsOldestUntouched) {
  HotTable hot(8, 8, 4095);
  for (u32 p : {1, 2, 3}) {
    hot.touch_dram(p);
    hot.move_dram_to_hbm(p);
  }
  hot.touch_hbm(1);  // 1 moves to MRU
  const auto lru = hot.lru_hbm();
  ASSERT_TRUE(lru.has_value());
  EXPECT_EQ(lru->page, 2u);
}

TEST(HotTable, ColdestPicksMinCounter) {
  HotTable hot(8, 8, 4095);
  for (u32 p : {1, 2, 3}) {
    hot.touch_dram(p);
    hot.move_dram_to_hbm(p);
  }
  hot.touch_hbm(1);
  hot.touch_hbm(1);
  hot.touch_hbm(3);
  // counters: 1 -> 3, 2 -> 1, 3 -> 2.
  const auto coldest = hot.coldest_hbm();
  ASSERT_TRUE(coldest.has_value());
  EXPECT_EQ(coldest->page, 2u);
  // Excluding page 2 yields the next coldest (page 3).
  const auto second = hot.coldest_hbm(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->page, 3u);
}

TEST(HotTable, ColdestOnEmpty) {
  HotTable hot(4, 4, 100);
  EXPECT_FALSE(hot.coldest_hbm().has_value());
  EXPECT_FALSE(hot.lru_hbm().has_value());
}

TEST(HotTable, RequeueMruKeepsCounter) {
  HotTable hot(8, 8, 4095);
  for (u32 p : {1, 2}) {
    hot.touch_dram(p);
    hot.move_dram_to_hbm(p);
  }
  // 1 is LRU; requeue it to MRU without a counter bump.
  hot.requeue_hbm_mru(1);
  EXPECT_EQ(hot.lru_hbm()->page, 2u);
  EXPECT_EQ(hot.hotness(1), 1u);
}

TEST(HotTable, RemoveForgetsEverywhere) {
  HotTable hot(8, 8, 4095);
  hot.touch_dram(4);
  hot.move_dram_to_hbm(4);
  hot.touch_dram(5);
  hot.remove(4);
  hot.remove(5);
  EXPECT_EQ(hot.hotness(4), 0u);
  EXPECT_EQ(hot.hotness(5), 0u);
  EXPECT_EQ(hot.hbm_size(), 0u);
  EXPECT_EQ(hot.dram_size(), 0u);
}

TEST(HotTable, CounterSaturates) {
  HotTable hot(8, 8, 3);
  hot.touch_dram(1);
  hot.touch_dram(1);
  hot.touch_dram(1);
  hot.touch_dram(1);
  hot.touch_dram(1);
  EXPECT_EQ(hot.hotness(1), 3u);
}

TEST(HotTable, MoveDramToHbmWithoutHistoryStartsAtZero) {
  HotTable hot(8, 8, 4095);
  hot.move_dram_to_hbm(42);
  EXPECT_EQ(hot.hbm_size(), 1u);
  EXPECT_EQ(hot.hotness(42), 0u);
}

}  // namespace
}  // namespace bb::bumblebee
