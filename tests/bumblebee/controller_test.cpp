#include "bumblebee/controller.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bb::bumblebee {
namespace {

// Scaled-down devices: 16 MiB HBM (32 sets of 8 x 64 KiB pages) and
// 160 MiB DRAM (80 off-chip pages per set) keep unit tests fast while
// preserving the paper's m = 80, n = 8 set shape.
mem::DramTimingParams small_hbm() {
  auto p = mem::DramTimingParams::hbm2_1gb();
  p.capacity_bytes = 16 * MiB;
  return p;
}
mem::DramTimingParams small_dram() {
  auto p = mem::DramTimingParams::ddr4_3200_10gb();
  p.capacity_bytes = 160 * MiB;
  return p;
}

class BumblebeeTest : public ::testing::Test {
 protected:
  BumblebeeTest() : hbm_(small_hbm()), dram_(small_dram()) {}

  std::unique_ptr<BumblebeeController> make(
      BumblebeeConfig cfg = BumblebeeConfig::baseline()) {
    return std::make_unique<BumblebeeController>(cfg, hbm_, dram_,
                                                 hmm::PagingConfig{});
  }

  mem::DramDevice hbm_;
  mem::DramDevice dram_;
};

TEST_F(BumblebeeTest, GeometryScalesWithDevices) {
  auto c = make();
  EXPECT_EQ(c->geometry().sets, 32u);
  EXPECT_EQ(c->geometry().m, 80u);
  EXPECT_EQ(c->geometry().n, 8u);
}

TEST_F(BumblebeeTest, FirstAccessAllocates) {
  auto c = make();
  EXPECT_FALSE(c->locate(0).allocated);
  c->access(0, AccessType::kRead, 1000);
  EXPECT_TRUE(c->locate(0).allocated);
  EXPECT_EQ(c->bb_stats().prt_misses, 1u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, MigrationPriorMovesFirstPageToMhbm) {
  auto c = make();
  // Two accesses to the same page: allocation + movement decision with an
  // evidence-free set migrates the page to mHBM.
  c->access(0, AccessType::kRead, 1000);
  const auto loc = c->locate(0);
  EXPECT_TRUE(loc.allocated);
  EXPECT_TRUE(loc.in_hbm);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, SequentialScanSwitchesPagesToMem) {
  auto c = make();
  Tick now = 0;
  // Scan 4 pages (one per set at most) line by line.
  for (Addr a = 0; a < 4 * 64 * KiB; a += 64) {
    now += 20000;
    c->access(a, AccessType::kRead, now);
  }
  const auto r = c->ratio();
  EXPECT_GT(r.mhbm_frames, 0u);
  EXPECT_TRUE(c->check_invariants());
  // Spatially dense pages end mHBM-resident; their reads serve from HBM.
  EXPECT_TRUE(c->locate(0).in_hbm);
}

TEST_F(BumblebeeTest, ServesFromHbmAfterMigration) {
  auto c = make();
  Tick now = 0;
  c->access(0, AccessType::kRead, now);
  now += 100000;
  const auto r = c->access(64, AccessType::kRead, now);
  EXPECT_TRUE(r.served_by_hbm);
}

TEST_F(BumblebeeTest, WritesPropagateDirtyState) {
  auto c = make();
  c->access(0, AccessType::kWrite, 1000);
  EXPECT_EQ(c->stats().writes, 1u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, COnlyNeverCreatesMhbm) {
  auto c = make(BumblebeeConfig::c_only());
  Tick now = 0;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    now += 30000;
    c->access(rng.next_below(80 * MiB) & ~Addr{63}, AccessType::kRead, now);
  }
  const auto r = c->ratio();
  EXPECT_EQ(r.mhbm_frames, 0u);
  EXPECT_EQ(c->bb_stats().page_migrations, 0u);
  EXPECT_EQ(c->bb_stats().cache_to_mem_switches, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, MOnlyNeverCaches) {
  auto c = make(BumblebeeConfig::m_only());
  Tick now = 0;
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    now += 30000;
    c->access(rng.next_below(80 * MiB) & ~Addr{63}, AccessType::kRead, now);
  }
  EXPECT_EQ(c->ratio().chbm_frames, 0u);
  EXPECT_EQ(c->bb_stats().block_fetches, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, FixedPartitionRespectsReservation) {
  auto c = make(BumblebeeConfig::fixed_chbm(0.25));
  Tick now = 0;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    now += 30000;
    c->access(rng.next_below(100 * MiB) & ~Addr{63}, AccessType::kRead, now);
  }
  // 25% of 8 ways = 2 cache-only frames per set, 32 sets => at most 64
  // cHBM frames and at most 192 mHBM frames.
  const auto r = c->ratio();
  EXPECT_LE(r.chbm_frames, 64u);
  EXPECT_LE(r.mhbm_frames, 192u);
  EXPECT_EQ(c->bb_stats().cache_to_mem_switches, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, MetaHGeneratesMetadataTraffic) {
  auto c = make(BumblebeeConfig::meta_h());
  EXPECT_EQ(c->metadata_sram_bytes(), 0u);
  Tick now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 50000;
    c->access(static_cast<Addr>(i) * 64, AccessType::kRead, now);
  }
  const int meta = static_cast<int>(mem::TrafficClass::kMetadata);
  EXPECT_GT(hbm_.stats().read_bytes[meta] + hbm_.stats().write_bytes[meta],
            0u);
  EXPECT_GT(c->stats().total_metadata_latency, 0u);
}

TEST_F(BumblebeeTest, SramMetadataFitsBudget) {
  auto c = make();
  EXPECT_GT(c->metadata_sram_bytes(), 0u);
  // The scaled-down geometry must be well under 512 KB too.
  EXPECT_LT(c->metadata_sram_bytes(), 512 * KiB);
}

TEST_F(BumblebeeTest, EvictionsHappenUnderCapacityPressure) {
  auto c = make();
  Tick now = 0;
  Rng rng(4);
  // Hammer a single set far beyond its 8 HBM frames: pages of the form
  // set0 + k * sets * page.
  const u64 page = 64 * KiB;
  const u64 stride = 32 * page;  // same set every time
  for (int i = 0; i < 40000; ++i) {
    now += 30000;
    const Addr a = (rng.next_below(60) * stride) + (rng.next_below(16) * 64);
    c->access(a, AccessType::kRead, now);
  }
  const auto& b = c->bb_stats();
  EXPECT_GT(b.chbm_evictions + b.mhbm_evictions + b.zombie_evictions, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, BufferingConvertsMemToCache) {
  auto c = make();
  Tick now = 0;
  const u64 stride = 32 * 64 * KiB;  // same remapping set every time
  // Phase 1: fill all 8 HBM frames of set 0 with mHBM pages (two accesses
  // each: allocate, then migrate on the re-access).
  for (u64 p = 0; p < 8; ++p) {
    for (int touch = 0; touch < 2; ++touch) {
      now += 50000;
      c->access(p * stride, AccessType::kRead, now);
    }
  }
  ASSERT_GT(c->ratio().mhbm_frames, 0u);
  // Phase 2: hotter challengers force reclaims; the coldest victims are
  // mHBM pages, which must take the buffered mHBM->cHBM path first.
  for (u64 p = 8; p < 24; ++p) {
    for (int touch = 0; touch < 4; ++touch) {
      now += 50000;
      c->access(p * stride + (touch % 32) * 64, AccessType::kRead, now);
    }
  }
  EXPECT_GT(c->bb_stats().mem_to_cache_buffers, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, NoHmfDisablesBufferingAndZombies) {
  auto c = make(BumblebeeConfig::no_hmf());
  Tick now = 0;
  Rng rng(6);
  const u64 stride = 32 * 64 * KiB;
  for (int i = 0; i < 60000; ++i) {
    now += 30000;
    const Addr a = (rng.next_below(40) * stride) + (rng.next_below(1024) * 64);
    c->access(a, AccessType::kRead, now);
  }
  EXPECT_EQ(c->bb_stats().mem_to_cache_buffers, 0u);
  EXPECT_EQ(c->bb_stats().zombie_evictions, 0u);
  EXPECT_EQ(c->bb_stats().batch_flushes, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, HighFootprintTriggersBatchFlush) {
  auto c = make();
  // Touch an address beyond the off-chip capacity: the OS footprint is
  // high, so a batch of sets must flush their cHBM and stop caching.
  c->access(0, AccessType::kRead, 1000);
  c->access(161 * MiB, AccessType::kRead, 2000);
  EXPECT_GT(c->bb_stats().batch_flushes, 0u);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, AllocHPlacesInHbmFirst) {
  auto c = make(BumblebeeConfig::alloc_h());
  c->access(0, AccessType::kRead, 1000);
  EXPECT_TRUE(c->locate(0).in_hbm);
}

TEST_F(BumblebeeTest, AllocDPlacesInDram) {
  auto c = make(BumblebeeConfig::alloc_d());
  // Use a C-Only-free config: allocation lands in DRAM, though the page
  // may be migrated by the movement decision right after. Check the PRT
  // miss path by disabling movement.
  auto cfg = BumblebeeConfig::alloc_d();
  cfg.enable_migration = false;
  cfg.enable_caching = false;
  auto c2 = make(cfg);
  c2->access(0, AccessType::kRead, 1000);
  EXPECT_FALSE(c2->locate(0).in_hbm);
}

TEST_F(BumblebeeTest, RatioMovesOverTime) {
  auto c = make();
  Tick now = 0;
  // Dense scan: mostly mHBM.
  for (Addr a = 0; a < 8 * 64 * KiB; a += 64) {
    now += 20000;
    c->access(a, AccessType::kRead, now);
  }
  const auto dense = c->ratio();
  EXPECT_GT(dense.mhbm_frames, dense.chbm_frames);
}

TEST_F(BumblebeeTest, InvariantsHoldUnderRandomizedLoad) {
  auto c = make();
  Rng rng(7);
  Tick now = 0;
  for (int i = 0; i < 30000; ++i) {
    now += rng.next_below(60000) + 1000;
    const Addr a = rng.next_below(170 * MiB) & ~Addr{63};
    const auto type =
        rng.next_bool(0.3) ? AccessType::kWrite : AccessType::kRead;
    c->access(a, type, now);
    if (i % 5000 == 0) {
      ASSERT_TRUE(c->check_invariants()) << "at iteration " << i;
    }
  }
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(BumblebeeTest, LocateAgreesWithServedLocation) {
  auto c = make();
  Rng rng(8);
  Tick now = 0;
  for (int i = 0; i < 10000; ++i) {
    now += 30000;
    const Addr a = rng.next_below(40 * MiB) & ~Addr{63};
    const auto before = c->locate(a);
    const auto r = c->access(a, AccessType::kRead, now);
    if (before.allocated) {
      ASSERT_EQ(before.in_hbm, r.served_by_hbm) << "iteration " << i;
      ASSERT_EQ(before.phys, r.phys_addr) << "iteration " << i;
    }
  }
}

TEST_F(BumblebeeTest, DrainIsSafe) {
  auto c = make();
  c->access(0, AccessType::kWrite, 1000);
  EXPECT_NO_THROW(c->drain(1'000'000));
}

class SwitchFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(SwitchFractionTest, ScanTriggersSwitchAtThreshold) {
  mem::DramDevice hbm(small_hbm());
  mem::DramDevice dram(small_dram());
  auto cfg = BumblebeeConfig::baseline();
  cfg.switch_fraction = GetParam();
  // Force the caching path so the switch logic (not the migration prior)
  // is exercised: pre-seed evidence by disabling migration first page.
  BumblebeeController c(cfg, hbm, dram, hmm::PagingConfig{});
  Tick now = 0;
  for (Addr a = 0; a < 2 * 64 * KiB; a += 64) {
    now += 20000;
    c.access(a, AccessType::kRead, now);
  }
  EXPECT_TRUE(c.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Fractions, SwitchFractionTest,
                         ::testing::Values(0.25, 0.5, 0.75, 0.9));

// ------------------------------------------------------------ accounting
//
// Every block the design charges to blocks_fetched must correspond to real
// DRAM->HBM traffic on the movement engine, and vice versa. The movement
// hook observes every physical copy, so the two ledgers can be compared.
class FetchAccountingTest : public BumblebeeTest {
 protected:
  static constexpr u64 kSetStride = 32 * 64 * KiB;  // stays in set 0

  void attach_hook(BumblebeeController& c) {
    c.set_movement_hook([this](const hmm::MoveEvent& e) {
      ASSERT_FALSE(e.is_swap);
      if (!e.src_hbm && e.dst_hbm) fetched_bytes_ += e.bytes;
    });
  }

  void touch_blocks(BumblebeeController& c, u64 page, u32 blocks) {
    for (u32 b = 0; b < blocks; ++b) {
      now_ += 50000;
      c.access(page * kSetStride + b * 2048, AccessType::kRead, now_);
    }
  }

  u64 fetched_bytes_ = 0;
  Tick now_ = 0;
};

TEST_F(FetchAccountingTest, NoMultiSwitchChargesWholePage) {
  auto c = make(BumblebeeConfig::no_multi());
  attach_hook(*c);
  // Accumulate blocks until the cHBM frame switches to mHBM. In the
  // separate-space design the switch re-reads the whole page from DRAM,
  // already-cached blocks included; blocks_fetched must charge all of
  // them, since that re-fetch is exactly the overhead the ablation
  // measures.
  touch_blocks(*c, 0, 20);
  EXPECT_EQ(c->bb_stats().cache_to_mem_switches, 1u);
  EXPECT_EQ(c->stats().blocks_fetched * c->geometry().block_bytes,
            fetched_bytes_);
  EXPECT_TRUE(c->check_invariants());
}

TEST_F(FetchAccountingTest, MultiplexedSwitchChargesOnlyMissingBlocks) {
  auto c = make();  // baseline: multiplexed space
  attach_hook(*c);
  touch_blocks(*c, 0, 20);
  EXPECT_EQ(c->bb_stats().cache_to_mem_switches, 1u);
  EXPECT_EQ(c->stats().blocks_fetched * c->geometry().block_bytes,
            fetched_bytes_);
  EXPECT_TRUE(c->check_invariants());
}

// OS swap-out fallback: when the swapped-out victim still holds a dirty
// cHBM copy, its dirty blocks must be written back off-chip (and charged
// as writeback traffic) instead of being silently dropped.
class OsSwapOutTest : public ::testing::Test {
 protected:
  OsSwapOutTest()
      : hbm_([] {
          auto p = mem::DramTimingParams::hbm2_1gb();
          p.capacity_bytes = 16 * MiB;  // 32 sets of n = 8 frames
          return p;
        }()),
        dram_([] {
          auto p = mem::DramTimingParams::ddr4_3200_10gb();
          p.capacity_bytes = 8 * MiB;  // m = 4 off-chip frames per set
          return p;
        }()) {}

  static constexpr u64 kSetStride = 32 * 64 * KiB;  // stays in set 0

  void touch(BumblebeeController& c, u64 page, AccessType type, int times) {
    for (int i = 0; i < times; ++i) {
      now_ += 50000;
      c.access(page * kSetStride, type, now_);
    }
  }

  mem::DramDevice hbm_;
  mem::DramDevice dram_;
  Tick now_ = 0;
};

TEST_F(OsSwapOutTest, SwapOutWritesBackDirtyCacheBlocks) {
  // 2-bit counters saturate at 3, so every page's hotness can be pinned to
  // the same value and the script below controls victim selection exactly:
  // ties resolve towards the LRU end in the reclaim path and towards the
  // lowest page index in the OS swap-out scan.
  auto cfg = BumblebeeConfig::no_hmf();  // no buffering / flush escape hatches
  cfg.counter_bits = 2;
  BumblebeeController c(cfg, hbm_, dram_, hmm::PagingConfig{});
  ASSERT_EQ(c.geometry().m, 4u);
  ASSERT_EQ(c.geometry().n, 8u);

  u64 writeback_bytes = 0;
  c.set_movement_hook([&](const hmm::MoveEvent& e) {
    if (e.src_hbm && !e.dst_hbm) writeback_bytes += e.bytes;
  });

  // Page 0: off-chip home plus a dirty single-block cHBM copy, saturated.
  touch(c, 0, AccessType::kWrite, 4);
  // Pages 1..7: each allocated straight into mHBM (the allocation chain
  // follows a hot predecessor) and saturated. HBM is now 1 cHBM + 7 mHBM.
  for (u64 p = 1; p <= 7; ++p) touch(c, p, AccessType::kRead, 4);
  ASSERT_EQ(c.ratio().chbm_frames, 1u);
  ASSERT_EQ(c.ratio().mhbm_frames, 7u);
  // Pages 8..10 fill the remaining off-chip frames, saturated.
  for (u64 p = 8; p <= 10; ++p) touch(c, p, AccessType::kRead, 3);
  // Refresh page 0's recency so the reclaim path prefers an mHBM victim
  // (whose eviction fails: no free off-chip frame) over the cHBM copy.
  touch(c, 0, AccessType::kWrite, 1);
  ASSERT_EQ(c.bb_stats().os_swap_outs, 0u);
  ASSERT_EQ(writeback_bytes, 0u);

  // Page 11: every frame is occupied and nothing is evictable, so the OS
  // swaps out the globally coldest page — page 0, whose dirty cached block
  // must reach DRAM as writeback traffic before the page leaves memory.
  touch(c, 11, AccessType::kRead, 1);
  EXPECT_EQ(c.bb_stats().os_swap_outs, 1u);
  EXPECT_EQ(c.bb_stats().chbm_evictions, 1u);
  EXPECT_EQ(writeback_bytes, c.geometry().block_bytes);
  EXPECT_FALSE(c.locate(0).allocated);
  EXPECT_TRUE(c.check_invariants());
}

TEST_F(BumblebeeTest, ResetStatsClearsCountersKeepsPlacement) {
  // Regression for the warmup-reset path: reset_stats() must clear the
  // Bumblebee movement counters and the metadata model's counters while
  // PRT/BLE/hot-table placement state survives (bb_analyze stats-reset
  // rule).
  auto c = make();
  c->access(0, AccessType::kRead, 1000);
  c->access(0, AccessType::kRead, 2000);
  EXPECT_GT(c->bb_stats().prt_misses, 0u);
  EXPECT_GT(c->metadata().stats().lookups, 0u);
  c->reset_stats();
  EXPECT_EQ(c->bb_stats().prt_misses, 0u);
  EXPECT_EQ(c->metadata().stats().lookups, 0u);
  EXPECT_EQ(c->stats().requests, 0u);
  // Placement survived: the page is still allocated and the structural
  // invariants still hold.
  EXPECT_TRUE(c->locate(0).allocated);
  EXPECT_TRUE(c->check_invariants());
}

}  // namespace
}  // namespace bb::bumblebee
