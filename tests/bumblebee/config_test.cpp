#include "bumblebee/config.h"

#include <gtest/gtest.h>

namespace bb::bumblebee {
namespace {

TEST(Config, PaperGeometry) {
  const BumblebeeConfig cfg;
  const auto g = Geometry::make(cfg, 1 * GiB, 10 * GiB);
  // 1 GiB / 64 KiB pages = 16384 HBM pages, 8-way => 2048 sets.
  EXPECT_EQ(g.sets, 2048u);
  EXPECT_EQ(g.n, 8u);
  // 10 GiB / 64 KiB / 2048 sets = 80 off-chip pages per set.
  EXPECT_EQ(g.m, 80u);
  EXPECT_EQ(g.slots(), 88u);
  EXPECT_EQ(g.blocks_per_page, 32u);
  EXPECT_EQ(g.dram_pages(), 163840u);
  EXPECT_EQ(g.hbm_pages(), 16384u);
  EXPECT_EQ(g.visible_bytes(), 11 * GiB);
}

TEST(Config, MetadataBudgetMatchesPaperScale) {
  // Paper: 334 KB total (110 PRT + 136 BLE + 88 hotness). Our accounting
  // (which includes occupancy/mode bits) must land in the same few-hundred-
  // KB regime and under the 512 KB SRAM budget.
  const BumblebeeConfig cfg;
  const auto g = Geometry::make(cfg, 1 * GiB, 10 * GiB);
  const auto b = metadata_budget(cfg, g);
  EXPECT_GT(b.total(), 250 * KiB);
  EXPECT_LT(b.total(), 512 * KiB);
  // Decomposition ordering matches the paper: BLE > PRT > hotness.
  EXPECT_GT(b.ble_bytes, b.hotness_bytes);
  EXPECT_GT(b.prt_bytes, b.hotness_bytes);
}

TEST(Config, MetadataShrinksWithLargerPages) {
  BumblebeeConfig small;
  small.page_bytes = 64 * KiB;
  BumblebeeConfig large;
  large.page_bytes = 128 * KiB;
  const auto bs =
      metadata_budget(small, Geometry::make(small, 1 * GiB, 10 * GiB));
  const auto bl =
      metadata_budget(large, Geometry::make(large, 1 * GiB, 10 * GiB));
  EXPECT_GT(bs.total(), bl.total());
}

TEST(Config, MetadataGrowsWithSmallerBlocks) {
  BumblebeeConfig b2;
  b2.block_bytes = 2 * KiB;
  BumblebeeConfig b1;
  b1.block_bytes = 1 * KiB;
  const auto s2 = metadata_budget(b2, Geometry::make(b2, 1 * GiB, 10 * GiB));
  const auto s1 = metadata_budget(b1, Geometry::make(b1, 1 * GiB, 10 * GiB));
  EXPECT_GT(s1.ble_bytes, s2.ble_bytes);
}

TEST(Config, NonPowerOfTwoPagesWork) {
  BumblebeeConfig cfg;
  cfg.page_bytes = 96 * KiB;
  const auto g = Geometry::make(cfg, 1 * GiB, 10 * GiB);
  EXPECT_GT(g.sets, 0u);
  EXPECT_GT(g.m, 0u);
  EXPECT_EQ(g.blocks_per_page, 48u);
}

TEST(Config, Presets) {
  EXPECT_FALSE(BumblebeeConfig::c_only().enable_migration);
  EXPECT_TRUE(BumblebeeConfig::c_only().enable_caching);
  EXPECT_FALSE(BumblebeeConfig::m_only().enable_caching);
  EXPECT_TRUE(BumblebeeConfig::m_only().enable_migration);
  EXPECT_DOUBLE_EQ(BumblebeeConfig::fixed_chbm(0.25).fixed_chbm_fraction,
                   0.25);
  EXPECT_EQ(BumblebeeConfig::fixed_chbm(0.25).variant_name, "25%-C");
  EXPECT_EQ(BumblebeeConfig::fixed_chbm(0.5).variant_name, "50%-C");
  EXPECT_FALSE(BumblebeeConfig::no_multi().multiplexed_space);
  EXPECT_TRUE(BumblebeeConfig::meta_h().metadata_in_hbm);
  EXPECT_EQ(BumblebeeConfig::alloc_d().alloc, AllocPolicy::kDramFirst);
  EXPECT_EQ(BumblebeeConfig::alloc_h().alloc, AllocPolicy::kHbmFirst);
  EXPECT_FALSE(BumblebeeConfig::no_hmf().high_footprint_actions);
  EXPECT_EQ(BumblebeeConfig::baseline().variant_name, "Bumblebee");
}

TEST(Config, BlocksPerPage) {
  BumblebeeConfig cfg;
  cfg.page_bytes = 64 * KiB;
  cfg.block_bytes = 2 * KiB;
  EXPECT_EQ(cfg.blocks_per_page(), 32u);
  cfg.block_bytes = 4 * KiB;
  EXPECT_EQ(cfg.blocks_per_page(), 16u);
}

}  // namespace
}  // namespace bb::bumblebee
