#include "mem/dram_device.h"

#include <gtest/gtest.h>

namespace bb::mem {
namespace {

class DramDeviceTest : public ::testing::TestWithParam<const char*> {
 protected:
  DramTimingParams params() const {
    return std::string(GetParam()) == "hbm"
               ? DramTimingParams::hbm2_1gb()
               : DramTimingParams::ddr4_3200_10gb();
  }
};

TEST_P(DramDeviceTest, ColdAccessPaysRcdPlusCas) {
  DramDevice dev(params());
  const auto p = dev.params();
  const auto r = dev.access(0, 64, AccessType::kRead, 1000);
  const Tick expected = p.cycles_to_ticks(p.tRCD) +
                        p.cycles_to_ticks(p.tCAS) + p.burst_ticks();
  EXPECT_EQ(r.latency(), expected);
  EXPECT_EQ(dev.stats().row_empty, 1u);
  EXPECT_EQ(dev.stats().row_hits, 0u);
}

TEST_P(DramDeviceTest, RowHitPaysCasOnly) {
  DramDevice dev(params());
  const auto p = dev.params();
  const auto r1 = dev.access(0, 64, AccessType::kRead, 1000);
  const auto r2 = dev.access(64, 64, AccessType::kRead, r1.complete);
  const Tick expected = p.cycles_to_ticks(p.tCAS) + p.burst_ticks();
  EXPECT_EQ(r2.latency(), expected);
  EXPECT_EQ(dev.stats().row_hits, 1u);
}

TEST_P(DramDeviceTest, RowConflictPaysPrechargeActivate) {
  DramDevice dev(params());
  const auto p = dev.params();
  // Two rows in the same bank: same channel/bank index, different row.
  // Stride by one full row over all banks and channels of the device.
  const Addr conflict_stride =
      p.row_bytes * p.banks_per_channel * p.channels *
      (p.row_bytes / p.interleave_bytes ? 1 : 1);
  const auto r1 = dev.access(0, 64, AccessType::kRead, 1000);
  // Give plenty of time so tRAS is satisfied.
  const Tick later = r1.complete + ns_to_ticks(100);
  const auto r2 = dev.access(conflict_stride * 64, 64, AccessType::kRead,
                             later);
  // Some decodes may hash to other banks; just assert a conflict or empty
  // happened and latency >= row-hit latency.
  EXPECT_GE(r2.latency(), p.cycles_to_ticks(p.tCAS) + p.burst_ticks());
}

TEST_P(DramDeviceTest, MultiBeatStreamsAtBurstRate) {
  DramDevice dev(params());
  const auto p = dev.params();
  // A 2 KB sequential read must take far less than 32 x tCAS: the beats
  // pipeline at burst rate after the first CAS.
  const auto r = dev.access(0, 2048, AccessType::kRead, 0);
  const u64 beats = 2048 / p.burst_bytes();
  const Tick serialized = beats * p.cycles_to_ticks(p.tCAS);
  EXPECT_LT(r.latency(), serialized);
  EXPECT_EQ(dev.stats().beats, beats);
}

TEST_P(DramDeviceTest, UnalignedAccessCoversBothBeats) {
  DramDevice dev(params());
  // 64 bytes starting at offset 32 spans two 64 B beats.
  dev.access(32, 64, AccessType::kRead, 0);
  EXPECT_EQ(dev.stats().beats, 2u);
  EXPECT_EQ(dev.stats().read_bytes[0], 128u);  // two full beats counted
}

TEST_P(DramDeviceTest, TrafficClassAttribution) {
  DramDevice dev(params());
  dev.access(0, 64, AccessType::kRead, 0, TrafficClass::kDemand);
  dev.access(4096, 64, AccessType::kWrite, 0, TrafficClass::kMigration);
  dev.access(8192, 128, AccessType::kRead, 0, TrafficClass::kMetadata);
  const auto& s = dev.stats();
  EXPECT_EQ(s.read_bytes[static_cast<int>(TrafficClass::kDemand)], 64u);
  EXPECT_EQ(s.write_bytes[static_cast<int>(TrafficClass::kMigration)], 64u);
  EXPECT_EQ(s.read_bytes[static_cast<int>(TrafficClass::kMetadata)], 128u);
  EXPECT_EQ(s.total_bytes(), 256u);
}

TEST_P(DramDeviceTest, EnergyAccumulates) {
  DramDevice dev(params());
  EXPECT_DOUBLE_EQ(dev.energy().dynamic_pj(), 0.0);
  dev.access(0, 64, AccessType::kRead, 0);
  const double after_read = dev.energy().dynamic_pj();
  EXPECT_GT(after_read, 0.0);
  dev.access(0, 64, AccessType::kWrite, ns_to_ticks(1000));
  EXPECT_GT(dev.energy().dynamic_pj(), after_read);
}

TEST_P(DramDeviceTest, WriteEnergyExceedsReadEnergyWhenIddSaysSo) {
  const auto p = params();
  EnergyModel e(p);
  if (p.idd4w > p.idd4r) {
    EXPECT_GT(e.write_burst_pj(), e.read_burst_pj());
  } else {
    EXPECT_LE(e.write_burst_pj(), e.read_burst_pj());
  }
}

TEST_P(DramDeviceTest, ResetStatsClearsCountersOnly) {
  DramDevice dev(params());
  dev.access(0, 64, AccessType::kRead, 0);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().accesses, 0u);
  EXPECT_EQ(dev.stats().total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(dev.energy().dynamic_pj(), 0.0);
  // Bank state is retained: the next access to row 0 is a row hit.
  const auto r = dev.access(64, 64, AccessType::kRead, ns_to_ticks(1000));
  (void)r;
  EXPECT_EQ(dev.stats().row_hits, 1u);
}

TEST_P(DramDeviceTest, ProbeReadyDoesNotMutate) {
  DramDevice dev(params());
  const Tick t1 = dev.probe_ready(0, 500);
  EXPECT_EQ(t1, 500u);
  EXPECT_EQ(dev.stats().accesses, 0u);
  dev.access(0, 64, AccessType::kRead, 500);
  EXPECT_GE(dev.probe_ready(0, 500), 500u);
}

TEST_P(DramDeviceTest, ConcurrentStreamsAreSlowerThanOne) {
  // Saturating one channel produces later completion than light load.
  DramDevice dev(params());
  Tick last_single = dev.access(0, 64, AccessType::kRead, 0).complete;
  DramDevice dev2(params());
  Tick last_loaded = 0;
  for (int i = 0; i < 64; ++i) {
    last_loaded =
        dev2.access(static_cast<Addr>(i) * 64, 64, AccessType::kRead, 0)
            .complete;
  }
  EXPECT_GT(last_loaded, last_single);
}

INSTANTIATE_TEST_SUITE_P(Devices, DramDeviceTest,
                         ::testing::Values("hbm", "ddr4"));

TEST(DramDevice, ChannelSpreadUnderPageStride) {
  // Page-aligned strides must not collapse onto one channel/bank (the
  // XOR-hash regression test): issue one beat per 64 KB page and check
  // completion time stays near the unloaded latency on average.
  DramDevice dev(DramTimingParams::hbm2_1gb());
  const auto p = dev.params();
  Tick max_complete = 0;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    const auto r =
        dev.access(static_cast<Addr>(i) * 64 * KiB, 64, AccessType::kRead, 0);
    max_complete = std::max(max_complete, r.complete);
  }
  // With 64 banks and hashing, 64 one-beat accesses at t=0 must finish in
  // far less than 64 serialized row activations on one bank.
  const Tick serialized =
      static_cast<Tick>(n) * (p.cycles_to_ticks(p.tRCD + p.tCAS) +
                              p.burst_ticks());
  EXPECT_LT(max_complete, serialized / 4);
}

TEST(DramDevice, EnergyFormulaValues) {
  const auto p = DramTimingParams::hbm2_1gb();
  EnergyModel e(p);
  // ACT/PRE energy: VDD * (IDD0*tRC - (IDD3N*tRAS + IDD2N*tRP)).
  const double trc_ns = 1.0 * (17 + 7);
  const double expected =
      1.2 * (65 * trc_ns - (55 * 17.0 + 40 * 7.0));
  EXPECT_NEAR(e.act_pre_pj(), expected, 1e-9);
  // Read burst: VDD * (IDD4R - IDD3N) * 2 ns.
  EXPECT_NEAR(e.read_burst_pj(), 1.2 * (390 - 55) * 2.0, 1e-9);
}

}  // namespace
}  // namespace bb::mem
