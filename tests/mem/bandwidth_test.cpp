// Bandwidth and contention properties of the DRAM device model: sustained
// sequential bandwidth approaches the pin rate, random access is
// bank-limited, HBM out-runs DDR4, and more channels mean more throughput.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/dram_device.h"

namespace bb::mem {
namespace {

/// Streams `total` bytes sequentially and returns achieved GB/s.
double sequential_bandwidth(DramDevice& dev, u64 total) {
  Tick done = 0;
  const u64 chunk = 4 * KiB;
  for (u64 a = 0; a < total; a += chunk) {
    done = dev.access(a % dev.capacity(), chunk, AccessType::kRead, 0)
               .complete;
  }
  return static_cast<double>(total) / ticks_to_s(done) / 1e9;
}

/// Random 64 B reads issued back-to-back; returns achieved GB/s.
double random_bandwidth(DramDevice& dev, u64 accesses) {
  Rng rng(3);
  Tick done = 0;
  for (u64 i = 0; i < accesses; ++i) {
    done = dev.access(rng.next_below(dev.capacity() / 64) * 64, 64,
                      AccessType::kRead, 0)
               .complete;
  }
  return static_cast<double>(accesses * 64) / ticks_to_s(done) / 1e9;
}

TEST(Bandwidth, SequentialApproachesPeak) {
  auto p = DramTimingParams::hbm2_1gb();
  p.refresh_enabled = false;
  DramDevice dev(p);
  const double bw = sequential_bandwidth(dev, 64 * MiB);
  const double peak = p.peak_bandwidth_bps() / 1e9;
  EXPECT_GT(bw, 0.60 * peak) << "achieved " << bw << " of " << peak;
  EXPECT_LE(bw, peak * 1.01);
}

TEST(Bandwidth, Ddr4SequentialApproachesPeak) {
  auto p = DramTimingParams::ddr4_3200_10gb();
  p.refresh_enabled = false;
  DramDevice dev(p);
  const double bw = sequential_bandwidth(dev, 64 * MiB);
  const double peak = p.peak_bandwidth_bps() / 1e9;
  EXPECT_GT(bw, 0.60 * peak);
  EXPECT_LE(bw, peak * 1.01);
}

TEST(Bandwidth, RandomIsBankLimited) {
  auto p = DramTimingParams::ddr4_3200_10gb();
  p.refresh_enabled = false;
  DramDevice dev(p);
  const double rand_bw = random_bandwidth(dev, 200'000);
  DramDevice dev2(p);
  const double seq_bw = sequential_bandwidth(dev2, 16 * MiB);
  EXPECT_LT(rand_bw, 0.7 * seq_bw)
      << "random " << rand_bw << " vs sequential " << seq_bw;
}

TEST(Bandwidth, HbmOutrunsDdr4OnRandomTraffic) {
  auto hp = DramTimingParams::hbm2_1gb();
  hp.refresh_enabled = false;
  auto dp = DramTimingParams::ddr4_3200_10gb();
  dp.refresh_enabled = false;
  DramDevice hbm(hp), ddr(dp);
  EXPECT_GT(random_bandwidth(hbm, 200'000), random_bandwidth(ddr, 200'000));
}

TEST(Bandwidth, MoreChannelsMoreThroughput) {
  auto p1 = DramTimingParams::hbm2_1gb();
  p1.refresh_enabled = false;
  auto p2 = p1;
  p2.channels = 4;  // half the channels
  DramDevice full(p1), half(p2);
  EXPECT_GT(random_bandwidth(full, 100'000), random_bandwidth(half, 100'000));
}

TEST(Bandwidth, LoadedLatencyExceedsUnloaded) {
  auto p = DramTimingParams::hbm2_1gb();
  p.refresh_enabled = false;
  DramDevice dev(p);
  const Tick unloaded = dev.access(0, 64, AccessType::kRead,
                                   ns_to_ticks(10'000)).latency();
  // Saturate, then measure.
  Rng rng(9);
  Tick t = ns_to_ticks(20'000);
  Tick last_latency = 0;
  for (int i = 0; i < 5000; ++i) {
    last_latency =
        dev.access(rng.next_below(dev.capacity() / 64) * 64, 64,
                   AccessType::kRead, t)
            .latency();
  }
  EXPECT_GT(last_latency, unloaded);
}

TEST(Bandwidth, WriteStreamsAtBurstRateToo) {
  auto p = DramTimingParams::hbm2_1gb();
  p.refresh_enabled = false;
  DramDevice dev(p);
  Tick done = 0;
  for (u64 a = 0; a < 16 * MiB; a += 4 * KiB) {
    done = dev.access(a, 4 * KiB, AccessType::kWrite, 0).complete;
  }
  const double bw = (16.0 * MiB) / ticks_to_s(done) / 1e9;
  EXPECT_GT(bw, 0.5 * p.peak_bandwidth_bps() / 1e9);
}

}  // namespace
}  // namespace bb::mem
