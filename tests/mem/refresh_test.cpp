#include <gtest/gtest.h>

#include "mem/dram_device.h"

namespace bb::mem {
namespace {

DramTimingParams with_refresh(bool enabled) {
  auto p = DramTimingParams::hbm2_1gb();
  p.refresh_enabled = enabled;
  return p;
}

TEST(Refresh, CountsWindows) {
  DramDevice dev(with_refresh(true));
  // Access well past several tREFI intervals.
  dev.access(0, 64, AccessType::kRead, ns_to_ticks(20'000));
  EXPECT_GE(dev.stats().refreshes, 4u);  // ~20 us / 3.9 us
}

TEST(Refresh, DisabledCountsNothing) {
  DramDevice dev(with_refresh(false));
  dev.access(0, 64, AccessType::kRead, ns_to_ticks(100'000));
  EXPECT_EQ(dev.stats().refreshes, 0u);
}

TEST(Refresh, ClosesOpenRows) {
  DramDevice dev(with_refresh(true));
  dev.access(0, 64, AccessType::kRead, 0);  // opens a row
  // After a refresh boundary the row must be re-activated (row_empty).
  dev.access(64, 64, AccessType::kRead, ns_to_ticks(5'000));
  EXPECT_EQ(dev.stats().row_hits, 0u);
  EXPECT_EQ(dev.stats().row_empty, 2u);
}

TEST(Refresh, AccessDuringWindowIsDelayed) {
  auto p = with_refresh(true);
  p.trefi_ns = 1000;
  p.trfc_ns = 500;
  DramDevice dev(p);
  // First refresh at 1 us; an access issued at exactly 1 us waits ~500 ns
  // extra compared to an unrefreshed device.
  DramDevice no_ref(with_refresh(false));
  const auto delayed = dev.access(0, 64, AccessType::kRead,
                                  ns_to_ticks(1000));
  const auto clean = no_ref.access(0, 64, AccessType::kRead,
                                   ns_to_ticks(1000));
  EXPECT_GE(delayed.complete, clean.complete + ns_to_ticks(400));
}

TEST(Refresh, IdleGapsFastForwardWithoutStall) {
  auto p = with_refresh(true);
  DramDevice dev(p);
  // A very long idle gap: refreshes during idle must not delay the access
  // by more than one tRFC.
  const Tick t = ns_to_ticks(100'000'000);  // 100 ms idle
  const auto r = dev.access(0, 64, AccessType::kRead, t);
  EXPECT_LT(r.latency(), ns_to_ticks(1000));
  EXPECT_GT(dev.stats().refreshes, 20'000u);  // ~100ms / 3.9us
}

TEST(Refresh, FastForwardCountsEverySkippedWindow) {
  // Round-number timing so the expected count is exact: with tREFI = 1 us,
  // an access issued at t = 1 ms must see floor(t / tREFI) = 1000 refreshes
  // — the fast-forward path counts the idle-window refreshes it skips and
  // the resume loop performs the final one(s) for real.
  auto p = with_refresh(true);
  p.trefi_ns = 1000;
  p.trfc_ns = 100;
  DramDevice dev(p);
  dev.access(0, 64, AccessType::kRead, ns_to_ticks(1'000'000));
  EXPECT_EQ(dev.stats().refreshes, 1000u);
}

TEST(Refresh, FastForwardRestoresBankStateAfterIdle) {
  auto p = with_refresh(true);
  p.trefi_ns = 1000;
  p.trfc_ns = 100;
  DramDevice dev(p);
  dev.access(0, 64, AccessType::kRead, 0);  // opens a row
  // Long idle stretch: the skipped refreshes must leave the bank with no
  // open row (refresh precharges), so the re-access is row_empty, not a
  // row hit against stale open-row state.
  const auto r = dev.access(0, 64, AccessType::kRead,
                            ns_to_ticks(10'000'000));
  EXPECT_EQ(dev.stats().row_hits, 0u);
  EXPECT_EQ(dev.stats().row_empty, 2u);
  // ready_at resumed correctly: the access pays at most one in-progress
  // refresh window on top of a normal row-empty access, never the sum of
  // the thousands of skipped windows.
  DramDevice clean(with_refresh(false));
  const auto c = clean.access(0, 64, AccessType::kRead, 0);
  EXPECT_LE(r.latency(), c.latency() + ns_to_ticks(p.trfc_ns));

  // The bank is live again: an immediate same-row re-access (before the
  // next tREFI boundary) is a row hit with normal hit latency.
  const auto follow = dev.access(0, 64, AccessType::kRead, r.complete);
  EXPECT_EQ(dev.stats().row_hits, 1u);
  EXPECT_LT(follow.latency(), c.latency());
}

TEST(Turnaround, WriteToReadPaysWtr) {
  auto p = with_refresh(false);
  DramDevice dev(p);
  const auto w = dev.access(0, 64, AccessType::kWrite, 0);
  // Read right after the write to the same bank: must wait tWTR past the
  // write burst.
  const auto r = dev.access(64, 64, AccessType::kRead, w.complete);
  DramDevice dev2(p);
  const auto r1 = dev2.access(0, 64, AccessType::kRead, 0);
  const auto r2 = dev2.access(64, 64, AccessType::kRead, r1.complete);
  EXPECT_GT(r.latency(), r2.latency());
}

}  // namespace
}  // namespace bb::mem
