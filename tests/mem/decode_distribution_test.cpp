// Statistical guards for the address-hashing in the DRAM decode: common
// stride patterns (page frames, blocks, lines) must spread across channels
// and banks instead of aliasing onto a few — the regression that once
// serialized every page-aligned fill onto one bank.
#include <gtest/gtest.h>

#include <map>

#include "mem/dram_device.h"

namespace bb::mem {
namespace {

/// Issues one beat per address and returns how concentrated the busiest
/// resource was, using the row-state counters as a proxy: we measure by
/// timing instead — total completion spread for n accesses at t=0.
Tick completion_spread(DramDevice& dev, u64 stride, int n) {
  Tick max_complete = 0;
  for (int i = 0; i < n; ++i) {
    const auto r = dev.access(static_cast<Addr>(i) * stride, 64,
                              AccessType::kRead, 0);
    max_complete = std::max(max_complete, r.complete);
  }
  return max_complete;
}

class StrideSpreadTest : public ::testing::TestWithParam<u64> {};

TEST_P(StrideSpreadTest, HbmStridesDoNotSerialize) {
  auto p = DramTimingParams::hbm2_1gb();
  p.refresh_enabled = false;
  DramDevice dev(p);
  const int n = 64;
  const Tick spread = completion_spread(dev, GetParam(), n);
  // Fully serialized on one bank would cost ~n * (tRCD + tCAS + burst).
  const Tick serialized =
      static_cast<Tick>(n) *
      (p.cycles_to_ticks(p.tRCD + p.tCAS) + p.burst_ticks());
  EXPECT_LT(spread, serialized / 3)
      << "stride " << GetParam() << " aliases onto too few banks";
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSpreadTest,
                         ::testing::Values(u64{64}, u64{2 * KiB},
                                           u64{4 * KiB}, u64{64 * KiB},
                                           u64{96 * KiB}, u64{128 * KiB},
                                           u64{1 * MiB}));

TEST(DecodeDistribution, HashedStridesPerformLikeSequential) {
  // The whole point of the XOR channel/bank hash: strided patterns spread
  // as well as sequential ones. 512 beats of each must complete within a
  // factor of two of each other (no hash -> the strided pattern would be
  // an order of magnitude slower on one channel).
  auto p = DramTimingParams::hbm2_1gb();
  p.refresh_enabled = false;
  DramDevice a(p);
  DramDevice b(p);
  Tick seq_done = 0;
  for (Addr x = 0; x < 32 * KiB; x += 64) {
    seq_done = a.access(x, 64, AccessType::kRead, 0).complete;
  }
  Tick strided_done = 0;
  for (int i = 0; i < 512; ++i) {
    strided_done =
        b.access(static_cast<Addr>(i) * 4 * KiB, 64, AccessType::kRead, 0)
            .complete;
  }
  EXPECT_LT(strided_done, 2 * seq_done);
  EXPECT_LT(seq_done, 2 * strided_done);
}

TEST(DecodeDistribution, CapacityWrapIsSafe) {
  auto p = DramTimingParams::hbm2_1gb();
  DramDevice dev(p);
  // Accesses at and beyond capacity must not crash and must account bytes.
  dev.access(p.capacity_bytes - 64, 64, AccessType::kRead, 0);
  dev.access(p.capacity_bytes - 32, 64, AccessType::kWrite, 0);
  EXPECT_GE(dev.stats().total_bytes(), 128u);
}

}  // namespace
}  // namespace bb::mem
