#include "mem/timing.h"

#include <gtest/gtest.h>

namespace bb::mem {
namespace {

TEST(Timing, Hbm2MatchesTableI) {
  const auto p = DramTimingParams::hbm2_1gb();
  EXPECT_EQ(p.capacity_bytes, 1 * GiB);
  EXPECT_EQ(p.channels, 8u);
  EXPECT_EQ(p.banks_per_channel, 8u);
  EXPECT_EQ(p.bus_bits, 128u);
  EXPECT_EQ(p.interleave_bytes, 512u);
  EXPECT_EQ(p.tCAS, 7u);
  EXPECT_EQ(p.tRCD, 7u);
  EXPECT_EQ(p.tRP, 7u);
  EXPECT_DOUBLE_EQ(p.vdd, 1.2);
  EXPECT_DOUBLE_EQ(p.idd0, 65);
  EXPECT_DOUBLE_EQ(p.idd2p, 28);
  EXPECT_DOUBLE_EQ(p.idd2n, 40);
  EXPECT_DOUBLE_EQ(p.idd3p, 40);
  EXPECT_DOUBLE_EQ(p.idd3n, 55);
  EXPECT_DOUBLE_EQ(p.idd4w, 500);
  EXPECT_DOUBLE_EQ(p.idd4r, 390);
  EXPECT_DOUBLE_EQ(p.idd5, 250);
  EXPECT_DOUBLE_EQ(p.idd6, 31);
}

TEST(Timing, Ddr4MatchesTableI) {
  const auto p = DramTimingParams::ddr4_3200_10gb();
  EXPECT_EQ(p.capacity_bytes, 10 * GiB);
  EXPECT_EQ(p.channels, 2u);
  EXPECT_EQ(p.banks_per_channel, 8u);
  EXPECT_EQ(p.bus_bits, 64u);
  EXPECT_EQ(p.tCAS, 22u);
  EXPECT_EQ(p.tRCD, 22u);
  EXPECT_EQ(p.tRP, 22u);
  EXPECT_DOUBLE_EQ(p.vdd, 1.2);
  EXPECT_DOUBLE_EQ(p.idd0, 52);
  EXPECT_DOUBLE_EQ(p.idd4w, 130);
  EXPECT_DOUBLE_EQ(p.idd4r, 143);
}

TEST(Timing, BurstBytesIs64ForBoth) {
  // 128-bit x BL4 = 64 B (HBM2); 64-bit x BL8 = 64 B (DDR4).
  EXPECT_EQ(DramTimingParams::hbm2_1gb().burst_bytes(), 64u);
  EXPECT_EQ(DramTimingParams::ddr4_3200_10gb().burst_bytes(), 64u);
}

TEST(Timing, BurstTicks) {
  // HBM2: BL4 at DDR = 2 cycles of 1 ns = 2000 ticks.
  EXPECT_EQ(DramTimingParams::hbm2_1gb().burst_ticks(), 2000u);
  // DDR4-3200: BL8 at DDR = 4 cycles of 0.625 ns = 2500 ticks.
  EXPECT_EQ(DramTimingParams::ddr4_3200_10gb().burst_ticks(), 2500u);
}

TEST(Timing, PeakBandwidth) {
  // HBM2: 8 ch x 16 B x 2 GT/s = 256 GB/s.
  EXPECT_NEAR(DramTimingParams::hbm2_1gb().peak_bandwidth_bps(), 256e9,
              1e9);
  // DDR4-3200: 2 ch x 8 B x 3.2 GT/s = 51.2 GB/s.
  EXPECT_NEAR(DramTimingParams::ddr4_3200_10gb().peak_bandwidth_bps(),
              51.2e9, 1e9);
}

TEST(Timing, CyclesToTicks) {
  const auto h = DramTimingParams::hbm2_1gb();
  EXPECT_EQ(h.cycles_to_ticks(7), 7000u);  // 7 cycles at 1 ns
  const auto d = DramTimingParams::ddr4_3200_10gb();
  EXPECT_EQ(d.cycles_to_ticks(22), 13750u);  // 22 x 0.625 ns
}

TEST(Timing, RowsPerBank) {
  const auto h = DramTimingParams::hbm2_1gb();
  // 1 GiB / 8 ch / 8 banks / 2 KiB rows = 8192 rows.
  EXPECT_EQ(h.rows_per_bank(), 8192u);
}

}  // namespace
}  // namespace bb::mem
