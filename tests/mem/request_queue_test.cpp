// Request-queue layer and PR-6 timing bugfixes.
//
// Covers the three gated DRAM-timing fixes (phantom cold-bank tRTW,
// row-ID aliasing in decode(), refresh-blind probe_ready) and the
// scheduler proper: FR-FCFS arbitration, write-drain hysteresis and MSHR
// read coalescing. The fixes are exercised through QueueConfig::timing_fixes
// without queues, proving the two switches are independent.
#include "mem/request_queue.h"

#include <gtest/gtest.h>

#include "mem/dram_device.h"

namespace bb::mem {
namespace {

DramTimingParams hbm_with(QueueConfig q) {
  DramTimingParams p = DramTimingParams::hbm2_1gb();
  p.queue = q;
  return p;
}

QueueConfig fixes_only() {
  QueueConfig q;  // queues off...
  q.timing_fixes = true;  // ...fixes on
  return q;
}

// --- Bugfix 1: phantom tRTW on a cold bank -------------------------------

TEST(TimingFixes, ColdBankWriteSkipsPhantomTurnaround) {
  // A freshly initialized bank has never issued a read, so the first write
  // must not pay the read-to-write turnaround. Legacy charged it anyway.
  DramDevice legacy(hbm_with(QueueConfig::off()));
  DramDevice fixed(hbm_with(fixes_only()));
  const auto p = legacy.params();

  const auto rl = legacy.access(0, 64, AccessType::kWrite, 1000);
  const auto rf = fixed.access(0, 64, AccessType::kWrite, 1000);
  EXPECT_EQ(rl.complete - rf.complete, p.cycles_to_ticks(p.tRTW));
  // The fixed cold write is exactly activate + CAS + burst.
  EXPECT_EQ(rf.complete - 1000,
            p.cycles_to_ticks(p.tRCD) + p.cycles_to_ticks(p.tCAS) +
                p.burst_ticks());
}

TEST(TimingFixes, WriteAfterReadStillPaysTurnaround) {
  // The fix only removes the phantom charge: a genuine read-to-write
  // transition keeps its tRTW.
  DramDevice dev(hbm_with(fixes_only()));
  const auto p = dev.params();
  const auto rd = dev.access(0, 64, AccessType::kRead, 1000);
  // Same row, comfortably after the read so bank and bus are idle.
  const Tick later = rd.complete + ns_to_ticks(50);
  const auto wr = dev.access(64, 64, AccessType::kWrite, later);
  EXPECT_EQ(wr.complete - later,
            p.cycles_to_ticks(p.tRTW) + p.cycles_to_ticks(p.tCAS) +
                p.burst_ticks());
}

// --- Bugfix 2: row-ID aliasing in decode() -------------------------------

// With a non-power-of-two bank count the XOR bank hash can land two
// distinct rows of one /banks quotient group in the same bank; the legacy
// row identity (row_index / banks) is then equal for both, so the second
// access registered a phantom open-row hit on a different physical row.
TEST(TimingFixes, AliasedRowsNoLongerCountPhantomHits) {
  DramTimingParams p = DramTimingParams::hbm2_1gb();
  p.name = "alias-test";
  p.channels = 1;
  p.banks_per_channel = 6;  // non-pow2: the hash is not a bijection
  p.interleave_bytes = 512;
  p.row_bytes = 2 * KiB;
  p.capacity_bytes = 1 * MiB;

  DramDevice legacy([&] {
    DramTimingParams q = p;
    q.queue = QueueConfig::off();
    return q;
  }());
  DramDevice fixed([&] {
    DramTimingParams q = p;
    q.queue = fixes_only();
    return q;
  }());

  // Brute-force a colliding pair: two different rows, same legacy row id
  // (same /banks quotient) and same hashed bank.
  const u64 rows = p.capacity_bytes / p.row_bytes;
  Addr a1 = 0, a2 = 0;
  bool found = false;
  for (u64 r1 = 0; r1 < rows && !found; ++r1) {
    for (u64 r2 = r1 + 1; r2 < rows && !found; ++r2) {
      if (r1 / p.banks_per_channel != r2 / p.banks_per_channel) continue;
      const auto d1 = legacy.decode_addr(r1 * p.row_bytes);
      const auto d2 = legacy.decode_addr(r2 * p.row_bytes);
      if (d1.bank != d2.bank) continue;
      a1 = r1 * p.row_bytes;
      a2 = r2 * p.row_bytes;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no aliasing pair in this geometry";

  // Same pair, legacy identity: equal rows (the bug). Fixed: distinct.
  EXPECT_EQ(legacy.decode_addr(a1).row, legacy.decode_addr(a2).row);
  EXPECT_NE(fixed.decode_addr(a1).row, fixed.decode_addr(a2).row);

  const auto l1 = legacy.access(a1, 64, AccessType::kRead, 1000);
  legacy.access(a2, 64, AccessType::kRead, l1.complete + ns_to_ticks(100));
  EXPECT_EQ(legacy.stats().row_hits, 1u);  // phantom hit

  const auto f1 = fixed.access(a1, 64, AccessType::kRead, 1000);
  fixed.access(a2, 64, AccessType::kRead, f1.complete + ns_to_ticks(100));
  EXPECT_EQ(fixed.stats().row_hits, 0u);
  EXPECT_EQ(fixed.stats().row_misses, 1u);  // real conflict
}

// --- Bugfix 3: refresh-blind probe_ready ---------------------------------

TEST(TimingFixes, ProbeReadyIsRefreshAware) {
  DramDevice legacy(hbm_with(QueueConfig::off()));
  DramDevice fixed(hbm_with(fixes_only()));
  const auto p = legacy.params();
  // A tick just inside the first refresh window [tREFI, tREFI + tRFC).
  const Tick window_start = ns_to_ticks(p.trefi_ns);
  const Tick window_end = window_start + ns_to_ticks(p.trfc_ns);
  const Tick inside = window_start + 1;

  EXPECT_EQ(legacy.probe_ready(0, inside), inside);      // the bug
  EXPECT_EQ(fixed.probe_ready(0, inside), window_end);   // the fix

  // The probe stays const: no access, beat or refresh was recorded, and
  // probing twice returns the same answer.
  EXPECT_EQ(fixed.stats().accesses, 0u);
  EXPECT_EQ(fixed.stats().refreshes, 0u);
  EXPECT_EQ(fixed.probe_ready(0, inside), window_end);

  // Outside any window the fixed probe is unchanged.
  EXPECT_EQ(fixed.probe_ready(0, 500), 500u);
}

// --- FR-FCFS arbitration -------------------------------------------------

TEST(ChannelSchedulerTest, FrFcfsPrefersOldestRowHit) {
  const std::vector<ChannelScheduler::Candidate> c = {
      {false, 100}, {true, 200}, {true, 300}, {false, 50}};
  // Index 3 is oldest overall, but index 1 is the oldest open-row hit.
  EXPECT_EQ(ChannelScheduler::pick_fr_fcfs(c), 1u);
}

TEST(ChannelSchedulerTest, FrFcfsFallsBackToOldestMiss) {
  const std::vector<ChannelScheduler::Candidate> c = {
      {false, 100}, {false, 50}, {false, 75}};
  EXPECT_EQ(ChannelScheduler::pick_fr_fcfs(c), 1u);
}

// --- Write-drain hysteresis ----------------------------------------------

/// Minimal backend: one channel, no open rows, fixed 100-tick service.
class RecordingBackend : public QueueBackend {
 public:
  u32 channel_of(Addr) const override { return 0; }
  bool open_row_hit(Addr addr) const override {
    return addr == open_row_addr;
  }
  Issue issue(Addr addr, u64, AccessType, Tick now) override {
    issued.push_back(addr);
    return {now, now + 100};
  }
  std::vector<Addr> issued;
  Addr open_row_addr = kAddrInvalid;
};

QueueConfig small_queue() {
  QueueConfig q = QueueConfig::fr_fcfs();
  q.queue_depth = 8;
  q.write_high_watermark = 4;
  q.write_low_watermark = 2;
  return q;
}

TEST(ChannelSchedulerTest, WritesPostBelowHighWatermark) {
  ChannelScheduler sched(small_queue(), 1);
  RecordingBackend dev;
  for (int i = 0; i < 3; ++i) {
    const auto r = sched.on_write(static_cast<Addr>(i) * 64, 64,
                                  1000 + static_cast<Tick>(i), dev);
    // Posted semantics: accepted immediately, no device issue.
    EXPECT_EQ(r.start, 1000 + static_cast<Tick>(i));
    EXPECT_EQ(r.complete, r.start);
  }
  EXPECT_TRUE(dev.issued.empty());
  EXPECT_EQ(sched.write_queue_len(0), 3u);
  EXPECT_EQ(sched.stats().write_drain_count, 0u);
}

TEST(ChannelSchedulerTest, HighWatermarkDrainsToLowWatermark) {
  ChannelScheduler sched(small_queue(), 1);
  RecordingBackend dev;
  for (int i = 0; i < 4; ++i) {
    sched.on_write(static_cast<Addr>(i) * 64, 64,
                   1000 + static_cast<Tick>(i), dev);
  }
  // The 4th write crossed hi=4: one episode drained down to lo=2.
  EXPECT_EQ(sched.stats().write_drain_count, 1u);
  EXPECT_EQ(sched.write_queue_len(0), 2u);
  EXPECT_EQ(dev.issued.size(), 2u);
  EXPECT_EQ(sched.stats().writes_drained, 2u);
  // Oldest-first under all-miss FR-FCFS.
  EXPECT_EQ(dev.issued[0], 0u);
  EXPECT_EQ(dev.issued[1], 64u);
}

TEST(ChannelSchedulerTest, DrainPrefersOpenRowHitOverOlderWrite) {
  ChannelScheduler sched(small_queue(), 1);
  RecordingBackend dev;
  dev.open_row_addr = 2 * 64;  // the 3rd (youngest but row-hitting) write
  for (int i = 0; i < 4; ++i) {
    sched.on_write(static_cast<Addr>(i) * 64, 64,
                   1000 + static_cast<Tick>(i), dev);
  }
  ASSERT_EQ(dev.issued.size(), 2u);
  EXPECT_EQ(dev.issued[0], 2u * 64);  // row hit first...
  EXPECT_EQ(dev.issued[1], 0u);       // ...then the oldest miss
}

TEST(ChannelSchedulerTest, DrainAllFlushesWithoutCountingAnEpisode) {
  ChannelScheduler sched(small_queue(), 1);
  RecordingBackend dev;
  for (int i = 0; i < 3; ++i) {
    sched.on_write(static_cast<Addr>(i) * 64, 64, 1000, dev);
  }
  sched.drain_all(2000, dev);
  EXPECT_EQ(sched.write_queue_len(0), 0u);
  EXPECT_EQ(dev.issued.size(), 3u);
  EXPECT_EQ(sched.stats().write_drain_count, 0u);
  EXPECT_EQ(sched.stats().writes_drained, 3u);
}

// --- MSHR coalescing -----------------------------------------------------

TEST(ChannelSchedulerTest, SameBlockReadsCoalesceIntoOneFill) {
  DramDevice dev(hbm_with(QueueConfig::fr_fcfs()));
  const int n = 4;
  AccessResult first{};
  for (int i = 0; i < n; ++i) {
    const auto r = dev.access(0, 64, AccessType::kRead, 1000);
    if (i == 0) {
      first = r;
    } else {
      // Piggybacked reads ride the in-flight fill's completion.
      EXPECT_EQ(r.complete, first.complete);
    }
  }
  ASSERT_NE(dev.queue_stats(), nullptr);
  EXPECT_EQ(dev.queue_stats()->reads_issued, 1u);
  EXPECT_EQ(dev.queue_stats()->reads_coalesced, 3u);
  // One beat moved, one block of bytes accounted — no amplification.
  EXPECT_EQ(dev.stats().beats, 1u);
  EXPECT_EQ(dev.stats().read_bytes[0], 64u);
  // Every request still counts as an access.
  EXPECT_EQ(dev.stats().accesses, 4u);
}

TEST(ChannelSchedulerTest, DifferentBlocksDoNotCoalesce) {
  DramDevice dev(hbm_with(QueueConfig::fr_fcfs()));
  dev.access(0, 64, AccessType::kRead, 1000);
  dev.access(4096, 64, AccessType::kRead, 1000);
  EXPECT_EQ(dev.queue_stats()->reads_issued, 2u);
  EXPECT_EQ(dev.queue_stats()->reads_coalesced, 0u);
}

TEST(ChannelSchedulerTest, CompletedFillsDoNotServeLaterReads) {
  DramDevice dev(hbm_with(QueueConfig::fr_fcfs()));
  const auto r1 = dev.access(0, 64, AccessType::kRead, 1000);
  // Well after the fill landed: the MSHR has expired, a fresh fill issues.
  dev.access(0, 64, AccessType::kRead, r1.complete + ns_to_ticks(100));
  EXPECT_EQ(dev.queue_stats()->reads_issued, 2u);
  EXPECT_EQ(dev.queue_stats()->reads_coalesced, 0u);
}

// --- Device integration --------------------------------------------------

TEST(ChannelSchedulerTest, DrainQueuesFlushesPostedWrites) {
  QueueConfig q = QueueConfig::fr_fcfs();
  DramDevice dev(hbm_with(q));
  const u64 beats_before = dev.stats().beats;
  const auto r = dev.access(0, 64, AccessType::kWrite, 1000);
  // Posted: accepted instantly, no beat yet.
  EXPECT_EQ(r.complete, 1000u);
  EXPECT_EQ(dev.stats().beats, beats_before);
  EXPECT_EQ(dev.stats().write_bytes[0], 64u);  // bytes account at arrival
  dev.drain_queues(ns_to_ticks(10));
  EXPECT_EQ(dev.stats().beats, beats_before + 1);
}

TEST(ChannelSchedulerTest, ResetStatsClearsSchedulerCounters) {
  DramDevice dev(hbm_with(QueueConfig::fr_fcfs()));
  dev.access(0, 64, AccessType::kRead, 1000);
  dev.reset_stats();
  EXPECT_EQ(dev.queue_stats()->reads_issued, 0u);
  EXPECT_EQ(dev.queue_stats()->queue_length_samples, 0u);
}

}  // namespace
}  // namespace bb::mem
