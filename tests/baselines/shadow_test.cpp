// Functional read-your-writes shadow test for the baseline designs whose
// data movement all flows through the controller framework's move_data /
// swap_data engine (so the movement hook sees every physical copy):
// Banshee, Unison, Chameleon, Hybrid2, PoM and MemPod.
//
// Ordering: demand service happens before the movements an access
// triggers, so hook events are queued during each access and applied to
// the shadow AFTER the demand value is stamped (writes) or checked
// (reads). Alloy Cache is excluded: its TAD fills are direct device
// accesses by design (tag and data are one unit), not engine copies.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"

namespace bb::baselines {
namespace {

class Shadow {
 public:
  void apply(const hmm::MoveEvent& e) {
    const u64 lines = (e.bytes + 63) / 64;
    for (u64 i = 0; i < lines; ++i) {
      auto& src = e.src_hbm ? hbm_ : dram_;
      auto& dst = e.dst_hbm ? hbm_ : dram_;
      const u64 sk = e.src_addr / 64 + i;
      const u64 dk = e.dst_addr / 64 + i;
      if (e.is_swap) {
        std::swap(src[sk], dst[dk]);
      } else {
        dst[dk] = src.count(sk) ? src[sk] : 0;
      }
    }
  }
  void stamp(bool in_hbm, Addr phys, u64 token) {
    (in_hbm ? hbm_ : dram_)[phys / 64] = token;
  }
  u64 value(bool in_hbm, Addr phys) const {
    const auto& m = in_hbm ? hbm_ : dram_;
    const auto it = m.find(phys / 64);
    return it == m.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<u64, u64> hbm_;
  std::unordered_map<u64, u64> dram_;
};

class BaselineShadowTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineShadowTest, ReadYourWrites) {
  auto hp = mem::DramTimingParams::hbm2_1gb();
  hp.capacity_bytes = 128 * MiB;  // Hybrid2 reserves a fixed 64 MiB cHBM slice
  auto dp = mem::DramTimingParams::ddr4_3200_10gb();
  dp.capacity_bytes = 640 * MiB;
  mem::DramDevice hbm(hp), dram(dp);
  hmm::PagingConfig paging;
  paging.enabled = false;
  auto c = make_design(GetParam(), hbm, dram, paging);

  Shadow shadow;
  std::vector<hmm::MoveEvent> pending;
  c->set_movement_hook(
      [&](const hmm::MoveEvent& e) { pending.push_back(e); });

  std::unordered_map<u64, u64> expected;  // logical line -> token
  Rng rng(31);
  Tick now = 0;
  u64 token = 0;
  u64 checked = 0;
  // MemPod runs its interval migrations at the START of an access; absorb
  // them with a token-free tick access so the real access's events are
  // purely post-demand (the ordering the apply-after-check logic assumes).
  // (intervals are per pod, so tick one page in each of MemPod's 16 pods —
  // consecutive 2 KB pages hit consecutive pods).
  const Addr tick_addr = 600 * MiB;
  for (int i = 0; i < 30000; ++i) {
    now += rng.next_below(50000) + 1000;
    pending.clear();
    for (int k = 0; k < 16; ++k) {
      c->access(tick_addr + static_cast<Addr>(k) * 2 * KiB,
                AccessType::kRead, now);
    }
    for (const auto& e : pending) shadow.apply(e);
    // Concentrated range so lines are revisited and movement triggers.
    const Addr a = (rng.next_bool(0.7) ? rng.next_below(1 * MiB / 64)
                                       : rng.next_below(64 * MiB / 64)) *
                   64;
    const bool write = rng.next_bool(0.4);
    pending.clear();
    const auto r =
        c->access(a, write ? AccessType::kWrite : AccessType::kRead, now);
    if (write) {
      ++token;
      expected[a / 64] = token;
      shadow.stamp(r.served_by_hbm, r.phys_addr, token);
    } else if (const auto it = expected.find(a / 64);
               it != expected.end()) {
      ASSERT_EQ(shadow.value(r.served_by_hbm, r.phys_addr), it->second)
          << GetParam() << " stale read of line " << a << " at iteration "
          << i;
      ++checked;
    }
    for (const auto& e : pending) shadow.apply(e);
  }
  EXPECT_GT(checked, 2000u);
}

INSTANTIATE_TEST_SUITE_P(Designs, BaselineShadowTest,
                         ::testing::Values("Banshee", "UC", "Chameleon",
                                           "Hybrid2", "PoM", "MemPod",
                                           "SILC-FM"));

}  // namespace
}  // namespace bb::baselines
