// Tests for the SILC-FM extension baseline (reference [7]).
#include <gtest/gtest.h>

#include "baselines/silcfm.h"

namespace bb::baselines {
namespace {

class SilcFmFixture : public ::testing::Test {
 protected:
  SilcFmFixture()
      : hbm_([] {
          auto p = mem::DramTimingParams::hbm2_1gb();
          p.capacity_bytes = 64 * MiB;
          return p;
        }()),
        dram_([] {
          auto p = mem::DramTimingParams::ddr4_3200_10gb();
          p.capacity_bytes = 640 * MiB;
          return p;
        }()) {}

  mem::DramDevice hbm_;
  mem::DramDevice dram_;
};

TEST_F(SilcFmFixture, AllVisible) {
  SilcFmController c(hbm_, dram_);
  EXPECT_EQ(c.paging().config().visible_bytes,
            hbm_.capacity() + dram_.capacity());
}

TEST_F(SilcFmFixture, NativeBlockServedNear) {
  SilcFmController c(hbm_, dram_);
  // In-set block index m_ is the near-native block; its global block id is
  // m_ * sets_ + set (strided grouping).
  const u64 m = c.blocks_per_set() - 1;
  const Addr a = m * c.set_count() * 2 * KiB;  // set 0, block m
  EXPECT_TRUE(c.access(a, AccessType::kRead, 0).served_by_hbm);
}

TEST_F(SilcFmFixture, HotFarBlockPairsAndInterleavesSubblocks) {
  SilcFmController c(hbm_, dram_);
  // Hammer far block 0 of set 0 until it pairs; subsequent accesses to the
  // same subblock must serve from near memory.
  Tick now = 0;
  bool near_hit = false;
  for (int i = 0; i < 16 && !near_hit; ++i) {
    now += 100000;
    near_hit = c.access(0, AccessType::kRead, now).served_by_hbm;
  }
  EXPECT_TRUE(near_hit);
  EXPECT_GT(c.stats().swaps, 0u);
  // A different subblock of the paired block swaps in on first demand.
  now += 100000;
  const auto miss = c.access(128, AccessType::kRead, now);
  EXPECT_FALSE(miss.served_by_hbm);  // served far, then interleaved
  now += 100000;
  EXPECT_TRUE(c.access(128, AccessType::kRead, now).served_by_hbm);
}

TEST_F(SilcFmFixture, DisplacedNativeSubblockServedFar) {
  SilcFmController c(hbm_, dram_);
  Tick now = 0;
  // Pair far block 0 and interleave its subblock 0.
  for (int i = 0; i < 16; ++i) {
    now += 100000;
    c.access(0, AccessType::kRead, now);
  }
  // The native block's subblock 0 was swapped out to the far frame.
  const u64 m = c.blocks_per_set() - 1;
  const Addr native0 = m * c.set_count() * 2 * KiB;
  now += 100000;
  const auto r = c.access(native0, AccessType::kRead, now);
  EXPECT_FALSE(r.served_by_hbm);
  // An untouched native subblock is still near.
  now += 100000;
  EXPECT_TRUE(
      c.access(native0 + 1024, AccessType::kRead, now).served_by_hbm);
}

TEST_F(SilcFmFixture, RepairingRestoresPreviousPair) {
  SilcFmController c(hbm_, dram_);
  Tick now = 0;
  for (int i = 0; i < 16; ++i) {  // pair block 0
    now += 100000;
    c.access(0, AccessType::kRead, now);
  }
  const u64 swaps_before = c.stats().swaps;
  // Hammer far block 1 of set 0 (global id = sets_) until it takes over.
  const Addr b1 = static_cast<Addr>(c.set_count()) * 2 * KiB;
  for (int i = 0; i < 64; ++i) {
    now += 100000;
    c.access(b1, AccessType::kRead, now);
  }
  EXPECT_GT(c.stats().mode_switches, 1u);  // re-pairing happened
  EXPECT_GT(c.stats().swaps, swaps_before);
  // Block 0's subblock 0 is back in its own frame: far access again.
  now += 100000;
  EXPECT_FALSE(c.access(0, AccessType::kRead, now).served_by_hbm);
}

TEST_F(SilcFmFixture, MetadataExceedsSram) {
  SilcFmController c(hbm_, dram_);
  EXPECT_GT(c.metadata_sram_bytes(), 512 * KiB);
}

}  // namespace
}  // namespace bb::baselines
