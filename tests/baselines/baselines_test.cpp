#include <gtest/gtest.h>

#include "baselines/alloy_cache.h"
#include "baselines/banshee.h"
#include "baselines/chameleon.h"
#include "baselines/factory.h"
#include "baselines/hybrid2.h"
#include "baselines/unison_cache.h"
#include "common/rng.h"

namespace bb::baselines {
namespace {

mem::DramTimingParams small_hbm() {
  auto p = mem::DramTimingParams::hbm2_1gb();
  p.capacity_bytes = 128 * MiB;
  return p;
}
mem::DramTimingParams small_dram() {
  auto p = mem::DramTimingParams::ddr4_3200_10gb();
  p.capacity_bytes = 1 * GiB;
  return p;
}

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() : hbm_(small_hbm()), dram_(small_dram()) {}
  mem::DramDevice hbm_;
  mem::DramDevice dram_;
};

// ------------------------------------------------------------ Alloy Cache

TEST_F(BaselineFixture, AlloyMissFillsThenHits) {
  AlloyCacheController c(hbm_, dram_);
  const auto miss = c.access(0x1000, AccessType::kRead, 1000);
  EXPECT_FALSE(miss.served_by_hbm);
  const auto hit = c.access(0x1000, AccessType::kRead, miss.complete + 1000);
  EXPECT_TRUE(hit.served_by_hbm);
}

TEST_F(BaselineFixture, AlloyTadProbeIsMetadataLatency) {
  AlloyCacheController c(hbm_, dram_);
  const auto r = c.access(0, AccessType::kRead, 0);
  EXPECT_GT(r.metadata_latency, 0u);  // the in-HBM TAD probe
}

TEST_F(BaselineFixture, AlloyDirectMappedConflict) {
  AlloyCacheController c(hbm_, dram_);
  const u64 lines = c.line_count();
  const Addr a = 0;
  const Addr b = lines * 64;  // same slot, different tag
  c.access(a, AccessType::kRead, 0);
  c.access(b, AccessType::kRead, 100000);
  // a was displaced by b.
  const auto r = c.access(a, AccessType::kRead, 200000);
  EXPECT_FALSE(r.served_by_hbm);
}

TEST_F(BaselineFixture, AlloyDirtyVictimWritesBack) {
  AlloyCacheController c(hbm_, dram_);
  const u64 lines = c.line_count();
  c.access(0, AccessType::kWrite, 0);           // fill
  c.access(0, AccessType::kWrite, 50000);       // dirty hit
  c.access(lines * 64, AccessType::kRead, 100000);  // conflict evicts
  const int wb = static_cast<int>(mem::TrafficClass::kWriteback);
  EXPECT_GT(dram_.stats().write_bytes[wb], 0u);
}

TEST_F(BaselineFixture, AlloyNoSramMetadata) {
  AlloyCacheController c(hbm_, dram_);
  EXPECT_EQ(c.metadata_sram_bytes(), 0u);
}

// ----------------------------------------------------------- Unison Cache

TEST_F(BaselineFixture, UnisonPageMissThenBlockHit) {
  UnisonCacheController c(hbm_, dram_);
  const auto miss = c.access(0x2000, AccessType::kRead, 0);
  EXPECT_FALSE(miss.served_by_hbm);
  const auto hit = c.access(0x2000, AccessType::kRead, miss.complete + 1000);
  EXPECT_TRUE(hit.served_by_hbm);
}

TEST_F(BaselineFixture, UnisonFootprintPredictionLearns) {
  UnisonCacheController c(hbm_, dram_);
  Tick now = 0;
  // First residency: touch blocks 0..3 of page 0.
  for (int b = 0; b < 4; ++b) {
    now += 100000;
    c.access(static_cast<Addr>(b) * 64, AccessType::kRead, now);
  }
  // Evict page 0 by filling its set with conflicting pages.
  const u64 stride = static_cast<u64>(c.set_count()) * 4 * KiB;
  for (u64 k = 1; k <= 4; ++k) {
    now += 100000;
    c.access(k * stride, AccessType::kRead, now);
  }
  const u64 fetched_before = c.stats().blocks_fetched;
  // Page 0 returns: the predicted footprint (4 blocks) is fetched at once.
  now += 100000;
  c.access(0, AccessType::kRead, now);
  EXPECT_GE(c.stats().blocks_fetched - fetched_before, 4u);
}

TEST_F(BaselineFixture, UnisonTagTrafficInHbm) {
  UnisonCacheController c(hbm_, dram_);
  c.access(0, AccessType::kRead, 0);
  const int meta = static_cast<int>(mem::TrafficClass::kMetadata);
  EXPECT_GT(hbm_.stats().read_bytes[meta], 0u);
}

// ---------------------------------------------------------------- Banshee

TEST_F(BaselineFixture, BansheeLookupIsSramCheap) {
  BansheeController c(hbm_, dram_);
  const auto r = c.access(0, AccessType::kRead, 0);
  EXPECT_EQ(r.metadata_latency, ns_to_ticks(2.0));
}

TEST_F(BaselineFixture, BansheeFrequencyGateSuppressesThrash) {
  BansheeController c(hbm_, dram_);
  // A single sampled miss must not immediately fill (replacement requires
  // beating the victim by the threshold, but empty ways fill directly on
  // sampled misses only).
  Tick now = 0;
  u64 fills = 0;
  for (int i = 0; i < 64; ++i) {
    now += 100000;
    c.access(static_cast<Addr>(i) * 8 * MiB, AccessType::kRead, now);
    fills = c.stats().blocks_fetched;
  }
  // With sample rate 8, far fewer fills than misses.
  EXPECT_LT(fills / (4 * KiB / 64), 64u);
}

TEST_F(BaselineFixture, BansheeRepeatedPageBecomesResident) {
  BansheeController c(hbm_, dram_);
  Tick now = 0;
  bool hit = false;
  for (int i = 0; i < 64 && !hit; ++i) {
    now += 100000;
    hit = c.access(64 * static_cast<Addr>(i % 8), AccessType::kRead, now)
              .served_by_hbm;
  }
  EXPECT_TRUE(hit);
}

// -------------------------------------------------------------- Chameleon

TEST_F(BaselineFixture, ChameleonAllVisible) {
  ChameleonController c(hbm_, dram_);
  EXPECT_EQ(c.paging().config().visible_bytes,
            hbm_.capacity() + dram_.capacity());
}

TEST_F(BaselineFixture, ChameleonHbmNativeSegmentServedNear) {
  ChameleonController c(hbm_, dram_);
  // In-set segment index m_ (the last of each group) starts in the HBM slot.
  const u64 m = c.segments_per_set() - 1;
  const Addr a = m * 2 * KiB;  // set 0, segment m
  const auto r = c.access(a, AccessType::kRead, 0);
  EXPECT_TRUE(r.served_by_hbm);
}

TEST_F(BaselineFixture, ChameleonHotSegmentSwapsIn) {
  ChameleonController c(hbm_, dram_);
  Tick now = 0;
  hmm::HmmResult r;
  for (int i = 0; i < 32; ++i) {
    now += 100000;
    r = c.access(0, AccessType::kRead, now);  // hammer segment 0 of set 0
    if (r.served_by_hbm) break;
  }
  EXPECT_TRUE(r.served_by_hbm);
  EXPECT_GT(c.stats().swaps, 0u);
}

TEST_F(BaselineFixture, ChameleonMetadataExceedsSram) {
  ChameleonController c(hbm_, dram_);
  EXPECT_GT(c.metadata_sram_bytes(), 512 * KiB);
}

TEST_F(BaselineFixture, ChameleonResetStatsClearsCountersKeepsPlacement) {
  // Regression for the warmup-reset path: the override must clear both the
  // base HmmStats and the metadata model's counters, while segment
  // placement survives (bb_analyze stats-reset rule).
  ChameleonController c(hbm_, dram_);
  const u64 m = c.segments_per_set() - 1;
  const Addr a = m * 2 * KiB;  // HBM-native segment
  c.access(a, AccessType::kRead, 0);
  EXPECT_GT(c.stats().requests, 0u);
  EXPECT_GT(c.stats().total_metadata_latency, 0u);
  c.reset_stats();
  EXPECT_EQ(c.stats().requests, 0u);
  EXPECT_EQ(c.stats().total_metadata_latency, 0u);
  // Placement survived: the segment is still served from HBM.
  EXPECT_TRUE(c.access(a, AccessType::kRead, 100000).served_by_hbm);
}

// ---------------------------------------------------------------- Hybrid2

TEST_F(BaselineFixture, Hybrid2CacheMissFillsBlock) {
  Hybrid2Controller c(hbm_, dram_);
  const auto miss = c.access(0, AccessType::kRead, 0);
  EXPECT_FALSE(miss.served_by_hbm);
  const auto hit = c.access(0, AccessType::kRead, miss.complete + 1000);
  EXPECT_TRUE(hit.served_by_hbm);
  // Within the same 256 B block.
  const auto hit2 = c.access(192, AccessType::kRead, hit.complete + 1000);
  EXPECT_TRUE(hit2.served_by_hbm);
}

TEST_F(BaselineFixture, Hybrid2HotPagePromotesWithSwap) {
  Hybrid2Controller c(hbm_, dram_);
  Tick now = 0;
  for (int i = 0; i < 64; ++i) {
    now += 100000;
    c.access(static_cast<Addr>(i % 8) * 256, AccessType::kRead, now);
  }
  EXPECT_GT(c.stats().swaps, 0u);
}

TEST_F(BaselineFixture, Hybrid2VisibleExcludesCacheSlice) {
  Hybrid2Controller c(hbm_, dram_);
  EXPECT_EQ(c.paging().config().visible_bytes,
            hbm_.capacity() + dram_.capacity() - 64 * MiB);
}

TEST_F(BaselineFixture, Hybrid2MetadataExceedsSram) {
  Hybrid2Controller c(hbm_, dram_);
  EXPECT_GT(c.metadata_sram_bytes(), 512 * KiB);
}

// ----------------------------------------------------------------- factory

TEST_F(BaselineFixture, FactoryCreatesEveryDesign) {
  for (const auto& name : figure8_designs()) {
    auto d = make_design(name, hbm_, dram_);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name(), name);
  }
  for (const auto& name : figure7_designs()) {
    auto d = make_design(name, hbm_, dram_);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name(), name);
  }
  auto base = make_design("DRAM-only", hbm_, dram_);
  EXPECT_EQ(base->name(), "DRAM-only");
}

TEST_F(BaselineFixture, FactoryRejectsUnknown) {
  EXPECT_THROW(make_design("bogus", hbm_, dram_), std::invalid_argument);
}

TEST_F(BaselineFixture, AllDesignNamesConstructible) {
  // The advertised name lists and the factory cannot drift apart: every
  // listed name must construct, and the curated subsets must validate.
  for (const auto& name : all_design_names()) {
    auto d = make_design(name, hbm_, dram_);
    ASSERT_NE(d, nullptr) << name;
  }
  EXPECT_NO_THROW(require_design_names(all_design_names()));
  EXPECT_NO_THROW(require_design_names(comparison_designs()));
  EXPECT_NO_THROW(require_design_names(figure8_designs()));
  EXPECT_NO_THROW(require_design_names(figure7_designs()));
  EXPECT_THROW(require_design_names({"Bumblebee", "bogus"}),
               std::invalid_argument);
}

TEST_F(BaselineFixture, Figure8OrderMatchesPaper) {
  const auto& d = figure8_designs();
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d.front(), "Banshee");
  EXPECT_EQ(d.back(), "Bumblebee");
}

class DesignSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DesignSmokeTest, RandomLoadRunsAndAccounts) {
  mem::DramDevice hbm(small_hbm());
  mem::DramDevice dram(small_dram());
  auto c = make_design(GetParam(), hbm, dram);
  Rng rng(13);
  Tick now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += 30000;
    const Addr a = rng.next_below(512 * MiB) & ~Addr{63};
    const auto type =
        rng.next_bool(0.3) ? AccessType::kWrite : AccessType::kRead;
    const auto r = c->access(a, type, now);
    ASSERT_GE(r.complete, now);
  }
  EXPECT_EQ(c->stats().requests, 5000u);
  EXPECT_GT(c->stats().total_latency, 0u);
  // Every design must produce some HBM activity except DRAM-only.
  if (std::string(GetParam()) != "DRAM-only") {
    EXPECT_GT(hbm.stats().total_bytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignSmokeTest,
                         ::testing::Values("DRAM-only", "Banshee", "AC", "UC",
                                           "Chameleon", "Hybrid2",
                                           "Bumblebee", "C-Only", "M-Only",
                                           "25%-C", "50%-C", "No-Multi",
                                           "Meta-H", "Alloc-D", "Alloc-H",
                                           "No-HMF"));

}  // namespace
}  // namespace bb::baselines
