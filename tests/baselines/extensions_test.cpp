// Tests for the extension baselines: PoM (reference [6]) and MemPod
// (reference [8]).
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "baselines/mempod.h"
#include "baselines/pom.h"
#include "common/rng.h"

namespace bb::baselines {
namespace {

mem::DramTimingParams small_hbm() {
  auto p = mem::DramTimingParams::hbm2_1gb();
  p.capacity_bytes = 128 * MiB;
  return p;
}
mem::DramTimingParams small_dram() {
  auto p = mem::DramTimingParams::ddr4_3200_10gb();
  p.capacity_bytes = 1 * GiB;
  return p;
}

class ExtensionFixture : public ::testing::Test {
 protected:
  ExtensionFixture() : hbm_(small_hbm()), dram_(small_dram()) {}
  mem::DramDevice hbm_;
  mem::DramDevice dram_;
};

// --------------------------------------------------------------------- PoM

TEST_F(ExtensionFixture, PomAllVisible) {
  PomController c(hbm_, dram_);
  EXPECT_EQ(c.paging().config().visible_bytes,
            hbm_.capacity() + dram_.capacity());
}

TEST_F(ExtensionFixture, PomNativeSectorServedNear) {
  PomController c(hbm_, dram_);
  const u64 m = c.sectors_per_set() - 1;
  const auto r = c.access(m * 2 * KiB, AccessType::kRead, 0);
  EXPECT_TRUE(r.served_by_hbm);
}

TEST_F(ExtensionFixture, PomCompetingCounterHysteresis) {
  PomController c(hbm_, dram_);
  // Far accesses to sector 0 of set 0; must swap only after the threshold
  // is crossed, not immediately.
  Tick now = 0;
  int accesses_before_swap = 0;
  while (c.stats().swaps == 0 && accesses_before_swap < 32) {
    now += 100000;
    c.access(0, AccessType::kRead, now);
    ++accesses_before_swap;
  }
  EXPECT_GT(c.stats().swaps, 0u);
  EXPECT_GE(accesses_before_swap, 6);  // the configured threshold
  // After the swap the sector is served near.
  now += 100000;
  EXPECT_TRUE(c.access(0, AccessType::kRead, now).served_by_hbm);
}

TEST_F(ExtensionFixture, PomOccupantDefends) {
  PomController c(hbm_, dram_);
  // Interleave occupant (near) and challenger (far) accesses 1:1: the
  // decay on near accesses must prevent the swap.
  const u64 m = c.sectors_per_set() - 1;
  Tick now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 100000;
    c.access(0, AccessType::kRead, now);          // challenger (far)
    now += 100000;
    c.access(m * 2 * KiB, AccessType::kRead, now);  // occupant (near)
  }
  EXPECT_EQ(c.stats().swaps, 0u);
}

TEST_F(ExtensionFixture, PomMetadataExceedsSram) {
  PomController c(hbm_, dram_);
  EXPECT_GT(c.metadata_sram_bytes(), 512 * KiB);
}

// ------------------------------------------------------------------ MemPod

TEST_F(ExtensionFixture, MemPodAllVisible) {
  MemPodController c(hbm_, dram_);
  EXPECT_EQ(c.paging().config().visible_bytes,
            hbm_.capacity() + dram_.capacity());
}

TEST_F(ExtensionFixture, MemPodMigratesAtIntervalBoundary) {
  MemPodConfig cfg;
  cfg.interval = ns_to_ticks(10'000.0);
  MemPodController c(hbm_, dram_, hmm::PagingConfig{}, cfg);
  // Hammer one far page within an interval, then cross the boundary.
  // Low logical pages start in the DRAM slice (DRAM frames come first).
  const u64 far_page = 3;
  const Addr a = (far_page * cfg.pods + 0) * 2 * KiB;

  Tick now = 0;
  for (int i = 0; i < 64; ++i) {
    now += ns_to_ticks(500.0);
    c.access(a, AccessType::kRead, now);
  }
  // Cross another interval to trigger the migration pass.
  now += cfg.interval * 2;
  c.access(a, AccessType::kRead, now);
  EXPECT_GT(c.interval_migrations(), 0u);
  // Served near afterwards.
  now += ns_to_ticks(500.0);
  EXPECT_TRUE(c.access(a, AccessType::kRead, now).served_by_hbm);
}

TEST_F(ExtensionFixture, MemPodNoMigrationWithinInterval) {
  MemPodConfig cfg;
  cfg.interval = ns_to_ticks(1e9);  // effectively never
  MemPodController c(hbm_, dram_, hmm::PagingConfig{}, cfg);
  const Addr a = (5 * cfg.pods) * 2 * KiB;  // a far (DRAM-slice) page
  Tick now = 1;  // past the initial interval boundary at 0
  c.access(a, AccessType::kRead, now);  // runs interval once at t=1
  for (int i = 0; i < 200; ++i) {
    now += ns_to_ticks(100.0);
    c.access(a, AccessType::kRead, now);
  }
  EXPECT_EQ(c.interval_migrations(), 0u);
}

TEST_F(ExtensionFixture, MemPodSramMetadata) {
  MemPodController c(hbm_, dram_);
  EXPECT_GT(c.metadata_sram_bytes(), 0u);
}

TEST_F(ExtensionFixture, FactoryCreatesExtensions) {
  EXPECT_EQ(make_design("PoM", hbm_, dram_)->name(), "PoM");
  EXPECT_EQ(make_design("MemPod", hbm_, dram_)->name(), "MemPod");
}

class ExtensionSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtensionSmokeTest, RandomLoadRuns) {
  mem::DramDevice hbm(small_hbm());
  mem::DramDevice dram(small_dram());
  auto c = make_design(GetParam(), hbm, dram);
  Rng rng(17);
  Tick now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += 30000;
    const auto r = c->access(rng.next_below(900 * MiB) & ~Addr{63},
                             rng.next_bool(0.3) ? AccessType::kWrite
                                                : AccessType::kRead,
                             now);
    ASSERT_GE(r.complete, now);
  }
  EXPECT_EQ(c->stats().requests, 5000u);
}

TEST_F(ExtensionFixture, MemPodResetStatsClearsIntervalMigrations) {
  // Regression for the warmup-reset path: interval_migrations_ is a raw
  // counter and must be cleared by reset_stats() along with the base stats
  // (bb_analyze stats-reset rule).
  MemPodConfig cfg;
  cfg.interval = ns_to_ticks(10'000.0);
  MemPodController c(hbm_, dram_, hmm::PagingConfig{}, cfg);
  const Addr a = (3 * cfg.pods) * 2 * KiB;  // a far (DRAM-slice) page
  Tick now = 0;
  for (int i = 0; i < 64; ++i) {
    now += ns_to_ticks(500.0);
    c.access(a, AccessType::kRead, now);
  }
  now += cfg.interval * 2;
  c.access(a, AccessType::kRead, now);
  ASSERT_GT(c.interval_migrations(), 0u);
  c.reset_stats();
  EXPECT_EQ(c.interval_migrations(), 0u);
  EXPECT_EQ(c.stats().requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(Extensions, ExtensionSmokeTest,
                         ::testing::Values("PoM", "MemPod"));

}  // namespace
}  // namespace bb::baselines
