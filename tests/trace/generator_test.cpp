#include "trace/generator.h"

#include <gtest/gtest.h>

namespace bb::trace {
namespace {

TEST(Generator, Deterministic) {
  const auto& w = WorkloadProfile::by_name("mcf");
  TraceGenerator a(w, 42), b(w, 42);
  for (int i = 0; i < 10000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_EQ(ra.addr, rb.addr);
    ASSERT_EQ(ra.inst_gap, rb.inst_gap);
    ASSERT_EQ(ra.type, rb.type);
  }
}

TEST(Generator, SeedsProduceDifferentStreams) {
  const auto& w = WorkloadProfile::by_name("mcf");
  TraceGenerator a(w, 1), b(w, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next().addr == b.next().addr) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(Generator, AddressesAlignedAndBounded) {
  const auto& w = WorkloadProfile::by_name("wrf");
  TraceGenerator gen(w, 3);
  for (int i = 0; i < 50000; ++i) {
    const auto r = gen.next();
    ASSERT_EQ(r.addr % kLineBytes, 0u);
    ASSERT_LT(r.addr, w.footprint_bytes());
  }
}

TEST(Generator, HotRegionSizeTracksSpatialAxis) {
  // wrf (weak spatial) must have much smaller hot regions than mcf
  // (strong spatial) — the Figure 1 mechanism.
  TraceGenerator mcf(WorkloadProfile::by_name("mcf"), 1);
  TraceGenerator wrf(WorkloadProfile::by_name("wrf"), 1);
  EXPECT_GT(mcf.hot_region_bytes(), wrf.hot_region_bytes());
  EXPECT_GE(mcf.hot_region_bytes(), 32 * KiB);
  EXPECT_LE(wrf.hot_region_bytes(), 4 * KiB);
}

TEST(Generator, HotSetCapped) {
  // 10.6 GB footprint with default hot fraction would exceed the cap.
  TraceGenerator roms(WorkloadProfile::by_name("roms"), 1);
  EXPECT_LE(roms.hot_region_count() * roms.hot_region_bytes(),
            kMaxHotSetBytes);
}

class ProfileCalibrationTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileCalibrationTest, MpkiWithinTolerance) {
  const auto& w = WorkloadProfile::by_name(GetParam());
  TraceGenerator gen(w, 99);
  const auto recs = gen.take(100'000);
  const auto s = measure_stream(recs);
  const double gen_mpki = 1000.0 / s.mean_inst_gap;
  EXPECT_NEAR(gen_mpki / w.mpki, 1.0, 0.05) << w.name;
}

TEST_P(ProfileCalibrationTest, WriteFractionWithinTolerance) {
  const auto& w = WorkloadProfile::by_name(GetParam());
  TraceGenerator gen(w, 100);
  const auto recs = gen.take(100'000);
  const auto s = measure_stream(recs);
  EXPECT_NEAR(s.write_fraction, w.write_fraction, 0.02) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileCalibrationTest,
    ::testing::Values("roms", "lbm", "bwaves", "wrf", "xalancbmk", "mcf",
                      "cam4", "cactuBSSN", "fotonik3d", "x264", "nab",
                      "namd", "xz", "leela"));

TEST(Generator, LocalityAxesOrdering) {
  // Measured spatial locality (block use in 64 KB pages): mcf > wrf.
  // Measured temporal locality (top-1% page share): wrf > xz.
  auto measure = [](const char* name) {
    TraceGenerator gen(WorkloadProfile::by_name(name), 5);
    return measure_stream(gen.take(300'000));
  };
  const auto mcf = measure("mcf");
  const auto wrf = measure("wrf");
  const auto xz = measure("xz");
  EXPECT_GT(mcf.page64k_block_use, wrf.page64k_block_use);
  EXPECT_GT(wrf.top1pct_share, xz.top1pct_share);
}

TEST(Generator, TakeReturnsExactCount) {
  TraceGenerator gen(WorkloadProfile::by_name("leela"), 8);
  EXPECT_EQ(gen.take(1234).size(), 1234u);
}

TEST(MeasureStream, EmptyStream) {
  const auto s = measure_stream({});
  EXPECT_EQ(s.unique_pages_4k, 0u);
  EXPECT_DOUBLE_EQ(s.mean_inst_gap, 0.0);
}

TEST(MeasureStream, SingleRecord) {
  std::vector<TraceRecord> recs = {{10, 64, AccessType::kWrite}};
  const auto s = measure_stream(recs);
  EXPECT_DOUBLE_EQ(s.mean_inst_gap, 10.0);
  EXPECT_DOUBLE_EQ(s.write_fraction, 1.0);
  EXPECT_EQ(s.unique_pages_4k, 1u);
}

}  // namespace
}  // namespace bb::trace
