// Streaming trace layer tests: v2 round-trips under every codec, lap
// parity with the in-memory replayer, v1 compatibility, and the fail-
// closed contract for truncated / corrupt files (a record must never be
// served from a chunk whose checksum did not verify).
#include "trace/stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_file.h"
#include "trace/workload.h"

namespace bb::trace {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<TraceRecord> synth_records(std::size_t n, u64 seed = 7) {
  TraceGenerator gen(WorkloadProfile::by_name("mcf"), seed);
  return gen.take(n);
}

void expect_same(const std::vector<TraceRecord>& a,
                 const std::vector<TraceRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].inst_gap, b[i].inst_gap) << "record " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "record " << i;
    ASSERT_EQ(a[i].type, b[i].type) << "record " << i;
  }
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// Independent CRC32 (IEEE 802.3, reflected) so corruption tests can craft
// files whose *chunk* checksum verifies while the record bytes lie — the
// stream checksum must then catch it at the lap boundary.
u32 ref_crc32(const unsigned char* data, std::size_t n) {
  u32 crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

void put_le32(std::vector<unsigned char>& bytes, std::size_t off, u32 v) {
  for (int i = 0; i < 4; ++i) {
    bytes[off + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(v >> (8 * i));
  }
}

struct TempTrace {
  explicit TempTrace(const char* name) : path(tmp_path(name)) {}
  ~TempTrace() { std::remove(path.c_str()); }
  std::string path;
};

TEST(StreamFormat, RoundTripAllCodecs) {
  const auto original = synth_records(3000);
  std::vector<TraceCodec> codecs = {TraceCodec::kRaw, TraceCodec::kVarint};
  if (zlib_supported()) codecs.push_back(TraceCodec::kZlib);
  for (const TraceCodec codec : codecs) {
    TempTrace t("roundtrip_v2.bbtrace");
    TraceWriterOptions w;
    w.codec = codec;
    w.chunk_records = 256;  // 3000 % 256 != 0: short final chunk on purpose
    ASSERT_TRUE(save_trace_v2(t.path, original, w)) << codec_name(codec);
    const auto info = trace_info(t.path);
    EXPECT_EQ(info.version, 2u);
    EXPECT_EQ(info.codec, codec);
    EXPECT_EQ(info.records, original.size());
    EXPECT_EQ(info.chunks, (original.size() + 255) / 256);
    expect_same(read_trace(t.path), original);
    EXPECT_EQ(validate_trace(t.path).records, original.size());
  }
}

TEST(StreamFormat, ZlibGateMatchesBuild) {
  if (zlib_supported()) {
    EXPECT_EQ(parse_codec("zlib"), TraceCodec::kZlib);
  } else {
    EXPECT_THROW(parse_codec("zlib"), TraceError);
  }
  EXPECT_THROW(parse_codec("brotli"), TraceError);
}

TEST(StreamFormat, VarintHandlesAddressJumpsAndWideGaps) {
  // Zigzag deltas across the full address range plus gaps needing every
  // varint length.
  std::vector<TraceRecord> recs = {
      {1, 0, AccessType::kRead},
      {0x7FFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFC0ull, AccessType::kWrite},
      {127, 64, AccessType::kRead},
      {128, 0xFFFFFFFFFFFFFFC0ull, AccessType::kRead},
      {1, 0, AccessType::kWrite},
  };
  TempTrace t("varint_extremes.bbtrace");
  TraceWriterOptions w;
  w.codec = TraceCodec::kVarint;
  w.chunk_records = 2;
  ASSERT_TRUE(save_trace_v2(t.path, recs, w));
  expect_same(read_trace(t.path), recs);
}

TEST(StreamingReader, BitIdenticalToInMemoryReplayerAcrossLaps) {
  const auto original = synth_records(1000);
  TempTrace t("laps.bbtrace");
  TraceWriterOptions w;
  w.chunk_records = 128;
  ASSERT_TRUE(save_trace_v2(t.path, original, w));

  StreamingTraceReader stream(t.path);
  TraceReplayer memory(original);
  // 2.5 laps: exercises the wrap twice, including lap-boundary checksum
  // verification, and ends mid-trace.
  for (std::size_t i = 0; i < 2500; ++i) {
    const TraceRecord a = stream.next();
    const TraceRecord b = memory.next();
    ASSERT_EQ(a.inst_gap, b.inst_gap) << "step " << i;
    ASSERT_EQ(a.addr, b.addr) << "step " << i;
    ASSERT_EQ(a.type, b.type) << "step " << i;
    ASSERT_EQ(stream.laps(), memory.laps()) << "step " << i;
  }
  EXPECT_EQ(stream.laps(), 2u);
}

TEST(StreamingReader, BoundedBuffersReportedInInfo) {
  const auto original = synth_records(4096);
  TempTrace t("bounded.bbtrace");
  TraceWriterOptions w;
  w.chunk_records = 64;
  ASSERT_TRUE(save_trace_v2(t.path, original, w));
  StreamingTraceReader reader(t.path);
  // The decode buffer high-water mark is one chunk, not the trace: 64
  // records regardless of the 4096-record file.
  EXPECT_EQ(reader.info().max_chunk_records, 64u);
  EXPECT_LT(reader.info().max_chunk_payload, 64u * 17u + 1u);
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(reader.next().addr, original[i].addr);
  }
}

TEST(StreamingReader, ReadsV1Files) {
  const auto original = synth_records(777);
  TempTrace t("v1_compat.bbtrace");
  ASSERT_TRUE(save_trace(t.path, original));  // legacy whole-file writer
  TraceReaderOptions opts;
  opts.v1_chunk_records = 100;  // force multiple slices incl. a short tail
  const auto info = trace_info(t.path, opts);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.records, original.size());
  EXPECT_EQ(info.chunks, 8u);
  StreamingTraceReader reader(t.path, opts);
  std::vector<TraceRecord> seen;
  for (std::size_t i = 0; i < original.size(); ++i) {
    seen.push_back(reader.next());
  }
  expect_same(seen, original);
  EXPECT_EQ(reader.next().addr, original[0].addr);  // wraps like v2
  EXPECT_EQ(reader.laps(), 1u);
}

TEST(StreamingReader, EmptyV2TraceRejected) {
  TempTrace t("empty_v2.bbtrace");
  TraceCaptureSink sink;
  sink.open(t.path);
  EXPECT_TRUE(sink.close());  // structurally valid file with zero records
  EXPECT_THROW(StreamingTraceReader reader(t.path), TraceError);
  EXPECT_THROW(trace_info(t.path), TraceError);
}

TEST(StreamingReader, EmptyV1TraceRejected) {
  TempTrace t("empty_v1.bbtrace");
  ASSERT_TRUE(save_trace(t.path, {}));
  EXPECT_THROW(StreamingTraceReader reader(t.path), TraceError);
}

TEST(StreamingReader, MissingFileIsIoError) {
  EXPECT_THROW(StreamingTraceReader reader(tmp_path("nope.bbtrace")),
               std::ios_base::failure);
  EXPECT_THROW(trace_info(tmp_path("nope.bbtrace")), std::ios_base::failure);
}

TEST(StreamCorruption, BadMagicFailsClosed) {
  const auto original = synth_records(100);
  TempTrace t("badmagic.bbtrace");
  ASSERT_TRUE(save_trace_v2(t.path, original));
  auto bytes = slurp(t.path);
  bytes[0] ^= 0xFF;
  dump(t.path, bytes);
  EXPECT_THROW(trace_info(t.path), TraceError);
  EXPECT_THROW(StreamingTraceReader reader(t.path), TraceError);
}

TEST(StreamCorruption, UnknownVersionFailsClosed) {
  const auto original = synth_records(100);
  TempTrace t("badversion.bbtrace");
  ASSERT_TRUE(save_trace_v2(t.path, original));
  auto bytes = slurp(t.path);
  put_le32(bytes, 8, 3);  // header version field
  dump(t.path, bytes);
  EXPECT_THROW(StreamingTraceReader reader(t.path), TraceError);
}

TEST(StreamCorruption, TruncatedFinalChunkFailsClosed) {
  const auto original = synth_records(1000);
  TempTrace t("truncated.bbtrace");
  TraceWriterOptions w;
  w.chunk_records = 128;
  ASSERT_TRUE(save_trace_v2(t.path, original, w));
  auto bytes = slurp(t.path);
  // Drop the footer and half the final chunk: the structural walk must
  // notice before any record is served.
  bytes.resize(bytes.size() - 32 - 40);
  dump(t.path, bytes);
  EXPECT_THROW(StreamingTraceReader reader(t.path), TraceError);
}

TEST(StreamCorruption, TruncatedV1FailsClosed) {
  const auto original = synth_records(100);
  TempTrace t("truncated_v1.bbtrace");
  ASSERT_TRUE(save_trace(t.path, original));
  auto bytes = slurp(t.path);
  bytes.resize(bytes.size() - 13);  // mid-record cut
  dump(t.path, bytes);
  EXPECT_THROW(StreamingTraceReader reader(t.path), TraceError);
}

TEST(StreamCorruption, ChunkChecksumMismatchDetectedOnLoad) {
  const auto original = synth_records(600);
  TempTrace t("flipped.bbtrace");
  TraceWriterOptions w;
  w.codec = TraceCodec::kRaw;
  w.chunk_records = 200;
  ASSERT_TRUE(save_trace_v2(t.path, original, w));
  auto bytes = slurp(t.path);
  // Flip one payload byte inside the *second* chunk (header 24 B, chunk
  // header 16 B, payload 200 * 17 B, then the next chunk header).
  const std::size_t second_payload = 24 + 16 + 200 * 17 + 16;
  bytes[second_payload + 5] ^= 0x01;
  dump(t.path, bytes);
  // The shallow walk does not decode payloads, so construction succeeds
  // and the first chunk still replays...
  StreamingTraceReader reader(t.path);
  for (int i = 0; i < 200; ++i) reader.next();
  // ...but the corrupt chunk must never yield a record.
  EXPECT_THROW(reader.next(), TraceError);
  EXPECT_THROW(validate_trace(t.path), TraceError);
}

TEST(StreamCorruption, StreamChecksumCatchesConsistentlyPatchedChunk) {
  const auto original = synth_records(300);
  TempTrace t("patched.bbtrace");
  TraceWriterOptions w;
  w.codec = TraceCodec::kRaw;
  w.chunk_records = 100;
  ASSERT_TRUE(save_trace_v2(t.path, original, w));
  auto bytes = slurp(t.path);
  // Adversarial case: corrupt a record's address *and* re-stamp the chunk
  // CRC so the per-chunk check passes. Only the footer's stream checksum,
  // verified at the lap boundary, can catch this.
  const std::size_t chunk_hdr = 24;
  const std::size_t payload = chunk_hdr + 16;
  bytes[payload + 8] ^= 0x40;  // addr byte of record 0
  put_le32(bytes, chunk_hdr + 12, ref_crc32(&bytes[payload], 100 * 17));
  dump(t.path, bytes);
  StreamingTraceReader reader(t.path);
  for (std::size_t i = 0; i < original.size() - 1; ++i) reader.next();
  // Serving the final record completes the lap, which verifies the stream
  // checksum — the record must not escape.
  EXPECT_THROW(reader.next(), TraceError);
  EXPECT_THROW(validate_trace(t.path), TraceError);
}

TEST(StreamCorruption, FooterCountMismatchFailsClosed) {
  const auto original = synth_records(256);
  TempTrace t("badcount.bbtrace");
  TraceWriterOptions w;
  w.chunk_records = 64;
  ASSERT_TRUE(save_trace_v2(t.path, original, w));
  auto bytes = slurp(t.path);
  // Footer record_count is 24 bytes from the end (count u64,
  // inst_gap_total u64, stream_crc u64).
  bytes[bytes.size() - 24] ^= 0x01;
  dump(t.path, bytes);
  EXPECT_THROW(trace_info(t.path), TraceError);
}

TEST(CaptureSink, CountsAndInstructionTotal) {
  TempTrace t("sink.bbtrace");
  TraceCaptureSink sink;
  TraceWriterOptions w;
  w.chunk_records = 8;
  sink.open(t.path, w);
  EXPECT_TRUE(sink.is_open());
  u64 gaps = 0;
  for (u64 i = 0; i < 20; ++i) {  // 2 full chunks + a short one
    sink.append({i + 1, i * 64, i % 3 == 0 ? AccessType::kWrite
                                           : AccessType::kRead});
    gaps += i + 1;
  }
  EXPECT_EQ(sink.records(), 20u);
  EXPECT_TRUE(sink.close());
  const auto info = trace_info(t.path);
  EXPECT_EQ(info.records, 20u);
  EXPECT_EQ(info.inst_gap_total, gaps);
  EXPECT_EQ(info.chunks, 3u);
  const auto back = read_trace(t.path);
  ASSERT_EQ(back.size(), 20u);
  EXPECT_EQ(back[19].addr, 19u * 64u);
}

TEST(CaptureSink, RejectsBadOptions) {
  TraceCaptureSink sink;
  TraceWriterOptions w;
  w.chunk_records = 0;
  EXPECT_THROW(sink.open(tmp_path("never.bbtrace"), w), TraceError);
  EXPECT_THROW(sink.open("/nonexistent-dir/x.bbtrace"),
               std::ios_base::failure);
}

}  // namespace
}  // namespace bb::trace
