#include "trace/streams.h"

#include <gtest/gtest.h>

#include <set>

namespace bb::trace {
namespace {

TEST(PointerChase, VisitsEveryLineOncePerLap) {
  const u64 ws = 64 * 64;  // 64 lines
  PointerChaseStream chase(ws, 5);
  std::set<Addr> seen;
  for (u64 i = 0; i < chase.lines(); ++i) {
    const Addr a = chase.next();
    EXPECT_EQ(a % 64, 0u);
    EXPECT_LT(a, ws);
    EXPECT_TRUE(seen.insert(a).second) << "revisit before lap end";
  }
  EXPECT_EQ(seen.size(), chase.lines());
  // Second lap revisits the same set, same order start.
  const Addr first_again = chase.next();
  EXPECT_TRUE(seen.count(first_again));
}

TEST(PointerChase, SingleCycleNotManySmallOnes) {
  PointerChaseStream chase(64 * 1024, 9);
  // Walk exactly lines() steps; if the permutation were multi-cycle we
  // would revisit the start before covering everything.
  std::set<Addr> seen;
  for (u64 i = 0; i < chase.lines(); ++i) seen.insert(chase.next());
  EXPECT_EQ(seen.size(), chase.lines());
}

TEST(PointerChase, DeterministicPerSeed) {
  PointerChaseStream a(4096, 3), b(4096, 3), c(4096, 4);
  bool all_same = true;
  for (int i = 0; i < 32; ++i) {
    const Addr av = a.next();
    EXPECT_EQ(av, b.next());
    if (av != c.next()) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(PointerChase, BaseOffsetApplied) {
  PointerChaseStream chase(1024, 1, /*base=*/1 * MiB);
  for (int i = 0; i < 16; ++i) {
    EXPECT_GE(chase.next(), 1 * MiB);
  }
}

TEST(Strided, SweepsWithStride) {
  StridedStream s(1024, 256);
  EXPECT_EQ(s.next(), 0u);
  EXPECT_EQ(s.next(), 256u);
  EXPECT_EQ(s.next(), 512u);
  EXPECT_EQ(s.next(), 768u);
  // Wraps rotating the lane.
  const Addr wrapped = s.next();
  EXPECT_LT(wrapped, 1024u);
}

TEST(Strided, ZeroStrideClamped) {
  StridedStream s(256, 0);
  EXPECT_EQ(s.next(), 0u);
  EXPECT_EQ(s.next(), 64u);
}

TEST(Phased, SwitchesProfilesAtBoundaries) {
  std::vector<Phase> phases = {
      {WorkloadProfile::by_name("mcf"), 100},
      {WorkloadProfile::by_name("xz"), 50},
  };
  PhasedGenerator gen(phases, 11);
  EXPECT_EQ(gen.current_phase(), 0u);
  for (int i = 0; i < 100; ++i) gen.next();
  EXPECT_EQ(gen.current_phase(), 1u);
  for (int i = 0; i < 50; ++i) gen.next();
  EXPECT_TRUE(gen.exhausted());
}

TEST(Phased, AddressesFollowActivePhaseFootprint) {
  // Phase 1 has a tiny footprint (leela, 0.1 GB); phase 2 is xz (7.2 GB).
  std::vector<Phase> phases = {
      {WorkloadProfile::by_name("leela"), 1000},
      {WorkloadProfile::by_name("xz"), 1000},
  };
  PhasedGenerator gen(phases, 12);
  Addr max_phase1 = 0;
  for (int i = 0; i < 1000; ++i) max_phase1 = std::max(max_phase1, gen.next().addr);
  Addr max_phase2 = 0;
  for (int i = 0; i < 1000; ++i) max_phase2 = std::max(max_phase2, gen.next().addr);
  EXPECT_LE(max_phase1, WorkloadProfile::by_name("leela").footprint_bytes());
  EXPECT_GT(max_phase2, max_phase1);
}

TEST(Phased, SkipsEmptyPhases) {
  std::vector<Phase> phases = {
      {WorkloadProfile::by_name("mcf"), 0},
      {WorkloadProfile::by_name("xz"), 10},
  };
  PhasedGenerator gen(phases, 13);
  EXPECT_EQ(gen.current_phase(), 1u);
}

TEST(Phased, ExhaustedReturnsBenignRecords) {
  PhasedGenerator gen({{WorkloadProfile::by_name("mcf"), 1}}, 14);
  gen.next();
  EXPECT_TRUE(gen.exhausted());
  const auto r = gen.next();
  EXPECT_EQ(r.inst_gap, 1u);
}

}  // namespace
}  // namespace bb::trace
