#include "trace/workload.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace bb::trace {
namespace {

TEST(Workload, FourteenBenchmarks) {
  EXPECT_EQ(WorkloadProfile::spec2017().size(), 14u);
}

TEST(Workload, TableIIValues) {
  const auto& roms = WorkloadProfile::by_name("roms");
  EXPECT_DOUBLE_EQ(roms.mpki, 31.9);
  EXPECT_DOUBLE_EQ(roms.footprint_gb, 10.6);
  EXPECT_EQ(roms.mpki_class, MpkiClass::kHigh);

  const auto& mcf = WorkloadProfile::by_name("mcf");
  EXPECT_DOUBLE_EQ(mcf.mpki, 16.1);
  EXPECT_DOUBLE_EQ(mcf.footprint_gb, 0.2);
  EXPECT_EQ(mcf.mpki_class, MpkiClass::kMedium);

  const auto& leela = WorkloadProfile::by_name("leela");
  EXPECT_DOUBLE_EQ(leela.mpki, 0.1);
  EXPECT_EQ(leela.mpki_class, MpkiClass::kLow);
}

TEST(Workload, PaperLocalityTaxonomy) {
  // Section II-B: mcf strong/strong, wrf weak-spatial/strong-temporal,
  // xz strong-spatial/weak-temporal.
  const auto& mcf = WorkloadProfile::by_name("mcf");
  const auto& wrf = WorkloadProfile::by_name("wrf");
  const auto& xz = WorkloadProfile::by_name("xz");
  EXPECT_GT(mcf.spatial, 0.7);
  EXPECT_GT(mcf.temporal, 0.7);
  EXPECT_LT(wrf.spatial, 0.4);
  EXPECT_GT(wrf.temporal, 0.7);
  EXPECT_GT(xz.spatial, 0.7);
  EXPECT_LT(xz.temporal, 0.3);
}

TEST(Workload, ByNameThrowsOnUnknown) {
  EXPECT_THROW(WorkloadProfile::by_name("nonexistent"), std::out_of_range);
}

TEST(Workload, ByClassPartition) {
  std::set<std::string> all;
  std::size_t total = 0;
  for (MpkiClass c :
       {MpkiClass::kHigh, MpkiClass::kMedium, MpkiClass::kLow}) {
    for (const auto& w : WorkloadProfile::by_class(c)) {
      EXPECT_EQ(w.mpki_class, c);
      all.insert(w.name);
      ++total;
    }
  }
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(all.size(), 14u);
}

TEST(Workload, GroupSizesMatchTableII) {
  EXPECT_EQ(WorkloadProfile::by_class(MpkiClass::kHigh).size(), 4u);
  EXPECT_EQ(WorkloadProfile::by_class(MpkiClass::kMedium).size(), 4u);
  EXPECT_EQ(WorkloadProfile::by_class(MpkiClass::kLow).size(), 6u);
}

TEST(Workload, MeanGapInverseOfMpki) {
  const auto& w = WorkloadProfile::by_name("wrf");
  EXPECT_NEAR(w.mean_inst_gap(), 1000.0 / 18.5, 1e-9);
}

TEST(Workload, MixtureWeightsSane) {
  for (const auto& w : WorkloadProfile::spec2017()) {
    EXPECT_GT(w.w_hot, 0.0) << w.name;
    EXPECT_GT(w.w_scan, 0.0) << w.name;
    EXPECT_LE(w.w_hot + w.w_scan, 1.0) << w.name;
    EXPECT_GT(w.hot_fraction, 0.0) << w.name;
    EXPECT_GT(w.zipf_s, 0.0) << w.name;
  }
}

TEST(Workload, ClassNames) {
  EXPECT_STREQ(to_string(MpkiClass::kHigh), "High");
  EXPECT_STREQ(to_string(MpkiClass::kMedium), "Medium");
  EXPECT_STREQ(to_string(MpkiClass::kLow), "Low");
}

TEST(Workload, NamesListEveryProfileInTableOrder) {
  const auto names = workload_names();
  const auto& profiles = WorkloadProfile::spec2017();
  ASSERT_EQ(names.size(), profiles.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], profiles[i].name);
  }
}

TEST(Workload, RequireWorkloadNamesAcceptsKnownNames) {
  EXPECT_NO_THROW(require_workload_names({"mcf", "lbm", "xz"}));
  EXPECT_NO_THROW(require_workload_names({}));
}

TEST(Workload, RequireWorkloadNamesThrowsListingValidNames) {
  try {
    require_workload_names({"mcf", "nonesuch"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload: nonesuch"), std::string::npos)
        << msg;
    // The error lists every valid name so a typo is self-explaining.
    for (const auto& name : workload_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
}

}  // namespace
}  // namespace bb::trace
