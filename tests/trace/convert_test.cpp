// Foreign-trace ingest tests: per-format parsing, line alignment, the
// ramulator auto-detection, and the fail-on-first-garbage-line contract.
#include "trace/convert.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bb::trace {
namespace {

std::vector<TraceRecord> convert_string(const std::string& text,
                                        ConvertOptions opts) {
  std::istringstream in(text);
  std::vector<TraceRecord> out;
  convert_text_trace(in, opts,
                     [&out](const TraceRecord& r) { out.push_back(r); });
  return out;
}

TEST(Convert, ParsesGem5PacketLines) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kGem5;
  opts.ticks_per_inst = 1000.0;
  const auto recs = convert_string(
      "# comment\n"
      "1000: ReadReq 0x1000\n"
      "3000: WriteReq 4160\n"
      "\n"
      "3500 ReadExReq 0x2009\n",  // colon optional, addr gets line-aligned
      opts);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].inst_gap, 1u);  // first line: no previous tick
  EXPECT_EQ(recs[0].addr, 0x1000u);
  EXPECT_EQ(recs[0].type, AccessType::kRead);
  EXPECT_EQ(recs[1].inst_gap, 2u);  // (3000-1000)/1000
  EXPECT_EQ(recs[1].addr, 4160u);
  EXPECT_EQ(recs[1].type, AccessType::kWrite);
  EXPECT_EQ(recs[2].inst_gap, 1u);  // 500 ticks rounds up to min gap 1
  EXPECT_EQ(recs[2].addr, 0x2000u);  // 0x2009 aligned down to 64 B
}

TEST(Convert, ParsesRamulatorDramTrace) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kRamulator;
  opts.default_gap = 5;
  const auto recs = convert_string(
      "0x12345 R\n"
      "0x12380 W\n",
      opts);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].inst_gap, 5u);
  EXPECT_EQ(recs[0].addr, 0x12340u);
  EXPECT_EQ(recs[0].type, AccessType::kRead);
  EXPECT_EQ(recs[1].type, AccessType::kWrite);
}

TEST(Convert, ParsesRamulatorCpuTrace) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kRamulator;
  const auto recs = convert_string(
      "7 0x1000\n"
      "0 0x2000 0x3000\n",  // trailing write address: two records
      opts);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].inst_gap, 7u);
  EXPECT_EQ(recs[0].type, AccessType::kRead);
  EXPECT_EQ(recs[1].inst_gap, 1u);  // zero bubbles clamps to min gap 1
  EXPECT_EQ(recs[1].addr, 0x2000u);
  EXPECT_EQ(recs[2].inst_gap, 0u);  // piggybacked write retires with it
  EXPECT_EQ(recs[2].addr, 0x3000u);
  EXPECT_EQ(recs[2].type, AccessType::kWrite);
}

TEST(Convert, ParsesCsvWithHeader) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kCsv;
  const auto recs = convert_string(
      "inst_gap,addr,type\n"
      "3,0x1040,R\n"
      "11,8192,write\n"
      "2,64,0\n",
      opts);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].inst_gap, 3u);
  EXPECT_EQ(recs[0].addr, 0x1040u);
  EXPECT_EQ(recs[1].type, AccessType::kWrite);
  EXPECT_EQ(recs[2].type, AccessType::kRead);
}

TEST(Convert, CsvWithoutHeaderRejected) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kCsv;
  EXPECT_THROW(convert_string("3,0x1040,R\n", opts), TraceError);
}

TEST(Convert, MalformedLineNamesLineNumber) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kGem5;
  try {
    convert_string("1000: ReadReq 0x1000\ngarbage here\n", opts);
    FAIL() << "garbage line must throw";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Convert, EmptyInputRejected) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kGem5;
  EXPECT_THROW(convert_string("# only comments\n\n", opts), TraceError);
}

TEST(Convert, AlignmentCanBeDisabled) {
  ConvertOptions opts;
  opts.format = ForeignFormat::kRamulator;
  opts.align_lines = false;
  const auto recs = convert_string("0x12345 R\n", opts);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].addr, 0x12345u);
}

TEST(Convert, FormatNamesRoundTrip) {
  EXPECT_EQ(parse_format("gem5"), ForeignFormat::kGem5);
  EXPECT_EQ(parse_format("ramulator"), ForeignFormat::kRamulator);
  EXPECT_EQ(parse_format("csv"), ForeignFormat::kCsv);
  EXPECT_THROW(parse_format("pintool"), TraceError);
  EXPECT_STREQ(format_name(ForeignFormat::kGem5), "gem5");
}

TEST(Convert, FileToFileProducesValidV2Trace) {
  const std::string in_path =
      std::string(::testing::TempDir()) + "/conv_in.txt";
  const std::string out_path =
      std::string(::testing::TempDir()) + "/conv_out.bbtrace";
  {
    std::ofstream out(in_path);
    out << "inst_gap,addr,type\n";
    for (int i = 0; i < 500; ++i) {
      out << (i % 9 + 1) << "," << i * 64 << "," << (i % 4 ? "R" : "W")
          << "\n";
    }
  }
  ConvertOptions opts;
  opts.format = ForeignFormat::kCsv;
  TraceWriterOptions writer;
  writer.chunk_records = 128;
  const auto stats = convert_file(in_path, out_path, opts, writer);
  EXPECT_EQ(stats.lines, 500u);
  EXPECT_EQ(stats.records, 500u);
  EXPECT_EQ(stats.reads + stats.writes, 500u);
  const auto info = validate_trace(out_path);
  EXPECT_EQ(info.records, 500u);
  const auto recs = read_trace(out_path);
  EXPECT_EQ(recs[499].addr, 499u * 64u);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(Convert, MissingInputFileIsIoError) {
  ConvertOptions opts;
  EXPECT_THROW(convert_file("/nonexistent/in.txt", "/tmp/out.bbtrace", opts),
               std::ios_base::failure);
}

}  // namespace
}  // namespace bb::trace
