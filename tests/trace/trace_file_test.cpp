#include "trace/trace_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace bb::trace {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceFile, RoundTrip) {
  const auto& w = WorkloadProfile::by_name("mcf");
  TraceGenerator gen(w, 21);
  const auto original = gen.take(5000);

  const std::string path = tmp_path("roundtrip.bbtrace");
  ASSERT_TRUE(save_trace(path, original));
  bool ok = false;
  const auto loaded = load_trace(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded[i].addr, original[i].addr);
    ASSERT_EQ(loaded[i].inst_gap, original[i].inst_gap);
    ASSERT_EQ(loaded[i].type, original[i].type);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, EmptyTrace) {
  const std::string path = tmp_path("empty.bbtrace");
  ASSERT_TRUE(save_trace(path, {}));
  bool ok = false;
  const auto loaded = load_trace(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceFile, MissingFileFails) {
  bool ok = true;
  const auto loaded = load_trace(tmp_path("does-not-exist.bbtrace"), &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceFile, RejectsCorruptHeader) {
  const std::string path = tmp_path("corrupt.bbtrace");
  std::ofstream f(path, std::ios::binary);
  f << "not a trace file at all";
  f.close();
  bool ok = true;
  const auto loaded = load_trace(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceFile, RejectsTruncatedBody) {
  const std::string path = tmp_path("truncated.bbtrace");
  TraceGenerator gen(WorkloadProfile::by_name("xz"), 4);
  ASSERT_TRUE(save_trace(path, gen.take(100)));
  // Truncate mid-record.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(0, ::ftruncate(::fileno(f), size - 13));
  std::fclose(f);
  bool ok = true;
  const auto loaded = load_trace(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(Replayer, LoopsOverRecords) {
  std::vector<TraceRecord> recs = {
      {1, 0, AccessType::kRead},
      {2, 64, AccessType::kWrite},
      {3, 128, AccessType::kRead},
  };
  TraceReplayer rep(recs);
  EXPECT_EQ(rep.size(), 3u);
  EXPECT_EQ(rep.next().addr, 0u);
  EXPECT_EQ(rep.next().addr, 64u);
  EXPECT_EQ(rep.next().addr, 128u);
  EXPECT_EQ(rep.laps(), 1u);
  EXPECT_EQ(rep.next().addr, 0u);  // wrapped
}

// Regression: an empty trace used to fabricate TraceRecord{1, 0, kRead}
// on every next(), silently simulating traffic that was never recorded.
// Construction now rejects it (std::invalid_argument → exit 2 through
// the bb::cli contract).
TEST(Replayer, EmptyTraceRejectedAtConstruction) {
  EXPECT_THROW(TraceReplayer rep({}), std::invalid_argument);
  try {
    TraceReplayer rep({});
    FAIL() << "empty trace must not construct";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty trace"), std::string::npos);
  }
}

}  // namespace
}  // namespace bb::trace
