file(REMOVE_RECURSE
  "CMakeFiles/capacity_pressure.dir/capacity_pressure.cpp.o"
  "CMakeFiles/capacity_pressure.dir/capacity_pressure.cpp.o.d"
  "capacity_pressure"
  "capacity_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
