
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bbsim.cpp" "examples/CMakeFiles/bbsim.dir/bbsim.cpp.o" "gcc" "examples/CMakeFiles/bbsim.dir/bbsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bumblebee/CMakeFiles/bb_bumblebee.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/bb_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
