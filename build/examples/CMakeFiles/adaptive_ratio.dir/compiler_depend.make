# Empty compiler generated dependencies file for adaptive_ratio.
# This may be replaced when dependencies are built.
