file(REMOVE_RECURSE
  "CMakeFiles/adaptive_ratio.dir/adaptive_ratio.cpp.o"
  "CMakeFiles/adaptive_ratio.dir/adaptive_ratio.cpp.o.d"
  "adaptive_ratio"
  "adaptive_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
