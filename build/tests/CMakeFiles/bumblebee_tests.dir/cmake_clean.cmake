file(REMOVE_RECURSE
  "CMakeFiles/bumblebee_tests.dir/bumblebee/config_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/config_test.cpp.o.d"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/controller_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/controller_test.cpp.o.d"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/decision_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/decision_test.cpp.o.d"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/geometry_sweep_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/geometry_sweep_test.cpp.o.d"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/hot_table_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/hot_table_test.cpp.o.d"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/integrity_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/integrity_test.cpp.o.d"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/ratio_test.cpp.o"
  "CMakeFiles/bumblebee_tests.dir/bumblebee/ratio_test.cpp.o.d"
  "bumblebee_tests"
  "bumblebee_tests.pdb"
  "bumblebee_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bumblebee_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
