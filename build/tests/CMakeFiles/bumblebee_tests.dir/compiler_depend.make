# Empty compiler generated dependencies file for bumblebee_tests.
# This may be replaced when dependencies are built.
