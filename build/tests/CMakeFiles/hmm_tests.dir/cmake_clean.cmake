file(REMOVE_RECURSE
  "CMakeFiles/hmm_tests.dir/hmm/controller_test.cpp.o"
  "CMakeFiles/hmm_tests.dir/hmm/controller_test.cpp.o.d"
  "CMakeFiles/hmm_tests.dir/hmm/metadata_test.cpp.o"
  "CMakeFiles/hmm_tests.dir/hmm/metadata_test.cpp.o.d"
  "CMakeFiles/hmm_tests.dir/hmm/paging_test.cpp.o"
  "CMakeFiles/hmm_tests.dir/hmm/paging_test.cpp.o.d"
  "hmm_tests"
  "hmm_tests.pdb"
  "hmm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
