# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/mem_tests[1]_include.cmake")
include("/root/repo/build/tests/cache_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/hmm_tests[1]_include.cmake")
include("/root/repo/build/tests/bumblebee_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
