# Empty dependencies file for bb_mem.
# This may be replaced when dependencies are built.
