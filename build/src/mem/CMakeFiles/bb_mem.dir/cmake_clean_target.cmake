file(REMOVE_RECURSE
  "libbb_mem.a"
)
