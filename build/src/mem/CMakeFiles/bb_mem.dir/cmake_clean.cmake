file(REMOVE_RECURSE
  "CMakeFiles/bb_mem.dir/dram_device.cpp.o"
  "CMakeFiles/bb_mem.dir/dram_device.cpp.o.d"
  "CMakeFiles/bb_mem.dir/timing.cpp.o"
  "CMakeFiles/bb_mem.dir/timing.cpp.o.d"
  "libbb_mem.a"
  "libbb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
