file(REMOVE_RECURSE
  "CMakeFiles/bb_bumblebee.dir/config.cpp.o"
  "CMakeFiles/bb_bumblebee.dir/config.cpp.o.d"
  "CMakeFiles/bb_bumblebee.dir/controller.cpp.o"
  "CMakeFiles/bb_bumblebee.dir/controller.cpp.o.d"
  "CMakeFiles/bb_bumblebee.dir/hot_table.cpp.o"
  "CMakeFiles/bb_bumblebee.dir/hot_table.cpp.o.d"
  "libbb_bumblebee.a"
  "libbb_bumblebee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_bumblebee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
