file(REMOVE_RECURSE
  "libbb_bumblebee.a"
)
