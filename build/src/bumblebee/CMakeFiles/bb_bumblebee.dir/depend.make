# Empty dependencies file for bb_bumblebee.
# This may be replaced when dependencies are built.
