
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/bb_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/bb_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/streams.cpp" "src/trace/CMakeFiles/bb_trace.dir/streams.cpp.o" "gcc" "src/trace/CMakeFiles/bb_trace.dir/streams.cpp.o.d"
  "/root/repo/src/trace/trace_file.cpp" "src/trace/CMakeFiles/bb_trace.dir/trace_file.cpp.o" "gcc" "src/trace/CMakeFiles/bb_trace.dir/trace_file.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/trace/CMakeFiles/bb_trace.dir/workload.cpp.o" "gcc" "src/trace/CMakeFiles/bb_trace.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
