file(REMOVE_RECURSE
  "CMakeFiles/bb_trace.dir/generator.cpp.o"
  "CMakeFiles/bb_trace.dir/generator.cpp.o.d"
  "CMakeFiles/bb_trace.dir/streams.cpp.o"
  "CMakeFiles/bb_trace.dir/streams.cpp.o.d"
  "CMakeFiles/bb_trace.dir/trace_file.cpp.o"
  "CMakeFiles/bb_trace.dir/trace_file.cpp.o.d"
  "CMakeFiles/bb_trace.dir/workload.cpp.o"
  "CMakeFiles/bb_trace.dir/workload.cpp.o.d"
  "libbb_trace.a"
  "libbb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
