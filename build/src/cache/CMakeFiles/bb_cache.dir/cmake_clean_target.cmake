file(REMOVE_RECURSE
  "libbb_cache.a"
)
