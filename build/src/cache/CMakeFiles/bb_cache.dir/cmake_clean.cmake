file(REMOVE_RECURSE
  "CMakeFiles/bb_cache.dir/cache.cpp.o"
  "CMakeFiles/bb_cache.dir/cache.cpp.o.d"
  "CMakeFiles/bb_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/bb_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/bb_cache.dir/replacement.cpp.o"
  "CMakeFiles/bb_cache.dir/replacement.cpp.o.d"
  "libbb_cache.a"
  "libbb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
