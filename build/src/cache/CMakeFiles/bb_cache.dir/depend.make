# Empty dependencies file for bb_cache.
# This may be replaced when dependencies are built.
