file(REMOVE_RECURSE
  "libbb_baselines.a"
)
