file(REMOVE_RECURSE
  "CMakeFiles/bb_baselines.dir/alloy_cache.cpp.o"
  "CMakeFiles/bb_baselines.dir/alloy_cache.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/banshee.cpp.o"
  "CMakeFiles/bb_baselines.dir/banshee.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/chameleon.cpp.o"
  "CMakeFiles/bb_baselines.dir/chameleon.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/factory.cpp.o"
  "CMakeFiles/bb_baselines.dir/factory.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/hybrid2.cpp.o"
  "CMakeFiles/bb_baselines.dir/hybrid2.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/mempod.cpp.o"
  "CMakeFiles/bb_baselines.dir/mempod.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/pom.cpp.o"
  "CMakeFiles/bb_baselines.dir/pom.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/silcfm.cpp.o"
  "CMakeFiles/bb_baselines.dir/silcfm.cpp.o.d"
  "CMakeFiles/bb_baselines.dir/unison_cache.cpp.o"
  "CMakeFiles/bb_baselines.dir/unison_cache.cpp.o.d"
  "libbb_baselines.a"
  "libbb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
