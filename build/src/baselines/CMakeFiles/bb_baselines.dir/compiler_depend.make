# Empty compiler generated dependencies file for bb_baselines.
# This may be replaced when dependencies are built.
