
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alloy_cache.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/alloy_cache.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/alloy_cache.cpp.o.d"
  "/root/repo/src/baselines/banshee.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/banshee.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/banshee.cpp.o.d"
  "/root/repo/src/baselines/chameleon.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/chameleon.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/chameleon.cpp.o.d"
  "/root/repo/src/baselines/factory.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/factory.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/factory.cpp.o.d"
  "/root/repo/src/baselines/hybrid2.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/hybrid2.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/hybrid2.cpp.o.d"
  "/root/repo/src/baselines/mempod.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/mempod.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/mempod.cpp.o.d"
  "/root/repo/src/baselines/pom.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/pom.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/pom.cpp.o.d"
  "/root/repo/src/baselines/silcfm.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/silcfm.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/silcfm.cpp.o.d"
  "/root/repo/src/baselines/unison_cache.cpp" "src/baselines/CMakeFiles/bb_baselines.dir/unison_cache.cpp.o" "gcc" "src/baselines/CMakeFiles/bb_baselines.dir/unison_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/bb_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/bumblebee/CMakeFiles/bb_bumblebee.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bb_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
