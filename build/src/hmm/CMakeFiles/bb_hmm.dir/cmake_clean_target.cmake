file(REMOVE_RECURSE
  "libbb_hmm.a"
)
