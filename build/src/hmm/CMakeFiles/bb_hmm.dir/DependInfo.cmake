
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmm/controller.cpp" "src/hmm/CMakeFiles/bb_hmm.dir/controller.cpp.o" "gcc" "src/hmm/CMakeFiles/bb_hmm.dir/controller.cpp.o.d"
  "/root/repo/src/hmm/metadata.cpp" "src/hmm/CMakeFiles/bb_hmm.dir/metadata.cpp.o" "gcc" "src/hmm/CMakeFiles/bb_hmm.dir/metadata.cpp.o.d"
  "/root/repo/src/hmm/paging.cpp" "src/hmm/CMakeFiles/bb_hmm.dir/paging.cpp.o" "gcc" "src/hmm/CMakeFiles/bb_hmm.dir/paging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bb_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
