# Empty compiler generated dependencies file for bb_hmm.
# This may be replaced when dependencies are built.
