file(REMOVE_RECURSE
  "CMakeFiles/bb_hmm.dir/controller.cpp.o"
  "CMakeFiles/bb_hmm.dir/controller.cpp.o.d"
  "CMakeFiles/bb_hmm.dir/metadata.cpp.o"
  "CMakeFiles/bb_hmm.dir/metadata.cpp.o.d"
  "CMakeFiles/bb_hmm.dir/paging.cpp.o"
  "CMakeFiles/bb_hmm.dir/paging.cpp.o.d"
  "libbb_hmm.a"
  "libbb_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
