file(REMOVE_RECURSE
  "CMakeFiles/bb_sim.dir/core_model.cpp.o"
  "CMakeFiles/bb_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/bb_sim.dir/experiment.cpp.o"
  "CMakeFiles/bb_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/bb_sim.dir/system.cpp.o"
  "CMakeFiles/bb_sim.dir/system.cpp.o.d"
  "libbb_sim.a"
  "libbb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
