file(REMOVE_RECURSE
  "CMakeFiles/mal_analysis.dir/mal_analysis.cpp.o"
  "CMakeFiles/mal_analysis.dir/mal_analysis.cpp.o.d"
  "mal_analysis"
  "mal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
