# Empty compiler generated dependencies file for mal_analysis.
# This may be replaced when dependencies are built.
