# Empty dependencies file for overfetch_analysis.
# This may be replaced when dependencies are built.
