file(REMOVE_RECURSE
  "CMakeFiles/overfetch_analysis.dir/overfetch_analysis.cpp.o"
  "CMakeFiles/overfetch_analysis.dir/overfetch_analysis.cpp.o.d"
  "overfetch_analysis"
  "overfetch_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overfetch_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
