file(REMOVE_RECURSE
  "CMakeFiles/fig1_access_distribution.dir/fig1_access_distribution.cpp.o"
  "CMakeFiles/fig1_access_distribution.dir/fig1_access_distribution.cpp.o.d"
  "fig1_access_distribution"
  "fig1_access_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_access_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
