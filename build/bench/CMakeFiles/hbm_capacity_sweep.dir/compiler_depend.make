# Empty compiler generated dependencies file for hbm_capacity_sweep.
# This may be replaced when dependencies are built.
