file(REMOVE_RECURSE
  "CMakeFiles/hbm_capacity_sweep.dir/hbm_capacity_sweep.cpp.o"
  "CMakeFiles/hbm_capacity_sweep.dir/hbm_capacity_sweep.cpp.o.d"
  "hbm_capacity_sweep"
  "hbm_capacity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbm_capacity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
