#include "fault/fault.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "common/rng.h"
#include "common/snapshot.h"

namespace bb::fault {

namespace {

// Population salts: distinct hash domains so e.g. a dead bank and a stuck
// row never correlate through a shared prefix.
constexpr u64 kSaltChannel = 1;
constexpr u64 kSaltBank = 2;
constexpr u64 kSaltRow = 3;
constexpr u64 kSaltTransient = 4;
constexpr u64 kSaltSeverity = 5;
constexpr u64 kSaltHbm = 0x4842'4d00ULL;   // "HBM"
constexpr u64 kSaltDram = 0x4452'414dULL;  // "DRAM"

/// One SplitMix64 step folding `v` into the running hash `h`.
u64 mix(u64 h, u64 v) { return SplitMix64(h ^ v).next(); }

/// Uniform [0, 1) from a hash (same 53-bit mapping as Rng::next_double).
double unit(u64 h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

bool draw(u64 h, double p) { return p > 0.0 && unit(h) < p; }

u64 pack_row(u32 channel, u32 bank, u32 row) {
  return (static_cast<u64>(channel) << 48) | (static_cast<u64>(bank) << 32) |
         static_cast<u64>(row);
}

double parse_rate(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    throw std::invalid_argument("bad fault rate: \"" + text + "\"");
  }
  return v;
}

u64 parse_seed(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const u64 v = std::strtoull(text.c_str(), &end, 10);
  // strtoull silently wraps negative input; a seed is a plain decimal.
  if (text.empty() || text[0] == '-' || text[0] == '+' ||
      end != text.c_str() + text.size() || errno == ERANGE) {
    throw std::invalid_argument("bad fault seed: \"" + text + "\"");
  }
  return v;
}

}  // namespace

const char* to_string(EccOutcome o) {
  switch (o) {
    case EccOutcome::kClean: return "clean";
    case EccOutcome::kCorrected: return "corrected";
    case EccOutcome::kUncorrectable: return "uncorrectable";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kStuckRow: return "stuck_row";
    case FaultKind::kDeadBank: return "dead_bank";
    case FaultKind::kDeadChannel: return "dead_channel";
  }
  return "?";
}

const std::vector<std::string>& FaultConfig::profile_names() {
  static const std::vector<std::string> kNames = {
      "none", "transient", "stuck-rows", "dead-bank", "mixed"};
  return kNames;
}

FaultConfig FaultConfig::profile(const std::string& name, double rate,
                                 u64 seed) {
  // NaN fails both comparisons below, so reject it alongside out-of-range.
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument("fault rate must be in [0, 1]");
  }
  FaultConfig cfg;
  cfg.seed = seed;
  DeviceFaultRates r;
  if (name == "none") {
    // all rates stay zero
  } else if (name == "transient") {
    r.transient_per_access = rate;
  } else if (name == "stuck-rows") {
    r.stuck_row_fraction = rate;
  } else if (name == "dead-bank") {
    r.dead_bank_fraction = rate;
  } else if (name == "mixed") {
    r.transient_per_access = rate;
    r.stuck_row_fraction = std::min(1.0, 10.0 * rate);
    r.dead_bank_fraction = std::min(1.0, 100.0 * rate);
  } else {
    std::string known;
    for (const auto& n : profile_names()) known += " " + n;
    throw std::invalid_argument("unknown fault profile: \"" + name +
                                "\" (known:" + known + ")");
  }
  cfg.hbm = r;
  cfg.dram = r;
  return cfg;
}

FaultConfig FaultConfig::parse(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char ch : spec) {
    if (ch == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  parts.push_back(cur);
  if (spec.empty() || parts.size() > 3) {
    throw std::invalid_argument("bad fault spec: \"" + spec +
                                "\" (expected name[:rate[:seed]])");
  }
  const double rate = parts.size() >= 2 ? parse_rate(parts[1]) : 1e-4;
  const u64 seed = parts.size() >= 3 ? parse_seed(parts[2]) : 0;
  return profile(parts[0], rate, seed);
}

DeviceFaultState::DeviceFaultState(const FaultConfig& cfg, bool is_hbm,
                                   u64 run_seed)
    : cfg_(cfg), rates_(is_hbm ? cfg.hbm : cfg.dram) {
  seed_ = mix(mix(run_seed, cfg.seed), is_hbm ? kSaltHbm : kSaltDram);
}

FaultEvent DeviceFaultState::classify(u32 channel, u32 bank, u32 row,
                                      Tick now) {
  FaultEvent ev;
  if (!rates_.any()) return ev;

  // Structural failures first: they dominate whatever else the cell under
  // access might be doing.
  if (draw(mix(mix(seed_, kSaltChannel), channel),
           rates_.dead_channel_fraction)) {
    ev.outcome = EccOutcome::kUncorrectable;
    ev.kind = FaultKind::kDeadChannel;
    return ev;
  }
  if (draw(mix(mix(mix(seed_, kSaltBank), channel), bank),
           rates_.dead_bank_fraction)) {
    ev.outcome = EccOutcome::kUncorrectable;
    ev.kind = FaultKind::kDeadBank;
    return ev;
  }

  // Stuck-at rows raise a CE on every touch until retired; a retired row
  // is served by a spare and falls through to the transient check.
  const u64 row_hash = mix(mix(mix(mix(seed_, kSaltRow), channel), bank), row);
  if (draw(row_hash, rates_.stuck_row_fraction)) {
    RowHealth& health = rows_[pack_row(channel, bank, row)];
    if (!health.retired) {
      ++health.ces;
      if (health.ces >= cfg_.retire_row_after_ces) {
        health.retired = true;
        ++retired_rows_;
        ev.row_retired = true;
      }
      ev.outcome = EccOutcome::kCorrected;
      ev.kind = FaultKind::kStuckRow;
      return ev;
    }
  }

  // Transient upsets are keyed on the tick as well, so a backoff retry of
  // a DUE re-draws — which is exactly what makes bounded retry effective
  // against transients and useless against the structural faults above.
  const u64 t_hash =
      mix(mix(mix(mix(mix(seed_, kSaltTransient), channel), bank), row), now);
  if (draw(t_hash, rates_.transient_per_access)) {
    const bool due = draw(mix(t_hash, kSaltSeverity), cfg_.due_fraction);
    ev.outcome = due ? EccOutcome::kUncorrectable : EccOutcome::kCorrected;
    ev.kind = FaultKind::kTransient;
    return ev;
  }
  return ev;
}

void DeviceFaultState::save(snap::Writer& w) const {
  w.put_u64(rows_.size());
  for (const auto& [key, health] : rows_) {
    w.put_u64(key);
    w.put_u32(health.ces);
    w.put_u8(health.retired ? 1 : 0);
  }
  w.put_u64(retired_rows_);
}

void DeviceFaultState::load(snap::Reader& r) {
  rows_.clear();
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) {
    const u64 key = r.get_u64();
    RowHealth health;
    health.ces = r.get_u32();
    health.retired = r.get_u8() != 0;
    rows_.emplace(key, health);
  }
  retired_rows_ = r.get_u64();
}

}  // namespace bb::fault
