// Deterministic fault injection + SECDED ECC classification for the HBM
// and off-chip DRAM devices.
//
// Three fault populations are modeled, matching the reliability taxonomy
// of field DRAM studies (transient vs permanent, cell vs structural):
//
//   * transient bit flips — per-access Bernoulli draws keyed on the access
//     tick, so a retried access re-draws (and usually clears);
//   * stuck-at rows — a fixed, seed-derived subset of rows that raise a
//     correctable error on every touch until the row is retired to a spare
//     after `retire_row_after_ces` corrections;
//   * dead banks / dead channels — a fixed subset of banks or whole
//     channels whose every access raises a detected-uncorrectable error.
//
// The SECDED layer classifies each access as clean, corrected (CE: result
// delivered after `ce_latency` of scrub cost) or detected-uncorrectable
// (DUE: the controller must retry or re-fetch from a clean copy).
//
// Determinism: every fault decision is a pure hash of (derived seed,
// population salt, geometry coordinates [, tick]) through SplitMix64 —
// no generator state is consumed in access order, so classifications are
// identical no matter how a parallel matrix interleaves runs. The only
// mutable state is per-row CE counts for retirement, which are keyed on
// geometry coordinates and therefore order-independent too.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::fault {

/// SECDED classification of one access.
enum class EccOutcome : u8 {
  kClean,          ///< no error (or fault model disabled)
  kCorrected,      ///< single-bit error corrected; `ce_latency` added
  kUncorrectable,  ///< detected-uncorrectable; data unusable as delivered
};

const char* to_string(EccOutcome o);

/// Which fault population produced a non-clean outcome.
enum class FaultKind : u8 {
  kNone,
  kTransient,
  kStuckRow,
  kDeadBank,
  kDeadChannel,
};

const char* to_string(FaultKind k);

/// Result of classifying one access against the fault model.
struct FaultEvent {
  EccOutcome outcome = EccOutcome::kClean;
  FaultKind kind = FaultKind::kNone;
  /// This access's correction pushed the row over the retirement
  /// threshold; the row is mapped to a spare and serves clean hereafter.
  bool row_retired = false;
};

/// Per-device fault population sizes. Fractions are Bernoulli parameters
/// over the seed-derived hash of the structure's coordinates, so e.g.
/// `dead_bank_fraction = 0.01` marks ~1% of all banks dead for the whole
/// run.
struct DeviceFaultRates {
  double transient_per_access = 0.0;  ///< per-access transient probability
  double stuck_row_fraction = 0.0;    ///< fraction of rows stuck-at
  double dead_bank_fraction = 0.0;    ///< fraction of banks dead
  double dead_channel_fraction = 0.0; ///< fraction of channels dead

  bool any() const {
    return transient_per_access > 0.0 || stuck_row_fraction > 0.0 ||
           dead_bank_fraction > 0.0 || dead_channel_fraction > 0.0;
  }
};

/// Full fault-injection configuration: per-device rates plus the ECC /
/// recovery knobs shared by both devices.
struct FaultConfig {
  DeviceFaultRates hbm;
  DeviceFaultRates dram;

  /// Folded into the run seed when deriving the fault streams, so fault
  /// placement can be varied independently of the workload streams.
  u64 seed = 0;

  /// Fraction of transient errors that exceed SECDED's single-bit reach
  /// (multi-bit upsets) and classify as DUE instead of CE.
  double due_fraction = 0.05;

  /// Extra completion latency of a corrected access (read-modify-write
  /// scrub of the corrected word).
  Tick ce_latency = ns_to_ticks(20.0);

  /// Corrections a row absorbs before being retired to a spare.
  u32 retire_row_after_ces = 4;

  /// DUE recovery: retries the controller issues before declaring the
  /// access unrecoverable, and the initial (doubling) retry backoff.
  u32 max_due_retries = 2;
  Tick due_retry_backoff = ns_to_ticks(100.0);

  bool enabled() const { return hbm.any() || dram.any(); }

  /// Named rate profiles (the `bbsim --fault-profile` vocabulary):
  ///   none       — all rates zero
  ///   transient  — transient_per_access = rate
  ///   stuck-rows — stuck_row_fraction = rate
  ///   dead-bank  — dead_bank_fraction = rate
  ///   mixed      — transient = rate, stuck rows = 10x, dead banks = 100x
  ///                (clamped to 1), a field-like blend for sweeps
  /// Rates apply to both devices. Throws std::invalid_argument for an
  /// unknown name or a rate outside [0, 1].
  static FaultConfig profile(const std::string& name, double rate,
                             u64 seed = 0);

  /// Parses "name[:rate[:seed]]" (e.g. "mixed:1e-4:7"); rate defaults to
  /// 1e-4. Throws std::invalid_argument on malformed input — never
  /// crashes, whatever the bytes (fuzz-tested).
  static FaultConfig parse(const std::string& spec);

  static const std::vector<std::string>& profile_names();
};

/// Per-device fault state: classifies accesses and tracks row retirement.
/// One instance per device per run (worker-private in parallel matrices).
class DeviceFaultState {
 public:
  /// `is_hbm` selects the device's rate set and salts the fault stream so
  /// the two devices fail independently under one seed.
  DeviceFaultState(const FaultConfig& cfg, bool is_hbm, u64 run_seed);

  /// Classifies one access to (channel, bank, row) at tick `now`.
  FaultEvent classify(u32 channel, u32 bank, u32 row, Tick now);

  const FaultConfig& config() const { return cfg_; }
  const DeviceFaultRates& rates() const { return rates_; }
  u64 retired_rows() const { return retired_rows_; }

  /// Snapshot/restore of the mutable state (per-row CE counts and the
  /// retirement tally); configuration and the hash streams are stateless.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  struct RowHealth {
    u32 ces = 0;
    bool retired = false;
  };

  FaultConfig cfg_;
  DeviceFaultRates rates_;
  u64 seed_ = 0;
  std::map<u64, RowHealth> rows_;  ///< keyed on packed (channel,bank,row)
  u64 retired_rows_ = 0;
};

}  // namespace bb::fault
