// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320), shared by the
// streaming trace layer (per-chunk and stream checksums) and the snapshot
// container (payload integrity). One table, one implementation, so the two
// formats can never drift apart on checksum semantics.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.h"

namespace bb {

inline const std::array<u32, 256>& crc32_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

inline constexpr u32 crc32_init() { return 0xFFFFFFFFu; }

inline u32 crc32_update(u32 state, const u8* data, std::size_t n) {
  const auto& t = crc32_table();
  for (std::size_t i = 0; i < n; ++i) {
    state = t[(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

inline constexpr u32 crc32_final(u32 state) { return state ^ 0xFFFFFFFFu; }

inline u32 crc32_of(const u8* data, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace bb
