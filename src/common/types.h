// Fundamental scalar types and unit helpers shared by every module.
//
// The simulation time base is the "tick": one tick is one picosecond, so
// both HBM2-class and DDR4-3200 clock periods (Table I of the paper) are
// exactly representable as integers.
#pragma once

#include <cstdint>
#include <limits>

namespace bb {

/// Simulation time in picoseconds.
using Tick = std::uint64_t;

/// Fractional nanoseconds, for exported latencies and timing parameters.
/// Semantically distinct from Tick: the tick-narrowing analysis rule
/// (tools/bb_analyze) flags arithmetic that narrows either; declaring a
/// quantity as Ns documents the unit at the interface instead of forcing a
/// cast at every use site.
using Ns = double;

/// Physical (or OS-visible flat) byte address.
using Addr = std::uint64_t;

/// Instruction counts, sizes, and other wide unsigned quantities.
using u64 = std::uint64_t;
using u32 = std::uint32_t;
using u16 = std::uint16_t;
using u8 = std::uint8_t;
using i64 = std::int64_t;

inline constexpr Tick kTickInvalid = std::numeric_limits<Tick>::max();
inline constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

inline constexpr u64 KiB = 1024;
inline constexpr u64 MiB = 1024 * KiB;
inline constexpr u64 GiB = 1024 * MiB;

/// Ticks per nanosecond (the tick is one picosecond).
inline constexpr Tick kTicksPerNs = 1000;

/// Converts nanoseconds (possibly fractional) to ticks, rounding to nearest.
constexpr Tick ns_to_ticks(Ns ns) {
  return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/// Converts ticks to (fractional) nanoseconds.
constexpr Ns ticks_to_ns(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/// Converts ticks to seconds.
constexpr double ticks_to_s(Tick t) { return static_cast<double>(t) * 1e-12; }

/// True iff `x` is a non-zero power of two.
constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x > 0.
constexpr u32 log2_floor(u64 x) {
  u32 r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x > 0: number of bits needed to index x distinct values.
constexpr u32 bits_for(u64 distinct_values) {
  if (distinct_values <= 1) return 0;
  return log2_floor(distinct_values - 1) + 1;
}

/// ceil(a / b) for b > 0.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// Read/write direction of a memory request.
enum class AccessType : u8 { kRead, kWrite };

constexpr const char* to_string(AccessType t) {
  return t == AccessType::kRead ? "read" : "write";
}

}  // namespace bb
