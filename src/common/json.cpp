#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace bb {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars produces the shortest round-trip form, independent of
  // locale — the same bits always print the same bytes, which the golden
  // hash test relies on.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace bb
