#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace bb {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars produces the shortest round-trip form, independent of
  // locale — the same bits always print the same bytes, which the golden
  // hash test relies on.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v && v->type == Type::kString ? v->string : fallback;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->type == Type::kNumber ? v->number : fallback;
}

namespace {

// Recursive-descent parser over a string_view cursor. Depth is bounded to
// keep hostile input from exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    const bool ok = parse_value(out, 0) && (skip_ws(), pos_ == text_.size());
    if (!ok && error) {
      *error = error_.empty() ? "malformed JSON" : error_;
      *error += " at offset " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  bool consume(char expect, const char* msg) {
    if (pos_ >= text_.size() || text_[pos_] != expect) return fail(msg);
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected string")) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not combined;
          // the emitter only \u-escapes control characters, which are BMP).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      return fail("bad number");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        out.type = JsonValue::Type::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':', "expected ':'")) return false;
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          out.object[std::move(key)] = std::move(member);
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume('}', "expected '}'");
        }
      }
      case '[': {
        ++pos_;
        out.type = JsonValue::Type::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue elem;
          if (!parse_value(elem, depth + 1)) return false;
          out.array.push_back(std::move(elem));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume(']', "expected ']'");
        }
      }
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return JsonParser(text).parse(out, error);
}

}  // namespace bb
