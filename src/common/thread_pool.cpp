#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace bb {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads ? threads : default_concurrency();
  workers_.reserve(n);
  for (unsigned id = 0; id < n; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.emplace_back([t = std::move(task)](unsigned) { t(); });
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, unsigned)>& body) {
  if (n == 0) return;
  // One "lane" per worker; each lane pulls the next unclaimed index, so a
  // slow item never blocks the others. `body` is captured by reference:
  // this call does not return until every lane has drained.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes = std::min<std::size_t>(size(), n);
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t l = 0; l < lanes; ++l) {
      queue_.emplace_back([next, n, &body](unsigned worker) {
        for (std::size_t i = (*next)++; i < n; i = (*next)++) {
          body(i, worker);
        }
      });
      ++in_flight_;
    }
  }
  work_cv_.notify_all();
  wait_idle();
}

void ThreadPool::worker_loop(unsigned id) {
  for (;;) {
    std::function<void(unsigned)> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task(id);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace bb
