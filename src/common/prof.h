// bb::prof — host-side performance observability.
//
// Everything in this namespace measures the *simulator process* (wall
// clock, phase breakdown, peak RSS), never the simulated machine. The two
// worlds are kept strictly one-directional: simulation code may *feed* the
// profiler (RAII ScopedPhase markers on hot paths), but no profiler value
// may ever flow back into simulated state or a RunResult simulated field.
// tools/bb_analyze enforces that direction with the `prof-isolation` rule:
// src/common/prof.cpp is the single sanctioned wall-clock site in the
// tree, and any RunResult field assignment whose right-hand side mentions
// a prof value is an error.
//
// Phases (exclusive self-time; entering a nested phase pauses the outer
// one, so the five buckets partition the instrumented span):
//   trace-gen       synthetic trace generation (TraceGenerator::next)
//   hmm-access      hybrid-memory-controller request service, minus the
//                   device-timing time it nests
//   device-timing   DramDevice::access (bank/bus/queue timing model)
//   stats-commit    end-of-run RunResult assembly
//   io              result serialization (CSV/JSON/epoch/trace writers)
//
// Profiling is opt-in (bbsim --profile, bench/throughput). While disabled
// a ScopedPhase costs one relaxed atomic load; simulated outputs are
// byte-identical either way — the golden-run hash pins that.
//
// Per-worker aggregation: each thread accumulates into its own slot
// (registered on first use), so `--jobs` matrices profile without locks on
// the hot path; aggregate() merges the slots after the pool drains.
#pragma once

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "common/types.h"

namespace bb::prof {

enum class Phase : u8 {
  kTraceGen = 0,
  kHmmAccess,
  kDeviceTiming,
  kStatsCommit,
  kIo,
  kNone,  ///< sentinel: "outside any instrumented phase"
};

inline constexpr std::size_t kPhaseCount = 5;

/// Stable snake_case phase name ("trace_gen", ...); used as JSON keys, so
/// it must never change for a given enumerator.
const char* to_string(Phase p);

/// Per-thread (and, merged, per-process) phase accounting. Self-time only:
/// a nested ScopedPhase suspends its parent, so ns[] entries sum to the
/// instrumented wall time without double counting.
struct PhaseTotals {
  std::array<u64, kPhaseCount> ns{};     ///< exclusive wall time per phase
  std::array<u64, kPhaseCount> calls{};  ///< ScopedPhase activations

  void merge(const PhaseTotals& o);
  u64 total_ns() const;
};

/// Turns profiling on/off process-wide. Call only from the driver, between
/// runs — never from worker threads.
void enable(bool on);
bool enabled();

/// Clears every thread slot. Call between repetitions while no worker is
/// inside a ScopedPhase (e.g. between bench/throughput reps).
void reset();

/// Merged totals across every thread that ever recorded a phase.
PhaseTotals aggregate();

/// Busy (instrumented) nanoseconds per active worker thread, descending.
/// Threads that never entered a phase are omitted.
std::vector<u64> worker_busy_ns();

/// Monotonic host clock in nanoseconds. The only wall-clock primitive in
/// the tree; everything host-timed builds on it.
u64 monotonic_ns();

/// Peak resident set size of this process in bytes (0 when the platform
/// offers no cheap way to read it).
u64 peak_rss_bytes();

namespace detail {
extern std::atomic<bool> g_enabled;
/// Switches the calling thread into `p`, returning the suspended phase.
Phase enter(Phase p);
/// Ends the current phase and resumes `prev`.
void leave(Phase prev);
}  // namespace detail

/// RAII phase marker. Cheap enough for per-request hot paths: a single
/// relaxed load while profiling is off, one clock read per transition when
/// it is on.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) {
    if (detail::g_enabled.load(std::memory_order_relaxed)) {
      prev_ = detail::enter(p);
      active_ = true;
    }
  }
  ~ScopedPhase() {
    if (active_) detail::leave(prev_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase prev_ = Phase::kNone;
  bool active_ = false;
};

/// Host wall-clock stopwatch for progress/ETA reporting and harness
/// timing. Works whether or not profiling is enabled.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_ns()) {}
  void restart() { start_ns_ = monotonic_ns(); }
  double seconds() const;

 private:
  u64 start_ns_;
};

/// One run's host-side summary — the payload of the `"host"` JSON section
/// and the `bbsim --profile` stderr report. Host-only by construction:
/// nothing in here may be copied into a RunResult simulated field.
struct HostReport {
  double wall_seconds = 0;
  u64 requests = 0;  ///< simulated memory requests completed in the run
  double requests_per_sec = 0;
  u64 peak_rss_bytes = 0;
  PhaseTotals phases;
  std::vector<u64> worker_busy_ns_by_thread;  ///< descending, active only
};

/// Assembles a HostReport from the current profiler state: phase totals,
/// worker slots and peak RSS, with requests/sec derived from the inputs.
HostReport make_host_report(double wall_seconds, u64 requests);

/// The phase breakdown as a single-line JSON object:
/// {"trace_gen":{"seconds":..,"calls":..}, ...}.
std::string phases_to_json(const PhaseTotals& t);

/// The full report as a single-line JSON object (schema_version 1).
std::string host_report_to_json(const HostReport& r);

}  // namespace bb::prof
