// Minimal JSON emission and parsing helpers.
//
// The experiment runner exports machine-readable per-run results as JSON
// alongside the flat CSV (write_json / write_csv), and the checkpoint
// journal reads single-line JSON objects back on resume. Both sides stay
// tiny and locale-independent rather than pulling in a library.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bb {

/// Escapes a string for use inside a JSON string literal (quotes not
/// included). Control characters are \u-escaped per RFC 8259.
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number: shortest representation that
/// round-trips exactly, locale-independent. Non-finite values (which JSON
/// cannot represent) are emitted as null.
std::string json_double(double v);

/// Parsed JSON value. Objects keep keys in a std::map (sorted, so
/// iteration is deterministic); numbers are stored as double.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Convenience accessors returning a fallback on type mismatch.
  std::string get_string(const std::string& key,
                         const std::string& fallback = {}) const;
  double get_number(const std::string& key, double fallback = 0.0) const;
};

/// Parses one JSON document from `text`. Returns false (and fills `error`
/// if non-null) on malformed input or trailing garbage.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace bb
