// Minimal JSON emission helpers for result export.
//
// The experiment runner exports machine-readable per-run results as JSON
// alongside the flat CSV (write_json / write_csv). Only emission is needed
// — nothing in the simulator parses JSON — so these helpers stay tiny and
// locale-independent rather than pulling in a library.
#pragma once

#include <string>
#include <string_view>

namespace bb {

/// Escapes a string for use inside a JSON string literal (quotes not
/// included). Control characters are \u-escaped per RFC 8259.
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number: shortest representation that
/// round-trips exactly, locale-independent. Non-finite values (which JSON
/// cannot represent) are emitted as null.
std::string json_double(double v);

}  // namespace bb
