#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace bb {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell;
      if (c + 1 < widths.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string csv_escape(const std::string& cell) {
  // RFC 4180: a cell containing a comma, double quote, or line break is
  // quoted, and embedded double quotes are doubled.
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return fmt_double(bytes, bytes < 10 ? 2 : 1) + " " + kUnits[unit];
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_double(fraction * 100.0, decimals) + "%";
}

}  // namespace bb
