// Minimal command-line flag parsing for the examples and bench harnesses.
//
//   bb::Flags flags(argc, argv);
//   const u64 n = flags.get_u64("instructions", 50'000'000);
//   const std::string w = flags.get_string("workload", "mcf");
//   if (flags.has("help")) { ... }
//
// Accepts --name=value, --name value, and bare --name switches. Positional
// arguments are collected in order.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace bb {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  u64 get_u64(const std::string& name, u64 fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bb
