#include "common/cli.h"

#include <exception>
#include <filesystem>
#include <ios>
#include <iostream>
#include <stdexcept>

namespace bb::cli {

int cli_main(int argc, char** argv, const char* tool,
             const std::function<int(const Flags&)>& run) {
  try {
    const Flags flags(argc, argv);
    return run(flags);
  } catch (const std::invalid_argument& e) {
    std::cerr << tool << ": " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::filesystem::filesystem_error& e) {
    std::cerr << tool << ": I/O error: " << e.what() << "\n";
    return kExitIo;
  } catch (const std::ios_base::failure& e) {
    std::cerr << tool << ": I/O error: " << e.what() << "\n";
    return kExitIo;
  } catch (const std::exception& e) {
    std::cerr << tool << ": internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}

}  // namespace bb::cli
