// Minimal fixed-size worker pool for parallel experiment matrices.
//
// Tasks are plain callables drained FIFO by a fixed set of workers.
// parallel_for() adds dynamic (self-balancing) index scheduling with a
// stable worker id per executing thread, so callers can give each worker
// its own heavyweight scratch state (e.g. one sim::System per worker).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bb {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 uses default_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then stops and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one task. An exception escaping a task is captured and
  /// rethrown from the next wait_idle() call (first one wins).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.
  void wait_idle();

  /// Runs body(i, worker) for every i in [0, n). Indices are handed out
  /// dynamically (one at a time), so uneven per-item costs balance across
  /// workers; `worker` is a stable id < size() identifying the executing
  /// thread. Blocks until all n calls return; rethrows the first exception
  /// thrown by `body`.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, unsigned)>& body);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static unsigned default_concurrency();

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::deque<std::function<void(unsigned)>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for tasks
  std::condition_variable idle_cv_;  ///< wait_idle waits here for drain
  std::size_t in_flight_ = 0;        ///< queued + currently running tasks
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace bb
