// Compact dynamic bit vector used for the BLE valid/dirty vectors and for
// cache-line presence tracking. Sized at construction; bounds-checked.
#pragma once

#include <cassert>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"

namespace bb {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits) { resize(nbits); }

  void resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.assign((nbits + 63) / 64, 0);
  }

  std::size_t size() const { return nbits_; }

  bool test(std::size_t i) const {
    assert(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i, bool v = true) {
    assert(i < nbits_);
    if (v) {
      words_[i >> 6] |= (u64{1} << (i & 63));
    } else {
      words_[i >> 6] &= ~(u64{1} << (i & 63));
    }
  }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  void set_all() {
    for (auto& w : words_) w = ~u64{0};
    trim();
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (u64 w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const {
    for (u64 w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  bool all() const { return popcount() == nbits_; }

  bool operator==(const BitVector& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  void save(snap::Writer& w) const {
    w.put_u64(nbits_);
    for (u64 word : words_) w.put_u64(word);
  }

  void load(snap::Reader& r) {
    resize(static_cast<std::size_t>(r.get_u64()));
    for (u64& word : words_) word = r.get_u64();
  }

 private:
  void trim() {
    const std::size_t rem = nbits_ & 63;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (u64{1} << rem) - 1;
    }
  }

  std::size_t nbits_ = 0;
  std::vector<u64> words_;
};

}  // namespace bb
