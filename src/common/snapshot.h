// bb::snap — versioned, CRC32-protected binary serialization of in-flight
// simulator state (the crash-tolerance layer; DESIGN.md §15).
//
// A snapshot file is:
//
//   magic "BBSNAP01" (8 B) | u32 format version | u64 payload bytes |
//   u32 payload CRC32 | payload
//
// all little-endian. The payload is a sequence of type-tagged primitives
// (one tag byte before every value), so a reader that drifts out of sync
// with its writer fails loudly at the first mismatched tag instead of
// silently reinterpreting bytes. Save/load methods across the tree keep
// their put_*/get_* sequences in mirror order; tools/bb_analyze's
// snapshot-schema rule enforces that parity statically.
//
// Error contract (matches bb::cli): a corrupt, truncated or
// version-mismatched snapshot throws SnapshotError, a
// std::ios_base::failure — exit code 3, fail closed. Commits are atomic:
// the file is written to `path + ".tmp"` and renamed into place, so a
// crash mid-write can never leave a torn snapshot under the final name.
#pragma once

#include <cstring>
#include <ios>
#include <string>

#include "common/types.h"

namespace bb::snap {

/// Corrupt, truncated or incompatible snapshot (never a usage error).
class SnapshotError : public std::ios_base::failure {
 public:
  explicit SnapshotError(const std::string& what)
      : std::ios_base::failure("snapshot: " + what) {}
};

inline constexpr u32 kFormatVersion = 1;

/// Payload type tags (one byte preceding every value).
enum class Tag : u8 {
  kU8 = 1,
  kU32 = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,
  kStr = 6,
};

/// Accumulates a payload in memory; commit() seals and atomically writes
/// the container file.
class Writer {
 public:
  void put_u8(u8 v) {
    tag(Tag::kU8);
    buf_.push_back(static_cast<char>(v));
  }
  void put_u32(u32 v) {
    tag(Tag::kU32);
    raw_u64(v, 4);
  }
  void put_u64(u64 v) {
    tag(Tag::kU64);
    raw_u64(v, 8);
  }
  void put_i64(i64 v) {
    tag(Tag::kI64);
    raw_u64(static_cast<u64>(v), 8);
  }
  void put_f64(double v) {
    tag(Tag::kF64);
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    raw_u64(bits, 8);
  }
  void put_str(const std::string& s);

  const std::string& payload() const { return buf_; }

  /// Writes magic/version/size/CRC + payload to `path + ".tmp"`, then
  /// renames over `path`. Throws std::ios_base::failure on I/O errors.
  /// Honors the BB_TEST_KILL_AFTER_SNAPSHOTS / BB_TEST_KILL_MID_WRITE
  /// environment hooks (see snapshot.cpp) used by the kill-and-resume
  /// supervisor test.
  void commit(const std::string& path) const;

 private:
  void tag(Tag t) { buf_.push_back(static_cast<char>(t)); }
  void raw_u64(u64 v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

/// Opens and verifies a snapshot file, then yields its typed values in
/// writer order. Every structural problem throws SnapshotError.
class Reader {
 public:
  explicit Reader(const std::string& path);

  u8 get_u8() {
    tag(Tag::kU8);
    return static_cast<u8>(take(1)[0]);
  }
  u32 get_u32() {
    tag(Tag::kU32);
    return static_cast<u32>(raw_u64(4));
  }
  u64 get_u64() {
    tag(Tag::kU64);
    return raw_u64(8);
  }
  i64 get_i64() {
    tag(Tag::kI64);
    return static_cast<i64>(raw_u64(8));
  }
  double get_f64() {
    tag(Tag::kF64);
    const u64 bits = raw_u64(8);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string get_str();

  /// True when every payload byte has been consumed (restores verify this
  /// so a short read cannot pass silently).
  bool at_end() const { return pos_ == buf_.size(); }

 private:
  void tag(Tag expect);
  const char* take(std::size_t n);
  u64 raw_u64(int bytes) {
    const char* p = take(static_cast<std::size_t>(bytes));
    u64 v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
    }
    return v;
  }

  std::string buf_;  ///< payload only (header verified in the ctor)
  std::size_t pos_ = 0;
};

/// True when `path` exists (a plain stat probe; no directory iteration).
bool file_exists(const std::string& path);

/// Writes `content` to `path` atomically: `path + ".tmp"` then rename.
/// The crash-atomicity primitive behind every output artifact (CSV, JSON,
/// epoch CSV, event trace, BENCH files, journal rewrites). Throws
/// std::ios_base::failure on any I/O error.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace bb::snap
