// Lightweight statistics primitives: named counters, scalar summaries and
// fixed-bucket histograms used for every reported metric.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb {

/// Monotonic event counter.
class Counter {
 public:
  void inc(u64 by = 1) { value_ += by; }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  u64 value_ = 0;
};

/// Running scalar summary (count / sum / min / max / mean).
class ScalarStat {
 public:
  void sample(double v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
  }

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  void reset() { *this = ScalarStat{}; }

 private:
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over fixed, caller-supplied bucket upper bounds.
///
/// A sample `v` lands in the first bucket whose upper bound is > v; samples
/// beyond the last bound land in an overflow bucket.
class Histogram {
 public:
  /// Empty histogram (single overflow bucket); useful as a default member
  /// that is later replaced by one with real bounds.
  Histogram() : Histogram(std::vector<double>{}) {}
  explicit Histogram(std::vector<double> upper_bounds);

  void sample(double v, u64 weight = 1);

  std::size_t bucket_count() const { return counts_.size(); }
  u64 bucket(std::size_t i) const { return counts_.at(i); }
  double upper_bound(std::size_t i) const { return bounds_.at(i); }
  u64 total() const { return total_; }

  /// Fraction of samples in bucket i (0 if empty histogram).
  double fraction(std::size_t i) const;

  /// Estimates the q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket containing the target rank. Bucket i spans
  /// [bounds[i-1], bounds[i]) with bucket 0 starting at 0; samples in the
  /// overflow bucket are clamped to the last bound (a histogram cannot know
  /// how far past it they landed). Returns 0 for an empty histogram.
  double quantile(double q) const;

  void reset();

  /// Snapshot/restore of the counts (bounds are construction-time shape and
  /// must match; load fails closed on a bucket-count mismatch).
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  std::vector<double> bounds_;
  std::vector<u64> counts_;  // bounds_.size() + 1 (overflow)
  u64 total_ = 0;
};

/// Geometric mean of a list of positive values (0 if empty or any <= 0).
double geomean(const std::vector<double>& values);

/// A named bundle of counters for ad-hoc bookkeeping in tests/examples.
class StatGroup {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  const std::map<std::string, Counter>& counters() const { return counters_; }
  void reset();

 private:
  std::map<std::string, Counter> counters_;
};

}  // namespace bb
