#include "common/snapshot.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>

#include "common/crc32.h"

namespace bb::snap {
namespace {

constexpr char kMagic[8] = {'B', 'B', 'S', 'N', 'A', 'P', '0', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4;

void put_le32(char* out, u32 v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_le64(char* out, u64 v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

u32 get_le32(const char* in) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(static_cast<u8>(in[i])) << (8 * i);
  return v;
}

u64 get_le64(const char* in) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(static_cast<u8>(in[i])) << (8 * i);
  return v;
}

u64 env_count(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v ? 0 : static_cast<u64>(parsed);
}

// Deterministic crash injection for the kill-and-resume supervisor test
// (tools/check_crash_recovery): BB_TEST_KILL_AFTER_SNAPSHOTS=N raises
// SIGKILL right after the Nth successful commit; BB_TEST_KILL_MID_WRITE=N
// raises it during the Nth commit with only part of the temp file written,
// leaving a torn `.tmp` that a restore must ignore. Counters are
// process-wide so "the Nth snapshot" is seeded and reproducible.
u64 g_commits = 0;

void kill_self() {
  std::raise(SIGKILL);
}

}  // namespace

void Writer::put_str(const std::string& s) {
  tag(Tag::kStr);
  raw_u64(s.size(), 8);
  buf_.append(s);
}

void Writer::commit(const std::string& path) const {
  const u64 attempt = ++g_commits;

  std::string file;
  file.reserve(kHeaderBytes + buf_.size());
  file.append(kMagic, sizeof(kMagic));
  char scratch[8];
  put_le32(scratch, kFormatVersion);
  file.append(scratch, 4);
  put_le64(scratch, buf_.size());
  file.append(scratch, 8);
  put_le32(scratch, crc32_of(reinterpret_cast<const u8*>(buf_.data()),
                             buf_.size()));
  file.append(scratch, 4);
  file.append(buf_);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::ios_base::failure("snapshot: cannot open " + tmp);
    }
    if (env_count("BB_TEST_KILL_MID_WRITE") == attempt) {
      out.write(file.data(), static_cast<std::streamsize>(file.size() / 2));
      out.flush();
      kill_self();
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!out.flush()) {
      throw std::ios_base::failure("snapshot: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::ios_base::failure("snapshot: cannot rename " + tmp + " -> " +
                                 path);
  }
  if (env_count("BB_TEST_KILL_AFTER_SNAPSHOTS") == attempt) {
    kill_self();
  }
}

Reader::Reader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (file.size() < kHeaderBytes) {
    throw SnapshotError("truncated header in " + path);
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("bad magic in " + path);
  }
  const u32 version = get_le32(file.data() + 8);
  if (version != kFormatVersion) {
    throw SnapshotError("format version " + std::to_string(version) +
                        " (expected " + std::to_string(kFormatVersion) +
                        ") in " + path);
  }
  const u64 payload_bytes = get_le64(file.data() + 12);
  const u32 crc = get_le32(file.data() + 20);
  if (file.size() - kHeaderBytes != payload_bytes) {
    throw SnapshotError("payload size mismatch in " + path);
  }
  buf_ = file.substr(kHeaderBytes);
  if (crc32_of(reinterpret_cast<const u8*>(buf_.data()), buf_.size()) != crc) {
    throw SnapshotError("payload CRC mismatch in " + path);
  }
}

void Reader::tag(Tag expect) {
  const char* p = take(1);
  if (static_cast<u8>(*p) != static_cast<u8>(expect)) {
    throw SnapshotError("type tag mismatch at offset " +
                        std::to_string(pos_ - 1) + " (got " +
                        std::to_string(static_cast<u8>(*p)) + ", expected " +
                        std::to_string(static_cast<u8>(expect)) + ")");
  }
}

const char* Reader::take(std::size_t n) {
  if (buf_.size() - pos_ < n) {
    throw SnapshotError("payload truncated at offset " + std::to_string(pos_));
  }
  const char* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

std::string Reader::get_str() {
  tag(Tag::kStr);
  const u64 n = raw_u64(8);
  if (n > buf_.size() - pos_) {
    throw SnapshotError("string length overruns payload at offset " +
                        std::to_string(pos_));
  }
  const char* p = take(static_cast<std::size_t>(n));
  return std::string(p, static_cast<std::size_t>(n));
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::ios_base::failure("cannot open " + tmp);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out.flush()) {
      throw std::ios_base::failure("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::ios_base::failure("cannot rename " + tmp + " -> " + path);
  }
}

}  // namespace bb::snap
