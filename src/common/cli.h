// Shared command-line entry-point contract for every tool in the tree
// (bbsim and the bench/ harnesses).
//
// Exit codes: 0 success, 2 usage error (bad flag / unknown name), 3 I/O
// error, 4 internal error, 130 interrupted. bbsim documents the contract
// in --help and tools/check_cli_errors enforces it end-to-end; routing
// every main() through cli_main keeps the harnesses on the same contract
// with one-line diagnostics instead of raw uncaught exceptions.
#pragma once

#include <functional>

#include "common/flags.h"

namespace bb::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitIo = 3;
inline constexpr int kExitInternal = 4;
inline constexpr int kExitInterrupted = 130;

/// Parses flags and invokes `run`, mapping escaped exceptions onto the
/// exit-code contract with a one-line `tool: ...` diagnostic on stderr:
/// std::invalid_argument → 2 (usage), std::ios_base::failure /
/// std::filesystem::filesystem_error → 3 (I/O), anything else → 4.
int cli_main(int argc, char** argv, const char* tool,
             const std::function<int(const Flags&)>& run);

}  // namespace bb::cli
