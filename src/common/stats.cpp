#include "common/stats.h"

#include <cmath>

#include "common/snapshot.h"

namespace bb {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::sample(double v, u64 weight) {
  // First bucket whose upper bound is > v; past-the-end means overflow.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += weight;
  total_ += weight;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double n = static_cast<double>(counts_[i]);
    if (cum + n < target || n == 0.0) {
      cum += n;
      continue;
    }
    if (i >= bounds_.size()) {
      // Overflow bucket has no upper edge; clamp to the last finite bound.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    return lower + (bounds_[i] - lower) * (target - cum) / n;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::save(snap::Writer& w) const {
  w.put_u64(total_);
  w.put_u64(counts_.size());
  for (u64 c : counts_) w.put_u64(c);
}

void Histogram::load(snap::Reader& r) {
  total_ = r.get_u64();
  const u64 n = r.get_u64();
  if (n != counts_.size()) {
    throw snap::SnapshotError("histogram bucket count mismatch");
  }
  for (u64& c : counts_) c = r.get_u64();
}

void Histogram::reset() {
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void StatGroup::reset() {
  for (auto& [_, c] : counters_) c.reset();
}

}  // namespace bb
