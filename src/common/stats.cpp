#include "common/stats.h"

#include <cmath>

namespace bb {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::sample(double v, u64 weight) {
  std::size_t i = 0;
  while (i < bounds_.size() && v >= bounds_[i]) ++i;
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

void Histogram::reset() {
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void StatGroup::reset() {
  for (auto& [_, c] : counters_) c.reset();
}

}  // namespace bb
