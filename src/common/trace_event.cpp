#include "common/trace_event.h"

#include <ostream>

#include "common/json.h"
#include "common/snapshot.h"

namespace bb {

TraceEvent& TraceEvent::arg(std::string key, u64 v) {
  Arg a;
  a.key = std::move(key);
  a.kind = Arg::Kind::kU64;
  a.u = v;
  args.push_back(std::move(a));
  return *this;
}

TraceEvent& TraceEvent::arg(std::string key, i64 v) {
  Arg a;
  a.key = std::move(key);
  a.kind = Arg::Kind::kI64;
  a.i = v;
  args.push_back(std::move(a));
  return *this;
}

TraceEvent& TraceEvent::arg(std::string key, double v) {
  Arg a;
  a.key = std::move(key);
  a.kind = Arg::Kind::kDouble;
  a.d = v;
  args.push_back(std::move(a));
  return *this;
}

TraceEvent& TraceEvent::arg(std::string key, std::string v) {
  Arg a;
  a.key = std::move(key);
  a.kind = Arg::Kind::kString;
  a.s = std::move(v);
  args.push_back(std::move(a));
  return *this;
}

namespace {

void append_arg_value(std::string& out, const TraceEvent::Arg& a) {
  switch (a.kind) {
    case TraceEvent::Arg::Kind::kU64: out += std::to_string(a.u); break;
    case TraceEvent::Arg::Kind::kI64: out += std::to_string(a.i); break;
    case TraceEvent::Arg::Kind::kDouble: out += json_double(a.d); break;
    case TraceEvent::Arg::Kind::kString:
      out += '"';
      out += json_escape(a.s);
      out += '"';
      break;
  }
}

void append_args_object(std::string& out, const TraceEvent& ev) {
  out += '{';
  for (std::size_t i = 0; i < ev.args.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(ev.args[i].key);
    out += "\":";
    append_arg_value(out, ev.args[i]);
  }
  out += '}';
}

}  // namespace

std::string trace_event_to_json(const TraceEvent& ev,
                                const std::string& extra) {
  std::string out = "{";
  out += extra;
  out += "\"tick\":";
  out += std::to_string(ev.tick);
  out += ",\"name\":\"";
  out += json_escape(ev.name);
  out += "\",\"cat\":\"";
  out += json_escape(ev.cat);
  out += "\",\"args\":";
  append_args_object(out, ev);
  out += '}';
  return out;
}

void JsonlTraceSink::emit(TraceEvent ev) {
  os_ << trace_event_to_json(ev) << '\n';
}

void write_trace_jsonl(const std::vector<TraceEvent>& events,
                       std::ostream& os, const std::string& extra) {
  for (const auto& ev : events) {
    os << trace_event_to_json(ev, extra) << '\n';
  }
}

void write_trace_chrome_header(std::ostream& os) {
  os << "{\"traceEvents\":[\n";
}

void write_trace_chrome_footer(std::ostream& os) {
  os << "\n]}\n";
}

void write_trace_chrome_events(const std::vector<TraceEvent>& events,
                               std::ostream& os, u64 pid,
                               const std::string& process_name,
                               bool& first_record) {
  const auto sep = [&]() -> const char* {
    if (first_record) {
      first_record = false;
      return "";
    }
    return ",\n";
  };
  if (!process_name.empty()) {
    os << sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(process_name)
       << "\"}}";
  }
  for (const auto& ev : events) {
    // Chrome's ts unit is microseconds; the tick is one picosecond.
    std::string line = "{\"name\":\"";
    line += json_escape(ev.name);
    line += "\",\"cat\":\"";
    line += json_escape(ev.cat);
    line += "\",\"ph\":\"i\",\"s\":\"p\",\"ts\":";
    line += json_double(static_cast<double>(ev.tick) * 1e-6);
    line += ",\"pid\":";
    line += std::to_string(pid);
    line += ",\"tid\":0,\"args\":";
    append_args_object(line, ev);
    line += '}';
    os << sep() << line;
  }
}

void write_trace_chrome(const std::vector<TraceEvent>& events,
                        std::ostream& os, const std::string& process_name) {
  write_trace_chrome_header(os);
  bool first = true;
  write_trace_chrome_events(events, os, 0, process_name, first);
  write_trace_chrome_footer(os);
}

void MemoryTraceSink::save(snap::Writer& w) const {
  w.put_u64(events_.size());
  for (const TraceEvent& ev : events_) {
    w.put_u64(ev.tick);
    w.put_str(ev.name);
    w.put_str(ev.cat);
    w.put_u64(ev.args.size());
    for (const TraceEvent::Arg& a : ev.args) {
      w.put_str(a.key);
      w.put_u8(static_cast<u8>(a.kind));
      w.put_u64(a.u);
      w.put_i64(a.i);
      w.put_f64(a.d);
      w.put_str(a.s);
    }
  }
}

void MemoryTraceSink::load(snap::Reader& r) {
  events_.clear();
  events_.resize(static_cast<std::size_t>(r.get_u64()));
  for (TraceEvent& ev : events_) {
    ev.tick = r.get_u64();
    ev.name = r.get_str();
    ev.cat = r.get_str();
    ev.args.resize(static_cast<std::size_t>(r.get_u64()));
    for (TraceEvent::Arg& a : ev.args) {
      a.key = r.get_str();
      a.kind = static_cast<TraceEvent::Arg::Kind>(r.get_u8());
      a.u = r.get_u64();
      a.i = r.get_i64();
      a.d = r.get_f64();
      a.s = r.get_str();
    }
  }
}

}  // namespace bb
