// Plain-text table rendering for benchmark harness output.
//
// The figure/table reproduction binaries print aligned textual tables (and
// optional CSV) so their output can be compared to the paper's rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; it may have fewer cells than there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Renders as RFC 4180 comma-separated values: cells containing commas,
  /// double quotes, or line breaks are quoted, embedded quotes doubled.
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV cell per RFC 4180: returned verbatim unless it contains
/// a comma, double quote, or line break, in which case it is quoted with
/// embedded quotes doubled.
std::string csv_escape(const std::string& cell);

/// Formats a double with the given number of decimals (locale-independent).
std::string fmt_double(double v, int decimals = 2);

/// Formats a byte count with a binary-unit suffix ("1.5 MiB").
std::string fmt_bytes(double bytes);

/// Formats a fraction as a percentage string ("12.3%").
std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace bb
