// bb::prof implementation — the single sanctioned wall-clock site in the
// tree (tools/bb_analyze `prof-isolation` rule). All chrono usage lives
// here; the header exposes only integer nanoseconds.
#include "common/prof.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bb::prof {

namespace {

/// Per-thread accumulator. Owned by the global registry (so ASan sees the
/// slots as reachable, not leaked) and pointed at by a thread_local; only
/// the owning thread writes `totals` on the hot path, so reads from
/// aggregate() must happen after workers have quiesced (pool joined).
struct Slot {
  PhaseTotals totals;
  Phase current = Phase::kNone;
  u64 phase_start_ns = 0;
};

std::mutex g_registry_mu;
std::vector<std::unique_ptr<Slot>>& registry() {
  static std::vector<std::unique_ptr<Slot>> r;
  return r;
}

Slot& local_slot() {
  thread_local Slot* slot = [] {
    auto owned = std::make_unique<Slot>();
    Slot* raw = owned.get();
    std::lock_guard<std::mutex> lock(g_registry_mu);
    registry().push_back(std::move(owned));
    return raw;
  }();
  return *slot;
}

/// Flushes time since `slot.phase_start_ns` into the phase the thread is
/// currently in, then stamps `now` as the new phase start.
void flush(Slot& slot, u64 now) {
  if (slot.current != Phase::kNone) {
    const auto idx = static_cast<std::size_t>(slot.current);
    slot.totals.ns[idx] += now - slot.phase_start_ns;
  }
  slot.phase_start_ns = now;
}

}  // namespace

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kTraceGen:
      return "trace_gen";
    case Phase::kHmmAccess:
      return "hmm_access";
    case Phase::kDeviceTiming:
      return "device_timing";
    case Phase::kStatsCommit:
      return "stats_commit";
    case Phase::kIo:
      return "io";
    case Phase::kNone:
      break;
  }
  return "none";
}

void PhaseTotals::merge(const PhaseTotals& o) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    ns[i] += o.ns[i];
    calls[i] += o.calls[i];
  }
}

u64 PhaseTotals::total_ns() const {
  u64 sum = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) sum += ns[i];
  return sum;
}

namespace detail {

std::atomic<bool> g_enabled{false};

Phase enter(Phase p) {
  Slot& slot = local_slot();
  flush(slot, monotonic_ns());
  const Phase prev = slot.current;
  slot.current = p;
  if (p != Phase::kNone) ++slot.totals.calls[static_cast<std::size_t>(p)];
  return prev;
}

void leave(Phase prev) {
  Slot& slot = local_slot();
  flush(slot, monotonic_ns());
  slot.current = prev;
}

}  // namespace detail

void enable(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void reset() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (auto& slot : registry()) {
    slot->totals = PhaseTotals{};
    slot->current = Phase::kNone;
    slot->phase_start_ns = 0;
  }
}

PhaseTotals aggregate() {
  PhaseTotals out;
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (const auto& slot : registry()) out.merge(slot->totals);
  return out;
}

std::vector<u64> worker_busy_ns() {
  std::vector<u64> out;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (const auto& slot : registry()) {
      const u64 busy = slot->totals.total_ns();
      if (busy > 0) out.push_back(busy);
    }
  }
  std::sort(out.begin(), out.end(), std::greater<u64>());
  return out;
}

u64 monotonic_ns() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

u64 peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<u64>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<u64>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

double Stopwatch::seconds() const {
  return static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
}

HostReport make_host_report(double wall_seconds, u64 requests) {
  HostReport r;
  r.wall_seconds = wall_seconds;
  r.requests = requests;
  r.requests_per_sec =
      wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  r.peak_rss_bytes = peak_rss_bytes();
  r.phases = aggregate();
  r.worker_busy_ns_by_thread = worker_busy_ns();
  return r;
}

std::string phases_to_json(const PhaseTotals& t) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (i) os << ", ";
    os << "\"" << to_string(static_cast<Phase>(i)) << "\": {\"seconds\": "
       << json_double(static_cast<double>(t.ns[i]) * 1e-9)
       << ", \"calls\": " << t.calls[i] << "}";
  }
  os << "}";
  return os.str();
}

std::string host_report_to_json(const HostReport& r) {
  std::ostringstream os;
  os << "{\"schema_version\": 1"
     << ", \"wall_seconds\": " << json_double(r.wall_seconds)
     << ", \"requests\": " << r.requests
     << ", \"requests_per_sec\": " << json_double(r.requests_per_sec)
     << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
     << ", \"phases\": " << phases_to_json(r.phases)
     << ", \"worker_busy_seconds\": [";
  for (std::size_t i = 0; i < r.worker_busy_ns_by_thread.size(); ++i) {
    if (i) os << ", ";
    os << json_double(static_cast<double>(r.worker_busy_ns_by_thread[i]) *
                      1e-9);
  }
  os << "]}";
  return os.str();
}

}  // namespace bb::prof
