// Deterministic random number generation for workload synthesis.
//
// All randomness in the repository flows through these generators so every
// experiment is bit-reproducible from its seed. We use SplitMix64 for
// seeding and xoshiro256** as the workhorse generator (public-domain
// algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cmath>
#include <vector>

#include "common/types.h"

namespace bb {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  u64 next_below(u64 bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free mapping is fine for our
    // non-cryptographic needs; bias is < 2^-64 * bound.
    return static_cast<u64>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Generator state, for snapshot/restore of in-flight runs. Restoring a
  /// saved state resumes the stream bit-exactly where it left off.
  std::array<u64, 4> state() const { return state_; }
  void set_state(const std::array<u64, 4>& s) { state_ = s; }

  /// Geometric-ish positive gap with the given mean (>= 1).
  u64 next_gap(double mean) {
    if (mean <= 1.0) return 1;
    // Inverse-CDF sampling of a geometric distribution with the requested
    // mean; deterministic and cheap.
    const double p = 1.0 / mean;
    const double u = next_double();
    const double g = std::log1p(-u) / std::log1p(-p);
    u64 gap = static_cast<u64>(g) + 1;
    return gap == 0 ? 1 : gap;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

/// Samples from a Zipf distribution over {0, 1, ..., n-1} with exponent s.
///
/// Uses a precomputed inverse-CDF table (O(n) setup, O(log n) sampling),
/// which is exact and deterministic — appropriate for hot-set sizes up to a
/// few million pages.
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double s);

  u64 sample(Rng& rng) const;

  u64 n() const { return n_; }
  double s() const { return s_; }

 private:
  u64 n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace bb
