#include "common/flags.h"

#include <cstdlib>

namespace bb {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // bare switch
    }
  }
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

u64 Flags::get_u64(const std::string& name, u64 fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : static_cast<u64>(v);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

}  // namespace bb
