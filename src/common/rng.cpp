#include "common/rng.h"

#include <algorithm>

namespace bb {

ZipfSampler::ZipfSampler(u64 n, double s) : n_(n == 0 ? 1 : n), s_(s) {
  cdf_.resize(static_cast<std::size_t>(n_));
  double sum = 0.0;
  for (u64 i = 0; i < n_; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s_);
    cdf_[static_cast<std::size_t>(i)] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

u64 ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<u64>(it - cdf_.begin());
}

}  // namespace bb
