// Structured event trace: discrete simulation events keyed to the
// simulated tick (never wall clock — tools/lint_determinism enforces
// this), serializable as JSONL or as the Chrome trace_event format that
// Perfetto / about:tracing load directly.
//
// Emitters build TraceEvents only when a sink is attached, so the layer
// costs a single pointer test per potential event when tracing is off.
// Two sinks exist: JsonlTraceSink streams each event to an ostream as it
// happens; MemoryTraceSink buffers events so a harness can serialize them
// later in a deterministic order (the experiment runner commits per-run
// buffers in matrix order, keeping trace files byte-identical across
// --jobs values).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb {

/// One discrete simulation event at a simulated tick.
struct TraceEvent {
  Tick tick = 0;
  std::string name;  ///< event type, e.g. "remap_ratio_transition"
  std::string cat;   ///< subsystem, e.g. "bumblebee", "paging", "sim"

  /// Typed key-value payload, serialized in insertion order.
  struct Arg {
    enum class Kind : u8 { kU64, kI64, kDouble, kString };
    std::string key;
    Kind kind = Kind::kU64;
    u64 u = 0;
    i64 i = 0;
    double d = 0.0;
    std::string s;
  };
  std::vector<Arg> args;

  TraceEvent() = default;
  TraceEvent(Tick t, std::string event_name, std::string category)
      : tick(t), name(std::move(event_name)), cat(std::move(category)) {}

  // Builder-style argument append; the overload set keeps integral /
  // floating-point promotions unambiguous at the call sites.
  TraceEvent& arg(std::string key, u64 v);
  TraceEvent& arg(std::string key, u32 v) { return arg(std::move(key), u64{v}); }
  TraceEvent& arg(std::string key, i64 v);
  TraceEvent& arg(std::string key, int v) { return arg(std::move(key), i64{v}); }
  TraceEvent& arg(std::string key, double v);
  TraceEvent& arg(std::string key, std::string v);
  TraceEvent& arg(std::string key, const char* v) {
    return arg(std::move(key), std::string(v));
  }
};

/// Serializes one event as a single-line JSON object (no trailing newline).
/// `extra` is a pre-rendered fragment of additional top-level members
/// (e.g. "\"design\":\"Bumblebee\",") spliced in verbatim; pass "" for none.
std::string trace_event_to_json(const TraceEvent& ev,
                                const std::string& extra = {});

/// Destination for emitted events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(TraceEvent ev) = 0;
};

/// Buffers events in memory (deterministic replay/serialization later).
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(TraceEvent ev) override { events_.push_back(std::move(ev)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> take() { return std::move(events_); }

  /// Snapshot/restore of the buffered events (all fields, insertion order).
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  std::vector<TraceEvent> events_;
};

/// Streams each event to `os` as one JSONL line at emission time.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(os) {}
  void emit(TraceEvent ev) override;

 private:
  std::ostream& os_;
};

/// Writes events as JSONL, one object per line. `extra` as above (applied
/// to every line).
void write_trace_jsonl(const std::vector<TraceEvent>& events,
                       std::ostream& os, const std::string& extra = {});

/// Writes events in Chrome trace_event format (a {"traceEvents":[...]}
/// object of instant events, ts in microseconds), loadable in Perfetto and
/// chrome://tracing. `pid` groups events into a named process track
/// (`process_name` emits the metadata record when non-empty).
void write_trace_chrome_events(const std::vector<TraceEvent>& events,
                               std::ostream& os, u64 pid,
                               const std::string& process_name,
                               bool& first_record);
void write_trace_chrome_header(std::ostream& os);
void write_trace_chrome_footer(std::ostream& os);

/// Single-run convenience: header + one process + footer.
void write_trace_chrome(const std::vector<TraceEvent>& events,
                        std::ostream& os,
                        const std::string& process_name = {});

}  // namespace bb
