// Debug-build invariant checking macros.
//
// BB_ASSERT(cond, msg) — checks structural invariants that are cheap enough
// to leave in every debug build. BB_CHECK(cond, msg) — heavier consistency
// sweeps (e.g. whole-set metadata cross-checks) intended for the sanitizer
// CI jobs and local debugging.
//
// Both compile to nothing unless checking is enabled, so release builds and
// the perf-sensitive bench harnesses pay zero cost. Checking is enabled
// when:
//   * BB_ENABLE_CHECKS is defined (the BB_CHECKS=ON CMake option, forced on
//     in the sanitizer CI jobs), or
//   * NDEBUG is not defined (any plain Debug build).
//
// On failure the macros print the condition, a caller-supplied message and
// the source location to stderr, then abort() — so a metadata inconsistency
// stops the simulation at the transition that introduced it instead of
// surfacing as a silently-wrong number in a figure.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(BB_ENABLE_CHECKS) || !defined(NDEBUG)
#define BB_CHECKS_ENABLED 1
#else
#define BB_CHECKS_ENABLED 0
#endif

namespace bb::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* cond,
                                      const char* msg, const char* file,
                                      int line) {
  std::fprintf(stderr, "%s failed: %s\n  %s\n  at %s:%d\n", kind, cond, msg,
               file, line);
  std::abort();
}

}  // namespace bb::detail

#if BB_CHECKS_ENABLED
#define BB_ASSERT(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::bb::detail::check_failed("BB_ASSERT", #cond, (msg), __FILE__,     \
                                 __LINE__);                               \
    }                                                                     \
  } while (false)
#define BB_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::bb::detail::check_failed("BB_CHECK", #cond, (msg), __FILE__,      \
                                 __LINE__);                               \
    }                                                                     \
  } while (false)
#else
#define BB_ASSERT(cond, msg) \
  do {                       \
  } while (false)
#define BB_CHECK(cond, msg) \
  do {                      \
  } while (false)
#endif
