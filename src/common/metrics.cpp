#include "common/metrics.h"

#include <ostream>

#include "common/check.h"
#include "common/json.h"
#include "common/snapshot.h"
#include "common/table.h"

namespace bb {

void MetricRegistry::add_counter(std::string name, Probe probe) {
  metrics_.push_back(
      {std::move(name), MetricKind::kCounter, std::move(probe), nullptr});
}

void MetricRegistry::add_gauge(std::string name, Probe probe) {
  metrics_.push_back(
      {std::move(name), MetricKind::kGauge, std::move(probe), nullptr});
}

void MetricRegistry::add_ratio(std::string name, Probe numerator,
                               Probe denominator) {
  metrics_.push_back({std::move(name), MetricKind::kRatio,
                      std::move(numerator), std::move(denominator)});
}

std::vector<std::string> MetricRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& m : metrics_) out.push_back(m.name);
  return out;
}

EpochSampler::EpochSampler(EpochConfig cfg, MetricRegistry registry)
    : cfg_(cfg), registry_(std::move(registry)) {
  snapshot(baseline_);
}

void EpochSampler::snapshot(std::vector<double>& out) const {
  // kRatio metrics occupy two baseline slots (numerator, denominator).
  out.clear();
  for (const auto& m : registry_.metrics_) {
    out.push_back(m.probe ? m.probe() : 0.0);
    if (m.kind == MetricKind::kRatio) {
      out.push_back(m.denom ? m.denom() : 0.0);
    }
  }
}

void EpochSampler::close_epoch(Tick now) {
  // The satellite invariant: the first measured epoch must start exactly
  // at the warmup stats-reset tick, so time-series consumers can align
  // runs on the measurement window.
  if (rows_.empty() && measured_start_known_) {
    BB_CHECK(epoch_start_tick_ == measured_start_tick_,
             "epoch 0 of the measured phase must start at the warmup reset "
             "tick");
  }
  std::vector<double> cur;
  snapshot(cur);

  EpochRow row;
  row.epoch = next_epoch_++;
  row.start_tick = epoch_start_tick_;
  row.end_tick = now;
  row.requests = requests_in_epoch_;
  row.values.reserve(registry_.size());
  std::size_t slot = 0;
  for (const auto& m : registry_.metrics_) {
    switch (m.kind) {
      case MetricKind::kCounter:
        row.values.push_back(cur[slot] - baseline_[slot]);
        ++slot;
        break;
      case MetricKind::kGauge:
        row.values.push_back(cur[slot]);
        ++slot;
        break;
      case MetricKind::kRatio: {
        const double dn = cur[slot] - baseline_[slot];
        const double dd = cur[slot + 1] - baseline_[slot + 1];
        row.values.push_back(dd != 0.0 ? dn / dd : 0.0);
        slot += 2;
        break;
      }
    }
  }
  rows_.push_back(std::move(row));

  baseline_ = std::move(cur);
  epoch_start_tick_ = now;
  requests_in_epoch_ = 0;
}

void EpochSampler::on_request(Tick now) {
  ++requests_in_epoch_;
  last_tick_ = now;
  const bool by_requests =
      cfg_.every_requests > 0 && requests_in_epoch_ >= cfg_.every_requests;
  const bool by_ticks =
      cfg_.every_ticks > 0 && now >= epoch_start_tick_ + cfg_.every_ticks;
  if (by_requests || by_ticks) close_epoch(now);
}

void EpochSampler::restart(Tick now) {
  rows_.clear();
  next_epoch_ = 0;
  requests_in_epoch_ = 0;
  epoch_start_tick_ = now;
  last_tick_ = now;
  measured_start_tick_ = now;
  measured_start_known_ = true;
  snapshot(baseline_);
}

void EpochSampler::finish() {
  if (requests_in_epoch_ > 0) close_epoch(last_tick_);
}

void EpochSampler::save(snap::Writer& w) const {
  w.put_u64(rows_.size());
  for (const EpochRow& row : rows_) {
    w.put_u64(row.epoch);
    w.put_u64(row.start_tick);
    w.put_u64(row.end_tick);
    w.put_u64(row.requests);
    w.put_u64(row.values.size());
    for (double v : row.values) w.put_f64(v);
  }
  w.put_u64(baseline_.size());
  for (double v : baseline_) w.put_f64(v);
  w.put_u64(next_epoch_);
  w.put_u64(epoch_start_tick_);
  w.put_u64(last_tick_);
  w.put_u64(requests_in_epoch_);
  w.put_u64(measured_start_tick_);
  w.put_u8(measured_start_known_ ? 1 : 0);
}

void EpochSampler::load(snap::Reader& r) {
  rows_.resize(static_cast<std::size_t>(r.get_u64()));
  for (EpochRow& row : rows_) {
    row.epoch = r.get_u64();
    row.start_tick = r.get_u64();
    row.end_tick = r.get_u64();
    row.requests = r.get_u64();
    row.values.resize(static_cast<std::size_t>(r.get_u64()));
    for (double& v : row.values) v = r.get_f64();
  }
  const u64 baseline_slots = r.get_u64();
  if (baseline_slots != baseline_.size()) {
    throw snap::SnapshotError("epoch sampler probe count mismatch");
  }
  for (double& v : baseline_) v = r.get_f64();
  next_epoch_ = r.get_u64();
  epoch_start_tick_ = r.get_u64();
  last_tick_ = r.get_u64();
  requests_in_epoch_ = r.get_u64();
  measured_start_tick_ = r.get_u64();
  measured_start_known_ = r.get_u8() != 0;
}

void write_epoch_csv_header(std::ostream& os,
                            const std::vector<std::string>& prefix_headers,
                            const std::vector<std::string>& columns) {
  TextTable t([&] {
    std::vector<std::string> h = prefix_headers;
    h.insert(h.end(), {"epoch", "start_tick", "end_tick", "requests"});
    h.insert(h.end(), columns.begin(), columns.end());
    return h;
  }());
  t.print_csv(os);
}

void write_epoch_csv_rows(std::ostream& os,
                          const std::vector<std::string>& prefix_values,
                          const std::vector<std::string>& row_columns,
                          const std::vector<std::string>& columns,
                          const std::vector<EpochRow>& rows) {
  // Map the union column set onto this run's columns (by name); a column
  // this run does not provide stays empty.
  std::vector<std::size_t> index(columns.size(), static_cast<std::size_t>(-1));
  for (std::size_t c = 0; c < columns.size(); ++c) {
    for (std::size_t r = 0; r < row_columns.size(); ++r) {
      if (row_columns[r] == columns[c]) {
        index[c] = r;
        break;
      }
    }
  }
  for (const auto& row : rows) {
    std::vector<std::string> cells = prefix_values;
    cells.push_back(std::to_string(row.epoch));
    cells.push_back(std::to_string(row.start_tick));
    cells.push_back(std::to_string(row.end_tick));
    cells.push_back(std::to_string(row.requests));
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (index[c] == static_cast<std::size_t>(-1) ||
          index[c] >= row.values.size()) {
        cells.emplace_back();
      } else {
        cells.push_back(json_double(row.values[index[c]]));
      }
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csv_escape(cells[c]);
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  }
}

}  // namespace bb
