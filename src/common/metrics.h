// Epoch time-series sampling: a MetricRegistry of named probes and an
// EpochSampler that snapshots them every N requests or M simulated ticks,
// producing one row per epoch.
//
// All epoch boundaries are keyed to simulated ticks and request counts —
// never wall clock — so sampled output is byte-identical across reruns and
// across --jobs values (the experiment runner commits per-run rows in
// matrix order). Probes read live statistics objects; counter-kind metrics
// report per-epoch deltas so each row describes that epoch's activity, not
// the cumulative history.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb {

/// How an epoch row derives its value from the probe snapshots.
enum class MetricKind : u8 {
  kCounter,  ///< monotonic cumulative probe; the row reports the epoch delta
  kGauge,    ///< instantaneous probe; the row reports the end-of-epoch value
  kRatio,    ///< delta(numerator) / delta(denominator) over the epoch
};

/// Named metric probes, registered in a fixed (deterministic) order that
/// becomes the epoch CSV column order.
class MetricRegistry {
 public:
  using Probe = std::function<double()>;

  void add_counter(std::string name, Probe probe);
  void add_gauge(std::string name, Probe probe);
  /// Per-epoch ratio of two cumulative quantities (0 when the denominator
  /// did not advance), e.g. hbm_served / requests -> epoch serve rate.
  void add_ratio(std::string name, Probe numerator, Probe denominator);

  std::size_t size() const { return metrics_.size(); }
  const std::string& name(std::size_t i) const { return metrics_[i].name; }
  MetricKind kind(std::size_t i) const { return metrics_[i].kind; }
  std::vector<std::string> names() const;

 private:
  friend class EpochSampler;
  struct Metric {
    std::string name;
    MetricKind kind;
    Probe probe;
    Probe denom;  ///< kRatio only
  };
  std::vector<Metric> metrics_;
};

/// One closed epoch: [start_tick, end_tick], `requests` demand requests,
/// and one value per registered metric (column order = registry order).
struct EpochRow {
  u64 epoch = 0;
  Tick start_tick = 0;
  Tick end_tick = 0;
  u64 requests = 0;
  std::vector<double> values;
};

struct EpochConfig {
  /// Close an epoch every N demand requests (0 = not request-driven).
  u64 every_requests = 0;
  /// Close an epoch when the request tick moves past start + N (0 = not
  /// tick-driven). Both triggers may be combined; whichever fires first
  /// closes the epoch.
  Tick every_ticks = 0;

  bool enabled() const { return every_requests > 0 || every_ticks > 0; }
};

class EpochSampler {
 public:
  EpochSampler(EpochConfig cfg, MetricRegistry registry);

  /// Per-request hook: counts the request at simulated tick `now` and
  /// closes the current epoch if a boundary was crossed.
  void on_request(Tick now);

  /// Warmup boundary: discards warmup-phase rows and re-baselines every
  /// probe, so epoch 0 of the measured phase starts exactly at the stats
  /// reset tick (BB_CHECKed when the first measured epoch closes).
  void restart(Tick now);

  /// Closes the final partial epoch, if it saw any requests.
  void finish();

  const std::vector<EpochRow>& rows() const { return rows_; }
  const MetricRegistry& registry() const { return registry_; }

  /// Snapshot/restore of the epoch cursor and accumulated rows. The
  /// registry itself (probe closures) is rebuilt by the restoring run —
  /// registration order is deterministic, so the restored baseline slots
  /// line up; load fails closed when the column count disagrees.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  void snapshot(std::vector<double>& out) const;
  void close_epoch(Tick now);

  EpochConfig cfg_;
  MetricRegistry registry_;
  std::vector<EpochRow> rows_;
  std::vector<double> baseline_;   ///< probe values at epoch start
  u64 next_epoch_ = 0;
  Tick epoch_start_tick_ = 0;
  Tick last_tick_ = 0;
  u64 requests_in_epoch_ = 0;
  Tick measured_start_tick_ = 0;
  bool measured_start_known_ = false;
};

/// Writes epoch rows as CSV. `columns` names the metric columns (registry
/// order); `prefix_headers`/`prefix_values` prepend per-run key columns
/// (e.g. design, workload). Values for metric columns a row lacks are left
/// empty. Emits the header only when `with_header` is true.
void write_epoch_csv_header(std::ostream& os,
                            const std::vector<std::string>& prefix_headers,
                            const std::vector<std::string>& columns);
void write_epoch_csv_rows(std::ostream& os,
                          const std::vector<std::string>& prefix_values,
                          const std::vector<std::string>& row_columns,
                          const std::vector<std::string>& columns,
                          const std::vector<EpochRow>& rows);

}  // namespace bb
