#include "mem/timing.h"

namespace bb::mem {

DramTimingParams DramTimingParams::hbm2_1gb() {
  DramTimingParams p;
  p.name = "HBM2";
  p.capacity_bytes = 1 * GiB;
  p.channels = 8;
  p.banks_per_channel = 8;
  p.bus_bits = 128;
  p.interleave_bytes = 512;
  p.row_bytes = 2 * KiB;
  p.burst_length = 4;  // 128-bit bus * BL4 = 64 B per column command
  p.tck_ns = 1.0;      // 2 Gbps/pin HBM2 class
  p.tCAS = 7;
  p.tRCD = 7;
  p.tRP = 7;
  p.tRAS = 17;
  p.vdd = 1.2;
  p.idd0 = 65;
  p.idd2p = 28;
  p.idd2n = 40;
  p.idd3p = 40;
  p.idd3n = 55;
  p.idd4w = 500;
  p.idd4r = 390;
  p.idd5 = 250;
  p.idd6 = 31;
  return p;
}

DramTimingParams DramTimingParams::ddr4_3200_10gb() {
  DramTimingParams p;
  p.name = "DDR4-3200";
  p.capacity_bytes = 10 * GiB;
  p.channels = 2;
  p.banks_per_channel = 8;
  p.bus_bits = 64;
  p.interleave_bytes = 4 * KiB;
  p.row_bytes = 8 * KiB;
  p.burst_length = 8;  // 64-bit bus * BL8 = 64 B per column command
  p.tck_ns = 0.625;    // 3200 MT/s
  p.devices_per_channel = 8;  // eight x8 chips per 64-bit channel
  p.tCAS = 22;
  p.tRCD = 22;
  p.tRP = 22;
  p.tRAS = 52;
  p.vdd = 1.2;
  p.idd0 = 52;
  p.idd2p = 25;
  p.idd2n = 37;
  p.idd3p = 38;
  p.idd3n = 47;
  p.idd4w = 130;
  p.idd4r = 143;
  p.idd5 = 250;
  p.idd6 = 30;
  return p;
}

}  // namespace bb::mem
