#include "mem/request_queue.h"

#include <algorithm>
#include <cassert>

#include "common/snapshot.h"

namespace bb::mem {

ChannelScheduler::ChannelScheduler(const QueueConfig& cfg, u32 channels)
    : cfg_(cfg) {
  assert(cfg_.queue_depth > 0);
  assert(cfg_.write_low_watermark < cfg_.write_high_watermark);
  assert(cfg_.write_high_watermark <= cfg_.queue_depth);
  assert(cfg_.mshr_entries > 0);
  assert(is_pow2(cfg_.mshr_block_bytes));
  channels_.resize(channels);
}

std::size_t ChannelScheduler::pick_fr_fcfs(
    const std::vector<Candidate>& candidates) {
  assert(!candidates.empty());
  std::size_t best = candidates.size();  // best row-hit so far
  std::size_t oldest = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].arrival < candidates[oldest].arrival) oldest = i;
    if (!candidates[i].row_hit) continue;
    if (best == candidates.size() ||
        candidates[i].arrival < candidates[best].arrival) {
      best = i;
    }
  }
  return best != candidates.size() ? best : oldest;
}

std::size_t ChannelScheduler::expire_mshrs(Channel& ch, Tick now) {
  auto& m = ch.mshrs;
  m.erase(std::remove_if(m.begin(), m.end(),
                         [now](const Mshr& e) { return e.complete <= now; }),
          m.end());
  return m.size();
}

void ChannelScheduler::sample_queue_length(Channel& ch, Tick now) {
  stats_.req_queue_length_sum += ch.writes.size() + expire_mshrs(ch, now);
  ++stats_.queue_length_samples;
}

Tick ChannelScheduler::drain_to(Channel& ch, std::size_t target_len,
                                Tick now, QueueBackend& dev) {
  Tick first_slot_free = now;
  bool first = true;
  while (ch.writes.size() > target_len) {
    std::vector<Candidate> candidates;
    candidates.reserve(ch.writes.size());
    for (const QueuedWrite& w : ch.writes) {
      candidates.push_back({dev.open_row_hit(w.addr), w.arrival});
    }
    const std::size_t victim = pick_fr_fcfs(candidates);
    const QueuedWrite w = ch.writes[victim];
    ch.writes.erase(ch.writes.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    const auto is = dev.issue(w.addr, w.bytes, AccessType::kWrite, now);
    stats_.queueing_latency_sum += is.start - w.arrival;
    ++stats_.writes_drained;
    if (first) {
      first_slot_free = is.complete;
      first = false;
    }
  }
  return first_slot_free;
}

ChannelScheduler::SchedResult ChannelScheduler::on_read(Addr addr, u64 bytes,
                                                        Tick now,
                                                        QueueBackend& dev) {
  Channel& ch = channels_[dev.channel_of(addr)];
  sample_queue_length(ch, now);

  const bool coalescable = bytes <= cfg_.mshr_block_bytes;
  const Addr block = addr & ~(cfg_.mshr_block_bytes - 1);
  if (coalescable) {
    for (const Mshr& m : ch.mshrs) {
      if (m.block == block) {
        // A same-block fill is already in flight: piggyback on it. No new
        // device traffic; the data arrives with the original fill.
        ++stats_.reads_coalesced;
        return {now, m.complete, /*coalesced=*/true};
      }
    }
  }

  const auto is = dev.issue(addr, bytes, AccessType::kRead, now);
  ++stats_.reads_issued;
  stats_.queueing_latency_sum += is.start - now;
  stats_.read_queue_latency_sum += is.start - now;

  if (coalescable) {
    if (ch.mshrs.size() >= cfg_.mshr_entries) {
      // Full: retire the entry completing soonest (it is the closest to
      // leaving anyway), keeping allocation deterministic.
      const auto soonest = std::min_element(
          ch.mshrs.begin(), ch.mshrs.end(),
          [](const Mshr& a, const Mshr& b) { return a.complete < b.complete; });
      ch.mshrs.erase(soonest);
    }
    ch.mshrs.push_back({block, is.complete});
  }
  return {is.start, is.complete, /*coalesced=*/false};
}

ChannelScheduler::SchedResult ChannelScheduler::on_write(Addr addr,
                                                         u64 bytes, Tick now,
                                                         QueueBackend& dev) {
  Channel& ch = channels_[dev.channel_of(addr)];
  sample_queue_length(ch, now);

  Tick accepted = now;
  if (ch.writes.size() >= cfg_.queue_depth) {
    // Back-pressure: the producer waits for a slot, and the stall is a
    // drain episode that takes the queue down to the low watermark.
    ++stats_.write_queue_full_stalls;
    ++stats_.write_drain_count;
    accepted = std::max(
        now, drain_to(ch, cfg_.write_low_watermark, now, dev));
  }

  ch.writes.push_back({addr, bytes, accepted});
  ++stats_.writes_enqueued;
  stats_.queueing_latency_sum += accepted - now;

  if (ch.writes.size() >= cfg_.write_high_watermark) {
    ++stats_.write_drain_count;
    drain_to(ch, cfg_.write_low_watermark, accepted, dev);
  }
  // Posted write: accepted into the controller queue, completion from the
  // producer's point of view is the acceptance tick.
  return {accepted, accepted, /*coalesced=*/false};
}

void ChannelScheduler::drain_all(Tick now, QueueBackend& dev) {
  for (Channel& ch : channels_) {
    drain_to(ch, 0, now, dev);
    ch.mshrs.clear();
  }
}

void ChannelScheduler::save(snap::Writer& w) const {
  w.put_u64(channels_.size());
  for (const Channel& ch : channels_) {
    w.put_u64(ch.writes.size());
    for (const QueuedWrite& qw : ch.writes) {
      w.put_u64(qw.addr);
      w.put_u64(qw.bytes);
      w.put_u64(qw.arrival);
    }
    w.put_u64(ch.mshrs.size());
    for (const Mshr& m : ch.mshrs) {
      w.put_u64(m.block);
      w.put_u64(m.complete);
    }
  }
  w.put_u64(stats_.reads_issued);
  w.put_u64(stats_.reads_coalesced);
  w.put_u64(stats_.writes_enqueued);
  w.put_u64(stats_.writes_drained);
  w.put_u64(stats_.write_drain_count);
  w.put_u64(stats_.write_queue_full_stalls);
  w.put_u64(stats_.queueing_latency_sum);
  w.put_u64(stats_.read_queue_latency_sum);
  w.put_u64(stats_.req_queue_length_sum);
  w.put_u64(stats_.queue_length_samples);
}

void ChannelScheduler::load(snap::Reader& r) {
  const u64 nch = r.get_u64();
  if (nch != channels_.size()) {
    throw snap::SnapshotError("scheduler channel count mismatch");
  }
  for (Channel& ch : channels_) {
    ch.writes.resize(static_cast<std::size_t>(r.get_u64()));
    for (QueuedWrite& qw : ch.writes) {
      qw.addr = r.get_u64();
      qw.bytes = r.get_u64();
      qw.arrival = r.get_u64();
    }
    ch.mshrs.resize(static_cast<std::size_t>(r.get_u64()));
    for (Mshr& m : ch.mshrs) {
      m.block = r.get_u64();
      m.complete = r.get_u64();
    }
  }
  stats_.reads_issued = r.get_u64();
  stats_.reads_coalesced = r.get_u64();
  stats_.writes_enqueued = r.get_u64();
  stats_.writes_drained = r.get_u64();
  stats_.write_drain_count = r.get_u64();
  stats_.write_queue_full_stalls = r.get_u64();
  stats_.queueing_latency_sum = r.get_u64();
  stats_.read_queue_latency_sum = r.get_u64();
  stats_.req_queue_length_sum = r.get_u64();
  stats_.queue_length_samples = r.get_u64();
}

}  // namespace bb::mem
