// DRAM device timing and power parameters.
//
// The two presets reproduce Table I of the paper exactly:
//   * HBM2: 1 GB, 8 x 128-bit channels, 512 B interleave, 8 banks/channel,
//     tCAS-tRCD-tRP = 7-7-7 (cycles), VDD 1.2 V and the listed IDD values.
//   * Off-chip DDR4-3200: 10 GB, 2 x 64-bit channels, 8 banks/channel,
//     tCAS-tRCD-tRP = 22-22-22, VDD 1.2 V and the listed IDD values.
//
// Timings are stored in device clock cycles (tCK); the device model converts
// to ticks (picoseconds). Energy uses the standard JEDEC/DRAMPower formulas
// over IDD currents (see energy.h).
#pragma once

#include <string>

#include "common/types.h"
#include "mem/request_queue.h"

namespace bb::mem {

struct DramTimingParams {
  std::string name;

  /// Request-queue layer (FR-FCFS write queues, MSHRs, timing fixes).
  /// Default-off: the device behaves bit-for-bit like the pre-queue model
  /// so the pinned golden hash stays valid (the BB_QUEUE=off preset).
  QueueConfig queue;

  // Geometry.
  u64 capacity_bytes = 0;
  u32 channels = 1;
  u32 banks_per_channel = 8;
  u32 bus_bits = 64;          ///< data-bus width per channel
  u64 interleave_bytes = 0;   ///< channel interleave granularity
  u64 row_bytes = 2 * KiB;    ///< row-buffer size per bank
  u32 burst_length = 8;       ///< transfers per column command

  // Clock.
  Ns tck_ns = 1.0;  ///< clock period; data rate is 2 transfers per tCK

  // Core timings, in tCK cycles.
  u32 tCAS = 7;
  u32 tRCD = 7;
  u32 tRP = 7;
  u32 tRAS = 17;
  u32 tWTR = 4;   ///< write-to-read turnaround on a bank
  u32 tRTW = 2;   ///< read-to-write turnaround on the bus

  // Refresh: every tREFI the channel stalls for tRFC (all banks).
  Ns trefi_ns = 3900.0;
  Ns trfc_ns = 350.0;
  bool refresh_enabled = true;

  // Power (JEDEC spec values): VDD in volts, IDD in milliamperes. IDD
  // currents are per device; a 64-bit DDR4 channel is built from eight x8
  // chips that activate and burst together, while HBM's per-channel
  // figures already cover the whole 128-bit channel.
  u32 devices_per_channel = 1;
  double vdd = 1.2;
  double idd0 = 0;    ///< one-bank ACT-PRE cycling current
  double idd2p = 0;   ///< precharge power-down standby
  double idd2n = 0;   ///< precharge standby
  double idd3p = 0;   ///< active power-down standby
  double idd3n = 0;   ///< active standby
  double idd4w = 0;   ///< burst write
  double idd4r = 0;   ///< burst read
  double idd5 = 0;    ///< refresh
  double idd6 = 0;    ///< self refresh

  /// Bytes transferred by one column command (burst).
  u64 burst_bytes() const {
    return static_cast<u64>(bus_bits / 8) * burst_length;
  }

  /// Duration of one burst on the data bus, in ticks. Double data rate:
  /// burst_length transfers take burst_length/2 clock cycles.
  Tick burst_ticks() const {
    return ns_to_ticks(tck_ns * static_cast<double>(burst_length) / 2.0);
  }

  Tick cycles_to_ticks(u32 cycles) const {
    return ns_to_ticks(tck_ns * static_cast<double>(cycles));
  }

  u32 rows_per_bank() const {
    const u64 bank_bytes =
        capacity_bytes / channels / banks_per_channel;
    return static_cast<u32>(bank_bytes / row_bytes);
  }

  /// Peak data bandwidth across all channels, bytes per second.
  double peak_bandwidth_bps() const {
    const double transfers_per_s = 2.0 / (tck_ns * 1e-9);
    return static_cast<double>(channels) * (bus_bits / 8.0) * transfers_per_s;
  }

  /// HBM2 preset (Table I).
  static DramTimingParams hbm2_1gb();

  /// Off-chip DDR4-3200 preset (Table I).
  static DramTimingParams ddr4_3200_10gb();
};

}  // namespace bb::mem
