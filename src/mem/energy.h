// IDD/VDD-based DRAM energy accounting (DRAMPower-style, simplified).
//
// Dynamic energy is accumulated per command:
//   ACT+PRE pair: VDD * (IDD0*tRC - (IDD3N*tRAS + IDD2N*(tRC-tRAS)))
//   RD burst:     VDD * (IDD4R - IDD3N) * tBURST
//   WR burst:     VDD * (IDD4W - IDD3N) * tBURST
// with currents in mA and times in ns, giving picojoules.
//
// Background (static) energy is estimated post-hoc from elapsed wall time as
// VDD * IDD3N * T per channel; the paper reports *dynamic* energy, which is
// what the figure harnesses use, but both are exposed.
#pragma once

#include "common/types.h"
#include "mem/timing.h"

namespace bb::mem {

class EnergyModel {
 public:
  explicit EnergyModel(const DramTimingParams& p) : p_(&p) {}

  void on_act_pre() { ++acts_; }
  void on_read_burst() { ++rd_bursts_; }
  void on_write_burst() { ++wr_bursts_; }

  u64 act_count() const { return acts_; }
  u64 read_burst_count() const { return rd_bursts_; }
  u64 write_burst_count() const { return wr_bursts_; }

  /// Dynamic energy so far, picojoules (all devices of a channel act
  /// and burst together).
  double dynamic_pj() const {
    return (static_cast<double>(acts_) * act_pre_pj() +
            static_cast<double>(rd_bursts_) * read_burst_pj() +
            static_cast<double>(wr_bursts_) * write_burst_pj()) *
           static_cast<double>(p_->devices_per_channel);
  }

  /// Background energy estimate for `elapsed` simulated time, picojoules.
  double background_pj(Tick elapsed) const {
    const double t_ns = ticks_to_ns(elapsed);
    return p_->vdd * p_->idd3n * t_ns * static_cast<double>(p_->channels) *
           static_cast<double>(p_->devices_per_channel);
  }

  /// Energy of one ACT/PRE pair, picojoules.
  double act_pre_pj() const {
    const double trc_ns = p_->tck_ns * static_cast<double>(p_->tRAS + p_->tRP);
    const double tras_ns = p_->tck_ns * static_cast<double>(p_->tRAS);
    const double trp_ns = trc_ns - tras_ns;
    return p_->vdd *
           (p_->idd0 * trc_ns - (p_->idd3n * tras_ns + p_->idd2n * trp_ns));
  }

  /// Energy of one read burst, picojoules.
  double read_burst_pj() const {
    return p_->vdd * (p_->idd4r - p_->idd3n) * ticks_to_ns(p_->burst_ticks());
  }

  /// Energy of one write burst, picojoules.
  double write_burst_pj() const {
    return p_->vdd * (p_->idd4w - p_->idd3n) * ticks_to_ns(p_->burst_ticks());
  }

  /// Energy of one refresh window, picojoules (reported separately from
  /// dynamic energy — the paper counts refresh with static energy).
  double refresh_pj() const {
    return p_->vdd * (p_->idd5 - p_->idd2n) * p_->trfc_ns;
  }

  void reset() { acts_ = rd_bursts_ = wr_bursts_ = 0; }

  /// Snapshot support: reinstates the command counters of a saved run.
  void restore_counts(u64 acts, u64 rd_bursts, u64 wr_bursts) {
    acts_ = acts;
    rd_bursts_ = rd_bursts;
    wr_bursts_ = wr_bursts;
  }

 private:
  const DramTimingParams* p_;
  u64 acts_ = 0;
  u64 rd_bursts_ = 0;
  u64 wr_bursts_ = 0;
};

}  // namespace bb::mem
