// Event-free DRAM device timing model ("DRAMSim-lite").
//
// Models, per channel: a shared data bus with burst occupancy; per bank: an
// open-row FSM with tCAS/tRCD/tRP/tRAS timing under an open-page policy.
// Requests are decomposed into burst-sized beats (64 B for both presets);
// each beat contends for its bank and channel bus. The model advances
// per-resource "ready at" ticks instead of running a global event loop,
// which is exact for our in-order-per-bank command streams and fast enough
// to simulate hundreds of millions of beats per minute.
//
// Every access is tagged with a TrafficClass so the harnesses can attribute
// bytes to demand traffic, cache fills, writebacks, migrations or metadata —
// the split behind Figures 8(b)/8(c).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "fault/fault.h"
#include "mem/energy.h"
#include "mem/request_queue.h"
#include "mem/timing.h"

namespace bb {
class MetricRegistry;
class TraceSink;
}  // namespace bb

namespace bb::mem {

/// Attribution label for a DRAM access.
enum class TrafficClass : u8 {
  kDemand = 0,    ///< LLC-miss data on the critical path
  kFill,          ///< cache-fill / fetch into HBM
  kWriteback,     ///< dirty eviction writeback
  kMigration,     ///< page migration between devices
  kMetadata,      ///< metadata structures stored in DRAM/HBM
  kCount,
};

constexpr const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kDemand: return "demand";
    case TrafficClass::kFill: return "fill";
    case TrafficClass::kWriteback: return "writeback";
    case TrafficClass::kMigration: return "migration";
    case TrafficClass::kMetadata: return "metadata";
    default: return "?";
  }
}

inline constexpr std::size_t kTrafficClassCount =
    static_cast<std::size_t>(TrafficClass::kCount);

struct DramStats {
  u64 accesses = 0;
  u64 beats = 0;
  u64 row_hits = 0;
  u64 row_misses = 0;   ///< row conflict (precharge + activate)
  u64 row_empty = 0;    ///< bank closed (activate only)
  u64 refreshes = 0;    ///< per-channel refresh windows taken
  u64 ce_count = 0;     ///< ECC corrected errors (fault model attached)
  u64 ue_count = 0;     ///< detected-uncorrectable errors
  std::array<u64, kTrafficClassCount> read_bytes{};
  std::array<u64, kTrafficClassCount> write_bytes{};

  u64 total_read_bytes() const {
    u64 s = 0;
    for (u64 b : read_bytes) s += b;
    return s;
  }
  u64 total_write_bytes() const {
    u64 s = 0;
    for (u64 b : write_bytes) s += b;
    return s;
  }
  u64 total_bytes() const { return total_read_bytes() + total_write_bytes(); }

  double row_hit_rate() const {
    const u64 n = row_hits + row_misses + row_empty;
    return n ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
};

/// Result of a single (possibly multi-beat) access.
struct AccessResult {
  /// When the first command could issue. In legacy mode (queue layer off,
  /// no timing fixes) this is the arrival tick, preserving the historical
  /// latency() the golden hash covers; with the queue layer or timing
  /// fixes enabled it is the true issue tick, so `start - arrival` is the
  /// first-class queueing delay.
  Tick start = 0;
  Tick complete = 0;  ///< when the last data beat finishes
  /// SECDED verdict (kClean unless a fault model is attached). On
  /// kCorrected, `complete` already includes the correction latency; on
  /// kUncorrectable the data is unusable and the caller must recover.
  fault::EccOutcome ecc = fault::EccOutcome::kClean;
  Tick latency() const { return complete - start; }
};

class DramDevice final : private QueueBackend {
 public:
  explicit DramDevice(DramTimingParams params);

  DramDevice(const DramDevice&) = delete;
  DramDevice& operator=(const DramDevice&) = delete;

  /// Performs an access of `bytes` bytes at `addr`, issued no earlier than
  /// `now`. Splits into burst beats internally. Returns completion timing.
  /// With the queue layer enabled (params.queue), reads route through the
  /// MSHR/scheduler path and writes are posted into the per-channel write
  /// queues; otherwise this is the historical direct path.
  AccessResult access(Addr addr, u64 bytes, AccessType type, Tick now,
                      TrafficClass cls = TrafficClass::kDemand);

  /// Earliest tick at which a new beat at `addr` could deliver data — a
  /// contention probe that does not mutate any state. With timing fixes
  /// enabled the probe is refresh-aware: a tick inside a pending refresh
  /// window reports the window's end.
  Tick probe_ready(Addr addr, Tick now) const;

  /// Flushes any posted writes still sitting in the request queues (end of
  /// simulation). No-op when the queue layer is off.
  void drain_queues(Tick now);

  const DramTimingParams& params() const { return params_; }
  const DramStats& stats() const { return stats_; }
  const EnergyModel& energy() const { return energy_; }
  /// Scheduler statistics, or nullptr when the queue layer is off.
  const QueueStats* queue_stats() const {
    return scheduler_ ? &scheduler_->stats() : nullptr;
  }
  /// The scheduler itself (tests / probes), nullptr when off.
  const ChannelScheduler* scheduler() const { return scheduler_.get(); }
  u64 capacity() const { return params_.capacity_bytes; }

  /// Clears statistics (bank/bus state is retained).
  void reset_stats();

  /// Snapshot/restore of the full device state: bank FSMs, bus/refresh
  /// cursors, statistics, energy counters, and the scheduler (when the
  /// queue layer is on). Geometry and the queue-layer presence are
  /// construction-time shape; load fails closed on a mismatch.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

  /// Registers this device's epoch metrics under `prefix` (e.g. "hbm_"):
  /// per-epoch row-hit rate and bytes moved per traffic class, plus ECC
  /// counters when a fault model is attached.
  void register_metrics(MetricRegistry& reg, const std::string& prefix) const;

  /// Attaches the fault model (nullptr detaches; fault-free by default).
  /// `label` names the device in fault_injected trace events ("hbm" /
  /// "dram"). The state must outlive the device or be detached first.
  void attach_faults(fault::DeviceFaultState* faults, std::string label);
  const fault::DeviceFaultState* faults() const { return faults_; }

  /// Sink for fault_injected events (nullptr = no tracing).
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  struct Decoded {
    u32 channel;
    u32 bank;
    u32 row;
  };

  /// Address decode (channel/bank hashing, row identity). Public so tests
  /// and tools can construct colliding or co-located address pairs.
  Decoded decode_addr(Addr addr) const { return decode(addr); }

 private:
  struct Bank {
    u32 open_row = kNoRow;
    Tick ready_at = 0;      ///< earliest tick the bank accepts a command
    Tick act_allowed_at = 0;  ///< honors tRAS before the next precharge
    Tick write_recovery_at = 0;  ///< honors tWTR after the last write burst
    bool last_was_write = false;
    bool has_issued = false;  ///< any command issued yet (turnaround fix)
    static constexpr u32 kNoRow = ~u32{0};
  };

  /// Command-issue and data-completion ticks of one beat or access.
  struct RawTiming {
    Tick start = 0;
    Tick complete = 0;
  };

  Decoded decode(Addr addr) const;

  /// Times one beat through its bank and channel bus.
  RawTiming do_beat(const Decoded& d, AccessType type, Tick now);

  /// Times a whole access (beat split + capacity wrap), no byte
  /// accounting. `start` is the first beat's command-issue tick.
  RawTiming timed_beats(Addr addr, u64 bytes, AccessType type, Tick now);

  /// Applies any refresh windows that elapsed before `t` on the channel.
  Tick apply_refresh(u32 channel, Tick t);

  /// Const mirror of apply_refresh: the earliest tick >= `t` not covered
  /// by a pending refresh window, computed without mutating refresh state.
  Tick refresh_adjusted(u32 channel, Tick t) const;

  // QueueBackend (the scheduler drives the raw timing path through these).
  u32 channel_of(Addr addr) const override;
  bool open_row_hit(Addr addr) const override;
  QueueBackend::Issue issue(Addr addr, u64 bytes, AccessType type,
                            Tick now) override;

  DramTimingParams params_;
  std::vector<Bank> banks_;          // channels * banks_per_channel
  std::vector<Tick> bus_ready_;      // per channel
  std::vector<Tick> next_refresh_;   // per channel
  std::unique_ptr<ChannelScheduler> scheduler_;  // queue layer, often null
  DramStats stats_;
  EnergyModel energy_;
  fault::DeviceFaultState* faults_ = nullptr;
  std::string fault_label_;
  TraceSink* trace_ = nullptr;
};

}  // namespace bb::mem
