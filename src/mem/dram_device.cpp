#include "mem/dram_device.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/metrics.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "common/trace_event.h"

namespace bb::mem {

DramDevice::DramDevice(DramTimingParams params)
    : params_(std::move(params)), energy_(params_) {
  assert(params_.channels > 0);
  assert(params_.banks_per_channel > 0);
  assert(is_pow2(params_.interleave_bytes));
  assert(is_pow2(params_.row_bytes));
  banks_.resize(static_cast<std::size_t>(params_.channels) *
                params_.banks_per_channel);
  bus_ready_.resize(params_.channels, 0);
  next_refresh_.resize(params_.channels, ns_to_ticks(params_.trefi_ns));
  if (params_.queue.enabled) {
    scheduler_ =
        std::make_unique<ChannelScheduler>(params_.queue, params_.channels);
  }
}

Tick DramDevice::apply_refresh(u32 channel, Tick t) {
  if (!params_.refresh_enabled) return t;
  const Tick trefi = ns_to_ticks(params_.trefi_ns);
  const Tick trfc = ns_to_ticks(params_.trfc_ns);
  Tick& next = next_refresh_[channel];
  // Fast-forward long idle stretches: refreshes that completed entirely
  // during idle time cannot stall anything.
  if (t > next + trfc) {
    const u64 skipped = (t - next - trfc) / trefi;
    stats_.refreshes += skipped;
    next += skipped * trefi;
  }
  while (t >= next) {
    // The channel's banks are unavailable during the refresh window; any
    // in-flight state simply resumes afterwards (open rows are closed).
    const Tick refresh_end = next + trfc;
    for (u32 b = 0; b < params_.banks_per_channel; ++b) {
      Bank& bank = banks_[static_cast<std::size_t>(channel) *
                              params_.banks_per_channel +
                          b];
      bank.ready_at = std::max(bank.ready_at, refresh_end);
      bank.open_row = Bank::kNoRow;  // refresh precharges all banks
    }
    ++stats_.refreshes;
    next += trefi;
    if (t < refresh_end) t = refresh_end;
  }
  return t;
}

DramDevice::Decoded DramDevice::decode(Addr addr) const {
  const u64 il = params_.interleave_bytes;
  const u64 chunk = addr / il;
  // XOR-fold higher address bits into the channel and bank indexes
  // (standard controller address hashing, cf. gem5's xor_high_bits and
  // commercial bank-group hashing). Without it, page-aligned strides —
  // ubiquitous here because frames are page-sized — alias onto a single
  // channel/bank and serialize.
  const u64 ch_hash = chunk ^ (chunk >> 4) ^ (chunk >> 9) ^ (chunk >> 15);
  const u32 channel = static_cast<u32>(ch_hash % params_.channels);
  // Address within the channel, with interleaving folded out.
  const u64 chan_addr = (chunk / params_.channels) * il + (addr % il);
  const u64 row_index = chan_addr / params_.row_bytes;
  const u64 bank_hash = row_index ^ (row_index >> 3) ^ (row_index >> 7);
  const u32 bank = static_cast<u32>(bank_hash % params_.banks_per_channel);
  // Open-row identity. The legacy divide could alias two distinct physical
  // rows onto one id when their hashes collide into the same bank (their
  // row_index values sharing a /banks quotient), registering phantom open-
  // row hits. The fixed identity is the full row_index, which is unique
  // per channel by construction.
  const u32 row = params_.queue.timing_fixes
                      ? static_cast<u32>(row_index)
                      : static_cast<u32>(row_index /
                                         params_.banks_per_channel);
  return {channel, bank, row};
}

DramDevice::RawTiming DramDevice::do_beat(const Decoded& d, AccessType type,
                                          Tick now) {
  Bank& bank = banks_[static_cast<std::size_t>(d.channel) *
                          params_.banks_per_channel +
                      d.bank];
  Tick& bus = bus_ready_[d.channel];

  const Tick tCAS = params_.cycles_to_ticks(params_.tCAS);
  const Tick tRCD = params_.cycles_to_ticks(params_.tRCD);
  const Tick tRP = params_.cycles_to_ticks(params_.tRP);
  const Tick tRAS = params_.cycles_to_ticks(params_.tRAS);
  const Tick tBURST = params_.burst_ticks();

  Tick t = apply_refresh(d.channel, std::max(now, bank.ready_at));
  // Bus turnaround: a read command after a write burst on the same bank
  // waits tWTR; a write after a read waits tRTW. Legacy bug (preserved
  // when timing_fixes is off, for golden-hash compatibility): a freshly
  // initialized bank has last_was_write == false, so the first-ever write
  // to a bank charged tRTW for a read that never happened. The fix charges
  // the read-to-write turnaround only after an actually issued command.
  if (type == AccessType::kRead && bank.last_was_write) {
    t = std::max(t, bank.write_recovery_at);
  } else if (type == AccessType::kWrite && !bank.last_was_write &&
             (!params_.queue.timing_fixes || bank.has_issued)) {
    t += params_.cycles_to_ticks(params_.tRTW);
  }
  const Tick cmd_issue = t;
  if (bank.open_row == d.row) {
    ++stats_.row_hits;
  } else if (bank.open_row == Bank::kNoRow) {
    ++stats_.row_empty;
    t += tRCD;
    bank.act_allowed_at = t - tRCD + tRAS;
    energy_.on_act_pre();
  } else {
    ++stats_.row_misses;
    // Precharge may not start before tRAS since the previous activate.
    t = std::max(t, bank.act_allowed_at);
    t += tRP + tRCD;
    bank.act_allowed_at = t - tRCD + tRAS;
    energy_.on_act_pre();
  }
  bank.open_row = d.row;

  // Column access: the command issues at t, data appears tCAS later once
  // the channel data bus is free. Subsequent column commands to the bank
  // pipeline at tCCD (~ tBURST) — CAS latency overlaps with streaming.
  const Tick data_start = std::max(t + tCAS, bus);
  bus = data_start + tBURST;
  bank.ready_at = t + tBURST;  // tCCD gap to the next column command

  if (type == AccessType::kRead) {
    energy_.on_read_burst();
    bank.last_was_write = false;
  } else {
    energy_.on_write_burst();
    bank.last_was_write = true;
    bank.write_recovery_at =
        data_start + tBURST + params_.cycles_to_ticks(params_.tWTR);
  }
  bank.has_issued = true;
  ++stats_.beats;
  return {cmd_issue, data_start + tBURST};
}

DramDevice::RawTiming DramDevice::timed_beats(Addr addr, u64 bytes,
                                              AccessType type, Tick now) {
  const u64 beat_bytes = params_.burst_bytes();
  const Addr first = addr & ~(beat_bytes - 1);
  const Addr last = (addr + bytes - 1) & ~(beat_bytes - 1);

  RawTiming res;
  res.complete = now;
  bool first_beat = true;
  for (Addr a = first;; a += beat_bytes) {
    const RawTiming beat =
        do_beat(decode(a % params_.capacity_bytes), type, now);
    if (first_beat) {
      res.start = beat.start;
      first_beat = false;
    }
    res.complete = std::max(res.complete, beat.complete);
    if (a == last) break;
  }
  return res;
}

u32 DramDevice::channel_of(Addr addr) const {
  return decode(addr % params_.capacity_bytes).channel;
}

bool DramDevice::open_row_hit(Addr addr) const {
  const Decoded d = decode(addr % params_.capacity_bytes);
  return banks_[static_cast<std::size_t>(d.channel) *
                    params_.banks_per_channel +
                d.bank]
             .open_row == d.row;
}

QueueBackend::Issue DramDevice::issue(Addr addr, u64 bytes, AccessType type,
                                      Tick now) {
  const RawTiming t = timed_beats(addr, bytes, type, now);
  return {t.start, t.complete};
}

void DramDevice::drain_queues(Tick now) {
  if (scheduler_) scheduler_->drain_all(now, *this);
}

AccessResult DramDevice::access(Addr addr, u64 bytes, AccessType type,
                                Tick now, TrafficClass cls) {
  prof::ScopedPhase prof_phase(prof::Phase::kDeviceTiming);
  assert(bytes > 0);
  const u64 beat_bytes = params_.burst_bytes();
  const Addr first = addr & ~(beat_bytes - 1);
  const Addr last = (addr + bytes - 1) & ~(beat_bytes - 1);

  AccessResult res;
  bool coalesced = false;
  if (scheduler_) {
    // Queued path: reads go through the MSHR/scheduler (coalesced reads
    // produce no device traffic), writes are posted into the per-channel
    // write queues and drained FR-FCFS. Byte/access accounting stays at
    // arrival so per-core attribution snapshots charge the causing core.
    const ChannelScheduler::SchedResult is =
        (type == AccessType::kRead)
            ? scheduler_->on_read(addr, bytes, now, *this)
            : scheduler_->on_write(addr, bytes, now, *this);
    res.start = is.start;
    res.complete = is.complete;
    coalesced = is.coalesced;
  } else {
    const RawTiming t = timed_beats(addr, bytes, type, now);
    // Legacy reports the arrival tick as start; the fixed path reports
    // the true command-issue tick so latency() excludes queueing delay.
    res.start = params_.queue.timing_fixes ? t.start : now;
    res.complete = t.complete;
  }

  ++stats_.accesses;
  if (!coalesced) {
    const u64 moved = (last - first) + beat_bytes;
    auto& by_class = (type == AccessType::kRead) ? stats_.read_bytes
                                                 : stats_.write_bytes;
    by_class[static_cast<std::size_t>(cls)] += moved;
  }

  // A coalesced read rides the original fill, whose ECC verdict was
  // already delivered to that fill's requester — no reclassification.
  if (faults_ != nullptr && !coalesced) {
    // ECC classification covers the access as a unit, keyed on the first
    // beat's geometry (sufficient for 64 B demand accesses; a multi-beat
    // transfer spanning a faulty structure still reports one event).
    const Decoded d0 = decode(first % params_.capacity_bytes);
    const fault::FaultEvent ev = faults_->classify(d0.channel, d0.bank,
                                                   d0.row, now);
    if (ev.outcome != fault::EccOutcome::kClean) {
      res.ecc = ev.outcome;
      if (ev.outcome == fault::EccOutcome::kCorrected) {
        ++stats_.ce_count;
        res.complete += faults_->config().ce_latency;
      } else {
        ++stats_.ue_count;
      }
      if (trace_ != nullptr) {
        trace_->emit(TraceEvent(now, "fault_injected", "fault")
                         .arg("device", fault_label_)
                         .arg("kind", fault::to_string(ev.kind))
                         .arg("outcome", fault::to_string(ev.outcome))
                         .arg("channel", d0.channel)
                         .arg("bank", d0.bank)
                         .arg("row", d0.row)
                         .arg("row_retired", ev.row_retired ? 1 : 0));
      }
    }
  }
  return res;
}

Tick DramDevice::refresh_adjusted(u32 channel, Tick t) const {
  if (!params_.refresh_enabled) return t;
  const Tick trefi = ns_to_ticks(params_.trefi_ns);
  const Tick trfc = ns_to_ticks(params_.trfc_ns);
  Tick next = next_refresh_[channel];
  // Mirror apply_refresh's arithmetic without mutating state: refreshes
  // that completed entirely before `t` cannot stall anything; a `t`
  // landing inside a pending window is pushed to the window's end.
  if (t > next + trfc) {
    next += ((t - next - trfc) / trefi) * trefi;
  }
  while (t >= next) {
    const Tick refresh_end = next + trfc;
    next += trefi;
    if (t < refresh_end) t = refresh_end;
  }
  return t;
}

Tick DramDevice::probe_ready(Addr addr, Tick now) const {
  const Decoded d = decode(addr % params_.capacity_bytes);
  const Bank& bank = banks_[static_cast<std::size_t>(d.channel) *
                                params_.banks_per_channel +
                            d.bank];
  // Legacy bug (preserved when timing_fixes is off): the probe ignored
  // pending refresh windows, underestimating readiness by up to tRFC for
  // ticks inside a window. The fix consults the refresh schedule with the
  // same const arithmetic apply_refresh uses.
  Tick t = std::max(now, bank.ready_at);
  if (params_.queue.timing_fixes) t = refresh_adjusted(d.channel, t);
  return std::max(t, bus_ready_[d.channel]);
}

void DramDevice::reset_stats() {
  stats_ = DramStats{};
  energy_.reset();
  // Scheduler counters reset too; queued writes still in flight stay
  // queued (queue contents are state, not statistics).
  if (scheduler_) scheduler_->reset_stats();
}

void DramDevice::register_metrics(MetricRegistry& reg,
                                  const std::string& prefix) const {
  const DramStats* st = &stats_;
  reg.add_ratio(
      prefix + "row_hit_rate",
      [st] { return static_cast<double>(st->row_hits); },
      [st] {
        return static_cast<double>(st->row_hits + st->row_misses +
                                   st->row_empty);
      });
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    reg.add_counter(
        prefix + "bytes_" + to_string(static_cast<TrafficClass>(c)),
        [st, c] {
          return static_cast<double>(st->read_bytes[c] + st->write_bytes[c]);
        });
  }
  if (scheduler_) {
    // The ramulator HBM_Memory.h stat set: per-epoch queueing averages and
    // the drain-episode counter, prefixed per device like every other
    // probe here.
    const QueueStats* qs = &scheduler_->stats();
    reg.add_ratio(
        prefix + "queueing_latency_avg",
        [qs] { return ticks_to_ns(qs->queueing_latency_sum); },
        [qs] { return static_cast<double>(qs->requests()); });
    reg.add_ratio(
        prefix + "read_queue_latency_avg",
        [qs] { return ticks_to_ns(qs->read_queue_latency_sum); },
        [qs] {
          return static_cast<double>(qs->reads_issued + qs->reads_coalesced);
        });
    reg.add_ratio(
        prefix + "req_queue_length_avg",
        [qs] { return static_cast<double>(qs->req_queue_length_sum); },
        [qs] { return static_cast<double>(qs->queue_length_samples); });
    reg.add_counter(prefix + "write_drain_count", [qs] {
      return static_cast<double>(qs->write_drain_count);
    });
  }
  if (faults_ != nullptr) {
    const fault::DeviceFaultState* fs = faults_;
    reg.add_counter(prefix + "ce_count",
                    [st] { return static_cast<double>(st->ce_count); });
    reg.add_counter(prefix + "ue_count",
                    [st] { return static_cast<double>(st->ue_count); });
    reg.add_gauge(prefix + "retired_rows",
                  [fs] { return static_cast<double>(fs->retired_rows()); });
  }
}

void DramDevice::attach_faults(fault::DeviceFaultState* faults,
                               std::string label) {
  faults_ = faults;
  fault_label_ = std::move(label);
}

void DramDevice::save(snap::Writer& w) const {
  w.put_u64(banks_.size());
  for (const Bank& b : banks_) {
    w.put_u32(b.open_row);
    w.put_u64(b.ready_at);
    w.put_u64(b.act_allowed_at);
    w.put_u64(b.write_recovery_at);
    w.put_u8(b.last_was_write ? 1 : 0);
    w.put_u8(b.has_issued ? 1 : 0);
  }
  w.put_u64(bus_ready_.size());
  for (Tick t : bus_ready_) w.put_u64(t);
  for (Tick t : next_refresh_) w.put_u64(t);
  w.put_u64(stats_.accesses);
  w.put_u64(stats_.beats);
  w.put_u64(stats_.row_hits);
  w.put_u64(stats_.row_misses);
  w.put_u64(stats_.row_empty);
  w.put_u64(stats_.refreshes);
  w.put_u64(stats_.ce_count);
  w.put_u64(stats_.ue_count);
  for (u64 b : stats_.read_bytes) w.put_u64(b);
  for (u64 b : stats_.write_bytes) w.put_u64(b);
  w.put_u64(energy_.act_count());
  w.put_u64(energy_.read_burst_count());
  w.put_u64(energy_.write_burst_count());
  w.put_u8(scheduler_ ? 1 : 0);
  if (scheduler_) scheduler_->save(w);
}

void DramDevice::load(snap::Reader& r) {
  if (r.get_u64() != banks_.size()) {
    throw snap::SnapshotError("dram bank count mismatch");
  }
  for (Bank& b : banks_) {
    b.open_row = r.get_u32();
    b.ready_at = r.get_u64();
    b.act_allowed_at = r.get_u64();
    b.write_recovery_at = r.get_u64();
    b.last_was_write = r.get_u8() != 0;
    b.has_issued = r.get_u8() != 0;
  }
  if (r.get_u64() != bus_ready_.size()) {
    throw snap::SnapshotError("dram channel count mismatch");
  }
  for (Tick& t : bus_ready_) t = r.get_u64();
  for (Tick& t : next_refresh_) t = r.get_u64();
  stats_.accesses = r.get_u64();
  stats_.beats = r.get_u64();
  stats_.row_hits = r.get_u64();
  stats_.row_misses = r.get_u64();
  stats_.row_empty = r.get_u64();
  stats_.refreshes = r.get_u64();
  stats_.ce_count = r.get_u64();
  stats_.ue_count = r.get_u64();
  for (u64& b : stats_.read_bytes) b = r.get_u64();
  for (u64& b : stats_.write_bytes) b = r.get_u64();
  const u64 acts = r.get_u64();
  const u64 rd = r.get_u64();
  const u64 wr = r.get_u64();
  energy_.restore_counts(acts, rd, wr);
  const bool has_sched = r.get_u8() != 0;
  if (has_sched != (scheduler_ != nullptr)) {
    throw snap::SnapshotError("queue-layer presence mismatch");
  }
  if (scheduler_) scheduler_->load(r);
}

}  // namespace bb::mem
