// Request-queue layer for the DRAM devices: per-channel write queues with
// FR-FCFS drain arbitration, write-drain hysteresis, and MSHR-style
// coalescing of same-block in-flight reads.
//
// The scheduler sits *inside* DramDevice, behind its synchronous access()
// facade, so controllers and the core model keep their call shape. The
// model stays event-free: reads issue immediately (demand priority) and
// report their true command-issue tick, writes are posted into a bounded
// per-channel queue and drained to the device in FR-FCFS order (open-row
// hits first, then oldest) when the queue crosses the high watermark,
// stopping at the low watermark. A full queue back-pressures the producer:
// the write is accepted only once a drained slot frees.
//
// Everything is tick-keyed and container iteration is index-ordered, so
// queued runs remain byte-identical across --jobs values (the same
// determinism contract as the rest of the simulator).
#pragma once

#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::mem {

/// Configuration of the request-queue layer, carried per device inside
/// DramTimingParams. Default-constructed state is fully legacy: no queues,
/// no timing fixes, bit-for-bit the pre-queue simulator (the BB_QUEUE=off
/// preset, and what the pinned golden hash covers).
struct QueueConfig {
  /// Master switch for the queue/scheduler path.
  bool enabled = false;
  /// The PR-6 DRAM-timing bugfixes (phantom cold-bank tRTW, row-ID
  /// aliasing, refresh-blind probe_ready). Kept separately switchable so
  /// the fixes are unit-testable without queues; off by default to
  /// preserve the legacy golden hash.
  bool timing_fixes = false;

  u32 queue_depth = 32;          ///< per-channel write-queue capacity
  u32 write_high_watermark = 24; ///< queue size that enters drain mode
  u32 write_low_watermark = 8;   ///< drain stops at this queue size
  u32 mshr_entries = 16;         ///< per-channel in-flight fill trackers
  u64 mshr_block_bytes = 64;     ///< coalescing granularity (LLC block)

  /// Legacy preset: everything off (the BB_QUEUE=off behavior).
  static QueueConfig off() { return QueueConfig{}; }

  /// Queued preset: FR-FCFS scheduling, MSHRs, and the timing fixes.
  static QueueConfig fr_fcfs() {
    QueueConfig q;
    q.enabled = true;
    q.timing_fixes = true;
    return q;
  }
};

/// Scheduler statistics, following the stat set of ramulator's
/// HBM_Memory.h (queueing_latency_avg, read_queue_latency_avg,
/// req_queue_length_avg) plus drain/coalescing counters.
struct QueueStats {
  u64 reads_issued = 0;        ///< reads that reached the device
  u64 reads_coalesced = 0;     ///< reads served by an in-flight MSHR fill
  u64 writes_enqueued = 0;     ///< writes accepted into a queue
  u64 writes_drained = 0;      ///< writes issued to the device
  u64 write_drain_count = 0;   ///< watermark/full-triggered drain episodes
  u64 write_queue_full_stalls = 0;  ///< producer waits on a full queue

  Tick queueing_latency_sum = 0;       ///< reads + writes: issue - arrival
  Tick read_queue_latency_sum = 0;     ///< reads only: issue - arrival
  u64 req_queue_length_sum = 0;        ///< queue+MSHR occupancy per arrival
  u64 queue_length_samples = 0;

  /// Requests that passed through the queue layer (reads incl. coalesced
  /// plus writes) — the denominator of queueing_latency_avg.
  u64 requests() const {
    return reads_issued + reads_coalesced + writes_enqueued;
  }
  double queueing_latency_avg_ns() const {
    const u64 n = requests();
    return n ? ticks_to_ns(queueing_latency_sum) / static_cast<double>(n)
             : 0.0;
  }
  double read_queue_latency_avg_ns() const {
    const u64 n = reads_issued + reads_coalesced;
    return n ? ticks_to_ns(read_queue_latency_sum) / static_cast<double>(n)
             : 0.0;
  }
  double req_queue_length_avg() const {
    return queue_length_samples
               ? static_cast<double>(req_queue_length_sum) /
                     static_cast<double>(queue_length_samples)
               : 0.0;
  }
};

/// Device-side interface the scheduler drives. DramDevice implements it
/// privately; the indirection keeps request_queue free of device headers.
class QueueBackend {
 public:
  /// Timing of one access actually issued to the banks/bus.
  struct Issue {
    Tick start = 0;     ///< first command-issue tick (post queue/refresh)
    Tick complete = 0;  ///< last data beat done
  };

  virtual ~QueueBackend() = default;

  /// Channel the first beat of `addr` decodes to.
  virtual u32 channel_of(Addr addr) const = 0;
  /// True when `addr` hits the currently open row of its bank.
  virtual bool open_row_hit(Addr addr) const = 0;
  /// Issues the access to the device timing model (beats, energy, row
  /// stats), without byte accounting — the facade accounts at arrival.
  virtual Issue issue(Addr addr, u64 bytes, AccessType type, Tick now) = 0;
};

class ChannelScheduler {
 public:
  /// FR-FCFS candidate: whether the entry currently hits an open row, and
  /// when it entered the queue.
  struct Candidate {
    bool row_hit = false;
    Tick arrival = 0;
  };

  ChannelScheduler(const QueueConfig& cfg, u32 channels);

  /// FR-FCFS victim selection: the oldest row-hit candidate, else the
  /// oldest candidate overall (ties broken by queue position). Exposed
  /// statically so the arbitration rule is unit-testable in isolation.
  static std::size_t pick_fr_fcfs(const std::vector<Candidate>& candidates);

  /// Outcome of a request through the scheduler. `coalesced` marks a read
  /// served by an in-flight MSHR fill: it moved no new device data, so the
  /// facade skips byte accounting and ECC classification for it.
  struct SchedResult {
    Tick start = 0;
    Tick complete = 0;
    bool coalesced = false;
  };

  /// A read request: served from an in-flight MSHR fill when a same-block
  /// fill completes after `now`, otherwise issued to the device (demand
  /// priority over queued writes) and MSHR-tracked.
  SchedResult on_read(Addr addr, u64 bytes, Tick now, QueueBackend& dev);

  /// A write request: posted into the channel's write queue. Returns the
  /// acceptance tick as both start and complete (posted semantics); when
  /// the queue is full the acceptance waits for a drained slot.
  SchedResult on_write(Addr addr, u64 bytes, Tick now, QueueBackend& dev);

  /// Flushes every queued write (end of simulation / controller drain).
  /// Not counted as a drain episode.
  void drain_all(Tick now, QueueBackend& dev);

  /// Current write-queue occupancy of `channel` (tests / probes).
  u32 write_queue_len(u32 channel) const {
    return static_cast<u32>(channels_[channel].writes.size());
  }

  const QueueStats& stats() const { return stats_; }
  void reset_stats() { stats_ = QueueStats{}; }
  const QueueConfig& config() const { return cfg_; }

  /// Snapshot/restore of queued writes, in-flight MSHRs, and statistics.
  /// Load fails closed when the channel count disagrees with this
  /// scheduler's construction-time shape.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  struct QueuedWrite {
    Addr addr = 0;
    u64 bytes = 0;
    Tick arrival = 0;
  };
  struct Mshr {
    Addr block = 0;
    Tick complete = 0;
  };
  struct Channel {
    std::vector<QueuedWrite> writes;
    std::vector<Mshr> mshrs;
  };

  /// Issues writes in FR-FCFS order until the queue length reaches
  /// `target_len`. Returns the completion tick of the first drained write
  /// (the tick a slot frees), or `now` when nothing drained.
  Tick drain_to(Channel& ch, std::size_t target_len, Tick now,
                QueueBackend& dev);

  /// Drops MSHRs whose fill completed at or before `now`, then returns
  /// the number still in flight.
  std::size_t expire_mshrs(Channel& ch, Tick now);

  void sample_queue_length(Channel& ch, Tick now);

  QueueConfig cfg_;
  std::vector<Channel> channels_;
  QueueStats stats_;
};

}  // namespace bb::mem
