// Three-level SRAM cache hierarchy matching Table I:
//   IL1/DL1: private 64 KB, 4-way, LRU
//   L2:      private 256 KB, 8-way, SRRIP
//   L3:      shared 8 MB, 16-way, DRRIP
//
// Non-inclusive, write-back, write-allocate. An access walks L1 -> L2 -> L3;
// evictions propagate writebacks toward memory. The hierarchy's output is
// the LLC-miss stream (what the paper's HMMC sees) plus hit latency.
#pragma once

#include <memory>

#include "cache/cache.h"

namespace bb::cache {

struct HierarchyParams {
  CacheParams l1{.name = "L1D",
                 .size_bytes = 64 * KiB,
                 .ways = 4,
                 .line_bytes = 64,
                 .policy = PolicyKind::kLru,
                 .hit_latency = ns_to_ticks(1.1)};   // ~4 cycles @3.6 GHz
  CacheParams l2{.name = "L2",
                 .size_bytes = 256 * KiB,
                 .ways = 8,
                 .line_bytes = 64,
                 .policy = PolicyKind::kSrrip,
                 .hit_latency = ns_to_ticks(3.3)};   // ~12 cycles
  CacheParams l3{.name = "L3",
                 .size_bytes = 8 * MiB,
                 .ways = 16,
                 .line_bytes = 64,
                 .policy = PolicyKind::kDrrip,
                 .hit_latency = ns_to_ticks(10.6)};  // ~38 cycles
};

/// Result of walking the hierarchy for one access.
struct HierarchyResult {
  int hit_level = 0;        ///< 1..3 = which cache hit; 0 = LLC miss
  Tick latency = 0;         ///< cumulative lookup latency
  bool llc_miss = false;
  bool writeback_to_memory = false;   ///< a dirty L3 victim must be written
  Addr writeback_addr = kAddrInvalid;
};

class Hierarchy {
 public:
  explicit Hierarchy(const HierarchyParams& params = HierarchyParams{});

  /// Walks the hierarchy; fills on miss at every level.
  HierarchyResult access(Addr addr, AccessType type);

  const Cache& l1() const { return *l1_; }
  const Cache& l2() const { return *l2_; }
  const Cache& l3() const { return *l3_; }

  /// LLC misses per kilo-instruction, given the instruction count that
  /// produced the accesses so far.
  double mpki(u64 instructions) const;

  void reset_stats();

 private:
  std::unique_ptr<Cache> l1_;
  std::unique_ptr<Cache> l2_;
  std::unique_ptr<Cache> l3_;
};

}  // namespace bb::cache
