// Generic set-associative, write-back, write-allocate cache model.
//
// Used for the SRAM hierarchy (L1/L2/L3 of Table I) and, at page/line
// granularities up to 64 KB, for the Figure 1 cHBM access-count study.
// Tracks per-line access counts and exposes an eviction hook so observers
// can build "accesses before eviction" distributions.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.h"
#include "common/types.h"

namespace bb::cache {

struct CacheParams {
  std::string name = "cache";
  u64 size_bytes = 64 * KiB;
  u32 ways = 4;
  u64 line_bytes = 64;
  PolicyKind policy = PolicyKind::kLru;
  Tick hit_latency = ns_to_ticks(1.0);
  u64 seed = 1;

  u32 num_sets() const {
    assert(line_bytes > 0 && ways > 0);
    return static_cast<u32>(size_bytes / line_bytes / ways);
  }
};

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;  ///< dirty evictions

  u64 accesses() const { return hits + misses; }
  double hit_rate() const {
    return accesses() ? static_cast<double>(hits) /
                            static_cast<double>(accesses())
                      : 0.0;
  }
};

/// Outcome of a single cache access.
struct CacheAccessResult {
  bool hit = false;
  bool evicted = false;          ///< a valid line was displaced
  Addr evicted_addr = kAddrInvalid;  ///< line base address of the victim
  bool evicted_dirty = false;
};

/// Information passed to the eviction observer.
struct EvictionInfo {
  Addr line_addr;
  u64 access_count;  ///< hits + the installing access
  bool dirty;
};

class Cache {
 public:
  explicit Cache(CacheParams params);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Accesses `addr`; on miss, allocates (possibly evicting).
  CacheAccessResult access(Addr addr, AccessType type);

  /// Probes without modifying any state.
  bool contains(Addr addr) const;

  /// Invalidates the line containing `addr` if present; returns whether the
  /// invalidated line was dirty.
  bool invalidate(Addr addr);

  /// Observer invoked whenever a valid line is evicted (not on invalidate).
  void set_eviction_hook(std::function<void(const EvictionInfo&)> hook) {
    eviction_hook_ = std::move(hook);
  }

  /// Flushes every valid line through the eviction hook and clears the cache.
  void flush();

  const CacheParams& params() const { return params_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Snapshot/restore of the line array, statistics, and replacement-policy
  /// state. Geometry is construction-time shape; load fails closed on a
  /// line-count mismatch.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 accesses = 0;
  };

  u32 set_of(Addr addr) const {
    return static_cast<u32>((addr / params_.line_bytes) % sets_);
  }
  Addr tag_of(Addr addr) const {
    return addr / params_.line_bytes / sets_;
  }
  Addr line_addr(Addr tag, u32 set) const {
    return (tag * sets_ + set) * params_.line_bytes;
  }
  Line& line_at(u32 set, u32 way) {
    return lines_[static_cast<std::size_t>(set) * params_.ways + way];
  }
  const Line& line_at(u32 set, u32 way) const {
    return lines_[static_cast<std::size_t>(set) * params_.ways + way];
  }

  CacheParams params_;
  u32 sets_;
  std::vector<Line> lines_;
  std::unique_ptr<ReplacementPolicy> policy_;
  CacheStats stats_;
  std::function<void(const EvictionInfo&)> eviction_hook_;
};

}  // namespace bb::cache
