#include "cache/cache.h"

#include "common/snapshot.h"

namespace bb::cache {

Cache::Cache(CacheParams params)
    : params_(std::move(params)),
      sets_(params_.num_sets()),
      policy_(make_policy(params_.policy, params_.seed)) {
  assert(sets_ > 0 && "cache must have at least one set");
  assert(is_pow2(params_.line_bytes));
  lines_.resize(static_cast<std::size_t>(sets_) * params_.ways);
  policy_->init(sets_, params_.ways);
}

CacheAccessResult Cache::access(Addr addr, AccessType type) {
  const u32 set = set_of(addr);
  const Addr tag = tag_of(addr);
  CacheAccessResult res;

  for (u32 w = 0; w < params_.ways; ++w) {
    Line& line = line_at(set, w);
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      ++line.accesses;
      if (type == AccessType::kWrite) line.dirty = true;
      policy_->on_hit(set, w);
      res.hit = true;
      return res;
    }
  }

  ++stats_.misses;

  // Prefer an invalid way.
  u32 way = params_.ways;
  for (u32 w = 0; w < params_.ways; ++w) {
    if (!line_at(set, w).valid) {
      way = w;
      break;
    }
  }
  if (way == params_.ways) {
    way = policy_->victim(set);
    Line& victim = line_at(set, way);
    ++stats_.evictions;
    if (victim.dirty) ++stats_.writebacks;
    res.evicted = true;
    res.evicted_addr = line_addr(victim.tag, set);
    res.evicted_dirty = victim.dirty;
    if (eviction_hook_) {
      eviction_hook_({res.evicted_addr, victim.accesses, victim.dirty});
    }
  }

  Line& line = line_at(set, way);
  line.valid = true;
  line.tag = tag;
  line.dirty = (type == AccessType::kWrite);
  line.accesses = 1;
  policy_->on_fill(set, way);
  return res;
}

bool Cache::contains(Addr addr) const {
  const u32 set = set_of(addr);
  const Addr tag = tag_of(addr);
  for (u32 w = 0; w < params_.ways; ++w) {
    const Line& line = line_at(set, w);
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(Addr addr) {
  const u32 set = set_of(addr);
  const Addr tag = tag_of(addr);
  for (u32 w = 0; w < params_.ways; ++w) {
    Line& line = line_at(set, w);
    if (line.valid && line.tag == tag) {
      const bool was_dirty = line.dirty;
      line = Line{};
      return was_dirty;
    }
  }
  return false;
}

void Cache::flush() {
  for (u32 s = 0; s < sets_; ++s) {
    for (u32 w = 0; w < params_.ways; ++w) {
      Line& line = line_at(s, w);
      if (line.valid) {
        if (eviction_hook_) {
          eviction_hook_({line_addr(line.tag, s), line.accesses, line.dirty});
        }
        if (line.dirty) ++stats_.writebacks;
        ++stats_.evictions;
        line = Line{};
      }
    }
  }
}

void Cache::save(snap::Writer& w) const {
  w.put_u64(lines_.size());
  for (const Line& ln : lines_) {
    w.put_u64(ln.tag);
    w.put_u8(ln.valid ? 1 : 0);
    w.put_u8(ln.dirty ? 1 : 0);
    w.put_u64(ln.accesses);
  }
  w.put_u64(stats_.hits);
  w.put_u64(stats_.misses);
  w.put_u64(stats_.evictions);
  w.put_u64(stats_.writebacks);
  policy_->save(w);
}

void Cache::load(snap::Reader& r) {
  if (r.get_u64() != lines_.size()) {
    throw snap::SnapshotError("cache line count mismatch");
  }
  for (Line& ln : lines_) {
    ln.tag = r.get_u64();
    ln.valid = r.get_u8() != 0;
    ln.dirty = r.get_u8() != 0;
    ln.accesses = r.get_u64();
  }
  stats_.hits = r.get_u64();
  stats_.misses = r.get_u64();
  stats_.evictions = r.get_u64();
  stats_.writebacks = r.get_u64();
  policy_->load(r);
}

}  // namespace bb::cache
