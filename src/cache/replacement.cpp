#include "cache/replacement.h"

#include <algorithm>
#include <cassert>

#include "common/snapshot.h"

namespace bb::cache {
namespace {

/// Small xorshift step for the policies' internal stochastic choices.
u64 xorshift_step(u64& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

// ---------------------------------------------------------------- LRU

void LruPolicy::init(u32 sets, u32 ways) {
  ways_ = ways;
  stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void LruPolicy::touch(u32 set, u32 way) {
  stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

u32 LruPolicy::victim(u32 set) {
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  u32 best = 0;
  u64 best_stamp = stamp_[base];
  for (u32 w = 1; w < ways_; ++w) {
    if (stamp_[base + w] < best_stamp) {
      best_stamp = stamp_[base + w];
      best = w;
    }
  }
  return best;
}

// ---------------------------------------------------------------- RRIP

RripPolicy::RripPolicy(bool bimodal, u64 seed)
    : bimodal_(bimodal), lfsr_(seed | 1) {}

void RripPolicy::init(u32 sets, u32 ways) {
  ways_ = ways;
  rrpv_.assign(static_cast<std::size_t>(sets) * ways, kMaxRrpv);
}

void RripPolicy::on_fill(u32 set, u32 way) {
  u8 insert = kMaxRrpv - 1;  // SRRIP: "long" re-reference
  if (bimodal_) {
    // BRRIP: distant insertion most of the time (1/32 long).
    insert = (xorshift_step(lfsr_) & 31) == 0 ? u8(kMaxRrpv - 1) : kMaxRrpv;
  }
  rrpv_[static_cast<std::size_t>(set) * ways_ + way] = insert;
}

void RripPolicy::on_hit(u32 set, u32 way) {
  rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

u32 RripPolicy::victim(u32 set) {
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  for (;;) {
    for (u32 w = 0; w < ways_; ++w) {
      if (rrpv_[base + w] == kMaxRrpv) return w;
    }
    for (u32 w = 0; w < ways_; ++w) ++rrpv_[base + w];
  }
}

// ---------------------------------------------------------------- DRRIP

DrripPolicy::DrripPolicy(u64 seed) : lfsr_(seed | 1) {}

void DrripPolicy::init(u32 sets, u32 ways) {
  sets_ = sets;
  ways_ = ways;
  rrpv_.assign(static_cast<std::size_t>(sets) * ways, kMaxRrpv);
}

DrripPolicy::SetRole DrripPolicy::role(u32 set) const {
  // Constituency-based leader selection: every 32nd set leads a policy.
  if (sets_ < 64) {
    // Tiny caches: first set leads SRRIP, second leads BRRIP.
    if (set == 0) return SetRole::kSrripLeader;
    if (set == 1 && sets_ > 1) return SetRole::kBrripLeader;
    return SetRole::kFollower;
  }
  if ((set & 31) == 0) return SetRole::kSrripLeader;
  if ((set & 31) == 16) return SetRole::kBrripLeader;
  return SetRole::kFollower;
}

bool DrripPolicy::use_bimodal(u32 set) {
  switch (role(set)) {
    case SetRole::kSrripLeader:
      // A fill in an SRRIP leader means the SRRIP leader missed.
      psel_ = std::min(psel_ + 1, kPselMax);
      return false;
    case SetRole::kBrripLeader:
      psel_ = std::max(psel_ - 1, 0);
      return true;
    case SetRole::kFollower:
      // High PSEL = SRRIP missing more = prefer BRRIP.
      return psel_ > kPselMax / 2;
  }
  return false;
}

void DrripPolicy::on_fill(u32 set, u32 way) {
  u8 insert;
  if (use_bimodal(set)) {
    insert = (xorshift_step(lfsr_) & 31) == 0 ? u8(kMaxRrpv - 1) : kMaxRrpv;
  } else {
    insert = kMaxRrpv - 1;
  }
  rrpv_[static_cast<std::size_t>(set) * ways_ + way] = insert;
}

void DrripPolicy::on_hit(u32 set, u32 way) {
  rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

u32 DrripPolicy::victim(u32 set) {
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  for (;;) {
    for (u32 w = 0; w < ways_; ++w) {
      if (rrpv_[base + w] == kMaxRrpv) return w;
    }
    for (u32 w = 0; w < ways_; ++w) ++rrpv_[base + w];
  }
}

// ---------------------------------------------------------------- Random

u32 RandomPolicy::victim(u32) {
  return static_cast<u32>(xorshift_step(lfsr_) % ways_);
}

// ---------------------------------------------------------------- factory

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind, u64 seed) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case PolicyKind::kSrrip:
      return std::make_unique<RripPolicy>(/*bimodal=*/false, seed);
    case PolicyKind::kBrrip:
      return std::make_unique<RripPolicy>(/*bimodal=*/true, seed);
    case PolicyKind::kDrrip:
      return std::make_unique<DrripPolicy>(seed);
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(seed);
  }
  assert(false && "unknown policy kind");
  return nullptr;
}

void LruPolicy::save(snap::Writer& w) const {
  w.put_u64(clock_);
  w.put_u64(stamp_.size());
  for (u64 s : stamp_) w.put_u64(s);
}

void LruPolicy::load(snap::Reader& r) {
  clock_ = r.get_u64();
  if (r.get_u64() != stamp_.size()) {
    throw snap::SnapshotError("LRU stamp count mismatch");
  }
  for (u64& s : stamp_) s = r.get_u64();
}

void RripPolicy::save(snap::Writer& w) const {
  w.put_u64(lfsr_);
  w.put_u64(rrpv_.size());
  for (u8 v : rrpv_) w.put_u8(v);
}

void RripPolicy::load(snap::Reader& r) {
  lfsr_ = r.get_u64();
  if (r.get_u64() != rrpv_.size()) {
    throw snap::SnapshotError("RRIP state size mismatch");
  }
  for (u8& v : rrpv_) v = r.get_u8();
}

void DrripPolicy::save(snap::Writer& w) const {
  w.put_u64(lfsr_);
  w.put_i64(psel_);
  w.put_u64(rrpv_.size());
  for (u8 v : rrpv_) w.put_u8(v);
}

void DrripPolicy::load(snap::Reader& r) {
  lfsr_ = r.get_u64();
  psel_ = static_cast<int>(r.get_i64());
  if (r.get_u64() != rrpv_.size()) {
    throw snap::SnapshotError("DRRIP state size mismatch");
  }
  for (u8& v : rrpv_) v = r.get_u8();
}

void RandomPolicy::save(snap::Writer& w) const { w.put_u64(lfsr_); }

void RandomPolicy::load(snap::Reader& r) { lfsr_ = r.get_u64(); }

}  // namespace bb::cache
