// Replacement policies for the SRAM cache hierarchy (Table I):
//   L1: LRU, L2: SRRIP, L3: DRRIP (set-dueling between SRRIP and BRRIP).
//
// A policy owns its per-set recency state; the cache calls back on fills and
// hits and asks for a victim way when a set is full.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::cache {

enum class PolicyKind : u8 { kLru, kSrrip, kBrrip, kDrrip, kRandom };

constexpr const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kSrrip: return "SRRIP";
    case PolicyKind::kBrrip: return "BRRIP";
    case PolicyKind::kDrrip: return "DRRIP";
    case PolicyKind::kRandom: return "Random";
  }
  return "?";
}

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Called once; `sets` x `ways` geometry is fixed afterwards.
  virtual void init(u32 sets, u32 ways) = 0;

  /// A new line was installed in (set, way).
  virtual void on_fill(u32 set, u32 way) = 0;

  /// The line in (set, way) was accessed and hit.
  virtual void on_hit(u32 set, u32 way) = 0;

  /// Chooses a victim way in a full set (may age internal state).
  virtual u32 victim(u32 set) = 0;

  virtual PolicyKind kind() const = 0;

  /// Snapshot/restore of the policy's recency state (geometry is fixed by
  /// init() and not serialized).
  virtual void save(snap::Writer& w) const = 0;
  virtual void load(snap::Reader& r) = 0;
};

/// Factory. `seed` feeds any stochastic components (BRRIP, Random).
std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind, u64 seed = 1);

/// True-LRU: per-set recency stamps.
class LruPolicy final : public ReplacementPolicy {
 public:
  void init(u32 sets, u32 ways) override;
  void on_fill(u32 set, u32 way) override { touch(set, way); }
  void on_hit(u32 set, u32 way) override { touch(set, way); }
  u32 victim(u32 set) override;
  PolicyKind kind() const override { return PolicyKind::kLru; }
  void save(snap::Writer& w) const override;
  void load(snap::Reader& r) override;

 private:
  void touch(u32 set, u32 way);

  u32 ways_ = 0;
  u64 clock_ = 0;
  std::vector<u64> stamp_;  // sets * ways
};

/// Static re-reference interval prediction with 2-bit RRPVs.
/// `long_insert_prob` < 1 gives BRRIP behaviour (mostly distant insertion).
class RripPolicy final : public ReplacementPolicy {
 public:
  explicit RripPolicy(bool bimodal, u64 seed);

  void init(u32 sets, u32 ways) override;
  void on_fill(u32 set, u32 way) override;
  void on_hit(u32 set, u32 way) override;
  u32 victim(u32 set) override;
  PolicyKind kind() const override {
    return bimodal_ ? PolicyKind::kBrrip : PolicyKind::kSrrip;
  }
  void save(snap::Writer& w) const override;
  void load(snap::Reader& r) override;

 private:
  static constexpr u8 kMaxRrpv = 3;

  bool bimodal_;
  u64 lfsr_;
  u32 ways_ = 0;
  std::vector<u8> rrpv_;  // sets * ways
};

/// DRRIP: set-dueling between SRRIP and BRRIP with a saturating PSEL.
class DrripPolicy final : public ReplacementPolicy {
 public:
  explicit DrripPolicy(u64 seed);

  void init(u32 sets, u32 ways) override;
  void on_fill(u32 set, u32 way) override;
  void on_hit(u32 set, u32 way) override;
  u32 victim(u32 set) override;
  PolicyKind kind() const override { return PolicyKind::kDrrip; }
  void save(snap::Writer& w) const override;
  void load(snap::Reader& r) override;

 private:
  enum class SetRole : u8 { kFollower, kSrripLeader, kBrripLeader };

  SetRole role(u32 set) const;
  bool use_bimodal(u32 set);

  static constexpr u8 kMaxRrpv = 3;
  static constexpr int kPselMax = 1023;

  u64 lfsr_;
  u32 ways_ = 0;
  u32 sets_ = 0;
  int psel_ = kPselMax / 2;
  std::vector<u8> rrpv_;
};

/// Uniform-random victim selection (used in tests as a contrast policy).
class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(u64 seed) : lfsr_(seed | 1) {}

  void init(u32 sets, u32 ways) override {
    (void)sets;
    ways_ = ways;
  }
  void on_fill(u32, u32) override {}
  void on_hit(u32, u32) override {}
  u32 victim(u32) override;
  PolicyKind kind() const override { return PolicyKind::kRandom; }
  void save(snap::Writer& w) const override;
  void load(snap::Reader& r) override;

 private:
  u64 lfsr_;
  u32 ways_ = 0;
};

}  // namespace bb::cache
