#include "cache/hierarchy.h"

namespace bb::cache {

Hierarchy::Hierarchy(const HierarchyParams& params)
    : l1_(std::make_unique<Cache>(params.l1)),
      l2_(std::make_unique<Cache>(params.l2)),
      l3_(std::make_unique<Cache>(params.l3)) {}

HierarchyResult Hierarchy::access(Addr addr, AccessType type) {
  HierarchyResult res;

  res.latency += l1_->params().hit_latency;
  const auto r1 = l1_->access(addr, type);
  if (r1.hit) {
    res.hit_level = 1;
    return res;
  }
  // L1 victim writes back into L2 (write-back hierarchy); model as an L2
  // write access so L2 dirtiness propagates.
  if (r1.evicted && r1.evicted_dirty) {
    (void)l2_->access(r1.evicted_addr, AccessType::kWrite);
  }

  res.latency += l2_->params().hit_latency;
  const auto r2 = l2_->access(addr, type);
  if (r2.hit) {
    res.hit_level = 2;
    return res;
  }
  if (r2.evicted && r2.evicted_dirty) {
    (void)l3_->access(r2.evicted_addr, AccessType::kWrite);
  }

  res.latency += l3_->params().hit_latency;
  const auto r3 = l3_->access(addr, type);
  if (r3.hit) {
    res.hit_level = 3;
    return res;
  }
  res.llc_miss = true;
  if (r3.evicted && r3.evicted_dirty) {
    res.writeback_to_memory = true;
    res.writeback_addr = r3.evicted_addr;
  }
  return res;
}

double Hierarchy::mpki(u64 instructions) const {
  if (instructions == 0) return 0.0;
  return static_cast<double>(l3_->stats().misses) * 1000.0 /
         static_cast<double>(instructions);
}

void Hierarchy::reset_stats() {
  l1_->reset_stats();
  l2_->reset_stats();
  l3_->reset_stats();
}

}  // namespace bb::cache
