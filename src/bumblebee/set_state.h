// Per-remapping-set metadata: the PRT slice and the BLE array (Figure 3).
//
// A set has m + n slots: slots [0, m) are off-chip DRAM frames, [m, m+n)
// are HBM frames. Logical page i of the set (its "original PLE") may be
// remapped to any frame j via new_ple[i]; occup[j] says whether frame j
// holds some page's authoritative data. Each HBM frame additionally has a
// BLE describing its role:
//   * kFree  — frame holds nothing,
//   * kCache — frame holds a cHBM copy of a DRAM-resident page `ple`
//              (valid = blocks present, dirty = blocks modified),
//   * kMem   — frame is the mHBM home of page `ple` (valid = blocks
//              *accessed*, the spatial-locality signal; dirty = modified).
#pragma once

#include <cstdint>
#include <vector>

#include "bumblebee/config.h"
#include "bumblebee/hot_table.h"
#include "common/bitvector.h"
#include "common/types.h"

namespace bb::bumblebee {

inline constexpr u32 kNoPage = ~u32{0};
inline constexpr std::int32_t kUnallocated = -1;

/// Block Location Entry for one HBM frame.
struct Ble {
  enum class Mode : u8 { kFree, kCache, kMem };

  Mode mode = Mode::kFree;
  u32 ple = kNoPage;  ///< in-set index of the page whose data is here
  /// Frame mapped out after uncorrectable errors (fault injection). Sticky:
  /// reset() deliberately leaves it set — a retired frame stays kFree but
  /// is never allocated again.
  bool retired = false;
  BitVector valid;    ///< cache: blocks present; mem: blocks accessed
  BitVector dirty;    ///< blocks modified relative to the off-chip copy

  // Over-fetch accounting only (not modeled as stored metadata): which
  // blocks were *fetched* into HBM and which of those were later demanded.
  BitVector fetched;
  BitVector used;

  void reset(u32 blocks_per_page) {
    mode = Mode::kFree;
    ple = kNoPage;
    valid.resize(blocks_per_page);
    dirty.resize(blocks_per_page);
    fetched.resize(blocks_per_page);
    used.resize(blocks_per_page);
  }
};

/// All metadata of one remapping set.
struct SetState {
  SetState(const Geometry& g, u32 dram_queue_depth, u64 counter_max)
      : new_ple(g.slots(), kUnallocated),
        occup(g.slots(), false),
        ble(g.n),
        hot(g.n, dram_queue_depth, counter_max) {
    for (auto& b : ble) b.reset(g.blocks_per_page);
  }

  std::vector<std::int32_t> new_ple;  ///< slot-indexed; -1 = unallocated
  std::vector<bool> occup;            ///< frame-indexed
  std::vector<Ble> ble;               ///< HBM frames only (size n)
  HotTable hot;

  // Zombie-page detection (movement trigger 3): the HBM queue head and its
  // counter, and for how many set accesses they have been unchanged.
  u32 zombie_page = kNoPage;
  u64 zombie_counter = 0;
  u32 zombie_age = 0;

  u64 accesses = 0;           ///< total accesses routed to this set
  bool chbm_disabled = false; ///< high-footprint batch flush (trigger 5)
  std::int32_t last_alloc_page = -1;  ///< hotness-based allocation hint

  // Graceful degradation (fault injection): frames retired from this set,
  // and whether the set has crossed the degradation threshold (no further
  // HBM allocation or caching; existing copies were flushed off-chip).
  u32 retired_frames = 0;
  bool degraded = false;

  /// Frame currently caching page i in cHBM mode, or kNoPage.
  u32 cache_frame_of(u32 page) const {
    for (u32 k = 0; k < ble.size(); ++k) {
      if (ble[k].mode == Ble::Mode::kCache && ble[k].ple == page) return k;
    }
    return kNoPage;
  }

  /// First free, non-retired HBM frame (BLE index), or kNoPage.
  u32 free_hbm_frame() const {
    for (u32 k = 0; k < ble.size(); ++k) {
      if (ble[k].mode == Ble::Mode::kFree && !ble[k].retired) return k;
    }
    return kNoPage;
  }

  /// Free HBM frames that are still allocatable (retired frames excluded,
  /// so a fully-retired set reads as "Rh high" and stops attracting data).
  u32 free_hbm_frames() const {
    u32 c = 0;
    for (const auto& b : ble) c += (b.mode == Ble::Mode::kFree && !b.retired);
    return c;
  }

  /// First unoccupied DRAM frame, or kNoPage. Prefers `preferred` if free.
  u32 free_dram_frame(u32 m, u32 preferred = kNoPage) const {
    if (preferred != kNoPage && preferred < m && !occup[preferred]) {
      return preferred;
    }
    for (u32 j = 0; j < m; ++j) {
      if (!occup[j]) return j;
    }
    return kNoPage;
  }

  /// Rh is "high" iff every HBM frame is in use (the paper defines high as
  /// Rh reaching 1 to maximize HBM utilization).
  bool rh_high() const { return free_hbm_frames() == 0; }
  double rh() const {
    return 1.0 - static_cast<double>(free_hbm_frames()) /
                     static_cast<double>(ble.size());
  }
};

/// Spatial-locality summary of a set (Section III-E, Equation 1).
struct SpatialSummary {
  u32 nc = 0;  ///< cHBM frames
  u32 na = 0;  ///< mHBM frames with most blocks accessed
  u32 nn = 0;  ///< mHBM frames with most blocks NOT accessed
  int sl() const { return static_cast<int>(na) - static_cast<int>(nn) -
                          static_cast<int>(nc); }
};

inline SpatialSummary spatial_summary(const SetState& st,
                                      u32 blocks_per_page) {
  SpatialSummary s;
  for (const auto& b : st.ble) {
    switch (b.mode) {
      case Ble::Mode::kCache:
        ++s.nc;
        break;
      case Ble::Mode::kMem:
        if (2 * b.valid.popcount() >= blocks_per_page) {
          ++s.na;
        } else {
          ++s.nn;
        }
        break;
      case Ble::Mode::kFree:
        break;
    }
  }
  return s;
}

}  // namespace bb::bumblebee
