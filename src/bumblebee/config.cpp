#include "bumblebee/config.h"

#include <cassert>

namespace bb::bumblebee {

BumblebeeConfig BumblebeeConfig::baseline() { return BumblebeeConfig{}; }

BumblebeeConfig BumblebeeConfig::c_only() {
  BumblebeeConfig c;
  c.enable_migration = false;
  c.alloc = AllocPolicy::kDramFirst;
  c.variant_name = "C-Only";
  return c;
}

BumblebeeConfig BumblebeeConfig::m_only() {
  BumblebeeConfig c;
  c.enable_caching = false;
  c.variant_name = "M-Only";
  return c;
}

BumblebeeConfig BumblebeeConfig::fixed_chbm(double fraction) {
  BumblebeeConfig c;
  c.fixed_chbm_fraction = fraction;
  c.variant_name =
      fraction == 0.25 ? "25%-C" : (fraction == 0.5 ? "50%-C" : "Fixed-C");
  return c;
}

BumblebeeConfig BumblebeeConfig::no_multi() {
  BumblebeeConfig c;
  c.multiplexed_space = false;
  c.variant_name = "No-Multi";
  return c;
}

BumblebeeConfig BumblebeeConfig::meta_h() {
  BumblebeeConfig c;
  c.metadata_in_hbm = true;
  c.variant_name = "Meta-H";
  return c;
}

BumblebeeConfig BumblebeeConfig::alloc_d() {
  BumblebeeConfig c;
  c.alloc = AllocPolicy::kDramFirst;
  c.variant_name = "Alloc-D";
  return c;
}

BumblebeeConfig BumblebeeConfig::alloc_h() {
  BumblebeeConfig c;
  c.alloc = AllocPolicy::kHbmFirst;
  c.variant_name = "Alloc-H";
  return c;
}

BumblebeeConfig BumblebeeConfig::no_hmf() {
  BumblebeeConfig c;
  c.high_footprint_actions = false;
  c.variant_name = "No-HMF";
  return c;
}

Geometry Geometry::make(const BumblebeeConfig& cfg, u64 hbm_bytes,
                        u64 dram_bytes) {
  Geometry g;
  g.page_bytes = cfg.page_bytes;
  g.block_bytes = cfg.block_bytes;
  g.blocks_per_page = cfg.blocks_per_page();
  assert(g.blocks_per_page >= 1);

  const u64 hbm_pages = hbm_bytes / cfg.page_bytes;
  g.n = cfg.hbm_ways;
  assert(hbm_pages >= g.n);
  g.sets = static_cast<u32>(hbm_pages / g.n);
  const u64 dram_pages = dram_bytes / cfg.page_bytes;
  g.m = static_cast<u32>(dram_pages / g.sets);
  assert(g.m >= 1);
  return g;
}

MetadataBudget metadata_budget(const BumblebeeConfig& cfg, const Geometry& g) {
  MetadataBudget b;
  const u64 ple_bits = bits_for(g.slots());

  // PRT: one new-PLE plus one Occup bit per slot.
  const u64 prt_bits_per_set = static_cast<u64>(g.slots()) * (ple_bits + 1);

  // BLE array: per HBM frame a PLE, a valid and a dirty bit vector, and a
  // 2-bit mode (free / cHBM / mHBM).
  const u64 ble_bits_per_frame = ple_bits + 2ULL * g.blocks_per_page + 2;
  const u64 ble_bits_per_set = static_cast<u64>(g.n) * ble_bits_per_frame;

  // Hotness tracker: two queues of (PLE, counter) entries plus the five
  // per-set parameters (Rh, T, Nc, Na, Nn — each bounded by a counter /
  // slot-count width).
  const u64 entry_bits = ple_bits + cfg.counter_bits;
  const u64 queue_entries = g.n + cfg.dram_queue_depth;
  const u64 param_bits = 5ULL * 16;
  const u64 hot_bits_per_set = queue_entries * entry_bits + param_bits;

  b.prt_bytes = ceil_div(prt_bits_per_set * g.sets, 8);
  b.ble_bytes = ceil_div(ble_bits_per_set * g.sets, 8);
  b.hotness_bytes = ceil_div(hot_bits_per_set * g.sets, 8);
  return b;
}

}  // namespace bb::bumblebee
