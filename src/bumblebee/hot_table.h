// Per-remapping-set hot table (Figure 4 of the paper).
//
// Two LRU queues of (page, counter) entries:
//   * the HBM queue tracks every page currently resident in HBM (cHBM or
//     mHBM) — at most n entries;
//   * the off-chip DRAM queue tracks the most recently accessed off-chip
//     pages — a fixed small depth (8 in the evaluated configuration).
//
// Each entry's counter records the page's access count while in the queue
// (the paper's "hotness value"). Entries popped from the HBM queue are
// pushed back into the DRAM queue (the page is being evicted from HBM);
// entries popped from the DRAM queue are dropped.
//
// Queues are tiny (8 + 8 entries), so linear vectors beat pointer-chasing
// structures; the MRU end is the back of the vector.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::bumblebee {

class HotTable {
 public:
  struct Entry {
    u32 page = 0;   ///< in-set logical page index
    u64 counter = 0;
  };

  HotTable(u32 hbm_capacity, u32 dram_capacity, u64 counter_max);

  /// Records an access to a page resident in HBM: moves it to the MRU end
  /// (inserting if absent) and bumps its counter. Returns the new counter.
  u64 touch_hbm(u32 page);

  /// Records an access to an off-chip page; LRU-inserts into the DRAM queue
  /// (dropping the LRU entry on overflow). Returns the new counter.
  u64 touch_dram(u32 page);

  /// The page's hotness: its counter in either queue, 0 if untracked.
  u64 hotness(u32 page) const;

  /// T — the smallest counter among HBM-queue entries (0 if the queue is
  /// empty).
  u64 min_hbm_counter() const;

  /// LRU entry of the HBM queue (zombie detection watches this head).
  std::optional<Entry> lru_hbm() const;

  /// Eviction candidate: the entry with the smallest counter — the page
  /// that defines T — tie-broken towards the LRU end. Evicting it keeps
  /// the admission gate (hotness > T) and the replacement victim
  /// consistent, so marginal entrants churn among themselves instead of
  /// displacing established hot pages. `exclude` skips one page (the one
  /// just given its buffering second chance).
  std::optional<Entry> coldest_hbm(u32 exclude = ~u32{0}) const;

  /// The page is leaving HBM: removes it from the HBM queue and pushes its
  /// entry into the DRAM queue (keeping the counter), per the paper.
  void move_hbm_to_dram(u32 page);

  /// The page entered HBM: moves (or inserts) its entry into the HBM queue,
  /// keeping any counter it accumulated in the DRAM queue.
  void move_dram_to_hbm(u32 page);

  /// Re-queues an HBM-resident page at the MRU end without bumping its
  /// counter (the "one more chance" buffering of eviction trigger 2).
  void requeue_hbm_mru(u32 page);

  /// Forgets a page entirely (OS swap-out fallback).
  void remove(u32 page);

  std::size_t hbm_size() const { return hbm_.size(); }
  std::size_t dram_size() const { return dram_.size(); }
  const std::vector<Entry>& hbm_entries() const { return hbm_; }
  const std::vector<Entry>& dram_entries() const { return dram_; }

  /// Snapshot/restore of both queues (capacities are construction-time).
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  static std::optional<std::size_t> find(const std::vector<Entry>& q,
                                         u32 page);

  u32 hbm_capacity_;
  u32 dram_capacity_;
  u64 counter_max_;
  std::vector<Entry> hbm_;   ///< index 0 = LRU, back = MRU
  std::vector<Entry> dram_;
};

}  // namespace bb::bumblebee
