// Bumblebee configuration: geometry, policy knobs and ablation switches.
//
// Defaults reproduce the paper's evaluated configuration (Section IV-A/B):
// 64 KB pages, 2 KB blocks, 8-way set-associative management for both cHBM
// and mHBM, an 8-entry hot-table queue for recently accessed off-chip
// pages, T = the smallest hotness value among the set's HBM pages, and
// "high Rh" meaning every HBM frame in the set is occupied.
//
// The ablation switches correspond one-to-one to the Figure 7 factor
// breakdown: C-Only, M-Only, 25%-C, 50%-C, No-Multi, Meta-H, Alloc-D,
// Alloc-H and No-HMF.
#pragma once

#include <string>

#include "common/types.h"

namespace bb::bumblebee {

enum class AllocPolicy : u8 {
  kHotnessBased,  ///< Section III-D: follow the previous allocation if it is
                  ///< still hot in HBM and free HBM space exists
  kDramFirst,     ///< Alloc-D ablation: always allocate in off-chip DRAM
  kHbmFirst,      ///< Alloc-H ablation: allocate in HBM while space remains
};

struct BumblebeeConfig {
  // ------------------------------------------------------------- geometry
  u64 page_bytes = 64 * KiB;  ///< migration granularity (mHBM pages)
  u64 block_bytes = 2 * KiB;  ///< caching granularity (cHBM blocks)
  u32 hbm_ways = 8;           ///< HBM pages per remapping set (n)

  // ---------------------------------------------------------- hot tracker
  u32 dram_queue_depth = 8;   ///< recently-accessed off-chip pages tracked
  u32 counter_bits = 12;      ///< hot-table counter width (saturating)

  // --------------------------------------------------------------- policy
  /// A cHBM page whose valid fraction strictly exceeds this becomes mHBM
  /// ("most blocks in the page have been cached").
  double switch_fraction = 0.5;
  /// Set accesses with an unchanged hot-queue head before the head is
  /// declared a zombie page and evicted (movement trigger 3).
  u32 zombie_window = 1024;
  /// Remapping sets whose cHBM is flushed per high-footprint batch
  /// (movement trigger 5).
  u32 flush_batch_sets = 64;

  // ------------------------------------------------------------- metadata
  Tick sram_latency = ns_to_ticks(2.0);
  bool metadata_in_hbm = false;  ///< Meta-H ablation

  // --------------------------------------------------- fault degradation
  /// Retired HBM frames a set tolerates before it degrades: caching is
  /// disabled, existing copies are flushed, and the set serves from
  /// off-chip DRAM only (fault injection; never reached fault-free).
  u32 degrade_after_retired_frames = 2;

  // -------------------------------------------------------- ablation mode
  bool enable_caching = true;     ///< false: M-Only
  bool enable_migration = true;   ///< false: C-Only
  /// >= 0 fixes the cHBM share of each set (0.25 => 25%-C, 0.5 => 50%-C):
  /// frame roles become static and mode switching is disabled.
  double fixed_chbm_fraction = -1.0;
  bool multiplexed_space = true;  ///< false: No-Multi (mode switch moves data)
  AllocPolicy alloc = AllocPolicy::kHotnessBased;
  bool high_footprint_actions = true;  ///< false: No-HMF

  std::string variant_name = "Bumblebee";

  u32 blocks_per_page() const {
    return static_cast<u32>(page_bytes / block_bytes);
  }

  // Named ablation presets (Figure 7).
  static BumblebeeConfig baseline();
  static BumblebeeConfig c_only();
  static BumblebeeConfig m_only();
  static BumblebeeConfig fixed_chbm(double fraction);  // 25%-C / 50%-C
  static BumblebeeConfig no_multi();
  static BumblebeeConfig meta_h();
  static BumblebeeConfig alloc_d();
  static BumblebeeConfig alloc_h();
  static BumblebeeConfig no_hmf();
};

/// Derived per-run geometry: remapping sets and in-set slot layout.
///
/// Slots [0, m) of a set are off-chip DRAM frames, slots [m, m+n) are HBM
/// frames. Logical (OS-visible) page p of the DRAM region belongs to set
/// p % sets with in-set index p / sets; HBM-region logical pages map onto
/// the HBM slots the same way.
struct Geometry {
  u64 page_bytes = 0;
  u64 block_bytes = 0;
  u32 blocks_per_page = 0;
  u32 sets = 0;
  u32 m = 0;  ///< DRAM frames (and DRAM-region logical pages) per set
  u32 n = 0;  ///< HBM frames (and HBM-region logical pages) per set

  u64 dram_pages() const { return static_cast<u64>(m) * sets; }
  u64 hbm_pages() const { return static_cast<u64>(n) * sets; }
  u64 total_pages() const { return dram_pages() + hbm_pages(); }
  u64 visible_bytes() const { return total_pages() * page_bytes; }
  u32 slots() const { return m + n; }

  /// Builds geometry from device capacities; truncates to whole sets.
  static Geometry make(const BumblebeeConfig& cfg, u64 hbm_bytes,
                       u64 dram_bytes);
};

/// Exact SRAM metadata budget of a configuration in bytes, decomposed as in
/// Section IV-B (PRT / BLE array / hotness tracker).
struct MetadataBudget {
  u64 prt_bytes = 0;
  u64 ble_bytes = 0;
  u64 hotness_bytes = 0;
  u64 total() const { return prt_bytes + ble_bytes + hotness_bytes; }
};

MetadataBudget metadata_budget(const BumblebeeConfig& cfg, const Geometry& g);

}  // namespace bb::bumblebee
