#include "bumblebee/hot_table.h"

#include "common/snapshot.h"

#include <algorithm>
#include <cassert>

namespace bb::bumblebee {

HotTable::HotTable(u32 hbm_capacity, u32 dram_capacity, u64 counter_max)
    : hbm_capacity_(hbm_capacity),
      dram_capacity_(dram_capacity),
      counter_max_(counter_max) {
  hbm_.reserve(hbm_capacity_);
  dram_.reserve(dram_capacity_ + 1);
}

std::optional<std::size_t> HotTable::find(const std::vector<Entry>& q,
                                          u32 page) {
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].page == page) return i;
  }
  return std::nullopt;
}

u64 HotTable::touch_hbm(u32 page) {
  const auto idx = find(hbm_, page);
  Entry e;
  if (idx) {
    e = hbm_[*idx];
    hbm_.erase(hbm_.begin() + static_cast<std::ptrdiff_t>(*idx));
  } else {
    assert(hbm_.size() < hbm_capacity_ &&
           "HBM queue must have room: it tracks at most n resident pages");
  }
  e.page = page;
  e.counter = std::min(e.counter + 1, counter_max_);
  hbm_.push_back(e);
  return e.counter;
}

u64 HotTable::touch_dram(u32 page) {
  const auto idx = find(dram_, page);
  Entry e;
  if (idx) {
    e = dram_[*idx];
    dram_.erase(dram_.begin() + static_cast<std::ptrdiff_t>(*idx));
  }
  e.page = page;
  e.counter = std::min(e.counter + 1, counter_max_);
  dram_.push_back(e);
  if (dram_.size() > dram_capacity_) {
    dram_.erase(dram_.begin());  // drop the LRU off-chip entry
  }
  return e.counter;
}

u64 HotTable::hotness(u32 page) const {
  if (const auto i = find(hbm_, page)) return hbm_[*i].counter;
  if (const auto i = find(dram_, page)) return dram_[*i].counter;
  return 0;
}

u64 HotTable::min_hbm_counter() const {
  u64 t = 0;
  bool first = true;
  for (const Entry& e : hbm_) {
    if (first || e.counter < t) {
      t = e.counter;
      first = false;
    }
  }
  return t;
}

std::optional<HotTable::Entry> HotTable::lru_hbm() const {
  if (hbm_.empty()) return std::nullopt;
  return hbm_.front();
}

std::optional<HotTable::Entry> HotTable::coldest_hbm(u32 exclude) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < hbm_.size(); ++i) {
    if (hbm_[i].page == exclude) continue;
    if (!best || hbm_[i].counter < hbm_[*best].counter) best = i;
  }
  if (!best) return std::nullopt;
  return hbm_[*best];
}

void HotTable::move_hbm_to_dram(u32 page) {
  const auto idx = find(hbm_, page);
  if (!idx) return;
  Entry e = hbm_[*idx];
  hbm_.erase(hbm_.begin() + static_cast<std::ptrdiff_t>(*idx));
  // Remove any stale entry, then push at MRU keeping the counter.
  if (const auto d = find(dram_, page)) {
    dram_.erase(dram_.begin() + static_cast<std::ptrdiff_t>(*d));
  }
  dram_.push_back(e);
  if (dram_.size() > dram_capacity_) {
    dram_.erase(dram_.begin());
  }
}

void HotTable::move_dram_to_hbm(u32 page) {
  Entry e{page, 0};
  if (const auto d = find(dram_, page)) {
    e = dram_[*d];
    dram_.erase(dram_.begin() + static_cast<std::ptrdiff_t>(*d));
  }
  if (const auto h = find(hbm_, page)) {
    // Already tracked (defensive); merge counters.
    hbm_[*h].counter = std::min(hbm_[*h].counter + e.counter, counter_max_);
    return;
  }
  assert(hbm_.size() < hbm_capacity_);
  hbm_.push_back(e);
}

void HotTable::requeue_hbm_mru(u32 page) {
  const auto idx = find(hbm_, page);
  if (!idx) return;
  const Entry e = hbm_[*idx];
  hbm_.erase(hbm_.begin() + static_cast<std::ptrdiff_t>(*idx));
  hbm_.push_back(e);
}

void HotTable::remove(u32 page) {
  if (const auto h = find(hbm_, page)) {
    hbm_.erase(hbm_.begin() + static_cast<std::ptrdiff_t>(*h));
  }
  if (const auto d = find(dram_, page)) {
    dram_.erase(dram_.begin() + static_cast<std::ptrdiff_t>(*d));
  }
}

void HotTable::save(snap::Writer& w) const {
  w.put_u64(hbm_.size());
  for (const Entry& e : hbm_) {
    w.put_u32(e.page);
    w.put_u64(e.counter);
  }
  w.put_u64(dram_.size());
  for (const Entry& e : dram_) {
    w.put_u32(e.page);
    w.put_u64(e.counter);
  }
}

void HotTable::load(snap::Reader& r) {
  hbm_.resize(static_cast<std::size_t>(r.get_u64()));
  for (Entry& e : hbm_) {
    e.page = r.get_u32();
    e.counter = r.get_u64();
  }
  dram_.resize(static_cast<std::size_t>(r.get_u64()));
  for (Entry& e : dram_) {
    e.page = r.get_u32();
    e.counter = r.get_u64();
  }
}

}  // namespace bb::bumblebee
