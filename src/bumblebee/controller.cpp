#include "bumblebee/controller.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/check.h"
#include "common/metrics.h"
#include "common/snapshot.h"
#include "common/trace_event.h"

namespace bb::bumblebee {

namespace {

/// OS-visible capacity for the paging model: the full flat space, minus any
/// statically reserved cHBM share (the KNL-style fixed partitions hide
/// their cache portion from the OS).
hmm::PagingConfig make_paging(const BumblebeeConfig& cfg, const Geometry& g,
                              hmm::PagingConfig paging) {
  u64 visible = g.visible_bytes();
  if (cfg.fixed_chbm_fraction >= 0.0) {
    const u64 reserved = static_cast<u64>(
        cfg.fixed_chbm_fraction * static_cast<double>(g.hbm_pages()));
    visible -= reserved * g.page_bytes;
  }
  if (!cfg.enable_migration && cfg.alloc == AllocPolicy::kDramFirst) {
    // C-Only: HBM is pure cache, invisible to the OS.
    visible = g.dram_pages() * g.page_bytes;
  }
  paging.visible_bytes = visible;
  return paging;
}

}  // namespace

BumblebeeController::BumblebeeController(const BumblebeeConfig& cfg,
                                         mem::DramDevice& hbm,
                                         mem::DramDevice& dram,
                                         hmm::PagingConfig paging)
    : HybridMemoryController(
          cfg.variant_name, hbm, dram,
          make_paging(cfg, Geometry::make(cfg, hbm.capacity(), dram.capacity()),
                      paging)),
      cfg_(cfg),
      geo_(Geometry::make(cfg, hbm.capacity(), dram.capacity())),
      counter_max_((u64{1} << cfg.counter_bits) - 1) {
  hmm::MetadataConfig mc;
  mc.placement = cfg_.metadata_in_hbm ? hmm::MetadataPlacement::kHbm
                                      : hmm::MetadataPlacement::kSram;
  mc.sram_latency = cfg_.sram_latency;
  mc.entry_bytes = 32;  // one packed record covers a set's lookup state
  meta_ = std::make_unique<hmm::MetadataModel>(mc, &hbm);

  sets_.reserve(geo_.sets);
  for (u32 s = 0; s < geo_.sets; ++s) {
    sets_.emplace_back(geo_, cfg_.dram_queue_depth, counter_max_);
  }

  if (cfg_.fixed_chbm_fraction >= 0.0) {
    fixed_partition_ = true;
    chbm_reserved_ = static_cast<u32>(cfg_.fixed_chbm_fraction *
                                      static_cast<double>(geo_.n));
  }
}

u64 BumblebeeController::metadata_sram_bytes() const {
  if (cfg_.metadata_in_hbm) return 0;
  return metadata_budget(cfg_, geo_).total();
}

BumblebeeController::RatioSample BumblebeeController::ratio() const {
  RatioSample r;
  for (const auto& st : sets_) {
    const RatioSample s = set_ratio(st);
    r.chbm_frames += s.chbm_frames;
    r.mhbm_frames += s.mhbm_frames;
    r.free_frames += s.free_frames;
  }
  return r;
}

BumblebeeController::RatioSample BumblebeeController::set_ratio(
    const SetState& st) const {
  RatioSample r;
  for (const auto& b : st.ble) {
    switch (b.mode) {
      case Ble::Mode::kCache: ++r.chbm_frames; break;
      case Ble::Mode::kMem: ++r.mhbm_frames; break;
      case Ble::Mode::kFree: ++r.free_frames; break;
    }
  }
  return r;
}

void BumblebeeController::emit_ratio_transition(const SetState& st, u32 set,
                                                Tick now, const char* trigger,
                                                const RatioSample& before) {
  if (!tracing()) return;
  const RatioSample after = set_ratio(st);
  if (after.chbm_frames == before.chbm_frames &&
      after.mhbm_frames == before.mhbm_frames &&
      after.free_frames == before.free_frames) {
    return;
  }
  trace()->emit(TraceEvent(now, "remap_ratio_transition", "bumblebee")
                    .arg("set", set)
                    .arg("trigger", trigger)
                    .arg("chbm_before", before.chbm_frames)
                    .arg("mhbm_before", before.mhbm_frames)
                    .arg("free_before", before.free_frames)
                    .arg("chbm_after", after.chbm_frames)
                    .arg("mhbm_after", after.mhbm_frames)
                    .arg("free_after", after.free_frames));
}

void BumblebeeController::register_metrics(MetricRegistry& reg) const {
  HybridMemoryController::register_metrics(reg);
  // Global remap-ratio frame counts; one sets_ sweep per probe, but probes
  // run only at epoch boundaries.
  reg.add_gauge("chbm_frames", [this] {
    return static_cast<double>(ratio().chbm_frames);
  });
  reg.add_gauge("mhbm_frames", [this] {
    return static_cast<double>(ratio().mhbm_frames);
  });
  reg.add_gauge("free_hbm_frames", [this] {
    return static_cast<double>(ratio().free_frames);
  });
  // Per-set cHBM share (cache frames / HBM frames in the set): the spread
  // shows how far individual sets deviate from the global ratio.
  enum class Fold { kMean, kMin, kMax };
  auto share = [this](Fold fold) {
    double sum = 0.0;
    double mn = 1.0;
    double mx = 0.0;
    for (const auto& st : sets_) {
      const RatioSample s = set_ratio(st);
      const double f =
          static_cast<double>(s.chbm_frames) / static_cast<double>(geo_.n);
      sum += f;
      mn = std::min(mn, f);
      mx = std::max(mx, f);
    }
    switch (fold) {
      case Fold::kMin: return mn;
      case Fold::kMax: return mx;
      case Fold::kMean: break;
    }
    return sets_.empty() ? 0.0 : sum / static_cast<double>(sets_.size());
  };
  reg.add_gauge("chbm_share_mean", [share] { return share(Fold::kMean); });
  reg.add_gauge("chbm_share_min", [share] { return share(Fold::kMin); });
  reg.add_gauge("chbm_share_max", [share] { return share(Fold::kMax); });
  reg.add_gauge("sets_chbm_disabled", [this] {
    u64 n = 0;
    for (const auto& st : sets_) n += st.chbm_disabled ? 1 : 0;
    return static_cast<double>(n);
  });
  // Hot-table movement counters (per-epoch deltas).
  const BumblebeeStats* bs = &bstats_;
  reg.add_counter("page_migrations", [bs] {
    return static_cast<double>(bs->page_migrations);
  });
  reg.add_counter("cache_to_mem_switches", [bs] {
    return static_cast<double>(bs->cache_to_mem_switches);
  });
  reg.add_counter("mem_to_cache_buffers", [bs] {
    return static_cast<double>(bs->mem_to_cache_buffers);
  });
  reg.add_counter("zombie_evictions", [bs] {
    return static_cast<double>(bs->zombie_evictions);
  });
  reg.add_counter("set_swaps",
                  [bs] { return static_cast<double>(bs->set_swaps); });
  reg.add_counter("os_swap_outs",
                  [bs] { return static_cast<double>(bs->os_swap_outs); });
  // Fault handling (base class contributes retired_frames/degraded_sets).
  if (hbm().faults() != nullptr || dram().faults() != nullptr) {
    reg.add_counter("due_refetches", [bs] {
      return static_cast<double>(bs->due_refetches);
    });
  }
}

// --------------------------------------------------------------- address

BumblebeeController::Decoded BumblebeeController::decode(Addr addr) const {
  addr %= geo_.visible_bytes();
  const u64 lp = addr / geo_.page_bytes;
  Decoded d;
  if (lp < geo_.dram_pages()) {
    d.set = static_cast<u32>(lp % geo_.sets);
    d.page = static_cast<u32>(lp / geo_.sets);
  } else {
    const u64 q = lp - geo_.dram_pages();
    d.set = static_cast<u32>(q % geo_.sets);
    d.page = geo_.m + static_cast<u32>(q / geo_.sets);
  }
  d.offset = addr % geo_.page_bytes;
  d.block = static_cast<u32>(d.offset / geo_.block_bytes);
  return d;
}

Addr BumblebeeController::frame_addr(u32 set, u32 slot) const {
  if (slot < geo_.m) {
    const u64 frame = static_cast<u64>(slot) * geo_.sets + set;
    return frame * geo_.page_bytes;
  }
  const u64 frame = static_cast<u64>(slot - geo_.m) * geo_.sets + set;
  return frame * geo_.page_bytes;
}

bool BumblebeeController::frame_may_cache(u32 k) const {
  if (!cfg_.enable_caching) return false;
  if (!fixed_partition_) return true;
  return k < chbm_reserved_;
}

bool BumblebeeController::frame_may_mem(u32 k) const {
  if (!cfg_.enable_migration && cfg_.alloc == AllocPolicy::kDramFirst) {
    return false;  // C-Only: no mHBM frames at all
  }
  if (!fixed_partition_) return true;
  return k >= chbm_reserved_;
}

// -------------------------------------------------------------- metadata

Tick BumblebeeController::meta_lookup(u32 set, Tick now,
                                      hmm::HmmResult& res) {
  const Tick lat = meta_->lookup(set, now);
  res.metadata_latency += lat;
  return lat;
}

void BumblebeeController::meta_update(u32 set, Tick now) {
  meta_->update(set, now);
}

// ------------------------------------------------------------ allocation

void BumblebeeController::allocate(SetState& st, u32 set, u32 page,
                                   Tick now) {
  ++bstats_.prt_misses;

  auto alloc_hbm = [&]() -> bool {
    if (st.degraded) return false;  // degraded sets allocate off-chip only
    for (u32 k = 0; k < geo_.n; ++k) {
      if (st.ble[k].mode == Ble::Mode::kFree && !st.ble[k].retired &&
          frame_may_mem(k)) {
        const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};
        st.new_ple[page] = static_cast<std::int32_t>(geo_.m + k);
        st.occup[geo_.m + k] = true;
        Ble& b = st.ble[k];
        b.reset(geo_.blocks_per_page);
        b.mode = Ble::Mode::kMem;
        b.ple = page;
        st.hot.move_dram_to_hbm(page);
        emit_ratio_transition(st, set, now, "allocate_hbm", before);
        return true;
      }
    }
    return false;
  };
  auto alloc_dram = [&]() -> bool {
    const u32 fd = st.free_dram_frame(geo_.m, page < geo_.m ? page : kNoPage);
    if (fd == kNoPage) return false;
    st.new_ple[page] = static_cast<std::int32_t>(fd);
    st.occup[fd] = true;
    return true;
  };

  bool placed = false;
  switch (cfg_.alloc) {
    case AllocPolicy::kHotnessBased: {
      // Section III-D: adjacent allocations share access patterns — follow
      // the previous allocation into HBM if it still resides in the hot
      // table's HBM queue and has shown reuse there (counter >= 2: the
      // allocating access itself bumps the counter once, so a page that
      // was never touched again breaks the chain).
      const bool prev_hot_in_hbm =
          st.last_alloc_page >= 0 &&
          [&] {
            for (const auto& e : st.hot.hbm_entries()) {
              if (e.page == static_cast<u32>(st.last_alloc_page)) {
                return e.counter >= 2;
              }
            }
            return false;
          }();
      placed = prev_hot_in_hbm ? (alloc_hbm() || alloc_dram())
                               : (alloc_dram() || alloc_hbm());
      break;
    }
    case AllocPolicy::kDramFirst:
      placed = alloc_dram() || alloc_hbm();
      break;
    case AllocPolicy::kHbmFirst:
      placed = alloc_hbm() || alloc_dram();
      break;
  }

  if (!placed && cfg_.high_footprint_actions && !st.chbm_disabled) {
    // Trigger 5 (per-set): free HBM space by flushing the set's cHBM so the
    // allocation does not wait on an eviction.
    flush_set_chbm(st, set, now);
    placed = alloc_dram() || alloc_hbm();
  }
  if (!placed) {
    // Reclaim a frame through the normal eviction path.
    const u32 k = reclaim_hbm_frame(st, set, now);
    if (k != kNoPage && frame_may_mem(k)) {
      placed = alloc_hbm();
    }
    if (!placed) placed = alloc_dram();
  }
  if (!placed) {
    // OS out of memory in this set: swap out the coldest allocated page
    // (modelled, not timed — the paging model charges capacity faults).
    const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};
    u32 victim = kNoPage;
    u64 best_hot = ~u64{0};
    for (u32 p = 0; p < geo_.slots(); ++p) {
      if (p == page || st.new_ple[p] == kUnallocated) continue;
      const u64 h = st.hot.hotness(p);
      if (h < best_hot) {
        best_hot = h;
        victim = p;
      }
    }
    assert(victim != kNoPage);
    const u32 vf = static_cast<u32>(st.new_ple[victim]);
    if (vf >= geo_.m) {
      st.ble[vf - geo_.m].reset(geo_.blocks_per_page);
    }
    const u32 vc = st.cache_frame_of(victim);
    if (vc != kNoPage) {
      // Tear the cache copy down through the eviction path: its dirty
      // blocks must reach the off-chip home frame (and be charged as
      // writeback traffic) before the page leaves memory.
      evict_frame(st, set, vc, now);
    }
    st.hot.remove(victim);
    st.new_ple[victim] = kUnallocated;
    st.occup[vf] = false;
    ++bstats_.os_swap_outs;
    st.new_ple[page] = static_cast<std::int32_t>(vf);
    st.occup[vf] = true;
    if (vf >= geo_.m) {
      Ble& b = st.ble[vf - geo_.m];
      b.reset(geo_.blocks_per_page);
      b.mode = Ble::Mode::kMem;
      b.ple = page;
      st.hot.move_dram_to_hbm(page);
    }
    if (tracing()) {
      trace()->emit(TraceEvent(now, "os_page_swap_out", "bumblebee")
                        .arg("set", set)
                        .arg("victim_page", victim)
                        .arg("new_page", page));
      emit_ratio_transition(st, set, now, "os_swap_out", before);
    }
  }
  st.last_alloc_page = static_cast<std::int32_t>(page);
  verify_set(st, set, "allocate");
}

// -------------------------------------------------------- frame reclaim

bool BumblebeeController::evict_frame(SetState& st, u32 set, u32 k,
                                      Tick now) {
  Ble& b = st.ble[k];
  assert(b.mode != Ble::Mode::kFree);
  const u32 page = b.ple;
  const Addr hbm_page_addr = frame_addr(set, geo_.m + k);
  const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};

  if (b.mode == Ble::Mode::kCache) {
    // Write back dirty blocks to the page's off-chip frame.
    const u32 home = static_cast<u32>(st.new_ple[page]);
    assert(home < geo_.m);
    const Addr dram_page_addr = frame_addr(set, home);
    for (u32 blk = 0; blk < geo_.blocks_per_page; ++blk) {
      if (b.dirty.test(blk)) {
        move_data(hbm(), hbm_page_addr + blk * geo_.block_bytes, dram(),
                  dram_page_addr + blk * geo_.block_bytes, geo_.block_bytes,
                  now, mem::TrafficClass::kWriteback);
      }
    }
    b.reset(geo_.blocks_per_page);
    st.hot.move_hbm_to_dram(page);
    ++bstats_.chbm_evictions;
    ++mutable_stats().evictions;
    emit_ratio_transition(st, set, now, "evict_chbm_copy", before);
    verify_set(st, set, "evict_frame (cHBM copy)");
    return true;
  }

  // mHBM eviction: the authoritative copy moves to a free off-chip frame.
  const u32 fd = st.free_dram_frame(geo_.m, page < geo_.m ? page : kNoPage);
  if (fd == kNoPage) return false;
  move_data(hbm(), hbm_page_addr, dram(), frame_addr(set, fd),
            geo_.page_bytes, now, mem::TrafficClass::kWriteback);
  st.new_ple[page] = static_cast<std::int32_t>(fd);
  st.occup[fd] = true;
  st.occup[geo_.m + k] = false;
  b.reset(geo_.blocks_per_page);
  st.hot.move_hbm_to_dram(page);
  ++bstats_.mhbm_evictions;
  ++mutable_stats().evictions;
  emit_ratio_transition(st, set, now, "evict_mhbm_page", before);
  verify_set(st, set, "evict_frame (mHBM page)");
  return true;
}

u32 BumblebeeController::reclaim_hbm_frame(SetState& st, u32 set, Tick now,
                                           FrameRole role) {
  if (fixed_partition_ && role != FrameRole::kAny) {
    // Static partition: pick the least-hot page among frames of the role.
    u32 victim_k = kNoPage;
    u64 victim_hot = ~u64{0};
    for (u32 k = 0; k < geo_.n; ++k) {
      const bool role_ok = role == FrameRole::kCache ? frame_may_cache(k)
                                                     : frame_may_mem(k);
      if (!role_ok || st.ble[k].mode == Ble::Mode::kFree) continue;
      const u64 h = st.hot.hotness(st.ble[k].ple);
      if (h < victim_hot) {
        victim_hot = h;
        victim_k = k;
      }
    }
    if (victim_k == kNoPage) return kNoPage;
    return evict_frame(st, set, victim_k, now) ? victim_k : kNoPage;
  }

  bool buffered_once = false;
  u32 buffered_page = kNoPage;
  const u32 max_attempts = 2 * geo_.n + 2;
  for (u32 attempt = 0; attempt < max_attempts; ++attempt) {
    const auto victim = st.hot.coldest_hbm(buffered_page);
    if (!victim) return kNoPage;
    const u32 page = victim->page;

    // Locate the page's HBM frame (cache copy or mHBM home).
    u32 k = st.cache_frame_of(page);
    bool is_cache = (k != kNoPage);
    if (!is_cache) {
      const std::int32_t slot = st.new_ple[page];
      if (slot < static_cast<std::int32_t>(geo_.m)) {
        // Stale hot-table entry (defensive); drop it.
        st.hot.move_hbm_to_dram(page);
        continue;
      }
      k = static_cast<u32>(slot) - geo_.m;
    }

    if (is_cache) {
      evict_frame(st, set, k, now);
      return k;
    }

    // mHBM victim: buffering (trigger 2) — switch to cHBM for free, giving
    // the page one more chance, then continue looking for a real victim.
    const u32 fd = st.free_dram_frame(geo_.m, page < geo_.m ? page : kNoPage);
    const bool can_buffer = cfg_.high_footprint_actions &&
                            cfg_.multiplexed_space && !fixed_partition_ &&
                            cfg_.enable_caching && !st.chbm_disabled &&
                            !buffered_once && fd != kNoPage;
    if (can_buffer) {
      const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};
      Ble& b = st.ble[k];
      st.new_ple[page] = static_cast<std::int32_t>(fd);
      st.occup[fd] = true;
      st.occup[geo_.m + k] = false;
      b.mode = Ble::Mode::kCache;
      b.valid.set_all();
      b.dirty.set_all();  // off-chip frame holds no data yet
      st.hot.requeue_hbm_mru(page);
      ++bstats_.mem_to_cache_buffers;
      ++mutable_stats().mode_switches;
      buffered_once = true;
      buffered_page = page;
      emit_ratio_transition(st, set, now, "mhbm_to_chbm_buffering", before);
      verify_set(st, set, "reclaim_hbm_frame (mHBM->cHBM buffering)");
      continue;
    }

    if (evict_frame(st, set, k, now)) return k;
    return kNoPage;  // no off-chip frame available for the writeback
  }
  return kNoPage;
}

// ---------------------------------------------------------- data movement

void BumblebeeController::migrate_page(SetState& st, u32 set, u32 page,
                                       u32 target_ble, u32 block, Tick now) {
  const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};
  Ble& b = st.ble[target_ble];
  assert(b.mode == Ble::Mode::kFree);
  const u32 src = static_cast<u32>(st.new_ple[page]);
  assert(src < geo_.m);

  move_data(dram(), frame_addr(set, src), hbm(),
            frame_addr(set, geo_.m + target_ble), geo_.page_bytes, now,
            mem::TrafficClass::kMigration);

  st.new_ple[page] = static_cast<std::int32_t>(geo_.m + target_ble);
  st.occup[src] = false;
  st.occup[geo_.m + target_ble] = true;
  b.reset(geo_.blocks_per_page);
  b.mode = Ble::Mode::kMem;
  b.ple = page;
  b.valid.set(block);  // spatial tracking: the demanded block was accessed
  b.fetched.set_all();
  b.used.set(block);
  mutable_stats().blocks_fetched += geo_.blocks_per_page;
  ++mutable_stats().fetched_blocks_used;
  st.hot.move_dram_to_hbm(page);
  ++bstats_.page_migrations;
  ++mutable_stats().migrations;
  emit_ratio_transition(st, set, now, "migrate_page", before);
  verify_set(st, set, "migrate_page");
}

void BumblebeeController::cache_block(SetState& st, u32 set, u32 page,
                                      u32 block, Tick now, bool mark_dirty) {
  u32 k = st.cache_frame_of(page);
  if (k == kNoPage) {
    const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};
    for (u32 i = 0; i < geo_.n; ++i) {
      if (st.ble[i].mode == Ble::Mode::kFree && !st.ble[i].retired &&
          frame_may_cache(i)) {
        k = i;
        break;
      }
    }
    assert(k != kNoPage && "caller must guarantee a free cache frame");
    Ble& nb = st.ble[k];
    nb.reset(geo_.blocks_per_page);
    nb.mode = Ble::Mode::kCache;
    nb.ple = page;
    st.hot.move_dram_to_hbm(page);
    emit_ratio_transition(st, set, now, "cache_block_new_frame", before);
  }
  Ble& b = st.ble[k];
  const u32 home = static_cast<u32>(st.new_ple[page]);
  move_data(dram(), frame_addr(set, home) + block * geo_.block_bytes, hbm(),
            frame_addr(set, geo_.m + k) + block * geo_.block_bytes,
            geo_.block_bytes, now, mem::TrafficClass::kFill);
  b.valid.set(block);
  if (mark_dirty) b.dirty.set(block);
  b.fetched.set(block);
  b.used.set(block);  // the demanded block is used by definition
  ++mutable_stats().blocks_fetched;
  ++mutable_stats().fetched_blocks_used;
  ++bstats_.block_fetches;
  verify_set(st, set, "cache_block");
}

void BumblebeeController::maybe_promote_cached(SetState& st, u32 set, u32 ck,
                                               u64 hotness, Tick now) {
  if (!cfg_.enable_migration || fixed_partition_ || !frame_may_mem(ck)) {
    return;
  }
  const SpatialSummary ss = spatial_summary(st, geo_.blocks_per_page);
  if (ss.sl() <= 0) return;  // only sets with strong spatial evidence
  // Promotion is a migration decision: reuse evidence at low Rh, hotness
  // beyond T at high Rh (Section III-E rule 1).
  const bool hot_enough = st.rh_high()
                              ? hotness > st.hot.min_hbm_counter()
                              : hotness >= 2;
  if (!hot_enough) return;
  switch_cache_to_mem(st, set, ck, now);
}

void BumblebeeController::switch_cache_to_mem(SetState& st, u32 set, u32 k,
                                              Tick now) {
  Ble& b = st.ble[k];
  assert(b.mode == Ble::Mode::kCache);
  const u32 page = b.ple;
  const u32 home = static_cast<u32>(st.new_ple[page]);
  const Addr hbm_page_addr = frame_addr(set, geo_.m + k);
  const Addr dram_page_addr = frame_addr(set, home);

  if (cfg_.multiplexed_space) {
    // Multiplexed space: fetch only the blocks not already cached.
    for (u32 blk = 0; blk < geo_.blocks_per_page; ++blk) {
      if (!b.valid.test(blk)) {
        move_data(dram(), dram_page_addr + blk * geo_.block_bytes, hbm(),
                  hbm_page_addr + blk * geo_.block_bytes, geo_.block_bytes,
                  now, mem::TrafficClass::kMigration);
        b.fetched.set(blk);
        ++mutable_stats().blocks_fetched;
      }
    }
  } else {
    // No-Multi: separate cHBM/mHBM spaces. The switch must (a) write the
    // cached copy back, (b) swap out a victim mHBM page, and (c) move the
    // whole page into the mHBM region — the paper's motivating overhead.
    for (u32 blk = 0; blk < geo_.blocks_per_page; ++blk) {
      if (b.dirty.test(blk)) {
        move_data(hbm(), hbm_page_addr + blk * geo_.block_bytes, dram(),
                  dram_page_addr + blk * geo_.block_bytes, geo_.block_bytes,
                  now, mem::TrafficClass::kWriteback);
      }
    }
    // Victim mHBM page in this set (coldest), swapped out to off-chip.
    u32 victim_k = kNoPage;
    u64 victim_hot = ~u64{0};
    for (u32 i = 0; i < geo_.n; ++i) {
      if (st.ble[i].mode == Ble::Mode::kMem) {
        const u64 h = st.hot.hotness(st.ble[i].ple);
        if (h < victim_hot) {
          victim_hot = h;
          victim_k = i;
        }
      }
    }
    if (victim_k != kNoPage) {
      evict_frame(st, set, victim_k, now);
    }
    b.dirty.clear_all();
    move_data(dram(), dram_page_addr, hbm(), hbm_page_addr, geo_.page_bytes,
              now, mem::TrafficClass::kMigration);
    b.fetched.set_all();
    // The whole page crosses the bus, already-cached blocks included — the
    // re-fetch of valid blocks is exactly the No-Multi overhead the
    // ablation measures, so charge every block.
    mutable_stats().blocks_fetched += geo_.blocks_per_page;
  }

  const RatioSample before = tracing() ? set_ratio(st) : RatioSample{};
  st.new_ple[page] = static_cast<std::int32_t>(geo_.m + k);
  st.occup[home] = false;
  st.occup[geo_.m + k] = true;
  b.mode = Ble::Mode::kMem;
  // b.valid now tracks accessed blocks — the cached blocks were accessed.
  ++bstats_.cache_to_mem_switches;
  ++mutable_stats().mode_switches;
  emit_ratio_transition(st, set, now, "cache_to_mem_switch", before);
  verify_set(st, set, "switch_cache_to_mem");
}

void BumblebeeController::swap_with_coldest(SetState& st, u32 set, u32 page,
                                            Tick now) {
  // Coldest HBM-resident page (trigger 4: set fully OS-occupied).
  const auto& entries = st.hot.hbm_entries();
  if (entries.empty()) return;
  u32 cold_page = kNoPage;
  u64 cold_hot = ~u64{0};
  for (const auto& e : entries) {
    if (e.counter < cold_hot) {
      cold_hot = e.counter;
      cold_page = e.page;
    }
  }
  if (cold_page == kNoPage || cold_page == page) return;

  const u32 cache_k = st.cache_frame_of(cold_page);
  if (cache_k != kNoPage) {
    // The cold page only has a cache copy: drop it, then migrate in.
    evict_frame(st, set, cache_k, now);
    migrate_page(st, set, page, cache_k, 0, now);
    ++bstats_.set_swaps;
    ++mutable_stats().swaps;
    return;
  }

  const std::int32_t cold_slot = st.new_ple[cold_page];
  if (cold_slot < static_cast<std::int32_t>(geo_.m)) return;  // stale
  const u32 k = static_cast<u32>(cold_slot) - geo_.m;
  const u32 my_frame = static_cast<u32>(st.new_ple[page]);
  assert(my_frame < geo_.m);

  swap_data(hbm(), frame_addr(set, geo_.m + k), dram(),
            frame_addr(set, my_frame), geo_.page_bytes, now,
            mem::TrafficClass::kMigration);

  st.new_ple[cold_page] = static_cast<std::int32_t>(my_frame);
  st.new_ple[page] = cold_slot;
  Ble& b = st.ble[k];
  b.reset(geo_.blocks_per_page);
  b.mode = Ble::Mode::kMem;
  b.ple = page;
  b.fetched.set_all();
  mutable_stats().blocks_fetched += geo_.blocks_per_page;
  st.hot.move_hbm_to_dram(cold_page);
  st.hot.move_dram_to_hbm(page);
  ++bstats_.set_swaps;
  ++mutable_stats().swaps;
  if (tracing()) {
    trace()->emit(TraceEvent(now, "page_swap", "bumblebee")
                      .arg("set", set)
                      .arg("hot_page", page)
                      .arg("cold_page", cold_page)
                      .arg("bytes", geo_.page_bytes));
  }
  verify_set(st, set, "swap_with_coldest");
}

bool BumblebeeController::retire_hbm_frame(SetState& st, u32 set, u32 k,
                                           Tick now) {
  Ble& b = st.ble[k];
  if (b.retired) return false;
  if (b.mode != Ble::Mode::kFree && !evict_frame(st, set, k, now)) {
    // No free off-chip frame to vacate into right now; the frame stays in
    // service and the next UE retries the retirement.
    return false;
  }
  b.retired = true;
  ++st.retired_frames;
  ++bstats_.frame_retirements;
  if (tracing()) {
    trace()->emit(TraceEvent(now, "frame_retired", "fault")
                      .arg("set", set)
                      .arg("frame", k)
                      .arg("set_retired_frames", st.retired_frames));
  }
  if (!st.degraded && st.retired_frames >= cfg_.degrade_after_retired_frames) {
    // Too much of this set's HBM is gone: degrade it. Existing cache
    // copies are flushed and caching disabled (trigger 5's machinery, but
    // counted separately — this is damage control, not footprint control);
    // mHBM residents stay until their own frames fault. alloc/migrate/
    // cache paths all test `degraded`, so the set stops attracting data
    // and its remap ratio is frozen.
    st.degraded = true;
    ++bstats_.sets_degraded;
    for (u32 i = 0; i < geo_.n; ++i) {
      if (st.ble[i].mode == Ble::Mode::kCache) evict_frame(st, set, i, now);
    }
    st.chbm_disabled = true;
    if (tracing()) {
      trace()->emit(TraceEvent(now, "set_degraded", "fault")
                        .arg("set", set)
                        .arg("retired_frames", st.retired_frames));
    }
  }
  verify_set(st, set, "retire_hbm_frame");
  return true;
}

hmm::FaultPosture BumblebeeController::fault_posture() const {
  // Derived from the per-set remap state, not from bstats_: the posture is
  // structural (retired frames stay retired across a warmup stat reset),
  // while bstats_ counts events in the measured phase only.
  hmm::FaultPosture p;
  for (const SetState& st : sets_) {
    p.retired_frames += st.retired_frames;
    if (st.degraded) ++p.degraded_sets;
  }
  return p;
}

void BumblebeeController::reset_stats() {
  HybridMemoryController::reset_stats();
  bstats_ = BumblebeeStats{};
  meta_->reset_stats();
}

void BumblebeeController::flush_set_chbm(SetState& st, u32 set, Tick now) {
  for (u32 k = 0; k < geo_.n; ++k) {
    if (st.ble[k].mode == Ble::Mode::kCache) {
      evict_frame(st, set, k, now);
    }
  }
  st.chbm_disabled = true;
  ++bstats_.batch_flushes;
  if (tracing()) {
    trace()->emit(TraceEvent(now, "set_chbm_flush", "bumblebee")
                      .arg("set", set));
  }
  verify_set(st, set, "flush_set_chbm");
}

void BumblebeeController::maybe_batch_flush(Tick now) {
  if (!high_footprint_mode_ || !cfg_.high_footprint_actions) return;
  if (flush_cursor_ > 0) return;  // one proactive batch on mode entry
  const u32 batch =
      std::min(cfg_.flush_batch_sets, static_cast<u32>(sets_.size()));
  while (flush_cursor_ < batch) {
    flush_set_chbm(sets_[flush_cursor_], flush_cursor_, now);
    ++flush_cursor_;
  }
}

void BumblebeeController::run_zombie_check(SetState& st, u32 set, Tick now) {
  if (!cfg_.high_footprint_actions || !st.rh_high()) {
    st.zombie_page = kNoPage;
    st.zombie_age = 0;
    return;
  }
  const auto head = st.hot.lru_hbm();
  if (!head) return;
  if (head->page == st.zombie_page && head->counter == st.zombie_counter) {
    if (++st.zombie_age >= cfg_.zombie_window) {
      // Nothing can push this page out; evict it directly.
      u32 k = st.cache_frame_of(head->page);
      if (k == kNoPage) {
        const std::int32_t slot = st.new_ple[head->page];
        if (slot >= static_cast<std::int32_t>(geo_.m)) {
          k = static_cast<u32>(slot) - geo_.m;
        }
      }
      if (k != kNoPage && evict_frame(st, set, k, now)) {
        ++bstats_.zombie_evictions;
      }
      st.zombie_page = kNoPage;
      st.zombie_age = 0;
    }
  } else {
    st.zombie_page = head->page;
    st.zombie_counter = head->counter;
    st.zombie_age = 0;
  }
}

// -------------------------------------------------------------- main flow

hmm::HmmResult BumblebeeController::service(Addr addr, AccessType type,
                                            Tick now) {
  const Decoded d = decode(addr);
  SetState& st = sets_[d.set];
  ++st.accesses;

  hmm::HmmResult res;
  Tick t = now + meta_lookup(d.set, now, res);

  // High-footprint detection (trigger 5): the OS is handing out addresses
  // beyond the off-chip capacity.
  if (cfg_.high_footprint_actions && !high_footprint_mode_ &&
      (addr % geo_.visible_bytes()) >=
          geo_.dram_pages() * geo_.page_bytes) {
    high_footprint_mode_ = true;
  }
  maybe_batch_flush(t);

  // (1) PRT miss: first touch, allocate.
  if (st.new_ple[d.page] == kUnallocated) {
    allocate(st, d.set, d.page, t);
    meta_update(d.set, t);
  }

  const u32 loc = static_cast<u32>(st.new_ple[d.page]);

  if (slot_in_hbm(loc)) {
    // (3) The page lives in mHBM: serve from HBM; no data movement.
    Ble& b = st.ble[loc - geo_.m];
    assert(b.mode == Ble::Mode::kMem && b.ple == d.page);
    const auto rr =
        ecc_demand(hbm(), frame_addr(d.set, loc) + d.offset, 64, type, t);
    res.complete = rr.access.complete;
    res.served_by_hbm = true;
    res.phys_addr = frame_addr(d.set, loc) + d.offset;
    b.valid.set(d.block);
    if (type == AccessType::kWrite) b.dirty.set(d.block);
    if (b.fetched.test(d.block) && !b.used.test(d.block)) {
      b.used.set(d.block);
      ++mutable_stats().fetched_blocks_used;
    }
    st.hot.touch_hbm(d.page);
    if (rr.unrecovered) {
      // The mHBM home itself is faulty: the authoritative copy of a read
      // is lost (a write overwrites the bad word, so nothing is lost).
      // Either way, retire the frame — the eviction inside moves the page
      // to a clean off-chip frame so the set keeps running degraded.
      if (type == AccessType::kRead) ++mutable_stats().due_data_loss;
      retire_hbm_frame(st, d.set, loc - geo_.m, res.complete);
    }
    run_zombie_check(st, d.set, t);
    // Counter/LRU updates are write-combined in the controller's buffers;
    // no metadata writeback is charged for pure serves (matters for the
    // Meta-H ablation only — SRAM updates are free anyway).
    return res;
  }

  // The page lives off-chip; consult the BLE array for a cache copy (the
  // BLE slice rides in the same packed per-set record as the PRT, so no
  // second lookup is charged even for HBM-resident metadata).
  const u32 ck = st.cache_frame_of(d.page);

  if (ck != kNoPage && st.ble[ck].valid.test(d.block)) {
    // (7) Block cached: serve from cHBM.
    Ble& b = st.ble[ck];
    const Addr pa = frame_addr(d.set, geo_.m + ck) + d.offset;
    const bool was_dirty = b.dirty.test(d.block);
    const auto rr = ecc_demand(hbm(), pa, 64, type, t);
    res.complete = rr.access.complete;
    res.served_by_hbm = true;
    res.phys_addr = pa;
    if (type == AccessType::kWrite) b.dirty.set(d.block);
    if (b.fetched.test(d.block) && !b.used.test(d.block)) {
      b.used.set(d.block);
      ++mutable_stats().fetched_blocks_used;
    }
    const u64 h = st.hot.touch_hbm(d.page);
    if (rr.unrecovered) {
      // The cache copy is unreadable. A clean block still has its
      // authoritative copy in the off-chip home frame — re-fetch the
      // demand from there; a dirty block's only copy was in the faulty
      // frame (data loss). Then retire the frame (flush-if-dirty of the
      // remaining blocks through the normal evict path).
      if (type == AccessType::kRead) {
        if (was_dirty) {
          ++mutable_stats().due_data_loss;
        } else {
          const Addr home =
              frame_addr(d.set, static_cast<u32>(st.new_ple[d.page])) +
              d.offset;
          const auto rf = dram().access(home, 64, type, res.complete,
                                        mem::TrafficClass::kDemand);
          res.complete = rf.complete;
          res.served_by_hbm = false;
          res.phys_addr = home;
          ++bstats_.due_refetches;
        }
      }
      retire_hbm_frame(st, d.set, ck, res.complete);
    } else {
      maybe_promote_cached(st, d.set, ck, h, rr.access.complete);
    }
    run_zombie_check(st, d.set, t);
    return res;
  }

  // Serve from off-chip DRAM ((5) page not cached or (8) block not cached).
  const Addr pa = frame_addr(d.set, loc) + d.offset;
  const auto rr = ecc_demand(dram(), pa, 64, type, t);
  const auto r = rr.access;
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = pa;
  if (rr.unrecovered && type == AccessType::kRead) {
    // Off-chip frames hold the only copy of an uncached page.
    ++mutable_stats().due_data_loss;
  }

  if (ck != kNoPage) {
    // (2) Page cached, block missing: fetch the block asynchronously. Under
    // high Rh only blocks of pages hotter than T are brought in (Section
    // III-E's temporal gate applies to block caching as well).
    const u64 h = st.hot.touch_hbm(d.page);
    const bool fetch_ok =
        !st.rh_high() || h > st.hot.min_hbm_counter();
    if (fetch_ok) {
      cache_block(st, d.set, d.page, d.block, r.complete,
                  /*mark_dirty=*/false);
      Ble& b = st.ble[ck];
      const double frac = static_cast<double>(b.valid.popcount()) /
                          static_cast<double>(geo_.blocks_per_page);
      const bool may_switch = cfg_.enable_migration && !fixed_partition_ &&
                              frame_may_mem(ck);
      if (may_switch && frac > cfg_.switch_fraction) {
        switch_cache_to_mem(st, d.set, ck, r.complete);
      }
    }
  } else {
    // Movement decision for an uncached off-chip page (Section III-E).
    const u64 h = st.hot.touch_dram(d.page);
    const u64 threshold = st.hot.min_hbm_counter();

    const bool all_occupied = [&] {
      for (u32 j = 0; j < geo_.slots(); ++j) {
        if (!st.occup[j]) return false;
      }
      return true;
    }();

    if (all_occupied && cfg_.high_footprint_actions &&
        cfg_.enable_migration && h > threshold && !st.degraded) {
      // (4) Set fully OS-occupied: swap with the coldest HBM page.
      swap_with_coldest(st, d.set, d.page, r.complete);
    } else {
      const SpatialSummary ss = spatial_summary(st, geo_.blocks_per_page);
      const int sl = ss.sl();
      // With no HBM-resident evidence yet (empty set), start with the
      // migration prior: mHBM exploits spatial locality and full bandwidth,
      // and the BLE access ratios it produces are exactly the evidence SL
      // needs — weak-spatial pages surface as Nn and flip the set to
      // caching; strong-spatial pages keep it migrating.
      const bool no_evidence = (ss.na + ss.nn + ss.nc) == 0;

      // Which action class applies: migration (mHBM) or caching (cHBM)?
      bool do_migrate;
      if (!cfg_.enable_caching) {
        do_migrate = true;  // M-Only
      } else if (!cfg_.enable_migration) {
        do_migrate = false;  // C-Only
      } else {
        do_migrate = sl > 0 || no_evidence;
      }

      if (do_migrate && cfg_.enable_migration && h >= 2 && !st.degraded) {
        // Migration needs evidence of reuse (a re-access) even when HBM
        // frames are free: only data with potential for future reuse is
        // worth a page-granularity move (Section I's POM rationale).
        u32 f = kNoPage;
        for (u32 i = 0; i < geo_.n; ++i) {
          if (st.ble[i].mode == Ble::Mode::kFree && !st.ble[i].retired &&
              frame_may_mem(i)) {
            f = i;
            break;
          }
        }
        if (f != kNoPage) {
          migrate_page(st, d.set, d.page, f, d.block, r.complete);
        } else if (h > threshold) {
          const u32 freed =
              reclaim_hbm_frame(st, d.set, r.complete, FrameRole::kMem);
          if (freed != kNoPage && frame_may_mem(freed) &&
              st.ble[freed].mode == Ble::Mode::kFree) {
            migrate_page(st, d.set, d.page, freed, d.block, r.complete);
          }
        }
      } else if (cfg_.enable_caching && !st.chbm_disabled) {
        u32 f = kNoPage;
        for (u32 i = 0; i < geo_.n; ++i) {
          if (st.ble[i].mode == Ble::Mode::kFree && !st.ble[i].retired &&
              frame_may_cache(i)) {
            f = i;
            break;
          }
        }
        if (f != kNoPage) {
          cache_block(st, d.set, d.page, d.block, r.complete,
                      /*mark_dirty=*/false);
        } else if (h > threshold) {
          const u32 freed =
              reclaim_hbm_frame(st, d.set, r.complete, FrameRole::kCache);
          if (freed != kNoPage && frame_may_cache(freed) &&
              st.ble[freed].mode == Ble::Mode::kFree) {
            cache_block(st, d.set, d.page, d.block, r.complete,
                        /*mark_dirty=*/false);
          }
        }
      }
    }
  }

  run_zombie_check(st, d.set, t);
  meta_update(d.set, t);
  return res;
}

// ----------------------------------------------------------- inspection

BumblebeeController::Location BumblebeeController::locate(Addr addr) const {
  const Decoded d = decode(addr);
  const SetState& st = sets_[d.set];
  Location out;
  if (st.new_ple[d.page] == kUnallocated) return out;
  out.allocated = true;
  const u32 loc = static_cast<u32>(st.new_ple[d.page]);
  if (slot_in_hbm(loc)) {
    out.in_hbm = true;
    out.phys = frame_addr(d.set, loc) + d.offset;
    return out;
  }
  const u32 ck = st.cache_frame_of(d.page);
  if (ck != kNoPage && st.ble[ck].valid.test(d.block)) {
    out.in_hbm = true;
    out.phys = frame_addr(d.set, geo_.m + ck) + d.offset;
    return out;
  }
  out.in_hbm = false;
  out.phys = frame_addr(d.set, loc) + d.offset;
  return out;
}

bool BumblebeeController::check_set_invariants(const SetState& st,
                                               u32 set) const {
  (void)set;
  // PRT: remapped pages form a bijection onto occupied frames.
  std::vector<int> frame_owner(geo_.slots(), -1);
  for (u32 p = 0; p < geo_.slots(); ++p) {
    const std::int32_t f = st.new_ple[p];
    if (f == kUnallocated) continue;
    if (f < 0 || f >= static_cast<std::int32_t>(geo_.slots())) return false;
    if (frame_owner[static_cast<u32>(f)] != -1) return false;  // collision
    frame_owner[static_cast<u32>(f)] = static_cast<int>(p);
  }
  for (u32 f = 0; f < geo_.slots(); ++f) {
    if (st.occup[f] != (frame_owner[f] != -1)) return false;
  }
  // BLE: every HBM frame's entry agrees with the PRT slot it mirrors.
  std::vector<bool> cached(geo_.slots(), false);
  std::vector<bool> hbm_resident(geo_.slots(), false);
  u32 chbm = 0;
  u32 mhbm = 0;
  u32 free_frames = 0;
  u32 retired = 0;
  for (u32 k = 0; k < geo_.n; ++k) {
    const Ble& b = st.ble[k];
    if (b.retired) {
      // A retired frame must be fully out of service: kFree forever.
      if (b.mode != Ble::Mode::kFree) return false;
      ++retired;
    }
    switch (b.mode) {
      case Ble::Mode::kFree:
        if (st.occup[geo_.m + k]) return false;
        ++free_frames;
        break;
      case Ble::Mode::kMem:
        if (b.ple >= geo_.slots()) return false;
        if (frame_owner[geo_.m + k] != static_cast<int>(b.ple)) return false;
        hbm_resident[b.ple] = true;
        ++mhbm;
        break;
      case Ble::Mode::kCache: {
        if (b.ple >= geo_.slots()) return false;
        if (cached[b.ple]) return false;  // duplicate cache copy
        cached[b.ple] = true;
        const std::int32_t home = st.new_ple[b.ple];
        if (home == kUnallocated ||
            home >= static_cast<std::int32_t>(geo_.m)) {
          return false;  // cached page must live off-chip
        }
        if (st.occup[geo_.m + k]) return false;  // cache frame not occup
        hbm_resident[b.ple] = true;
        ++chbm;
        break;
      }
    }
  }
  // Ratio bookkeeping: cHBM + mHBM + free frames sum to the set's HBM
  // frame count (nothing double-counted or lost across a ratio change).
  if (chbm + mhbm + free_frames != geo_.n) return false;
  // Fault retirement bookkeeping: the sticky BLE flags agree with the
  // set's counter, and a degraded set has stopped caching.
  if (retired != st.retired_frames) return false;
  if (st.degraded &&
      (!st.chbm_disabled ||
       st.retired_frames < cfg_.degrade_after_retired_frames)) {
    return false;
  }
  // Hot table: the HBM queue holds exactly the HBM-resident pages (each
  // non-free BLE holds a distinct page, so sizes must match too).
  if (st.hot.hbm_size() != chbm + mhbm) return false;
  for (const auto& e : st.hot.hbm_entries()) {
    if (e.page >= geo_.slots() || !hbm_resident[e.page]) return false;
  }
  return true;
}

void BumblebeeController::verify_set(const SetState& st, u32 set,
                                     const char* where) const {
#if BB_CHECKS_ENABLED
  if (!check_set_invariants(st, set)) {
    std::fprintf(stderr,
                 "bumblebee metadata invariant violation in set %u after "
                 "%s\n",
                 set, where);
    BB_CHECK(false, "PRT/BLE/hot-table consistency (see message above)");
  }
#else
  (void)st;
  (void)set;
  (void)where;
#endif
}

bool BumblebeeController::check_invariants() const {
  for (u32 s = 0; s < geo_.sets; ++s) {
    if (!check_set_invariants(sets_[s], s)) return false;
  }
  return true;
}

void BumblebeeController::save_state(snap::Writer& w) const {
  save_base_state(w);
  w.put_u64(sets_.size());
  for (const SetState& st : sets_) {
    w.put_u64(st.new_ple.size());
    for (std::int32_t v : st.new_ple) w.put_i64(v);
    for (bool o : st.occup) w.put_u8(o ? 1 : 0);
    w.put_u64(st.ble.size());
    for (const Ble& b : st.ble) {
      w.put_u8(static_cast<u8>(b.mode));
      w.put_u32(b.ple);
      w.put_u8(b.retired ? 1 : 0);
      b.valid.save(w);
      b.dirty.save(w);
      b.fetched.save(w);
      b.used.save(w);
    }
    st.hot.save(w);
    w.put_u32(st.zombie_page);
    w.put_u64(st.zombie_counter);
    w.put_u32(st.zombie_age);
    w.put_u64(st.accesses);
    w.put_u8(st.chbm_disabled ? 1 : 0);
    w.put_i64(st.last_alloc_page);
    w.put_u32(st.retired_frames);
    w.put_u8(st.degraded ? 1 : 0);
  }
  w.put_u64(bstats_.prt_misses);
  w.put_u64(bstats_.block_fetches);
  w.put_u64(bstats_.page_migrations);
  w.put_u64(bstats_.cache_to_mem_switches);
  w.put_u64(bstats_.mem_to_cache_buffers);
  w.put_u64(bstats_.zombie_evictions);
  w.put_u64(bstats_.set_swaps);
  w.put_u64(bstats_.batch_flushes);
  w.put_u64(bstats_.os_swap_outs);
  w.put_u64(bstats_.chbm_evictions);
  w.put_u64(bstats_.mhbm_evictions);
  w.put_u64(bstats_.frame_retirements);
  w.put_u64(bstats_.due_refetches);
  w.put_u64(bstats_.sets_degraded);
  w.put_u8(high_footprint_mode_ ? 1 : 0);
  w.put_u32(flush_cursor_);
  meta_->save(w);
}

void BumblebeeController::load_state(snap::Reader& r) {
  load_base_state(r);
  if (r.get_u64() != sets_.size()) {
    throw snap::SnapshotError("remapping set count mismatch");
  }
  for (u32 set = 0; set < sets_.size(); ++set) {
    SetState& st = sets_[set];
    if (r.get_u64() != st.new_ple.size()) {
      throw snap::SnapshotError("set slot count mismatch");
    }
    for (std::int32_t& v : st.new_ple) {
      v = static_cast<std::int32_t>(r.get_i64());
    }
    for (std::size_t j = 0; j < st.occup.size(); ++j) {
      st.occup[j] = r.get_u8() != 0;
    }
    if (r.get_u64() != st.ble.size()) {
      throw snap::SnapshotError("set frame count mismatch");
    }
    for (Ble& b : st.ble) {
      b.mode = static_cast<Ble::Mode>(r.get_u8());
      b.ple = r.get_u32();
      b.retired = r.get_u8() != 0;
      b.valid.load(r);
      b.dirty.load(r);
      b.fetched.load(r);
      b.used.load(r);
    }
    st.hot.load(r);
    st.zombie_page = r.get_u32();
    st.zombie_counter = r.get_u64();
    st.zombie_age = r.get_u32();
    st.accesses = r.get_u64();
    st.chbm_disabled = r.get_u8() != 0;
    st.last_alloc_page = static_cast<std::int32_t>(r.get_i64());
    st.retired_frames = r.get_u32();
    st.degraded = r.get_u8() != 0;
    verify_set(st, set, "load_state");
  }
  bstats_.prt_misses = r.get_u64();
  bstats_.block_fetches = r.get_u64();
  bstats_.page_migrations = r.get_u64();
  bstats_.cache_to_mem_switches = r.get_u64();
  bstats_.mem_to_cache_buffers = r.get_u64();
  bstats_.zombie_evictions = r.get_u64();
  bstats_.set_swaps = r.get_u64();
  bstats_.batch_flushes = r.get_u64();
  bstats_.os_swap_outs = r.get_u64();
  bstats_.chbm_evictions = r.get_u64();
  bstats_.mhbm_evictions = r.get_u64();
  bstats_.frame_retirements = r.get_u64();
  bstats_.due_refetches = r.get_u64();
  bstats_.sets_degraded = r.get_u64();
  high_footprint_mode_ = r.get_u8() != 0;
  flush_cursor_ = r.get_u32();
  meta_->load(r);
}

}  // namespace bb::bumblebee
