// The Bumblebee hybrid memory controller (Sections III-A .. III-E).
//
// Implements the full memory access flow of Figure 5, the hotness-based
// page allocation of Section III-D, and both classes of data movement of
// Section III-E:
//
//   Triggered by memory access:
//     (1) off-chip page access: migrate to mHBM (SL > 0) or cache the block
//         in cHBM (SL <= 0), gated by the hotness threshold T when Rh is
//         high;
//     (2) cHBM page access: fetch missing blocks; when most blocks are
//         cached, switch the frame to mHBM, fetching only the blocks not
//         already cached (the multiplexed-space benefit);
//     (3) mHBM accesses move nothing.
//
//   Triggered by high memory footprint:
//     (1) pages popped from the hot-table HBM queue are evicted;
//     (2) mHBM pages selected for eviction are first switched to cHBM with
//         all blocks dirty — a free "one more chance" buffer;
//     (3) zombie pages (stuck hot-queue head) are evicted;
//     (4) when a set's memory is fully OS-occupied, hot off-chip pages swap
//         with the set's coldest HBM page;
//     (5) when the OS footprint exceeds the off-chip capacity, cHBM pages
//         are flushed in batches of sets and those sets stop caching.
//
// Every Figure 7 ablation is a BumblebeeConfig preset over this one class.
#pragma once

#include <memory>
#include <vector>

#include "bumblebee/config.h"
#include "bumblebee/set_state.h"
#include "hmm/controller.h"
#include "hmm/metadata.h"

namespace bb::bumblebee {

/// Bumblebee-specific statistics beyond the shared HmmStats.
struct BumblebeeStats {
  u64 prt_misses = 0;          ///< first-touch allocations
  u64 block_fetches = 0;       ///< single-block cHBM fills
  u64 page_migrations = 0;     ///< DRAM -> mHBM
  u64 cache_to_mem_switches = 0;
  u64 mem_to_cache_buffers = 0;  ///< eviction buffering (trigger 2)
  u64 zombie_evictions = 0;
  u64 set_swaps = 0;             ///< full-page swaps (trigger 4)
  u64 batch_flushes = 0;         ///< sets flushed by trigger 5
  u64 os_swap_outs = 0;          ///< allocation fallback: page pushed out
  u64 chbm_evictions = 0;
  u64 mhbm_evictions = 0;

  // Fault handling (zero in fault-free runs).
  u64 frame_retirements = 0;  ///< HBM frames mapped out after UEs
  u64 due_refetches = 0;      ///< clean cHBM DUEs re-served from off-chip
  u64 sets_degraded = 0;      ///< sets past the retirement threshold
};

class BumblebeeController final : public hmm::HybridMemoryController {
 public:
  BumblebeeController(const BumblebeeConfig& cfg, mem::DramDevice& hbm,
                      mem::DramDevice& dram, hmm::PagingConfig paging = {});

  u64 metadata_sram_bytes() const override;

  const BumblebeeConfig& config() const { return cfg_; }
  const Geometry& geometry() const { return geo_; }
  const BumblebeeStats& bb_stats() const { return bstats_; }
  const hmm::MetadataModel& metadata() const { return *meta_; }

  /// Current global cHBM / mHBM frame counts — the adjustable ratio the
  /// paper's title refers to; harnesses sample this over time.
  struct RatioSample {
    u64 chbm_frames = 0;
    u64 mhbm_frames = 0;
    u64 free_frames = 0;
  };
  RatioSample ratio() const;

  /// Validates every structural invariant of every set; returns false on
  /// violation. Used by property tests. The same per-set sweep also runs
  /// automatically (via BB_CHECK) after every remap-ratio transition in
  /// debug / BB_CHECKS builds — see check_set_invariants.
  bool check_invariants() const;

  /// Where a demand access to `addr` would be served *right now* (no state
  /// change); exposed for functional shadow tests.
  struct Location {
    bool in_hbm = false;
    Addr phys = kAddrInvalid;
    bool allocated = false;
  };
  Location locate(Addr addr) const;

  /// Base metrics plus the remap-ratio / hot-table time series (global
  /// cHBM/mHBM/free frame counts, per-set cHBM share mean/min/max, movement
  /// counters, sets with caching disabled).
  void register_metrics(MetricRegistry& reg) const override;

  /// Frames retired / sets degraded by fault handling (see FaultPosture).
  hmm::FaultPosture fault_posture() const override;

  /// Base reset plus the Bumblebee movement counters and the metadata
  /// model's stats. The remap state itself (PRT/BLE/hot tables, retired
  /// frames) survives: it is state, not statistics.
  void reset_stats() override;

  /// Full-state snapshot: framework base state, every set's PRT/BLE/hot
  /// table, the Bumblebee counters, footprint posture, and the metadata
  /// model. Geometry is construction-time shape; load fails closed on a
  /// set- or frame-count mismatch.
  bool snapshot_supported() const override { return true; }
  void save_state(snap::Writer& w) const override;
  void load_state(snap::Reader& r) override;

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  // ---- address helpers -------------------------------------------------
  struct Decoded {
    u32 set;
    u32 page;      ///< in-set logical page index (original PLE)
    u32 block;     ///< block index within the page
    u64 offset;    ///< byte offset within the page
  };
  Decoded decode(Addr addr) const;

  /// Device-local byte address of frame `slot` in `set`.
  Addr frame_addr(u32 set, u32 slot) const;
  bool slot_in_hbm(u32 slot) const { return slot >= geo_.m; }

  // ---- policy steps ----------------------------------------------------
  void allocate(SetState& st, u32 set, u32 page, Tick now);

  /// Frees one HBM frame via the hot-table eviction path (with mHBM->cHBM
  /// buffering when enabled). Under a fixed partition, `want_cache_role`
  /// selects a victim among frames of the needed role. Returns the freed
  /// BLE index or kNoPage.
  enum class FrameRole : u8 { kAny, kCache, kMem };
  u32 reclaim_hbm_frame(SetState& st, u32 set, Tick now,
                        FrameRole role = FrameRole::kAny);

  /// Evicts the page in BLE `k` (cache copy: write back dirty blocks;
  /// mHBM page: full writeback + PRT remap to a DRAM frame). Returns true
  /// on success (mHBM eviction needs a free DRAM frame).
  bool evict_frame(SetState& st, u32 set, u32 k, Tick now);

  void migrate_page(SetState& st, u32 set, u32 page, u32 target_ble, u32 block,
                    Tick now);

  /// Rule (1) applied to a page that already has a cHBM copy: a cached
  /// page is still an off-chip page, so under strong spatial locality and
  /// sufficient hotness it is promoted to mHBM (the switch fetches only
  /// the blocks not already cached).
  void maybe_promote_cached(SetState& st, u32 set, u32 ck, u64 hotness,
                            Tick now);
  void cache_block(SetState& st, u32 set, u32 page, u32 block, Tick now,
                   bool mark_dirty);
  /// Retires HBM frame `k` after an uncorrectable error: evicts its page
  /// through the normal path first (flush-if-dirty), marks the BLE sticky
  /// retired, and degrades the whole set once
  /// cfg_.degrade_after_retired_frames frames are gone. Returns false if
  /// the frame could not be vacated yet (no free DRAM frame) — the next UE
  /// retries. Re-verifies the set invariants on every retirement.
  bool retire_hbm_frame(SetState& st, u32 set, u32 k, Tick now);

  void switch_cache_to_mem(SetState& st, u32 set, u32 k, Tick now);
  void swap_with_coldest(SetState& st, u32 set, u32 page, Tick now);
  void flush_set_chbm(SetState& st, u32 set, Tick now);
  void run_zombie_check(SetState& st, u32 set, Tick now);
  void maybe_batch_flush(Tick now);

  /// cHBM frame roles under a fixed partition; kNoPage = unrestricted.
  bool frame_may_cache(u32 k) const;
  bool frame_may_mem(u32 k) const;

  Tick meta_lookup(u32 set, Tick now, hmm::HmmResult& res);
  void meta_update(u32 set, Tick now);

  /// One set's PRT <-> BLE <-> hot-table consistency sweep: PRT remaps are
  /// a bijection onto occupied frames, every BLE agrees with the PRT slot
  /// it mirrors, cached pages live off-chip, and the hot table's HBM queue
  /// holds exactly the HBM-resident pages (so the cHBM:mHBM ratio
  /// bookkeeping sums to the set's HBM frame count).
  bool check_set_invariants(const SetState& st, u32 set) const;

  /// BB_CHECK hook: asserts check_set_invariants after a remap-ratio
  /// transition (`where` names the transition in the failure message).
  /// Compiles to nothing when checking is disabled.
  void verify_set(const SetState& st, u32 set, const char* where) const;

  /// One set's cHBM/mHBM/free frame counts (same fields as the global
  /// RatioSample).
  RatioSample set_ratio(const SetState& st) const;

  /// Emits a remap_ratio_transition trace event for `set` if its frame-mode
  /// counts changed relative to `before` (no-op when tracing is off —
  /// callers snapshot `before` only under tracing()).
  void emit_ratio_transition(const SetState& st, u32 set, Tick now,
                             const char* trigger, const RatioSample& before);

  BumblebeeConfig cfg_;
  Geometry geo_;
  std::unique_ptr<hmm::MetadataModel> meta_;
  std::vector<SetState> sets_;
  BumblebeeStats bstats_;
  u64 counter_max_;
  u32 chbm_reserved_ = 0;  ///< fixed partition: BLEs [0, chbm_reserved_) cache
  bool fixed_partition_ = false;
  bool high_footprint_mode_ = false;
  u32 flush_cursor_ = 0;
};

}  // namespace bb::bumblebee
