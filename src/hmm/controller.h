// Hybrid Memory Management Controller (HMMC) framework.
//
// Every reproduced design — Bumblebee, the ablations, and the five
// state-of-the-art baselines — implements this interface. The framework
// owns the shared concerns so per-design code is pure policy:
//   * the two DRAM devices (die-stacked HBM + off-chip DRAM),
//   * OS paging pressure (visible-capacity model),
//   * the asynchronous data-movement engine (real traffic, no demand stall),
//   * request/latency/over-fetch accounting.
//
// Address convention: requests carry OS-visible flat addresses. The range
// [0, dram_capacity) maps 1:1 onto off-chip DRAM frames by default and
// [dram_capacity, dram_capacity + hbm_capacity) onto HBM frames; designs
// that remap (Bumblebee's PRT, Chameleon's remap table) translate on top of
// this. Designs whose HBM is invisible to the OS wrap excess addresses
// into the off-chip range (their paging model then charges faults).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "hmm/metadata.h"
#include "hmm/paging.h"
#include "mem/dram_device.h"

namespace bb {
class EpochSampler;
class MetricRegistry;
class TraceSink;
}  // namespace bb

namespace bb::hmm {

/// Outcome of one LLC-miss request through a controller.
struct HmmResult {
  Tick complete = 0;        ///< when the demand data is available
  bool served_by_hbm = false;
  Addr phys_addr = kAddrInvalid;  ///< device-local address that served it
  Tick metadata_latency = 0;
  Tick fault_penalty = 0;
};

/// A physical data copy performed by the data-movement engine. Observed by
/// the functional-correctness shadow in tests.
struct MoveEvent {
  bool src_hbm = false;
  Addr src_addr = 0;
  bool dst_hbm = false;
  Addr dst_addr = 0;
  u64 bytes = 0;
  bool is_swap = false;  ///< contents of src and dst exchange atomically
};

struct HmmStats {
  u64 requests = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 hbm_served = 0;   ///< demand requests whose data came from HBM
  Tick total_latency = 0;
  Tick total_metadata_latency = 0;

  /// Bucket upper bounds (ns) for the per-request latency histogram below.
  static std::vector<double> latency_bounds_ns();
  /// Per-request end-to-end latency distribution (ns), including fault
  /// penalties — the source of the reported p50/p90/p99/p99.9.
  Histogram latency_ns{latency_bounds_ns()};

  // Over-fetch accounting: blocks brought into HBM speculatively (fills,
  // page migrations) vs how many of them were touched before leaving HBM.
  u64 blocks_fetched = 0;
  u64 fetched_blocks_used = 0;

  // Structural events (designs increment the ones that apply).
  u64 migrations = 0;       ///< DRAM->HBM page migrations
  u64 evictions = 0;        ///< HBM->DRAM page/block evictions
  u64 mode_switches = 0;    ///< cHBM<->mHBM conversions
  u64 swaps = 0;            ///< full page swaps

  // DUE recovery accounting (all zero in fault-free runs).
  u64 due_retries = 0;      ///< re-read attempts issued after a DUE
  u64 due_recovered = 0;    ///< DUEs cleared by a retry (transients)
  u64 due_unrecovered = 0;  ///< DUEs that survived every retry
  u64 due_data_loss = 0;    ///< unrecovered reads with no clean copy left

  double hbm_serve_rate() const {
    return requests ? static_cast<double>(hbm_served) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  double mean_latency_ns() const {
    return requests ? ticks_to_ns(total_latency) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  /// Fraction of fetched blocks never used before eviction (Section IV-B).
  double overfetch_fraction() const {
    return blocks_fetched
               ? 1.0 - static_cast<double>(fetched_blocks_used) /
                           static_cast<double>(blocks_fetched)
               : 0.0;
  }
  /// Metadata share of total request latency (Section II-B's MAL).
  double mal_fraction() const {
    return total_latency ? static_cast<double>(total_metadata_latency) /
                               static_cast<double>(total_latency)
                         : 0.0;
  }
};

/// Per-core attribution slice of the controller statistics, maintained when
/// set_core_count() has sized the table and requests arrive with a core id
/// (multi-programmed co-run evaluation). Device bytes are attributed by
/// causation: everything both DRAM devices move while serving one request —
/// the demand access plus any fills/migrations the design triggered
/// synchronously from it — is charged to that request's core. Asynchronous
/// end-of-run drain() traffic has no causing core, so per-core byte sums are
/// <= the device totals; request/latency/serve counters sum exactly.
struct CoreStats {
  u64 requests = 0;
  u64 hbm_served = 0;
  Tick total_latency = 0;
  /// Per-request latency distribution (same buckets as the aggregate).
  Histogram latency_ns{HmmStats::latency_bounds_ns()};
  std::array<u64, mem::kTrafficClassCount> hbm_class_bytes{};
  std::array<u64, mem::kTrafficClassCount> dram_class_bytes{};

  u64 hbm_bytes() const {
    u64 s = 0;
    for (u64 b : hbm_class_bytes) s += b;
    return s;
  }
  u64 dram_bytes() const {
    u64 s = 0;
    for (u64 b : dram_class_bytes) s += b;
    return s;
  }
  double hbm_serve_rate() const {
    return requests ? static_cast<double>(hbm_served) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  double mean_latency_ns() const {
    return requests ? ticks_to_ns(total_latency) /
                          static_cast<double>(requests)
                    : 0.0;
  }
};

/// Controller-level degradation posture under fault injection: how much
/// HBM the design has taken out of service. Zero for designs without a
/// retirement path.
struct FaultPosture {
  u64 retired_frames = 0;  ///< HBM frames retired after uncorrectable errors
  u64 degraded_sets = 0;   ///< sets that stopped using their cHBM/mHBM
};

class HybridMemoryController {
 public:
  HybridMemoryController(std::string name, mem::DramDevice& hbm,
                         mem::DramDevice& dram, const PagingConfig& paging);
  virtual ~HybridMemoryController() = default;

  HybridMemoryController(const HybridMemoryController&) = delete;
  HybridMemoryController& operator=(const HybridMemoryController&) = delete;

  /// Handles one LLC-miss request. Applies the paging model, dispatches to
  /// the design's service() and accounts the result. `core_id` attributes
  /// the request (and all device traffic it causes) to one core's
  /// CoreStats slice when per-core tracking is enabled via
  /// set_core_count(); ids at or past the configured count fold into the
  /// last slice so a mis-sized caller cannot write out of bounds.
  HmmResult access(Addr addr, AccessType type, Tick now, u32 core_id = 0);

  /// Sizes the per-core attribution table (0 disables per-core tracking —
  /// the default, so direct controller users pay nothing). Call before
  /// register_metrics so per-core probes are registered.
  void set_core_count(u32 cores);
  const std::vector<CoreStats>& core_stats() const { return core_stats_; }

  /// Flushes any design-internal buffered state (end of simulation). The
  /// base implementation flushes the devices' request queues (posted
  /// writes still sitting in the FR-FCFS write queues); overrides must
  /// call it so queued traffic is fully accounted before results are read.
  virtual void drain(Tick now);

  /// Observer for every physical copy made by move_data (tests use this to
  /// maintain a functional shadow of both devices).
  void set_movement_hook(std::function<void(const MoveEvent&)> hook) {
    movement_hook_ = std::move(hook);
  }

  /// SRAM bytes this design needs for its metadata structures.
  virtual u64 metadata_sram_bytes() const = 0;

  /// Attaches / detaches (nullptr) the structured event trace sink. The
  /// paging model shares it (OS fault / swap-out events).
  void set_trace_sink(TraceSink* sink);
  /// Attaches / detaches (nullptr) the epoch time-series sampler; when set,
  /// every demand request advances it at the request's simulated tick.
  void set_epoch_sampler(EpochSampler* sampler) { sampler_ = sampler; }

  /// Registers this design's epoch metrics. The base class contributes the
  /// framework metrics every design shares (serve rate, mean latency, per
  /// traffic-class bytes on both devices, row-hit rates, page faults);
  /// overrides call the base and append design-specific probes.
  virtual void register_metrics(MetricRegistry& reg) const;

  /// Warmup boundary: called once when measurement starts (right after the
  /// stats reset at the warmup instruction count). Emits the warmup_end
  /// trace event and re-baselines the epoch sampler at `now`.
  virtual void on_warmup_end(Tick now);

  const std::string& name() const { return name_; }
  const HmmStats& stats() const { return stats_; }

  /// Current degradation posture (see FaultPosture). Designs with a frame
  /// retirement path (Bumblebee) override this.
  virtual FaultPosture fault_posture() const { return {}; }

  /// Snapshot capability: designs that can serialize their complete
  /// in-flight state override these. The default is fail-closed — a
  /// snapshot request against an unsupporting design is a usage error.
  virtual bool snapshot_supported() const { return false; }
  virtual void save_state(snap::Writer& w) const;
  virtual void load_state(snap::Reader& r);

  /// Clears accumulated statistics (not design state) — used to exclude
  /// warmup from measurements. Per-core slices reset in place so their
  /// count (and any registered per-core metric probes) survives.
  virtual void reset_stats() {
    stats_ = HmmStats{};
    for (auto& cs : core_stats_) cs = CoreStats{};
    paging_.reset_stats();
  }
  const PagingModel& paging() const { return paging_; }
  mem::DramDevice& hbm() { return hbm_; }
  mem::DramDevice& dram() { return dram_; }
  const mem::DramDevice& hbm() const { return hbm_; }
  const mem::DramDevice& dram() const { return dram_; }

 protected:
  /// Design-specific request handling (paging already applied).
  virtual HmmResult service(Addr addr, AccessType type, Tick now) = 0;

  /// Asynchronous copy: reads `bytes` at `src_addr` from `src` and writes
  /// them to `dst`. Consumes real bandwidth on both devices; the returned
  /// completion tick is informational (demand requests do not wait on it).
  Tick move_data(mem::DramDevice& src, Addr src_addr, mem::DramDevice& dst,
                 Addr dst_addr, u64 bytes, Tick now, mem::TrafficClass cls);

  /// Asynchronous exchange of two regions (through a controller buffer):
  /// reads and writes both sides, emitting a single atomic swap event.
  Tick swap_data(mem::DramDevice& a, Addr a_addr, mem::DramDevice& b,
                 Addr b_addr, u64 bytes, Tick now, mem::TrafficClass cls);

  HmmStats& mutable_stats() { return stats_; }

  /// A demand access with DUE recovery: on a detected-uncorrectable error
  /// the access is retried with bounded, doubling backoff (the fault
  /// model's transients are tick-keyed, so a retry re-draws; structural
  /// faults persist through every retry). `unrecovered` reports a DUE
  /// that survived all retries — the caller decides whether a clean copy
  /// exists to re-fetch from, and accounts due_data_loss if not.
  struct EccDemand {
    mem::AccessResult access;
    bool unrecovered = false;
  };
  EccDemand ecc_demand(mem::DramDevice& dev, Addr addr, u64 bytes,
                       AccessType type, Tick now,
                       mem::TrafficClass cls = mem::TrafficClass::kDemand);

  /// Event trace sink, nullptr when tracing is off. Designs test this
  /// before building an event so disabled tracing costs one pointer test.
  TraceSink* trace() const { return trace_; }
  bool tracing() const { return trace_ != nullptr; }

  /// Framework-owned state shared by every design: aggregate and per-core
  /// statistics plus the paging model. Snapshot-capable designs call these
  /// from their save_state/load_state overrides.
  void save_base_state(snap::Writer& w) const;
  void load_base_state(snap::Reader& r);

 private:
  std::string name_;
  mem::DramDevice& hbm_;
  mem::DramDevice& dram_;
  PagingModel paging_;
  HmmStats stats_;
  std::vector<CoreStats> core_stats_;  ///< empty unless set_core_count
  std::function<void(const MoveEvent&)> movement_hook_;
  TraceSink* trace_ = nullptr;
  EpochSampler* sampler_ = nullptr;
};

/// The normalization baseline: no HBM at all; every request goes to the
/// off-chip DRAM. Visible capacity = off-chip DRAM only.
class DramOnlyController final : public HybridMemoryController {
 public:
  DramOnlyController(mem::DramDevice& hbm, mem::DramDevice& dram,
                     PagingConfig paging);

  u64 metadata_sram_bytes() const override { return 0; }

  bool snapshot_supported() const override { return true; }
  void save_state(snap::Writer& w) const override { save_base_state(w); }
  void load_state(snap::Reader& r) override { load_base_state(r); }

 protected:
  HmmResult service(Addr addr, AccessType type, Tick now) override;
};

}  // namespace bb::hmm
