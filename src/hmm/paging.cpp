#include "hmm/paging.h"

#include "common/snapshot.h"
#include "common/trace_event.h"

namespace bb::hmm {

PagingModel::PagingModel(const PagingConfig& cfg)
    : cfg_(cfg),
      capacity_pages_(cfg.enabled ? cfg.visible_bytes / cfg.os_page_bytes
                                  : 0) {}

Tick PagingModel::touch(Addr addr, Tick now) {
  if (!cfg_.enabled) return 0;
  const u64 page = addr / cfg_.os_page_bytes;

  const auto it = resident_.find(page);
  if (it != resident_.end()) {
    referenced_[it->second] = true;
    return 0;
  }

  if (ring_.size() < capacity_pages_) {
    // Cold (first-touch) fault: page fits, OS just zero-fills it.
    resident_.emplace(page, static_cast<u32>(ring_.size()));
    ring_.push_back(page);
    referenced_.push_back(true);
    ++stats_.first_touches;
    return 0;
  }

  // Capacity fault: run the clock hand until an unreferenced victim appears.
  for (;;) {
    if (hand_ >= ring_.size()) hand_ = 0;
    if (referenced_[hand_]) {
      referenced_[hand_] = false;
      ++hand_;
      continue;
    }
    break;
  }
  const u64 victim = ring_[hand_];
  resident_.erase(victim);
  ring_[hand_] = page;
  referenced_[hand_] = true;
  resident_.emplace(page, static_cast<u32>(hand_));
  ++hand_;
  ++stats_.faults;
  if (trace_) {
    trace_->emit(TraceEvent(now, "os_page_swap_out", "paging")
                     .arg("faulting_page", page)
                     .arg("victim_page", victim)
                     .arg("penalty_ns", ticks_to_ns(cfg_.fault_penalty)));
  }
  return cfg_.fault_penalty;
}

void PagingModel::save(snap::Writer& w) const {
  w.put_u64(stats_.faults);
  w.put_u64(stats_.first_touches);
  w.put_u64(ring_.size());
  for (u64 page : ring_) w.put_u64(page);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    w.put_u8(referenced_[i] ? 1 : 0);
  }
  w.put_u64(hand_);
}

void PagingModel::load(snap::Reader& r) {
  stats_.faults = r.get_u64();
  stats_.first_touches = r.get_u64();
  ring_.resize(static_cast<std::size_t>(r.get_u64()));
  for (u64& page : ring_) page = r.get_u64();
  referenced_.resize(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    referenced_[i] = r.get_u8() != 0;
  }
  hand_ = static_cast<std::size_t>(r.get_u64());
  resident_.clear();
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    resident_.emplace(ring_[i], static_cast<u32>(i));
  }
}

}  // namespace bb::hmm
