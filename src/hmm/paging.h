// OS paging pressure model.
//
// POM-style designs make the HBM capacity OS-visible; cache-style designs do
// not. The paper credits hybrid/POM designs with "more OS-visible memory to
// reduce page faults" (Section III-E, movement trigger 5). We model this
// with a resident-set simulation: OS pages (4 KB) become resident on first
// touch; when the resident set exceeds the design's visible capacity a
// victim is chosen clock-style and the faulting access pays a fixed penalty
// (minor-fault / compressed-swap cost, not a disk swap).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace bb {
class TraceSink;
}  // namespace bb

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::hmm {

struct PagingConfig {
  bool enabled = true;
  u64 visible_bytes = 10 * GiB;  ///< OS-visible memory capacity
  u64 os_page_bytes = 4 * KiB;
  Tick fault_penalty = ns_to_ticks(200.0);
};

struct PagingStats {
  u64 faults = 0;        ///< capacity faults (victim evicted + penalty paid)
  u64 first_touches = 0; ///< cold faults (no penalty; OS zero-fill assumed)
};

class PagingModel {
 public:
  explicit PagingModel(const PagingConfig& cfg);

  /// Touches the OS page containing `addr` at simulated tick `now`;
  /// returns the penalty (0 or the configured fault penalty) to add to the
  /// request latency.
  Tick touch(Addr addr, Tick now = 0);

  /// Attaches / detaches (nullptr) the event trace sink; capacity faults
  /// then emit os_page_swap_out events (victim page evicted).
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  const PagingStats& stats() const { return stats_; }
  const PagingConfig& config() const { return cfg_; }

  /// Clears the fault counters at a warmup boundary. The resident set and
  /// clock ring survive — the OS does not forget which pages are resident
  /// when measurement starts.
  void reset_stats() { stats_ = PagingStats{}; }

  /// Snapshot/restore of the resident set (clock ring + reference bits +
  /// hand) and fault counters; the page->slot map is rebuilt from the ring.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  TraceSink* trace_ = nullptr;
  PagingConfig cfg_;
  u64 capacity_pages_;
  PagingStats stats_;
  // determinism-ok: keyed find/emplace/erase only (never iterated); victim
  // order comes from the clock ring below, not from bucket order.
  std::unordered_map<u64, u32> resident_;  ///< page id -> slot in clock ring
  std::vector<u64> ring_;                  ///< clock ring of resident pages
  std::vector<bool> referenced_;
  std::size_t hand_ = 0;
};

}  // namespace bb::hmm
