#include "hmm/metadata.h"

#include <cassert>

#include "common/snapshot.h"

namespace bb::hmm {

MetadataModel::MetadataModel(const MetadataConfig& cfg, mem::DramDevice* hbm)
    : cfg_(cfg), hbm_(hbm) {
  assert(cfg_.placement == MetadataPlacement::kSram || hbm_ != nullptr);
  if (cfg_.placement == MetadataPlacement::kSramCachedHbm) {
    cache::CacheParams p;
    p.name = "metadata-cache";
    p.size_bytes = cfg_.cache_bytes;
    p.ways = cfg_.cache_ways;
    p.line_bytes = cfg_.cache_line_bytes;
    p.policy = cache::PolicyKind::kLru;
    sram_cache_ = std::make_unique<cache::Cache>(p);
  }
}

Tick MetadataModel::lookup(u64 key, Tick now) {
  ++stats_.lookups;
  Tick latency = 0;
  switch (cfg_.placement) {
    case MetadataPlacement::kSram:
      ++stats_.sram_hits;
      latency = cfg_.sram_latency;
      break;
    case MetadataPlacement::kHbm: {
      const auto r = hbm_->access(key_to_hbm_addr(key), cfg_.entry_bytes,
                                  AccessType::kRead, now,
                                  mem::TrafficClass::kMetadata);
      ++stats_.hbm_accesses;
      latency = r.latency();
      break;
    }
    case MetadataPlacement::kSramCachedHbm: {
      const auto c =
          sram_cache_->access(key_to_hbm_addr(key), AccessType::kRead);
      latency = cfg_.sram_latency;
      if (c.hit) {
        ++stats_.sram_hits;
      } else {
        const auto r = hbm_->access(key_to_hbm_addr(key), cfg_.entry_bytes,
                                    AccessType::kRead, now,
                                    mem::TrafficClass::kMetadata);
        ++stats_.hbm_accesses;
        latency += r.latency();
      }
      break;
    }
  }
  stats_.total_latency += latency;
  return latency;
}

void MetadataModel::update(u64 key, Tick now) {
  switch (cfg_.placement) {
    case MetadataPlacement::kSram:
      break;
    case MetadataPlacement::kHbm:
      hbm_->access(key_to_hbm_addr(key), cfg_.entry_bytes, AccessType::kWrite,
                   now, mem::TrafficClass::kMetadata);
      ++stats_.hbm_accesses;
      break;
    case MetadataPlacement::kSramCachedHbm: {
      const auto c =
          sram_cache_->access(key_to_hbm_addr(key), AccessType::kWrite);
      if (!c.hit || (c.evicted && c.evicted_dirty)) {
        hbm_->access(key_to_hbm_addr(key), cfg_.entry_bytes,
                     AccessType::kWrite, now, mem::TrafficClass::kMetadata);
        ++stats_.hbm_accesses;
      }
      break;
    }
  }
}

void MetadataModel::save(snap::Writer& w) const {
  w.put_u64(stats_.lookups);
  w.put_u64(stats_.sram_hits);
  w.put_u64(stats_.hbm_accesses);
  w.put_u64(stats_.total_latency);
  w.put_u8(sram_cache_ ? 1 : 0);
  if (sram_cache_) sram_cache_->save(w);
}

void MetadataModel::load(snap::Reader& r) {
  stats_.lookups = r.get_u64();
  stats_.sram_hits = r.get_u64();
  stats_.hbm_accesses = r.get_u64();
  stats_.total_latency = r.get_u64();
  const bool has_cache = r.get_u8() != 0;
  if (has_cache != (sram_cache_ != nullptr)) {
    throw snap::SnapshotError("metadata cache presence mismatch");
  }
  if (sram_cache_) sram_cache_->load(r);
}

}  // namespace bb::hmm
