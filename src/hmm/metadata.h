// Metadata placement and access-latency model.
//
// The paper's Section II-B measures metadata access latency (MAL) at 2-26%
// of total request latency for designs whose metadata overflows SRAM, and
// the Meta-H ablation places all Bumblebee metadata in HBM. This model
// covers the three placements used across the reproduced designs:
//
//   kSram         — fits on chip; fixed pipelined lookup latency.
//   kHbm          — resides in HBM; every lookup performs a real (small)
//                   HBM access, consuming bandwidth and adding latency.
//   kSramCachedHbm — backing store in HBM with a real set-associative SRAM
//                   metadata cache in front (Hybrid2/Chameleon style); hits
//                   cost the SRAM latency, misses add an HBM access.
#pragma once

#include <memory>

#include "cache/cache.h"
#include "common/types.h"
#include "mem/dram_device.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::hmm {

enum class MetadataPlacement : u8 { kSram, kHbm, kSramCachedHbm };

struct MetadataConfig {
  MetadataPlacement placement = MetadataPlacement::kSram;
  Tick sram_latency = ns_to_ticks(2.0);
  u64 entry_bytes = 8;          ///< size of one metadata record
  u64 cache_bytes = 512 * KiB;  ///< SRAM metadata cache (kSramCachedHbm)
  u32 cache_ways = 8;
  u64 cache_line_bytes = 64;
  /// HBM region (device-local) reserved for metadata, so metadata accesses
  /// contend with data accesses on real banks.
  Addr hbm_base = 0;
};

struct MetadataStats {
  u64 lookups = 0;
  u64 sram_hits = 0;
  u64 hbm_accesses = 0;
  Tick total_latency = 0;  ///< metadata latency on the critical path

  Tick mean_latency() const { return lookups ? total_latency / lookups : 0; }
};

class MetadataModel {
 public:
  /// `hbm` may be null only for kSram placement.
  MetadataModel(const MetadataConfig& cfg, mem::DramDevice* hbm);

  /// Performs a metadata lookup for the record identified by `key` at time
  /// `now`; returns the latency contribution on the critical path.
  Tick lookup(u64 key, Tick now);

  /// A metadata update off the critical path (still consumes HBM bandwidth
  /// for non-SRAM placements).
  void update(u64 key, Tick now);

  const MetadataStats& stats() const { return stats_; }
  const MetadataConfig& config() const { return cfg_; }

  /// Clears the lookup/latency counters (and the SRAM metadata cache's hit
  /// stats) at a warmup boundary; the cache contents survive, matching the
  /// warmed-up devices.
  void reset_stats() {
    stats_ = MetadataStats{};
    if (sram_cache_) sram_cache_->reset_stats();
  }

  /// Snapshot/restore of the lookup counters and (when present) the SRAM
  /// metadata cache contents.
  void save(snap::Writer& w) const;
  void load(snap::Reader& r);

 private:
  Addr key_to_hbm_addr(u64 key) const {
    return cfg_.hbm_base + key * cfg_.entry_bytes;
  }

  MetadataConfig cfg_;
  mem::DramDevice* hbm_;
  std::unique_ptr<cache::Cache> sram_cache_;  // kSramCachedHbm only
  MetadataStats stats_;
};

}  // namespace bb::hmm
