#include "hmm/controller.h"

#include <algorithm>
#include <stdexcept>

#include "common/metrics.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "common/trace_event.h"

namespace bb::hmm {

std::vector<double> HmmStats::latency_bounds_ns() {
  // Fine steps through the HBM/DRAM hit range, widening geometrically into
  // the fault-penalty tail; the overflow bucket catches pathological waits.
  return {20,   40,   60,   80,   100,  120,   140,   160,   180,
          200,  225,  250,  275,  300,  350,   400,   450,   500,
          600,  700,  800,  1000, 1250, 1500,  2000,  3000,  5000,
          7500, 10000, 20000, 50000, 100000};
}

HybridMemoryController::HybridMemoryController(std::string name,
                                               mem::DramDevice& hbm,
                                               mem::DramDevice& dram,
                                               const PagingConfig& paging)
    : name_(std::move(name)), hbm_(hbm), dram_(dram), paging_(paging) {}

HmmResult HybridMemoryController::access(Addr addr, AccessType type,
                                         Tick now, u32 core_id) {
  // Host-side phase attribution only; the nested device-timing phase in
  // DramDevice::access claims its own (exclusive) share of this span.
  prof::ScopedPhase prof_phase(prof::Phase::kHmmAccess);
  // Per-core byte attribution works by device-counter snapshot: whatever
  // both devices move while service() runs — demand beats plus any fills,
  // writebacks or migrations the design triggers from this request — is
  // charged to the requesting core.
  const bool per_core = !core_stats_.empty();
  std::array<u64, mem::kTrafficClassCount> hbm_rd{}, hbm_wr{}, dram_rd{},
      dram_wr{};
  if (per_core) {
    hbm_rd = hbm_.stats().read_bytes;
    hbm_wr = hbm_.stats().write_bytes;
    dram_rd = dram_.stats().read_bytes;
    dram_wr = dram_.stats().write_bytes;
  }

  const Tick fault = paging_.touch(addr, now);
  HmmResult res = service(addr, type, now + fault);
  res.fault_penalty = fault;
  res.complete += 0;  // service() already accounts from the delayed start

  ++stats_.requests;
  if (type == AccessType::kRead) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
  if (res.served_by_hbm) ++stats_.hbm_served;
  stats_.total_latency += res.complete - now;
  stats_.total_metadata_latency += res.metadata_latency;
  stats_.latency_ns.sample(ticks_to_ns(res.complete - now));

  if (per_core) {
    const std::size_t c =
        std::min<std::size_t>(core_id, core_stats_.size() - 1);
    CoreStats& cs = core_stats_[c];
    ++cs.requests;
    if (res.served_by_hbm) ++cs.hbm_served;
    cs.total_latency += res.complete - now;
    cs.latency_ns.sample(ticks_to_ns(res.complete - now));
    for (std::size_t k = 0; k < mem::kTrafficClassCount; ++k) {
      cs.hbm_class_bytes[k] += (hbm_.stats().read_bytes[k] - hbm_rd[k]) +
                               (hbm_.stats().write_bytes[k] - hbm_wr[k]);
      cs.dram_class_bytes[k] += (dram_.stats().read_bytes[k] - dram_rd[k]) +
                                (dram_.stats().write_bytes[k] - dram_wr[k]);
    }
  }
  if (sampler_) sampler_->on_request(now);
  return res;
}

void HybridMemoryController::set_core_count(u32 cores) {
  core_stats_.assign(cores, CoreStats{});
}

void HybridMemoryController::drain(Tick now) {
  // End-of-run queue flush: posted writes drain to the devices so beat,
  // row-state and energy totals are complete before results are
  // assembled (bytes are accounted at arrival). No-op with the queue
  // layer off.
  hbm_.drain_queues(now);
  dram_.drain_queues(now);
}

void HybridMemoryController::set_trace_sink(TraceSink* sink) {
  trace_ = sink;
  paging_.set_trace_sink(sink);
  // The devices emit fault_injected events; they share the run's sink.
  hbm_.set_trace_sink(sink);
  dram_.set_trace_sink(sink);
}

void HybridMemoryController::register_metrics(MetricRegistry& reg) const {
  // No "requests" counter here: the sampler's fixed `requests` column
  // already reports the per-epoch request count.
  const HmmStats* st = &stats_;
  reg.add_ratio(
      "hbm_serve_rate",
      [st] { return static_cast<double>(st->hbm_served); },
      [st] { return static_cast<double>(st->requests); });
  reg.add_ratio(
      "mean_latency_ns",
      [st] { return ticks_to_ns(st->total_latency); },
      [st] { return static_cast<double>(st->requests); });
  hbm_.register_metrics(reg, "hbm_");
  dram_.register_metrics(reg, "dram_");
  const PagingModel* pg = &paging_;
  reg.add_counter("page_faults", [pg] {
    return static_cast<double>(pg->stats().faults);
  });
  // ECC recovery / degradation probes, only when a fault model is attached
  // so fault-free epoch CSVs keep their column set.
  if (hbm_.faults() != nullptr || dram_.faults() != nullptr) {
    reg.add_counter("due_retries", [st] {
      return static_cast<double>(st->due_retries);
    });
    reg.add_counter("due_unrecovered", [st] {
      return static_cast<double>(st->due_unrecovered);
    });
    const HybridMemoryController* self = this;
    reg.add_gauge("retired_frames", [self] {
      return static_cast<double>(self->fault_posture().retired_frames);
    });
    reg.add_gauge("degraded_sets", [self] {
      return static_cast<double>(self->fault_posture().degraded_sets);
    });
  }
  // Per-core attribution probes (co-run evaluation); registered only when a
  // multi-core table was sized, so single-core epoch CSVs keep their
  // column set. Probes index through the member vector each call — its
  // elements never move after set_core_count.
  if (core_stats_.size() > 1) {
    const std::vector<CoreStats>* cs = &core_stats_;
    for (std::size_t i = 0; i < core_stats_.size(); ++i) {
      const std::string p = "core" + std::to_string(i) + "_";
      reg.add_counter(p + "requests", [cs, i] {
        return static_cast<double>((*cs)[i].requests);
      });
      reg.add_ratio(
          p + "hbm_serve_rate",
          [cs, i] { return static_cast<double>((*cs)[i].hbm_served); },
          [cs, i] { return static_cast<double>((*cs)[i].requests); });
    }
  }
}

void HybridMemoryController::on_warmup_end(Tick now) {
  if (trace_) {
    trace_->emit(TraceEvent(now, "warmup_end", "sim"));
  }
  if (sampler_) sampler_->restart(now);
}

Tick HybridMemoryController::move_data(mem::DramDevice& src, Addr src_addr,
                                       mem::DramDevice& dst, Addr dst_addr,
                                       u64 bytes, Tick now,
                                       mem::TrafficClass cls) {
  const auto rd = src.access(src_addr, bytes, AccessType::kRead, now, cls);
  const auto wr =
      dst.access(dst_addr, bytes, AccessType::kWrite, rd.complete, cls);
  if (movement_hook_) {
    movement_hook_({&src == &hbm_, src_addr, &dst == &hbm_, dst_addr, bytes});
  }
  return wr.complete;
}

Tick HybridMemoryController::swap_data(mem::DramDevice& a, Addr a_addr,
                                       mem::DramDevice& b, Addr b_addr,
                                       u64 bytes, Tick now,
                                       mem::TrafficClass cls) {
  const auto ra = a.access(a_addr, bytes, AccessType::kRead, now, cls);
  const auto rb = b.access(b_addr, bytes, AccessType::kRead, now, cls);
  const Tick buffered = std::max(ra.complete, rb.complete);
  const auto wa = a.access(a_addr, bytes, AccessType::kWrite, buffered, cls);
  const auto wb = b.access(b_addr, bytes, AccessType::kWrite, buffered, cls);
  if (movement_hook_) {
    movement_hook_(
        {&a == &hbm_, a_addr, &b == &hbm_, b_addr, bytes, /*is_swap=*/true});
  }
  return std::max(wa.complete, wb.complete);
}

HybridMemoryController::EccDemand HybridMemoryController::ecc_demand(
    mem::DramDevice& dev, Addr addr, u64 bytes, AccessType type, Tick now,
    mem::TrafficClass cls) {
  EccDemand out;
  out.access = dev.access(addr, bytes, type, now, cls);
  if (out.access.ecc != fault::EccOutcome::kUncorrectable) return out;
  const fault::DeviceFaultState* fs = dev.faults();
  if (fs == nullptr) {  // defensive: a UE implies an attached fault model
    out.unrecovered = true;
    return out;
  }
  Tick backoff = fs->config().due_retry_backoff;
  for (u32 attempt = 0; attempt < fs->config().max_due_retries; ++attempt) {
    ++stats_.due_retries;
    out.access = dev.access(addr, bytes, type, out.access.complete + backoff,
                            cls);
    if (out.access.ecc != fault::EccOutcome::kUncorrectable) {
      ++stats_.due_recovered;
      return out;
    }
    backoff *= 2;
  }
  ++stats_.due_unrecovered;
  out.unrecovered = true;
  return out;
}

DramOnlyController::DramOnlyController(mem::DramDevice& hbm,
                                       mem::DramDevice& dram,
                                       PagingConfig paging)
    : HybridMemoryController(
          "DRAM-only", hbm, dram,
          [&] {
            paging.visible_bytes = dram.capacity();
            return paging;
          }()) {}

HmmResult DramOnlyController::service(Addr addr, AccessType type, Tick now) {
  HmmResult res;
  // HBM absent: all OS addresses fold into the off-chip DRAM.
  const Addr phys = addr % dram().capacity();
  const auto r = ecc_demand(dram(), phys, 64, type, now);
  res.complete = r.access.complete;
  res.served_by_hbm = false;
  res.phys_addr = phys;
  if (r.unrecovered && type == AccessType::kRead) {
    // The only copy of the data was unreadable.
    ++mutable_stats().due_data_loss;
  }
  return res;
}

void HybridMemoryController::save_state(snap::Writer&) const {
  throw std::invalid_argument("design '" + name_ +
                              "' does not support snapshots");
}

void HybridMemoryController::load_state(snap::Reader&) {
  throw std::invalid_argument("design '" + name_ +
                              "' does not support snapshots");
}

namespace {

void save_core_stats(snap::Writer& w, const CoreStats& cs) {
  w.put_u64(cs.requests);
  w.put_u64(cs.hbm_served);
  w.put_u64(cs.total_latency);
  cs.latency_ns.save(w);
  for (u64 b : cs.hbm_class_bytes) w.put_u64(b);
  for (u64 b : cs.dram_class_bytes) w.put_u64(b);
}

void load_core_stats(snap::Reader& r, CoreStats& cs) {
  cs.requests = r.get_u64();
  cs.hbm_served = r.get_u64();
  cs.total_latency = r.get_u64();
  cs.latency_ns.load(r);
  for (u64& b : cs.hbm_class_bytes) b = r.get_u64();
  for (u64& b : cs.dram_class_bytes) b = r.get_u64();
}

}  // namespace

void HybridMemoryController::save_base_state(snap::Writer& w) const {
  w.put_u64(stats_.requests);
  w.put_u64(stats_.reads);
  w.put_u64(stats_.writes);
  w.put_u64(stats_.hbm_served);
  w.put_u64(stats_.total_latency);
  w.put_u64(stats_.total_metadata_latency);
  stats_.latency_ns.save(w);
  w.put_u64(stats_.blocks_fetched);
  w.put_u64(stats_.fetched_blocks_used);
  w.put_u64(stats_.migrations);
  w.put_u64(stats_.evictions);
  w.put_u64(stats_.mode_switches);
  w.put_u64(stats_.swaps);
  w.put_u64(stats_.due_retries);
  w.put_u64(stats_.due_recovered);
  w.put_u64(stats_.due_unrecovered);
  w.put_u64(stats_.due_data_loss);
  w.put_u64(core_stats_.size());
  for (const CoreStats& cs : core_stats_) save_core_stats(w, cs);
  paging_.save(w);
}

void HybridMemoryController::load_base_state(snap::Reader& r) {
  stats_.requests = r.get_u64();
  stats_.reads = r.get_u64();
  stats_.writes = r.get_u64();
  stats_.hbm_served = r.get_u64();
  stats_.total_latency = r.get_u64();
  stats_.total_metadata_latency = r.get_u64();
  stats_.latency_ns.load(r);
  stats_.blocks_fetched = r.get_u64();
  stats_.fetched_blocks_used = r.get_u64();
  stats_.migrations = r.get_u64();
  stats_.evictions = r.get_u64();
  stats_.mode_switches = r.get_u64();
  stats_.swaps = r.get_u64();
  stats_.due_retries = r.get_u64();
  stats_.due_recovered = r.get_u64();
  stats_.due_unrecovered = r.get_u64();
  stats_.due_data_loss = r.get_u64();
  if (r.get_u64() != core_stats_.size()) {
    throw snap::SnapshotError("per-core slice count mismatch");
  }
  for (CoreStats& cs : core_stats_) load_core_stats(r, cs);
  paging_.load(r);
}

}  // namespace bb::hmm
