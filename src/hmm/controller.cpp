#include "hmm/controller.h"

#include <algorithm>

namespace bb::hmm {

HybridMemoryController::HybridMemoryController(std::string name,
                                               mem::DramDevice& hbm,
                                               mem::DramDevice& dram,
                                               const PagingConfig& paging)
    : name_(std::move(name)), hbm_(hbm), dram_(dram), paging_(paging) {}

HmmResult HybridMemoryController::access(Addr addr, AccessType type,
                                         Tick now) {
  const Tick fault = paging_.touch(addr);
  HmmResult res = service(addr, type, now + fault);
  res.fault_penalty = fault;
  res.complete += 0;  // service() already accounts from the delayed start

  ++stats_.requests;
  if (type == AccessType::kRead) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
  if (res.served_by_hbm) ++stats_.hbm_served;
  stats_.total_latency += res.complete - now;
  stats_.total_metadata_latency += res.metadata_latency;
  return res;
}

Tick HybridMemoryController::move_data(mem::DramDevice& src, Addr src_addr,
                                       mem::DramDevice& dst, Addr dst_addr,
                                       u64 bytes, Tick now,
                                       mem::TrafficClass cls) {
  const auto rd = src.access(src_addr, bytes, AccessType::kRead, now, cls);
  const auto wr =
      dst.access(dst_addr, bytes, AccessType::kWrite, rd.complete, cls);
  if (movement_hook_) {
    movement_hook_({&src == &hbm_, src_addr, &dst == &hbm_, dst_addr, bytes});
  }
  return wr.complete;
}

Tick HybridMemoryController::swap_data(mem::DramDevice& a, Addr a_addr,
                                       mem::DramDevice& b, Addr b_addr,
                                       u64 bytes, Tick now,
                                       mem::TrafficClass cls) {
  const auto ra = a.access(a_addr, bytes, AccessType::kRead, now, cls);
  const auto rb = b.access(b_addr, bytes, AccessType::kRead, now, cls);
  const Tick buffered = std::max(ra.complete, rb.complete);
  const auto wa = a.access(a_addr, bytes, AccessType::kWrite, buffered, cls);
  const auto wb = b.access(b_addr, bytes, AccessType::kWrite, buffered, cls);
  if (movement_hook_) {
    movement_hook_(
        {&a == &hbm_, a_addr, &b == &hbm_, b_addr, bytes, /*is_swap=*/true});
  }
  return std::max(wa.complete, wb.complete);
}

DramOnlyController::DramOnlyController(mem::DramDevice& hbm,
                                       mem::DramDevice& dram,
                                       PagingConfig paging)
    : HybridMemoryController(
          "DRAM-only", hbm, dram,
          [&] {
            paging.visible_bytes = dram.capacity();
            return paging;
          }()) {}

HmmResult DramOnlyController::service(Addr addr, AccessType type, Tick now) {
  HmmResult res;
  // HBM absent: all OS addresses fold into the off-chip DRAM.
  const Addr phys = addr % dram().capacity();
  const auto r = dram().access(phys, 64, type, now);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = phys;
  return res;
}

}  // namespace bb::hmm
