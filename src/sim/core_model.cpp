#include "sim/core_model.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/prof.h"
#include "trace/stream.h"

namespace bb::sim {

CoreModel::CoreModel(const CoreParams& params) : params_(params) {
  // base CPI in picoseconds per instruction, kept as a rational so long
  // runs accumulate no floating-point drift: cpi / freq_ghz ns/inst.
  const double ps_per_inst = params_.base_cpi / params_.freq_ghz * 1000.0;
  cpi_ticks_num_ = static_cast<Tick>(ps_per_inst * 1024.0 + 0.5);
  cpi_ticks_den_ = 1024;
}

namespace {

/// Per-core replay state: its own trace stream, clock, and ROB.
struct CoreState {
  trace::TraceSource* src = nullptr;  ///< not owned
  Addr base = 0;
  Tick now = 0;
  u64 inst = 0;
  u64 misses = 0;          ///< misses since the warmup reset
  u64 inst_at_reset = 0;   ///< instruction count at the warmup reset
  std::deque<std::pair<u64, Tick>> rob;  ///< (inst at issue, completion)
};

}  // namespace

std::vector<CoreLane> CoreModel::homogeneous_lanes(
    const trace::WorkloadProfile& profile, u64 seed, u32 cores) {
  std::vector<CoreLane> lanes;
  const u32 n = std::max<u32>(1, cores);
  lanes.reserve(n);
  for (u32 c = 0; c < n; ++c) {
    lanes.push_back({profile, seed + 0x1000003ULL * c, /*base=*/0});
  }
  return lanes;
}

CoreResult CoreModel::run(const trace::WorkloadProfile& profile, u64 seed,
                          u64 target_instructions,
                          hmm::HybridMemoryController& hmmc,
                          u64 warmup_instructions) {
  return run_lanes(homogeneous_lanes(profile, seed, params_.cores),
                   target_instructions, hmmc, warmup_instructions);
}

CoreResult CoreModel::run_lanes(const std::vector<CoreLane>& lanes,
                                u64 target_instructions,
                                hmm::HybridMemoryController& hmmc,
                                u64 warmup_instructions) {
  BB_CHECK(!lanes.empty(), "run_lanes needs at least one lane");
  std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
  std::vector<trace::TraceSource*> sources;
  std::vector<Addr> bases;
  gens.reserve(lanes.size());
  sources.reserve(lanes.size());
  bases.reserve(lanes.size());
  for (const CoreLane& lane : lanes) {
    gens.push_back(
        std::make_unique<trace::TraceGenerator>(lane.profile, lane.seed));
    sources.push_back(gens.back().get());
    bases.push_back(lane.base);
  }
  return run_sources(sources, bases, target_instructions, hmmc,
                     warmup_instructions);
}

CoreResult CoreModel::run_sources(
    const std::vector<trace::TraceSource*>& sources,
    const std::vector<Addr>& bases, u64 target_instructions,
    hmm::HybridMemoryController& hmmc, u64 warmup_instructions) {
  BB_CHECK(!sources.empty(), "run_sources needs at least one source");
  BB_CHECK(sources.size() == bases.size(),
           "run_sources needs one address base per source");
  CoreResult res;
  const u32 n = static_cast<u32>(sources.size());
  std::vector<CoreState> cores(n);
  for (u32 c = 0; c < n; ++c) {
    cores[c].src = sources[c];
    cores[c].base = bases[c];
  }

  u64 total_inst = 0;
  u64 measured_misses = 0;
  u64 inst_at_reset = 0;
  Tick tick_at_reset = 0;
  bool warm = warmup_instructions == 0;
  if (warm) {
    // No warmup: the measured phase starts at tick 0. Announce it anyway so
    // the warmup_end trace event and epoch-0 alignment are unconditional.
    hmmc.on_warmup_end(0);
  }
  const u64 end_inst = target_instructions + warmup_instructions;
  while (total_inst < end_inst) {
    if (!warm && total_inst >= warmup_instructions) {
      warm = true;
      inst_at_reset = total_inst;
      for (auto& core : cores) {
        tick_at_reset = std::max(tick_at_reset, core.now);
        core.inst_at_reset = core.inst;
        core.misses = 0;
      }
      hmmc.reset_stats();
      hmmc.hbm().reset_stats();
      hmmc.dram().reset_stats();
      hmmc.on_warmup_end(tick_at_reset);
      measured_misses = 0;
    }
    // Advance the core that is furthest behind in simulated time, so
    // requests reach the memory system in (approximate) time order.
    u32 next = 0;
    for (u32 c = 1; c < n; ++c) {
      if (cores[c].now < cores[next].now) next = c;
    }
    CoreState& core = cores[next];

    const trace::TraceRecord rec = [&] {
      prof::ScopedPhase phase(prof::Phase::kTraceGen);
      return core.src->next();
    }();
    if (capture_ != nullptr) {
      // Record the merged stream exactly as the memory system sees it:
      // lane base folded in, consumption order preserved.
      capture_->append({rec.inst_gap, core.base + rec.addr, rec.type});
    }
    total_inst += rec.inst_gap;

    // Advance through the gap in segments bounded by ROB retirement: the
    // core may run only rob_window instructions past the oldest
    // outstanding miss, so an isolated miss exposes (almost) its full
    // latency instead of hiding behind the next gap.
    u64 remaining = rec.inst_gap;
    while (!core.rob.empty()) {
      const u64 stall_inst =
          core.rob.front().first + params_.rob_window;
      if (core.inst + remaining <= stall_inst) break;
      const u64 adv = stall_inst > core.inst ? stall_inst - core.inst : 0;
      core.inst += adv;
      remaining -= adv;
      core.now += adv * cpi_ticks_num_ / cpi_ticks_den_;
      core.now = std::max(core.now, core.rob.front().second);
      core.rob.pop_front();
    }
    core.inst += remaining;
    core.now += remaining * cpi_ticks_num_ / cpi_ticks_den_;

    // MSHR/MLP limit.
    if (core.rob.size() >= params_.mlp) {
      core.now = std::max(core.now, core.rob.front().second);
      core.rob.pop_front();
    }

    const Tick issue = core.now + params_.hierarchy_latency;
    const auto r = hmmc.access(core.base + rec.addr, rec.type, issue, next);
    core.rob.push_back({core.inst, r.complete});
    ++measured_misses;
    ++core.misses;
  }

  Tick end = 0;
  for (auto& core : cores) {
    for (const auto& o : core.rob) core.now = std::max(core.now, o.second);
    end = std::max(end, core.now);
  }
  hmmc.drain(end);

  res.instructions = total_inst - inst_at_reset;
  res.misses = measured_misses;
  res.elapsed = end - tick_at_reset;
  res.per_core.resize(n);
  for (u32 c = 0; c < n; ++c) {
    res.per_core[c].instructions = cores[c].inst - cores[c].inst_at_reset;
    res.per_core[c].misses = cores[c].misses;
    res.per_core[c].elapsed =
        cores[c].now > tick_at_reset ? cores[c].now - tick_at_reset : 0;
  }
  return res;
}

CoreResult CoreModel::run(trace::TraceGenerator& gen, u64 target_instructions,
                          hmm::HybridMemoryController& hmmc) {
  CoreResult res;
  Tick now = 0;
  u64 inst = 0;
  std::deque<Outstanding> rob;

  while (inst < target_instructions) {
    const trace::TraceRecord rec = [&] {
      prof::ScopedPhase phase(prof::Phase::kTraceGen);
      return gen.next();
    }();

    u64 remaining = rec.inst_gap;
    while (!rob.empty()) {
      const u64 stall_inst = rob.front().inst + params_.rob_window;
      if (inst + remaining <= stall_inst) break;
      const u64 adv = stall_inst > inst ? stall_inst - inst : 0;
      inst += adv;
      remaining -= adv;
      now += adv * cpi_ticks_num_ / cpi_ticks_den_;
      now = std::max(now, rob.front().done);
      rob.pop_front();
    }
    inst += remaining;
    now += remaining * cpi_ticks_num_ / cpi_ticks_den_;

    if (rob.size() >= params_.mlp) {
      now = std::max(now, rob.front().done);
      rob.pop_front();
    }

    const Tick issue = now + params_.hierarchy_latency;
    const auto r = hmmc.access(rec.addr, rec.type, issue);
    rob.push_back({inst, r.complete});
    ++res.misses;
  }

  for (const auto& o : rob) now = std::max(now, o.done);
  hmmc.drain(now);

  res.instructions = inst;
  res.elapsed = now;
  return res;
}

}  // namespace bb::sim
