#include "sim/core_model.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "trace/stream.h"

namespace bb::sim {

CoreModel::CoreModel(const CoreParams& params) : params_(params) {
  // base CPI in picoseconds per instruction, kept as a rational so long
  // runs accumulate no floating-point drift: cpi / freq_ghz ns/inst.
  const double ps_per_inst = params_.base_cpi / params_.freq_ghz * 1000.0;
  cpi_ticks_num_ = static_cast<Tick>(ps_per_inst * 1024.0 + 0.5);
  cpi_ticks_den_ = 1024;
}

void RunLoopState::save(snap::Writer& w) const {
  w.put_u64(cores.size());
  for (const Core& c : cores) {
    w.put_u64(c.now);
    w.put_u64(c.inst);
    w.put_u64(c.misses);
    w.put_u64(c.inst_at_reset);
    w.put_u64(c.rob.size());
    for (const auto& [inst_at_issue, complete] : c.rob) {
      w.put_u64(inst_at_issue);
      w.put_u64(complete);
    }
  }
  w.put_u64(total_inst);
  w.put_u64(measured_misses);
  w.put_u64(inst_at_reset);
  w.put_u64(tick_at_reset);
  w.put_u8(warm ? 1 : 0);
  w.put_u64(records);
}

void RunLoopState::load(snap::Reader& r) {
  cores.resize(static_cast<std::size_t>(r.get_u64()));
  for (Core& c : cores) {
    c.now = r.get_u64();
    c.inst = r.get_u64();
    c.misses = r.get_u64();
    c.inst_at_reset = r.get_u64();
    c.rob.clear();
    const u64 depth = r.get_u64();
    for (u64 i = 0; i < depth; ++i) {
      const u64 inst_at_issue = r.get_u64();
      const Tick complete = r.get_u64();
      c.rob.emplace_back(inst_at_issue, complete);
    }
  }
  total_inst = r.get_u64();
  measured_misses = r.get_u64();
  inst_at_reset = r.get_u64();
  tick_at_reset = r.get_u64();
  warm = r.get_u8() != 0;
  records = r.get_u64();
}

std::vector<CoreLane> CoreModel::homogeneous_lanes(
    const trace::WorkloadProfile& profile, u64 seed, u32 cores) {
  std::vector<CoreLane> lanes;
  const u32 n = std::max<u32>(1, cores);
  lanes.reserve(n);
  for (u32 c = 0; c < n; ++c) {
    lanes.push_back({profile, seed + 0x1000003ULL * c, /*base=*/0});
  }
  return lanes;
}

CoreResult CoreModel::run(const trace::WorkloadProfile& profile, u64 seed,
                          u64 target_instructions,
                          hmm::HybridMemoryController& hmmc,
                          u64 warmup_instructions) {
  return run_lanes(homogeneous_lanes(profile, seed, params_.cores),
                   target_instructions, hmmc, warmup_instructions);
}

CoreResult CoreModel::run_lanes(const std::vector<CoreLane>& lanes,
                                u64 target_instructions,
                                hmm::HybridMemoryController& hmmc,
                                u64 warmup_instructions) {
  BB_CHECK(!lanes.empty(), "run_lanes needs at least one lane");
  std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
  std::vector<trace::TraceSource*> sources;
  std::vector<Addr> bases;
  gens.reserve(lanes.size());
  sources.reserve(lanes.size());
  bases.reserve(lanes.size());
  for (const CoreLane& lane : lanes) {
    gens.push_back(
        std::make_unique<trace::TraceGenerator>(lane.profile, lane.seed));
    sources.push_back(gens.back().get());
    bases.push_back(lane.base);
  }
  return run_sources(sources, bases, target_instructions, hmmc,
                     warmup_instructions);
}

CoreResult CoreModel::run_sources(
    const std::vector<trace::TraceSource*>& sources,
    const std::vector<Addr>& bases, u64 target_instructions,
    hmm::HybridMemoryController& hmmc, u64 warmup_instructions,
    const RunControl* control) {
  BB_CHECK(!sources.empty(), "run_sources needs at least one source");
  BB_CHECK(sources.size() == bases.size(),
           "run_sources needs one address base per source");
  CoreResult res;
  const u32 n = static_cast<u32>(sources.size());
  RunLoopState ls;
  if (control != nullptr && control->resume != nullptr) {
    // Resuming: the loop state picks up mid-run; the memory system and
    // trace sources were restored by the caller to the same record
    // boundary, so the replay continues bit-exactly.
    ls = *control->resume;
    BB_CHECK(ls.cores.size() == sources.size(),
             "resume state core count must match the source count");
  } else {
    ls.cores.resize(n);
    ls.warm = warmup_instructions == 0;
    if (ls.warm) {
      // No warmup: the measured phase starts at tick 0. Announce it anyway
      // so the warmup_end trace event and epoch-0 alignment are
      // unconditional.
      hmmc.on_warmup_end(0);
    }
  }

  const u64 checkpoint_every =
      control != nullptr ? control->checkpoint_every_records : 0;
  const u64 poll_every = checkpoint_every > 0 ? checkpoint_every : 65536;
  u64 next_mark = ls.records + poll_every;

  const u64 end_inst = target_instructions + warmup_instructions;
  while (ls.total_inst < end_inst) {
    if (control != nullptr && ls.records >= next_mark) {
      next_mark = ls.records + poll_every;
      if (checkpoint_every > 0 && control->on_checkpoint) {
        control->on_checkpoint(ls);
      }
      if (control->interrupted && control->interrupted()) {
        throw RunInterrupted{};
      }
    }
    if (!ls.warm && ls.total_inst >= warmup_instructions) {
      ls.warm = true;
      ls.inst_at_reset = ls.total_inst;
      for (auto& core : ls.cores) {
        ls.tick_at_reset = std::max(ls.tick_at_reset, core.now);
        core.inst_at_reset = core.inst;
        core.misses = 0;
      }
      hmmc.reset_stats();
      hmmc.hbm().reset_stats();
      hmmc.dram().reset_stats();
      hmmc.on_warmup_end(ls.tick_at_reset);
      ls.measured_misses = 0;
    }
    // Advance the core that is furthest behind in simulated time, so
    // requests reach the memory system in (approximate) time order.
    u32 next = 0;
    for (u32 c = 1; c < n; ++c) {
      if (ls.cores[c].now < ls.cores[next].now) next = c;
    }
    RunLoopState::Core& core = ls.cores[next];

    const trace::TraceRecord rec = [&] {
      prof::ScopedPhase phase(prof::Phase::kTraceGen);
      return sources[next]->next();
    }();
    ++ls.records;
    if (capture_ != nullptr) {
      // Record the merged stream exactly as the memory system sees it:
      // lane base folded in, consumption order preserved.
      capture_->append({rec.inst_gap, bases[next] + rec.addr, rec.type});
    }
    ls.total_inst += rec.inst_gap;

    // Advance through the gap in segments bounded by ROB retirement: the
    // core may run only rob_window instructions past the oldest
    // outstanding miss, so an isolated miss exposes (almost) its full
    // latency instead of hiding behind the next gap.
    u64 remaining = rec.inst_gap;
    while (!core.rob.empty()) {
      const u64 stall_inst =
          core.rob.front().first + params_.rob_window;
      if (core.inst + remaining <= stall_inst) break;
      const u64 adv = stall_inst > core.inst ? stall_inst - core.inst : 0;
      core.inst += adv;
      remaining -= adv;
      core.now += adv * cpi_ticks_num_ / cpi_ticks_den_;
      core.now = std::max(core.now, core.rob.front().second);
      core.rob.pop_front();
    }
    core.inst += remaining;
    core.now += remaining * cpi_ticks_num_ / cpi_ticks_den_;

    // MSHR/MLP limit.
    if (core.rob.size() >= params_.mlp) {
      core.now = std::max(core.now, core.rob.front().second);
      core.rob.pop_front();
    }

    const Tick issue = core.now + params_.hierarchy_latency;
    const auto r = hmmc.access(bases[next] + rec.addr, rec.type, issue, next);
    core.rob.push_back({core.inst, r.complete});
    ++ls.measured_misses;
    ++core.misses;
  }

  Tick end = 0;
  for (auto& core : ls.cores) {
    for (const auto& o : core.rob) core.now = std::max(core.now, o.second);
    end = std::max(end, core.now);
  }
  hmmc.drain(end);

  res.instructions = ls.total_inst - ls.inst_at_reset;
  res.misses = ls.measured_misses;
  res.elapsed = end - ls.tick_at_reset;
  res.per_core.resize(n);
  for (u32 c = 0; c < n; ++c) {
    res.per_core[c].instructions =
        ls.cores[c].inst - ls.cores[c].inst_at_reset;
    res.per_core[c].misses = ls.cores[c].misses;
    res.per_core[c].elapsed = ls.cores[c].now > ls.tick_at_reset
                                  ? ls.cores[c].now - ls.tick_at_reset
                                  : 0;
  }
  return res;
}

CoreResult CoreModel::run(trace::TraceGenerator& gen, u64 target_instructions,
                          hmm::HybridMemoryController& hmmc) {
  CoreResult res;
  Tick now = 0;
  u64 inst = 0;
  std::deque<Outstanding> rob;

  while (inst < target_instructions) {
    const trace::TraceRecord rec = [&] {
      prof::ScopedPhase phase(prof::Phase::kTraceGen);
      return gen.next();
    }();

    u64 remaining = rec.inst_gap;
    while (!rob.empty()) {
      const u64 stall_inst = rob.front().inst + params_.rob_window;
      if (inst + remaining <= stall_inst) break;
      const u64 adv = stall_inst > inst ? stall_inst - inst : 0;
      inst += adv;
      remaining -= adv;
      now += adv * cpi_ticks_num_ / cpi_ticks_den_;
      now = std::max(now, rob.front().done);
      rob.pop_front();
    }
    inst += remaining;
    now += remaining * cpi_ticks_num_ / cpi_ticks_den_;

    if (rob.size() >= params_.mlp) {
      now = std::max(now, rob.front().done);
      rob.pop_front();
    }

    const Tick issue = now + params_.hierarchy_latency;
    const auto r = hmmc.access(rec.addr, rec.type, issue);
    rob.push_back({inst, r.complete});
    ++res.misses;
  }

  for (const auto& o : rob) now = std::max(now, o.done);
  hmmc.drain(now);

  res.instructions = inst;
  res.elapsed = now;
  return res;
}

}  // namespace bb::sim
