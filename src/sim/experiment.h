// Experiment runner: executes (design x workload) matrices, accumulates
// RunResults, and exports them as aligned text or CSV. The bench harnesses
// use it for their sweeps; downstream users get machine-readable results
// for plotting.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/system.h"

namespace bb::sim {

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SystemConfig cfg = SystemConfig{});

  /// Runs every (design, workload) pair. `instructions_for` may be null to
  /// use default_instructions_for with the given target misses.
  void run_matrix(const std::vector<std::string>& designs,
                  const std::vector<trace::WorkloadProfile>& workloads,
                  u64 target_misses = 200'000,
                  std::function<void(const RunResult&)> on_result = nullptr,
                  u64 min_instructions = 50'000'000,
                  u64 max_instructions = 400'000'000);

  /// Adds a single externally produced result.
  void add(const RunResult& r) { results_.push_back(r); }

  const std::vector<RunResult>& results() const { return results_; }

  /// All results for one design, in insertion order.
  std::vector<RunResult> for_design(const std::string& design) const;

  /// Results normalized per-workload against `baseline_design`'s rows;
  /// `metric` picks the value. Missing baseline rows are skipped.
  std::vector<std::pair<std::string, double>> normalized(
      const std::string& design, const std::string& baseline_design,
      double (*metric)(const RunResult&)) const;

  /// Writes every result as CSV (one row per run, fixed column set).
  void write_csv(std::ostream& os) const;

 private:
  SystemConfig cfg_;
  std::vector<RunResult> results_;
};

}  // namespace bb::sim
