// Experiment runner: executes (design x workload) matrices, accumulates
// RunResults, and exports them as aligned text or CSV. The bench harnesses
// use it for their sweeps; downstream users get machine-readable results
// for plotting.
//
// Matrices can run on a worker pool (RunMatrixOptions::jobs): every worker
// owns a private System (System::run leaks no state between runs), and
// finished cells commit back in matrix order — workload-major, design-minor
// — through indexed slots, so serial and parallel executions of the same
// matrix produce byte-identical results() and write_csv() output.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "bumblebee/config.h"
#include "common/prof.h"
#include "sim/mix.h"
#include "sim/system.h"

namespace bb::sim {

/// Checkpoint journal for long sweeps: one JSON object per completed cell,
/// appended as cells finish (wire RunMatrixOptions::on_result to
/// append_line on an O_APPEND stream). On restart, load() the file and pass
/// the journal via RunMatrixOptions::resume — finished cells are restored
/// from it instead of re-simulated.
///
/// Three line kinds share the file, distinguished by a "kind" key:
///   * plain RunResult lines (no kind, or "run") for matrix cells,
///   * "alone" lines caching a mix matrix's single-core IPC baselines,
///   * "mix" lines carrying a full (design, mix) MixResult.
class ResultJournal {
 public:
  struct LoadStats {
    std::size_t restored = 0;   ///< well-formed lines restored
    std::size_t malformed = 0;  ///< unparseable or incomplete lines skipped
  };

  /// Parses journal lines. Malformed lines (e.g. a truncated final line
  /// from a killed run) are counted and skipped, never fatal. When
  /// `well_formed` is non-null it collects every kept line verbatim, so a
  /// resuming caller can atomically rewrite a torn journal without the
  /// truncated tail.
  LoadStats load_stats(std::istream& is,
                       std::vector<std::string>* well_formed = nullptr);

  /// Back-compat wrapper around load_stats(); returns lines restored.
  std::size_t load(std::istream& is) { return load_stats(is).restored; }

  const RunResult* find(const std::string& design,
                        const std::string& workload) const;
  /// Journaled alone-run baseline IPC, or nullptr when absent.
  const double* find_alone(const std::string& design,
                           const std::string& workload) const;
  /// Journaled (design, mix) co-run cell, or nullptr when absent.
  const MixResult* find_mix(const std::string& design,
                            const std::string& mix) const;
  std::size_t size() const {
    return rows_.size() + alone_rows_.size() + mix_rows_.size();
  }

  /// Serializes one result as a single journal line (no newline). The line
  /// is the JSON object write_json emits for the run; the reliability
  /// fields are included only when any is nonzero.
  static std::string line(const RunResult& r);
  /// One alone-baseline journal line (kind "alone").
  static std::string alone_line(const std::string& design,
                                const std::string& workload, double ipc);
  /// One co-run cell journal line (kind "mix") — the same object
  /// write_mix_json emits for the cell.
  static std::string mix_line(const MixResult& r);

 private:
  struct AloneRow {
    std::string design;
    std::string workload;
    double ipc = 0;
  };
  std::vector<RunResult> rows_;
  std::vector<AloneRow> alone_rows_;
  std::vector<MixResult> mix_rows_;
};

/// Execution options for run_matrix / run_bumblebee_matrix.
struct RunMatrixOptions {
  /// Worker threads for the matrix. 0 = one per hardware thread; 1 runs the
  /// cells inline on the calling thread (the historical serial behavior).
  unsigned jobs = 0;
  /// Called once per completed cell, always in matrix order (workload-major,
  /// design-minor) regardless of which worker finished first. Invoked under
  /// the runner's commit lock, so it needs no synchronization of its own.
  /// Not called for cells restored from `resume` (they are already
  /// journaled).
  std::function<void(const RunResult&)> on_result;
  /// Emit a cells-done / elapsed / ETA line to stderr as cells complete.
  bool progress = false;
  /// Fixed per-cell instruction budget. 0 derives a per-workload budget
  /// from target_misses via default_instructions_for.
  u64 instructions = 0;
  u64 target_misses = 200'000;
  u64 min_instructions = 50'000'000;
  u64 max_instructions = 400'000'000;
  /// Checkpoint journal from an earlier (interrupted) run of the same
  /// matrix: cells found in it are restored, not re-simulated.
  const ResultJournal* resume = nullptr;
  /// Cooperative cancellation, polled between cells (e.g. a SIGINT flag).
  /// Once it returns true no new cell starts; parallel cells already
  /// running finish and still commit, keeping the journal well-formed.
  std::function<bool()> cancel;
  /// Mix matrices only: called per freshly simulated alone baseline
  /// (design, workload, ipc) in pair order — wire to
  /// ResultJournal::alone_line for checkpointing.
  std::function<void(const std::string&, const std::string&, double)>
      on_alone;
  /// Mix matrices only: called per freshly simulated co-run cell in matrix
  /// order (alongside on_result, which sees only the aggregate RunResult).
  std::function<void(const MixResult&)> on_mix_result;
  /// Watchdog: per-cell soft deadline in host seconds (0 = no deadline).
  /// A cell past the deadline is interrupted at a record boundary and
  /// retried — resuming from the snapshot the interrupted attempt left
  /// behind when SystemConfig::snapshot is configured — up to
  /// `cell_retries` times. When the retries are exhausted the cell commits
  /// as a `timed_out` placeholder row (all measurements zero) and the rest
  /// of the sweep continues.
  double cell_timeout_s = 0;
  u32 cell_retries = 1;
};

/// First unused quarantine path for a corrupt artifact: `path + ".corrupt"`,
/// then ".corrupt.1", ".corrupt.2", ... — an earlier quarantined file is
/// never overwritten.
std::string quarantine_name(const std::string& path);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SystemConfig cfg = SystemConfig{});

  /// Runs every (design, workload) pair, possibly in parallel (see
  /// RunMatrixOptions). Results append to results() in matrix order.
  void run_matrix(const std::vector<std::string>& designs,
                  const std::vector<trace::WorkloadProfile>& workloads,
                  const RunMatrixOptions& opts);

  /// Legacy serial overload (equivalent to opts.jobs = 1).
  void run_matrix(const std::vector<std::string>& designs,
                  const std::vector<trace::WorkloadProfile>& workloads,
                  u64 target_misses,
                  std::function<void(const RunResult&)> on_result = nullptr,
                  u64 min_instructions = 50'000'000,
                  u64 max_instructions = 400'000'000);

  /// Trace-replay matrix: every design replays the recorded binary trace
  /// at `replay.path` (see src/trace/stream.h). Results carry workload =
  /// `replay.label`. In streaming mode each worker opens its own bounded-
  /// memory StreamingTraceReader, so peak RSS is independent of trace
  /// length; memory mode loads the records once and replays them through
  /// TraceReplayer (the byte-identity reference path — both modes produce
  /// identical results, pinned by test). opts.instructions must be set: a
  /// trace has no MPKI to derive a budget from (trace_info(path)
  /// .inst_gap_total is the budget for exactly one pass). The trace is
  /// structurally validated up front; bad files throw trace::TraceError.
  struct ReplayMatrixOptions {
    std::string path;
    std::string label;      ///< result workload name (e.g. the file stem)
    bool streaming = true;  ///< false: whole-trace in-memory replay
    u32 v1_chunk_records = 4096;  ///< streaming read slice for v1 traces
  };
  void run_replay_matrix(const std::vector<std::string>& designs,
                         const ReplayMatrixOptions& replay,
                         const RunMatrixOptions& opts);

  /// Design-space exploration matrix: one cell per (labelled Bumblebee
  /// configuration, workload). Each result's design field is the label.
  void run_bumblebee_matrix(
      const std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>>&
          configs,
      const std::vector<trace::WorkloadProfile>& workloads,
      const RunMatrixOptions& opts);

  /// Multi-programmed mix matrix (see sim/mix.h). Two phases, both run on
  /// the worker pool with matrix-order commits so every output is
  /// byte-identical across --jobs values:
  ///   1. Alone baselines: each unique (design, workload) pair across the
  ///      mixes runs on one core with observability off, caching its IPC
  ///      in alone_ipc() (simulated once even if many mixes share it).
  ///   2. Co-runs: every (design, mix) cell via run_mix_cell. MixResults
  ///      append to mix_results(); each cell's aggregate RunResult also
  ///      appends to results(), so write_csv / write_json /
  ///      write_epoch_csv / write_trace cover mix runs unchanged.
  /// opts.instructions is the per-core budget; 0 derives one shared budget
  /// as the max default_instructions_for over every workload named by the
  /// mixes. opts.on_result fires per committed co-run aggregate.
  /// Checkpoint resume: opts.resume restores journaled "alone" baselines
  /// and "mix" cells (see ResultJournal) instead of re-simulating them;
  /// callbacks are skipped for restored entries.
  void run_mix_matrix(const std::vector<std::string>& designs,
                      const std::vector<MixSpec>& mixes,
                      const RunMatrixOptions& opts);

  const std::vector<MixResult>& mix_results() const { return mix_results_; }

  /// Alone-run IPC baselines accumulated by run_mix_matrix.
  const AloneIpcMap& alone_ipc() const { return alone_ipc_; }

  /// Writes one CSV row per (design, mix, core): the core's shared-run
  /// numbers, its alone-run baseline and speedup, plus the mix-level
  /// weighted/hmean speedup and max slowdown repeated on every row of the
  /// cell (keeps the file flat and greppable).
  void write_mix_csv(std::ostream& os) const;

  /// Writes mix_results() as a JSON array: mix-level scores, the full
  /// aggregate RunResult and the per-core breakdown.
  void write_mix_json(std::ostream& os) const;

  /// Adds a single externally produced result.
  void add(const RunResult& r) { results_.push_back(r); }

  const std::vector<RunResult>& results() const { return results_; }

  /// All results for one design, in insertion order.
  std::vector<RunResult> for_design(const std::string& design) const;

  /// Results normalized per-workload against `baseline_design`'s rows;
  /// `metric` picks the value. Missing baseline rows are skipped.
  std::vector<std::pair<std::string, double>> normalized(
      const std::string& design, const std::string& baseline_design,
      double (*metric)(const RunResult&)) const;

  /// Writes every result as CSV (one row per run, fixed column set).
  void write_csv(std::ostream& os) const;

  /// Writes every result as a JSON array, one object per run. Unlike the
  /// CSV this is the *full* RunResult, including the per-traffic-class
  /// byte counters (hbm_class_bytes / dram_class_bytes) the CSV flattens
  /// into single totals.
  void write_json(std::ostream& os) const;

  /// Profiled variant (bbsim --profile --json): wraps the plain array in
  /// {"runs": [...], "host": {...}} with the host-side performance report.
  /// The "runs" payload is byte-identical to write_json(os) — the host
  /// section never enters a golden-hashed stream, which only ever uses the
  /// plain overload.
  void write_json(std::ostream& os, const prof::HostReport& host) const;

  /// Profiled variant of write_mix_json, same wrapping contract.
  void write_mix_json(std::ostream& os, const prof::HostReport& host) const;

  /// Writes the epoch time-series of every run that carries artifacts as
  /// one flat CSV: design, workload, epoch, start/end tick, requests, then
  /// the union of all runs' metric columns (cells a run lacks stay empty).
  /// Rows appear in matrix order, so the file is --jobs independent.
  void write_epoch_csv(std::ostream& os) const;

  enum class TraceFormat { kJsonl, kChrome };

  /// Writes every run's trace events. kJsonl: one JSON object per event
  /// with design/workload stamped on each line. kChrome: a single Chrome
  /// trace_event document (Perfetto-loadable) with one process per run.
  void write_trace(std::ostream& os, TraceFormat format) const;

 private:
  /// One matrix cell: run design index `d` of the current matrix against
  /// `w` for `instr` instructions on the given (worker-private) System.
  using CellFn = std::function<RunResult(
      System&, std::size_t d, const trace::WorkloadProfile& w, u64 instr)>;
  /// Maps a design index to the name resume-journal rows are keyed by.
  using DesignNameFn = std::function<std::string(std::size_t)>;

  void run_cells(std::size_t n_designs,
                 const std::vector<trace::WorkloadProfile>& workloads,
                 const CellFn& cell, const DesignNameFn& design_name,
                 const RunMatrixOptions& opts);

  /// True when either device runs the request-queue layer — gates the
  /// queue stat columns so queue-off outputs keep their historical shape.
  bool queue_configured() const {
    return cfg_.hbm.queue.enabled || cfg_.dram.queue.enabled;
  }

  SystemConfig cfg_;
  std::vector<RunResult> results_;
  std::vector<MixResult> mix_results_;
  AloneIpcMap alone_ipc_;
};

}  // namespace bb::sim
