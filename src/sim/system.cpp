#include "sim/system.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bumblebee/controller.h"
#include "common/check.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "common/stats.h"

namespace bb::sim {

namespace {

/// Filesystem-safe token for snapshot file names (non-alphanumerics
/// collapse to '_'; collisions are harmless because the fingerprint
/// inside the file still pins the exact cell).
std::string sanitize_token(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9');
    out.push_back(ok ? ch : '_');
  }
  return out;
}

}  // namespace

System::System(SystemConfig cfg) : cfg_(std::move(cfg)) {}

void System::make_devices() {
  hbm_ = std::make_unique<mem::DramDevice>(cfg_.hbm);
  dram_ = std::make_unique<mem::DramDevice>(cfg_.dram);
  hbm_faults_.reset();
  dram_faults_.reset();
  if (cfg_.fault.enabled()) {
    hbm_faults_ = std::make_unique<fault::DeviceFaultState>(
        cfg_.fault, /*is_hbm=*/true, cfg_.seed);
    dram_faults_ = std::make_unique<fault::DeviceFaultState>(
        cfg_.fault, /*is_hbm=*/false, cfg_.seed);
    hbm_->attach_faults(hbm_faults_.get(), "hbm");
    dram_->attach_faults(dram_faults_.get(), "dram");
  }
}

RunResult System::run(const std::string& design,
                      const trace::WorkloadProfile& workload,
                      u64 instructions) {
  make_devices();
  hmmc_ = baselines::make_design(design, *hbm_, *dram_, cfg_.paging);
  return run_current(workload, instructions);
}

RunResult System::run_bumblebee(const bumblebee::BumblebeeConfig& cfg,
                                const trace::WorkloadProfile& workload,
                                u64 instructions) {
  make_devices();
  hmmc_ = std::make_unique<bumblebee::BumblebeeController>(cfg, *hbm_, *dram_,
                                                           cfg_.paging);
  return run_current(workload, instructions);
}

RunResult System::run_mix(const std::string& design,
                          const std::vector<CoreLane>& lanes,
                          const std::string& mix_name,
                          u64 per_core_instructions) {
  make_devices();
  hmmc_ = baselines::make_design(design, *hbm_, *dram_, cfg_.paging);
  return run_lanes_current(
      lanes, per_core_instructions * std::max<u64>(1, lanes.size()),
      mix_name, /*attach_core_perf=*/true);
}

RunResult System::run_current(const trace::WorkloadProfile& workload,
                              u64 instructions) {
  return run_lanes_current(
      CoreModel::homogeneous_lanes(workload, cfg_.seed, cfg_.core.cores),
      instructions, workload.name, /*attach_core_perf=*/false);
}

RunResult System::run_replay(const std::string& design,
                             trace::TraceSource& source,
                             const std::string& trace_name,
                             u64 instructions) {
  make_devices();
  hmmc_ = baselines::make_design(design, *hbm_, *dram_, cfg_.paging);
  // One lane: a captured trace already merges every core's traffic.
  return run_lanes_current(std::vector<CoreLane>(1), instructions, trace_name,
                           /*attach_core_perf=*/false, &source);
}

RunResult System::run_lanes_current(const std::vector<CoreLane>& lanes,
                                    u64 total_instructions,
                                    const std::string& workload_name,
                                    bool attach_core_perf,
                                    trace::TraceSource* replay) {
  CoreModel core(cfg_.core);
  core.set_capture(cfg_.capture);
  hmmc_->set_core_count(static_cast<u32>(lanes.size()));

  // Trace sources are built here rather than inside run_lanes so a
  // snapshot can save and restore their cursors alongside the rest of
  // the simulator state.
  BB_CHECK(!lanes.empty(), "a run needs at least one lane");
  std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
  std::vector<trace::TraceSource*> sources;
  std::vector<Addr> bases;
  if (replay != nullptr) {
    // One lane: a captured trace already merges every core's traffic.
    sources.push_back(replay);
    bases.push_back(0);
  } else {
    gens.reserve(lanes.size());
    sources.reserve(lanes.size());
    bases.reserve(lanes.size());
    for (const CoreLane& lane : lanes) {
      gens.push_back(
          std::make_unique<trace::TraceGenerator>(lane.profile, lane.seed));
      sources.push_back(gens.back().get());
      bases.push_back(lane.base);
    }
  }

  // Observability attachments (all per-run and buffered in memory, so the
  // run itself stays deterministic and jobs-independent).
  MemoryTraceSink sink;
  std::unique_ptr<EpochSampler> sampler;
  if (cfg_.obs.trace) hmmc_->set_trace_sink(&sink);
  if (cfg_.obs.epoch.enabled()) {
    MetricRegistry registry;
    hmmc_->register_metrics(registry);
    sampler = std::make_unique<EpochSampler>(cfg_.obs.epoch,
                                             std::move(registry));
    hmmc_->set_epoch_sampler(sampler.get());
  }

  const u64 warmup = static_cast<u64>(
      cfg_.warmup_ratio * static_cast<double>(total_instructions));

  // ---- crash-tolerance: snapshot path, fingerprint, restore ------------
  const bool snapshotting = cfg_.snapshot.configured();
  std::string snap_path;
  std::string fingerprint;
  if (snapshotting) {
    const char* kind = replay != nullptr    ? "replay"
                       : attach_core_perf   ? "mix"
                                            : "run";
    if (cfg_.capture != nullptr) {
      throw std::invalid_argument(
          "trace capture cannot be combined with snapshots");
    }
    if (!hmmc_->snapshot_supported()) {
      throw std::invalid_argument("design '" + hmmc_->name() +
                                  "' does not support snapshots");
    }
    for (const trace::TraceSource* src : sources) {
      if (!src->cursor_supported()) {
        throw std::invalid_argument(
            "trace source does not support snapshots");
      }
    }
    snap_path = cfg_.snapshot.dir + "/" + kind + "__" +
                sanitize_token(hmmc_->name()) + "__" +
                sanitize_token(workload_name) + ".bbsnap";
    // The fingerprint pins every configuration axis that shapes the run;
    // restoring under a different configuration fails closed.
    std::ostringstream fp;
    fp << kind << '|' << hmmc_->name() << '|' << workload_name << '|'
       << cfg_.seed << '|' << total_instructions << '|' << lanes.size()
       << '|' << warmup << '|' << cfg_.core.cores << '|' << cfg_.core.mlp
       << '|' << cfg_.core.rob_window << '|' << cfg_.core.freq_ghz << '|'
       << cfg_.hbm.capacity_bytes << '|' << cfg_.hbm.channels << '|'
       << cfg_.hbm.queue.enabled << '|' << cfg_.hbm.queue.timing_fixes
       << '|' << cfg_.dram.capacity_bytes << '|' << cfg_.dram.channels
       << '|' << cfg_.dram.queue.enabled << '|'
       << cfg_.dram.queue.timing_fixes << '|' << cfg_.paging.enabled << '|'
       << cfg_.paging.visible_bytes << '|' << cfg_.obs.epoch.every_requests
       << '|' << cfg_.obs.epoch.every_ticks << '|' << cfg_.obs.trace << '|'
       << cfg_.fault.enabled() << '|' << cfg_.fault.seed;
    fingerprint = fp.str();
  }

  RunLoopState resume_state;
  RunControl control;
  const bool want_restore = snapshotting &&
                            (cfg_.snapshot.restore || restore_once_) &&
                            snap::file_exists(snap_path);
  restore_once_ = false;
  if (want_restore) {
    // Load order mirrors the checkpoint's save order exactly; every layer
    // fails closed (SnapshotError) on a shape or presence mismatch.
    snap::Reader r(snap_path);
    if (r.get_str() != fingerprint) {
      throw snap::SnapshotError(
          "snapshot does not match this run's configuration: " + snap_path);
    }
    resume_state.load(r);
    for (trace::TraceSource* src : sources) src->load_cursor(r);
    hbm_->load(r);
    dram_->load(r);
    const bool had_hbm_faults = r.get_u8() != 0;
    const bool had_dram_faults = r.get_u8() != 0;
    if (had_hbm_faults != (hbm_faults_ != nullptr) ||
        had_dram_faults != (dram_faults_ != nullptr)) {
      throw snap::SnapshotError("fault-model presence mismatch");
    }
    if (hbm_faults_) hbm_faults_->load(r);
    if (dram_faults_) dram_faults_->load(r);
    hmmc_->load_state(r);
    const bool had_sampler = r.get_u8() != 0;
    if (had_sampler != (sampler != nullptr)) {
      throw snap::SnapshotError("epoch-sampler presence mismatch");
    }
    if (sampler) sampler->load(r);
    const bool had_sink = r.get_u8() != 0;
    if (had_sink != cfg_.obs.trace) {
      throw snap::SnapshotError("trace-sink presence mismatch");
    }
    if (cfg_.obs.trace) sink.load(r);
    if (!r.at_end()) {
      throw snap::SnapshotError("trailing bytes after snapshot payload");
    }
    control.resume = &resume_state;
  }

  if (snapshotting && cfg_.snapshot.interval_records > 0) {
    control.checkpoint_every_records = cfg_.snapshot.interval_records;
    control.on_checkpoint = [&](const RunLoopState& ls) {
      snap::Writer w;
      w.put_str(fingerprint);
      ls.save(w);
      for (const trace::TraceSource* src : sources) src->save_cursor(w);
      hbm_->save(w);
      dram_->save(w);
      w.put_u8(hbm_faults_ ? 1 : 0);
      w.put_u8(dram_faults_ ? 1 : 0);
      if (hbm_faults_) hbm_faults_->save(w);
      if (dram_faults_) dram_faults_->save(w);
      hmmc_->save_state(w);
      w.put_u8(sampler ? 1 : 0);
      if (sampler) sampler->save(w);
      w.put_u8(cfg_.obs.trace ? 1 : 0);
      if (cfg_.obs.trace) sink.save(w);
      w.commit(snap_path);
    };
  }
  control.interrupted = interrupt_;

  // The control block costs one branch per 64 Ki records; skip it entirely
  // when neither snapshots nor a watchdog are in play so the hot path is
  // bit-for-bit the historical loop.
  const RunControl* ctrl = (snapshotting || interrupt_) ? &control : nullptr;
  const CoreResult cr = core.run_sources(sources, bases, total_instructions,
                                         *hmmc_, warmup, ctrl);

  if (snapshotting) {
    // The run completed: its snapshot (and any torn temp file) is spent.
    std::remove(snap_path.c_str());
    std::remove((snap_path + ".tmp").c_str());
  }

  if (sampler) sampler->finish();
  hmmc_->set_epoch_sampler(nullptr);
  hmmc_->set_trace_sink(nullptr);

  // Everything below is end-of-run stats assembly: host-side profiling
  // bills it to stats-commit. No prof value feeds the RunResult fields.
  prof::ScopedPhase prof_phase(prof::Phase::kStatsCommit);

  RunResult out;
  out.design = hmmc_->name();
  out.workload = workload_name;
  out.instructions = cr.instructions;
  out.misses = cr.misses;
  out.ipc = cr.ipc(cfg_.core.freq_ghz);

  const auto& hs = hbm_->stats();
  const auto& ds = dram_->stats();
  out.hbm_bytes = hs.total_bytes();
  out.dram_bytes = ds.total_bytes();
  for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
    out.hbm_class_bytes[c] = hs.read_bytes[c] + hs.write_bytes[c];
    out.dram_class_bytes[c] = ds.read_bytes[c] + ds.write_bytes[c];
  }
  out.energy_mj =
      (hbm_->energy().dynamic_pj() + dram_->energy().dynamic_pj()) * 1e-9;

  const auto& ms = hmmc_->stats();
  out.hbm_serve_rate = ms.hbm_serve_rate();
  out.mean_latency_ns = ms.mean_latency_ns();
  out.latency_p50_ns = ms.latency_ns.quantile(0.50);
  out.latency_p90_ns = ms.latency_ns.quantile(0.90);
  out.latency_p99_ns = ms.latency_ns.quantile(0.99);
  out.latency_p999_ns = ms.latency_ns.quantile(0.999);
  out.mal_fraction = ms.mal_fraction();
  out.overfetch = ms.overfetch_fraction();
  out.page_faults = hmmc_->paging().stats().faults;
  out.metadata_sram_bytes = hmmc_->metadata_sram_bytes();

  if (hbm_->queue_stats() != nullptr || dram_->queue_stats() != nullptr) {
    // Aggregate both devices' scheduler stats into one request-weighted
    // view (a device without queues contributes nothing).
    mem::QueueStats q;
    for (const mem::QueueStats* s :
         {hbm_->queue_stats(), dram_->queue_stats()}) {
      if (s == nullptr) continue;
      q.reads_issued += s->reads_issued;
      q.reads_coalesced += s->reads_coalesced;
      q.writes_enqueued += s->writes_enqueued;
      q.writes_drained += s->writes_drained;
      q.write_drain_count += s->write_drain_count;
      q.write_queue_full_stalls += s->write_queue_full_stalls;
      q.queueing_latency_sum += s->queueing_latency_sum;
      q.read_queue_latency_sum += s->read_queue_latency_sum;
      q.req_queue_length_sum += s->req_queue_length_sum;
      q.queue_length_samples += s->queue_length_samples;
    }
    out.queueing_latency_avg = q.queueing_latency_avg_ns();
    out.read_queue_latency_avg = q.read_queue_latency_avg_ns();
    out.req_queue_length_avg = q.req_queue_length_avg();
    out.write_drain_count = q.write_drain_count;
  }

  out.ce_count = hs.ce_count + ds.ce_count;
  out.ue_count = hs.ue_count + ds.ue_count;
  out.due_retries = ms.due_retries;
  out.due_unrecovered = ms.due_unrecovered;
  out.due_data_loss = ms.due_data_loss;
  if (hbm_faults_) out.retired_rows += hbm_faults_->retired_rows();
  if (dram_faults_) out.retired_rows += dram_faults_->retired_rows();
  const hmm::FaultPosture posture = hmmc_->fault_posture();
  out.retired_frames = posture.retired_frames;
  out.degraded_sets = posture.degraded_sets;

  if (cfg_.obs.enabled()) {
    auto art = std::make_shared<RunArtifacts>();
    if (sampler) {
      art->epoch_columns = sampler->registry().names();
      art->epochs = sampler->rows();
    }
    art->events = sink.take();
    out.artifacts = std::move(art);
  }

  if (attach_core_perf) {
    const auto& core_stats = hmmc_->core_stats();
    auto perf = std::make_shared<std::vector<CorePerf>>();
    u64 req_sum = 0, served_sum = 0, inst_sum = 0, miss_sum = 0;
    u64 hbm_byte_sum = 0, dram_byte_sum = 0;
    Tick latency_sum = 0;
    for (std::size_t c = 0; c < lanes.size(); ++c) {
      CorePerf p;
      p.core = static_cast<u32>(c);
      p.workload = lanes[c].profile.name;
      p.instructions = cr.per_core[c].instructions;
      p.misses = cr.per_core[c].misses;
      p.ipc = cr.per_core[c].ipc(cfg_.core.freq_ghz);
      inst_sum += p.instructions;
      miss_sum += p.misses;
      if (c < core_stats.size()) {
        const hmm::CoreStats& cs = core_stats[c];
        p.hbm_serve_rate = cs.hbm_serve_rate();
        p.mean_latency_ns = cs.mean_latency_ns();
        p.latency_p50_ns = cs.latency_ns.quantile(0.50);
        p.latency_p99_ns = cs.latency_ns.quantile(0.99);
        p.hbm_bytes = cs.hbm_bytes();
        p.dram_bytes = cs.dram_bytes();
        req_sum += cs.requests;
        served_sum += cs.hbm_served;
        latency_sum += cs.total_latency;
        hbm_byte_sum += p.hbm_bytes;
        dram_byte_sum += p.dram_bytes;
      }
      perf->push_back(std::move(p));
    }
    // Attribution must conserve the aggregate counters: every measured
    // request, HBM-served request and latency tick belongs to exactly one
    // core; instructions/misses partition across lanes. Device bytes are
    // charged by causation, so their per-core sums are bounded by the
    // device totals (end-of-run drain traffic has no causing core).
    BB_CHECK(req_sum == ms.requests,
             "per-core request counts must sum to the aggregate");
    BB_CHECK(served_sum == ms.hbm_served,
             "per-core HBM-served counts must sum to the aggregate");
    BB_CHECK(latency_sum == ms.total_latency,
             "per-core latency must sum to the aggregate");
    BB_CHECK(inst_sum == cr.instructions,
             "per-core instructions must partition the total");
    BB_CHECK(miss_sum == cr.misses,
             "per-core misses must partition the total");
    BB_CHECK(hbm_byte_sum <= out.hbm_bytes,
             "per-core HBM bytes cannot exceed the device total");
    BB_CHECK(dram_byte_sum <= out.dram_bytes,
             "per-core DRAM bytes cannot exceed the device total");
    // Checked builds consume the sums above; keep release builds quiet.
    (void)req_sum;
    (void)served_sum;
    (void)latency_sum;
    (void)inst_sum;
    (void)miss_sum;
    (void)hbm_byte_sum;
    (void)dram_byte_sum;
    out.core_perf = std::move(perf);
  }
  return out;
}

GroupedMetric group_by_mpki(const std::vector<RunResult>& results,
                            const std::vector<RunResult>& baseline,
                            double (*metric)(const RunResult&)) {
  std::map<std::string, const RunResult*> base_by_workload;
  for (const auto& b : baseline) base_by_workload[b.workload] = &b;

  std::vector<double> high, medium, low, all;
  for (const auto& r : results) {
    const auto it = base_by_workload.find(r.workload);
    if (it == base_by_workload.end()) continue;
    const double denom = metric(*it->second);
    if (denom <= 0) continue;
    const double v = metric(r) / denom;
    const auto& prof = trace::WorkloadProfile::by_name(r.workload);
    switch (prof.mpki_class) {
      case trace::MpkiClass::kHigh: high.push_back(v); break;
      case trace::MpkiClass::kMedium: medium.push_back(v); break;
      case trace::MpkiClass::kLow: low.push_back(v); break;
    }
    all.push_back(v);
  }
  GroupedMetric g;
  g.high = geomean(high);
  g.medium = geomean(medium);
  g.low = geomean(low);
  g.all = geomean(all);
  return g;
}

GroupedMetric group_by_mpki_sums(const std::vector<RunResult>& results,
                                 const std::vector<RunResult>& baseline,
                                 double (*metric)(const RunResult&)) {
  std::map<std::string, const RunResult*> base_by_workload;
  for (const auto& b : baseline) base_by_workload[b.workload] = &b;

  double num[4] = {0, 0, 0, 0};  // high, medium, low, all
  double den[4] = {0, 0, 0, 0};
  for (const auto& r : results) {
    const auto it = base_by_workload.find(r.workload);
    if (it == base_by_workload.end()) continue;
    const auto& prof = trace::WorkloadProfile::by_name(r.workload);
    const int g = prof.mpki_class == trace::MpkiClass::kHigh     ? 0
                  : prof.mpki_class == trace::MpkiClass::kMedium ? 1
                                                                 : 2;
    num[g] += metric(r);
    den[g] += metric(*it->second);
    num[3] += metric(r);
    den[3] += metric(*it->second);
  }
  GroupedMetric out;
  out.high = den[0] > 0 ? num[0] / den[0] : 0;
  out.medium = den[1] > 0 ? num[1] / den[1] : 0;
  out.low = den[2] > 0 ? num[2] / den[2] : 0;
  out.all = den[3] > 0 ? num[3] / den[3] : 0;
  return out;
}

double metric_ipc(const RunResult& r) { return r.ipc; }
double metric_hbm_traffic(const RunResult& r) {
  return static_cast<double>(r.hbm_bytes);
}
double metric_dram_traffic(const RunResult& r) {
  return static_cast<double>(r.dram_bytes);
}
double metric_energy(const RunResult& r) { return r.energy_mj; }

u64 default_instructions_for(const trace::WorkloadProfile& w,
                             u64 target_misses, u64 min_instructions,
                             u64 max_instructions) {
  const double inst =
      static_cast<double>(target_misses) * 1000.0 / w.mpki;
  u64 budget = static_cast<u64>(inst);
  budget = std::clamp(budget, min_instructions, max_instructions);
  const u64 scale_pct = env_u64("BB_SIM_SCALE", 100);
  budget = budget * scale_pct / 100;
  return std::max<u64>(budget, 1'000'000);
}

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<u64>(parsed);
}

}  // namespace bb::sim
