// Trace-driven core timing model.
//
// Replays an LLC-miss stream against a memory controller with the standard
// limited-MLP / bounded-ROB stall model:
//   * non-memory work retires at a fixed base CPI (4-wide A72-class core);
//   * up to `mlp` LLC misses may be outstanding concurrently;
//   * the core may run at most `rob_window` instructions past the oldest
//     outstanding miss before it must stall on it (an isolated miss
//     therefore exposes its full memory latency; bursty misses overlap).
//
// Requests are issued to the controller at the core's current time, so
// concurrent misses genuinely contend inside the DRAM bank/bus model.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/types.h"
#include "hmm/controller.h"
#include "trace/generator.h"

namespace bb::trace {
class TraceCaptureSink;
}  // namespace bb::trace

namespace bb::sim {

struct CoreParams {
  double freq_ghz = 3.6;      ///< Table I: ARM A72 @ 3600 MHz
  double base_cpi = 0.25;     ///< 4-wide issue for non-memory work
  u32 cores = 4;              ///< cores sharing the LLC and memory system
  u32 mlp = 8;                ///< outstanding LLC misses per core
  u32 rob_window = 320;       ///< instructions a core can run ahead
  Tick hierarchy_latency = ns_to_ticks(15.0);  ///< L1+L2+L3 lookup on a miss
};

/// One core's workload assignment in a (possibly heterogeneous) co-run.
struct CoreLane {
  trace::WorkloadProfile profile;
  u64 seed = 0;   ///< this lane's generator seed
  /// Address-space offset added to every generated address. Disjoint bases
  /// give each lane its own process footprint (multi-programmed mixes);
  /// base 0 everywhere shares one address space (the homogeneous model).
  Addr base = 0;
};

/// Serializable state of an in-flight run_sources loop: everything the
/// loop itself owns — per-core clocks, instruction cursors and ROBs, plus
/// the aggregate instruction/miss cursors and the warmup posture. Trace
/// source positions and memory-system state are serialized separately by
/// their owners; together they reconstruct the run bit-exactly.
struct RunLoopState {
  struct Core {
    Tick now = 0;
    u64 inst = 0;
    u64 misses = 0;          ///< misses since the warmup reset
    u64 inst_at_reset = 0;   ///< instruction count at the warmup reset
    std::deque<std::pair<u64, Tick>> rob;  ///< (inst at issue, completion)
  };
  std::vector<Core> cores;
  u64 total_inst = 0;
  u64 measured_misses = 0;
  u64 inst_at_reset = 0;
  Tick tick_at_reset = 0;
  bool warm = false;
  u64 records = 0;  ///< trace records consumed (checkpoint cadence)

  void save(snap::Writer& w) const;
  void load(snap::Reader& r);
};

/// Thrown out of run_sources when RunControl::interrupted() reports true
/// at a record boundary — the matrix watchdog's soft-deadline signal. The
/// loop state at the throw is whatever the last checkpoint captured.
struct RunInterrupted {};

/// Checkpoint / resume / interrupt hooks for run_sources. Every callback
/// fires at record boundaries only, so a checkpoint always captures a
/// consistent state (never a half-applied request).
struct RunControl {
  /// Invoke on_checkpoint every N consumed records (0 = never).
  u64 checkpoint_every_records = 0;
  std::function<void(const RunLoopState&)> on_checkpoint;
  /// Resume from this state instead of starting fresh.
  const RunLoopState* resume = nullptr;
  /// Polled at checkpoint cadence (or every 64 Ki records when
  /// checkpointing is off); returning true aborts via RunInterrupted.
  std::function<bool()> interrupted;
};

struct CoreResult {
  u64 instructions = 0;  ///< total across all cores
  u64 misses = 0;
  Tick elapsed = 0;      ///< slowest core's finish time

  /// Per-core breakdown (lane order), measured over the same window.
  struct PerCore {
    u64 instructions = 0;
    u64 misses = 0;
    Tick elapsed = 0;  ///< this core's own finish time

    double ipc(double freq_ghz) const {
      const double c = ticks_to_s(elapsed) * freq_ghz * 1e9;
      return c > 0 ? static_cast<double>(instructions) / c : 0.0;
    }
  };
  std::vector<PerCore> per_core;  ///< filled by the lane-based runs

  double cycles(double freq_ghz) const {
    return ticks_to_s(elapsed) * freq_ghz * 1e9;
  }
  /// Aggregate IPC: total instructions across all cores divided by the
  /// elapsed cycles of the slowest core (the definition the comparison
  /// figures use; per-core IPC lives in PerCore::ipc). Pinned by
  /// CoreModelTest.IpcIsAggregateInstructionsOverElapsedCycles.
  double ipc(double freq_ghz) const {
    const double c = cycles(freq_ghz);
    return c > 0 ? static_cast<double>(instructions) / c : 0.0;
  }
};

class CoreModel {
 public:
  explicit CoreModel(const CoreParams& params = CoreParams{});

  /// Runs `cores` independent miss streams (one generator per core, same
  /// profile, distinct seeds) against the shared memory system until the
  /// cores together retire `target_instructions`. Cores advance in
  /// simulated-time order, so their requests genuinely interleave and
  /// contend inside the device models.
  ///
  /// `warmup_instructions` are executed first; when they complete, the
  /// statistics of the controller and both devices are reset so the
  /// returned result (and all traffic/energy counters) cover only the
  /// measurement window — the paper's numbers are steady-state.
  CoreResult run(const trace::WorkloadProfile& profile, u64 seed,
                 u64 target_instructions, hmm::HybridMemoryController& hmmc,
                 u64 warmup_instructions = 0);

  /// Heterogeneous co-run: one lane (profile + seed + address base) per
  /// core, advanced in simulated-time order against the shared memory
  /// system until the lanes together retire `target_instructions`. Each
  /// request carries its lane index as the controller core id, so the
  /// memory system attributes misses, latency and bytes per core. The
  /// homogeneous run() above is exactly this with homogeneous_lanes().
  CoreResult run_lanes(const std::vector<CoreLane>& lanes,
                       u64 target_instructions,
                       hmm::HybridMemoryController& hmmc,
                       u64 warmup_instructions = 0);

  /// Generalized lane run over abstract record sources: one TraceSource
  /// per core (synthetic generator or trace replayer), with `bases[i]`
  /// added to every address source i produces. run_lanes is exactly this
  /// with freshly seeded generators, so both paths share one replay loop
  /// and stay bit-identical. `sources` must be non-empty and sized like
  /// `bases`; the sources must outlive the call.
  /// `control` (optional) adds checkpoint/resume/interrupt behavior —
  /// see RunControl; the hot loop is unchanged when it is null.
  CoreResult run_sources(const std::vector<trace::TraceSource*>& sources,
                         const std::vector<Addr>& bases,
                         u64 target_instructions,
                         hmm::HybridMemoryController& hmmc,
                         u64 warmup_instructions = 0,
                         const RunControl* control = nullptr);

  /// Attaches a capture sink: every record consumed by run_sources /
  /// run_lanes (warmup included) is appended with its lane base folded
  /// into the address, i.e. exactly the merged absolute-address stream the
  /// memory system saw. nullptr detaches. The sink must outlive the runs.
  void set_capture(trace::TraceCaptureSink* capture) { capture_ = capture; }

  /// The lane set the homogeneous run() replays: `cores` copies of one
  /// profile with distinct derived seeds, all sharing address base 0.
  static std::vector<CoreLane> homogeneous_lanes(
      const trace::WorkloadProfile& profile, u64 seed, u32 cores);

  /// Single-stream convenience (cores = 1 behaviour) used by unit tests.
  CoreResult run(trace::TraceGenerator& gen, u64 target_instructions,
                 hmm::HybridMemoryController& hmmc);

  const CoreParams& params() const { return params_; }

 private:
  struct Outstanding {
    u64 inst;   ///< instruction index at issue
    Tick done;  ///< completion tick
  };

  CoreParams params_;
  Tick cpi_ticks_num_;  ///< base CPI in ticks, as a rational (num/denom)
  Tick cpi_ticks_den_;
  trace::TraceCaptureSink* capture_ = nullptr;
};

}  // namespace bb::sim
