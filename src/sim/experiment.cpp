#include "sim/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace bb::sim {

namespace {

void append_class_object(std::string& out,
                         const std::array<u64, mem::kTrafficClassCount>&
                             bytes) {
  out += '{';
  for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
    if (c) out += ',';
    out += '"';
    out += mem::to_string(static_cast<mem::TrafficClass>(c));
    out += "\":";
    out += std::to_string(bytes[c]);
  }
  out += '}';
}

/// One result as a single-line JSON object — the element format of
/// write_json and the line format of the checkpoint journal.
std::string result_to_json(const RunResult& r) {
  std::string out = "{";
  out += "\"design\":\"" + json_escape(r.design) + "\",";
  out += "\"workload\":\"" + json_escape(r.workload) + "\",";
  out += "\"instructions\":" + std::to_string(r.instructions) + ',';
  out += "\"misses\":" + std::to_string(r.misses) + ',';
  out += "\"ipc\":" + json_double(r.ipc) + ',';
  out += "\"hbm_bytes\":" + std::to_string(r.hbm_bytes) + ',';
  out += "\"dram_bytes\":" + std::to_string(r.dram_bytes) + ',';
  out += "\"energy_mj\":" + json_double(r.energy_mj) + ',';
  out += "\"hbm_serve_rate\":" + json_double(r.hbm_serve_rate) + ',';
  out += "\"mean_latency_ns\":" + json_double(r.mean_latency_ns) + ',';
  out += "\"latency_p50_ns\":" + json_double(r.latency_p50_ns) + ',';
  out += "\"latency_p90_ns\":" + json_double(r.latency_p90_ns) + ',';
  out += "\"latency_p99_ns\":" + json_double(r.latency_p99_ns) + ',';
  out += "\"latency_p999_ns\":" + json_double(r.latency_p999_ns) + ',';
  out += "\"mal_fraction\":" + json_double(r.mal_fraction) + ',';
  out += "\"overfetch\":" + json_double(r.overfetch) + ',';
  out += "\"page_faults\":" + std::to_string(r.page_faults) + ',';
  out += "\"metadata_sram_bytes\":" + std::to_string(r.metadata_sram_bytes) +
         ',';
  out += "\"hbm_class_bytes\":";
  append_class_object(out, r.hbm_class_bytes);
  out += ",\"dram_class_bytes\":";
  append_class_object(out, r.dram_class_bytes);
  out += '}';
  return out;
}

}  // namespace

std::size_t ResultJournal::load(std::istream& is) {
  std::size_t restored = 0;
  std::string line_text;
  while (std::getline(is, line_text)) {
    if (line_text.empty()) continue;
    JsonValue v;
    if (!json_parse(line_text, v) || !v.is_object()) continue;
    RunResult r;
    r.design = v.get_string("design");
    r.workload = v.get_string("workload");
    if (r.design.empty() || r.workload.empty()) continue;
    r.instructions = static_cast<u64>(v.get_number("instructions"));
    r.misses = static_cast<u64>(v.get_number("misses"));
    r.ipc = v.get_number("ipc");
    r.hbm_bytes = static_cast<u64>(v.get_number("hbm_bytes"));
    r.dram_bytes = static_cast<u64>(v.get_number("dram_bytes"));
    r.energy_mj = v.get_number("energy_mj");
    r.hbm_serve_rate = v.get_number("hbm_serve_rate");
    r.mean_latency_ns = v.get_number("mean_latency_ns");
    r.latency_p50_ns = v.get_number("latency_p50_ns");
    r.latency_p90_ns = v.get_number("latency_p90_ns");
    r.latency_p99_ns = v.get_number("latency_p99_ns");
    r.latency_p999_ns = v.get_number("latency_p999_ns");
    r.mal_fraction = v.get_number("mal_fraction");
    r.overfetch = v.get_number("overfetch");
    r.page_faults = static_cast<u64>(v.get_number("page_faults"));
    r.metadata_sram_bytes =
        static_cast<u64>(v.get_number("metadata_sram_bytes"));
    const auto load_classes =
        [&v](const char* key,
             std::array<u64, mem::kTrafficClassCount>& out) {
          const JsonValue* obj = v.find(key);
          if (!obj || !obj->is_object()) return;
          for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
            out[c] = static_cast<u64>(obj->get_number(
                mem::to_string(static_cast<mem::TrafficClass>(c))));
          }
        };
    load_classes("hbm_class_bytes", r.hbm_class_bytes);
    load_classes("dram_class_bytes", r.dram_class_bytes);
    rows_.push_back(std::move(r));
    ++restored;
  }
  return restored;
}

const RunResult* ResultJournal::find(const std::string& design,
                                     const std::string& workload) const {
  // Last line wins, in case an interrupted run journaled a cell twice.
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->design == design && it->workload == workload) return &*it;
  }
  return nullptr;
}

std::string ResultJournal::line(const RunResult& r) {
  return result_to_json(r);
}

ExperimentRunner::ExperimentRunner(SystemConfig cfg) : cfg_(std::move(cfg)) {}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads,
    const RunMatrixOptions& opts) {
  run_cells(
      designs.size(), workloads,
      [&designs](System& system, std::size_t d,
                 const trace::WorkloadProfile& w, u64 instr) {
        return system.run(designs[d], w, instr);
      },
      [&designs](std::size_t d) { return designs[d]; }, opts);
}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads, u64 target_misses,
    std::function<void(const RunResult&)> on_result, u64 min_instructions,
    u64 max_instructions) {
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.on_result = std::move(on_result);
  opts.target_misses = target_misses;
  opts.min_instructions = min_instructions;
  opts.max_instructions = max_instructions;
  run_matrix(designs, workloads, opts);
}

void ExperimentRunner::run_bumblebee_matrix(
    const std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>>&
        configs,
    const std::vector<trace::WorkloadProfile>& workloads,
    const RunMatrixOptions& opts) {
  run_cells(
      configs.size(), workloads,
      [&configs](System& system, std::size_t d,
                 const trace::WorkloadProfile& w, u64 instr) {
        RunResult r = system.run_bumblebee(configs[d].second, w, instr);
        r.design = configs[d].first;
        return r;
      },
      [&configs](std::size_t d) { return configs[d].first; }, opts);
}

void ExperimentRunner::run_cells(
    std::size_t n_designs, const std::vector<trace::WorkloadProfile>& workloads,
    const CellFn& cell, const DesignNameFn& design_name,
    const RunMatrixOptions& opts) {
  const std::size_t total = n_designs * workloads.size();
  if (total == 0) return;

  // Resume: cells present in the journal are restored, not re-simulated.
  // on_result is skipped for them (they are already journaled).
  auto restored_cell = [&](std::size_t d,
                           std::size_t w) -> const RunResult* {
    if (!opts.resume) return nullptr;
    return opts.resume->find(design_name(d), workloads[w].name);
  };

  std::vector<u64> instr(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    instr[i] = opts.instructions
                   ? opts.instructions
                   : default_instructions_for(workloads[i], opts.target_misses,
                                              opts.min_instructions,
                                              opts.max_instructions);
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto report = [&](std::size_t done) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total - done)
             : 0.0;
    std::fprintf(stderr, "[matrix] %zu/%zu cells, %.1fs elapsed, ETA %.1fs\n",
                 done, total, elapsed, eta);
  };

  unsigned jobs = opts.jobs ? opts.jobs : ThreadPool::default_concurrency();
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, total));

  if (jobs <= 1) {
    System system(cfg_);
    std::size_t done = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      for (std::size_t d = 0; d < n_designs; ++d) {
        if (const RunResult* prior = restored_cell(d, w)) {
          if (opts.progress) report(++done);
          results_.push_back(*prior);
          continue;
        }
        RunResult r = cell(system, d, workloads[w], instr[w]);
        if (opts.progress) report(++done);
        if (opts.on_result) opts.on_result(r);
        results_.push_back(std::move(r));
      }
    }
    return;
  }

  // Parallel path: workers claim cells dynamically but commit them through
  // indexed slots in matrix order, so results_ (and therefore write_csv)
  // are byte-identical to a serial run. on_result also fires in matrix
  // order, under the commit lock.
  std::vector<std::unique_ptr<System>> systems;
  systems.reserve(jobs);
  for (unsigned j = 0; j < jobs; ++j) {
    systems.push_back(std::make_unique<System>(cfg_));
  }

  std::vector<RunResult> slots(total);
  std::vector<char> ready(total, 0);
  std::vector<char> restored(total, 0);
  std::mutex mu;
  std::size_t committed = 0;
  std::size_t completed = 0;

  ThreadPool pool(jobs);
  pool.parallel_for(total, [&](std::size_t i, unsigned worker) {
    const std::size_t w = i / n_designs;
    const std::size_t d = i % n_designs;
    RunResult r;
    bool from_journal = false;
    if (const RunResult* prior = restored_cell(d, w)) {
      r = *prior;
      from_journal = true;
    } else {
      r = cell(*systems[worker], d, workloads[w], instr[w]);
    }

    std::lock_guard<std::mutex> lk(mu);
    slots[i] = std::move(r);
    ready[i] = 1;
    restored[i] = from_journal ? 1 : 0;
    if (opts.progress) report(++completed);
    while (committed < total && ready[committed]) {
      if (opts.on_result && !restored[committed]) {
        opts.on_result(slots[committed]);
      }
      results_.push_back(std::move(slots[committed]));
      ++committed;
    }
  });
}

std::vector<RunResult> ExperimentRunner::for_design(
    const std::string& design) const {
  std::vector<RunResult> out;
  for (const auto& r : results_) {
    if (r.design == design) out.push_back(r);
  }
  return out;
}

std::vector<std::pair<std::string, double>> ExperimentRunner::normalized(
    const std::string& design, const std::string& baseline_design,
    double (*metric)(const RunResult&)) const {
  std::map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.design == baseline_design) base[r.workload] = metric(r);
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& r : results_) {
    if (r.design != design) continue;
    const auto it = base.find(r.workload);
    if (it == base.end() || it->second <= 0) continue;
    out.emplace_back(r.workload, metric(r) / it->second);
  }
  return out;
}

void ExperimentRunner::write_csv(std::ostream& os) const {
  TextTable t({"design", "workload", "instructions", "misses", "ipc",
               "hbm_bytes", "dram_bytes", "energy_mj", "hbm_serve_rate",
               "mean_latency_ns", "latency_p50_ns", "latency_p90_ns",
               "latency_p99_ns", "latency_p999_ns", "mal_fraction",
               "overfetch", "page_faults", "metadata_sram_bytes"});
  for (const auto& r : results_) {
    t.add_row({r.design, r.workload, std::to_string(r.instructions),
               std::to_string(r.misses), fmt_double(r.ipc, 4),
               std::to_string(r.hbm_bytes), std::to_string(r.dram_bytes),
               fmt_double(r.energy_mj, 4), fmt_double(r.hbm_serve_rate, 4),
               fmt_double(r.mean_latency_ns, 2),
               fmt_double(r.latency_p50_ns, 2),
               fmt_double(r.latency_p90_ns, 2),
               fmt_double(r.latency_p99_ns, 2),
               fmt_double(r.latency_p999_ns, 2),
               fmt_double(r.mal_fraction, 4), fmt_double(r.overfetch, 4),
               std::to_string(r.page_faults),
               std::to_string(r.metadata_sram_bytes)});
  }
  t.print_csv(os);
}

void ExperimentRunner::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    os << "  " << result_to_json(results_[i])
       << (i + 1 < results_.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

void ExperimentRunner::write_epoch_csv(std::ostream& os) const {
  // Union of all runs' metric columns, in first-seen (matrix) order, so
  // mixed matrices (e.g. DRAM-only next to Bumblebee, which adds remap
  // metrics) share one header.
  std::vector<std::string> columns;
  for (const auto& r : results_) {
    if (!r.artifacts) continue;
    for (const auto& name : r.artifacts->epoch_columns) {
      if (std::find(columns.begin(), columns.end(), name) == columns.end()) {
        columns.push_back(name);
      }
    }
  }
  write_epoch_csv_header(os, {"design", "workload"}, columns);
  for (const auto& r : results_) {
    if (!r.artifacts) continue;
    write_epoch_csv_rows(os, {r.design, r.workload},
                         r.artifacts->epoch_columns, columns,
                         r.artifacts->epochs);
  }
}

void ExperimentRunner::write_trace(std::ostream& os,
                                   TraceFormat format) const {
  if (format == TraceFormat::kJsonl) {
    for (const auto& r : results_) {
      if (!r.artifacts) continue;
      const std::string extra = "\"design\":\"" + json_escape(r.design) +
                                "\",\"workload\":\"" +
                                json_escape(r.workload) + "\",";
      write_trace_jsonl(r.artifacts->events, os, extra);
    }
    return;
  }
  // Chrome trace_event: one process per run so Perfetto shows each
  // (design, workload) cell as its own named track.
  write_trace_chrome_header(os);
  bool first = true;
  u64 pid = 0;
  for (const auto& r : results_) {
    if (!r.artifacts) continue;
    write_trace_chrome_events(r.artifacts->events, os, pid,
                              r.design + " / " + r.workload, first);
    ++pid;
  }
  write_trace_chrome_footer(os);
}

}  // namespace bb::sim
