#include "sim/experiment.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "common/json.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "trace/stream.h"
#include "trace/trace_file.h"

namespace bb::sim {

namespace {

void append_class_object(std::string& out,
                         const std::array<u64, mem::kTrafficClassCount>&
                             bytes) {
  out += '{';
  for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
    if (c) out += ',';
    out += '"';
    out += mem::to_string(static_cast<mem::TrafficClass>(c));
    out += "\":";
    out += std::to_string(bytes[c]);
  }
  out += '}';
}

/// True when any reliability counter of the run is nonzero (only possible
/// with fault injection enabled).
bool has_fault_fields(const RunResult& r) {
  return r.ce_count || r.ue_count || r.due_retries || r.due_unrecovered ||
         r.due_data_loss || r.retired_rows || r.retired_frames ||
         r.degraded_sets;
}

/// True when any request-queue stat of the run is nonzero (only possible
/// with the queue layer enabled).
bool has_queue_fields(const RunResult& r) {
  return r.queueing_latency_avg != 0 || r.read_queue_latency_avg != 0 ||
         r.req_queue_length_avg != 0 || r.write_drain_count != 0;
}

/// True when any row of the sweep is a watchdog placeholder — gates the
/// timed_out column so deadline-free outputs keep their historical shape.
bool any_timed_out(const std::vector<RunResult>& results) {
  return std::any_of(results.begin(), results.end(),
                     [](const RunResult& r) { return r.timed_out; });
}

/// One result as a single-line JSON object — the element format of
/// write_json and the line format of the checkpoint journal. The
/// reliability and request-queue fields are emitted only on request so
/// legacy outputs stay byte-identical to their earlier forms.
std::string result_to_json(const RunResult& r, bool include_fault,
                           bool include_queue, bool include_timeout) {
  std::string out = "{";
  out += "\"design\":\"" + json_escape(r.design) + "\",";
  out += "\"workload\":\"" + json_escape(r.workload) + "\",";
  out += "\"instructions\":" + std::to_string(r.instructions) + ',';
  out += "\"misses\":" + std::to_string(r.misses) + ',';
  out += "\"ipc\":" + json_double(r.ipc) + ',';
  out += "\"hbm_bytes\":" + std::to_string(r.hbm_bytes) + ',';
  out += "\"dram_bytes\":" + std::to_string(r.dram_bytes) + ',';
  out += "\"energy_mj\":" + json_double(r.energy_mj) + ',';
  out += "\"hbm_serve_rate\":" + json_double(r.hbm_serve_rate) + ',';
  out += "\"mean_latency_ns\":" + json_double(r.mean_latency_ns) + ',';
  out += "\"latency_p50_ns\":" + json_double(r.latency_p50_ns) + ',';
  out += "\"latency_p90_ns\":" + json_double(r.latency_p90_ns) + ',';
  out += "\"latency_p99_ns\":" + json_double(r.latency_p99_ns) + ',';
  out += "\"latency_p999_ns\":" + json_double(r.latency_p999_ns) + ',';
  out += "\"mal_fraction\":" + json_double(r.mal_fraction) + ',';
  out += "\"overfetch\":" + json_double(r.overfetch) + ',';
  out += "\"page_faults\":" + std::to_string(r.page_faults) + ',';
  out += "\"metadata_sram_bytes\":" + std::to_string(r.metadata_sram_bytes) +
         ',';
  if (include_fault) {
    out += "\"ce_count\":" + std::to_string(r.ce_count) + ',';
    out += "\"ue_count\":" + std::to_string(r.ue_count) + ',';
    out += "\"due_retries\":" + std::to_string(r.due_retries) + ',';
    out += "\"due_unrecovered\":" + std::to_string(r.due_unrecovered) + ',';
    out += "\"due_data_loss\":" + std::to_string(r.due_data_loss) + ',';
    out += "\"retired_rows\":" + std::to_string(r.retired_rows) + ',';
    out += "\"retired_frames\":" + std::to_string(r.retired_frames) + ',';
    out += "\"degraded_sets\":" + std::to_string(r.degraded_sets) + ',';
  }
  if (include_queue) {
    out += "\"queueing_latency_avg\":" + json_double(r.queueing_latency_avg) +
           ',';
    out += "\"read_queue_latency_avg\":" +
           json_double(r.read_queue_latency_avg) + ',';
    out += "\"req_queue_length_avg\":" + json_double(r.req_queue_length_avg) +
           ',';
    out += "\"write_drain_count\":" + std::to_string(r.write_drain_count) +
           ',';
  }
  if (include_timeout) {
    out += "\"timed_out\":" + std::to_string(r.timed_out ? 1 : 0) + ',';
  }
  out += "\"hbm_class_bytes\":";
  append_class_object(out, r.hbm_class_bytes);
  out += ",\"dram_class_bytes\":";
  append_class_object(out, r.dram_class_bytes);
  out += '}';
  return out;
}

/// Parses a RunResult object (journal "run" line or a mix line's
/// "aggregate"). Returns false when the identifying keys are missing.
bool parse_run_result(const JsonValue& v, RunResult& r) {
  r.design = v.get_string("design");
  r.workload = v.get_string("workload");
  if (r.design.empty() || r.workload.empty()) return false;
  r.instructions = static_cast<u64>(v.get_number("instructions"));
  r.misses = static_cast<u64>(v.get_number("misses"));
  r.ipc = v.get_number("ipc");
  r.hbm_bytes = static_cast<u64>(v.get_number("hbm_bytes"));
  r.dram_bytes = static_cast<u64>(v.get_number("dram_bytes"));
  r.energy_mj = v.get_number("energy_mj");
  r.hbm_serve_rate = v.get_number("hbm_serve_rate");
  r.mean_latency_ns = v.get_number("mean_latency_ns");
  r.latency_p50_ns = v.get_number("latency_p50_ns");
  r.latency_p90_ns = v.get_number("latency_p90_ns");
  r.latency_p99_ns = v.get_number("latency_p99_ns");
  r.latency_p999_ns = v.get_number("latency_p999_ns");
  r.mal_fraction = v.get_number("mal_fraction");
  r.overfetch = v.get_number("overfetch");
  r.page_faults = static_cast<u64>(v.get_number("page_faults"));
  r.metadata_sram_bytes =
      static_cast<u64>(v.get_number("metadata_sram_bytes"));
  r.ce_count = static_cast<u64>(v.get_number("ce_count"));
  r.ue_count = static_cast<u64>(v.get_number("ue_count"));
  r.due_retries = static_cast<u64>(v.get_number("due_retries"));
  r.due_unrecovered = static_cast<u64>(v.get_number("due_unrecovered"));
  r.due_data_loss = static_cast<u64>(v.get_number("due_data_loss"));
  r.retired_rows = static_cast<u64>(v.get_number("retired_rows"));
  r.retired_frames = static_cast<u64>(v.get_number("retired_frames"));
  r.degraded_sets = static_cast<u64>(v.get_number("degraded_sets"));
  r.queueing_latency_avg = v.get_number("queueing_latency_avg");
  r.read_queue_latency_avg = v.get_number("read_queue_latency_avg");
  r.req_queue_length_avg = v.get_number("req_queue_length_avg");
  r.write_drain_count = static_cast<u64>(v.get_number("write_drain_count"));
  r.timed_out = v.get_number("timed_out") != 0;
  const auto load_classes =
      [&v](const char* key, std::array<u64, mem::kTrafficClassCount>& out) {
        const JsonValue* obj = v.find(key);
        if (!obj || !obj->is_object()) return;
        for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
          out[c] = static_cast<u64>(obj->get_number(
              mem::to_string(static_cast<mem::TrafficClass>(c))));
        }
      };
  load_classes("hbm_class_bytes", r.hbm_class_bytes);
  load_classes("dram_class_bytes", r.dram_class_bytes);
  return true;
}

/// One MixResult as a single-line JSON object — the element format of
/// write_mix_json and the "mix" journal line (minus the kind key).
std::string mix_result_to_json(const MixResult& r, bool include_fault,
                               bool include_queue, bool include_timeout) {
  std::string out = "{\"design\":\"" + json_escape(r.design) +
                    "\",\"mix\":\"" + json_escape(r.mix) +
                    "\",\"weighted_speedup\":" +
                    json_double(r.weighted_speedup) +
                    ",\"hmean_speedup\":" + json_double(r.hmean_speedup) +
                    ",\"max_slowdown\":" + json_double(r.max_slowdown) +
                    ",\"aggregate\":" +
                    result_to_json(r.aggregate, include_fault,
                                   include_queue, include_timeout) +
                    ",\"cores\":[";
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const MixCoreResult& core = r.cores[c];
    if (c) out += ',';
    out += "{\"core\":" + std::to_string(core.perf.core) +
           ",\"workload\":\"" + json_escape(core.perf.workload) +
           "\",\"instructions\":" + std::to_string(core.perf.instructions) +
           ",\"misses\":" + std::to_string(core.perf.misses) +
           ",\"ipc\":" + json_double(core.perf.ipc) +
           ",\"alone_ipc\":" + json_double(core.alone_ipc) +
           ",\"speedup\":" + json_double(core.speedup) +
           ",\"hbm_serve_rate\":" + json_double(core.perf.hbm_serve_rate) +
           ",\"mean_latency_ns\":" + json_double(core.perf.mean_latency_ns) +
           ",\"latency_p50_ns\":" + json_double(core.perf.latency_p50_ns) +
           ",\"latency_p99_ns\":" + json_double(core.perf.latency_p99_ns) +
           ",\"hbm_bytes\":" + std::to_string(core.perf.hbm_bytes) +
           ",\"dram_bytes\":" + std::to_string(core.perf.dram_bytes) + '}';
  }
  out += "]}";
  return out;
}

}  // namespace

ResultJournal::LoadStats ResultJournal::load_stats(
    std::istream& is, std::vector<std::string>* well_formed) {
  LoadStats st;
  std::string line_text;
  while (std::getline(is, line_text)) {
    if (line_text.empty()) continue;
    JsonValue v;
    if (!json_parse(line_text, v) || !v.is_object()) {
      ++st.malformed;
      continue;
    }
    const std::string kind = v.get_string("kind", "run");
    if (kind == "run") {
      RunResult r;
      if (!parse_run_result(v, r)) {
        ++st.malformed;
        continue;
      }
      rows_.push_back(std::move(r));
    } else if (kind == "alone") {
      AloneRow a;
      a.design = v.get_string("design");
      a.workload = v.get_string("workload");
      a.ipc = v.get_number("ipc");
      if (a.design.empty() || a.workload.empty()) {
        ++st.malformed;
        continue;
      }
      alone_rows_.push_back(std::move(a));
    } else if (kind == "mix") {
      MixResult m;
      m.design = v.get_string("design");
      m.mix = v.get_string("mix");
      if (m.design.empty() || m.mix.empty()) {
        ++st.malformed;
        continue;
      }
      m.weighted_speedup = v.get_number("weighted_speedup");
      m.hmean_speedup = v.get_number("hmean_speedup");
      m.max_slowdown = v.get_number("max_slowdown");
      const JsonValue* agg = v.find("aggregate");
      if (!agg || !agg->is_object() || !parse_run_result(*agg, m.aggregate)) {
        ++st.malformed;
        continue;
      }
      if (const JsonValue* cores = v.find("cores");
          cores && cores->type == JsonValue::Type::kArray) {
        for (const JsonValue& cv : cores->array) {
          if (!cv.is_object()) continue;
          MixCoreResult core;
          core.perf.core = static_cast<u32>(cv.get_number("core"));
          core.perf.workload = cv.get_string("workload");
          core.perf.instructions =
              static_cast<u64>(cv.get_number("instructions"));
          core.perf.misses = static_cast<u64>(cv.get_number("misses"));
          core.perf.ipc = cv.get_number("ipc");
          core.alone_ipc = cv.get_number("alone_ipc");
          core.speedup = cv.get_number("speedup");
          core.perf.hbm_serve_rate = cv.get_number("hbm_serve_rate");
          core.perf.mean_latency_ns = cv.get_number("mean_latency_ns");
          core.perf.latency_p50_ns = cv.get_number("latency_p50_ns");
          core.perf.latency_p99_ns = cv.get_number("latency_p99_ns");
          core.perf.hbm_bytes = static_cast<u64>(cv.get_number("hbm_bytes"));
          core.perf.dram_bytes =
              static_cast<u64>(cv.get_number("dram_bytes"));
          m.cores.push_back(std::move(core));
        }
      }
      mix_rows_.push_back(std::move(m));
    } else {
      ++st.malformed;
      continue;
    }
    if (well_formed != nullptr) well_formed->push_back(line_text);
    ++st.restored;
  }
  return st;
}

const RunResult* ResultJournal::find(const std::string& design,
                                     const std::string& workload) const {
  // Last line wins, in case an interrupted run journaled a cell twice.
  // Watchdog placeholders are never restored: a resumed sweep (typically
  // with a longer deadline or a snapshot to pick up from) retries them.
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->design == design && it->workload == workload) {
      if (it->timed_out) continue;
      return &*it;
    }
  }
  return nullptr;
}

const double* ResultJournal::find_alone(const std::string& design,
                                        const std::string& workload) const {
  for (auto it = alone_rows_.rbegin(); it != alone_rows_.rend(); ++it) {
    if (it->design == design && it->workload == workload) return &it->ipc;
  }
  return nullptr;
}

const MixResult* ResultJournal::find_mix(const std::string& design,
                                         const std::string& mix) const {
  for (auto it = mix_rows_.rbegin(); it != mix_rows_.rend(); ++it) {
    if (it->design == design && it->mix == mix) {
      if (it->aggregate.timed_out) continue;
      return &*it;
    }
  }
  return nullptr;
}

std::string ResultJournal::line(const RunResult& r) {
  return result_to_json(r, has_fault_fields(r), has_queue_fields(r),
                        r.timed_out);
}

std::string ResultJournal::alone_line(const std::string& design,
                                      const std::string& workload,
                                      double ipc) {
  return "{\"kind\":\"alone\",\"design\":\"" + json_escape(design) +
         "\",\"workload\":\"" + json_escape(workload) +
         "\",\"ipc\":" + json_double(ipc) + '}';
}

std::string ResultJournal::mix_line(const MixResult& r) {
  std::string out = "{\"kind\":\"mix\",";
  // Splice the kind key into the shared mix-object serialization.
  out += mix_result_to_json(r, has_fault_fields(r.aggregate),
                            has_queue_fields(r.aggregate),
                            r.aggregate.timed_out)
             .substr(1);
  return out;
}

std::string quarantine_name(const std::string& path) {
  std::string candidate = path + ".corrupt";
  for (u64 n = 1; snap::file_exists(candidate); ++n) {
    candidate = path + ".corrupt." + std::to_string(n);
  }
  return candidate;
}

ExperimentRunner::ExperimentRunner(SystemConfig cfg) : cfg_(std::move(cfg)) {}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads,
    const RunMatrixOptions& opts) {
  run_cells(
      designs.size(), workloads,
      [&designs](System& system, std::size_t d,
                 const trace::WorkloadProfile& w, u64 instr) {
        return system.run(designs[d], w, instr);
      },
      [&designs](std::size_t d) { return designs[d]; }, opts);
}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads, u64 target_misses,
    std::function<void(const RunResult&)> on_result, u64 min_instructions,
    u64 max_instructions) {
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.on_result = std::move(on_result);
  opts.target_misses = target_misses;
  opts.min_instructions = min_instructions;
  opts.max_instructions = max_instructions;
  run_matrix(designs, workloads, opts);
}

void ExperimentRunner::run_replay_matrix(
    const std::vector<std::string>& designs,
    const ReplayMatrixOptions& replay, const RunMatrixOptions& opts) {
  if (opts.instructions == 0) {
    throw std::invalid_argument(
        "trace replay requires an explicit instruction budget "
        "(use trace_info().inst_gap_total for one full pass)");
  }
  const trace::TraceReaderOptions reader_opts{replay.v1_chunk_records};
  // Validate the structure once up front so malformed files fail with a
  // clean diagnostic here, not from a worker thread mid-matrix.
  (void)trace::trace_info(replay.path, reader_opts);

  // The pseudo-workload only labels the result rows; its profile fields
  // are never consulted because opts.instructions is mandatory.
  trace::WorkloadProfile label;
  label.name = replay.label.empty() ? replay.path : replay.label;
  const std::vector<trace::WorkloadProfile> workloads{label};

  if (replay.streaming) {
    run_cells(
        designs.size(), workloads,
        [&designs, &replay, &reader_opts](System& system, std::size_t d,
                                          const trace::WorkloadProfile& w,
                                          u64 instr) {
          // Each cell opens its own reader: workers never share file
          // offsets, and every replay starts from record zero.
          trace::StreamingTraceReader reader(replay.path, reader_opts);
          return system.run_replay(designs[d], reader, w.name, instr);
        },
        [&designs](std::size_t d) { return designs[d]; }, opts);
    return;
  }
  // Memory mode: load once, replay per cell from a private cursor.
  const auto records = std::make_shared<const std::vector<trace::TraceRecord>>(
      trace::read_trace(replay.path));
  run_cells(
      designs.size(), workloads,
      [&designs, records](System& system, std::size_t d,
                          const trace::WorkloadProfile& w, u64 instr) {
        trace::TraceReplayer replayer(*records);
        return system.run_replay(designs[d], replayer, w.name, instr);
      },
      [&designs](std::size_t d) { return designs[d]; }, opts);
}

void ExperimentRunner::run_bumblebee_matrix(
    const std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>>&
        configs,
    const std::vector<trace::WorkloadProfile>& workloads,
    const RunMatrixOptions& opts) {
  run_cells(
      configs.size(), workloads,
      [&configs](System& system, std::size_t d,
                 const trace::WorkloadProfile& w, u64 instr) {
        RunResult r = system.run_bumblebee(configs[d].second, w, instr);
        r.design = configs[d].first;
        return r;
      },
      [&configs](std::size_t d) { return configs[d].first; }, opts);
}

void ExperimentRunner::run_cells(
    std::size_t n_designs, const std::vector<trace::WorkloadProfile>& workloads,
    const CellFn& cell, const DesignNameFn& design_name,
    const RunMatrixOptions& opts) {
  const std::size_t total = n_designs * workloads.size();
  if (total == 0) return;

  // Resume: cells present in the journal are restored, not re-simulated.
  // on_result is skipped for them (they are already journaled).
  auto restored_cell = [&](std::size_t d,
                           std::size_t w) -> const RunResult* {
    if (!opts.resume) return nullptr;
    return opts.resume->find(design_name(d), workloads[w].name);
  };

  std::vector<u64> instr(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    instr[i] = opts.instructions
                   ? opts.instructions
                   : default_instructions_for(workloads[i], opts.target_misses,
                                              opts.min_instructions,
                                              opts.max_instructions);
  }

  // Progress/ETA on the host clock via bb::prof (the single sanctioned
  // wall-clock site), rate-limited to >=1s between prints so tiny cells
  // don't flood stderr; the final (done == total) line always prints.
  const prof::Stopwatch stopwatch;
  double last_report_s = -1.0;
  auto report = [&](std::size_t done) {
    const double elapsed = stopwatch.seconds();
    if (done < total && last_report_s >= 0.0 &&
        elapsed - last_report_s < 1.0) {
      return;
    }
    last_report_s = elapsed;
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total - done)
             : 0.0;
    std::fprintf(stderr, "[matrix] %zu/%zu cells, %.1fs elapsed, ETA %.1fs\n",
                 done, total, elapsed, eta);
  };

  // Watchdog: runs one cell under the per-attempt soft deadline. Each
  // retry re-arms the clock and (when snapshots are configured) resumes
  // from the snapshot the interrupted attempt committed last; exhausted
  // retries commit a timed_out placeholder row so the sweep degrades
  // gracefully instead of hanging.
  auto guarded_cell = [&](System& system, std::size_t d,
                          const trace::WorkloadProfile& w,
                          u64 instructions) -> RunResult {
    if (opts.cell_timeout_s <= 0) return cell(system, d, w, instructions);
    const u32 attempts = 1 + opts.cell_retries;
    for (u32 a = 0; a < attempts; ++a) {
      const prof::Stopwatch watchdog;
      system.set_interrupt([&watchdog, limit = opts.cell_timeout_s] {
        return watchdog.seconds() > limit;
      });
      try {
        RunResult r = cell(system, d, w, instructions);
        system.set_interrupt(nullptr);
        return r;
      } catch (const RunInterrupted&) {
        system.set_interrupt(nullptr);
        if (a + 1 < attempts) system.allow_restore_once();
      }
    }
    RunResult r;
    r.design = design_name(d);
    r.workload = w.name;
    r.timed_out = true;
    return r;
  };

  unsigned jobs = opts.jobs ? opts.jobs : ThreadPool::default_concurrency();
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, total));

  if (jobs <= 1) {
    System system(cfg_);
    std::size_t done = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      for (std::size_t d = 0; d < n_designs; ++d) {
        if (opts.cancel && opts.cancel()) return;
        if (const RunResult* prior = restored_cell(d, w)) {
          if (opts.progress) report(++done);
          results_.push_back(*prior);
          continue;
        }
        RunResult r = guarded_cell(system, d, workloads[w], instr[w]);
        if (opts.progress) report(++done);
        if (opts.on_result) opts.on_result(r);
        results_.push_back(std::move(r));
      }
    }
    return;
  }

  // Parallel path: workers claim cells dynamically but commit them through
  // indexed slots in matrix order, so results_ (and therefore write_csv)
  // are byte-identical to a serial run. on_result also fires in matrix
  // order, under the commit lock.
  std::vector<std::unique_ptr<System>> systems;
  systems.reserve(jobs);
  for (unsigned j = 0; j < jobs; ++j) {
    systems.push_back(std::make_unique<System>(cfg_));
  }

  std::vector<RunResult> slots(total);
  std::vector<char> ready(total, 0);
  std::vector<char> restored(total, 0);
  std::vector<char> skipped(total, 0);
  std::mutex mu;
  std::size_t committed = 0;
  std::size_t completed = 0;

  ThreadPool pool(jobs);
  pool.parallel_for(total, [&](std::size_t i, unsigned worker) {
    const std::size_t w = i / n_designs;
    const std::size_t d = i % n_designs;
    RunResult r;
    bool from_journal = false;
    bool skip = false;
    if (const RunResult* prior = restored_cell(d, w)) {
      r = *prior;
      from_journal = true;
    } else if (opts.cancel && opts.cancel()) {
      // Cancelled before this cell started: commit an empty marker so the
      // in-order drain below still advances past it (cells that were
      // already running finish and journal normally).
      skip = true;
    } else {
      r = guarded_cell(*systems[worker], d, workloads[w], instr[w]);
    }

    std::lock_guard<std::mutex> lk(mu);
    slots[i] = std::move(r);
    ready[i] = 1;
    restored[i] = from_journal ? 1 : 0;
    skipped[i] = skip ? 1 : 0;
    if (opts.progress) report(++completed);
    while (committed < total && ready[committed]) {
      if (!skipped[committed]) {
        if (opts.on_result && !restored[committed]) {
          opts.on_result(slots[committed]);
        }
        results_.push_back(std::move(slots[committed]));
      }
      ++committed;
    }
  });
}

void ExperimentRunner::run_mix_matrix(const std::vector<std::string>& designs,
                                      const std::vector<MixSpec>& mixes,
                                      const RunMatrixOptions& opts) {
  if (designs.empty() || mixes.empty()) return;

  // Every workload named by any mix, in first-seen order.
  std::vector<std::string> uniq;
  for (const auto& m : mixes) {
    for (const auto& w : m.workloads) {
      if (std::find(uniq.begin(), uniq.end(), w) == uniq.end()) {
        uniq.push_back(w);
      }
    }
  }

  // One shared per-core budget for the alone and co-run phases, so every
  // speedup compares equal-length slices of the same instruction stream.
  u64 budget = opts.instructions;
  if (!budget) {
    for (const auto& w : uniq) {
      budget = std::max(
          budget, default_instructions_for(
                      trace::WorkloadProfile::by_name(w), opts.target_misses,
                      opts.min_instructions, opts.max_instructions));
    }
  }

  // Phase 1: alone baselines — one core, observability off (baselines feed
  // only the speedup denominators; their artifacts are never exported).
  // Journaled "alone" lines from a resumed run are restored up front.
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& d : designs) {
    for (const auto& w : uniq) {
      if (alone_ipc_.count({d, w})) continue;
      if (opts.resume) {
        if (const double* prior = opts.resume->find_alone(d, w)) {
          alone_ipc_[{d, w}] = *prior;
          continue;
        }
      }
      pairs.emplace_back(d, w);
    }
  }
  SystemConfig alone_cfg = cfg_;
  alone_cfg.core.cores = 1;
  alone_cfg.obs = ObservabilityConfig{};
  // A --capture-trace sink records the *co-run* miss stream only; letting
  // the alone baselines append too would interleave three runs' records.
  alone_cfg.capture = nullptr;

  // Watchdog wrapper for one alone baseline. An exhausted deadline
  // commits ipc 0, which the speedup scoring already treats as "no
  // baseline" (the core is skipped), so the mix scores stay well-defined.
  auto guarded_alone = [&](System& system, std::size_t i) -> double {
    const auto run_once = [&] {
      return system
          .run(pairs[i].first,
               trace::WorkloadProfile::by_name(pairs[i].second), budget)
          .ipc;
    };
    if (opts.cell_timeout_s <= 0) return run_once();
    const u32 attempts = 1 + opts.cell_retries;
    for (u32 a = 0; a < attempts; ++a) {
      const prof::Stopwatch watchdog;
      system.set_interrupt([&watchdog, limit = opts.cell_timeout_s] {
        return watchdog.seconds() > limit;
      });
      try {
        const double ipc = run_once();
        system.set_interrupt(nullptr);
        return ipc;
      } catch (const RunInterrupted&) {
        system.set_interrupt(nullptr);
        if (a + 1 < attempts) system.allow_restore_once();
      }
    }
    return 0.0;
  };

  // Commits one finished baseline: the cache feeds phase 2, on_alone
  // checkpoints it. Cancelled pairs are never committed (and never
  // journaled), so a resumed run re-simulates exactly those.
  auto commit_alone = [&](std::size_t i, double ipc) {
    alone_ipc_[pairs[i]] = ipc;
    if (opts.on_alone) opts.on_alone(pairs[i].first, pairs[i].second, ipc);
  };

  unsigned jobs = opts.jobs ? opts.jobs : ThreadPool::default_concurrency();
  const unsigned alone_jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, pairs.size()));
  if (alone_jobs <= 1) {
    System system(alone_cfg);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (opts.cancel && opts.cancel()) break;
      commit_alone(i, guarded_alone(system, i));
      if (opts.progress) {
        std::fprintf(stderr, "[mix] alone %zu/%zu baselines\n", i + 1,
                     pairs.size());
      }
    }
  } else if (!pairs.empty()) {
    std::vector<std::unique_ptr<System>> systems;
    for (unsigned j = 0; j < alone_jobs; ++j) {
      systems.push_back(std::make_unique<System>(alone_cfg));
    }
    std::vector<double> alone(pairs.size(), 0);
    std::vector<char> ready(pairs.size(), 0);
    std::vector<char> skipped(pairs.size(), 0);
    std::mutex mu;
    std::size_t committed = 0;
    std::size_t done = 0;
    ThreadPool pool(alone_jobs);
    pool.parallel_for(pairs.size(), [&](std::size_t i, unsigned worker) {
      double ipc = 0;
      bool skip = true;
      if (!(opts.cancel && opts.cancel())) {
        ipc = guarded_alone(*systems[worker], i);
        skip = false;
      }
      std::lock_guard<std::mutex> lk(mu);
      alone[i] = ipc;
      ready[i] = 1;
      skipped[i] = skip ? 1 : 0;
      if (opts.progress) {
        std::fprintf(stderr, "[mix] alone %zu/%zu baselines\n", ++done,
                     pairs.size());
      }
      while (committed < pairs.size() && ready[committed]) {
        if (!skipped[committed]) commit_alone(committed, alone[committed]);
        ++committed;
      }
    });
  }

  // Phase 2: co-runs — mix-major, design-minor cells committed through
  // indexed slots in matrix order (same discipline as run_cells), so
  // mix_results_ / results_ and every writer are --jobs independent.
  // Journaled "mix" cells are restored without re-simulation (and without
  // re-firing the checkpoint callbacks).
  const std::size_t total = mixes.size() * designs.size();
  const unsigned mix_jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, total));
  auto restored_mix = [&](std::size_t d, std::size_t m) -> const MixResult* {
    if (!opts.resume) return nullptr;
    return opts.resume->find_mix(designs[d], mixes[m].name);
  };
  // Watchdog wrapper for one co-run cell (same contract as run_cells'
  // guarded_cell: retry from snapshot, then a timed_out placeholder).
  auto guarded_mix_cell = [&](System& system, std::size_t d,
                              std::size_t m) -> MixResult {
    if (opts.cell_timeout_s <= 0) {
      return run_mix_cell(system, designs[d], mixes[m], budget, alone_ipc_);
    }
    const u32 attempts = 1 + opts.cell_retries;
    for (u32 a = 0; a < attempts; ++a) {
      const prof::Stopwatch watchdog;
      system.set_interrupt([&watchdog, limit = opts.cell_timeout_s] {
        return watchdog.seconds() > limit;
      });
      try {
        MixResult r =
            run_mix_cell(system, designs[d], mixes[m], budget, alone_ipc_);
        system.set_interrupt(nullptr);
        return r;
      } catch (const RunInterrupted&) {
        system.set_interrupt(nullptr);
        if (a + 1 < attempts) system.allow_restore_once();
      }
    }
    MixResult r;
    r.design = designs[d];
    r.mix = mixes[m].name;
    r.aggregate.design = designs[d];
    r.aggregate.workload = mixes[m].name;
    r.aggregate.timed_out = true;
    return r;
  };

  auto commit = [&](MixResult&& r, bool from_journal) {
    if (!from_journal) {
      if (opts.on_result) opts.on_result(r.aggregate);
      if (opts.on_mix_result) opts.on_mix_result(r);
    }
    results_.push_back(r.aggregate);
    mix_results_.push_back(std::move(r));
  };

  if (mix_jobs <= 1) {
    System system(cfg_);
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      for (std::size_t d = 0; d < designs.size(); ++d) {
        if (const MixResult* prior = restored_mix(d, m)) {
          commit(MixResult(*prior), /*from_journal=*/true);
        } else {
          if (opts.cancel && opts.cancel()) return;
          commit(guarded_mix_cell(system, d, m), /*from_journal=*/false);
        }
        if (opts.progress) {
          std::fprintf(stderr, "[mix] %zu/%zu co-runs\n",
                       m * designs.size() + d + 1, total);
        }
      }
    }
    return;
  }

  std::vector<std::unique_ptr<System>> systems;
  for (unsigned j = 0; j < mix_jobs; ++j) {
    systems.push_back(std::make_unique<System>(cfg_));
  }
  std::vector<MixResult> slots(total);
  std::vector<char> ready(total, 0);
  std::vector<char> restored(total, 0);
  std::vector<char> skipped(total, 0);
  std::mutex mu;
  std::size_t committed = 0;
  std::size_t completed = 0;
  ThreadPool pool(mix_jobs);
  pool.parallel_for(total, [&](std::size_t i, unsigned worker) {
    const std::size_t m = i / designs.size();
    const std::size_t d = i % designs.size();
    MixResult r;
    bool from_journal = false;
    bool skip = false;
    if (const MixResult* prior = restored_mix(d, m)) {
      r = *prior;
      from_journal = true;
    } else if (opts.cancel && opts.cancel()) {
      skip = true;
    } else {
      r = guarded_mix_cell(*systems[worker], d, m);
    }
    std::lock_guard<std::mutex> lk(mu);
    slots[i] = std::move(r);
    ready[i] = 1;
    restored[i] = from_journal ? 1 : 0;
    skipped[i] = skip ? 1 : 0;
    if (opts.progress) {
      std::fprintf(stderr, "[mix] %zu/%zu co-runs\n", ++completed, total);
    }
    while (committed < total && ready[committed]) {
      if (!skipped[committed]) {
        commit(std::move(slots[committed]), restored[committed] != 0);
      }
      ++committed;
    }
  });
}

void ExperimentRunner::write_mix_csv(std::ostream& os) const {
  prof::ScopedPhase prof_phase(prof::Phase::kIo);
  TextTable t({"design", "mix", "core", "workload", "instructions", "misses",
               "ipc", "alone_ipc", "speedup", "hbm_serve_rate",
               "mean_latency_ns", "latency_p50_ns", "latency_p99_ns",
               "hbm_bytes", "dram_bytes", "weighted_speedup",
               "hmean_speedup", "max_slowdown"});
  for (const auto& r : mix_results_) {
    for (const auto& c : r.cores) {
      t.add_row({r.design, r.mix, std::to_string(c.perf.core),
                 c.perf.workload, std::to_string(c.perf.instructions),
                 std::to_string(c.perf.misses), fmt_double(c.perf.ipc, 4),
                 fmt_double(c.alone_ipc, 4), fmt_double(c.speedup, 4),
                 fmt_double(c.perf.hbm_serve_rate, 4),
                 fmt_double(c.perf.mean_latency_ns, 2),
                 fmt_double(c.perf.latency_p50_ns, 2),
                 fmt_double(c.perf.latency_p99_ns, 2),
                 std::to_string(c.perf.hbm_bytes),
                 std::to_string(c.perf.dram_bytes),
                 fmt_double(r.weighted_speedup, 4),
                 fmt_double(r.hmean_speedup, 4),
                 fmt_double(r.max_slowdown, 4)});
    }
  }
  t.print_csv(os);
}

void ExperimentRunner::write_mix_json(std::ostream& os) const {
  prof::ScopedPhase prof_phase(prof::Phase::kIo);
  const bool fault = cfg_.fault.enabled();
  const bool queue = queue_configured();
  const bool timeout = any_timed_out(results_);
  os << "[\n";
  for (std::size_t i = 0; i < mix_results_.size(); ++i) {
    os << "  " << mix_result_to_json(mix_results_[i], fault, queue, timeout)
       << (i + 1 < mix_results_.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

std::vector<RunResult> ExperimentRunner::for_design(
    const std::string& design) const {
  std::vector<RunResult> out;
  for (const auto& r : results_) {
    if (r.design == design) out.push_back(r);
  }
  return out;
}

std::vector<std::pair<std::string, double>> ExperimentRunner::normalized(
    const std::string& design, const std::string& baseline_design,
    double (*metric)(const RunResult&)) const {
  std::map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.design == baseline_design) base[r.workload] = metric(r);
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& r : results_) {
    if (r.design != design) continue;
    const auto it = base.find(r.workload);
    if (it == base.end() || it->second <= 0) continue;
    out.emplace_back(r.workload, metric(r) / it->second);
  }
  return out;
}

void ExperimentRunner::write_csv(std::ostream& os) const {
  prof::ScopedPhase prof_phase(prof::Phase::kIo);
  // The reliability / queue / timeout columns appear only when the
  // matching subsystem is configured (or a watchdog placeholder exists),
  // so legacy CSVs keep their historical column set byte-for-byte.
  const bool fault = cfg_.fault.enabled();
  const bool queue = queue_configured();
  const bool timeout = any_timed_out(results_);
  std::vector<std::string> header = {
      "design", "workload", "instructions", "misses", "ipc",
      "hbm_bytes", "dram_bytes", "energy_mj", "hbm_serve_rate",
      "mean_latency_ns", "latency_p50_ns", "latency_p90_ns",
      "latency_p99_ns", "latency_p999_ns", "mal_fraction",
      "overfetch", "page_faults", "metadata_sram_bytes"};
  if (fault) {
    header.insert(header.end(),
                  {"ce_count", "ue_count", "due_retries", "due_unrecovered",
                   "due_data_loss", "retired_rows", "retired_frames",
                   "degraded_sets"});
  }
  if (queue) {
    header.insert(header.end(),
                  {"queueing_latency_avg", "read_queue_latency_avg",
                   "req_queue_length_avg", "write_drain_count"});
  }
  if (timeout) {
    header.insert(header.end(), {"timed_out"});
  }
  TextTable t(header);
  for (const auto& r : results_) {
    std::vector<std::string> row = {
        r.design, r.workload, std::to_string(r.instructions),
        std::to_string(r.misses), fmt_double(r.ipc, 4),
        std::to_string(r.hbm_bytes), std::to_string(r.dram_bytes),
        fmt_double(r.energy_mj, 4), fmt_double(r.hbm_serve_rate, 4),
        fmt_double(r.mean_latency_ns, 2),
        fmt_double(r.latency_p50_ns, 2),
        fmt_double(r.latency_p90_ns, 2),
        fmt_double(r.latency_p99_ns, 2),
        fmt_double(r.latency_p999_ns, 2),
        fmt_double(r.mal_fraction, 4), fmt_double(r.overfetch, 4),
        std::to_string(r.page_faults),
        std::to_string(r.metadata_sram_bytes)};
    if (fault) {
      row.insert(row.end(),
                 {std::to_string(r.ce_count), std::to_string(r.ue_count),
                  std::to_string(r.due_retries),
                  std::to_string(r.due_unrecovered),
                  std::to_string(r.due_data_loss),
                  std::to_string(r.retired_rows),
                  std::to_string(r.retired_frames),
                  std::to_string(r.degraded_sets)});
    }
    if (queue) {
      row.insert(row.end(),
                 {fmt_double(r.queueing_latency_avg, 2),
                  fmt_double(r.read_queue_latency_avg, 2),
                  fmt_double(r.req_queue_length_avg, 4),
                  std::to_string(r.write_drain_count)});
    }
    if (timeout) {
      row.insert(row.end(), {std::to_string(r.timed_out ? 1 : 0)});
    }
    t.add_row(row);
  }
  t.print_csv(os);
}

void ExperimentRunner::write_json(std::ostream& os) const {
  prof::ScopedPhase prof_phase(prof::Phase::kIo);
  const bool fault = cfg_.fault.enabled();
  const bool queue = queue_configured();
  const bool timeout = any_timed_out(results_);
  os << "[\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    os << "  " << result_to_json(results_[i], fault, queue, timeout)
       << (i + 1 < results_.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

// The profiled overloads stay below the plain writers: tools/bb_analyze's
// result-schema rule inspects the first definition of each writer, which
// must remain the canonical (golden-hashed) one.

void ExperimentRunner::write_json(std::ostream& os,
                                  const prof::HostReport& host) const {
  os << "{\n\"runs\":\n";
  write_json(os);
  os << ",\n\"host\": " << prof::host_report_to_json(host) << "\n}\n";
}

void ExperimentRunner::write_mix_json(std::ostream& os,
                                      const prof::HostReport& host) const {
  os << "{\n\"runs\":\n";
  write_mix_json(os);
  os << ",\n\"host\": " << prof::host_report_to_json(host) << "\n}\n";
}

void ExperimentRunner::write_epoch_csv(std::ostream& os) const {
  prof::ScopedPhase prof_phase(prof::Phase::kIo);
  // Union of all runs' metric columns, in first-seen (matrix) order, so
  // mixed matrices (e.g. DRAM-only next to Bumblebee, which adds remap
  // metrics) share one header.
  std::vector<std::string> columns;
  for (const auto& r : results_) {
    if (!r.artifacts) continue;
    for (const auto& name : r.artifacts->epoch_columns) {
      if (std::find(columns.begin(), columns.end(), name) == columns.end()) {
        columns.push_back(name);
      }
    }
  }
  write_epoch_csv_header(os, {"design", "workload"}, columns);
  for (const auto& r : results_) {
    if (!r.artifacts) continue;
    write_epoch_csv_rows(os, {r.design, r.workload},
                         r.artifacts->epoch_columns, columns,
                         r.artifacts->epochs);
  }
}

void ExperimentRunner::write_trace(std::ostream& os,
                                   TraceFormat format) const {
  prof::ScopedPhase prof_phase(prof::Phase::kIo);
  if (format == TraceFormat::kJsonl) {
    for (const auto& r : results_) {
      if (!r.artifacts) continue;
      const std::string extra = "\"design\":\"" + json_escape(r.design) +
                                "\",\"workload\":\"" +
                                json_escape(r.workload) + "\",";
      write_trace_jsonl(r.artifacts->events, os, extra);
    }
    return;
  }
  // Chrome trace_event: one process per run so Perfetto shows each
  // (design, workload) cell as its own named track.
  write_trace_chrome_header(os);
  bool first = true;
  u64 pid = 0;
  for (const auto& r : results_) {
    if (!r.artifacts) continue;
    write_trace_chrome_events(r.artifacts->events, os, pid,
                              r.design + " / " + r.workload, first);
    ++pid;
  }
  write_trace_chrome_footer(os);
}

}  // namespace bb::sim
