#include "sim/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace bb::sim {

ExperimentRunner::ExperimentRunner(SystemConfig cfg) : cfg_(std::move(cfg)) {}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads,
    const RunMatrixOptions& opts) {
  run_cells(
      designs.size(), workloads,
      [&designs](System& system, std::size_t d,
                 const trace::WorkloadProfile& w, u64 instr) {
        return system.run(designs[d], w, instr);
      },
      opts);
}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads, u64 target_misses,
    std::function<void(const RunResult&)> on_result, u64 min_instructions,
    u64 max_instructions) {
  RunMatrixOptions opts;
  opts.jobs = 1;
  opts.on_result = std::move(on_result);
  opts.target_misses = target_misses;
  opts.min_instructions = min_instructions;
  opts.max_instructions = max_instructions;
  run_matrix(designs, workloads, opts);
}

void ExperimentRunner::run_bumblebee_matrix(
    const std::vector<std::pair<std::string, bumblebee::BumblebeeConfig>>&
        configs,
    const std::vector<trace::WorkloadProfile>& workloads,
    const RunMatrixOptions& opts) {
  run_cells(
      configs.size(), workloads,
      [&configs](System& system, std::size_t d,
                 const trace::WorkloadProfile& w, u64 instr) {
        RunResult r = system.run_bumblebee(configs[d].second, w, instr);
        r.design = configs[d].first;
        return r;
      },
      opts);
}

void ExperimentRunner::run_cells(
    std::size_t n_designs, const std::vector<trace::WorkloadProfile>& workloads,
    const CellFn& cell, const RunMatrixOptions& opts) {
  const std::size_t total = n_designs * workloads.size();
  if (total == 0) return;

  std::vector<u64> instr(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    instr[i] = opts.instructions
                   ? opts.instructions
                   : default_instructions_for(workloads[i], opts.target_misses,
                                              opts.min_instructions,
                                              opts.max_instructions);
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto report = [&](std::size_t done) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total - done)
             : 0.0;
    std::fprintf(stderr, "[matrix] %zu/%zu cells, %.1fs elapsed, ETA %.1fs\n",
                 done, total, elapsed, eta);
  };

  unsigned jobs = opts.jobs ? opts.jobs : ThreadPool::default_concurrency();
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, total));

  if (jobs <= 1) {
    System system(cfg_);
    std::size_t done = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      for (std::size_t d = 0; d < n_designs; ++d) {
        RunResult r = cell(system, d, workloads[w], instr[w]);
        if (opts.progress) report(++done);
        if (opts.on_result) opts.on_result(r);
        results_.push_back(std::move(r));
      }
    }
    return;
  }

  // Parallel path: workers claim cells dynamically but commit them through
  // indexed slots in matrix order, so results_ (and therefore write_csv)
  // are byte-identical to a serial run. on_result also fires in matrix
  // order, under the commit lock.
  std::vector<std::unique_ptr<System>> systems;
  systems.reserve(jobs);
  for (unsigned j = 0; j < jobs; ++j) {
    systems.push_back(std::make_unique<System>(cfg_));
  }

  std::vector<RunResult> slots(total);
  std::vector<char> ready(total, 0);
  std::mutex mu;
  std::size_t committed = 0;
  std::size_t completed = 0;

  ThreadPool pool(jobs);
  pool.parallel_for(total, [&](std::size_t i, unsigned worker) {
    const std::size_t w = i / n_designs;
    const std::size_t d = i % n_designs;
    RunResult r = cell(*systems[worker], d, workloads[w], instr[w]);

    std::lock_guard<std::mutex> lk(mu);
    slots[i] = std::move(r);
    ready[i] = 1;
    if (opts.progress) report(++completed);
    while (committed < total && ready[committed]) {
      if (opts.on_result) opts.on_result(slots[committed]);
      results_.push_back(std::move(slots[committed]));
      ++committed;
    }
  });
}

std::vector<RunResult> ExperimentRunner::for_design(
    const std::string& design) const {
  std::vector<RunResult> out;
  for (const auto& r : results_) {
    if (r.design == design) out.push_back(r);
  }
  return out;
}

std::vector<std::pair<std::string, double>> ExperimentRunner::normalized(
    const std::string& design, const std::string& baseline_design,
    double (*metric)(const RunResult&)) const {
  std::map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.design == baseline_design) base[r.workload] = metric(r);
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& r : results_) {
    if (r.design != design) continue;
    const auto it = base.find(r.workload);
    if (it == base.end() || it->second <= 0) continue;
    out.emplace_back(r.workload, metric(r) / it->second);
  }
  return out;
}

void ExperimentRunner::write_csv(std::ostream& os) const {
  TextTable t({"design", "workload", "instructions", "misses", "ipc",
               "hbm_bytes", "dram_bytes", "energy_mj", "hbm_serve_rate",
               "mean_latency_ns", "mal_fraction", "overfetch",
               "page_faults", "metadata_sram_bytes"});
  for (const auto& r : results_) {
    t.add_row({r.design, r.workload, std::to_string(r.instructions),
               std::to_string(r.misses), fmt_double(r.ipc, 4),
               std::to_string(r.hbm_bytes), std::to_string(r.dram_bytes),
               fmt_double(r.energy_mj, 4), fmt_double(r.hbm_serve_rate, 4),
               fmt_double(r.mean_latency_ns, 2),
               fmt_double(r.mal_fraction, 4), fmt_double(r.overfetch, 4),
               std::to_string(r.page_faults),
               std::to_string(r.metadata_sram_bytes)});
  }
  t.print_csv(os);
}

void ExperimentRunner::write_json(std::ostream& os) const {
  const auto class_object = [](std::ostream& o,
                               const std::array<u64, mem::kTrafficClassCount>&
                                   bytes) {
    o << '{';
    for (std::size_t c = 0; c < mem::kTrafficClassCount; ++c) {
      if (c) o << ',';
      o << '"' << mem::to_string(static_cast<mem::TrafficClass>(c))
        << "\":" << bytes[c];
    }
    o << '}';
  };

  os << "[\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const RunResult& r = results_[i];
    os << "  {"
       << "\"design\":\"" << json_escape(r.design) << "\","
       << "\"workload\":\"" << json_escape(r.workload) << "\","
       << "\"instructions\":" << r.instructions << ','
       << "\"misses\":" << r.misses << ','
       << "\"ipc\":" << json_double(r.ipc) << ','
       << "\"hbm_bytes\":" << r.hbm_bytes << ','
       << "\"dram_bytes\":" << r.dram_bytes << ','
       << "\"energy_mj\":" << json_double(r.energy_mj) << ','
       << "\"hbm_serve_rate\":" << json_double(r.hbm_serve_rate) << ','
       << "\"mean_latency_ns\":" << json_double(r.mean_latency_ns) << ','
       << "\"mal_fraction\":" << json_double(r.mal_fraction) << ','
       << "\"overfetch\":" << json_double(r.overfetch) << ','
       << "\"page_faults\":" << r.page_faults << ','
       << "\"metadata_sram_bytes\":" << r.metadata_sram_bytes << ','
       << "\"hbm_class_bytes\":";
    class_object(os, r.hbm_class_bytes);
    os << ",\"dram_class_bytes\":";
    class_object(os, r.dram_class_bytes);
    os << '}' << (i + 1 < results_.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

}  // namespace bb::sim
