#include "sim/experiment.h"

#include <map>
#include <ostream>

#include "common/table.h"

namespace bb::sim {

ExperimentRunner::ExperimentRunner(SystemConfig cfg) : cfg_(std::move(cfg)) {}

void ExperimentRunner::run_matrix(
    const std::vector<std::string>& designs,
    const std::vector<trace::WorkloadProfile>& workloads, u64 target_misses,
    std::function<void(const RunResult&)> on_result, u64 min_instructions,
    u64 max_instructions) {
  System system(cfg_);
  for (const auto& w : workloads) {
    const u64 instr = default_instructions_for(
        w, target_misses, min_instructions, max_instructions);
    for (const auto& d : designs) {
      RunResult r = system.run(d, w, instr);
      if (on_result) on_result(r);
      results_.push_back(std::move(r));
    }
  }
}

std::vector<RunResult> ExperimentRunner::for_design(
    const std::string& design) const {
  std::vector<RunResult> out;
  for (const auto& r : results_) {
    if (r.design == design) out.push_back(r);
  }
  return out;
}

std::vector<std::pair<std::string, double>> ExperimentRunner::normalized(
    const std::string& design, const std::string& baseline_design,
    double (*metric)(const RunResult&)) const {
  std::map<std::string, double> base;
  for (const auto& r : results_) {
    if (r.design == baseline_design) base[r.workload] = metric(r);
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& r : results_) {
    if (r.design != design) continue;
    const auto it = base.find(r.workload);
    if (it == base.end() || it->second <= 0) continue;
    out.emplace_back(r.workload, metric(r) / it->second);
  }
  return out;
}

void ExperimentRunner::write_csv(std::ostream& os) const {
  TextTable t({"design", "workload", "instructions", "misses", "ipc",
               "hbm_bytes", "dram_bytes", "energy_mj", "hbm_serve_rate",
               "mean_latency_ns", "mal_fraction", "overfetch",
               "page_faults", "metadata_sram_bytes"});
  for (const auto& r : results_) {
    t.add_row({r.design, r.workload, std::to_string(r.instructions),
               std::to_string(r.misses), fmt_double(r.ipc, 4),
               std::to_string(r.hbm_bytes), std::to_string(r.dram_bytes),
               fmt_double(r.energy_mj, 4), fmt_double(r.hbm_serve_rate, 4),
               fmt_double(r.mean_latency_ns, 2),
               fmt_double(r.mal_fraction, 4), fmt_double(r.overfetch, 4),
               std::to_string(r.page_faults),
               std::to_string(r.metadata_sram_bytes)});
  }
  t.print_csv(os);
}

}  // namespace bb::sim
