// Full-system assembly and experiment runner.
//
// A System owns the two DRAM devices (Table I presets by default) and one
// memory-system design, replays a calibrated synthetic workload through the
// core model, and extracts every metric the paper's evaluation reports:
// IPC, HBM / off-chip traffic (with per-class split), memory dynamic
// energy, HBM serve rate, metadata access latency share, over-fetch
// fraction and page-fault counts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "bumblebee/config.h"
#include "common/metrics.h"
#include "common/trace_event.h"
#include "hmm/controller.h"
#include "mem/dram_device.h"
#include "sim/core_model.h"
#include "trace/generator.h"
#include "trace/workload.h"

namespace bb::trace {
class TraceCaptureSink;
}  // namespace bb::trace

namespace bb::sim {

/// Opt-in observability outputs for a run. Off by default: with neither
/// epoch sampling nor tracing enabled a run does no extra work beyond one
/// pointer test per request.
struct ObservabilityConfig {
  /// Epoch time-series sampling cadence (disabled while both fields are 0).
  EpochConfig epoch;
  /// Collect structured trace events (remap transitions, swaps, OS faults,
  /// warmup boundary) into the run's artifacts.
  bool trace = false;

  bool enabled() const { return epoch.enabled() || trace; }
};

/// Mid-run snapshot / restore configuration (crash-tolerant long runs).
/// When configured, a run commits an atomic, checksummed snapshot of the
/// complete simulator state every `interval_records` consumed trace
/// records, and (with `restore`) resumes from an existing snapshot file —
/// the resumed run's outputs are byte-identical to an uninterrupted one.
struct SnapshotConfig {
  /// Commit a snapshot every N consumed trace records (0 = never).
  u64 interval_records = 0;
  /// Directory holding the per-cell snapshot files (empty = disabled).
  std::string dir;
  /// Resume runs from their snapshot files when present.
  bool restore = false;

  bool configured() const {
    return !dir.empty() && (interval_records > 0 || restore);
  }
};

struct SystemConfig {
  mem::DramTimingParams hbm = mem::DramTimingParams::hbm2_1gb();
  mem::DramTimingParams dram = mem::DramTimingParams::ddr4_3200_10gb();
  CoreParams core;
  hmm::PagingConfig paging;
  u64 seed = 42;
  /// Warmup length as a fraction of the measured instruction count; stats
  /// are reset when warmup ends so results are steady-state (the paper
  /// simulates billions of instructions per SimPoint slice).
  double warmup_ratio = 1.0;
  ObservabilityConfig obs;
  /// Fault injection + ECC model (disabled by default — all rates zero, so
  /// fault-free runs build no fault state and stay bit-identical to the
  /// pre-fault golden outputs). See src/fault/fault.h.
  fault::FaultConfig fault;
  /// When set, every run records its merged miss stream (lane bases folded
  /// in, warmup included) to this sink — the `bbsim --capture-trace` hook.
  /// Not owned; must outlive the runs. nullptr = no capture (default).
  trace::TraceCaptureSink* capture = nullptr;
  /// Mid-run snapshot/restore (see SnapshotConfig). Mutually exclusive
  /// with `capture`; requires a snapshot-capable design and trace sources.
  SnapshotConfig snapshot;
};

/// Per-run observability payload (epoch rows + trace events), buffered in
/// memory and attached to the RunResult so the experiment runner can
/// serialize runs in matrix order — output files stay byte-identical
/// across --jobs values. Absent (nullptr) when observability is off.
struct RunArtifacts {
  std::vector<std::string> epoch_columns;  ///< metric names, registry order
  std::vector<EpochRow> epochs;
  std::vector<TraceEvent> events;
};

/// Per-core slice of a multi-programmed run: the core's own pipeline
/// numbers plus the memory-system statistics the controller attributed to
/// its requests (see hmm::CoreStats for the attribution rules).
struct CorePerf {
  u32 core = 0;
  std::string workload;
  u64 instructions = 0;
  u64 misses = 0;
  double ipc = 0;
  double hbm_serve_rate = 0;
  Ns mean_latency_ns = 0;
  Ns latency_p50_ns = 0;
  Ns latency_p99_ns = 0;
  u64 hbm_bytes = 0;   ///< device bytes caused by this core's requests
  u64 dram_bytes = 0;
};

/// Everything measured from one (design, workload) simulation.
struct RunResult {
  std::string design;
  std::string workload;

  u64 instructions = 0;
  u64 misses = 0;
  double ipc = 0;

  u64 hbm_bytes = 0;        ///< total HBM traffic
  u64 dram_bytes = 0;       ///< total off-chip traffic
  double energy_mj = 0;     ///< memory dynamic energy, millijoules
  double hbm_serve_rate = 0;
  Ns mean_latency_ns = 0;
  // Per-request latency percentiles (ns), interpolated from the
  // controller's latency histogram.
  Ns latency_p50_ns = 0;
  Ns latency_p90_ns = 0;
  Ns latency_p99_ns = 0;
  Ns latency_p999_ns = 0;
  double mal_fraction = 0;  ///< metadata share of request latency
  double overfetch = 0;     ///< unused fraction of fetched blocks
  u64 page_faults = 0;
  u64 metadata_sram_bytes = 0;

  /// The run never completed: its matrix cell hit the watchdog deadline
  /// and exhausted its retries. All measurement fields are zero; writers
  /// emit the timed_out column only when some row in the sweep set it.
  bool timed_out = false;

  // Request-queue scheduler outcome, aggregated over both devices (all
  // zero when the queue layer is off; the stat names follow ramulator's
  // HBM_Memory.h). Exported to CSV/JSON only when queues are configured,
  // so legacy outputs stay byte-identical.
  Ns queueing_latency_avg = 0;        ///< ns, reads + posted writes
  Ns read_queue_latency_avg = 0;      ///< ns, reads only
  double req_queue_length_avg = 0;    ///< queue+MSHR occupancy per arrival
  u64 write_drain_count = 0;          ///< watermark-triggered drain episodes

  // Reliability outcome of the run (all zero when fault injection is off).
  u64 ce_count = 0;         ///< ECC-corrected errors (both devices)
  u64 ue_count = 0;         ///< detected-uncorrectable errors (both devices)
  u64 due_retries = 0;      ///< DUE retry attempts issued by the controller
  u64 due_unrecovered = 0;  ///< DUEs that exhausted their retry budget
  u64 due_data_loss = 0;    ///< unrecovered reads with no clean copy left
  u64 retired_rows = 0;     ///< device rows retired after repeated CEs
  u64 retired_frames = 0;   ///< HBM frames mapped out by the design
  u64 degraded_sets = 0;    ///< remapping sets running in degraded mode

  // Per-class traffic split (indexes follow mem::TrafficClass).
  std::array<u64, mem::kTrafficClassCount> hbm_class_bytes{};
  std::array<u64, mem::kTrafficClassCount> dram_class_bytes{};

  /// Epoch rows + trace events when SystemConfig::obs enabled them
  /// (shared_ptr keeps RunResult cheap to copy; nullptr otherwise).
  std::shared_ptr<RunArtifacts> artifacts;

  /// Per-core attribution, populated by System::run_mix only (nullptr for
  /// homogeneous runs, so the scalar exports are unchanged).
  std::shared_ptr<std::vector<CorePerf>> core_perf;
};

class System {
 public:
  explicit System(SystemConfig cfg = SystemConfig{});

  /// Runs `design` on `workload` for `instructions` retired instructions.
  /// Each call constructs fresh devices and controller (no state leaks
  /// between runs).
  RunResult run(const std::string& design,
                const trace::WorkloadProfile& workload, u64 instructions);

  /// Runs a custom Bumblebee configuration (design-space exploration).
  RunResult run_bumblebee(const bumblebee::BumblebeeConfig& cfg,
                          const trace::WorkloadProfile& workload,
                          u64 instructions);

  /// Multi-programmed co-run: one lane per core (heterogeneous profiles,
  /// seeds and address bases — see sim/mix.h for the MixSpec front end).
  /// The lane count overrides SystemConfig::core.cores; the total budget
  /// is `per_core_instructions * lanes.size()`. The returned result is the
  /// aggregate (workload = `mix_name`) with per-core attribution attached
  /// via RunResult::core_perf; per-core sums are BB_CHECKed against the
  /// aggregate counters.
  RunResult run_mix(const std::string& design,
                    const std::vector<CoreLane>& lanes,
                    const std::string& mix_name, u64 per_core_instructions);

  /// Replays a recorded trace through `design`. A captured trace is the
  /// *merged* absolute-address stream of all cores, so it drives a single
  /// replay lane regardless of SystemConfig::core.cores; warmup_ratio
  /// applies as usual (the source loops, so the warmup pass replays the
  /// same records). `trace_name` labels the result's workload column.
  RunResult run_replay(const std::string& design, trace::TraceSource& source,
                       const std::string& trace_name, u64 instructions);

  /// Access to the most recent run's controller (inspection in tests and
  /// harnesses; invalidated by the next run()).
  hmm::HybridMemoryController* last_controller() { return hmmc_.get(); }
  mem::DramDevice* last_hbm() { return hbm_.get(); }
  mem::DramDevice* last_dram() { return dram_.get(); }

  const SystemConfig& config() const { return cfg_; }

  /// Watchdog hook: polled at record boundaries during a run; returning
  /// true aborts the run via CoreModel's RunInterrupted (the matrix cell
  /// soft deadline). An empty function disables polling.
  void set_interrupt(std::function<bool()> fn) { interrupt_ = std::move(fn); }

  /// Arms a one-shot restore: the next run resumes from its snapshot file
  /// (if one exists) even without SnapshotConfig::restore — the watchdog's
  /// retry-from-snapshot path. Cleared after the next run.
  void allow_restore_once() { restore_once_ = true; }

 private:
  RunResult run_current(const trace::WorkloadProfile& workload,
                        u64 instructions);
  /// Shared replay + result assembly for run_current, run_mix and
  /// run_replay. When `replay` is non-null it is the single record source
  /// (lanes then only size the core count); otherwise lanes seed fresh
  /// generators.
  RunResult run_lanes_current(const std::vector<CoreLane>& lanes,
                              u64 total_instructions,
                              const std::string& workload_name,
                              bool attach_core_perf,
                              trace::TraceSource* replay = nullptr);
  /// Constructs fresh devices for a run and, when cfg_.fault is enabled,
  /// fresh per-device fault state seeded from the run seed (fault-free runs
  /// attach nothing and take the historical code path).
  void make_devices();

  SystemConfig cfg_;
  std::unique_ptr<mem::DramDevice> hbm_;
  std::unique_ptr<mem::DramDevice> dram_;
  std::unique_ptr<fault::DeviceFaultState> hbm_faults_;
  std::unique_ptr<fault::DeviceFaultState> dram_faults_;
  std::unique_ptr<hmm::HybridMemoryController> hmmc_;
  std::function<bool()> interrupt_;
  bool restore_once_ = false;
};

/// Normalizes a metric against the "DRAM-only" row of the same workload.
/// Results without a baseline row are returned unchanged.
struct NormalizedSeries {
  std::vector<std::string> workloads;
  std::vector<double> values;
  double geomean = 0;
};

/// Groups run results by MPKI class and computes per-group geomeans of
/// `metric(result) / metric(baseline_result)`.
struct GroupedMetric {
  double high = 0;
  double medium = 0;
  double low = 0;
  double all = 0;
};

GroupedMetric group_by_mpki(
    const std::vector<RunResult>& results,
    const std::vector<RunResult>& baseline,
    double (*metric)(const RunResult&));

/// Like group_by_mpki but computes ratio-of-sums per group instead of a
/// geomean of per-workload ratios. Use for traffic/energy, where a
/// workload can legitimately measure zero (e.g. a fully HBM-resident
/// footprint produces no off-chip traffic) and a geomean would collapse.
GroupedMetric group_by_mpki_sums(
    const std::vector<RunResult>& results,
    const std::vector<RunResult>& baseline,
    double (*metric)(const RunResult&));

// Common metric extractors for group_by_mpki.
double metric_ipc(const RunResult& r);
double metric_hbm_traffic(const RunResult& r);
double metric_dram_traffic(const RunResult& r);
double metric_energy(const RunResult& r);

/// Reads an unsigned environment override (e.g. BB_INSTRUCTIONS), falling
/// back to `fallback` when unset or unparsable.
u64 env_u64(const char* name, u64 fallback);

/// Picks a per-workload instruction budget that yields roughly
/// `target_misses` LLC misses (low-MPKI workloads need more instructions
/// for a statistically meaningful miss sample), clamped to [min, max].
/// `BB_SIM_SCALE` (percent, default 100) scales the result for quick runs.
u64 default_instructions_for(const trace::WorkloadProfile& w,
                             u64 target_misses = 200'000,
                             u64 min_instructions = 20'000'000,
                             u64 max_instructions = 400'000'000);

}  // namespace bb::sim
