// Multi-programmed workload mixes: heterogeneous co-run specification,
// per-core speedup accounting against alone-run baselines, and the
// weighted-speedup / fairness metrics the multi-core evaluation reports.
//
// A MixSpec names one workload per core ("mcf+lbm+bwaves+wrf"). Running it
// through System::run_mix gives every core its own trace generator, seed
// and — for heterogeneous mixes — a disjoint address-space slice, so the
// cores genuinely contend for HBM capacity and bandwidth the way the
// paper's 8-core experiments do. MixResult then scores the co-run against
// cached alone-run IPCs:
//   * weighted speedup  = sum_i IPC_shared_i / IPC_alone_i
//   * hmean speedup     = n / sum_i (IPC_alone_i / IPC_shared_i)
//   * max slowdown      = max_i IPC_alone_i / IPC_shared_i  (fairness)
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/system.h"
#include "trace/workload.h"

namespace bb::sim {

/// One multi-programmed mix: an ordered list of per-core workload names.
struct MixSpec {
  std::string name;                    ///< preset name or the spec string
  std::vector<std::string> workloads;  ///< one entry per core, Table II names

  /// Parses a mix specification. A preset name ("cachey4") resolves to the
  /// preset; anything else is split on '+' ("mcf+lbm") and every component
  /// is validated via trace::require_workload_names, so a typo fails before
  /// any simulation starts. Throws std::invalid_argument on bad input.
  static MixSpec parse(const std::string& spec);

  /// Named preset mixes for the contended-mix study: cache-friendly cores
  /// (cachey4), capacity-hungry streamers (capacity4), the contended blend
  /// of both (mixed-locality4) and a two-core smoke mix (cachecap2).
  static const std::vector<MixSpec>& presets();

  /// Per-core profiles, in lane order.
  std::vector<trace::WorkloadProfile> resolve() const;

  /// Builds one CoreLane per workload. Lane seeds follow the same
  /// derivation as CoreModel::homogeneous_lanes, so a homogeneous mix
  /// ("mcf+mcf") replays exactly the streams of a multi-core single-profile
  /// run. Heterogeneous mixes get disjoint 64 KiB-aligned address bases so
  /// the cores' footprints sum — the OS paging model then sees the combined
  /// working set and applies pressure once it exceeds visible capacity.
  std::vector<CoreLane> lanes(u64 seed) const;

  /// True when every core runs the same workload (lanes then share address
  /// base 0, the single-profile convention).
  bool homogeneous() const;

  /// Sum of the per-core footprints (what the OS must back).
  u64 total_footprint_bytes() const;

  u32 cores() const { return static_cast<u32>(workloads.size()); }
};

/// Preset names in presets() order (what drivers print for --list-mixes).
std::vector<std::string> mix_names();

/// Cached alone-run baselines: (design, workload) -> IPC of the workload
/// running alone (one core) under that design. Shared across every mix in
/// a matrix so each baseline is simulated once.
using AloneIpcMap = std::map<std::pair<std::string, std::string>, double>;

/// One core's slice of a mix run, scored against its alone-run baseline.
struct MixCoreResult {
  CorePerf perf;
  double alone_ipc = 0;  ///< IPC running alone (same design, one core)
  double speedup = 0;    ///< IPC_shared / IPC_alone (< 1 under contention)
};

/// Everything measured from one (design, mix) co-run cell.
struct MixResult {
  std::string design;
  std::string mix;
  RunResult aggregate;  ///< workload = mix name; core_perf attached
  std::vector<MixCoreResult> cores;
  double weighted_speedup = 0;
  double hmean_speedup = 0;
  double max_slowdown = 0;
};

/// Runs one (design, mix) cell on `system` and scores it against `alone`.
/// Cores whose (design, workload) baseline is missing from `alone` get
/// alone_ipc = speedup = 0 and are excluded from the harmonic mean.
MixResult run_mix_cell(System& system, const std::string& design,
                       const MixSpec& mix, u64 per_core_instructions,
                       const AloneIpcMap& alone);

}  // namespace bb::sim
