#include "sim/mix.h"

#include <algorithm>
#include <stdexcept>

namespace bb::sim {

namespace {

constexpr u64 kBaseAlign = 64 * KiB;

u64 align_up(u64 v, u64 align) { return (v + align - 1) / align * align; }

MixSpec make_mix(std::string name, std::vector<std::string> workloads) {
  MixSpec m;
  m.name = std::move(name);
  m.workloads = std::move(workloads);
  return m;
}

}  // namespace

const std::vector<MixSpec>& MixSpec::presets() {
  // Mix design follows the paper's taxonomy (Section II-B): cachey4 pairs
  // strong-temporal, HBM-resident footprints; capacity4 pairs streaming,
  // capacity-hungry footprints; mixed-locality4 contends both kinds on one
  // package. cachecap4 is the two-profile contended blend (one
  // strong-temporal core against three capacity streamers) used as the
  // headline in bench/mix_comparison; cachecap2 is the minimal contended
  // pair for smoke tests.
  static const std::vector<MixSpec> kPresets = {
      make_mix("cachey4", {"mcf", "xalancbmk", "wrf", "fotonik3d"}),
      make_mix("capacity4", {"roms", "lbm", "bwaves", "xz"}),
      make_mix("mixed-locality4", {"mcf", "wrf", "lbm", "xz"}),
      make_mix("cachecap4", {"mcf", "lbm", "lbm", "lbm"}),
      make_mix("cachecap2", {"mcf", "lbm"}),
  };
  return kPresets;
}

std::vector<std::string> mix_names() {
  std::vector<std::string> out;
  for (const auto& m : MixSpec::presets()) out.push_back(m.name);
  return out;
}

MixSpec MixSpec::parse(const std::string& spec) {
  for (const auto& preset : presets()) {
    if (preset.name == spec) return preset;
  }
  MixSpec m;
  m.name = spec;
  std::string cur;
  for (const char ch : spec) {
    if (ch == '+') {
      m.workloads.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  m.workloads.push_back(cur);
  if (spec.empty() ||
      std::any_of(m.workloads.begin(), m.workloads.end(),
                  [](const std::string& w) { return w.empty(); })) {
    throw std::invalid_argument(
        "bad mix spec: \"" + spec +
        "\" (expected a preset name or workload names joined by '+')");
  }
  trace::require_workload_names(m.workloads);
  return m;
}

std::vector<trace::WorkloadProfile> MixSpec::resolve() const {
  std::vector<trace::WorkloadProfile> out;
  out.reserve(workloads.size());
  for (const auto& w : workloads) {
    out.push_back(trace::WorkloadProfile::by_name(w));
  }
  return out;
}

bool MixSpec::homogeneous() const {
  return std::all_of(workloads.begin(), workloads.end(),
                     [this](const std::string& w) {
                       return w == workloads.front();
                     });
}

u64 MixSpec::total_footprint_bytes() const {
  u64 total = 0;
  for (const auto& p : resolve()) total += p.footprint_bytes();
  return total;
}

std::vector<CoreLane> MixSpec::lanes(u64 seed) const {
  const auto profiles = resolve();
  const bool shared_base = homogeneous();
  std::vector<CoreLane> out;
  out.reserve(profiles.size());
  u64 next_base = 0;
  for (std::size_t c = 0; c < profiles.size(); ++c) {
    CoreLane lane;
    lane.profile = profiles[c];
    // Same derivation as CoreModel::homogeneous_lanes, so homogeneous
    // mixes replay bit-identical streams to a single-profile run.
    lane.seed = seed + 0x1000003ULL * c;
    lane.base = shared_base ? 0 : next_base;
    next_base = align_up(next_base + profiles[c].footprint_bytes(),
                         kBaseAlign);
    out.push_back(std::move(lane));
  }
  return out;
}

MixResult run_mix_cell(System& system, const std::string& design,
                       const MixSpec& mix, u64 per_core_instructions,
                       const AloneIpcMap& alone) {
  MixResult out;
  out.design = design;
  out.mix = mix.name;
  out.aggregate = system.run_mix(design, mix.lanes(system.config().seed),
                                 mix.name, per_core_instructions);

  double inv_speedup_sum = 0;
  std::size_t scored = 0;
  for (const CorePerf& p : *out.aggregate.core_perf) {
    MixCoreResult core;
    core.perf = p;
    const auto it = alone.find({design, p.workload});
    core.alone_ipc = it != alone.end() ? it->second : 0;
    if (core.alone_ipc > 0 && p.ipc > 0) {
      core.speedup = p.ipc / core.alone_ipc;
      out.weighted_speedup += core.speedup;
      inv_speedup_sum += 1.0 / core.speedup;
      out.max_slowdown = std::max(out.max_slowdown, 1.0 / core.speedup);
      ++scored;
    }
    out.cores.push_back(std::move(core));
  }
  out.hmean_speedup = inv_speedup_sum > 0
                          ? static_cast<double>(scored) / inv_speedup_sum
                          : 0;
  return out;
}

}  // namespace bb::sim
