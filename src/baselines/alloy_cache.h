// Alloy Cache (Qureshi & Loh, MICRO 2012).
//
// A direct-mapped, block-granularity (64 B) DRAM cache that streams Tag-
// And-Data (TAD) units: tag and data are alloyed into one 72 B burst, so a
// hit needs a single HBM access and there is no separate SRAM tag store.
// The HBM is invisible to the OS (pure cache). Misses pay the TAD probe
// before going off-chip — the metadata-in-HBM latency the paper's MAL
// analysis highlights.
#pragma once

#include <vector>

#include "common/bitvector.h"
#include "hmm/controller.h"

namespace bb::baselines {

struct AlloyConfig {
  u64 line_bytes = 64;
  u64 tad_bytes = 72;  ///< 64 B data + 8 B tag, streamed as one unit
};

class AlloyCacheController final : public hmm::HybridMemoryController {
 public:
  AlloyCacheController(mem::DramDevice& hbm, mem::DramDevice& dram,
                       hmm::PagingConfig paging = {},
                       const AlloyConfig& cfg = {});

  /// Tags live in HBM; the controller itself needs no SRAM metadata.
  u64 metadata_sram_bytes() const override { return 0; }

  u64 line_count() const { return lines_; }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  AlloyConfig cfg_;
  u64 lines_;                ///< direct-mapped TAD slots
  std::vector<u8> tag_;      ///< tag per slot (small: footprint/HBM ratio)
  BitVector valid_;
  BitVector dirty_;
};

}  // namespace bb::baselines
