#include "baselines/chameleon.h"

#include <cassert>

namespace bb::baselines {

ChameleonController::ChameleonController(mem::DramDevice& hbm,
                                         mem::DramDevice& dram,
                                         hmm::PagingConfig paging,
                                         const ChameleonConfig& cfg)
    : HybridMemoryController(
          "Chameleon", hbm, dram,
          [&] {
            paging.visible_bytes = dram.capacity() + hbm.capacity();
            return paging;
          }()),
      cfg_(cfg),
      sets_(static_cast<u32>(hbm.capacity() / cfg.segment_bytes)),
      m_(static_cast<u32>(dram.capacity() / cfg.segment_bytes / sets_)) {
  assert(m_ + 1 <= 0xff && "u8 permutation entries");
  entries_.resize(sets_);
  for (auto& e : entries_) {
    e.counter.assign(m_ + 1, 0);
    e.seg_at_frame.resize(m_ + 1);
    for (u32 f = 0; f <= m_; ++f) e.seg_at_frame[f] = static_cast<u8>(f);
  }

  hmm::MetadataConfig mc;
  mc.placement = hmm::MetadataPlacement::kSramCachedHbm;
  mc.cache_bytes = cfg_.metadata_cache_bytes;
  mc.entry_bytes = 8;
  meta_ = std::make_unique<hmm::MetadataModel>(mc, &hbm);
}

u64 ChameleonController::metadata_sram_bytes() const {
  // Per set: the frame permutation plus one counter per segment.
  return static_cast<u64>(sets_) * 2ULL * (m_ + 1);
}

hmm::HmmResult ChameleonController::service(Addr addr, AccessType type,
                                            Tick now) {
  hmm::HmmResult res;
  const u64 visible = static_cast<u64>(sets_) * (m_ + 1) * cfg_.segment_bytes;
  const Addr a = addr % visible;
  const u64 seg_global = a / cfg_.segment_bytes;
  // Consecutive grouping: each remapping set covers m_+1 adjacent segments
  // sharing ONE near slot — the restriction the paper blames for uneven
  // HBM utilization (dense hot regions span a whole set but only one of
  // its segments can be near) and frequent sector migration.
  const u32 set = static_cast<u32>(seg_global / (m_ + 1));
  const u32 seg = static_cast<u32>(seg_global % (m_ + 1));  // in-set index
  const u64 off = a % cfg_.segment_bytes;
  SetEntry& e = entries_[set];

  // Remap lookup through the SRAM metadata cache (misses go to HBM); the
  // table is per segment, so large footprints overflow the 512 KB cache.
  res.metadata_latency = meta_->lookup(seg_global, now);
  Tick t = now + res.metadata_latency;

  // The access counter is metadata too: it is updated on every access and
  // written through the SRAM metadata cache (misses cost HBM traffic).
  if (e.counter[seg] < 0xff) ++e.counter[seg];
  meta_->update(seg_global, now);

  // Locate the segment's frame in the set's permutation. Frame m_ is the
  // set's single HBM slot; frames [0, m_) are off-chip.
  u32 frame = m_ + 1;
  for (u32 f = 0; f <= m_; ++f) {
    if (e.seg_at_frame[f] == seg) {
      frame = f;
      break;
    }
  }
  assert(frame <= m_);

  const Addr hbm_slot = static_cast<u64>(set) * cfg_.segment_bytes;
  auto dram_frame_addr = [&](u32 f) {
    return (static_cast<u64>(set) * m_ + f) * cfg_.segment_bytes;
  };

  if (frame == m_) {
    const auto r = hbm().access(hbm_slot + off, 64, type, t,
                                mem::TrafficClass::kDemand);
    res.complete = r.complete;
    res.served_by_hbm = true;
    res.phys_addr = hbm_slot + off;
    return res;
  }

  const Addr pa = dram_frame_addr(frame) + off;
  const auto r = dram().access(pa, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = pa;

  // Swap decision: the challenger must beat the HBM occupant's counter by
  // the threshold; a full segment swap then moves data both ways.
  const u32 occupant = e.seg_at_frame[m_];
  if (e.counter[seg] >= static_cast<u32>(e.counter[occupant]) +
                            cfg_.swap_threshold) {
    swap_data(hbm(), hbm_slot, dram(), dram_frame_addr(frame),
              cfg_.segment_bytes, r.complete, mem::TrafficClass::kMigration);
    e.seg_at_frame[m_] = static_cast<u8>(seg);
    e.seg_at_frame[frame] = static_cast<u8>(occupant);
    e.counter[occupant] /= 2;  // age the displaced segment
    ++mutable_stats().swaps;
    mutable_stats().blocks_fetched += cfg_.segment_bytes / 64;
    ++mutable_stats().fetched_blocks_used;
    meta_->update(seg_global, r.complete);
  }
  return res;
}

}  // namespace bb::baselines
