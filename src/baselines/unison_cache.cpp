#include "baselines/unison_cache.h"

namespace bb::baselines {

UnisonCacheController::UnisonCacheController(mem::DramDevice& hbm,
                                             mem::DramDevice& dram,
                                             hmm::PagingConfig paging,
                                             const UnisonConfig& cfg)
    : HybridMemoryController("UC", hbm, dram,
                             [&] {
                               paging.visible_bytes = dram.capacity();
                               return paging;
                             }()),
      cfg_(cfg) {
  const u64 slot_bytes = cfg_.page_bytes + cfg_.tag_bytes_per_page;
  const u64 pages = hbm.capacity() / slot_bytes;
  sets_ = static_cast<u32>(pages / cfg_.ways);
  ways_.resize(static_cast<std::size_t>(sets_) * cfg_.ways);
  for (auto& w : ways_) {
    w.present.resize(blocks_per_page());
    w.dirty.resize(blocks_per_page());
    w.used.resize(blocks_per_page());
  }
}

u64 UnisonCacheController::metadata_sram_bytes() const {
  // Footprint history table: per entry a page id (4 B) plus one bit per
  // block of the page.
  return cfg_.footprint_table_entries * (4 + blocks_per_page() / 8);
}

Addr UnisonCacheController::frame_addr(u32 set, u32 w) const {
  const u64 slot_bytes = cfg_.page_bytes + cfg_.tag_bytes_per_page;
  return (static_cast<u64>(set) * cfg_.ways + w) * slot_bytes;
}

BitVector UnisonCacheController::predicted_footprint(u64 page) const {
  // The history table is direct-mapped by page id (aliasing pages share an
  // entry, as a real bounded SRAM table would).
  const auto it = footprints_.find(page % cfg_.footprint_table_entries);
  if (it != footprints_.end()) return it->second;
  return BitVector(blocks_per_page());
}

void UnisonCacheController::evict(u32 set, u32 w, Tick now) {
  Way& way = way_at(set, w);
  if (!way.valid) return;
  const Addr frame = frame_addr(set, w);
  const Addr home = (way.page * cfg_.page_bytes) % dram().capacity();
  for (u32 b = 0; b < blocks_per_page(); ++b) {
    if (way.dirty.test(b)) {
      move_data(hbm(), frame + b * cfg_.block_bytes, dram(),
                home + b * cfg_.block_bytes, cfg_.block_bytes, now,
                mem::TrafficClass::kWriteback);
    }
  }
  // Record the residency footprint for the next fill of this page.
  footprints_[way.page % cfg_.footprint_table_entries] = way.used;
  way.valid = false;
  way.present.clear_all();
  way.dirty.clear_all();
  way.used.clear_all();
  ++mutable_stats().evictions;
}

hmm::HmmResult UnisonCacheController::service(Addr addr, AccessType type,
                                              Tick now) {
  hmm::HmmResult res;
  const Addr phys = addr % dram().capacity();
  const u64 page = phys / cfg_.page_bytes;
  const u32 set = static_cast<u32>(page % sets_);
  const u32 block = static_cast<u32>((phys % cfg_.page_bytes) /
                                     cfg_.block_bytes);
  const u64 in_block_off = phys % cfg_.block_bytes;

  // Embedded tags: one HBM metadata read covering the set's way tags.
  const auto tags = hbm().access(frame_addr(set, 0) + cfg_.page_bytes,
                                 cfg_.tag_bytes_per_page * cfg_.ways,
                                 AccessType::kRead, now,
                                 mem::TrafficClass::kMetadata);
  res.metadata_latency = tags.latency();
  Tick t = tags.complete;

  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = way_at(set, w);
    if (way.valid && way.page == page) {
      way.lru_stamp = ++lru_clock_;
      if (way.present.test(block)) {
        const Addr pa = frame_addr(set, w) + block * cfg_.block_bytes +
                        in_block_off;
        const auto r =
            hbm().access(pa, 64, type, t, mem::TrafficClass::kDemand);
        res.complete = r.complete;
        res.served_by_hbm = true;
        res.phys_addr = pa;
        if (type == AccessType::kWrite) way.dirty.set(block);
        if (!way.used.test(block)) {
          way.used.set(block);
          ++mutable_stats().fetched_blocks_used;
        }
        return res;
      }
      // Footprint mispredict: block not fetched; serve off-chip and add it.
      const auto r = dram().access(phys, 64, type, t,
                                   mem::TrafficClass::kDemand);
      move_data(dram(), phys - in_block_off, hbm(),
                frame_addr(set, w) + block * cfg_.block_bytes,
                cfg_.block_bytes, r.complete, mem::TrafficClass::kFill);
      way.present.set(block);
      way.used.set(block);
      ++mutable_stats().blocks_fetched;
      ++mutable_stats().fetched_blocks_used;
      res.complete = r.complete;
      res.served_by_hbm = false;
      res.phys_addr = phys;
      return res;
    }
  }

  // Page miss: serve off-chip, then install with the predicted footprint.
  const auto r = dram().access(phys, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = phys;

  // Victim: invalid way or LRU.
  u32 victim = 0;
  u64 oldest = ~u64{0};
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = way_at(set, w);
    if (!way.valid) {
      victim = w;
      oldest = 0;
      break;
    }
    if (way.lru_stamp < oldest) {
      oldest = way.lru_stamp;
      victim = w;
    }
  }
  evict(set, victim, r.complete);

  Way& way = way_at(set, victim);
  way.valid = true;
  way.page = page;
  way.lru_stamp = ++lru_clock_;
  BitVector fp = predicted_footprint(page);
  fp.set(block);  // always fetch the demanded block
  const Addr frame = frame_addr(set, victim);
  const Addr home = page * cfg_.page_bytes;
  for (u32 b = 0; b < blocks_per_page(); ++b) {
    if (fp.test(b)) {
      move_data(dram(), home + b * cfg_.block_bytes, hbm(),
                frame + b * cfg_.block_bytes, cfg_.block_bytes, r.complete,
                mem::TrafficClass::kFill);
      way.present.set(b);
      ++mutable_stats().blocks_fetched;
    }
  }
  way.used.set(block);
  ++mutable_stats().fetched_blocks_used;
  if (type == AccessType::kWrite) way.dirty.set(block);
  // Tag update rides with the fill.
  hbm().access(frame + cfg_.page_bytes, cfg_.tag_bytes_per_page,
               AccessType::kWrite, r.complete, mem::TrafficClass::kMetadata);
  return res;
}

}  // namespace bb::baselines
