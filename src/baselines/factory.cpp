#include "baselines/factory.h"

#include <algorithm>
#include <stdexcept>

#include "baselines/alloy_cache.h"
#include "baselines/banshee.h"
#include "baselines/chameleon.h"
#include "baselines/hybrid2.h"
#include "baselines/mempod.h"
#include "baselines/pom.h"
#include "baselines/silcfm.h"
#include "baselines/unison_cache.h"
#include "bumblebee/controller.h"

namespace bb::baselines {

std::unique_ptr<hmm::HybridMemoryController> make_design(
    const std::string& name, mem::DramDevice& hbm, mem::DramDevice& dram,
    const hmm::PagingConfig& paging) {
  using bumblebee::BumblebeeConfig;
  using bumblebee::BumblebeeController;

  auto bumble = [&](const BumblebeeConfig& cfg) {
    return std::make_unique<BumblebeeController>(cfg, hbm, dram, paging);
  };

  if (name == "DRAM-only") {
    return std::make_unique<hmm::DramOnlyController>(hbm, dram, paging);
  }
  if (name == "Banshee") {
    return std::make_unique<BansheeController>(hbm, dram, paging);
  }
  if (name == "AC") {
    return std::make_unique<AlloyCacheController>(hbm, dram, paging);
  }
  if (name == "UC") {
    return std::make_unique<UnisonCacheController>(hbm, dram, paging);
  }
  if (name == "Chameleon") {
    return std::make_unique<ChameleonController>(hbm, dram, paging);
  }
  if (name == "Hybrid2") {
    return std::make_unique<Hybrid2Controller>(hbm, dram, paging);
  }
  if (name == "PoM") {
    return std::make_unique<PomController>(hbm, dram, paging);
  }
  if (name == "MemPod") {
    return std::make_unique<MemPodController>(hbm, dram, paging);
  }
  if (name == "SILC-FM") {
    return std::make_unique<SilcFmController>(hbm, dram, paging);
  }
  if (name == "Bumblebee") return bumble(BumblebeeConfig::baseline());
  if (name == "C-Only") return bumble(BumblebeeConfig::c_only());
  if (name == "M-Only") return bumble(BumblebeeConfig::m_only());
  if (name == "25%-C") return bumble(BumblebeeConfig::fixed_chbm(0.25));
  if (name == "50%-C") return bumble(BumblebeeConfig::fixed_chbm(0.5));
  if (name == "No-Multi") return bumble(BumblebeeConfig::no_multi());
  if (name == "Meta-H") return bumble(BumblebeeConfig::meta_h());
  if (name == "Alloc-D") return bumble(BumblebeeConfig::alloc_d());
  if (name == "Alloc-H") return bumble(BumblebeeConfig::alloc_h());
  if (name == "No-HMF") return bumble(BumblebeeConfig::no_hmf());

  throw std::invalid_argument("unknown design: " + name);
}

const std::vector<std::string>& figure8_designs() {
  static const std::vector<std::string> kDesigns = {
      "Banshee", "AC", "UC", "Chameleon", "Hybrid2", "Bumblebee"};
  return kDesigns;
}

const std::vector<std::string>& figure7_designs() {
  static const std::vector<std::string> kDesigns = {
      "C-Only", "M-Only",  "25%-C",   "50%-C",   "No-Multi",
      "Meta-H", "Alloc-D", "Alloc-H", "No-HMF",  "Bumblebee"};
  return kDesigns;
}

const std::vector<std::string>& comparison_designs() {
  static const std::vector<std::string> kDesigns = {
      "DRAM-only", "Banshee", "AC",     "UC",     "Chameleon",
      "Hybrid2",   "PoM",     "SILC-FM", "MemPod", "Bumblebee"};
  return kDesigns;
}

const std::vector<std::string>& all_design_names() {
  static const std::vector<std::string> kDesigns = {
      "DRAM-only", "Banshee", "AC",      "UC",       "Chameleon",
      "Hybrid2",   "PoM",     "MemPod",  "SILC-FM",  "Bumblebee",
      "C-Only",    "M-Only",  "25%-C",   "50%-C",    "No-Multi",
      "Meta-H",    "Alloc-D", "Alloc-H", "No-HMF"};
  return kDesigns;
}

void require_design_names(const std::vector<std::string>& names) {
  const auto& known = all_design_names();
  for (const auto& name : names) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown design: " + name);
    }
  }
}

}  // namespace bb::baselines
