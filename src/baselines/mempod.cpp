#include "baselines/mempod.h"

#include <algorithm>
#include <cassert>

#include "common/trace_event.h"

namespace bb::baselines {

MemPodController::MemPodController(mem::DramDevice& hbm,
                                   mem::DramDevice& dram,
                                   hmm::PagingConfig paging,
                                   const MemPodConfig& cfg)
    : HybridMemoryController(
          "MemPod", hbm, dram,
          [&] {
            paging.visible_bytes = dram.capacity() + hbm.capacity();
            return paging;
          }()),
      cfg_(cfg),
      hbm_pages_per_pod_(hbm.capacity() / cfg.page_bytes / cfg.pods),
      dram_pages_per_pod_(dram.capacity() / cfg.page_bytes / cfg.pods) {
  assert(hbm_pages_per_pod_ > 0 && dram_pages_per_pod_ > 0);
  pods_.resize(cfg_.pods);
  const u64 pages = hbm_pages_per_pod_ + dram_pages_per_pod_;
  for (auto& pod : pods_) {
    pod.frame_of.resize(pages);
    pod.page_at.resize(pages);
    for (u64 i = 0; i < pages; ++i) {
      pod.frame_of[i] = static_cast<u32>(i);
      pod.page_at[i] = static_cast<u32>(i);
    }
    pod.mea.resize(cfg_.mea_counters);
    pod.hbm_access.assign(hbm_pages_per_pod_, 0);
  }
}

u64 MemPodController::metadata_sram_bytes() const {
  // Full remap table (4 B per page both directions) + MEA counters.
  const u64 pages = hbm_pages_per_pod_ + dram_pages_per_pod_;
  return static_cast<u64>(cfg_.pods) *
         (pages * 8 + cfg_.mea_counters * 12);
}

void MemPodController::mea_touch(Pod& pod, u64 page) {
  // Majority Element Algorithm: increment the page's counter if tracked;
  // otherwise claim a zero-count slot; otherwise decrement everyone.
  for (auto& e : pod.mea) {
    if (e.count > 0 && e.page == page) {
      ++e.count;
      return;
    }
  }
  for (auto& e : pod.mea) {
    if (e.count == 0) {
      e.page = page;
      e.count = 1;
      return;
    }
  }
  for (auto& e : pod.mea) {
    --e.count;
  }
}

void MemPodController::run_interval(Pod& pod, u32 pod_idx, Tick now) {
  // Sort MEA candidates hottest-first (only those still in far memory).
  std::vector<MeaEntry> cands;
  for (const auto& e : pod.mea) {
    if (e.count > 0 && pod.frame_of[e.page] < dram_pages_per_pod_) {
      cands.push_back(e);
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const MeaEntry& a, const MeaEntry& b) {
              return a.count > b.count;
            });

  // Coldest HBM frames by interval access count (HBM frames are the
  // frames at and above the DRAM slice).
  std::vector<u32> frames(hbm_pages_per_pod_);
  for (u32 f = 0; f < hbm_pages_per_pod_; ++f) {
    frames[f] = static_cast<u32>(dram_pages_per_pod_) + f;
  }
  std::sort(frames.begin(), frames.end(), [&](u32 a, u32 b) {
    return pod.hbm_access[a - dram_pages_per_pod_] <
           pod.hbm_access[b - dram_pages_per_pod_];
  });

  const u64 pod_hbm_base =
      static_cast<u64>(pod_idx) * hbm_pages_per_pod_ * cfg_.page_bytes;
  const u64 pod_dram_base =
      static_cast<u64>(pod_idx) * dram_pages_per_pod_ * cfg_.page_bytes;

  const std::size_t n = std::min<std::size_t>(cands.size(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    const u32 hot_page = static_cast<u32>(cands[i].page);
    const u32 cold_frame = frames[i];
    // Only displace strictly colder residents.
    if (pod.hbm_access[cold_frame - dram_pages_per_pod_] >=
        cands[i].count) {
      break;
    }
    const u32 hot_frame = pod.frame_of[hot_page];
    const u32 cold_page = pod.page_at[cold_frame];

    swap_data(hbm(),
              pod_hbm_base + static_cast<u64>(cold_frame -
                                              dram_pages_per_pod_) *
                                 cfg_.page_bytes,
              dram(),
              pod_dram_base + static_cast<u64>(hot_frame) * cfg_.page_bytes,
              cfg_.page_bytes, now, mem::TrafficClass::kMigration);

    pod.frame_of[hot_page] = cold_frame;
    pod.frame_of[cold_page] = hot_frame;
    pod.page_at[cold_frame] = hot_page;
    pod.page_at[hot_frame] = cold_page;
    if (tracing()) {
      trace()->emit(TraceEvent(now, "page_swap", "mempod")
                        .arg("pod", pod_idx)
                        .arg("hot_page", hot_page)
                        .arg("cold_page", cold_page)
                        .arg("bytes", cfg_.page_bytes));
    }
    ++interval_migrations_;
    ++mutable_stats().swaps;
    mutable_stats().blocks_fetched += cfg_.page_bytes / 64;
    ++mutable_stats().fetched_blocks_used;
  }

  for (auto& e : pod.mea) e = MeaEntry{};
  for (auto& c : pod.hbm_access) c = 0;
  pod.next_interval = now + cfg_.interval;
}

hmm::HmmResult MemPodController::service(Addr addr, AccessType type,
                                         Tick now) {
  hmm::HmmResult res;
  const u64 pages_per_pod = hbm_pages_per_pod_ + dram_pages_per_pod_;
  const u64 visible =
      static_cast<u64>(cfg_.pods) * pages_per_pod * cfg_.page_bytes;
  const Addr a = addr % visible;
  const u64 gp = a / cfg_.page_bytes;
  const u32 pod_idx = static_cast<u32>(gp % cfg_.pods);
  const u64 page = gp / cfg_.pods;  // pod-local logical page
  const u64 off = a % cfg_.page_bytes;
  Pod& pod = pods_[pod_idx];

  res.metadata_latency = cfg_.sram_latency;  // remap tables are SRAM here
  Tick t = now + cfg_.sram_latency;

  if (now >= pod.next_interval) run_interval(pod, pod_idx, now);

  const u32 frame = pod.frame_of[page];
  if (frame >= dram_pages_per_pod_) {
    ++pod.hbm_access[frame - dram_pages_per_pod_];
    const Addr pa = static_cast<u64>(pod_idx) * hbm_pages_per_pod_ *
                        cfg_.page_bytes +
                    static_cast<u64>(frame - dram_pages_per_pod_) *
                        cfg_.page_bytes +
                    off;
    const auto r = hbm().access(pa, 64, type, t, mem::TrafficClass::kDemand);
    res.complete = r.complete;
    res.served_by_hbm = true;
    res.phys_addr = pa;
    return res;
  }

  mea_touch(pod, page);
  const Addr pa = static_cast<u64>(pod_idx) * dram_pages_per_pod_ *
                      cfg_.page_bytes +
                  static_cast<u64>(frame) * cfg_.page_bytes + off;
  const auto r = dram().access(pa, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = pa;
  return res;
}

}  // namespace bb::baselines
