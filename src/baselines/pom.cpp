#include "baselines/pom.h"

#include <cassert>

namespace bb::baselines {

PomController::PomController(mem::DramDevice& hbm, mem::DramDevice& dram,
                             hmm::PagingConfig paging, const PomConfig& cfg)
    : HybridMemoryController(
          "PoM", hbm, dram,
          [&] {
            paging.visible_bytes = dram.capacity() + hbm.capacity();
            return paging;
          }()),
      cfg_(cfg),
      sets_(static_cast<u32>(hbm.capacity() / cfg.sector_bytes)),
      m_(static_cast<u32>(dram.capacity() / cfg.sector_bytes / sets_)) {
  assert(m_ + 1 <= 0xff);
  entries_.resize(sets_);
  for (auto& e : entries_) {
    e.sector_at_frame.resize(m_ + 1);
    for (u32 f = 0; f <= m_; ++f) e.sector_at_frame[f] = static_cast<u8>(f);
    e.challenger = 0;
  }

  hmm::MetadataConfig mc;
  mc.placement = hmm::MetadataPlacement::kSramCachedHbm;
  mc.cache_bytes = cfg_.metadata_cache_bytes;
  mc.entry_bytes = 8;
  meta_ = std::make_unique<hmm::MetadataModel>(mc, &hbm);
}

u64 PomController::metadata_sram_bytes() const {
  // Permutation + one competing counter + challenger id per set.
  return static_cast<u64>(sets_) * ((m_ + 1) + 4);
}

hmm::HmmResult PomController::service(Addr addr, AccessType type, Tick now) {
  hmm::HmmResult res;
  const u64 visible =
      static_cast<u64>(sets_) * (m_ + 1) * cfg_.sector_bytes;
  const Addr a = addr % visible;
  const u64 sec_global = a / cfg_.sector_bytes;
  const u32 set = static_cast<u32>(sec_global / (m_ + 1));
  const u32 sec = static_cast<u32>(sec_global % (m_ + 1));
  const u64 off = a % cfg_.sector_bytes;
  SetEntry& e = entries_[set];

  res.metadata_latency = meta_->lookup(sec_global, now);
  Tick t = now + res.metadata_latency;

  u32 frame = m_ + 1;
  for (u32 f = 0; f <= m_; ++f) {
    if (e.sector_at_frame[f] == sec) {
      frame = f;
      break;
    }
  }
  assert(frame <= m_);

  const Addr hbm_slot = static_cast<u64>(set) * cfg_.sector_bytes;
  auto dram_frame_addr = [&](u32 f) {
    return (static_cast<u64>(set) * m_ + f) * cfg_.sector_bytes;
  };

  if (frame == m_) {
    // Near access: the occupant defends — the competing counter decays.
    if (e.counter > 0) --e.counter;
    const auto r = hbm().access(hbm_slot + off, 64, type, t,
                                mem::TrafficClass::kDemand);
    res.complete = r.complete;
    res.served_by_hbm = true;
    res.phys_addr = hbm_slot + off;
    return res;
  }

  const Addr pa = dram_frame_addr(frame) + off;
  const auto r = dram().access(pa, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = pa;

  // Competing counter: a far access by the tracked challenger increments;
  // a different far sector takes over the challenger slot when the counter
  // has decayed to zero (MEA-style tracking with one counter).
  if (e.challenger == sec) {
    ++e.counter;
  } else if (e.counter == 0) {
    e.challenger = sec;
    e.counter = 1;
  } else {
    --e.counter;
  }

  if (e.challenger == sec &&
      e.counter >= static_cast<i64>(cfg_.swap_threshold)) {
    swap_data(hbm(), hbm_slot, dram(), dram_frame_addr(frame),
              cfg_.sector_bytes, r.complete, mem::TrafficClass::kMigration);
    const u32 occupant = e.sector_at_frame[m_];
    e.sector_at_frame[m_] = static_cast<u8>(sec);
    e.sector_at_frame[frame] = static_cast<u8>(occupant);
    e.counter = 0;
    ++mutable_stats().swaps;
    mutable_stats().blocks_fetched += cfg_.sector_bytes / 64;
    ++mutable_stats().fetched_blocks_used;
    meta_->update(sec_global, r.complete);
  }
  return res;
}

}  // namespace bb::baselines
