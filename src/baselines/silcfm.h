// SILC-FM — "Subblocked Interleaved Cache-Like Flat Memory Organization"
// (Ryoo et al., HPCA 2017). Reference [7] of the paper.
//
// A flat (OS-visible) organization that migrates at SUBBLOCK (64 B x N)
// granularity inside large blocks: a near-memory block can interleave
// subblocks from a far block with its own, tracked by a presence bit
// vector — cache-like hit behaviour without cache tags, and without
// moving whole large blocks. A far block whose access counter passes a
// threshold becomes the near block's "paired" block and its subblocks are
// swapped in on demand. The remapping/bitvector metadata exceeds SRAM and
// sits behind a metadata cache (the high remapping overhead the paper
// cites for mHBM designs).
#pragma once

#include <vector>

#include "common/bitvector.h"
#include "hmm/controller.h"
#include "hmm/metadata.h"

namespace bb::baselines {

struct SilcFmConfig {
  u64 block_bytes = 2 * KiB;     ///< large block (near slot granularity)
  u64 subblock_bytes = 64;       ///< migration granularity
  u32 pair_threshold = 4;        ///< counter to become the paired block
  u64 metadata_cache_bytes = 512 * KiB;
};

class SilcFmController final : public hmm::HybridMemoryController {
 public:
  SilcFmController(mem::DramDevice& hbm, mem::DramDevice& dram,
                   hmm::PagingConfig paging = {},
                   const SilcFmConfig& cfg = {});

  u64 metadata_sram_bytes() const override;

  /// Base reset plus the metadata model's lookup/latency stats.
  void reset_stats() override {
    HybridMemoryController::reset_stats();
    meta_->reset_stats();
  }

  u32 set_count() const { return sets_; }
  u32 blocks_per_set() const { return m_ + 1; }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  static constexpr u32 kNone = ~u32{0};

  struct SetEntry {
    u32 paired = kNone;     ///< far block interleaved into the near slot
    BitVector present;      ///< paired block's subblocks now in near memory
    std::vector<u8> counter;
  };

  u32 subblocks() const {
    return static_cast<u32>(cfg_.block_bytes / cfg_.subblock_bytes);
  }

  SilcFmConfig cfg_;
  u32 sets_;  ///< one near block per set
  u32 m_;     ///< far blocks per set
  std::vector<SetEntry> entries_;
  std::unique_ptr<hmm::MetadataModel> meta_;
};

}  // namespace bb::baselines
