// Unison Cache (Jevdjic et al., MICRO 2014).
//
// A page-granularity (4 KB), 4-way set-associative DRAM cache with tags
// embedded in HBM and *footprint prediction*: on a page miss only the
// blocks the page used during its previous residency are fetched, cutting
// over-fetch while keeping page-level spatial locality. Way tags are read
// from HBM before the data access (in-HBM metadata latency); a footprint
// history table lives in SRAM.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "hmm/controller.h"

namespace bb::baselines {

struct UnisonConfig {
  u64 page_bytes = 4 * KiB;
  u64 block_bytes = 64;
  u32 ways = 4;
  u64 tag_bytes_per_page = 8;  ///< embedded tag+LRU+footprint metadata
  u64 footprint_table_entries = 16 * 1024;  ///< SRAM history table
};

class UnisonCacheController final : public hmm::HybridMemoryController {
 public:
  UnisonCacheController(mem::DramDevice& hbm, mem::DramDevice& dram,
                        hmm::PagingConfig paging = {},
                        const UnisonConfig& cfg = {});

  /// Only the footprint history table is SRAM-resident.
  u64 metadata_sram_bytes() const override;

  u32 set_count() const { return sets_; }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  struct Way {
    bool valid = false;
    u64 page = 0;       ///< OS page index
    u64 lru_stamp = 0;
    BitVector present;  ///< fetched blocks
    BitVector dirty;
    BitVector used;     ///< demanded blocks (footprint + over-fetch)
  };

  u32 blocks_per_page() const {
    return static_cast<u32>(cfg_.page_bytes / cfg_.block_bytes);
  }
  Way& way_at(u32 set, u32 w) { return ways_[static_cast<std::size_t>(set) * cfg_.ways + w]; }
  Addr frame_addr(u32 set, u32 w) const;
  void evict(u32 set, u32 w, Tick now);
  BitVector predicted_footprint(u64 page) const;

  UnisonConfig cfg_;
  u32 sets_;
  std::vector<Way> ways_;
  u64 lru_clock_ = 0;
  /// Footprint history: page -> block-usage of the last residency.
  // determinism-ok: pure keyed lookup/insert (never iterated), so the
  // implementation-defined bucket order cannot reach stats or output.
  std::unordered_map<u64, BitVector> footprints_;
};

}  // namespace bb::baselines
