#include "baselines/banshee.h"

namespace bb::baselines {

BansheeController::BansheeController(mem::DramDevice& hbm,
                                     mem::DramDevice& dram,
                                     hmm::PagingConfig paging,
                                     const BansheeConfig& cfg)
    : HybridMemoryController("Banshee", hbm, dram,
                             [&] {
                               paging.visible_bytes = dram.capacity();
                               return paging;
                             }()),
      cfg_(cfg),
      sets_(static_cast<u32>(hbm.capacity() / cfg.page_bytes / cfg.ways)) {
  ways_.resize(static_cast<std::size_t>(sets_) * cfg_.ways);
  const u32 blocks = static_cast<u32>(cfg_.page_bytes / 64);
  for (auto& w : ways_) w.used.resize(blocks);
}

u64 BansheeController::metadata_sram_bytes() const {
  // Per cached page: tag (4 B) + frequency counter (2 B) + flags, plus the
  // sampled candidate table.
  const u64 pages = static_cast<u64>(sets_) * cfg_.ways;
  return pages * 7 + 64 * KiB;
}

hmm::HmmResult BansheeController::service(Addr addr, AccessType type,
                                          Tick now) {
  hmm::HmmResult res;
  const Addr phys = addr % dram().capacity();
  const u64 page = phys / cfg_.page_bytes;
  const u32 set = static_cast<u32>(page % sets_);
  const u64 in_page = phys % cfg_.page_bytes;
  const u32 block = static_cast<u32>(in_page / 64);

  // Mapping known from TLB/PTE: SRAM-cost lookup only.
  res.metadata_latency = cfg_.sram_latency;
  Tick t = now + cfg_.sram_latency;

  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = way_at(set, w);
    if (way.valid && way.page == page) {
      const Addr pa = frame_addr(set, w) + in_page;
      const auto r = hbm().access(pa, 64, type, t, mem::TrafficClass::kDemand);
      res.complete = r.complete;
      res.served_by_hbm = true;
      res.phys_addr = pa;
      if (type == AccessType::kWrite) way.dirty = true;
      if (way.freq < 0xffff) ++way.freq;
      if (!way.used.test(block)) {
        way.used.set(block);
        ++mutable_stats().fetched_blocks_used;
      }
      return res;
    }
  }

  // Miss: serve off-chip.
  const auto r = dram().access(phys, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = phys;

  // Frequency-based replacement with sampling.
  if (++miss_tick_ % cfg_.sample_rate != 0) return res;
  u16& cand = candidate_freq_[page];
  if (cand < 0xffff) ++cand;

  u32 victim = cfg_.ways;
  u16 victim_freq = 0xffff;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = way_at(set, w);
    if (!way.valid) {
      victim = w;
      victim_freq = 0;
      break;
    }
    if (way.freq < victim_freq) {
      victim_freq = way.freq;
      victim = w;
    }
  }
  const bool replace =
      victim < cfg_.ways &&
      (!way_at(set, victim).valid ||
       cand >= victim_freq + cfg_.replace_threshold);
  if (!replace) return res;

  Way& way = way_at(set, victim);
  if (way.valid && way.dirty) {
    // Lazy page-granularity writeback.
    move_data(hbm(), frame_addr(set, victim), dram(),
              (way.page * cfg_.page_bytes) % dram().capacity(),
              cfg_.page_bytes, r.complete, mem::TrafficClass::kWriteback);
  }
  if (way.valid) ++mutable_stats().evictions;

  move_data(dram(), page * cfg_.page_bytes, hbm(), frame_addr(set, victim),
            cfg_.page_bytes, r.complete, mem::TrafficClass::kFill);
  const u32 blocks = static_cast<u32>(cfg_.page_bytes / 64);
  mutable_stats().blocks_fetched += blocks;
  way.valid = true;
  way.page = page;
  way.freq = cand;
  way.dirty = (type == AccessType::kWrite);
  way.used.clear_all();
  way.used.set(block);
  ++mutable_stats().fetched_blocks_used;
  candidate_freq_.erase(page);
  return res;
}

}  // namespace bb::baselines
