// Hybrid2 (Vasilakis et al., HPCA 2020).
//
// The state-of-the-art hybrid-mode design the paper compares against.
// A small, statically fixed slice of HBM (64 MB) is a 256 B-block, 8-way
// DRAM cache (cHBM); the remaining HBM is OS-visible POM (mHBM) managed in
// 2 KB pages with set-associative remapping and swap-based migration. The
// two spaces are SEPARATE: promoting a page into mHBM swaps out a victim
// page (full traffic both ways) and first flushes the page's cHBM blocks —
// the mode-switch overhead Bumblebee's multiplexed space eliminates. Its
// metadata (remap tables, counters, cache tags) far exceeds SRAM, so
// lookups run through a 512 KB SRAM metadata cache backed by HBM.
#pragma once

#include <vector>

#include "hmm/controller.h"
#include "hmm/metadata.h"

namespace bb::baselines {

struct Hybrid2Config {
  u64 cache_bytes = 64 * MiB;   ///< fixed cHBM slice
  u64 block_bytes = 256;        ///< cHBM block
  u32 cache_ways = 8;
  u64 page_bytes = 2 * KiB;     ///< mHBM page
  u32 hbm_ways = 8;             ///< mHBM pages per remapping set
  u32 promote_threshold = 4;    ///< counter margin vs coldest mHBM page
  u64 metadata_cache_bytes = 512 * KiB;
};

class Hybrid2Controller final : public hmm::HybridMemoryController {
 public:
  Hybrid2Controller(mem::DramDevice& hbm, mem::DramDevice& dram,
                    hmm::PagingConfig paging = {},
                    const Hybrid2Config& cfg = {});

  /// Total metadata the design would need in SRAM (it does not fit; the
  /// real design keeps a 512 KB SRAM cache in front of it).
  u64 metadata_sram_bytes() const override;

  /// Base reset plus the metadata model's lookup/latency stats.
  void reset_stats() override {
    HybridMemoryController::reset_stats();
    meta_->reset_stats();
  }

  u32 remap_sets() const { return sets_; }
  u32 dram_pages_per_set() const { return m_; }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  struct RemapSet {
    std::vector<u8> seg_at_frame;  ///< permutation over m_+n_ frames
    std::vector<u8> counter;       ///< per-segment access counters
    std::vector<u8> used_mask;     ///< per HBM frame: accessed 256 B blocks
    std::vector<bool> swapped;     ///< frame content was fetched (not native)
  };
  struct CacheLine {
    u32 tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 lru = 0;
  };

  Addr mhbm_frame_addr(u32 set, u32 way) const {
    return cfg_.cache_bytes +
           (static_cast<u64>(way) * sets_ + set) * cfg_.page_bytes;
  }
  Addr dram_frame_addr(u32 set, u32 frame) const {
    return (static_cast<u64>(frame) * sets_ + set) * cfg_.page_bytes;
  }

  /// Serves a request hitting off-chip frame `fa` through the block cache.
  hmm::HmmResult cache_path(Addr fa, u64 off, AccessType type, Tick t);

  /// Flushes (writes back + invalidates) all cache lines covering the 2 KB
  /// DRAM frame at `fa` — required before the frame's content is swapped.
  void flush_frame_blocks(Addr fa, Tick now);

  Hybrid2Config cfg_;
  u32 sets_;  ///< mHBM remapping sets
  u32 m_;     ///< off-chip pages per set
  u32 n_;     ///< mHBM pages per set
  std::vector<RemapSet> remap_;
  u32 cache_sets_;
  std::vector<CacheLine> cache_;
  u64 lru_clock_ = 0;
  std::unique_ptr<hmm::MetadataModel> meta_;
};

}  // namespace bb::baselines
