// Factory for every evaluated memory-system design.
//
// Names match the paper's figures:
//   Figure 8: "Banshee", "AC", "UC", "Chameleon", "Hybrid2", "Bumblebee"
//   Figure 7: "C-Only", "M-Only", "25%-C", "50%-C", "No-Multi", "Meta-H",
//             "Alloc-D", "Alloc-H", "No-HMF"
//   Normalization baseline: "DRAM-only"
//   Extensions beyond the paper's comparison set: "PoM" (Sim et al.,
//   MICRO 2014 — reference [6]), "SILC-FM" (Ryoo et al., HPCA 2017 —
//   reference [7]) and "MemPod" (Prodromou et al., HPCA 2017 —
//   reference [8]).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hmm/controller.h"

namespace bb::baselines {

/// Creates the named design over the given devices. Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<hmm::HybridMemoryController> make_design(
    const std::string& name, mem::DramDevice& hbm, mem::DramDevice& dram,
    const hmm::PagingConfig& paging = {});

/// The Figure 8 competitor set, in plot order.
const std::vector<std::string>& figure8_designs();

/// The Figure 7 factor-breakdown set, in plot order.
const std::vector<std::string>& figure7_designs();

/// The full-system comparison set (what drivers expand "all" to):
/// DRAM-only, the Figure 8 competitors and the PoM / SILC-FM / MemPod
/// extensions — every complete design, excluding the Figure 7 Bumblebee
/// ablations.
const std::vector<std::string>& comparison_designs();

/// Every name make_design accepts, in factory order.
const std::vector<std::string>& all_design_names();

/// Validates a requested design list against the factory before any
/// simulation starts. Throws std::invalid_argument naming the first
/// unknown entry (so a typo fails a sweep in milliseconds, not after the
/// cells preceding it ran).
void require_design_names(const std::vector<std::string>& names);

}  // namespace bb::baselines
