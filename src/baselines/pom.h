// PoM — "Transparent Hardware Management of Stacked DRAM as Part of
// Memory" (Sim et al., MICRO 2014). Reference [6] of the paper and the
// design Chameleon builds on.
//
// All HBM is OS-visible. Memory is managed in 2 KB "sectors" grouped into
// congruence sets; a competing-counter pair per set decides whether the
// currently-near sector should be swapped with a challenger: the counter
// increments on challenger accesses and decrements on occupant accesses,
// swapping when it crosses a threshold — a hysteresis that PoM introduced
// to economize swap bandwidth. The remapping table lives in memory with an
// SRAM cache in front (PoM's "SRT cache").
#pragma once

#include <vector>

#include "hmm/controller.h"
#include "hmm/metadata.h"

namespace bb::baselines {

struct PomConfig {
  u64 sector_bytes = 2 * KiB;
  u32 swap_threshold = 6;  ///< competing-counter crossing point
  u64 metadata_cache_bytes = 512 * KiB;
};

class PomController final : public hmm::HybridMemoryController {
 public:
  PomController(mem::DramDevice& hbm, mem::DramDevice& dram,
                hmm::PagingConfig paging = {}, const PomConfig& cfg = {});

  u64 metadata_sram_bytes() const override;

  /// Base reset plus the metadata model's lookup/latency stats.
  void reset_stats() override {
    HybridMemoryController::reset_stats();
    meta_->reset_stats();
  }

  u32 set_count() const { return sets_; }
  u32 sectors_per_set() const { return m_ + 1; }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  struct SetEntry {
    std::vector<u8> sector_at_frame;  ///< permutation over m_+1 frames
    i64 counter = 0;   ///< competing counter (challenger vs occupant)
    u32 challenger = 0;  ///< sector currently accumulating the counter
  };

  PomConfig cfg_;
  u32 sets_;
  u32 m_;
  std::vector<SetEntry> entries_;
  std::unique_ptr<hmm::MetadataModel> meta_;
};

}  // namespace bb::baselines
