#include "baselines/silcfm.h"

#include <cassert>

namespace bb::baselines {

SilcFmController::SilcFmController(mem::DramDevice& hbm,
                                   mem::DramDevice& dram,
                                   hmm::PagingConfig paging,
                                   const SilcFmConfig& cfg)
    : HybridMemoryController(
          "SILC-FM", hbm, dram,
          [&] {
            paging.visible_bytes = dram.capacity() + hbm.capacity();
            return paging;
          }()),
      cfg_(cfg),
      sets_(static_cast<u32>(hbm.capacity() / cfg.block_bytes)),
      m_(static_cast<u32>(dram.capacity() / cfg.block_bytes / sets_)) {
  entries_.resize(sets_);
  for (auto& e : entries_) {
    e.present.resize(subblocks());
    e.counter.assign(m_ + 1, 0);
  }

  hmm::MetadataConfig mc;
  mc.placement = hmm::MetadataPlacement::kSramCachedHbm;
  mc.cache_bytes = cfg_.metadata_cache_bytes;
  mc.entry_bytes = 8;
  meta_ = std::make_unique<hmm::MetadataModel>(mc, &hbm);
}

u64 SilcFmController::metadata_sram_bytes() const {
  // Per set: paired-block id, the presence bit vector and counters.
  return static_cast<u64>(sets_) *
         (4 + subblocks() / 8 + (m_ + 1));
}

hmm::HmmResult SilcFmController::service(Addr addr, AccessType type,
                                         Tick now) {
  hmm::HmmResult res;
  const u64 visible =
      static_cast<u64>(sets_) * (m_ + 1) * cfg_.block_bytes;
  const Addr a = addr % visible;
  const u64 blk_global = a / cfg_.block_bytes;
  // Strided (CAMEO-style) congruence groups: block b shares set b % sets_.
  const u32 set = static_cast<u32>(blk_global % sets_);
  const u32 blk = static_cast<u32>(blk_global / sets_);  // in-set index
  const u64 off = a % cfg_.block_bytes;
  const u32 sub = static_cast<u32>(off / cfg_.subblock_bytes);
  SetEntry& e = entries_[set];

  res.metadata_latency = meta_->lookup(blk_global, now);
  Tick t = now + res.metadata_latency;

  if (e.counter[blk] < 0xff) ++e.counter[blk];

  const Addr near_base = static_cast<u64>(set) * cfg_.block_bytes;
  auto far_addr = [&](u32 b) {
    // In-set far block index m_ is the near-native block's spill frame;
    // far blocks [0, m_) have their own frames.
    return (static_cast<u64>(b % m_) * sets_ + set) * cfg_.block_bytes;
  };

  // The near-native block (in-set index m_) is served near except for the
  // subblocks currently lent to the paired far block.
  if (blk == m_) {
    const bool displaced =
        e.paired != kNone && e.present.test(sub);
    if (!displaced) {
      const Addr pa = near_base + off;
      const auto r =
          hbm().access(pa, 64, type, t, mem::TrafficClass::kDemand);
      res.complete = r.complete;
      res.served_by_hbm = true;
      res.phys_addr = pa;
      return res;
    }
    // Its subblock was swapped out to the paired block's far frame.
    const Addr pa = far_addr(e.paired) + off;
    const auto r = dram().access(pa, 64, type, t,
                                 mem::TrafficClass::kDemand);
    res.complete = r.complete;
    res.served_by_hbm = false;
    res.phys_addr = pa;
    return res;
  }

  if (e.paired == blk && e.present.test(sub)) {
    // Paired far block, subblock already interleaved into near memory.
    const Addr pa = near_base + off;
    const auto r = hbm().access(pa, 64, type, t, mem::TrafficClass::kDemand);
    res.complete = r.complete;
    res.served_by_hbm = true;
    res.phys_addr = pa;
    return res;
  }

  // Far access.
  const Addr pa = far_addr(blk) + off;
  const auto r = dram().access(pa, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = pa;

  // Pairing: a hot far block claims the near slot; switching pairs first
  // restores the previous pair's swapped subblocks (subblock-granularity
  // swaps back), the cheap-reconfiguration property SILC-FM claims.
  if (e.paired != blk) {
    const u8 incumbent =
        e.paired == kNone ? 0 : e.counter[e.paired];
    if (e.counter[blk] >= static_cast<u32>(incumbent) +
                              cfg_.pair_threshold) {
      if (e.paired != kNone) {
        for (u32 s2 = 0; s2 < subblocks(); ++s2) {
          if (e.present.test(s2)) {
            swap_data(hbm(), near_base + s2 * cfg_.subblock_bytes, dram(),
                      far_addr(e.paired) + s2 * cfg_.subblock_bytes,
                      cfg_.subblock_bytes, r.complete,
                      mem::TrafficClass::kMigration);
            ++mutable_stats().swaps;
          }
        }
        if (e.paired != kNone) e.counter[e.paired] /= 2;
        e.present.clear_all();
      }
      e.paired = blk;
      ++mutable_stats().mode_switches;  // re-pairing event
    }
  }

  // Demand-driven subblock interleaving for the paired block.
  if (e.paired == blk && !e.present.test(sub)) {
    swap_data(hbm(), near_base + sub * cfg_.subblock_bytes, dram(),
              far_addr(blk) + sub * cfg_.subblock_bytes,
              cfg_.subblock_bytes, r.complete,
              mem::TrafficClass::kMigration);
    e.present.set(sub);
    ++mutable_stats().blocks_fetched;
    ++mutable_stats().fetched_blocks_used;
    ++mutable_stats().swaps;
    meta_->update(blk_global, r.complete);
  }
  return res;
}

}  // namespace bb::baselines
