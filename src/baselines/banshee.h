// Banshee (Yu et al., MICRO 2017).
//
// A page-granularity (4 KB), 4-way set-associative DRAM cache that tracks
// cache contents through the page tables / TLBs, so lookups cost only an
// SRAM-latency check (no in-HBM tag probe) — its bandwidth-efficiency
// claim. Replacement is frequency-based with sampling: a miss only
// replaces when the candidate's access counter exceeds the victim's by a
// threshold, which suppresses cache thrashing, and misses are sampled so
// counter maintenance itself costs little bandwidth. Fills move whole
// pages; writebacks are lazy (page-granularity dirty).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "hmm/controller.h"

namespace bb::baselines {

struct BansheeConfig {
  u64 page_bytes = 4 * KiB;
  u32 ways = 4;
  u32 replace_threshold = 2;  ///< candidate must beat victim by this margin
  u32 sample_rate = 8;        ///< 1-in-N misses update frequency counters
  Tick sram_latency = ns_to_ticks(2.0);
};

class BansheeController final : public hmm::HybridMemoryController {
 public:
  BansheeController(mem::DramDevice& hbm, mem::DramDevice& dram,
                    hmm::PagingConfig paging = {},
                    const BansheeConfig& cfg = {});

  /// Full mapping metadata (page-table extensions + frequency counters) if
  /// it all had to live in SRAM.
  u64 metadata_sram_bytes() const override;

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  struct Way {
    bool valid = false;
    u64 page = 0;
    u16 freq = 0;
    bool dirty = false;
    BitVector used;  ///< demanded blocks, for over-fetch accounting
  };

  Way& way_at(u32 set, u32 w) {
    return ways_[static_cast<std::size_t>(set) * cfg_.ways + w];
  }
  Addr frame_addr(u32 set, u32 w) const {
    return (static_cast<u64>(set) * cfg_.ways + w) * cfg_.page_bytes;
  }

  BansheeConfig cfg_;
  u32 sets_;
  std::vector<Way> ways_;
  // determinism-ok: keyed operator[]/erase only (never iterated), so the
  // implementation-defined bucket order cannot reach stats or output.
  std::unordered_map<u64, u16> candidate_freq_;  ///< sampled miss counters
  u64 miss_tick_ = 0;                            ///< sampling wheel
};

}  // namespace bb::baselines
