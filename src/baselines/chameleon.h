// Chameleon (Kotra et al., MICRO 2018).
//
// A POM (part-of-memory) design: all HBM is OS-visible. Memory is divided
// into remapping sets ("segment groups") with exactly ONE HBM segment per
// set — the restriction the paper criticizes for uneven HBM utilization
// and frequent segment swaps. A hot off-chip segment whose access counter
// beats the current HBM occupant's swaps with it (full-segment traffic in
// both directions). The remapping table is too large for SRAM, so lookups
// go through an SRAM metadata cache backed by HBM (real MAL).
#pragma once

#include <vector>

#include "hmm/controller.h"
#include "hmm/metadata.h"

namespace bb::baselines {

struct ChameleonConfig {
  u64 segment_bytes = 2 * KiB;
  u32 swap_threshold = 4;  ///< challenger counter margin to trigger a swap
  u64 metadata_cache_bytes = 512 * KiB;
};

class ChameleonController final : public hmm::HybridMemoryController {
 public:
  ChameleonController(mem::DramDevice& hbm, mem::DramDevice& dram,
                      hmm::PagingConfig paging = {},
                      const ChameleonConfig& cfg = {});

  /// The full remapping table + counters, if SRAM-resident.
  u64 metadata_sram_bytes() const override;

  /// Base reset plus the metadata model's lookup/latency stats.
  void reset_stats() override {
    HybridMemoryController::reset_stats();
    meta_->reset_stats();
  }

  u32 set_count() const { return sets_; }
  u32 segments_per_set() const { return m_ + 1; }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  struct SetEntry {
    /// Permutation of the set's m_+1 segments over its frames; frame m_ is
    /// the single HBM slot, frames [0, m_) are off-chip. Initially the
    /// identity (segment m_ is HBM-native).
    std::vector<u8> seg_at_frame;
    std::vector<u8> counter;  ///< per-segment saturating access counters
  };

  ChameleonConfig cfg_;
  u32 sets_;  ///< one HBM segment per set
  u32 m_;     ///< off-chip segments per set
  std::vector<SetEntry> entries_;
  std::unique_ptr<hmm::MetadataModel> meta_;
};

}  // namespace bb::baselines
