// MemPod — "A Clustered Architecture for Efficient and Scalable Migration
// in Flat Address Space Multi-Level Memories" (Prodromou et al., HPCA
// 2017). Reference [8] of the paper.
//
// Memory is partitioned into independent "Pods", each pairing a slice of
// HBM with a slice of off-chip DRAM. Migration is interval-based: during
// an interval, a Majority Element Algorithm (MEA) tracker per pod finds
// the hottest off-chip 2 KB pages; at the interval boundary the pod swaps
// them with its coldest HBM-resident pages. Intervals decouple migration
// bandwidth from the access stream — MemPod's scalability claim.
#pragma once

#include <vector>

#include "hmm/controller.h"

namespace bb::baselines {

struct MemPodConfig {
  u64 page_bytes = 2 * KiB;
  u32 pods = 16;
  u32 mea_counters = 64;          ///< MEA tracker entries per pod
  Tick interval = ns_to_ticks(50'000.0);  ///< migration interval (50 us)
  Tick sram_latency = ns_to_ticks(2.0);
};

class MemPodController final : public hmm::HybridMemoryController {
 public:
  MemPodController(mem::DramDevice& hbm, mem::DramDevice& dram,
                   hmm::PagingConfig paging = {},
                   const MemPodConfig& cfg = {});

  u64 metadata_sram_bytes() const override;

  u32 pod_count() const { return cfg_.pods; }
  u64 interval_migrations() const { return interval_migrations_; }

  /// Base reset plus the cumulative migration counter (it parallels
  /// stats().swaps, which the base reset clears).
  void reset_stats() override {
    HybridMemoryController::reset_stats();
    interval_migrations_ = 0;
  }

 protected:
  hmm::HmmResult service(Addr addr, AccessType type, Tick now) override;

 private:
  struct MeaEntry {
    u64 page = 0;  ///< pod-local logical page index
    u32 count = 0;
  };
  struct Pod {
    /// Remap: pod-local logical page -> pod-local frame (HBM frames first).
    std::vector<u32> frame_of;
    std::vector<u32> page_at;  ///< inverse mapping
    std::vector<MeaEntry> mea;
    std::vector<u32> hbm_access;  ///< per-HBM-frame interval access count
    Tick next_interval = 0;
  };

  void mea_touch(Pod& pod, u64 page);
  void run_interval(Pod& pod, u32 pod_idx, Tick now);

  MemPodConfig cfg_;
  u64 hbm_pages_per_pod_;
  u64 dram_pages_per_pod_;
  std::vector<Pod> pods_;
  u64 interval_migrations_ = 0;
};

}  // namespace bb::baselines
