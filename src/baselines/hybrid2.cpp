#include "baselines/hybrid2.h"

#include <cassert>

#include "common/trace_event.h"

namespace bb::baselines {

Hybrid2Controller::Hybrid2Controller(mem::DramDevice& hbm,
                                     mem::DramDevice& dram,
                                     hmm::PagingConfig paging,
                                     const Hybrid2Config& cfg)
    : HybridMemoryController(
          "Hybrid2", hbm, dram,
          [&] {
            paging.visible_bytes =
                dram.capacity() + hbm.capacity() - cfg.cache_bytes;
            return paging;
          }()),
      cfg_(cfg) {
  assert(hbm.capacity() > cfg_.cache_bytes &&
         "Hybrid2 needs HBM beyond its fixed cHBM slice");
  const u64 mhbm_pages =
      (hbm.capacity() - cfg_.cache_bytes) / cfg_.page_bytes;
  n_ = cfg_.hbm_ways;
  sets_ = static_cast<u32>(mhbm_pages / n_);
  assert(sets_ > 0);
  m_ = static_cast<u32>(dram.capacity() / cfg_.page_bytes / sets_);
  assert(m_ + n_ <= 0xff && "u8 permutation entries");

  remap_.resize(sets_);
  for (auto& s : remap_) {
    s.seg_at_frame.resize(m_ + n_);
    for (u32 f = 0; f < m_ + n_; ++f) s.seg_at_frame[f] = static_cast<u8>(f);
    s.counter.assign(m_ + n_, 0);
    s.used_mask.assign(n_, 0);
    s.swapped.assign(n_, false);
  }

  cache_sets_ =
      static_cast<u32>(cfg_.cache_bytes / cfg_.block_bytes / cfg_.cache_ways);
  cache_.resize(static_cast<std::size_t>(cache_sets_) * cfg_.cache_ways);

  hmm::MetadataConfig mc;
  mc.placement = hmm::MetadataPlacement::kSramCachedHbm;
  mc.cache_bytes = cfg_.metadata_cache_bytes;
  mc.entry_bytes = 8;
  meta_ = std::make_unique<hmm::MetadataModel>(mc, &hbm);
}

u64 Hybrid2Controller::metadata_sram_bytes() const {
  // Remap permutations + per-segment counters + per-frame masks, plus cache
  // tags (~3 B per 256 B line).
  const u64 remap_bytes =
      static_cast<u64>(sets_) * (2ULL * (m_ + n_) + n_);
  const u64 tag_bytes =
      (cfg_.cache_bytes / cfg_.block_bytes) * 3;
  return remap_bytes + tag_bytes;
}

void Hybrid2Controller::flush_frame_blocks(Addr fa, Tick now) {
  const u32 blocks = static_cast<u32>(cfg_.page_bytes / cfg_.block_bytes);
  for (u32 b = 0; b < blocks; ++b) {
    const Addr ba = fa + b * cfg_.block_bytes;
    const u64 line = ba / cfg_.block_bytes;
    const u32 cset = static_cast<u32>(line % cache_sets_);
    const u32 tag = static_cast<u32>(line / cache_sets_);
    for (u32 w = 0; w < cfg_.cache_ways; ++w) {
      CacheLine& cl = cache_[static_cast<std::size_t>(cset) *
                                 cfg_.cache_ways +
                             w];
      if (cl.valid && cl.tag == tag) {
        if (cl.dirty) {
          const Addr slot =
              (static_cast<u64>(cset) * cfg_.cache_ways + w) *
              cfg_.block_bytes;
          move_data(hbm(), slot, dram(), ba, cfg_.block_bytes, now,
                    mem::TrafficClass::kWriteback);
        }
        cl.valid = false;
        cl.dirty = false;
      }
    }
  }
}

hmm::HmmResult Hybrid2Controller::cache_path(Addr fa, u64 off,
                                             AccessType type, Tick t) {
  hmm::HmmResult res;
  const Addr ba = fa + (off / cfg_.block_bytes) * cfg_.block_bytes;
  const u64 in_block = off % cfg_.block_bytes;
  const u64 line = ba / cfg_.block_bytes;
  const u32 cset = static_cast<u32>(line % cache_sets_);
  const u32 tag = static_cast<u32>(line / cache_sets_);
  const std::size_t base =
      static_cast<std::size_t>(cset) * cfg_.cache_ways;

  for (u32 w = 0; w < cfg_.cache_ways; ++w) {
    CacheLine& cl = cache_[base + w];
    if (cl.valid && cl.tag == tag) {
      const Addr slot =
          (static_cast<u64>(cset) * cfg_.cache_ways + w) * cfg_.block_bytes +
          in_block;
      const auto r = hbm().access(slot, 64, type, t,
                                  mem::TrafficClass::kDemand);
      cl.lru = ++lru_clock_;
      if (type == AccessType::kWrite) cl.dirty = true;
      res.complete = r.complete;
      res.served_by_hbm = true;
      res.phys_addr = slot;
      return res;
    }
  }

  // Cache miss: serve off-chip and fill the 256 B block.
  const auto r =
      dram().access(fa + off, 64, type, t, mem::TrafficClass::kDemand);
  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = fa + off;

  u32 victim = 0;
  u64 oldest = ~u64{0};
  for (u32 w = 0; w < cfg_.cache_ways; ++w) {
    CacheLine& cl = cache_[base + w];
    if (!cl.valid) {
      victim = w;
      oldest = 0;
      break;
    }
    if (cl.lru < oldest) {
      oldest = cl.lru;
      victim = w;
    }
  }
  CacheLine& cl = cache_[base + victim];
  const Addr slot =
      (static_cast<u64>(cset) * cfg_.cache_ways + victim) * cfg_.block_bytes;
  if (cl.valid && cl.dirty) {
    const Addr victim_addr =
        (static_cast<u64>(cl.tag) * cache_sets_ +
         cset) *
        cfg_.block_bytes;
    move_data(hbm(), slot, dram(), victim_addr, cfg_.block_bytes, r.complete,
              mem::TrafficClass::kWriteback);
    ++mutable_stats().evictions;
  }
  move_data(dram(), ba, hbm(), slot, cfg_.block_bytes, r.complete,
            mem::TrafficClass::kFill);
  cl.valid = true;
  cl.tag = tag;
  cl.dirty = false;  // demand went to DRAM; the cached copy starts clean
  cl.lru = ++lru_clock_;
  ++mutable_stats().blocks_fetched;
  ++mutable_stats().fetched_blocks_used;  // Hybrid2 fetches requested blocks
  return res;
}

hmm::HmmResult Hybrid2Controller::service(Addr addr, AccessType type,
                                          Tick now) {
  hmm::HmmResult res;
  const u64 visible =
      static_cast<u64>(sets_) * (m_ + n_) * cfg_.page_bytes;
  const Addr a = addr % visible;
  const u64 page = a / cfg_.page_bytes;
  const u32 set = static_cast<u32>(page % sets_);
  const u32 seg = static_cast<u32>(page / sets_);
  const u64 off = a % cfg_.page_bytes;
  RemapSet& rs = remap_[set];

  // Metadata is per page (remap entry + counters): the SRAM metadata cache
  // only helps while the page working set fits in 512 KB.
  res.metadata_latency = meta_->lookup(page, now);
  Tick t = now + res.metadata_latency;

  if (rs.counter[seg] < 0xff) ++rs.counter[seg];

  u32 frame = m_ + n_;
  for (u32 f = 0; f < m_ + n_; ++f) {
    if (rs.seg_at_frame[f] == seg) {
      frame = f;
      break;
    }
  }
  assert(frame < m_ + n_);

  if (frame >= m_) {
    // mHBM hit.
    const u32 way = frame - m_;
    const Addr pa = mhbm_frame_addr(set, way) + off;
    const auto r = hbm().access(pa, 64, type, t, mem::TrafficClass::kDemand);
    const u32 blk = static_cast<u32>(off / cfg_.block_bytes);
    const u8 bit = static_cast<u8>(1u << blk);
    // Over-fetch accounting applies only to data that was actually moved
    // into HBM; native-resident pages were never fetched.
    if (rs.swapped[way] && !(rs.used_mask[way] & bit)) {
      rs.used_mask[way] |= bit;
      ++mutable_stats().fetched_blocks_used;
    }
    res.complete = r.complete;
    res.served_by_hbm = true;
    res.phys_addr = pa;
    return res;
  }

  // Off-chip page: go through the fixed 64 MB block cache. The cache tags
  // are metadata of their own (distinct key space from the remap table).
  const Addr fa = dram_frame_addr(set, frame);
  const Tick tag_lat =
      meta_->lookup((u64{1} << 26) + (fa + off) / cfg_.block_bytes, t);
  res.metadata_latency += tag_lat;
  t += tag_lat;
  hmm::HmmResult inner = cache_path(fa, off, type, t);
  res.complete = inner.complete;
  res.served_by_hbm = inner.served_by_hbm;
  res.phys_addr = inner.phys_addr;

  // Promotion: swap with the set's coldest mHBM page when hot enough.
  u32 cold_way = 0;
  u8 cold_count = 0xff;
  for (u32 w = 0; w < n_; ++w) {
    const u8 c = rs.counter[rs.seg_at_frame[m_ + w]];
    if (c < cold_count) {
      cold_count = c;
      cold_way = w;
    }
  }
  if (rs.counter[seg] >=
      static_cast<u32>(cold_count) + cfg_.promote_threshold) {
    // Separate spaces: the page's cHBM blocks must be flushed first, then
    // the full pages swap (the mode-switch overhead Bumblebee avoids).
    flush_frame_blocks(fa, res.complete);
    const u32 victim_seg = rs.seg_at_frame[m_ + cold_way];
    swap_data(hbm(), mhbm_frame_addr(set, cold_way), dram(), fa,
              cfg_.page_bytes, res.complete, mem::TrafficClass::kMigration);
    rs.seg_at_frame[m_ + cold_way] = static_cast<u8>(seg);
    rs.seg_at_frame[frame] = static_cast<u8>(victim_seg);
    rs.counter[victim_seg] /= 2;
    rs.swapped[cold_way] = true;
    const u32 blk = static_cast<u32>(off / cfg_.block_bytes);
    rs.used_mask[cold_way] = static_cast<u8>(1u << blk);
    mutable_stats().blocks_fetched +=
        cfg_.page_bytes / cfg_.block_bytes;
    ++mutable_stats().fetched_blocks_used;
    ++mutable_stats().swaps;
    ++mutable_stats().mode_switches;
    if (tracing()) {
      trace()->emit(TraceEvent(res.complete, "page_swap", "hybrid2")
                        .arg("set", set)
                        .arg("promoted_seg", seg)
                        .arg("victim_seg", victim_seg)
                        .arg("bytes", cfg_.page_bytes));
    }
    meta_->update(page, res.complete);
  }
  return res;
}

}  // namespace bb::baselines
