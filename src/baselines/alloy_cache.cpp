#include "baselines/alloy_cache.h"

namespace bb::baselines {

AlloyCacheController::AlloyCacheController(mem::DramDevice& hbm,
                                           mem::DramDevice& dram,
                                           hmm::PagingConfig paging,
                                           const AlloyConfig& cfg)
    : HybridMemoryController("AC", hbm, dram,
                             [&] {
                               paging.visible_bytes = dram.capacity();
                               return paging;
                             }()),
      cfg_(cfg),
      lines_(hbm.capacity() / cfg.tad_bytes) {
  tag_.assign(static_cast<std::size_t>(lines_), 0);
  valid_.resize(static_cast<std::size_t>(lines_));
  dirty_.resize(static_cast<std::size_t>(lines_));
}

hmm::HmmResult AlloyCacheController::service(Addr addr, AccessType type,
                                             Tick now) {
  hmm::HmmResult res;
  const Addr phys = addr % dram().capacity();
  const u64 line = phys / cfg_.line_bytes;
  const u64 slot = line % lines_;
  const u8 tag = static_cast<u8>(line / lines_);
  const Addr tad_addr = slot * cfg_.tad_bytes;

  // One TAD stream returns tag + data together.
  const auto probe = hbm().access(tad_addr, cfg_.tad_bytes, AccessType::kRead,
                                  now, mem::TrafficClass::kDemand);
  res.metadata_latency = probe.latency();  // the tag half of the TAD

  const std::size_t s = static_cast<std::size_t>(slot);
  if (valid_.test(s) && tag_[s] == tag) {
    // Hit: the probe already delivered the data; writes update the TAD.
    if (type == AccessType::kWrite) {
      hbm().access(tad_addr, cfg_.tad_bytes, AccessType::kWrite,
                   probe.complete, mem::TrafficClass::kDemand);
      dirty_.set(s);
    }
    res.complete = probe.complete;
    res.served_by_hbm = true;
    res.phys_addr = tad_addr;
    return res;
  }

  // Miss: writeback the victim if dirty, then serve from DRAM and fill.
  if (valid_.test(s) && dirty_.test(s)) {
    const Addr victim =
        (static_cast<u64>(tag_[s]) * lines_ + slot) * cfg_.line_bytes;
    move_data(hbm(), tad_addr, dram(), victim, cfg_.line_bytes,
              probe.complete, mem::TrafficClass::kWriteback);
    ++mutable_stats().evictions;
  }
  const auto r = dram().access(phys, cfg_.line_bytes, type, probe.complete,
                               mem::TrafficClass::kDemand);
  // Fill the TAD (asynchronous).
  hbm().access(tad_addr, cfg_.tad_bytes, AccessType::kWrite, r.complete,
               mem::TrafficClass::kFill);
  tag_[s] = tag;
  valid_.set(s);
  dirty_.set(s, type == AccessType::kWrite);
  ++mutable_stats().blocks_fetched;
  ++mutable_stats().fetched_blocks_used;  // demand fill: always used

  res.complete = r.complete;
  res.served_by_hbm = false;
  res.phys_addr = phys;
  return res;
}

}  // namespace bb::baselines
