#include "trace/workload.h"

#include <algorithm>
#include <stdexcept>

namespace bb::trace {
namespace {

WorkloadProfile make(std::string name, double mpki, double footprint_gb,
                     MpkiClass cls, double spatial, double temporal,
                     double write_fraction) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.mpki = mpki;
  p.footprint_gb = footprint_gb;
  p.mpki_class = cls;
  p.spatial = spatial;
  p.temporal = temporal;
  p.write_fraction = write_fraction;

  // Mixture weights derived from the locality axes:
  //  - spatial locality manifests as sequential scanning (full lines used);
  //  - temporal locality manifests as Zipf hot-set revisits;
  //  - the remainder is uniform cold traffic.
  p.w_hot = 0.15 + 0.65 * temporal;
  // The non-hot remainder is mostly streaming (SPEC's miss tails walk
  // arrays); pure uniform-random cold misses are a small minority.
  p.w_scan = (1.0 - p.w_hot) * (0.50 + 0.45 * spatial);
  p.zipf_s = 0.7 + 0.5 * temporal;
  // Stronger temporal locality concentrates the hot set. Hot sets are a
  // few percent of the footprint (SPEC's reuse mass is dense — Figure 1).
  p.hot_fraction = 0.05 - 0.03 * temporal;
  return p;
}

}  // namespace

const std::vector<WorkloadProfile>& WorkloadProfile::spec2017() {
  // (name, MPKI, footprint GB) from Table II; (spatial, temporal) from the
  // paper's taxonomy where stated (mcf, wrf, xz) and from published SPEC
  // CPU2017 memory characterizations otherwise.
  static const std::vector<WorkloadProfile> kProfiles = {
      // High MPKI
      make("roms", 31.9, 10.6, MpkiClass::kHigh, 0.90, 0.25, 0.35),
      make("lbm", 31.4, 5.1, MpkiClass::kHigh, 0.95, 0.20, 0.45),
      make("bwaves", 20.4, 7.5, MpkiClass::kHigh, 0.85, 0.40, 0.30),
      make("wrf", 18.5, 2.7, MpkiClass::kHigh, 0.25, 0.80, 0.30),
      // Medium MPKI
      make("xalancbmk", 16.9, 0.6, MpkiClass::kMedium, 0.30, 0.75, 0.20),
      make("mcf", 16.1, 0.2, MpkiClass::kMedium, 0.85, 0.85, 0.25),
      make("cam4", 13.8, 10.8, MpkiClass::kMedium, 0.60, 0.45, 0.30),
      make("cactuBSSN", 12.2, 2.9, MpkiClass::kMedium, 0.80, 0.50, 0.35),
      // Low MPKI
      make("fotonik3d", 2.0, 0.2, MpkiClass::kLow, 0.85, 0.70, 0.30),
      make("x264", 0.9, 1.9, MpkiClass::kLow, 0.55, 0.70, 0.25),
      make("nab", 0.8, 0.9, MpkiClass::kLow, 0.50, 0.60, 0.25),
      make("namd", 0.5, 1.9, MpkiClass::kLow, 0.60, 0.55, 0.25),
      make("xz", 0.4, 7.2, MpkiClass::kLow, 0.90, 0.15, 0.40),
      make("leela", 0.1, 0.1, MpkiClass::kLow, 0.30, 0.70, 0.20),
  };
  return kProfiles;
}

const WorkloadProfile& WorkloadProfile::by_name(const std::string& name) {
  for (const auto& p : spec2017()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown workload profile: " + name);
}

std::vector<WorkloadProfile> WorkloadProfile::by_class(MpkiClass c) {
  std::vector<WorkloadProfile> out;
  for (const auto& p : spec2017()) {
    if (p.mpki_class == c) out.push_back(p);
  }
  return out;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> out;
  for (const auto& p : WorkloadProfile::spec2017()) out.push_back(p.name);
  return out;
}

void require_workload_names(const std::vector<std::string>& names) {
  const auto known = workload_names();
  for (const auto& name : names) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::string valid;
      for (const auto& k : known) {
        if (!valid.empty()) valid += ", ";
        valid += k;
      }
      throw std::invalid_argument("unknown workload: " + name +
                                  " (valid: " + valid + ")");
    }
  }
}

}  // namespace bb::trace
