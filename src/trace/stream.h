// Streaming binary trace layer: bounded-memory capture and replay.
//
// Format v2 ("BBMMTRC2"), little-endian throughout, written and read
// field-by-field (no struct dumps), so files are portable across hosts:
//
//   header (24 B): u64 magic | u32 version=2 | u32 codec | u64 chunk_records
//   chunk  (16 B + payload): u32 'CHNK' | u32 n_records |
//                            u32 payload_bytes | u32 payload_crc32 | payload
//   footer (32 B): u32 'FOOT' | u32 0 | u64 record_count |
//                  u64 inst_gap_total | u64 stream_crc32
//
// The stream checksum is a CRC32 over the canonical 17-byte record image
// (inst_gap u64 LE, addr u64 LE, is_write u8) of every record in file
// order, so it is independent of the per-chunk codec. Codecs:
//
//   0 raw    — canonical images, concatenated
//   1 varint — per record: varint(inst_gap << 1 | is_write), then
//              varint(zigzag(addr - prev_addr)); prev_addr resets to 0 at
//              every chunk boundary so chunks stay independently decodable
//   2 zlib   — deflate of the raw payload (only in builds that found zlib;
//              see zlib_supported())
//
// Readers hold one chunk at a time: peak memory is bounded by the largest
// chunk in the file, never by trace length. v1 traces (trace_file.cpp's
// whole-file header + packed records) remain readable through the same
// reader, loaded in fixed-size slices.
//
// Error contract (matches bb::cli): structural violations, corruption and
// empty traces throw TraceError (a std::invalid_argument — exit 2: the
// user supplied a bad trace file); OS-level open/read/write failures throw
// std::ios_base::failure (exit 3). The reader fails closed: a record is
// returned only after its chunk's CRC verified, so corrupt files can never
// leak partial or garbage records into a simulation.
#pragma once

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/generator.h"

namespace bb::trace {

/// Malformed, corrupt or empty trace file (never an OS-level I/O error).
class TraceError : public std::invalid_argument {
 public:
  explicit TraceError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Per-chunk payload encoding of a v2 trace.
enum class TraceCodec : u32 { kRaw = 0, kVarint = 1, kZlib = 2 };

/// True when this build can encode and decode zlib chunks.
bool zlib_supported();

/// Parses "raw" / "varint" / "zlib" (throws TraceError otherwise, or when
/// asking for zlib in a build without it).
TraceCodec parse_codec(const std::string& name);
const char* codec_name(TraceCodec codec);

struct TraceWriterOptions {
  TraceCodec codec = TraceCodec::kVarint;
  u32 chunk_records = 4096;  ///< records buffered per chunk
};

/// Buffered chunked writer for format v2 — the capture side of
/// `bbsim --capture-trace`. Records accumulate in a fixed-size buffer;
/// every `chunk_records` appends flush one encoded chunk, and close()
/// seals the file with the footer (record count, one-lap instruction
/// total, stream checksum). I/O errors are sticky: after the first
/// failure appends become no-ops and close() returns false.
class TraceCaptureSink {
 public:
  TraceCaptureSink() = default;
  ~TraceCaptureSink();

  TraceCaptureSink(const TraceCaptureSink&) = delete;
  TraceCaptureSink& operator=(const TraceCaptureSink&) = delete;

  /// Opens `path` for writing and emits the header. Throws TraceError for
  /// unusable options (zero chunk size, unavailable codec) and
  /// std::ios_base::failure when the file cannot be created.
  void open(const std::string& path,
            const TraceWriterOptions& opts = TraceWriterOptions{});

  void append(const TraceRecord& rec);

  /// Flushes the final partial chunk and writes the footer. Returns false
  /// when any write (now or earlier) failed — the file is then unusable.
  bool close();

  bool is_open() const { return file_ != nullptr; }
  bool ok() const { return ok_; }
  u64 records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  void flush_chunk();

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  TraceWriterOptions opts_;
  std::vector<TraceRecord> buffer_;
  std::vector<u8> canon_;    ///< canonical-image scratch, reused per chunk
  std::vector<u8> scratch_;  ///< encoded-payload scratch, reused per chunk
  u64 records_ = 0;
  u64 inst_gap_total_ = 0;
  u32 stream_crc_ = 0;
  bool ok_ = true;
};

struct TraceReaderOptions {
  /// Records decoded per read slice for v1 traces (v2 chunk sizes are
  /// baked into the file at capture time).
  u32 v1_chunk_records = 4096;
};

/// Structural description of a trace file, from a shallow walk of the
/// header, chunk headers and footer (payloads are not decoded).
struct TraceInfo {
  u32 version = 0;
  TraceCodec codec = TraceCodec::kRaw;
  u64 records = 0;
  u64 inst_gap_total = 0;  ///< instruction budget for exactly one pass
  u64 chunks = 0;          ///< v1: number of read slices
  u64 file_bytes = 0;
  u64 max_chunk_payload = 0;  ///< read-buffer high-water mark, bytes
  u64 max_chunk_records = 0;  ///< decoded-buffer high-water mark, records
};

/// Walks and structurally validates `path` (markers, sizes, chunk/footer
/// record-count agreement; v1 traces additionally scan records for the
/// instruction total). Throws TraceError / std::ios_base::failure.
TraceInfo trace_info(const std::string& path,
                     const TraceReaderOptions& opts = TraceReaderOptions{});

/// Bounded-memory trace replay behind the TraceSource interface: holds
/// exactly one decoded chunk regardless of trace length, and loops to the
/// first record at end-of-trace (laps() counts completed passes, matching
/// TraceReplayer). Construction walks the file structure up front, so a
/// truncated or empty file fails before any record is served; per-chunk
/// CRCs are verified as chunks load and the footer's stream checksum and
/// record count at every lap boundary.
class StreamingTraceReader : public TraceSource {
 public:
  explicit StreamingTraceReader(
      const std::string& path,
      const TraceReaderOptions& opts = TraceReaderOptions{});
  ~StreamingTraceReader() override;

  StreamingTraceReader(const StreamingTraceReader&) = delete;
  StreamingTraceReader& operator=(const StreamingTraceReader&) = delete;

  TraceRecord next() override;

  const TraceInfo& info() const { return info_; }
  u64 laps() const { return laps_; }

  /// Snapshot/restore of the replay position (lap count + records served
  /// within the current lap). Restoring re-decodes at most one lap's worth
  /// of chunks from the file start, rebuilding the running stream checksum
  /// along the way, so checksum verification at the next lap boundary
  /// still covers every record.
  bool cursor_supported() const override { return true; }
  void save_cursor(snap::Writer& w) const override;
  void load_cursor(snap::Reader& r) override;

 private:
  void rewind_to_first_chunk();
  void load_next_chunk();
  void load_v1_slice();

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  TraceReaderOptions opts_;
  TraceInfo info_;
  u64 footer_stream_crc_ = 0;

  std::vector<TraceRecord> decoded_;  ///< current chunk, capacity fixed
  std::size_t cursor_ = 0;            ///< next record within decoded_
  std::vector<u8> payload_;           ///< encoded-chunk buffer, size fixed
  std::vector<u8> canon_;             ///< zlib decode scratch, reused
  u64 records_served_this_lap_ = 0;
  u32 stream_crc_ = 0;                ///< running CRC of served records
  u64 laps_ = 0;
};

/// Deep validation: decodes every chunk, verifying per-chunk CRCs, the
/// stream checksum, the instruction total and the footer record count.
/// Returns the file's TraceInfo; throws TraceError with a diagnostic that
/// names the failing offset/chunk otherwise.
TraceInfo validate_trace(const std::string& path,
                         const TraceReaderOptions& opts =
                             TraceReaderOptions{});

/// Reads an entire trace (v1 or v2) into memory — the non-streaming path
/// used by `--replay-mode=memory` and small tools. Throws like
/// StreamingTraceReader.
std::vector<TraceRecord> read_trace(const std::string& path);

/// Convenience one-shot v2 writer (capture of an in-memory record set).
/// Returns false on I/O failure; throws TraceError for unusable options.
bool save_trace_v2(const std::string& path,
                   const std::vector<TraceRecord>& records,
                   const TraceWriterOptions& opts = TraceWriterOptions{});

}  // namespace bb::trace
