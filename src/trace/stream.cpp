#include "trace/stream.h"

#include "common/crc32.h"
#include "common/snapshot.h"

#include <array>
#include <cstring>
#include <ios>

#ifdef BB_HAVE_ZLIB
#include <zlib.h>
#endif

namespace bb::trace {
namespace {

// ---- format constants -----------------------------------------------------

constexpr u64 kMagicV1 = 0x42424d4d54524331ULL;  // "BBMMTRC1"
constexpr u64 kMagicV2 = 0x42424d4d54524332ULL;  // "BBMMTRC2"
constexpr u32 kChunkMarker = 0x434b4e48;         // "CHNK" (LE bytes H N K C)
constexpr u32 kFooterMarker = 0x544f4f46;        // "FOOT"
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kChunkHeaderBytes = 16;
constexpr std::size_t kFooterBytes = 32;
constexpr std::size_t kCanonicalRecordBytes = 17;  // u64 gap, u64 addr, u8 w
constexpr std::size_t kV1RecordBytes = 24;         // trace_file.cpp layout
constexpr u64 kMaxChunkPayloadBytes = 1ULL << 30;
constexpr u32 kMaxChunkRecords = 1u << 24;

// ---- little-endian byte helpers -------------------------------------------

void put_u32(u8* out, u32 v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<u8>(v >> (8 * i));
}

void put_u64(u8* out, u64 v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<u8>(v >> (8 * i));
}

u32 get_u32(const u8* in) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(in[i]) << (8 * i);
  return v;
}

u64 get_u64(const u8* in) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[i]) << (8 * i);
  return v;
}

// CRC32 comes from the shared common/crc32.h implementation (also used by
// the snapshot container), pulled into this namespace so the call sites
// below read unqualified.
using bb::crc32_final;
using bb::crc32_init;
using bb::crc32_of;
using bb::crc32_update;

// ---- varint / zigzag ------------------------------------------------------

void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

/// Reads one varint from [p, end). Throws on overrun or >64-bit values.
u64 get_varint(const u8*& p, const u8* end) {
  u64 v = 0;
  for (u32 shift = 0; shift < 64; shift += 7) {
    if (p == end) throw TraceError("varint chunk payload truncated");
    const u8 byte = *p++;
    v |= static_cast<u64>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
  }
  throw TraceError("varint value overflows 64 bits");
}

u64 zigzag_encode(u64 delta) {
  const i64 s = static_cast<i64>(delta);
  return (static_cast<u64>(s) << 1) ^ static_cast<u64>(s >> 63);
}

u64 zigzag_decode(u64 z) { return (z >> 1) ^ (~(z & 1) + 1); }

// ---- canonical record image -----------------------------------------------

void put_canonical(u8* out, const TraceRecord& r) {
  put_u64(out, r.inst_gap);
  put_u64(out + 8, r.addr);
  out[16] = r.type == AccessType::kWrite ? 1 : 0;
}

TraceRecord get_canonical(const u8* in) {
  TraceRecord r;
  r.inst_gap = get_u64(in);
  r.addr = get_u64(in + 8);
  if (in[16] > 1) throw TraceError("corrupt record: bad access-type byte");
  r.type = in[16] != 0 ? AccessType::kWrite : AccessType::kRead;
  return r;
}

// ---- file helpers ---------------------------------------------------------

[[noreturn]] void throw_io(const std::string& path, const char* what) {
  throw std::ios_base::failure(std::string(what) + ": " + path);
}

[[noreturn]] void throw_bad(const std::string& path, const std::string& what) {
  throw TraceError("bad trace file " + path + ": " + what);
}

bool read_exact(std::FILE* f, u8* buf, std::size_t n) {
  return std::fread(buf, 1, n, f) == n;
}

bool write_exact(std::FILE* f, const u8* buf, std::size_t n) {
  return std::fwrite(buf, 1, n, f) == n;
}

void seek_to(std::FILE* f, const std::string& path, u64 offset) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    throw_io(path, "cannot seek in trace file");
  }
}

u64 file_size(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) throw_io(path, "cannot seek");
  const long size = std::ftell(f);
  if (size < 0) throw_io(path, "cannot tell");
  return static_cast<u64>(size);
}

// ---- chunk codecs ---------------------------------------------------------

#ifdef BB_HAVE_ZLIB
constexpr bool kHaveZlib = true;
#else
constexpr bool kHaveZlib = false;
#endif

/// Encodes `records` into `payload` with `codec`, updating the running
/// stream-CRC state over the canonical images via `canon` scratch.
void encode_chunk(const std::vector<TraceRecord>& records, TraceCodec codec,
                  std::vector<u8>& canon, std::vector<u8>& payload,
                  u32& stream_crc_state) {
  canon.resize(records.size() * kCanonicalRecordBytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    put_canonical(canon.data() + i * kCanonicalRecordBytes, records[i]);
  }
  stream_crc_state = crc32_update(stream_crc_state, canon.data(),
                                  canon.size());
  switch (codec) {
    case TraceCodec::kRaw:
      payload = canon;
      return;
    case TraceCodec::kVarint: {
      payload.clear();
      Addr prev = 0;
      for (const TraceRecord& r : records) {
        if (r.inst_gap >= (1ULL << 63)) {
          throw TraceError("inst_gap too large for the varint codec");
        }
        const u64 w = r.type == AccessType::kWrite ? 1 : 0;
        put_varint(payload, (r.inst_gap << 1) | w);
        put_varint(payload, zigzag_encode(r.addr - prev));
        prev = r.addr;
      }
      return;
    }
    case TraceCodec::kZlib: {
#ifdef BB_HAVE_ZLIB
      uLongf bound = compressBound(static_cast<uLong>(canon.size()));
      payload.resize(static_cast<std::size_t>(bound));
      const int rc =
          compress2(payload.data(), &bound, canon.data(),
                    static_cast<uLong>(canon.size()), Z_DEFAULT_COMPRESSION);
      if (rc != Z_OK) throw TraceError("zlib compression failed");
      payload.resize(static_cast<std::size_t>(bound));
      return;
#else
      throw TraceError("zlib codec unavailable in this build");
#endif
    }
  }
  throw TraceError("unknown trace codec");
}

/// Decodes one chunk payload into `out` (exactly n_records entries),
/// updating the running stream-CRC state over the canonical images.
/// Throws TraceError on any inconsistency; `out` is only valid on return.
void decode_chunk(const u8* payload, std::size_t payload_bytes,
                  TraceCodec codec, u32 n_records, std::vector<u8>& canon,
                  std::vector<TraceRecord>& out, u32& stream_crc_state) {
  out.clear();
  switch (codec) {
    case TraceCodec::kRaw: {
      if (payload_bytes != n_records * kCanonicalRecordBytes) {
        throw TraceError("raw chunk payload size disagrees with its count");
      }
      for (u32 i = 0; i < n_records; ++i) {
        out.push_back(get_canonical(payload + i * kCanonicalRecordBytes));
      }
      stream_crc_state = crc32_update(stream_crc_state, payload,
                                      payload_bytes);
      return;
    }
    case TraceCodec::kVarint: {
      const u8* p = payload;
      const u8* end = payload + payload_bytes;
      Addr prev = 0;
      u8 image[kCanonicalRecordBytes];
      for (u32 i = 0; i < n_records; ++i) {
        const u64 gw = get_varint(p, end);
        TraceRecord r;
        r.inst_gap = gw >> 1;
        r.type = (gw & 1) != 0 ? AccessType::kWrite : AccessType::kRead;
        r.addr = prev + zigzag_decode(get_varint(p, end));
        prev = r.addr;
        put_canonical(image, r);
        stream_crc_state =
            crc32_update(stream_crc_state, image, kCanonicalRecordBytes);
        out.push_back(r);
      }
      if (p != end) {
        throw TraceError("varint chunk has trailing bytes after its records");
      }
      return;
    }
    case TraceCodec::kZlib: {
#ifdef BB_HAVE_ZLIB
      canon.resize(n_records * kCanonicalRecordBytes);
      uLongf raw_len = static_cast<uLongf>(canon.size());
      const int rc = uncompress(canon.data(), &raw_len, payload,
                                static_cast<uLong>(payload_bytes));
      if (rc != Z_OK || raw_len != canon.size()) {
        throw TraceError("zlib chunk fails to decompress to its record count");
      }
      for (u32 i = 0; i < n_records; ++i) {
        out.push_back(get_canonical(canon.data() +
                                    i * kCanonicalRecordBytes));
      }
      stream_crc_state = crc32_update(stream_crc_state, canon.data(),
                                      canon.size());
      return;
#else
      throw TraceError("zlib codec unavailable in this build");
#endif
    }
  }
  throw TraceError("unknown trace codec");
}

// ---- structural walk ------------------------------------------------------

struct WalkResult {
  TraceInfo info;
  u64 footer_stream_crc = 0;
};

/// Shallow structural validation of an open trace file: header, every
/// chunk header (payloads skipped), footer, and their mutual agreement.
/// For v1 files the records are additionally scanned (they carry no
/// footer) to compute the one-pass instruction total. Leaves the file
/// position unspecified.
WalkResult walk_structure(std::FILE* f, const std::string& path,
                          const TraceReaderOptions& opts) {
  WalkResult wr;
  TraceInfo& info = wr.info;
  info.file_bytes = file_size(f, path);
  if (info.file_bytes < kHeaderBytes) {
    throw_bad(path, "shorter than a trace header");
  }
  seek_to(f, path, 0);
  u8 hdr[kHeaderBytes];
  if (!read_exact(f, hdr, kHeaderBytes)) throw_io(path, "cannot read header");
  const u64 magic = get_u64(hdr);
  const u32 version = get_u32(hdr + 8);

  if (magic == kMagicV1) {
    if (version != 1) {
      throw_bad(path, "v1 magic with unsupported version " +
                          std::to_string(version));
    }
    const u64 count = get_u64(hdr + 16);
    if (count == 0) throw_bad(path, "empty trace: nothing to replay");
    const u64 expect = kHeaderBytes + count * kV1RecordBytes;
    if (info.file_bytes != expect) {
      throw_bad(path, "v1 record area is " +
                          std::to_string(info.file_bytes - kHeaderBytes) +
                          " bytes but the header promises " +
                          std::to_string(count * kV1RecordBytes) +
                          " (truncated or trailing bytes)");
    }
    info.version = 1;
    info.codec = TraceCodec::kRaw;
    info.records = count;
    const u64 slice = std::max<u64>(1, opts.v1_chunk_records);
    info.chunks = (count + slice - 1) / slice;
    info.max_chunk_records = std::min<u64>(count, slice);
    info.max_chunk_payload = info.max_chunk_records * kV1RecordBytes;
    // v1 has no footer: scan the packed records for the instruction total
    // (v1 traces are small by construction — they predate streaming).
    std::vector<u8> buf(static_cast<std::size_t>(info.max_chunk_payload));
    u64 remaining = count;
    while (remaining > 0) {
      const u64 n = std::min<u64>(remaining, info.max_chunk_records);
      const std::size_t bytes = static_cast<std::size_t>(n) * kV1RecordBytes;
      if (!read_exact(f, buf.data(), bytes)) {
        throw_io(path, "cannot read v1 records");
      }
      for (u64 i = 0; i < n; ++i) {
        info.inst_gap_total +=
            get_u64(buf.data() + static_cast<std::size_t>(i) *
                                     kV1RecordBytes);
      }
      remaining -= n;
    }
    return wr;
  }

  if (magic != kMagicV2) throw_bad(path, "not a Bumblebee binary trace");
  if (version != 2) {
    throw_bad(path,
              "v2 magic with unsupported version " + std::to_string(version));
  }
  const u32 codec_raw = get_u32(hdr + 12);
  if (codec_raw > static_cast<u32>(TraceCodec::kZlib)) {
    throw_bad(path, "unknown codec id " + std::to_string(codec_raw));
  }
  info.codec = static_cast<TraceCodec>(codec_raw);
  if (info.codec == TraceCodec::kZlib && !kHaveZlib) {
    throw_bad(path, "zlib codec unavailable in this build");
  }
  info.version = 2;

  if (info.file_bytes < kHeaderBytes + kFooterBytes) {
    throw_bad(path, "too small to hold a footer (truncated capture?)");
  }
  const u64 footer_off = info.file_bytes - kFooterBytes;
  seek_to(f, path, footer_off);
  u8 foot[kFooterBytes];
  if (!read_exact(f, foot, kFooterBytes)) throw_io(path, "cannot read footer");
  if (get_u32(foot) != kFooterMarker) {
    throw_bad(path, "footer marker missing (truncated capture?)");
  }
  info.records = get_u64(foot + 8);
  info.inst_gap_total = get_u64(foot + 16);
  wr.footer_stream_crc = get_u64(foot + 24);
  if (info.records == 0) throw_bad(path, "empty trace: nothing to replay");

  u64 pos = kHeaderBytes;
  u64 counted = 0;
  seek_to(f, path, pos);
  while (pos < footer_off) {
    if (footer_off - pos < kChunkHeaderBytes) {
      throw_bad(path, "dangling bytes before the footer at offset " +
                          std::to_string(pos));
    }
    u8 ch[kChunkHeaderBytes];
    if (!read_exact(f, ch, kChunkHeaderBytes)) {
      throw_io(path, "cannot read chunk header");
    }
    if (get_u32(ch) != kChunkMarker) {
      throw_bad(path, "chunk marker missing at offset " + std::to_string(pos));
    }
    const u32 n_records = get_u32(ch + 4);
    const u32 payload_bytes = get_u32(ch + 8);
    if (n_records == 0 || n_records > kMaxChunkRecords) {
      throw_bad(path, "implausible chunk record count at offset " +
                          std::to_string(pos));
    }
    if (payload_bytes == 0 || payload_bytes > kMaxChunkPayloadBytes) {
      throw_bad(path, "implausible chunk payload size at offset " +
                          std::to_string(pos));
    }
    if (info.codec == TraceCodec::kRaw &&
        payload_bytes != n_records * kCanonicalRecordBytes) {
      throw_bad(path, "raw chunk payload size disagrees with its count at "
                      "offset " +
                          std::to_string(pos));
    }
    pos += kChunkHeaderBytes;
    if (payload_bytes > footer_off - pos) {
      throw_bad(path, "chunk at offset " +
                          std::to_string(pos - kChunkHeaderBytes) +
                          " overruns the footer (truncated final chunk?)");
    }
    pos += payload_bytes;
    seek_to(f, path, pos);
    counted += n_records;
    info.max_chunk_payload = std::max<u64>(info.max_chunk_payload,
                                           payload_bytes);
    info.max_chunk_records = std::max<u64>(info.max_chunk_records, n_records);
    ++info.chunks;
  }
  if (counted != info.records) {
    throw_bad(path, "chunks hold " + std::to_string(counted) +
                        " records but the footer promises " +
                        std::to_string(info.records));
  }
  return wr;
}

}  // namespace

// ---- codec names ----------------------------------------------------------

bool zlib_supported() { return kHaveZlib; }

TraceCodec parse_codec(const std::string& name) {
  if (name == "raw") return TraceCodec::kRaw;
  if (name == "varint") return TraceCodec::kVarint;
  if (name == "zlib") {
    if (!kHaveZlib) {
      throw TraceError("zlib codec unavailable in this build");
    }
    return TraceCodec::kZlib;
  }
  throw TraceError("unknown trace codec: " + name +
                   " (expected raw, varint or zlib)");
}

const char* codec_name(TraceCodec codec) {
  switch (codec) {
    case TraceCodec::kRaw: return "raw";
    case TraceCodec::kVarint: return "varint";
    case TraceCodec::kZlib: return "zlib";
  }
  return "unknown";
}

// ---- TraceCaptureSink -----------------------------------------------------

TraceCaptureSink::~TraceCaptureSink() {
  if (is_open()) close();
}

void TraceCaptureSink::open(const std::string& path,
                            const TraceWriterOptions& opts) {
  if (is_open()) throw TraceError("capture sink is already open");
  if (opts.chunk_records == 0 || opts.chunk_records > kMaxChunkRecords) {
    throw TraceError("capture chunk size must be in [1, " +
                     std::to_string(kMaxChunkRecords) + "] records");
  }
  if (opts.codec == TraceCodec::kZlib && !kHaveZlib) {
    throw TraceError("zlib codec unavailable in this build");
  }
  file_.reset(std::fopen(path.c_str(), "wb"));
  if (!file_) throw_io(path, "cannot create trace file");
  path_ = path;
  opts_ = opts;
  buffer_.clear();
  buffer_.reserve(opts_.chunk_records);
  records_ = 0;
  inst_gap_total_ = 0;
  stream_crc_ = crc32_init();
  ok_ = true;

  u8 hdr[kHeaderBytes];
  put_u64(hdr, kMagicV2);
  put_u32(hdr + 8, 2);
  put_u32(hdr + 12, static_cast<u32>(opts_.codec));
  put_u64(hdr + 16, opts_.chunk_records);
  if (!write_exact(file_.get(), hdr, kHeaderBytes)) ok_ = false;
}

void TraceCaptureSink::append(const TraceRecord& rec) {
  if (!is_open() || !ok_) return;
  buffer_.push_back(rec);
  records_ += 1;
  inst_gap_total_ += rec.inst_gap;
  if (buffer_.size() >= opts_.chunk_records) flush_chunk();
}

void TraceCaptureSink::flush_chunk() {
  if (buffer_.empty() || !ok_) return;
  encode_chunk(buffer_, opts_.codec, canon_, scratch_, stream_crc_);
  u8 ch[kChunkHeaderBytes];
  put_u32(ch, kChunkMarker);
  put_u32(ch + 4, static_cast<u32>(buffer_.size()));
  put_u32(ch + 8, static_cast<u32>(scratch_.size()));
  put_u32(ch + 12, crc32_of(scratch_.data(), scratch_.size()));
  if (!write_exact(file_.get(), ch, kChunkHeaderBytes) ||
      !write_exact(file_.get(), scratch_.data(), scratch_.size())) {
    ok_ = false;
  }
  buffer_.clear();
}

bool TraceCaptureSink::close() {
  if (!is_open()) return ok_;
  flush_chunk();
  u8 foot[kFooterBytes];
  put_u32(foot, kFooterMarker);
  put_u32(foot + 4, 0);
  put_u64(foot + 8, records_);
  put_u64(foot + 16, inst_gap_total_);
  put_u64(foot + 24, crc32_final(stream_crc_));
  if (!write_exact(file_.get(), foot, kFooterBytes)) ok_ = false;
  if (std::fflush(file_.get()) != 0) ok_ = false;
  file_.reset();
  return ok_;
}

// ---- trace_info -----------------------------------------------------------

TraceInfo trace_info(const std::string& path, const TraceReaderOptions& opts) {
  struct Closer {
    void operator()(std::FILE* fp) const {
      if (fp != nullptr) std::fclose(fp);
    }
  };
  std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "rb"));
  if (!f) throw_io(path, "cannot open trace file");
  return walk_structure(f.get(), path, opts).info;
}

// ---- StreamingTraceReader -------------------------------------------------

StreamingTraceReader::StreamingTraceReader(const std::string& path,
                                           const TraceReaderOptions& opts)
    : path_(path), opts_(opts) {
  file_.reset(std::fopen(path.c_str(), "rb"));
  if (!file_) throw_io(path, "cannot open trace file");
  const WalkResult wr = walk_structure(file_.get(), path_, opts_);
  info_ = wr.info;
  footer_stream_crc_ = wr.footer_stream_crc;
  payload_.resize(static_cast<std::size_t>(info_.max_chunk_payload));
  decoded_.reserve(static_cast<std::size_t>(info_.max_chunk_records));
  rewind_to_first_chunk();
}

StreamingTraceReader::~StreamingTraceReader() = default;

void StreamingTraceReader::rewind_to_first_chunk() {
  seek_to(file_.get(), path_, kHeaderBytes);
  decoded_.clear();
  cursor_ = 0;
  records_served_this_lap_ = 0;
  stream_crc_ = crc32_init();
}

TraceRecord StreamingTraceReader::next() {
  if (cursor_ >= decoded_.size()) {
    if (info_.version == 1) {
      load_v1_slice();
    } else {
      load_next_chunk();
    }
  }
  const TraceRecord r = decoded_[cursor_++];
  if (cursor_ >= decoded_.size() &&
      records_served_this_lap_ >= info_.records) {
    // Lap complete. Count it eagerly — TraceReplayer::next() bumps laps()
    // while serving the last record, and the two must stay in lockstep —
    // and verify the whole decoded stream against the footer checksum
    // before the record escapes (fail closed, v2 only: v1 carries no
    // checksums).
    if (info_.version == 2 &&
        crc32_final(stream_crc_) != footer_stream_crc_) {
      throw_bad(path_, "stream checksum mismatch (corrupt records?)");
    }
    ++laps_;
    rewind_to_first_chunk();
  }
  return r;
}

void StreamingTraceReader::load_next_chunk() {
  u8 ch[kChunkHeaderBytes];
  if (!read_exact(file_.get(), ch, kChunkHeaderBytes)) {
    throw_io(path_, "cannot read chunk header");
  }
  if (get_u32(ch) != kChunkMarker) {
    throw_bad(path_, "chunk marker missing mid-replay");
  }
  const u32 n_records = get_u32(ch + 4);
  const u32 payload_bytes = get_u32(ch + 8);
  const u32 payload_crc = get_u32(ch + 12);
  if (payload_bytes > payload_.size() ||
      n_records > info_.max_chunk_records) {
    throw_bad(path_, "chunk grew beyond its validated bounds mid-replay");
  }
  if (!read_exact(file_.get(), payload_.data(), payload_bytes)) {
    throw_io(path_, "cannot read chunk payload");
  }
  if (crc32_of(payload_.data(), payload_bytes) != payload_crc) {
    throw_bad(path_, "chunk checksum mismatch at record " +
                         std::to_string(records_served_this_lap_));
  }
  decode_chunk(payload_.data(), payload_bytes, info_.codec, n_records, canon_,
               decoded_, stream_crc_);
  cursor_ = 0;
  records_served_this_lap_ += n_records;
}

void StreamingTraceReader::load_v1_slice() {
  const u64 n = std::min<u64>(info_.records - records_served_this_lap_,
                              info_.max_chunk_records);
  const std::size_t bytes = static_cast<std::size_t>(n) * kV1RecordBytes;
  if (!read_exact(file_.get(), payload_.data(), bytes)) {
    throw_io(path_, "cannot read v1 records");
  }
  decoded_.clear();
  for (u64 i = 0; i < n; ++i) {
    const u8* p = payload_.data() + static_cast<std::size_t>(i) *
                                        kV1RecordBytes;
    TraceRecord r;
    r.inst_gap = get_u64(p);
    r.addr = get_u64(p + 8);
    r.type = p[16] != 0 ? AccessType::kWrite : AccessType::kRead;
    decoded_.push_back(r);
  }
  cursor_ = 0;
  records_served_this_lap_ += n;
}

void StreamingTraceReader::save_cursor(snap::Writer& w) const {
  // Position = completed laps + records already handed out this lap. The
  // decoded_ buffer holds a whole chunk; records_served_this_lap_ counts
  // whole chunks, so subtract the part of the buffer not yet served.
  const u64 served_in_lap =
      records_served_this_lap_ - (decoded_.size() - cursor_);
  w.put_u64(laps_);
  w.put_u64(served_in_lap);
}

void StreamingTraceReader::load_cursor(snap::Reader& r) {
  const u64 target_laps = r.get_u64();
  const u64 served_in_lap = r.get_u64();
  if (served_in_lap > info_.records) {
    throw snap::SnapshotError("stream cursor past end of trace");
  }
  rewind_to_first_chunk();
  while (records_served_this_lap_ < served_in_lap) {
    if (info_.version == 1) {
      load_v1_slice();
    } else {
      load_next_chunk();
    }
  }
  cursor_ = decoded_.size() -
            static_cast<std::size_t>(records_served_this_lap_ - served_in_lap);
  laps_ = target_laps;
}

// ---- whole-trace helpers --------------------------------------------------

TraceInfo validate_trace(const std::string& path,
                         const TraceReaderOptions& opts) {
  StreamingTraceReader reader(path, opts);
  u64 gaps = 0;
  for (u64 i = 0; i < reader.info().records; ++i) {
    gaps += reader.next().inst_gap;
  }
  // Serving the final record verified the stream checksum and completed
  // the lap; anything else means the chunk walk and the footer disagree
  // about how many records the file really holds.
  if (reader.laps() != 1) {
    throw_bad(path, "reader failed to complete exactly one pass");
  }
  if (gaps != reader.info().inst_gap_total) {
    throw_bad(path, "instruction total " + std::to_string(gaps) +
                        " disagrees with the recorded total " +
                        std::to_string(reader.info().inst_gap_total));
  }
  return reader.info();
}

std::vector<TraceRecord> read_trace(const std::string& path) {
  StreamingTraceReader reader(path);
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(reader.info().records));
  // The final next() completes the lap, which verifies the stream
  // checksum — a corrupt file throws before the records are returned.
  for (u64 i = 0; i < reader.info().records; ++i) out.push_back(reader.next());
  return out;
}

bool save_trace_v2(const std::string& path,
                   const std::vector<TraceRecord>& records,
                   const TraceWriterOptions& opts) {
  TraceCaptureSink sink;
  try {
    sink.open(path, opts);
  } catch (const std::ios_base::failure&) {
    return false;
  }
  for (const TraceRecord& r : records) sink.append(r);
  return sink.close();
}

}  // namespace bb::trace
