// Synthetic workload profiles calibrated to Table II of the paper.
//
// The paper evaluates SimPoint slices of SPEC CPU2017; those traces are not
// redistributable, so we synthesize LLC-miss streams whose *characterized*
// properties match what the paper reports and uses:
//   * MPKI (LLC misses per kilo-instruction) and memory footprint: Table II.
//   * Spatial locality (how completely large lines/pages get used) and
//     temporal locality (re-access frequency before eviction): the axes of
//     Figure 1 and Section II-B's workload taxonomy. The paper explicitly
//     characterizes mcf (strong/strong), wrf (weak spatial/strong temporal)
//     and xz (strong spatial/weak temporal); others are assigned plausible
//     published characterizations.
//
// Each profile drives a mixture generator (see generator.h) with weights for
// a sequential scanner, a Zipf-distributed hot set and uniform cold misses.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bb::trace {

enum class MpkiClass : u8 { kHigh, kMedium, kLow };

constexpr const char* to_string(MpkiClass c) {
  switch (c) {
    case MpkiClass::kHigh: return "High";
    case MpkiClass::kMedium: return "Medium";
    case MpkiClass::kLow: return "Low";
  }
  return "?";
}

struct WorkloadProfile {
  std::string name;
  double mpki = 1.0;         ///< LLC misses per kilo-instruction (Table II)
  double footprint_gb = 1.0; ///< memory footprint in GB (Table II)
  MpkiClass mpki_class = MpkiClass::kMedium;

  // Locality axes in [0, 1].
  double spatial = 0.5;   ///< fraction of a page's blocks typically used
  double temporal = 0.5;  ///< tendency to re-access data before eviction

  double write_fraction = 0.3;

  // Mixture weights (must sum to <= 1; remainder is uniform cold misses).
  double w_scan = 0.3;  ///< sequential scanner share
  double w_hot = 0.5;   ///< Zipf hot-set share

  double zipf_s = 0.9;        ///< hot-set skew
  double hot_fraction = 0.05; ///< hot set size as fraction of footprint

  u64 footprint_bytes() const {
    return static_cast<u64>(footprint_gb * static_cast<double>(GiB));
  }

  /// Mean instructions between LLC misses.
  double mean_inst_gap() const { return 1000.0 / mpki; }

  /// The 14 SPEC CPU2017 benchmarks of Table II, grouped by MPKI class.
  static const std::vector<WorkloadProfile>& spec2017();

  /// Lookup by benchmark name; throws std::out_of_range if unknown.
  static const WorkloadProfile& by_name(const std::string& name);

  /// All profiles in a given MPKI class, in Table II order.
  static std::vector<WorkloadProfile> by_class(MpkiClass c);
};

/// Every Table II benchmark name, in table order (what drivers print for
/// --list-workloads).
std::vector<std::string> workload_names();

/// Validates requested workload names against Table II before any
/// simulation starts (mirrors baselines::require_design_names). Throws
/// std::invalid_argument naming the first unknown entry and listing every
/// valid name, so a typo fails a sweep in milliseconds.
void require_workload_names(const std::vector<std::string>& names);

}  // namespace bb::trace
