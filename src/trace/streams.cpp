#include "trace/streams.h"

#include <algorithm>
#include <cassert>

namespace bb::trace {

PointerChaseStream::PointerChaseStream(u64 working_set_bytes, u64 seed,
                                       Addr base)
    : base_(base) {
  const u64 lines = std::max<u64>(2, working_set_bytes / kLineBytes);
  assert(lines <= ~u32{0} && "working set too large for u32 line indexes");
  // Sattolo's algorithm: a uniform random single-cycle permutation, so the
  // chase visits every line exactly once per lap.
  std::vector<u32> order(static_cast<std::size_t>(lines));
  for (u64 i = 0; i < lines; ++i) order[static_cast<std::size_t>(i)] =
      static_cast<u32>(i);
  Rng rng(seed);
  for (u64 i = lines - 1; i > 0; --i) {
    const u64 j = rng.next_below(i);  // j < i: guarantees one cycle
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
  }
  next_line_.assign(static_cast<std::size_t>(lines), 0);
  for (u64 i = 0; i + 1 < lines; ++i) {
    next_line_[order[static_cast<std::size_t>(i)]] =
        order[static_cast<std::size_t>(i + 1)];
  }
  next_line_[order[static_cast<std::size_t>(lines - 1)]] = order[0];
  cursor_ = order[0];
}

Addr PointerChaseStream::next() {
  const Addr a = base_ + static_cast<Addr>(cursor_) * kLineBytes;
  cursor_ = next_line_[cursor_];
  return a;
}

PhasedGenerator::PhasedGenerator(std::vector<Phase> phases, u64 seed)
    : phases_(std::move(phases)), seed_(seed) {
  advance_phase();
}

void PhasedGenerator::advance_phase() {
  gen_.reset();
  while (phase_ < phases_.size() && phases_[phase_].misses == 0) ++phase_;
  if (phase_ >= phases_.size()) return;
  gen_ = std::make_unique<TraceGenerator>(
      phases_[phase_].profile, seed_ + 0x9e3779b9ULL * (phase_ + 1));
  remaining_ = phases_[phase_].misses;
}

TraceRecord PhasedGenerator::next() {
  if (!gen_) return TraceRecord{1, 0, AccessType::kRead};
  const TraceRecord rec = gen_->next();
  if (--remaining_ == 0) {
    ++phase_;
    advance_phase();
  }
  return rec;
}

}  // namespace bb::trace
