// Deterministic synthetic LLC-miss stream generator.
//
// Each record models one LLC-miss memory request: an instruction gap since
// the previous miss (geometric with mean 1000/MPKI), a 64 B-aligned address
// within the workload footprint, and a read/write direction.
//
// Addresses come from a three-way mixture reflecting the profile's locality:
//   * scanner  — sequential sweep of the footprint (spatial locality),
//   * hot set  — Zipf-distributed revisits of scattered hot regions
//                (temporal locality); the *size* of a hot region encodes how
//                densely hot data fills a 64 KB page, which is exactly the
//                Figure 1 axis (wrf: sparse hot blocks; mcf: dense pages),
//   * cold     — uniform misses across the footprint.
//
// The generator is a pure function of (profile, seed): identical streams on
// every run and platform.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/workload.h"

namespace bb::snap {
class Reader;
class Writer;
}  // namespace bb::snap

namespace bb::trace {

/// One LLC-miss request.
struct TraceRecord {
  u64 inst_gap = 0;  ///< instructions retired since the previous miss
  Addr addr = 0;     ///< 64 B-aligned physical address
  AccessType type = AccessType::kRead;
};

/// Abstract producer of miss records. Synthetic generators, in-memory
/// replayers and the streaming trace reader all implement this, so the
/// core model can drive any of them interchangeably (CoreModel
/// ::run_sources). Sources never run dry: replayers loop at end-of-trace.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next miss record.
  virtual TraceRecord next() = 0;

  /// Snapshot capability: sources whose read position can be serialized
  /// and reinstated override these. The defaults are fail-closed — a
  /// snapshot request against an unsupporting source is a usage error.
  virtual bool cursor_supported() const { return false; }
  virtual void save_cursor(snap::Writer& w) const;
  virtual void load_cursor(snap::Reader& r);
};

inline constexpr u64 kLineBytes = 64;

/// Hot sets are capped: SPEC's hot data concentrates well below the full
/// footprint (the reuse mass that makes a 1 GB HBM worthwhile — cf. the
/// paper's Figure 1 where even 10 GB-footprint workloads show dense reuse).
inline constexpr u64 kMaxHotSetBytes = 384 * MiB;

class TraceGenerator : public TraceSource {
 public:
  TraceGenerator(const WorkloadProfile& profile, u64 seed);

  /// Produces the next miss record.
  TraceRecord next() override;

  /// Convenience: materializes `n` records.
  std::vector<TraceRecord> take(u64 n);

  const WorkloadProfile& profile() const { return profile_; }

  /// Size of one hot region: 1 KB (sparse, weak spatial) .. 64 KB (a full
  /// Bumblebee page, strong spatial).
  u64 hot_region_bytes() const { return hot_region_bytes_; }
  u64 hot_region_count() const { return hot_regions_; }

  /// Snapshot/restore of the generator position (RNG state + scan and
  /// per-region cursors); the Zipf table is rebuilt at construction.
  bool cursor_supported() const override { return true; }
  void save_cursor(snap::Writer& w) const override;
  void load_cursor(snap::Reader& r) override;

 private:
  Addr hot_address();
  Addr scan_address();
  Addr cold_address();

  /// Scatters hot region `i` pseudo-randomly across the footprint.
  Addr region_base(u64 i) const;

  WorkloadProfile profile_;
  Rng rng_;
  u64 footprint_;          ///< bytes, 64 B aligned
  u64 hot_region_bytes_;
  u64 hot_regions_;
  ZipfSampler zipf_;
  Addr scan_cursor_ = 0;
  std::vector<u16> hot_cursor_;  ///< per-region sequential block cursor
};

/// Measured characteristics of a generated stream — used by tests to verify
/// the generator reproduces Table II and the locality axes.
struct StreamStats {
  double mean_inst_gap = 0;      ///< -> MPKI
  double write_fraction = 0;
  u64 unique_pages_4k = 0;       ///< touched footprint at 4 KiB granularity
  double page64k_block_use = 0;  ///< mean fraction of 2 KB blocks used per
                                 ///< touched 64 KB page (spatial locality)
  double top1pct_share = 0;      ///< miss share of the hottest 1% of 4 KB
                                 ///< pages (temporal locality)
};

StreamStats measure_stream(const std::vector<TraceRecord>& recs);

}  // namespace bb::trace
