#include "trace/trace_file.h"

#include "common/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace bb::trace {
namespace {

constexpr u64 kMagic = 0x42424d4d54524331ULL;  // "BBMMTRC1"
constexpr u32 kVersion = 1;

struct FileHeader {
  u64 magic;
  u32 version;
  u32 reserved;
  u64 count;
};

struct PackedRecord {
  u64 inst_gap;
  u64 addr;
  u8 is_write;
  u8 pad[7];
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool save_trace(const std::string& path,
                const std::vector<TraceRecord>& records) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;

  FileHeader h{kMagic, kVersion, 0, records.size()};
  if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1) return false;
  for (const auto& r : records) {
    PackedRecord p{};
    p.inst_gap = r.inst_gap;
    p.addr = r.addr;
    p.is_write = r.type == AccessType::kWrite ? 1 : 0;
    if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1) return false;
  }
  return true;
}

std::vector<TraceRecord> load_trace(const std::string& path, bool* ok) {
  if (ok) *ok = false;
  std::vector<TraceRecord> out;
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return out;

  FileHeader h{};
  if (std::fread(&h, sizeof(h), 1, f.get()) != 1) return out;
  if (h.magic != kMagic || h.version != kVersion) return out;

  out.reserve(static_cast<std::size_t>(h.count));
  for (u64 i = 0; i < h.count; ++i) {
    PackedRecord p{};
    if (std::fread(&p, sizeof(p), 1, f.get()) != 1) {
      out.clear();
      return out;
    }
    out.push_back({p.inst_gap, p.addr,
                   p.is_write ? AccessType::kWrite : AccessType::kRead});
  }
  if (ok) *ok = true;
  return out;
}

void TraceReplayer::save_cursor(snap::Writer& w) const {
  w.put_u64(cursor_);
  w.put_u64(laps_);
}

void TraceReplayer::load_cursor(snap::Reader& r) {
  const u64 cur = r.get_u64();
  if (cur >= records_.size()) {
    throw snap::SnapshotError("replay cursor out of range");
  }
  cursor_ = static_cast<std::size_t>(cur);
  laps_ = r.get_u64();
}

}  // namespace bb::trace
