#include "trace/generator.h"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <map>
#include <set>

#include "common/snapshot.h"

namespace bb::trace {
namespace {

u64 derive_hot_region_bytes(double spatial) {
  // spatial 0 -> 1 KB regions (hot blocks sparse within 64 KB pages),
  // spatial 1 -> 64 KB regions (entire pages hot).
  const int shift = static_cast<int>(spatial * 6.0 + 0.5);
  return u64{1} << (10 + std::clamp(shift, 0, 6));
}

}  // namespace

TraceGenerator::TraceGenerator(const WorkloadProfile& profile, u64 seed)
    : profile_(profile),
      rng_(seed),
      footprint_(std::max<u64>(profile.footprint_bytes() & ~(kLineBytes - 1),
                               64 * KiB)),
      hot_region_bytes_(derive_hot_region_bytes(profile.spatial)),
      hot_regions_(std::max<u64>(
          1, std::min<u64>(static_cast<u64>(profile.hot_fraction *
                                            static_cast<double>(footprint_)),
                           kMaxHotSetBytes) /
                 hot_region_bytes_)),
      zipf_(std::min<u64>(hot_regions_, 1u << 20), profile.zipf_s) {
  hot_cursor_.assign(static_cast<std::size_t>(zipf_.n()), 0);
}

Addr TraceGenerator::region_base(u64 i) const {
  // Hot regions scatter within a bounded arena (a few times the hot-set
  // size), not across the whole footprint: programs keep hot structures in
  // specific allocation ranges, so the number of distinct pages holding
  // hot data stays bounded even for weak-spatial workloads. Collisions
  // merely merge two hot regions.
  const u64 arena_regions =
      std::min(footprint_, 8 * hot_regions_ * hot_region_bytes_) /
      hot_region_bytes_;
  const u64 scattered = (i * 0x9e3779b97f4a7c15ULL) % arena_regions;
  // Offset the arena away from the scan's starting point.
  const u64 arena_base_region =
      (footprint_ / hot_region_bytes_) / 3;
  const u64 total_regions = footprint_ / hot_region_bytes_;
  return ((arena_base_region + scattered) % total_regions) *
         hot_region_bytes_;
}

Addr TraceGenerator::hot_address() {
  const u64 region = zipf_.sample(rng_);
  const Addr base = region_base(region);
  const u64 blocks = hot_region_bytes_ / kLineBytes;
  u64 block;
  if (rng_.next_bool(profile_.spatial)) {
    // Sequential walk within the region.
    u16& cur = hot_cursor_[static_cast<std::size_t>(region)];
    block = cur;
    cur = static_cast<u16>((cur + 1) % blocks);
  } else {
    block = rng_.next_below(blocks);
  }
  return base + block * kLineBytes;
}

Addr TraceGenerator::scan_address() {
  const Addr a = scan_cursor_;
  scan_cursor_ += kLineBytes;
  if (scan_cursor_ >= footprint_) scan_cursor_ = 0;
  return a;
}

Addr TraceGenerator::cold_address() {
  return rng_.next_below(footprint_ / kLineBytes) * kLineBytes;
}

TraceRecord TraceGenerator::next() {
  TraceRecord rec;
  rec.inst_gap = rng_.next_gap(profile_.mean_inst_gap());
  const double u = rng_.next_double();
  if (u < profile_.w_hot) {
    rec.addr = hot_address();
  } else if (u < profile_.w_hot + profile_.w_scan) {
    rec.addr = scan_address();
  } else {
    rec.addr = cold_address();
  }
  rec.type = rng_.next_bool(profile_.write_fraction) ? AccessType::kWrite
                                                     : AccessType::kRead;
  return rec;
}

std::vector<TraceRecord> TraceGenerator::take(u64 n) {
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (u64 i = 0; i < n; ++i) out.push_back(next());
  return out;
}

StreamStats measure_stream(const std::vector<TraceRecord>& recs) {
  StreamStats s;
  if (recs.empty()) return s;

  double gap_sum = 0;
  u64 writes = 0;
  // Ordered maps: these are iterated into floating-point accumulations
  // below, and unordered iteration order would make the sums (and thus the
  // calibration stats) vary across standard-library implementations.
  std::map<Addr, u64> page4k_count;
  std::map<Addr, std::set<u64>> page64k_blocks;
  for (const auto& r : recs) {
    gap_sum += static_cast<double>(r.inst_gap);
    if (r.type == AccessType::kWrite) ++writes;
    ++page4k_count[r.addr / (4 * KiB)];
    page64k_blocks[r.addr / (64 * KiB)].insert((r.addr / (2 * KiB)) % 32);
  }
  s.mean_inst_gap = gap_sum / static_cast<double>(recs.size());
  s.write_fraction =
      static_cast<double>(writes) / static_cast<double>(recs.size());
  s.unique_pages_4k = page4k_count.size();

  double use_sum = 0;
  for (const auto& [_, blocks] : page64k_blocks) {
    use_sum += static_cast<double>(blocks.size()) / 32.0;
  }
  s.page64k_block_use =
      use_sum / static_cast<double>(page64k_blocks.size());

  std::vector<u64> counts;
  counts.reserve(page4k_count.size());
  for (const auto& [_, c] : page4k_count) counts.push_back(c);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, counts.size() / 100);
  u64 top_sum = 0;
  for (std::size_t i = 0; i < top; ++i) top_sum += counts[i];
  s.top1pct_share =
      static_cast<double>(top_sum) / static_cast<double>(recs.size());
  return s;
}

void TraceSource::save_cursor(snap::Writer&) const {
  throw std::invalid_argument("trace source does not support snapshots");
}

void TraceSource::load_cursor(snap::Reader&) {
  throw std::invalid_argument("trace source does not support snapshots");
}

void TraceGenerator::save_cursor(snap::Writer& w) const {
  for (u64 word : rng_.state()) w.put_u64(word);
  w.put_u64(scan_cursor_);
  w.put_u64(hot_cursor_.size());
  for (u16 c : hot_cursor_) w.put_u32(c);
}

void TraceGenerator::load_cursor(snap::Reader& r) {
  std::array<u64, 4> st;
  for (u64& word : st) word = r.get_u64();
  rng_.set_state(st);
  scan_cursor_ = r.get_u64();
  if (r.get_u64() != hot_cursor_.size()) {
    throw snap::SnapshotError("hot-region cursor count mismatch");
  }
  for (u16& c : hot_cursor_) c = static_cast<u16>(r.get_u32());
}

}  // namespace bb::trace
