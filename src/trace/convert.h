// Foreign-trace ingest: parses text memory traces from other simulators
// into native TraceRecords, so recorded production traffic can drive the
// hybrid-memory designs (the gem5 DRAM-cache methodology).
//
// Supported input formats (one request per line; blank lines and lines
// starting with '#' are skipped everywhere):
//
//   gem5       `<tick>[:] <cmd> <addr>` — a packet-trace line: simulator
//              tick, command name (ReadReq / WriteReq family; anything
//              whose first word starts with "Read"/"Write", case-
//              insensitive, plus bare r/w), address (decimal or 0x hex).
//              inst_gap = max(1, round(delta_tick / ticks_per_inst)).
//
//   ramulator  auto-detected per file from the first data line:
//              * DRAM trace:  `<addr> <R|W>` — fixed default_gap between
//                requests (ramulator's memory-trace mode has no timing);
//              * CPU trace:   `<bubbles> <read-addr> [<write-addr>]` —
//                the non-memory instruction count becomes the read's
//                inst_gap; a trailing write address emits a second record
//                with gap 0 (it retires with the same bubble).
//
//   csv        `inst_gap,addr,type` with exactly that header; type is
//              R/W, read/write or 0/1; addr decimal or 0x hex.
//
// Addresses are 64 B line-aligned on ingest (the simulator's request
// granularity) unless ConvertOptions::align_lines is cleared. Unparseable
// lines throw TraceError naming the 1-based line number (exit code 2 via
// the bb::cli contract) — a converter that silently skipped garbage would
// manufacture a trace that was never recorded.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "trace/stream.h"

namespace bb::trace {

enum class ForeignFormat { kGem5, kRamulator, kCsv };

/// Parses "gem5" / "ramulator" / "csv"; throws TraceError otherwise.
ForeignFormat parse_format(const std::string& name);
const char* format_name(ForeignFormat format);

struct ConvertOptions {
  ForeignFormat format = ForeignFormat::kCsv;
  /// gem5 only: simulator ticks per retired instruction (gem5's default
  /// tick is 1 ps, so a 1 IPC core at 1 GHz retires one instruction per
  /// 1000 ticks).
  double ticks_per_inst = 1000.0;
  /// ramulator DRAM traces only: the fixed inst_gap between requests.
  u64 default_gap = 1;
  /// Align ingested addresses down to 64 B cache lines.
  bool align_lines = true;
};

struct ConvertStats {
  u64 lines = 0;    ///< data lines parsed (blank/comment lines excluded)
  u64 records = 0;  ///< records emitted (>= lines for ramulator CPU traces)
  u64 reads = 0;
  u64 writes = 0;
};

/// Parses the foreign text trace on `in`, passing each native record to
/// `emit` in input order. Throws TraceError on the first malformed line.
ConvertStats convert_text_trace(
    std::istream& in, const ConvertOptions& opts,
    const std::function<void(const TraceRecord&)>& emit);

/// File-to-file convenience: text trace at `in_path` captured to a v2
/// binary trace at `out_path`. Throws TraceError on parse errors and
/// std::ios_base::failure on I/O failure.
ConvertStats convert_file(const std::string& in_path,
                          const std::string& out_path,
                          const ConvertOptions& opts,
                          const TraceWriterOptions& writer =
                              TraceWriterOptions{});

}  // namespace bb::trace
