#include "trace/convert.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <vector>

namespace bb::trace {
namespace {

[[noreturn]] void throw_line(u64 line_no, const std::string& what) {
  throw TraceError("trace line " + std::to_string(line_no) + ": " + what);
}

/// Parses a decimal or 0x-hex unsigned value; the whole token must parse.
u64 parse_u64_token(const std::string& tok, u64 line_no, const char* what) {
  if (tok.empty()) throw_line(line_no, std::string("missing ") + what);
  const bool hex = tok.size() > 2 && tok[0] == '0' &&
                   (tok[1] == 'x' || tok[1] == 'X');
  u64 v = 0;
  const std::size_t start = hex ? 2 : 0;
  if (start == tok.size()) {
    throw_line(line_no, std::string("malformed ") + what + ": " + tok);
  }
  for (std::size_t i = start; i < tok.size(); ++i) {
    const char c = tok[i];
    u64 digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<u64>(c - '0');
    } else if (hex && c >= 'a' && c <= 'f') {
      digit = static_cast<u64>(c - 'a') + 10;
    } else if (hex && c >= 'A' && c <= 'F') {
      digit = static_cast<u64>(c - 'A') + 10;
    } else {
      throw_line(line_no, std::string("malformed ") + what + ": " + tok);
    }
    v = v * (hex ? 16 : 10) + digit;
  }
  return v;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Maps a command/type token to a direction, or throws.
AccessType parse_direction(const std::string& tok, u64 line_no) {
  const std::string t = lower(tok);
  if (t == "r" || t == "0" || starts_with(t, "read")) {
    return AccessType::kRead;
  }
  if (t == "w" || t == "1" || starts_with(t, "write")) {
    return AccessType::kWrite;
  }
  throw_line(line_no, "unknown access type/command: " + tok);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

Addr align_addr(Addr a, const ConvertOptions& opts) {
  return opts.align_lines ? a & ~(kLineBytes - 1) : a;
}

/// One parsed line fed through the per-format state machines below.
struct Emitter {
  const ConvertOptions& opts;
  const std::function<void(const TraceRecord&)>& emit;
  ConvertStats stats;

  void record(u64 gap, Addr addr, AccessType type) {
    emit(TraceRecord{gap, align_addr(addr, opts), type});
    stats.records += 1;
    if (type == AccessType::kWrite) {
      stats.writes += 1;
    } else {
      stats.reads += 1;
    }
  }
};

void parse_gem5_line(Emitter& em, const std::vector<std::string>& tok,
                     u64 line_no, bool& have_prev, u64& prev_tick) {
  if (tok.size() < 3) {
    throw_line(line_no, "gem5 line needs <tick> <cmd> <addr>");
  }
  std::string tick_tok = tok[0];
  if (!tick_tok.empty() && tick_tok.back() == ':') tick_tok.pop_back();
  const u64 tick = parse_u64_token(tick_tok, line_no, "tick");
  const AccessType type = parse_direction(tok[1], line_no);
  const Addr addr = parse_u64_token(tok[2], line_no, "address");
  u64 gap = 1;
  if (have_prev && tick > prev_tick) {
    const double insts = std::round(static_cast<double>(tick - prev_tick) /
                                    em.opts.ticks_per_inst);
    gap = insts < 1.0 ? 1 : static_cast<u64>(insts);
  }
  have_prev = true;
  prev_tick = tick;
  em.record(gap, addr, type);
}

/// Ramulator DRAM trace: `<addr> <R|W>`.
void parse_ramulator_dram_line(Emitter& em,
                               const std::vector<std::string>& tok,
                               u64 line_no) {
  if (tok.size() != 2) {
    throw_line(line_no, "ramulator DRAM line needs <addr> <R|W>");
  }
  const Addr addr = parse_u64_token(tok[0], line_no, "address");
  em.record(em.opts.default_gap, addr, parse_direction(tok[1], line_no));
}

/// Ramulator CPU trace: `<bubbles> <read-addr> [<write-addr>]`.
void parse_ramulator_cpu_line(Emitter& em,
                              const std::vector<std::string>& tok,
                              u64 line_no) {
  if (tok.size() != 2 && tok.size() != 3) {
    throw_line(line_no,
               "ramulator CPU line needs <bubbles> <read-addr> [<write-addr>]");
  }
  const u64 bubbles = parse_u64_token(tok[0], line_no, "bubble count");
  const Addr read_addr = parse_u64_token(tok[1], line_no, "read address");
  em.record(std::max<u64>(1, bubbles), read_addr, AccessType::kRead);
  if (tok.size() == 3) {
    const Addr write_addr = parse_u64_token(tok[2], line_no, "write address");
    em.record(0, write_addr, AccessType::kWrite);
  }
}

/// True when the tokens look like a ramulator DRAM-trace line (second
/// token is a direction letter rather than an address).
bool looks_like_dram_trace(const std::vector<std::string>& tok) {
  if (tok.size() != 2) return false;
  const std::string t = lower(tok[1]);
  return t == "r" || t == "w" || starts_with(t, "read") ||
         starts_with(t, "write");
}

void parse_csv_line(Emitter& em, const std::string& line, u64 line_no,
                    bool& saw_header) {
  const std::vector<std::string> f = split_commas(line);
  if (!saw_header) {
    if (f.size() != 3 || lower(f[0]) != "inst_gap" || lower(f[1]) != "addr" ||
        lower(f[2]) != "type") {
      throw_line(line_no, "CSV trace must start with header inst_gap,addr,type");
    }
    saw_header = true;
    return;
  }
  if (f.size() != 3) {
    throw_line(line_no, "CSV line needs inst_gap,addr,type");
  }
  const u64 gap = parse_u64_token(f[0], line_no, "inst_gap");
  const Addr addr = parse_u64_token(f[1], line_no, "address");
  em.record(gap, addr, parse_direction(f[2], line_no));
}

}  // namespace

ForeignFormat parse_format(const std::string& name) {
  if (name == "gem5") return ForeignFormat::kGem5;
  if (name == "ramulator") return ForeignFormat::kRamulator;
  if (name == "csv") return ForeignFormat::kCsv;
  throw TraceError("unknown trace format: " + name +
                   " (expected gem5, ramulator or csv)");
}

const char* format_name(ForeignFormat format) {
  switch (format) {
    case ForeignFormat::kGem5: return "gem5";
    case ForeignFormat::kRamulator: return "ramulator";
    case ForeignFormat::kCsv: return "csv";
  }
  return "unknown";
}

ConvertStats convert_text_trace(
    std::istream& in, const ConvertOptions& opts,
    const std::function<void(const TraceRecord&)>& emit) {
  Emitter em{opts, emit, ConvertStats{}};
  std::string line;
  u64 line_no = 0;
  bool have_prev_tick = false;
  u64 prev_tick = 0;
  bool saw_csv_header = false;
  bool ramulator_is_dram = false;
  bool ramulator_detected = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;

    if (opts.format == ForeignFormat::kCsv) {
      const bool was_header = !saw_csv_header;
      parse_csv_line(em, line, line_no, saw_csv_header);
      if (!was_header) em.stats.lines += 1;
      continue;
    }
    const std::vector<std::string> tok = split_ws(line);
    em.stats.lines += 1;
    if (opts.format == ForeignFormat::kGem5) {
      parse_gem5_line(em, tok, line_no, have_prev_tick, prev_tick);
    } else {
      if (!ramulator_detected) {
        ramulator_is_dram = looks_like_dram_trace(tok);
        ramulator_detected = true;
      }
      if (ramulator_is_dram) {
        parse_ramulator_dram_line(em, tok, line_no);
      } else {
        parse_ramulator_cpu_line(em, tok, line_no);
      }
    }
  }
  if (opts.format == ForeignFormat::kCsv && !saw_csv_header) {
    throw TraceError("CSV trace is empty: missing inst_gap,addr,type header");
  }
  if (em.stats.records == 0) {
    throw TraceError("foreign trace has no records: nothing to convert");
  }
  return em.stats;
}

ConvertStats convert_file(const std::string& in_path,
                          const std::string& out_path,
                          const ConvertOptions& opts,
                          const TraceWriterOptions& writer) {
  std::ifstream in(in_path);
  if (!in) {
    throw std::ios_base::failure("cannot open input trace: " + in_path);
  }
  TraceCaptureSink sink;
  sink.open(out_path, writer);
  const ConvertStats stats = convert_text_trace(
      in, opts, [&sink](const TraceRecord& r) { sink.append(r); });
  if (!sink.close()) {
    throw std::ios_base::failure("cannot write output trace: " + out_path);
  }
  return stats;
}

}  // namespace bb::trace
