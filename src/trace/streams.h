// Additional access-stream building blocks beyond the SPEC-profile mixture:
//
//   * PointerChaseStream — walks a random-permutation cycle over a working
//     set (the classic latency-bound, prefetch-hostile pattern of mcf-like
//     pointer code);
//   * StridedStream — constant-stride sweeps (column-major matrix walks,
//     strided stencils) with configurable stride and wrap;
//   * PhasedGenerator — concatenates workload phases, each its own profile
//     and length, to study how controllers adapt to locality changes
//     (the adjustable cHBM:mHBM ratio is exactly about this).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/generator.h"

namespace bb::trace {

/// Uniform-random permutation cycle: every element of the working set is
/// visited exactly once per lap, in a data-dependent random order.
class PointerChaseStream {
 public:
  /// `working_set_bytes` is rounded down to whole 64 B lines (at least 2).
  PointerChaseStream(u64 working_set_bytes, u64 seed, Addr base = 0);

  /// Next address in the chase.
  Addr next();

  u64 lines() const { return static_cast<u64>(next_line_.size()); }

 private:
  Addr base_;
  std::vector<u32> next_line_;  ///< permutation: line -> successor line
  u32 cursor_ = 0;
};

/// Constant-stride sweep over a region.
class StridedStream {
 public:
  StridedStream(u64 region_bytes, u64 stride_bytes, Addr base = 0)
      : base_(base),
        region_(region_bytes),
        stride_(stride_bytes == 0 ? 64 : stride_bytes) {}

  Addr next() {
    const Addr a = base_ + cursor_;
    cursor_ += stride_;
    if (cursor_ >= region_) cursor_ %= stride_;  // rotate starting lane
    return a;
  }

 private:
  Addr base_;
  u64 region_;
  u64 stride_;
  u64 cursor_ = 0;
};

/// A workload phase: a profile and how many misses it lasts.
struct Phase {
  WorkloadProfile profile;
  u64 misses = 0;
};

/// Concatenates phases; each phase runs its own TraceGenerator (seeded
/// deterministically from the top-level seed and the phase index).
class PhasedGenerator {
 public:
  PhasedGenerator(std::vector<Phase> phases, u64 seed);

  TraceRecord next();

  /// Index of the phase the NEXT record will come from.
  std::size_t current_phase() const { return phase_; }
  bool exhausted() const { return phase_ >= phases_.size(); }

 private:
  void advance_phase();

  std::vector<Phase> phases_;
  u64 seed_;
  std::size_t phase_ = 0;
  u64 remaining_ = 0;
  std::unique_ptr<TraceGenerator> gen_;
};

}  // namespace bb::trace
