// Binary trace persistence: record real or synthetic miss streams once and
// replay them across designs or tool versions. The format is a fixed
// little-endian header (magic, version, record count) followed by packed
// records, so traces are portable and mmap-friendly.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "trace/generator.h"

namespace bb::trace {

/// Writes `records` to `path`. Returns false on I/O failure.
bool save_trace(const std::string& path,
                const std::vector<TraceRecord>& records);

/// Reads a trace written by save_trace. Returns an empty vector on failure
/// or an empty file; sets `*ok` (if given) accordingly.
std::vector<TraceRecord> load_trace(const std::string& path,
                                    bool* ok = nullptr);

/// Replays a loaded trace as a generator; loops when it reaches the end
/// (so arbitrarily long simulations can run on finite traces). Empty
/// traces are rejected at construction: fabricating records for them
/// would silently simulate traffic that was never recorded (the cli_main
/// contract maps the throw to exit code 2).
class TraceReplayer : public TraceSource {
 public:
  explicit TraceReplayer(std::vector<TraceRecord> records)
      : records_(std::move(records)) {
    if (records_.empty()) {
      throw std::invalid_argument("empty trace: nothing to replay");
    }
  }

  TraceRecord next() override {
    const TraceRecord r = records_[cursor_];
    cursor_ = (cursor_ + 1) % records_.size();
    if (cursor_ == 0) ++laps_;
    return r;
  }

  std::size_t size() const { return records_.size(); }
  u64 laps() const { return laps_; }

  /// Snapshot/restore of the replay position.
  bool cursor_supported() const override { return true; }
  void save_cursor(snap::Writer& w) const override;
  void load_cursor(snap::Reader& r) override;

 private:
  std::vector<TraceRecord> records_;
  std::size_t cursor_ = 0;
  u64 laps_ = 0;
};

}  // namespace bb::trace
