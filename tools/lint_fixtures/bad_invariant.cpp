// analyze-expect: invariant-coverage=1
//
// Positive fixture for the invariant-coverage rule: a BumblebeeController
// method that rewrites PRT/BLE/hot-table remap state and returns without a
// verify_set / check_set_invariants call, so a corrupted set would go
// undetected. Never compiled.

void BumblebeeController::leaky_remap(SetState& st, u32 set, u32 page,
                                      u32 k) {
  st.new_ple[page] = static_cast<std::int32_t>(k);
  st.occup[k] = true;
  st.ble[k].mode = Ble::Mode::kCache;
  st.hot.move_dram_to_hbm(page);
}  // finding: no invariant check after the last mutation
