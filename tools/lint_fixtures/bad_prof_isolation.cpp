// analyze-expect: prof-isolation=3
//
// Positive fixture for the prof-isolation rule: wall-clock primitives
// outside the sanctioned src/common/prof.cpp site, and a profiler value
// assigned to a RunResult simulated field. Never compiled.
#include <chrono>

// A local RunResult definition exercises the member parser (the real rule
// run picks the struct up from src/sim/system.h the same way).
struct RunResult {
  double ipc = 0;
  unsigned long long misses = 0;
};

namespace prof {
double elapsed_seconds();
}

// Finding 1: steady_clock outside the sanctioned site.
long bad_direct_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// Finding 2: clock_gettime outside the sanctioned site.
long bad_clock_gettime() {
  struct timespec ts;
  clock_gettime(0, &ts);
  return ts.tv_sec;
}

// Finding 3: host measurement flows into a simulated field.
void bad_prof_into_result(RunResult& r) {
  r.ipc = prof::elapsed_seconds();
}
