// analyze-expect: stats-reset=0
//
// Negative fixture for the stats-reset rule: every stat member is reset,
// a '*this = T{}' wholesale reset counts as resetting everything, and a
// justified suppression marker covers deterministic state. Never compiled.
#pragma once

struct GaugeStats {
  unsigned long samples = 0;
};

class CleanWidget {
 public:
  void reset_stats() {
    stats_ = GaugeStats{};
    ticks_count_ = 0;
  }
  void record() { ++ticks_count_; }
  void step() { ++cursor_; }

 private:
  GaugeStats stats_;
  unsigned long ticks_count_ = 0;
  // bb-analyze-ok(stats-reset): rotation cursor over work items —
  // deterministic state that must survive stat resets, not a statistic.
  unsigned long cursor_ = 0;
};

class WholesaleReset {
 public:
  void reset() { *this = WholesaleReset{}; }
  void record() { ++events_count_; }

 private:
  GaugeStats stats_;
  unsigned long events_count_ = 0;
};
