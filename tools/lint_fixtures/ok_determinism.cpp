// analyze-expect: determinism=0
//
// Negative fixture for the determinism rule: deterministic idioms and
// properly justified suppressions that must all pass. Never compiled.
#include <chrono>
#include <map>
#include <unordered_map>

// Ordered container iteration is reproducible; no marker needed.
double ok_ordered_iteration(const std::map<int, double>& m) {
  double s = 0;
  for (const auto& [k, v] : m) s += v;
  return s;
}

// steady_clock feeds stderr progress reporting only, which the wall-clock
// pattern deliberately does not match.
long ok_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// bb-analyze-ok(determinism): pure keyed lookup cache, never iterated into
// results; the new-style marker must suppress exactly like the legacy one.
std::unordered_map<int, int> ok_new_marker_form;

// determinism-ok: legacy marker form, still honored by the engine.
std::unordered_map<int, int> ok_legacy_marker_form;
