// analyze-expect: determinism=0, prof-isolation=1
//
// Negative fixture for the determinism rule: deterministic idioms and
// properly justified suppressions that must all pass. Never compiled.
#include <chrono>
#include <map>
#include <unordered_map>

// Ordered container iteration is reproducible; no marker needed.
double ok_ordered_iteration(const std::map<int, double>& m) {
  double s = 0;
  for (const auto& [k, v] : m) s += v;
  return s;
}

// steady_clock is outside the determinism rule's wall-clock pattern (it
// cannot feed simulated state by construction) — but the stricter
// prof-isolation rule does flag it outside src/common/prof.cpp, hence the
// prof-isolation=1 expectation above.
long ok_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// bb-analyze-ok(determinism): pure keyed lookup cache, never iterated into
// results; the new-style marker must suppress exactly like the legacy one.
std::unordered_map<int, int> ok_new_marker_form;

// determinism-ok: legacy marker form, still honored by the engine.
std::unordered_map<int, int> ok_legacy_marker_form;

void ok_sorted_directory_listing() {
  std::vector<std::string> names;
  // bb-analyze-ok(determinism): entries are collected and sorted below, so
  // the unspecified listing order never reaches any output.
  for (const auto& e : std::filesystem::directory_iterator(".")) {
    names.push_back(e.path().string());
  }
  std::sort(names.begin(), names.end());
}
