// analyze-expect: determinism=8
//
// Positive fixture for the determinism rule: every banned pattern in one
// file, plus allowlisted uses that must NOT be flagged. The CI analysis job
// runs bb_analyze --self-test against this file and fails the build if the
// rule does not fire. This file is never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <unordered_set>

int bad_c_rand() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // 2 findings: srand + time
  return rand();                                     // finding: rand
}

unsigned bad_random_device() {
  std::random_device rd;  // finding: random-device
  return rd();
}

long bad_wall_clock_seed() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // finding
}

double bad_unordered_iteration(const std::unordered_map<int, double>& m) {
  // finding: iteration order feeds a floating-point sum
  double s = 0;
  for (const auto& [k, v] : m) s += v;
  return s;
}

void bad_directory_listing() {
  // finding: listing order depends on the filesystem, so any output built
  // from it (e.g. batch trace conversion) differs across hosts
  for (const auto& e : std::filesystem::directory_iterator(".")) {
    (void)e;
  }
}

const char* bad_temp_path() {
  return tmpnam(nullptr);  // finding: run-dependent scratch path
}

// ---- allowlisted uses: the lint must accept these -------------------------

// determinism-ok: pure keyed lookup, never iterated into results
int ok_keyed_lookup(const std::unordered_map<int, int>& m, int k) {
  auto it = m.find(k);  // lookup only; the map type above carries the marker
  return it == m.end() ? 0 : it->second;
}

bool ok_membership(const std::unordered_set<int>& s, int k) {  // determinism-ok: membership test only
  return s.count(k) != 0;
}

// determinism-ok: keyed insert/find only (never iterated), so the
// implementation-defined bucket order cannot reach stats or output; the
// marker is two comment lines above the use and must still apply.
std::unordered_map<int, int> ok_multiline_justification;
