// analyze-expect: snapshot-schema=0
//
// Negative fixture for the snapshot-schema rule: one inline save/load pair
// with a size-prefixed loop, and one out-of-line save_state/load_state pair
// with a nested sub-object call on each side. Field order, field types, and
// nested call counts all agree, so the rule stays silent. Never compiled.
#include <cstdint>
#include <string>
#include <vector>

namespace snap {
class Writer;
class Reader;
}  // namespace snap

class RowCursor {
 public:
  void save(snap::Writer& w) const {
    w.put_u64(rows_.size());
    for (const Row& row : rows_) {
      w.put_u32(row.index);
      w.put_u8(row.live ? 1 : 0);
    }
    w.put_str(label_);
  }

  void load(snap::Reader& r) {
    rows_.resize(r.get_u64());
    for (Row& row : rows_) {
      row.index = r.get_u32();
      row.live = r.get_u8() != 0;
    }
    label_ = r.get_str();
  }

 private:
  struct Row {
    std::uint32_t index = 0;
    bool live = false;
  };
  std::vector<Row> rows_;
  std::string label_;
};

class DeviceState {
 public:
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

 private:
  RowCursor cursor_;
  std::uint64_t touches_ = 0;
};

void DeviceState::save_state(snap::Writer& w) const {
  w.put_u64(touches_);
  cursor_.save(w);
}

void DeviceState::load_state(snap::Reader& r) {
  touches_ = r.get_u64();
  cursor_.load(r);
}
