// analyze-expect: schema=0
//
// Negative fixture for the schema rule: JSON keys, CSV columns, gates, and
// the journal parser all agree; probe names are snake_case and unique
// (runtime-prefixed names are distinct from bare literals). Never compiled.
#include <string>

std::string result_to_json(const RunResult& r, bool include_fault,
                           bool include_queue) {
  std::string out = "{";
  out += "\"design\":\"" + json_escape(r.design) + "\",";
  out += "\"ipc\":" + json_double(r.ipc) + ',';
  if (include_fault) {
    out += "\"ce_count\":" + std::to_string(r.ce_count) + ',';
  }
  if (include_queue) {
    out += "\"write_drain_count\":" + std::to_string(r.drains) + ',';
  }
  out += "\"hbm_class_bytes\":";
  append_class_object(out, r.hbm_class_bytes);  // nested: exempt from CSV
  out += '}';
  return out;
}

bool parse_run_result(const JsonValue& v, RunResult& r) {
  r.design = v.get_string("design");
  r.ipc = v.get_number("ipc");
  r.ce_count = v.get_number("ce_count");
  r.drains = v.get_number("write_drain_count");
  load_classes(v, "hbm_class_bytes", r.hbm_class_bytes);
  return true;
}

void ExperimentRunner::write_csv(std::ostream& os) const {
  const bool fault = cfg_.fault.enabled();
  const bool queue = queue_configured();
  std::vector<std::string> header = {"design", "ipc"};
  if (fault) {
    header.insert(header.end(), {"ce_count"});
  }
  if (queue) {
    header.insert(header.end(), {"write_drain_count"});
  }
  TextTable t(header);
  t.print_csv(os);
}

void ExperimentRunner::write_json(std::ostream& os) const {
  const bool fault = cfg_.fault.enabled();
  const bool queue = queue_configured();
  os << result_to_json(results_[0], fault, queue);
}

void Device::register_metrics(MetricRegistry& reg, std::string prefix) const {
  reg.add_counter("row_hits", [this] { return hits_; });
  // A runtime prefix makes this distinct from the bare literal above.
  reg.add_counter(prefix + "row_hits", [this] { return hits_; });
  reg.add_gauge("occupancy", [this] { return occ_; });
}
