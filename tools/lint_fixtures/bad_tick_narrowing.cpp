// analyze-expect: tick-narrowing=2
//
// Positive fixture for the tick-narrowing rule: ticks are uint64
// picoseconds, so 32-bit or signed narrowing on tick/latency/ns values
// overflows after ~4.3 ms of simulated time. Never compiled.

unsigned bad_cast(unsigned long long latency_ticks) {
  return static_cast<unsigned>(latency_ticks);  // finding: narrowing cast
}

unsigned long long bad_decl(unsigned long long total_ns) {
  int window_ns = total_ns / 2;  // finding: narrow-typed tick declaration
  return static_cast<unsigned long long>(window_ns);
}
