// analyze-expect: tick-narrowing=0
//
// Negative fixture for the tick-narrowing rule: wide tick arithmetic,
// widening casts, narrow types on non-tick quantities, and one justified
// suppression. Never compiled.

unsigned long long ok_wide_math(unsigned long long latency_ticks) {
  unsigned long long doubled = latency_ticks * 2;  // stays 64-bit
  return doubled;
}

double ok_widening_cast(unsigned long long total_ns) {
  return static_cast<double>(total_ns);  // widening, not narrowing
}

unsigned ok_non_tick(unsigned long long ways) {
  unsigned w = ways & 0xffu;  // narrow, but not a tick quantity
  return static_cast<unsigned>(ways % 8);
}

unsigned ok_suppressed(unsigned long long latency_ticks) {
  // bb-analyze-ok(tick-narrowing): histogram bucket index, bounded by the
  // bucket count (64), not a time value.
  return static_cast<unsigned>(bucket_of(latency_ticks));
}
