// analyze-expect: prof-isolation=0
//
// Negative fixture for the prof-isolation rule: profiler values staying on
// the host side, and simulated fields fed from simulated state only — all
// of which must pass. Never compiled.

struct RunResult {
  double ipc = 0;
  unsigned long long misses = 0;
};

namespace prof {
struct HostReport {
  double wall_seconds = 0;
  double requests_per_sec = 0;
};
double elapsed_seconds();
unsigned long long monotonic_ns();
}  // namespace prof

// Prof values may flow into host-side containers freely.
prof::HostReport ok_host_side_flow() {
  prof::HostReport host;
  host.wall_seconds = prof::elapsed_seconds();
  host.requests_per_sec = 42.0 / host.wall_seconds;
  return host;
}

// Simulated fields fed from simulated state are untouched by the rule,
// even in a function that also talks to the profiler on other lines.
void ok_simulated_assignment(RunResult& r, unsigned long long sim_misses) {
  const unsigned long long t0 = prof::monotonic_ns();
  r.misses = sim_misses;
  r.ipc = static_cast<double>(sim_misses) / 2.0;
  (void)t0;
}

// Reading a simulated field into a host-side variable is the allowed
// direction (requests-per-second needs the request count).
double ok_sim_to_host(const RunResult& r) {
  return static_cast<double>(r.misses) / prof::elapsed_seconds();
}
