// analyze-expect: snapshot-schema=4
//
// Positive fixture for the snapshot-schema rule, one defect per class:
// (1) SkewedTypes writes a u64 that the load reads back as a u32, (2)
// ShortLoad writes three fields but reads only two, (3) OneSided defines a
// save_cursor with no load_cursor anywhere, and (4) ForgottenChild
// serializes a sub-object on the save side only. Each skew silently
// corrupts every field deserialized after it. Never compiled.
#include <cstdint>

namespace snap {
class Writer;
class Reader;
}  // namespace snap

class SkewedTypes {
 public:
  void save(snap::Writer& w) const { w.put_u64(epoch_); }
  void load(snap::Reader& r) { epoch_ = r.get_u32(); }

 private:
  std::uint64_t epoch_ = 0;
};

class ShortLoad {
 public:
  void save_state(snap::Writer& w) const {
    w.put_u32(head_);
    w.put_u8(open_ ? 1 : 0);
    w.put_u64(mass_);
  }
  void load_state(snap::Reader& r) {
    head_ = r.get_u32();
    open_ = r.get_u8() != 0;
  }

 private:
  std::uint32_t head_ = 0;
  bool open_ = false;
  std::uint64_t mass_ = 0;
};

class OneSided {
 public:
  void save_cursor(snap::Writer& w) const { w.put_u64(pos_); }

 private:
  std::uint64_t pos_ = 0;
};

class ForgottenChild {
 public:
  void save(snap::Writer& w) const {
    w.put_u64(epoch_);
    child_.save(w);
  }
  void load(snap::Reader& r) { epoch_ = r.get_u64(); }

 private:
  SkewedTypes child_;
  std::uint64_t epoch_ = 0;
};
