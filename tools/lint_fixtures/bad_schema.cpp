// analyze-expect: schema=3
//
// Positive fixture for the schema rule, shaped like src/sim/experiment.cpp:
// (1) result_to_json emits a key write_csv's header lacks, (2) the 'fault'
// column gate is computed differently in write_csv and write_json, and
// (3) parse_run_result never reads the extra key, so journal resume would
// silently zero it. Never compiled.
#include <string>

std::string result_to_json(const RunResult& r, bool include_fault,
                           bool include_queue) {
  std::string out = "{";
  out += "\"design\":\"" + json_escape(r.design) + "\",";
  out += "\"ipc\":" + json_double(r.ipc) + ',';
  out += "\"bonus_metric\":" + json_double(r.bonus) + ',';  // CSV lacks this
  if (include_fault) {
    out += "\"ce_count\":" + std::to_string(r.ce_count) + ',';
  }
  out += '}';
  return out;
}

bool parse_run_result(const JsonValue& v, RunResult& r) {
  r.design = v.get_string("design");
  r.ipc = v.get_number("ipc");
  r.ce_count = v.get_number("ce_count");
  return true;  // never reads bonus_metric
}

void ExperimentRunner::write_csv(std::ostream& os) const {
  const bool fault = cfg_.fault.enabled();
  std::vector<std::string> header = {"design", "ipc"};
  if (fault) {
    header.insert(header.end(), {"ce_count"});
  }
  TextTable t(header);
  t.print_csv(os);
}

void ExperimentRunner::write_json(std::ostream& os) const {
  const bool fault = cfg_.fault.enabled() || legacy_mode_;  // gate drift
  os << result_to_json(results_[0], fault, false);
}
