// analyze-expect: stats-reset=3
//
// Positive fixture for the stats-reset rule: a class whose reset_stats()
// forgets a *Stats member and a raw counter, plus a derived class that
// inherits reset_stats() without overriding it. Never compiled. This is
// also the file the tools.bb_analyze_detects_unreset_counter ctest runs
// the analyzer against, expecting a nonzero exit.
#pragma once

struct WidgetStats {
  unsigned long hits = 0;
};

class LeakyWidget {
 public:
  void reset_stats() { total_ = 0; }  // forgets stats_ and hits_count_
  void record() {
    ++hits_count_;
    stats_.hits += 1;
  }

 private:
  WidgetStats stats_;             // finding: stat-bearing member not reset
  unsigned long hits_count_ = 0;  // finding: raw counter not reset
  unsigned long total_ = 0;       // reset; must not be flagged
};

class DerivedLeak : public LeakyWidget {
 public:
  void bump() { ++derived_count_; }

 private:
  unsigned long derived_count_ = 0;  // finding: inherited reset, no override
};
