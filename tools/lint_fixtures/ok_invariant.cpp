// analyze-expect: invariant-coverage=0
//
// Negative fixture for the invariant-coverage rule: remap mutations are
// followed by a verify_set call after the last mutation, and read-only
// methods need no check. Never compiled.

void BumblebeeController::clean_remap(SetState& st, u32 set, u32 page,
                                      u32 k) {
  st.new_ple[page] = static_cast<std::int32_t>(k);
  st.occup[k] = true;
  st.hot.move_dram_to_hbm(page);
  verify_set(st, set, "clean_remap");
}

u32 BumblebeeController::read_only_scan(const SetState& st) const {
  u32 occupied = 0;
  for (bool o : st.occup) {
    if (o) ++occupied;
  }
  return occupied;
}
