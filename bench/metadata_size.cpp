// Section IV-B reproduction: metadata storage comparison.
//
// Bumblebee's evaluated configuration needs 334 KB of SRAM metadata
// (110 KB PRT + 136 KB BLE array + 88 KB hotness tracker), 1-2 orders of
// magnitude below prior designs whose metadata cannot fit on chip. This
// harness prints our computed budget for every Figure 6 configuration and
// the SRAM-equivalent metadata of each baseline design.
#include <iostream>

#include "baselines/factory.h"
#include "bumblebee/config.h"
#include "common/cli.h"
#include "common/table.h"
#include "mem/dram_device.h"

using namespace bb;

namespace {

int run(const Flags&) {
  std::cout << "Bumblebee metadata budget by configuration "
               "(paper: 334 KB total at 2-64)\n";
  TextTable bb_table({"block-page (KB)", "PRT", "BLE array", "hotness",
                      "total", "fits 512 KB SRAM"});
  for (const auto& [blk, page] : {std::pair<u64, u64>{1, 64},
                                  {1, 96},
                                  {1, 128},
                                  {2, 64},
                                  {2, 96},
                                  {2, 128},
                                  {4, 64},
                                  {4, 96},
                                  {4, 128}}) {
    bumblebee::BumblebeeConfig cfg;
    cfg.block_bytes = blk * KiB;
    cfg.page_bytes = page * KiB;
    const auto geo = bumblebee::Geometry::make(cfg, 1 * GiB, 10 * GiB);
    const auto b = bumblebee::metadata_budget(cfg, geo);
    bb_table.add_row(
        {std::to_string(blk) + "-" + std::to_string(page),
         fmt_bytes(static_cast<double>(b.prt_bytes)),
         fmt_bytes(static_cast<double>(b.ble_bytes)),
         fmt_bytes(static_cast<double>(b.hotness_bytes)),
         fmt_bytes(static_cast<double>(b.total())),
         b.total() <= 512 * KiB ? "yes" : "NO"});
  }
  bb_table.print(std::cout);

  std::cout << "\nSRAM-equivalent metadata of each design (1 GB HBM + 10 GB "
               "DRAM):\n";
  mem::DramDevice hbm(mem::DramTimingParams::hbm2_1gb());
  mem::DramDevice dram(mem::DramTimingParams::ddr4_3200_10gb());
  TextTable cmp({"design", "metadata", "vs Bumblebee"});
  bumblebee::BumblebeeConfig ref_cfg;
  const auto ref = bumblebee::metadata_budget(
      ref_cfg, bumblebee::Geometry::make(ref_cfg, 1 * GiB, 10 * GiB));
  for (const char* name :
       {"Bumblebee", "Banshee", "AC", "UC", "Chameleon", "Hybrid2"}) {
    const auto design = baselines::make_design(name, hbm, dram);
    u64 bytes = design->metadata_sram_bytes();
    std::string note;
    if (std::string(name) == "AC" || std::string(name) == "UC") {
      note = " (tags embedded in HBM)";
    }
    cmp.add_row({name, fmt_bytes(static_cast<double>(bytes)) + note,
                 bytes ? fmt_double(static_cast<double>(bytes) /
                                        static_cast<double>(ref.total()),
                                    1) + "x"
                       : "-"});
  }
  cmp.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "metadata_size", run);
}
