// Availability study: how gracefully does each design degrade as memory
// faults escalate? Sweeps the "mixed" fault profile (transients + stuck
// rows + dead banks) across per-access rates from fault-free to 1e-3 and
// reports, per (design, workload, rate):
//
//   * IPC, and IPC relative to the design's own fault-free run,
//   * CE / UE counts and unrecovered-read data losses,
//   * frames retired and sets degraded (Bumblebee's map-out machinery),
//   * availability = fraction of read requests served without data loss.
//
// DRAM-only has no redundant copy, so every unrecovered read is a loss;
// Bumblebee re-fetches clean cHBM blocks from their off-chip home and
// retires the faulty frame, trading IPC for data survival.
//
// Flags: --jobs N (worker threads, default = all hardware threads).
#include <iostream>
#include <map>
#include <utility>

#include "common/cli.h"
#include "common/flags.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

int run(const Flags& flags) {
  const std::vector<std::string> designs = {"DRAM-only", "Bumblebee",
                                            "Banshee"};
  const std::vector<std::string> workload_names = {"mcf", "lbm"};
  std::vector<trace::WorkloadProfile> workloads;
  for (const auto& name : workload_names) {
    workloads.push_back(trace::WorkloadProfile::by_name(name));
  }

  sim::RunMatrixOptions opts;
  opts.jobs = static_cast<unsigned>(flags.get_u64("jobs", 0));
  opts.progress = true;
  opts.target_misses = sim::env_u64("BB_TARGET_MISSES", 60'000);
  opts.min_instructions = 20'000'000;

  std::cout << "Graceful degradation under the mixed fault profile\n";
  TextTable table({"rate", "design", "workload", "IPC", "vs clean", "CE",
                   "UE", "data loss", "retired", "degraded",
                   "availability"});

  // Fault-free IPC per (design, workload), from the rate-0 matrix.
  std::map<std::pair<std::string, std::string>, double> clean_ipc;

  for (const double rate : {0.0, 1e-5, 1e-4, 1e-3}) {
    sim::SystemConfig cfg;
    cfg.warmup_ratio =
        static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 200)) / 100.0;
    if (rate > 0) cfg.fault = fault::FaultConfig::profile("mixed", rate, 1);

    sim::ExperimentRunner runner(cfg);
    runner.run_matrix(designs, workloads, opts);

    for (const auto& r : runner.results()) {
      const auto key = std::make_pair(r.design, r.workload);
      if (rate == 0.0) clean_ipc[key] = r.ipc;
      const double base = clean_ipc.count(key) ? clean_ipc[key] : 0.0;
      // Reads that completed with intact data, over all requests; writes
      // never lose data (they overwrite the faulty word).
      const u64 requests = r.misses ? r.misses : 1;
      const double availability =
          1.0 - static_cast<double>(r.due_data_loss) /
                    static_cast<double>(requests);
      table.add_row({rate > 0 ? fmt_double(rate, 6) : "0", r.design,
                     r.workload, fmt_double(r.ipc, 3),
                     base > 0 ? fmt_double(r.ipc / base, 3) + "x" : "-",
                     std::to_string(r.ce_count), std::to_string(r.ue_count),
                     std::to_string(r.due_data_loss),
                     std::to_string(r.retired_frames),
                     std::to_string(r.degraded_sets),
                     fmt_percent(availability, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery run completes: Bumblebee retires faulty HBM frames\n"
               "(flushing dirty data through the normal eviction path) and\n"
               "falls back to off-chip DRAM once a set degrades, so rising\n"
               "fault rates cost IPC but not forward progress.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "fault_sweep", run);
}
