// Table II reproduction: benchmark characteristics of the synthetic
// SPEC CPU2017 profiles — target vs generated MPKI, footprint, and the
// measured locality axes that drive Figure 1's taxonomy.
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "sim/system.h"
#include "trace/generator.h"

using namespace bb;

namespace {

int run(const Flags&) {
  const u64 sample = sim::env_u64("BB_TARGET_MISSES", 400'000);

  std::cout << "Table II: benchmark characteristics (synthetic profiles)\n";
  TextTable table({"benchmark", "class", "MPKI (paper)", "MPKI (gen)",
                   "footprint GB (paper)", "64K-page block use",
                   "top-1% page share"});
  for (const auto& w : trace::WorkloadProfile::spec2017()) {
    trace::TraceGenerator gen(w, 11);
    const auto recs = gen.take(sample);
    const auto s = trace::measure_stream(recs);
    table.add_row({w.name, to_string(w.mpki_class), fmt_double(w.mpki, 1),
                   fmt_double(1000.0 / s.mean_inst_gap, 1),
                   fmt_double(w.footprint_gb, 1),
                   fmt_percent(s.page64k_block_use, 1),
                   fmt_percent(s.top1pct_share, 1)});
  }
  table.print(std::cout);
  std::cout << "\n'64K-page block use' approximates spatial locality (share "
               "of a touched 64 KB page's 2 KB blocks that get used); "
               "'top-1% page share' approximates temporal locality (miss "
               "share of the hottest 1% of 4 KB pages).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "table2_benchmarks", run);
}
