// Figure 7 reproduction: performance-factor breakdown.
//
// Geomean speedup (normalized IPC vs the DRAM-only baseline) across all
// Table II benchmarks for: C-Only, M-Only, 25%-C, 50%-C, No-Multi, Meta-H,
// Alloc-D, Alloc-H, No-HMF and full Bumblebee.
//
// Paper reference values: 1.33, 1.37, 1.54, 1.68, 1.84, 1.75, 1.52, 1.54,
// 1.86, 2.00 (same order as above, reading Meta-H = 1.75).
#include <iostream>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/system.h"

using namespace bb;

namespace {

int run(const Flags&) {
  const u64 target_misses = sim::env_u64("BB_TARGET_MISSES", 80'000);
  sim::SystemConfig sys_cfg;
  // Steady-state measurement: warm up several multiples of the measured
  // window (BB_WARMUP_PCT, percent of the measured instructions).
  sys_cfg.warmup_ratio =
      static_cast<double>(sim::env_u64("BB_WARMUP_PCT", 300)) / 100.0;
  sim::System system(sys_cfg);

  const auto& designs = baselines::figure7_designs();
  const std::map<std::string, double> paper = {
      {"C-Only", 1.33}, {"M-Only", 1.37},  {"25%-C", 1.54},
      {"50%-C", 1.68},  {"No-Multi", 1.84}, {"Meta-H", 1.75},
      {"Alloc-D", 1.52}, {"Alloc-H", 1.54}, {"No-HMF", 1.86},
      {"Bumblebee", 2.00}};

  std::map<std::string, std::vector<double>> speedups;
  std::cerr << "fig7: simulating " << trace::WorkloadProfile::spec2017().size()
            << " workloads x " << (designs.size() + 1) << " configs...\n";
  for (const auto& w : trace::WorkloadProfile::spec2017()) {
    const u64 instr = sim::default_instructions_for(w, target_misses,
                                     /*min_instructions=*/50'000'000);
    const auto base = system.run("DRAM-only", w, instr);
    std::cerr << "  " << w.name << std::flush;
    for (const auto& d : designs) {
      const auto r = system.run(d, w, instr);
      speedups[d].push_back(r.ipc / base.ipc);
      std::cerr << '.' << std::flush;
    }
    std::cerr << '\n';
  }

  std::cout << "\nFigure 7: performance factors breakdown "
               "(geomean speedup over DRAM-only, all benchmarks)\n";
  TextTable table({"config", "geomean speedup", "paper"});
  for (const auto& d : designs) {
    table.add_row({d, fmt_double(geomean(speedups[d]), 2),
                   fmt_double(paper.at(d), 2)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "fig7_factor_breakdown", run);
}
