// bench/throughput — the raw-speed scoreboard.
//
// Runs a fixed workload x design matrix (the same cells every PR), times
// each cell on the host clock via bb::prof, and writes a schema-versioned
// BENCH_throughput.json with per-cell simulated-requests/second, phase
// breakdown and peak RSS. The checked-in copy at the repo root is the
// speed campaign's trajectory: every PR that touches a hot path reruns
// this harness and appends its point; CI's perf-smoke job warns on >25%
// regression against the checked-in file (tools/check_bench_schema).
//
// Protocol: per cell, `--warmup-reps` repetitions are run and discarded
// (page cache, allocator and branch-predictor warmup), then `--reps`
// measured repetitions; the *median* repetition by requests/sec is
// reported, so one scheduler hiccup cannot move the trajectory.
//
//   ./throughput                  full protocol, writes BENCH_throughput.json
//   ./throughput --quick          CI smoke: fewer/shorter reps
//   ./throughput --out=FILE --git-rev=REV --reps=N --warmup-reps=N
//                --instructions=N
//
// Exit codes: 0 ok, 2 usage, 3 I/O, 4 internal (the bbsim contract).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "common/snapshot.h"
#include "common/prof.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace bb;

namespace {

struct Cell {
  const char* design;
  const char* workload;
};

// The fixed matrix. Chosen to cover the three hot paths that dominate a
// full comparison sweep: the trivial baseline (DRAM-only), the paper's
// design on a high- and a medium-MPKI workload (Bumblebee spends most of
// its time in hmm-access + device-timing), and the heaviest competing
// metadata scheme (Hybrid2). Changing this set invalidates the trajectory
// — append workloads only.
constexpr Cell kCells[] = {
    {"DRAM-only", "mcf"},
    {"Bumblebee", "mcf"},
    {"Bumblebee", "lbm"},
    {"Hybrid2", "mcf"},
};

struct RepSummary {
  double wall_seconds = 0;
  u64 requests = 0;
  double requests_per_sec = 0;
  prof::PhaseTotals phases;
};

/// Best-effort git revision: walks up from the current directory to the
/// first .git/HEAD and resolves the symbolic ref (loose or packed).
/// "unknown" when anything is missing — the bench must work from a
/// tarball too.
std::string detect_git_rev() {
  std::string prefix;
  for (int depth = 0; depth < 10; ++depth) {
    std::ifstream head(prefix + ".git/HEAD");
    if (head) {
      std::string line;
      std::getline(head, line);
      if (line.rfind("ref: ", 0) != 0) return line.substr(0, 12);
      const std::string ref = line.substr(5);
      if (std::ifstream ref_file{prefix + ".git/" + ref}) {
        std::string hash;
        std::getline(ref_file, hash);
        if (!hash.empty()) return hash.substr(0, 12);
      }
      if (std::ifstream packed{prefix + ".git/packed-refs"}) {
        std::string pline;
        while (std::getline(packed, pline)) {
          if (pline.size() > 41 && pline.compare(41, ref.size(), ref) == 0) {
            return pline.substr(0, 12);
          }
        }
      }
      return "unknown";
    }
    prefix += "../";
  }
  return "unknown";
}

std::string cell_to_json(const Cell& cell, const RepSummary& rep,
                         u64 peak_rss) {
  std::ostringstream os;
  os << "{\"design\": \"" << json_escape(cell.design) << "\", \"workload\": \""
     << json_escape(cell.workload) << "\", \"requests\": " << rep.requests
     << ", \"wall_seconds\": " << json_double(rep.wall_seconds)
     << ", \"requests_per_sec\": " << json_double(rep.requests_per_sec)
     << ", \"peak_rss_bytes\": " << peak_rss
     << ", \"phases\": " << prof::phases_to_json(rep.phases) << "}";
  return os.str();
}

int run(const Flags& flags) {
  if (flags.has("help")) {
    std::cout
        << "usage: throughput [--quick] [--reps=N] [--warmup-reps=N]\n"
           "                  [--instructions=N] [--out=FILE] [--git-rev=R]\n"
           "Measures simulated-requests/second on a fixed design x workload\n"
           "matrix (median of N reps, warmup discarded) and writes a\n"
           "schema-versioned BENCH_throughput.json.\n"
           "exit codes: 0 ok, 2 usage, 3 I/O, 4 internal\n";
    return cli::kExitOk;
  }
  const bool quick = flags.has("quick");
  const u64 reps = flags.get_u64("reps", quick ? 2 : 3);
  const u64 warmup_reps = flags.get_u64("warmup-reps", 1);
  const u64 instructions =
      flags.get_u64("instructions", quick ? 1'000'000 : 8'000'000);
  const std::string out_path =
      flags.get_string("out", "BENCH_throughput.json");
  const std::string git_rev = flags.get_string("git-rev", detect_git_rev());
  if (reps == 0) {
    throw std::invalid_argument("--reps must be >= 1");
  }

  // Warmup inside a repetition would make requests != measured misses, so
  // the simulated warmup is zero; host-side warmup is the discarded reps.
  sim::SystemConfig cfg;
  cfg.warmup_ratio = 0.0;

  std::vector<std::string> cell_json;
  TextTable table(
      {"design", "workload", "requests", "wall (s)", "req/s (median)"});

  for (const Cell& cell : kCells) {
    const auto& workload = trace::WorkloadProfile::by_name(cell.workload);
    std::vector<RepSummary> measured;
    for (u64 rep = 0; rep < warmup_reps + reps; ++rep) {
      prof::reset();
      prof::enable(true);
      const prof::Stopwatch clock;
      sim::System system(cfg);
      const sim::RunResult r = system.run(cell.design, workload, instructions);
      RepSummary s;
      s.wall_seconds = clock.seconds();
      s.requests = r.misses;
      s.requests_per_sec =
          s.wall_seconds > 0
              ? static_cast<double>(s.requests) / s.wall_seconds
              : 0.0;
      s.phases = prof::aggregate();
      prof::enable(false);
      if (rep >= warmup_reps) measured.push_back(s);
    }
    std::sort(measured.begin(), measured.end(),
              [](const RepSummary& a, const RepSummary& b) {
                return a.requests_per_sec < b.requests_per_sec;
              });
    const RepSummary& median = measured[measured.size() / 2];
    cell_json.push_back(cell_to_json(cell, median, prof::peak_rss_bytes()));
    table.add_row({cell.design, cell.workload, std::to_string(median.requests),
                   fmt_double(median.wall_seconds, 3),
                   fmt_double(median.requests_per_sec, 0)});
    std::cerr << "[throughput] " << cell.design << "/" << cell.workload
              << ": " << fmt_double(median.requests_per_sec, 0)
              << " req/s\n";
  }

  // Rendered in memory and committed atomically (temp + rename), so a
  // crash mid-write never leaves a torn BENCH file for bb_perf to trip on.
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"bb-bench-throughput\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"git_rev\": \"" << json_escape(git_rev) << "\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"warmup_reps\": " << warmup_reps << ",\n"
      << "  \"instructions\": " << instructions << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cell_json.size(); ++i) {
    out << "    " << cell_json[i] << (i + 1 < cell_json.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  snap::write_file_atomic(out_path, out.str());

  table.print(std::cout);
  std::cout << "wrote " << out_path << " (git " << git_rev << ")\n";
  return cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  return cli::cli_main(argc, argv, "throughput", run);
}
